//! Capacity planner: given a traffic shape and a security policy, pick
//! the cheapest confidential deployment — the Section V-D decision the
//! paper's cost analysis (Figures 12/13) supports.
//!
//! ```text
//! cargo run --example capacity_planner -- [batch] [input_tokens]
//! ```

use confidential_llms_in_tees::cost::{cost_advantage_pct, cost_per_mtok, CpuPricing, GpuPricing};
use confidential_llms_in_tees::hw::DType;
use confidential_llms_in_tees::perf::{simulate_cpu, simulate_gpu, CpuTarget};
use confidential_llms_in_tees::tee::platform::{CpuTeeConfig, GpuTeeConfig};
use confidential_llms_in_tees::workload::phase::RequestSpec;
use confidential_llms_in_tees::workload::zoo;

const MEMORY_GIB: f64 = 128.0;
const VCPUS_PER_CORE: u32 = 2;

fn main() {
    let mut args = std::env::args().skip(1);
    let batch: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(16);
    let input: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(512);
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(batch, input, 128);
    println!(
        "planning for {}: batch {batch}, {input} input / 128 output tokens\n",
        model.name
    );

    // --- CPU TEE (TDX on EMR2), sweep core counts -----------------------
    let pricing = CpuPricing::gcp_spot_us_east1();
    let mut best: Option<(u32, f64, f64)> = None; // (cores, tps, $/Mtok)
    println!("TDX on EMR2 (GCP spot, {MEMORY_GIB} GiB):");
    for cores in [4u32, 8, 16, 32, 48, 60] {
        let target = CpuTarget::emr2_single_socket().with_cores(cores);
        let sim = simulate_cpu(&model, &req, DType::Bf16, &target, &CpuTeeConfig::tdx());
        let price = pricing.instance_cost_per_hr(cores * VCPUS_PER_CORE, MEMORY_GIB);
        let usd = cost_per_mtok(price, sim.e2e_tps);
        println!(
            "  {cores:>2} cores: {:>7.0} tok/s  ${price:.3}/hr  ${usd:.3}/Mtok  ({:.0} ms/token)",
            sim.e2e_tps,
            sim.summary.mean * 1e3
        );
        if best.is_none_or(|(_, _, b)| usd < b) {
            best = Some((cores, sim.e2e_tps, usd));
        }
    }
    let (cpu_cores, cpu_tps, cpu_usd) = best.expect("sweep is nonempty");

    // --- confidential H100 ------------------------------------------------
    let gpu = cllm_hw::presets::h100_nvl();
    let sim = simulate_gpu(
        &model,
        &req,
        DType::Bf16,
        &gpu,
        &GpuTeeConfig::confidential(),
    );
    let gpu_usd = cost_per_mtok(GpuPricing::azure_ncc_h100().per_hr, sim.e2e_tps);
    println!(
        "\ncGPU (Azure NCCads_H100_v5): {:>7.0} tok/s  ${:.2}/hr  ${gpu_usd:.3}/Mtok",
        sim.e2e_tps,
        GpuPricing::azure_ncc_h100().per_hr
    );

    // --- recommendation ----------------------------------------------------
    let adv = cost_advantage_pct(cpu_usd, gpu_usd);
    println!("\nrecommendation:");
    if adv > 5.0 {
        println!(
            "  TDX with {cpu_cores} cores: ${cpu_usd:.3}/Mtok at {cpu_tps:.0} tok/s — {adv:.0}% cheaper than the cGPU"
        );
        println!("  (also the stricter security model: encrypted DRAM, Insight 11)");
    } else if adv < -5.0 {
        println!(
            "  cGPU: ${gpu_usd:.3}/Mtok — the compute demand saturates the H100 ({:.0}% cheaper than CPU)",
            -adv
        );
        println!("  (note: H100 HBM is unencrypted; check your threat model, Section V-D3)");
    } else {
        println!("  cost parity (within 5%) — choose by security policy: CPU TEE is stricter");
    }
}
