//! Confidential RAG: a document store and retrieval pipeline running
//! inside a TEE, then generation over the retrieved context — the
//! Section VI workload (BM25 / reranked BM25 / SBERT over an
//! Elasticsearch-like engine, fully inside TDX).
//!
//! ```text
//! cargo run --example rag_pipeline
//! ```

use confidential_llms_in_tees::core::pipeline::{ConfidentialPipeline, DeploymentSpec};
use confidential_llms_in_tees::perf::CpuTarget;
use confidential_llms_in_tees::rag::eval::evaluate;
use confidential_llms_in_tees::rag::tee::{eval_time_under_tee, rag_slowdown_factor};
use confidential_llms_in_tees::rag::{RagConfig, RagPipeline};
use confidential_llms_in_tees::retrieval::beir::{generate, BeirSpec};
use confidential_llms_in_tees::retrieval::engine::SearchMode;
use confidential_llms_in_tees::tee::platform::{CpuTeeConfig, Platform};

fn main() {
    // Synthetic BEIR-like benchmark (we cannot redistribute BEIR itself).
    let data = generate(&BeirSpec::default());
    println!(
        "corpus: {} docs, {} queries, graded qrels",
        data.docs.len(),
        data.queries.len()
    );

    let target = CpuTarget::emr2_single_socket();
    let tdx = CpuTeeConfig::tdx();
    let factor = rag_slowdown_factor(&target, &tdx);
    println!(
        "TDX slowdown factor for retrieval workloads: {:.3} (paper: 6-7% overhead)\n",
        factor
    );

    // The three retrieval methods of Figure 14.
    for mode in [
        SearchMode::Bm25,
        SearchMode::RerankedBm25 { candidates: 50 },
        SearchMode::Sbert,
    ] {
        let mut rag = RagPipeline::new(RagConfig {
            method: mode,
            top_k: 10,
            embedding_dim: 128,
        });
        rag.ingest(data.docs.iter().map(|(id, t)| (*id, t.as_str())));

        // Quality + work accounting on real retrieval code.
        let report = evaluate(&rag, &data);
        // Wall-clock of one real query on this machine, for reference.
        let (qid, qtext) = &data.queries[0];
        let t0 = std::time::Instant::now();
        let hits = rag.retrieve(qtext);
        let wall = t0.elapsed();
        let _ = (qid, hits);

        let bare_model_s = report.work_units_per_query * 2.0e-4;
        println!(
            "{:14} nDCG@10 {:.3}  recall@10 {:.3}  MRR {:.3}",
            mode.label(),
            report.ndcg10,
            report.recall10,
            report.mrr
        );
        println!(
            "{:14} modeled: bare {:.2} ms -> TDX {:.2} ms/query; measured here: {:.2} ms",
            "",
            bare_model_s * 1e3,
            eval_time_under_tee(bare_model_s, &target, &tdx) * 1e3,
            wall.as_secs_f64() * 1e3
        );
    }

    // Close the loop: retrieve then generate inside the enclave.
    let mut rag = RagPipeline::new(RagConfig::default());
    rag.ingest(data.docs.iter().map(|(id, t)| (*id, t.as_str())));
    let query = &data.queries[0].1;
    let context = rag.answer_context(query);
    let pipeline = ConfidentialPipeline::deploy(&DeploymentSpec::tiny_demo(Platform::Cpu(tdx)))
        .expect("attestation succeeds");
    let prompt = format!("context:\n{context}\nquestion: {query}\nanswer:");
    let answer = pipeline.generate(&prompt[..prompt.len().min(100)], 16);
    println!(
        "\nend-to-end RAG: retrieved {} chars of context, generated {} bytes inside the enclave",
        context.len(),
        answer.len()
    );
}
