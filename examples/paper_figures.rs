//! Regenerate every table and figure of the paper in one run, printing
//! each as a text table (the same data the `cllm-bench` `figN` binaries
//! emit as JSON).
//!
//! ```text
//! cargo run --release --example paper_figures            # everything
//! cargo run --release --example paper_figures -- fig9    # one figure
//! ```

use confidential_llms_in_tees::core::experiments::{all_experiments, run_by_id};

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    match filter {
        Some(id) => match run_by_id(&id) {
            Some(result) => println!("{}", result.render()),
            None => {
                eprintln!(
                    "unknown experiment '{id}'; available: {}",
                    all_experiments()
                        .iter()
                        .map(|(i, _)| *i)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        },
        None => {
            for (id, runner) in all_experiments() {
                let _ = id;
                println!("{}", runner().render());
            }
        }
    }
}
