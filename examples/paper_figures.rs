//! Regenerate every table and figure of the paper in one run, printing
//! each as a text table (the same data the `cllm-bench` `figN` binaries
//! emit as JSON). The full sweep executes on the parallel experiment
//! runner; tables still print in paper order.
//!
//! ```text
//! cargo run --release --example paper_figures            # everything
//! cargo run --release --example paper_figures -- fig9    # one figure
//! ```

use confidential_llms_in_tees::core::experiments::all_experiments;
use confidential_llms_in_tees::core::runner;

fn main() {
    let filter: Option<String> = std::env::args().nth(1);
    match filter {
        Some(id) => match runner::run_one(&id) {
            Some(result) => println!("{}", result.render()),
            None => {
                eprintln!(
                    "unknown experiment '{id}'; available: {}",
                    all_experiments()
                        .iter()
                        .map(|(i, _)| *i)
                        .collect::<Vec<_>>()
                        .join(", ")
                );
                std::process::exit(2);
            }
        },
        None => {
            for result in runner::run_all_parallel(runner::default_workers()) {
                println!("{}", result.render());
            }
        }
    }
}
