//! Quickstart: deploy a confidential LLM, attest it, generate text, and
//! predict what the deployment costs on the paper's testbeds.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use confidential_llms_in_tees::core::pipeline::{ConfidentialPipeline, DeploymentSpec};
use confidential_llms_in_tees::tee::platform::{CpuTeeConfig, Platform};
use confidential_llms_in_tees::workload::phase::RequestSpec;

fn main() {
    // 1. Pick a platform: a TDX trust domain, as Section III-B describes.
    let spec = DeploymentSpec::tiny_demo(Platform::Cpu(CpuTeeConfig::tdx()));

    // 2. Deploy. Under the hood this encrypts the model weights, launches
    //    a (simulated) enclave from a Gramine-like manifest, runs remote
    //    attestation with a fresh nonce, releases the decryption key only
    //    on success, and decrypts the weights inside the enclave.
    let pipeline = ConfidentialPipeline::deploy(&spec).expect("attestation should succeed");
    println!(
        "deployed; enclave measurement = {}",
        pipeline.measurement_hex()
    );

    // 3. Generate text with the real in-enclave engine (a tiny Llama-
    //    architecture model; the API is the same at any scale).
    let text = pipeline.generate("confidential inference says: ", 24);
    println!("generated {} bytes of output", text.len());

    // 4. Predict production performance for Llama2-7B on the paper's
    //    EMR1 testbed: throughput run (batch 6, beam 4) like Figure 4.
    let req = RequestSpec::new(6, 1024, 128).with_beam(4);
    let est = pipeline.estimate(&req);
    println!(
        "Llama2-7B on {} | prefill {:.2}s | {:.1} ms/token | {:.1} tok/s",
        pipeline.spec().platform.label(),
        est.prefill_s,
        est.token_latency_s * 1e3,
        est.decode_tps,
    );

    // 5. Compare against bare metal to see the cost of confidentiality.
    let bare_spec = DeploymentSpec::tiny_demo(Platform::Cpu(CpuTeeConfig::bare_metal()));
    let bare = ConfidentialPipeline::deploy(&bare_spec).expect("bare metal deploys");
    let bare_est = bare.estimate(&req);
    println!(
        "TEE overhead: {:.1}% throughput (paper: 4-10%)",
        (bare_est.decode_tps / est.decode_tps - 1.0) * 100.0
    );
}
