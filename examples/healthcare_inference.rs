//! Healthcare scenario: a hospital runs an LLM over confidential patient
//! notes in the public cloud — the motivating use case of the paper's
//! introduction (health records processed by a cloud-deployed LLM).
//!
//! The example demonstrates the full defensive posture:
//!
//! 1. Patient records are stored on a LUKS-like encrypted block device
//!    (what TDX deployments must add themselves, Section III-B).
//! 2. The model is sealed to the enclave identity; a tampered runtime
//!    cannot obtain the key.
//! 3. Platform choice is driven by policy: strictest security and small
//!    batches → CPU TEE (Insight 11).
//!
//! ```text
//! cargo run --example healthcare_inference
//! ```

use confidential_llms_in_tees::core::pipeline::{ConfidentialPipeline, DeploymentSpec};
use confidential_llms_in_tees::crypto::drbg::HashDrbg;
use confidential_llms_in_tees::tee::platform::{CpuTeeConfig, Platform, TeeKind};
use confidential_llms_in_tees::tee::sealed::{BlockDevice, SECTOR_BYTES};
use confidential_llms_in_tees::tee::threat::{protection, security_score, Attack};
use confidential_llms_in_tees::workload::phase::RequestSpec;

const PATIENT_NOTES: &[&str] = &[
    "patient A: persistent cough, two weeks, no fever, prior asthma",
    "patient B: elevated blood pressure, family history of stroke",
    "patient C: post-operative check, knee arthroscopy, mild swelling",
];

fn main() {
    // --- policy: choose the platform by security score ------------------
    let candidates = [TeeKind::Tdx, TeeKind::Sgx, TeeKind::GpuCc];
    for kind in candidates {
        println!(
            "candidate {:5} security score {:>4.0}%  (memory snooping: {:?})",
            kind.label(),
            security_score(kind) * 100.0,
            protection(kind, Attack::MemorySnoop),
        );
    }
    // Health records demand full memory encryption -> CPU TEE (H100 HBM
    // is unencrypted, Section V-D3). Small per-patient batches also make
    // the CPU TEE the cost-efficient choice (Insight 11).
    let platform = Platform::Cpu(CpuTeeConfig::tdx());
    println!("policy selected: {}\n", platform.label());

    // --- encrypted record storage ---------------------------------------
    let mut drbg = HashDrbg::new(b"hospital-disk-key");
    let disk_key = drbg.gen_key16();
    let mut disk = BlockDevice::format(&disk_key, 256);
    let mut sectors = Vec::new();
    let mut next = 0u64;
    for note in PATIENT_NOTES {
        let used = disk.write_bytes(next, note.as_bytes());
        sectors.push((next, note.len()));
        next += used;
    }
    // What the cloud provider sees on disk is ciphertext:
    let raw = disk.raw_sector(0);
    assert!(!raw.starts_with(b"patient"));
    println!(
        "stored {} records on encrypted device ({} sectors, {}B each, ciphertext at rest)",
        PATIENT_NOTES.len(),
        next,
        SECTOR_BYTES
    );

    // --- confidential inference -----------------------------------------
    let spec = DeploymentSpec::tiny_demo(platform);
    let pipeline = ConfidentialPipeline::deploy(&spec).expect("hospital attests the enclave");
    println!("enclave attested: {}", &pipeline.measurement_hex()[..16]);

    for &(sector, len) in &sectors {
        let note = String::from_utf8(disk.read_bytes(sector, len)).expect("utf8 notes");
        let summary = pipeline.generate(&note, 12);
        println!(
            "  triage[{}..]: {} bytes of model output",
            &note[..9],
            summary.len()
        );
    }

    // --- capacity estimate ------------------------------------------------
    // Nightly batch job: summarize 6 notes at a time, 1024-token charts.
    let req = RequestSpec::new(6, 1024, 128).with_beam(4);
    let est = pipeline.estimate(&req);
    println!(
        "\nnightly batch estimate (Llama2-7B class): {:.1} tok/s, {:.0} ms/token, first token {:.2}s",
        est.decode_tps,
        est.token_latency_s * 1e3,
        est.prefill_s
    );
    assert!(est.token_latency_s < 0.2, "stays under reading speed");
    println!("service level: under the 200 ms/word reading-speed standard ✓");
}
