//! Integration tests asserting the paper's published bands, end to end
//! through the public facade — the contract EXPERIMENTS.md records.

use confidential_llms_in_tees::core::experiments;

fn pct_cell(r: &experiments::ExperimentResult, row: &str, col: &str) -> f64 {
    r.cell_f64(row, col)
        .unwrap_or_else(|| panic!("missing cell {row}/{col}"))
}

#[test]
fn fig4_single_socket_bands() {
    let r = experiments::fig4::run();
    // Paper: SGX 4.80-6.15%, TDX 5.51-10.68%, VM 1.82-5.38% (throughput).
    let sgx = pct_cell(&r, "SGX", "thr_overhead");
    let tdx = pct_cell(&r, "TDX", "thr_overhead");
    let vm = pct_cell(&r, "VM", "thr_overhead");
    assert!((4.0..7.0).contains(&sgx), "SGX {sgx}");
    assert!((5.0..11.0).contains(&tdx), "TDX {tdx}");
    assert!((1.0..5.5).contains(&vm), "VM {vm}");
    assert!(vm < sgx && sgx < tdx, "ordering bare < VM < SGX < TDX");
}

#[test]
fn fig6_dual_socket_bands() {
    let r = experiments::fig6::run();
    // Paper: TDX 12.11-23.81% on two sockets; VM TH - VM FH = 3.19-5.20%;
    // SGX up to ~230%.
    let tdx = pct_cell(&r, "TDX", "thr_overhead");
    let fh = pct_cell(&r, "VM FH", "thr_overhead");
    let th = pct_cell(&r, "VM TH", "thr_overhead");
    let sgx = pct_cell(&r, "SGX", "thr_overhead");
    assert!((11.0..26.0).contains(&tdx), "TDX {tdx}");
    assert!((2.0..6.5).contains(&(th - fh)), "hugepage gap {}", th - fh);
    assert!((120.0..320.0).contains(&sgx), "SGX {sgx}");
}

#[test]
fn fig9_overheads_fall_with_batch() {
    // Paper: overheads drop from 7-10% to 4-7% (bf16) as batch grows.
    use cllm_hw::DType;
    let small = experiments::fig9::thr_overhead(DType::Bf16, 1);
    let large = experiments::fig9::thr_overhead(DType::Bf16, 512);
    assert!(small > large, "{small} -> {large}");
    assert!((3.0..9.0).contains(&large), "saturated overhead {large}");
}

#[test]
fn fig11_gpu_band() {
    // Paper: cGPU overheads oscillate between 7.5% and 4.4%.
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for batch in [1u64, 8, 32, 128] {
        for input in [128u64, 512, 1024] {
            let o = experiments::fig11::overhead(batch, input);
            min = min.min(o);
            max = max.max(o);
        }
    }
    assert!(min > 2.0 && max < 9.5, "cGPU range {min}..{max}");
    assert!(max - min > 1.0, "overhead should vary with shape");
}

#[test]
fn fig12_cost_story() {
    // Paper: cGPU up to ~100% more expensive at small batch, parity ~128.
    let sweep1 = experiments::fig12::tdx_cost_sweep(1);
    let cpu1 = cllm_cost::cheapest_point(&sweep1).unwrap().usd_per_mtok;
    let gpu1 = experiments::fig12::cgpu_usd_per_mtok(1);
    let adv1 = cllm_cost::cost_advantage_pct(cpu1, gpu1);
    assert!(adv1 > 40.0, "batch-1 advantage {adv1}%");

    let sweep128 = experiments::fig12::tdx_cost_sweep(128);
    let cpu128 = cllm_cost::cheapest_point(&sweep128).unwrap().usd_per_mtok;
    let gpu128 = experiments::fig12::cgpu_usd_per_mtok(128);
    let adv128 = cllm_cost::cost_advantage_pct(cpu128, gpu128);
    assert!(
        adv128 < 35.0,
        "batch-128 advantage {adv128}% (parity expected)"
    );
}

#[test]
fn fig13_input_sensitivity() {
    // Paper: CPU advantage collapses as input grows.
    let short = experiments::fig13::advantage_pct(64);
    let long = experiments::fig13::advantage_pct(8192);
    assert!(short > 25.0, "short {short}%");
    assert!(long < 0.0, "long {long}%");
}

#[test]
fn model_zoo_band() {
    // Paper Section III-C3: 3.1-13.1% across five additional models.
    let r = experiments::model_zoo::run();
    for row in &r.rows {
        let o = row[2].as_f64().unwrap();
        assert!((3.0..13.5).contains(&o), "{}: {o}%", row[0].format());
    }
}

#[test]
fn snc_band() {
    // Paper Section IV-A: ~5% -> ~42% with SNC enabled.
    use cllm_hw::SubNumaClustering;
    let off = experiments::snc::overhead(SubNumaClustering::Off);
    let on = experiments::snc::overhead(SubNumaClustering::Snc2);
    assert!((4.0..12.0).contains(&off), "off {off}");
    assert!((25.0..60.0).contains(&on), "on {on}");
}

#[test]
fn every_experiment_renders_and_serializes() {
    for (id, runner) in experiments::all_experiments() {
        let r = runner();
        assert_eq!(r.id, id);
        assert!(!r.rows.is_empty(), "{id} produced no rows");
        let rendered = r.render();
        assert!(rendered.contains(id), "{id} render");
        let json = r.to_json();
        assert!(json.get("rows").is_some(), "{id} json");
    }
}
