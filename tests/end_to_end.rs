//! End-to-end integration tests across every crate: attestation, sealed
//! weights, functional generation, performance estimation, and the
//! security properties that motivate the whole system.

use confidential_llms_in_tees::core::pipeline::{
    ConfidentialPipeline, DeploymentSpec, PipelineError,
};
use confidential_llms_in_tees::core::{EncryptedModel, ModelOwner};
use confidential_llms_in_tees::infer::model::{TinyConfig, TinyModel};
use confidential_llms_in_tees::tee::attestation::{generate_quote, Measurement};
use confidential_llms_in_tees::tee::platform::{CpuTeeConfig, Platform};
use confidential_llms_in_tees::workload::phase::RequestSpec;

#[test]
fn full_deployment_on_all_platforms() {
    for platform in [
        Platform::Cpu(CpuTeeConfig::bare_metal()),
        Platform::Cpu(CpuTeeConfig::vm()),
        Platform::Cpu(CpuTeeConfig::sgx()),
        Platform::Cpu(CpuTeeConfig::tdx()),
        ConfidentialPipeline::gpu_platform(false),
        ConfidentialPipeline::gpu_platform(true),
    ] {
        let label = platform.label();
        let spec = DeploymentSpec::tiny_demo(platform);
        let p = ConfidentialPipeline::deploy(&spec)
            .unwrap_or_else(|e| panic!("{label}: deploy failed: {e}"));
        let text = p.generate("integration test", 8);
        assert!(!text.is_empty(), "{label}: no output");
        let est = p.estimate(&RequestSpec::new(1, 256, 16));
        assert!(est.decode_tps > 0.0, "{label}: no throughput estimate");
    }
}

#[test]
fn tee_identity_does_not_change_output() {
    // The functional result must be independent of the TEE — TEEs protect
    // execution, they do not alter it.
    let outputs: Vec<String> = [
        Platform::Cpu(CpuTeeConfig::bare_metal()),
        Platform::Cpu(CpuTeeConfig::sgx()),
        Platform::Cpu(CpuTeeConfig::tdx()),
        ConfidentialPipeline::gpu_platform(true),
    ]
    .into_iter()
    .map(|pf| {
        ConfidentialPipeline::deploy(&DeploymentSpec::tiny_demo(pf))
            .expect("deploys")
            .generate("determinism probe", 16)
    })
    .collect();
    for o in &outputs[1..] {
        assert_eq!(o, &outputs[0]);
    }
}

#[test]
fn weight_theft_is_prevented() {
    // An attacker with the encrypted artifact but no attested enclave
    // cannot read the weights (the Figure 1 threat).
    let model = TinyModel::init(&TinyConfig::test_small(), 9);
    let golden = Measurement([7u8; 32]);
    let mut owner = ModelOwner::new(b"hw-root", golden, 5, b"seed");
    let artifact: EncryptedModel = owner.encrypt_model(&model).unwrap();

    // Brute key guesses fail authentication:
    for guess in [[0u8; 16], [0xFFu8; 16]] {
        assert!(ModelOwner::decrypt_model(&guess, &artifact).is_err());
    }
    // A quote from a *different* enclave gets no key:
    let nonce = owner.challenge();
    let evil_quote = generate_quote(b"hw-root", Measurement([66u8; 32]), 9, &nonce);
    assert!(owner.release_key(&evil_quote, &nonce).is_err());
    // The legitimate enclave does:
    let nonce = owner.challenge();
    let good_quote = generate_quote(b"hw-root", golden, 9, &nonce);
    let key = owner.release_key(&good_quote, &nonce).unwrap();
    assert_eq!(ModelOwner::decrypt_model(&key, &artifact).unwrap(), model);
}

#[test]
fn tcb_policy_blocks_deployment() {
    let mut spec = DeploymentSpec::tiny_demo(Platform::Cpu(CpuTeeConfig::tdx()));
    spec.min_svn = 200;
    match ConfidentialPipeline::deploy(&spec) {
        Err(PipelineError::Owner(_)) => {}
        other => panic!("expected attestation failure, got {other:?}"),
    }
}

#[test]
fn estimates_order_platforms_correctly() {
    // bare < VM < SGX < TDX in token latency; GPU fastest of all.
    let req = RequestSpec::new(1, 1024, 32);
    let lat = |pf: Platform| {
        ConfidentialPipeline::deploy(&DeploymentSpec::tiny_demo(pf))
            .expect("deploys")
            .estimate(&req)
            .token_latency_s
    };
    let bare = lat(Platform::Cpu(CpuTeeConfig::bare_metal()));
    let vm = lat(Platform::Cpu(CpuTeeConfig::vm()));
    let sgx = lat(Platform::Cpu(CpuTeeConfig::sgx()));
    let tdx = lat(Platform::Cpu(CpuTeeConfig::tdx()));
    let gpu = lat(ConfidentialPipeline::gpu_platform(true));
    assert!(
        bare < vm && vm < sgx && sgx < tdx,
        "{bare} {vm} {sgx} {tdx}"
    );
    assert!(gpu < bare / 3.0, "H100 should dominate raw CPU latency");
}

#[test]
fn int8_deployment_workflow() {
    use confidential_llms_in_tees::hw::DType;
    let mut spec = DeploymentSpec::tiny_demo(Platform::Cpu(CpuTeeConfig::tdx()));
    spec.dtype = DType::Int8;
    let p = ConfidentialPipeline::deploy(&spec).unwrap();
    assert!(!p.generate("quantized path", 6).is_empty());
    // int8 halves next-token latency vs bf16 (Figure 4).
    let req = RequestSpec::new(1, 1024, 16);
    let int8 = p.estimate(&req).token_latency_s;
    let bf16 = ConfidentialPipeline::deploy(&DeploymentSpec::tiny_demo(Platform::Cpu(
        CpuTeeConfig::tdx(),
    )))
    .unwrap()
    .estimate(&req)
    .token_latency_s;
    let ratio = bf16 / int8;
    assert!((1.4..2.6).contains(&ratio), "int8 latency ratio {ratio}");
}

#[test]
fn confidential_session_migration() {
    // A live inference session's KV cache is sealed under the enclave
    // identity, "migrated", unsealed by an enclave with the same
    // measurement, and generation continues bit-identically.
    use confidential_llms_in_tees::infer::model::{KvCache, TinyConfig, TinyModel};
    use confidential_llms_in_tees::tee::enclave::Enclave;
    use confidential_llms_in_tees::tee::manifest::Manifest;

    let manifest = Manifest::builder("session-host")
        .trusted_file("runtime", b"v1")
        .build();
    let source = Enclave::launch(&manifest, b"hw").unwrap();
    let target = Enclave::launch(&manifest, b"hw").unwrap();

    let model = TinyModel::init(&TinyConfig::test_small(), 4);
    let mut cache = model.new_cache();
    for t in [1usize, 2, 3, 4, 5] {
        let _ = model.forward(t, &mut cache);
    }
    // Seal on the source, unseal on the (identical) target.
    let sealed = source.seal("kv-session-17", &cache.to_bytes(), b"migration");
    let restored_bytes = target.unseal(&sealed).unwrap();
    let mut restored = KvCache::from_bytes(&restored_bytes).unwrap();
    let mut original = cache.clone();
    assert_eq!(
        model.forward(9, &mut original),
        model.forward(9, &mut restored),
        "migrated session must continue identically"
    );

    // A different enclave (different measurement) cannot hijack the session.
    let other_manifest = Manifest::builder("session-host")
        .trusted_file("runtime", b"v2-evil")
        .build();
    let thief = Enclave::launch(&other_manifest, b"hw").unwrap();
    assert!(thief.unseal(&sealed).is_err());
}

#[test]
fn manifest_text_drives_real_enclave() {
    // Parse a Figure-2-style manifest and launch an enclave from it.
    use confidential_llms_in_tees::crypto::sha256::{sha256, to_hex};
    use confidential_llms_in_tees::tee::enclave::Enclave;
    use confidential_llms_in_tees::tee::manifest_text::parse_manifest;

    let hash = to_hex(&sha256(b"runtime-bytes"));
    let text = format!(
        "libos.entrypoint = \"/usr/bin/cllm-serve\"\n\
         sgx.enclave_size = \"64G\"\n\
         sgx.max_threads = 32\n\
         sgx.trusted_files = [ {{ uri = \"file:/opt/runtime.so\", sha256 = \"{hash}\" }} ]\n\
         fs.mounts = [ {{ type = \"encrypted\", path = \"/model\", key_name = \"weights-key\" }} ]\n"
    );
    let manifest = parse_manifest(&text).unwrap();
    let enclave = Enclave::launch(&manifest, b"hw").unwrap();
    assert!(enclave
        .open_trusted("/opt/runtime.so", b"runtime-bytes")
        .is_ok());
    assert!(enclave
        .open_trusted("/opt/runtime.so", b"tampered")
        .is_err());
    // The measurement derives from the parsed manifest and pins the text.
    let again = parse_manifest(&text).unwrap();
    assert_eq!(manifest.measurement(), again.measurement());
}
