//! Cross-crate property tests: invariants the simulator and substrates
//! must satisfy for *any* valid input, not just the paper's operating
//! points.

use cllm_hw::DType;
use cllm_perf::{simulate_cpu, CpuTarget};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::phase::RequestSpec;
use cllm_workload::{kv, zoo};
use proptest::prelude::*;

fn dtype_strategy() -> impl Strategy<Value = DType> {
    prop_oneof![Just(DType::Bf16), Just(DType::Int8)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// TEEs never make inference faster: bare <= VM <= TDX in mean token
    /// latency for any request shape.
    #[test]
    fn tee_ordering_holds_everywhere(
        batch in 1u64..64,
        input in prop_oneof![Just(32u64), Just(128), Just(1024)],
        dtype in dtype_strategy(),
    ) {
        let model = zoo::llama2_7b();
        let req = RequestSpec::new(batch, input, 16);
        let target = CpuTarget::emr1_single_socket();
        let bare = simulate_cpu(&model, &req, dtype, &target, &CpuTeeConfig::bare_metal());
        let vm = simulate_cpu(&model, &req, dtype, &target, &CpuTeeConfig::vm());
        let tdx = simulate_cpu(&model, &req, dtype, &target, &CpuTeeConfig::tdx());
        // Deterministic noise is a few percent; TEE gaps exceed it, but
        // allow a 1% tolerance for the bare-vs-VM comparison.
        prop_assert!(bare.summary.mean < vm.summary.mean * 1.01);
        prop_assert!(vm.summary.mean < tdx.summary.mean);
    }

    /// More cores never reduce throughput (beyond the deterministic
    /// noise model's jitter, washed out over 64 tokens).
    #[test]
    fn cores_monotone(batch in 1u64..128) {
        let model = zoo::llama2_7b();
        let req = RequestSpec::new(batch, 128, 64);
        let mut prev = 0.0;
        for cores in [4u32, 16, 60] {
            let target = CpuTarget::emr2_single_socket().with_cores(cores);
            let tps = simulate_cpu(&model, &req, DType::Bf16, &target, &CpuTeeConfig::tdx())
                .decode_tps;
            prop_assert!(tps >= prev * 0.97, "cores {cores}: {tps} < {prev}");
            prev = tps;
        }
    }

    /// Larger batches never reduce total throughput.
    #[test]
    fn batch_monotone_throughput(input in prop_oneof![Just(64u64), Just(512)]) {
        let model = zoo::llama2_7b();
        let target = CpuTarget::emr2_single_socket();
        let mut prev = 0.0;
        for batch in [1u64, 8, 64, 256] {
            let req = RequestSpec::new(batch, input, 64);
            let tps = simulate_cpu(&model, &req, DType::Bf16, &target, &CpuTeeConfig::bare_metal())
                .decode_tps;
            prop_assert!(tps > prev, "batch {batch}: {tps} <= {prev}");
            prev = tps;
        }
    }

    /// KV accounting is exactly linear in batch and sequence length.
    #[test]
    fn kv_linearity(batch in 1u64..512, seq in 1u64..8192, dtype in dtype_strategy()) {
        let model = zoo::llama2_70b();
        let one = kv::kv_bytes_total(&model, 1, 1, dtype);
        let total = kv::kv_bytes_total(&model, batch, seq, dtype);
        let expected = one * batch as f64 * seq as f64;
        prop_assert!((total - expected).abs() < expected * 1e-9 + 1.0);
    }

    /// Cost per token is inversely proportional to throughput.
    #[test]
    fn cost_inverse_throughput(tps in 1.0f64..1e5, price in 0.01f64..100.0) {
        let c1 = cllm_cost::cost_per_mtok(price, tps);
        let c2 = cllm_cost::cost_per_mtok(price, 2.0 * tps);
        prop_assert!((c1 / c2 - 2.0).abs() < 1e-9);
    }

    /// Sealing round-trips for any payload; wrong measurement always fails.
    #[test]
    fn sealing_roundtrip(payload in proptest::collection::vec(any::<u8>(), 0..512),
                         m1 in any::<[u8; 32]>(), m2 in any::<[u8; 32]>()) {
        use cllm_tee::attestation::Measurement;
        use cllm_tee::sealed::SealedBlob;
        prop_assume!(m1 != m2);
        let blob = SealedBlob::seal(b"hw", &Measurement(m1), "f", &payload, b"seed");
        prop_assert_eq!(blob.unseal(b"hw", &Measurement(m1)).unwrap(), payload);
        prop_assert!(blob.unseal(b"hw", &Measurement(m2)).is_err());
    }

    /// The simulator is deterministic: identical inputs, identical output.
    #[test]
    fn simulator_deterministic(batch in 1u64..32, dtype in dtype_strategy()) {
        let model = zoo::llama2_7b();
        let req = RequestSpec::new(batch, 128, 8);
        let target = CpuTarget::emr1_single_socket();
        let a = simulate_cpu(&model, &req, dtype, &target, &CpuTeeConfig::tdx());
        let b = simulate_cpu(&model, &req, dtype, &target, &CpuTeeConfig::tdx());
        prop_assert_eq!(a.token_latencies_s, b.token_latencies_s);
        prop_assert_eq!(a.prefill_s, b.prefill_s);
    }
}

/// Pinned replay of the recorded proptest regression
/// (`tests/prop_invariants.proptest-regressions`: "shrinks to batch = 95").
/// The shrunk case hit `cores_monotone`, where throughput briefly dipped
/// when growing the core count at an awkward batch size; keep the exact
/// case as a deterministic test so it can never silently reappear.
#[test]
fn cores_monotone_regression_batch_95() {
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(95, 128, 64);
    let mut prev = 0.0;
    for cores in [4u32, 16, 60] {
        let target = CpuTarget::emr2_single_socket().with_cores(cores);
        let tps = simulate_cpu(&model, &req, DType::Bf16, &target, &CpuTeeConfig::tdx()).decode_tps;
        assert!(tps >= prev * 0.97, "cores {cores}: {tps} < {prev}");
        prev = tps;
    }
}
