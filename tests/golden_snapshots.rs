//! Golden-snapshot test: the committed JSON under `tests/golden/` pins
//! the exact serialized output (schema_version 2) of all 30 experiments.
//! Any drift — a changed simulation, column, precision, or schema field —
//! fails here with the experiment id, so table changes are always a
//! reviewed diff, never an accident. Regenerate with
//! `cargo run --release -p cllm-bench --bin all_figures` and
//! `cp results/*.json tests/golden/` after a deliberate change.

use confidential_llms_in_tees::core::experiments;

fn golden_dir() -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join("golden")
}

#[test]
fn all_experiments_match_golden_snapshots() {
    let mut drifted = Vec::new();
    for (id, runner) in experiments::all_experiments() {
        let fresh = serde_json::to_string_pretty(runner().to_json()).expect("serialize");
        let path = golden_dir().join(format!("{id}.json"));
        let golden = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("missing golden snapshot {}: {e}", path.display()));
        if fresh.trim_end() != golden.trim_end() {
            drifted.push(id);
        }
    }
    assert!(
        drifted.is_empty(),
        "experiments drifted from tests/golden/: {drifted:?}\n\
         If the change is intentional, regenerate with\n\
         `cargo run --release -p cllm-bench --bin all_figures && cp results/*.json tests/golden/`"
    );
}

#[test]
fn goldens_carry_schema_version_and_raw_rows() {
    for (id, _) in experiments::all_experiments() {
        let path = golden_dir().join(format!("{id}.json"));
        let text = std::fs::read_to_string(&path).expect("golden file");
        let json: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
        assert_eq!(experiments::SCHEMA_VERSION, 2, "schema version pinned here");
        assert_eq!(
            json.get("schema_version")
                .and_then(serde_json::Value::as_f64),
            Some(2.0),
            "{id}: schema_version"
        );
        let rows = json.get("rows").and_then(serde_json::Value::as_array);
        let raw = json.get("raw_rows").and_then(serde_json::Value::as_array);
        let (rows, raw) = (rows.expect("rows"), raw.expect("raw_rows"));
        assert_eq!(rows.len(), raw.len(), "{id}: rows vs raw_rows length");
        assert!(!rows.is_empty(), "{id}: empty table");
    }
}

#[test]
fn no_golden_snapshot_is_orphaned() {
    // Every file in tests/golden/ must correspond to a registered
    // experiment — stale snapshots would silently stop being checked.
    let ids: Vec<&str> = experiments::all_experiments()
        .iter()
        .map(|(id, _)| *id)
        .collect();
    for entry in std::fs::read_dir(golden_dir()).expect("golden dir") {
        let name = entry.expect("dir entry").file_name();
        let name = name.to_string_lossy();
        let Some(stem) = name.strip_suffix(".json") else {
            panic!("non-JSON file in tests/golden/: {name}");
        };
        assert!(ids.contains(&stem), "orphaned golden snapshot: {name}");
    }
}
