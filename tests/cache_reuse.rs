//! The provenance contract of the typed result layer: every insight cites
//! simulation points the figures already published, so replaying the
//! insight checks after the figure sweep must be answered entirely from
//! the memoized simulation cache — zero new simulator runs.
//!
//! This lives in its own integration-test binary because the cache is
//! process-global; running alone gives exact counter arithmetic.

use confidential_llms_in_tees::core::{experiments, insights};
use confidential_llms_in_tees::perf::cache;

#[test]
fn insights_add_no_simulations_after_figures() {
    // 1. Run every registered experiment (the 24 figure/table sweeps).
    for (id, runner) in experiments::all_experiments() {
        let r = runner();
        assert_eq!(r.id, id);
    }
    let after_figures = cache::stats();
    assert!(
        after_figures.misses > 0,
        "figure sweeps must populate the cache"
    );

    // 2. Re-derive all 12 insights. Their quantitative evidence reads the
    // same operating points the figures published, so the miss counter
    // must not move.
    let checks = insights::check_all();
    assert_eq!(checks.len(), 12);
    let after_insights = cache::stats();
    assert_eq!(
        after_insights.misses, after_figures.misses,
        "insight evidence must be cache hits, not new simulations"
    );
    assert!(
        after_insights.hits > after_figures.hits,
        "insights must actually read cached points"
    );

    // 3. The figure sweeps themselves share baselines heavily: every
    // overhead divides by a bare-metal/native point reused across
    // metrics, figures and Table I.
    let total = after_figures.hits + after_figures.misses;
    let hit_rate = after_figures.hits as f64 / total as f64;
    assert!(
        hit_rate > 0.35,
        "figure-sweep cache hit rate {hit_rate:.2} ({}/{total}) too low",
        after_figures.hits
    );
}
