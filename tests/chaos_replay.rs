//! Replay the checked-in chaos regression corpus byte-identically.
//!
//! Each file under `tests/chaos_corpus/` is a shrunken minimal repro
//! (or a clean digest pin) captured by the chaos engine: a
//! self-contained `ChaosPoint` plus the report digest and violations
//! it must reproduce. A drift here means simulator behaviour changed;
//! regenerate deliberately with
//! `cargo run -p cllm-chaos --example gen_corpus -- tests/chaos_corpus`.

use cllm_chaos::Repro;

#[test]
fn chaos_corpus_replays_byte_identically() {
    let dir = format!("{}/tests/chaos_corpus", env!("CARGO_MANIFEST_DIR"));
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("tests/chaos_corpus exists")
        .map(|e| e.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    entries.sort();
    assert!(
        entries.len() >= 4,
        "corpus must hold the planted repro and one clean pin per path, found {}",
        entries.len()
    );
    for path in entries {
        let text = std::fs::read_to_string(&path).expect("corpus file reads");
        let repro = Repro::from_json(&text).unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        let outcome = repro
            .replay()
            .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
        assert_eq!(
            outcome.digest,
            repro.digest,
            "{}: replay digest mismatch",
            path.display()
        );
    }
}

#[test]
fn planted_repro_in_corpus_is_minimal() {
    use cllm_chaos::point::PathSpec;
    let path = format!(
        "{}/tests/chaos_corpus/planted-forbid-aborts.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let repro = Repro::from_json(&std::fs::read_to_string(path).expect("planted repro exists"))
        .expect("planted repro parses");
    assert!(
        repro.violations.iter().any(|v| v.label() == "forbidden"),
        "the planted repro records the forbid-aborts violation"
    );
    let events = match &repro.point.path {
        PathSpec::Autoscale(p) => p.base_fleet.iter().map(|n| n.events.len()).sum::<usize>(),
        other => panic!("planted repro must be an autoscale point, got {other:?}"),
    };
    assert!(
        events <= 3,
        "shrunken repro must stay minimal, has {events}"
    );
}
