//! The paper's 12 insights, asserted end to end through the facade.

use confidential_llms_in_tees::core::insights::check_all;
use confidential_llms_in_tees::core::summary;

#[test]
fn all_twelve_insights_hold() {
    let checks = check_all();
    assert_eq!(checks.len(), 12);
    let failed: Vec<String> = checks
        .iter()
        .filter(|c| !c.holds)
        .map(|c| format!("insight {}: {} [{}]", c.id, c.statement, c.evidence))
        .collect();
    assert!(failed.is_empty(), "failed insights:\n{}", failed.join("\n"));
}

#[test]
fn summary_renders_complete_report() {
    let s = summary::build();
    assert_eq!(s.confirmed(), 12);
    let text = s.render();
    for needle in [
        "Table I",
        "insight  1",
        "insight 12",
        "single-resource overhead",
    ] {
        assert!(text.contains(needle), "missing: {needle}");
    }
}
