//! End-to-end CLI checks for `cllm chaos`: the search is a pure
//! function of its seeds (byte-identical stdout regardless of
//! `CLLM_RUNNER_THREADS`), and the repro path replays corpus files.

use std::process::Command;

fn chaos_stdout(threads: &str, extra: &[&str]) -> (String, bool) {
    let out = Command::new(env!("CARGO_BIN_EXE_cllm"))
        .args(extra)
        .env("CLLM_RUNNER_THREADS", threads)
        .output()
        .expect("cllm runs");
    (
        String::from_utf8(out.stdout).expect("utf-8 stdout"),
        out.status.success(),
    )
}

#[test]
fn chaos_search_is_thread_invariant_and_clean() {
    let (one, ok1) = chaos_stdout("1", &["chaos", "--seeds", "12"]);
    let (eight, ok8) = chaos_stdout("8", &["chaos", "--seeds", "12"]);
    assert!(ok1 && ok8, "pinned seed budget must find no violations");
    assert_eq!(one, eight, "chaos output must not depend on thread count");
    assert!(
        one.contains("0 violation(s)"),
        "summary line reports zero violations: {one}"
    );
    assert!(one.contains("| digest "), "summary line carries the digest");
}

#[test]
fn chaos_repro_flag_replays_the_corpus() {
    let path = format!(
        "{}/tests/chaos_corpus/planted-forbid-aborts.json",
        env!("CARGO_MANIFEST_DIR")
    );
    let (out, ok) = chaos_stdout("1", &["chaos", "--repro", &path]);
    assert!(ok, "corpus repro must replay cleanly: {out}");
    assert!(
        out.contains("repro        : ok"),
        "replay reports success: {out}"
    );
    assert!(
        out.contains("forbidden"),
        "the reproduced violation is printed: {out}"
    );
}
