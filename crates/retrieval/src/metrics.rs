//! Retrieval-quality metrics: nDCG@k, recall@k, MRR.

use crate::index::Hit;
use std::collections::HashMap;

/// Discounted cumulative gain at `k` for a ranked list against graded
/// relevance judgments.
#[must_use]
pub fn dcg_at_k(ranking: &[Hit], qrels: &HashMap<u64, u32>, k: usize) -> f64 {
    ranking
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, h)| {
            let grade = f64::from(qrels.get(&h.doc).copied().unwrap_or(0));
            let gain = 2.0f64.powf(grade) - 1.0;
            gain / (i as f64 + 2.0).log2()
        })
        .sum()
}

/// Normalized DCG at `k`: DCG divided by the ideal DCG of the judgments.
#[must_use]
pub fn ndcg_at_k(ranking: &[Hit], qrels: &HashMap<u64, u32>, k: usize) -> f64 {
    let mut ideal: Vec<u32> = qrels.values().copied().collect();
    ideal.sort_unstable_by(|a, b| b.cmp(a));
    let idcg: f64 = ideal
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, &g)| (2.0f64.powf(f64::from(g)) - 1.0) / (i as f64 + 2.0).log2())
        .sum();
    if idcg == 0.0 {
        return 0.0;
    }
    dcg_at_k(ranking, qrels, k) / idcg
}

/// Fraction of relevant documents retrieved in the top `k`.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn recall_at_k(ranking: &[Hit], qrels: &HashMap<u64, u32>, k: usize) -> f64 {
    let relevant = qrels.values().filter(|&&g| g > 0).count();
    if relevant == 0 {
        return 0.0;
    }
    let found = ranking
        .iter()
        .take(k)
        .filter(|h| qrels.get(&h.doc).copied().unwrap_or(0) > 0)
        .count();
    found as f64 / relevant as f64
}

/// Reciprocal rank of the first relevant document (0 if none retrieved).
#[must_use]
pub fn reciprocal_rank(ranking: &[Hit], qrels: &HashMap<u64, u32>) -> f64 {
    for (i, h) in ranking.iter().enumerate() {
        if qrels.get(&h.doc).copied().unwrap_or(0) > 0 {
            return 1.0 / (i as f64 + 1.0);
        }
    }
    0.0
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hits(ids: &[u64]) -> Vec<Hit> {
        ids.iter()
            .enumerate()
            .map(|(i, &doc)| Hit {
                doc,
                score: 10.0 - i as f64,
            })
            .collect()
    }

    fn qrels(pairs: &[(u64, u32)]) -> HashMap<u64, u32> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn perfect_ranking_ndcg_one() {
        let q = qrels(&[(1, 3), (2, 2), (3, 1)]);
        let n = ndcg_at_k(&hits(&[1, 2, 3]), &q, 10);
        assert!((n - 1.0).abs() < 1e-12, "ndcg {n}");
    }

    #[test]
    fn reversed_ranking_worse() {
        let q = qrels(&[(1, 3), (2, 2), (3, 1)]);
        let best = ndcg_at_k(&hits(&[1, 2, 3]), &q, 10);
        let worst = ndcg_at_k(&hits(&[3, 2, 1]), &q, 10);
        assert!(worst < best);
        assert!(worst > 0.0);
    }

    #[test]
    fn irrelevant_only_is_zero() {
        let q = qrels(&[(1, 3)]);
        assert_eq!(ndcg_at_k(&hits(&[7, 8, 9]), &q, 10), 0.0);
        assert_eq!(reciprocal_rank(&hits(&[7, 8, 9]), &q), 0.0);
    }

    #[test]
    fn recall_counts_top_k_only() {
        let q = qrels(&[(1, 1), (2, 1), (3, 1), (4, 1)]);
        let r = recall_at_k(&hits(&[1, 9, 2, 3, 4]), &q, 3);
        assert!((r - 0.5).abs() < 1e-12, "recall {r}");
    }

    #[test]
    fn mrr_position() {
        let q = qrels(&[(5, 2)]);
        assert!((reciprocal_rank(&hits(&[9, 5, 1]), &q) - 0.5).abs() < 1e-12);
        assert!((reciprocal_rank(&hits(&[5]), &q) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_qrels_safe() {
        let q = qrels(&[]);
        assert_eq!(ndcg_at_k(&hits(&[1]), &q, 10), 0.0);
        assert_eq!(recall_at_k(&hits(&[1]), &q, 10), 0.0);
    }

    #[test]
    fn empty_qrels_dcg_and_rr_are_zero() {
        let q = qrels(&[]);
        assert_eq!(dcg_at_k(&hits(&[1, 2, 3]), &q, 10), 0.0);
        assert_eq!(reciprocal_rank(&hits(&[1, 2, 3]), &q), 0.0);
    }

    #[test]
    fn empty_ranking_safe() {
        let q = qrels(&[(1, 2)]);
        let none: Vec<Hit> = Vec::new();
        assert_eq!(dcg_at_k(&none, &q, 10), 0.0);
        assert_eq!(ndcg_at_k(&none, &q, 10), 0.0);
        assert_eq!(recall_at_k(&none, &q, 10), 0.0);
        assert_eq!(reciprocal_rank(&none, &q), 0.0);
    }

    #[test]
    fn k_zero_scores_nothing() {
        let q = qrels(&[(1, 3)]);
        assert_eq!(dcg_at_k(&hits(&[1]), &q, 0), 0.0);
        assert_eq!(ndcg_at_k(&hits(&[1]), &q, 0), 0.0);
        assert_eq!(recall_at_k(&hits(&[1]), &q, 0), 0.0);
    }

    #[test]
    fn single_doc_ranking_is_its_own_ideal() {
        let q = qrels(&[(42, 3)]);
        let r = hits(&[42]);
        assert!((ndcg_at_k(&r, &q, 1) - 1.0).abs() < 1e-12);
        assert!((recall_at_k(&r, &q, 1) - 1.0).abs() < 1e-12);
        assert!((reciprocal_rank(&r, &q) - 1.0).abs() < 1e-12);
        // DCG of a single grade-3 doc at rank 0: (2^3 - 1) / log2(2).
        assert!((dcg_at_k(&r, &q, 1) - 7.0).abs() < 1e-12);
    }

    #[test]
    fn tied_scores_score_by_position_not_score() {
        // Two rankings with identical (tied) scores but different order:
        // the metrics are rank-based, so position decides.
        let q = qrels(&[(1, 3)]);
        let tied_first = vec![Hit { doc: 1, score: 5.0 }, Hit { doc: 2, score: 5.0 }];
        let tied_second = vec![Hit { doc: 2, score: 5.0 }, Hit { doc: 1, score: 5.0 }];
        assert!(dcg_at_k(&tied_first, &q, 10) > dcg_at_k(&tied_second, &q, 10));
        assert!((reciprocal_rank(&tied_first, &q) - 1.0).abs() < 1e-12);
        assert!((reciprocal_rank(&tied_second, &q) - 0.5).abs() < 1e-12);
        // Recall ignores order entirely within the cutoff.
        assert_eq!(
            recall_at_k(&tied_first, &q, 2),
            recall_at_k(&tied_second, &q, 2)
        );
    }

    #[test]
    fn k_beyond_ranking_length_is_harmless() {
        let q = qrels(&[(1, 1), (2, 1)]);
        let r = hits(&[1]);
        assert!((recall_at_k(&r, &q, 100) - 0.5).abs() < 1e-12);
        assert_eq!(dcg_at_k(&r, &q, 100), dcg_at_k(&r, &q, 1));
    }
}
