//! Cross-encoder reranking.
//!
//! The paper's "Reranked BM25" first retrieves BM25 candidates, then
//! re-scores each (query, document) pair with a cross-encoder. Our
//! cross-encoder stand-in scores pairs jointly — like the real thing it
//! sees both texts at once — by blending IDF-weighted term overlap with
//! embedding cosine similarity. It is much more expensive per pair than
//! BM25 scoring (it re-analyzes both texts), preserving the cost shape
//! the RAG latency experiment needs.

use crate::dense::{cosine, Embedder};
use crate::index::{Hit, InvertedIndex};
use crate::text::analyze;
use std::collections::HashSet;

/// Cross-encoder-style pair scorer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrossEncoder {
    embedder: Embedder,
    /// Weight of lexical-overlap evidence.
    pub alpha: f64,
    /// Weight of semantic-similarity evidence.
    pub beta: f64,
}

impl CrossEncoder {
    /// Default blend (tuned on the synthetic BEIR corpus).
    #[must_use]
    pub fn new(embedding_dim: usize) -> Self {
        CrossEncoder {
            embedder: Embedder::new(embedding_dim),
            alpha: 0.6,
            beta: 0.4,
        }
    }

    /// Score one (query, document) pair; higher is more relevant.
    /// `idf` supplies corpus statistics for the lexical part.
    #[must_use]
    pub fn score(&self, query: &str, document: &str, idf: &InvertedIndex) -> f64 {
        let q_terms = analyze(query);
        let d_terms: HashSet<String> = analyze(document).into_iter().collect();
        let mut overlap = 0.0;
        let mut total = 0.0;
        for t in &q_terms {
            let w = idf.idf(t).max(0.1);
            total += w;
            if d_terms.contains(t) {
                overlap += w;
            }
        }
        let lexical = if total > 0.0 { overlap / total } else { 0.0 };
        let semantic = f64::from(cosine(
            &self.embedder.embed(query),
            &self.embedder.embed(document),
        ));
        self.alpha * lexical + self.beta * semantic
    }

    /// Rerank `candidates` (doc id -> text lookup via `doc_text`),
    /// returning the same set re-ordered by cross-encoder score.
    #[must_use]
    pub fn rerank<'a, F>(
        &self,
        query: &str,
        candidates: &[Hit],
        idf: &InvertedIndex,
        mut doc_text: F,
    ) -> Vec<Hit>
    where
        F: FnMut(u64) -> &'a str,
    {
        let mut rescored: Vec<Hit> = candidates
            .iter()
            .map(|h| Hit {
                doc: h.doc,
                score: self.score(query, doc_text(h.doc), idf),
            })
            .collect();
        rescored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.doc.cmp(&b.doc))
        });
        rescored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> (InvertedIndex, Vec<&'static str>) {
        let docs = vec![
            "trusted execution environment protects llm weights", // 0
            "llm inference with large batch sizes on gpus",       // 1
            "weights of the llm stay encrypted in the enclave",   // 2
            "gardening tips for growing tomatoes",                // 3
        ];
        let mut idx = InvertedIndex::new();
        for (i, d) in docs.iter().enumerate() {
            idx.add(i as u64, d);
        }
        (idx, docs)
    }

    #[test]
    fn reranking_promotes_semantic_match() {
        let (idx, docs) = corpus();
        let ce = CrossEncoder::new(128);
        let candidates = idx.search("encrypted llm weights enclave", 4);
        let reranked = ce.rerank("encrypted llm weights enclave", &candidates, &idx, |d| {
            docs[d as usize]
        });
        assert_eq!(reranked[0].doc, 2);
    }

    #[test]
    fn irrelevant_docs_score_low() {
        let (idx, docs) = corpus();
        let ce = CrossEncoder::new(128);
        let s_rel = ce.score("protect llm weights", docs[0], &idx);
        let s_irr = ce.score("protect llm weights", docs[3], &idx);
        assert!(s_rel > s_irr + 0.2, "{s_rel} vs {s_irr}");
    }

    #[test]
    fn rerank_preserves_candidate_set() {
        let (idx, docs) = corpus();
        let ce = CrossEncoder::new(64);
        let candidates = idx.search("llm", 3);
        let reranked = ce.rerank("llm", &candidates, &idx, |d| docs[d as usize]);
        let mut a: Vec<u64> = candidates.iter().map(|h| h.doc).collect();
        let mut b: Vec<u64> = reranked.iter().map(|h| h.doc).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_query_scores_zeroish() {
        let (idx, docs) = corpus();
        let ce = CrossEncoder::new(64);
        let s = ce.score("", docs[0], &idx);
        assert!(s.abs() < 0.25);
    }
}
