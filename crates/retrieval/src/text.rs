//! Text analysis: tokenization, stopwords, light stemming.

/// English stopwords pruned from indexing and queries.
const STOPWORDS: &[&str] = &[
    "a", "an", "and", "are", "as", "at", "be", "but", "by", "for", "if", "in", "into", "is", "it",
    "no", "not", "of", "on", "or", "such", "that", "the", "their", "then", "there", "these",
    "they", "this", "to", "was", "will", "with",
];

/// Whether a token is a stopword.
#[must_use]
pub fn is_stopword(token: &str) -> bool {
    STOPWORDS.contains(&token)
}

/// Light suffix-stripping stemmer (Porter-inspired, much simpler): strips
/// plural/verbal suffixes so `enclaves`/`enclave` and `ranked`/`ranking`
/// collide.
#[must_use]
pub fn stem(token: &str) -> String {
    let mut t = token.to_owned();
    for (suffix, min_stem) in [
        ("ations", 4),
        ("ation", 4),
        ("ing", 4),
        ("edly", 4),
        ("ies", 3),
        ("ed", 4),
        ("ly", 4),
        ("es", 3),
        ("s", 3),
    ] {
        if let Some(stripped) = t.strip_suffix(suffix) {
            if stripped.len() >= min_stem {
                t = stripped.to_owned();
                break;
            }
        }
    }
    // Porter-style cleanup: drop a trailing 'e' and collapse doubled
    // final consonants so `enclave`/`enclaves` and `run`/`running`
    // collide.
    if t.len() > 3 && t.ends_with('e') {
        t.pop();
    }
    let bytes = t.as_bytes();
    if t.len() > 3 && bytes[t.len() - 1] == bytes[t.len() - 2] {
        t.pop();
    }
    t
}

/// Analyze text into index terms: lowercase, split on non-alphanumerics,
/// drop stopwords and one-character tokens, stem.
#[must_use]
pub fn analyze(text: &str) -> Vec<String> {
    text.to_lowercase()
        .split(|c: char| !c.is_alphanumeric())
        .filter(|t| t.len() > 1 && !is_stopword(t))
        .map(stem)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analyze_basic() {
        let terms = analyze("The Enclaves are Running, securely!");
        assert_eq!(terms, vec!["enclav", "run", "secur"]);
        // Singular and plural collide on the same stem.
        assert_eq!(stem("enclave"), stem("enclaves"));
        assert_eq!(stem("run"), stem("running"));
    }

    #[test]
    fn stopwords_removed() {
        assert!(analyze("the of and").is_empty());
    }

    #[test]
    fn stemming_collides_variants() {
        assert_eq!(stem("ranked"), "rank");
        assert_eq!(stem("ranks"), "rank");
        assert_eq!(stem("querying"), "query");
    }

    #[test]
    fn short_tokens_dropped() {
        assert!(analyze("a b c").is_empty());
    }

    #[test]
    fn numbers_kept() {
        assert_eq!(analyze("llama2 70b"), vec!["llama2", "70b"]);
    }

    #[test]
    fn stem_keeps_short_words() {
        assert_eq!(stem("is"), "is");
        assert_eq!(stem("bus"), "bus");
    }
}
