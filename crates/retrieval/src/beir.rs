//! Synthetic BEIR-like benchmark generator.
//!
//! BEIR is a heterogeneous retrieval benchmark (documents, queries and
//! graded relevance judgments). We cannot redistribute its datasets, so
//! this module generates a statistically similar corpus: topical clusters
//! with shared vocabulary, queries drawn from a topic's vocabulary, and
//! qrels marking same-topic documents as relevant — preserving what the
//! RAG experiments need (a corpus where BM25 / reranking / dense
//! retrieval behave differently but all find topical matches).

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use std::collections::HashMap;

/// A generated benchmark: corpus, queries and relevance judgments.
#[derive(Debug, Clone)]
pub struct BeirDataset {
    /// Documents: id -> text.
    pub docs: Vec<(u64, String)>,
    /// Queries: id -> text.
    pub queries: Vec<(u64, String)>,
    /// Relevance judgments: query id -> (doc id -> grade 1..=3).
    pub qrels: HashMap<u64, HashMap<u64, u32>>,
}

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeirSpec {
    /// Number of topics.
    pub topics: usize,
    /// Documents per topic.
    pub docs_per_topic: usize,
    /// Queries per topic.
    pub queries_per_topic: usize,
    /// Words per document.
    pub doc_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for BeirSpec {
    fn default() -> Self {
        BeirSpec {
            topics: 12,
            docs_per_topic: 40,
            queries_per_topic: 4,
            doc_len: 48,
            seed: 2024,
        }
    }
}

/// Topic stems used to synthesize vocabulary clusters.
const TOPIC_STEMS: &[&str] = &[
    "enclave", "ledger", "genome", "orbit", "harvest", "tariff", "sonata", "glacier", "neuron",
    "verdict", "reactor", "pigment", "monsoon", "quorum", "saddle", "lattice",
];

/// Shared filler words that appear across all topics (realistic overlap).
const FILLER: &[&str] = &[
    "report", "study", "result", "method", "system", "analysis", "data", "process", "value",
    "model", "design", "case", "review", "impact", "approach",
];

fn topic_vocab(topic: usize) -> Vec<String> {
    let stem = TOPIC_STEMS[topic % TOPIC_STEMS.len()];
    let round = topic / TOPIC_STEMS.len();
    (0..24)
        .map(|i| {
            format!(
                "{stem}{}{i}",
                if round == 0 {
                    String::new()
                } else {
                    round.to_string()
                }
            )
        })
        .collect()
}

/// Generate a dataset from a spec. Fully deterministic in the seed.
#[must_use]
pub fn generate(spec: &BeirSpec) -> BeirDataset {
    let mut rng = StdRng::seed_from_u64(spec.seed);
    let mut docs = Vec::new();
    let mut queries = Vec::new();
    let mut qrels: HashMap<u64, HashMap<u64, u32>> = HashMap::new();

    let vocabs: Vec<Vec<String>> = (0..spec.topics).map(topic_vocab).collect();

    let mut doc_id = 0u64;
    let mut topic_docs: Vec<Vec<u64>> = vec![Vec::new(); spec.topics];
    for (topic, vocab) in vocabs.iter().enumerate() {
        for _ in 0..spec.docs_per_topic {
            let mut words = Vec::with_capacity(spec.doc_len);
            for _ in 0..spec.doc_len {
                // 70% topical vocabulary, 30% shared filler.
                if rng.random::<f64>() < 0.7 {
                    words.push(vocab[rng.random_range(0..vocab.len())].clone());
                } else {
                    words.push(FILLER[rng.random_range(0..FILLER.len())].to_owned());
                }
            }
            docs.push((doc_id, words.join(" ")));
            topic_docs[topic].push(doc_id);
            doc_id += 1;
        }
    }

    let mut query_id = 0u64;
    for (topic, vocab) in vocabs.iter().enumerate() {
        for _ in 0..spec.queries_per_topic {
            let n_terms = 2 + rng.random_range(0..3usize);
            let mut words = Vec::with_capacity(n_terms);
            for _ in 0..n_terms {
                words.push(vocab[rng.random_range(0..vocab.len())].clone());
            }
            let text = words.join(" ");
            let mut rels = HashMap::new();
            for &d in &topic_docs[topic] {
                // Same-topic documents are relevant; grade by whether the
                // document actually contains a query term.
                let doc_text = &docs[d as usize].1;
                let grade = if words.iter().any(|w| doc_text.contains(w.as_str())) {
                    3
                } else {
                    1
                };
                rels.insert(d, grade);
            }
            qrels.insert(query_id, rels);
            queries.push((query_id, text));
            query_id += 1;
        }
    }

    BeirDataset {
        docs,
        queries,
        qrels,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let a = generate(&BeirSpec::default());
        let b = generate(&BeirSpec::default());
        assert_eq!(a.docs, b.docs);
        assert_eq!(a.queries, b.queries);
    }

    #[test]
    fn sizes_match_spec() {
        let spec = BeirSpec {
            topics: 3,
            docs_per_topic: 5,
            queries_per_topic: 2,
            doc_len: 10,
            seed: 1,
        };
        let d = generate(&spec);
        assert_eq!(d.docs.len(), 15);
        assert_eq!(d.queries.len(), 6);
        assert_eq!(d.qrels.len(), 6);
    }

    #[test]
    fn qrels_point_into_same_topic() {
        let spec = BeirSpec {
            topics: 4,
            docs_per_topic: 6,
            queries_per_topic: 1,
            doc_len: 20,
            seed: 9,
        };
        let d = generate(&spec);
        // Query q belongs to topic q (1 query per topic); its relevant
        // docs must be exactly the 6 docs of that topic.
        for (qid, rels) in &d.qrels {
            let topic = *qid as usize;
            let lo = (topic * 6) as u64;
            let hi = lo + 6;
            assert!(rels.keys().all(|&d| d >= lo && d < hi));
            assert_eq!(rels.len(), 6);
        }
    }

    #[test]
    fn topics_use_distinct_vocabulary() {
        let v0 = topic_vocab(0);
        let v1 = topic_vocab(1);
        assert!(v0.iter().all(|w| !v1.contains(w)));
    }

    #[test]
    fn grades_in_range() {
        let d = generate(&BeirSpec::default());
        for rels in d.qrels.values() {
            assert!(rels.values().all(|&g| (1..=3).contains(&g)));
        }
    }
}
