//! Dense retrieval: a deterministic sentence embedder and a brute-force
//! vector index — the SBERT stand-in of Section VI.
//!
//! The embedder hashes unigrams and bigrams of the analyzed text into a
//! fixed-dimension feature vector (feature hashing / "hashing trick"),
//! then L2-normalizes. Documents about the same topic share vocabulary,
//! so their vectors land close in cosine space — the property the RAG
//! quality metrics need — while remaining fully deterministic and
//! dependency-free.

use crate::text::analyze;

/// Feature-hashing sentence embedder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Embedder {
    /// Embedding dimension.
    pub dim: usize,
}

impl Embedder {
    /// An embedder producing `dim`-dimensional unit vectors.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim >= 8, "embedding dimension too small");
        Embedder { dim }
    }

    /// Embed text into an L2-normalized vector.
    #[must_use]
    pub fn embed(&self, text: &str) -> Vec<f32> {
        let terms = analyze(text);
        let mut v = vec![0.0f32; self.dim];
        let mut add = |feature: &str, weight: f32| {
            let h = fxhash(feature.as_bytes());
            let idx = (h as usize) % self.dim;
            // Second hash bit decides sign, keeping features roughly
            // zero-mean (standard hashing-trick practice).
            let sign = if h & (1 << 63) == 0 { 1.0 } else { -1.0 };
            v[idx] += sign * weight;
        };
        for t in &terms {
            add(t, 1.0);
        }
        for w in terms.windows(2) {
            add(&format!("{} {}", w[0], w[1]), 0.5);
        }
        l2_normalize(&mut v);
        v
    }
}

/// FNV-1a 64-bit hash.
fn fxhash(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn l2_normalize(v: &mut [f32]) {
    let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
}

/// Cosine similarity of two unit vectors (plain dot product).
#[must_use]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// A brute-force cosine-similarity vector index.
#[derive(Debug, Default)]
pub struct VectorIndex {
    ids: Vec<u64>,
    vectors: Vec<Vec<f32>>,
}

impl VectorIndex {
    /// An empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Add a vector under a document id.
    pub fn add(&mut self, doc: u64, vector: Vec<f32>) {
        self.ids.push(doc);
        self.vectors.push(vector);
    }

    /// Top-`k` documents by cosine similarity to `query`.
    #[must_use]
    pub fn search(&self, query: &[f32], k: usize) -> Vec<crate::index::Hit> {
        let mut hits: Vec<crate::index::Hit> = self
            .ids
            .iter()
            .zip(&self.vectors)
            .map(|(&doc, v)| crate::index::Hit {
                doc,
                score: f64::from(cosine(query, v)),
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("cosine is finite")
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embeddings_are_unit_norm() {
        let e = Embedder::new(64);
        let v = e.embed("confidential llm inference");
        let norm: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn embedding_deterministic() {
        let e = Embedder::new(64);
        assert_eq!(e.embed("same text"), e.embed("same text"));
    }

    #[test]
    fn similar_texts_closer_than_dissimilar() {
        let e = Embedder::new(128);
        let a = e.embed("running llama inference inside trusted enclaves");
        let b = e.embed("llama inference within a trusted enclave runtime");
        let c = e.embed("baking sourdough bread with wild yeast culture");
        assert!(
            cosine(&a, &b) > cosine(&a, &c) + 0.2,
            "topical similarity not captured: {} vs {}",
            cosine(&a, &b),
            cosine(&a, &c)
        );
    }

    #[test]
    fn empty_text_embeds_to_zero() {
        let e = Embedder::new(32);
        let v = e.embed("");
        assert!(v.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn vector_search_finds_nearest() {
        let e = Embedder::new(128);
        let mut idx = VectorIndex::new();
        idx.add(0, e.embed("secure enclave attestation and sealing"));
        idx.add(1, e.embed("pasta carbonara recipe with eggs"));
        idx.add(2, e.embed("enclave sealing keys derived from measurement"));
        let hits = idx.search(&e.embed("enclave sealing"), 2);
        assert_eq!(hits.len(), 2);
        assert!(hits.iter().all(|h| h.doc != 1));
    }

    #[test]
    fn search_scores_sorted() {
        let e = Embedder::new(64);
        let mut idx = VectorIndex::new();
        for (i, t) in ["alpha beta", "beta gamma", "delta epsilon"]
            .iter()
            .enumerate()
        {
            idx.add(i as u64, e.embed(t));
        }
        let hits = idx.search(&e.embed("beta"), 3);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }
}
