//! Inverted index with BM25 scoring.

use crate::text::analyze;
use std::collections::HashMap;

/// BM25 parameters (Elasticsearch defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Bm25Params {
    /// Term-frequency saturation.
    pub k1: f64,
    /// Length normalization.
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// One posting: document id and term frequency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Posting {
    doc: u64,
    tf: u32,
}

/// A scored search hit.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Document id.
    pub doc: u64,
    /// Relevance score (higher is better).
    pub score: f64,
}

/// An in-memory inverted index over analyzed terms.
#[derive(Debug, Default)]
pub struct InvertedIndex {
    postings: HashMap<String, Vec<Posting>>,
    doc_len: HashMap<u64, u32>,
    total_len: u64,
    params: Bm25Params,
}

impl InvertedIndex {
    /// An empty index with default BM25 parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Set BM25 parameters.
    pub fn set_params(&mut self, params: Bm25Params) {
        self.params = params;
    }

    /// Number of indexed documents.
    #[must_use]
    pub fn len(&self) -> usize {
        self.doc_len.len()
    }

    /// Whether the index holds no documents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.doc_len.is_empty()
    }

    /// Index (or re-index) a document.
    ///
    /// # Panics
    ///
    /// Panics if the document id was already indexed (delete-then-add is
    /// not supported by this mini engine).
    pub fn add(&mut self, doc: u64, text: &str) {
        assert!(
            !self.doc_len.contains_key(&doc),
            "document {doc} already indexed"
        );
        let terms = analyze(text);
        let mut tf: HashMap<&str, u32> = HashMap::new();
        for t in &terms {
            *tf.entry(t.as_str()).or_insert(0) += 1;
        }
        for (term, count) in tf {
            self.postings
                .entry(term.to_owned())
                .or_default()
                .push(Posting { doc, tf: count });
        }
        let len = u32::try_from(terms.len()).unwrap_or(u32::MAX);
        self.doc_len.insert(doc, len);
        self.total_len += u64::from(len);
    }

    fn avg_len(&self) -> f64 {
        if self.doc_len.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.total_len as f64 / self.doc_len.len() as f64
        }
    }

    /// Inverse document frequency of a term (BM25+ style, floored at 0).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn idf(&self, term: &str) -> f64 {
        let n = self.doc_len.len() as f64;
        let df = self.postings.get(term).map_or(0, Vec::len) as f64;
        (((n - df + 0.5) / (df + 0.5)) + 1.0).ln().max(0.0)
    }

    /// BM25 search: returns up to `k` hits sorted by descending score
    /// (ties broken by ascending doc id for determinism).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn search(&self, query: &str, k: usize) -> Vec<Hit> {
        let terms = analyze(query);
        let avg = self.avg_len();
        let mut scores: HashMap<u64, f64> = HashMap::new();
        for term in &terms {
            let Some(postings) = self.postings.get(term) else {
                continue;
            };
            let idf = self.idf(term);
            for p in postings {
                let len = f64::from(self.doc_len[&p.doc]);
                let tf = f64::from(p.tf);
                let denom = tf + self.params.k1 * (1.0 - self.params.b + self.params.b * len / avg);
                let score = idf * tf * (self.params.k1 + 1.0) / denom;
                *scores.entry(p.doc).or_insert(0.0) += score;
            }
        }
        let mut hits: Vec<Hit> = scores
            .into_iter()
            .map(|(doc, score)| Hit { doc, score })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .expect("scores are finite")
                .then(a.doc.cmp(&b.doc))
        });
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> InvertedIndex {
        let mut idx = InvertedIndex::new();
        idx.add(0, "trusted execution environments protect model weights");
        idx.add(1, "llama inference throughput on cpu platforms");
        idx.add(2, "cooking recipes with fresh garden vegetables");
        idx.add(3, "trusted enclaves run llama inference confidentially");
        idx
    }

    #[test]
    fn exact_topic_wins() {
        let idx = sample();
        let hits = idx.search("trusted llama inference", 4);
        assert_eq!(hits[0].doc, 3, "doc 3 matches all three terms");
        assert!(hits.iter().all(|h| h.doc != 2), "cooking doc is irrelevant");
    }

    #[test]
    fn empty_query_no_hits() {
        let idx = sample();
        assert!(idx.search("of the and", 5).is_empty());
    }

    #[test]
    fn unknown_terms_ignored() {
        let idx = sample();
        let hits = idx.search("llama zzzzz", 5);
        assert!(!hits.is_empty());
    }

    #[test]
    fn rare_terms_score_higher() {
        let mut idx = InvertedIndex::new();
        for i in 0..20 {
            idx.add(i, "common words everywhere common words");
        }
        idx.add(100, "common words plus unique sgx enclave");
        assert!(idx.idf("sgx") > idx.idf("common"));
        let hits = idx.search("sgx", 5);
        assert_eq!(hits[0].doc, 100);
    }

    #[test]
    fn scores_sorted_descending() {
        let idx = sample();
        let hits = idx.search("trusted inference", 10);
        for w in hits.windows(2) {
            assert!(w[0].score >= w[1].score);
        }
    }

    #[test]
    fn k_truncates() {
        let idx = sample();
        assert!(idx.search("inference", 1).len() <= 1);
    }

    #[test]
    #[should_panic(expected = "already indexed")]
    fn duplicate_add_panics() {
        let mut idx = sample();
        idx.add(0, "again");
    }

    #[test]
    fn tf_saturation() {
        // BM25 saturates term frequency: 10 repetitions shouldn't score
        // 10x a single occurrence.
        let mut idx = InvertedIndex::new();
        idx.add(0, "enclave");
        idx.add(1, &"enclave ".repeat(10));
        idx.add(2, "unrelated filler text here");
        let hits = idx.search("enclave", 3);
        let (s_many, s_one) = if hits[0].doc == 1 {
            (hits[0].score, hits[1].score)
        } else {
            (hits[1].score, hits[0].score)
        };
        assert!(
            s_many / s_one < 3.0,
            "saturation failed: {s_many} vs {s_one}"
        );
    }
}
