//! Engine snapshots: logical persistence of the document store.
//!
//! Like Elasticsearch snapshots, persistence works at the document level:
//! a snapshot captures every stored document; restoring replays them
//! through the analyzers, rebuilding both indexes deterministically. The
//! byte format is a simple length-prefixed binary layout so snapshots can
//! be sealed/encrypted by the TEE layer without further dependencies.

use crate::engine::Engine;

/// A serializable snapshot of an engine's documents.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Embedding dimension the engine was built with.
    pub embedding_dim: usize,
    /// All stored documents.
    pub docs: Vec<(u64, String)>,
}

/// Errors while decoding a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(&'static str);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "snapshot decode error: {}", self.0)
    }
}

impl std::error::Error for DecodeError {}

const MAGIC: &[u8; 4] = b"CIDX";

impl Snapshot {
    /// Capture a snapshot of an engine.
    #[must_use]
    pub fn capture(engine: &Engine, embedding_dim: usize) -> Self {
        let mut docs: Vec<(u64, String)> = engine
            .doc_ids()
            .into_iter()
            .filter_map(|id| engine.get(id).map(|t| (id, t.to_owned())))
            .collect();
        docs.sort_by_key(|(id, _)| *id);
        Snapshot {
            embedding_dim,
            docs,
        }
    }

    /// Encode to bytes.
    #[must_use]
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.embedding_dim as u32).to_le_bytes());
        out.extend_from_slice(&(self.docs.len() as u32).to_le_bytes());
        for (id, text) in &self.docs {
            out.extend_from_slice(&id.to_le_bytes());
            out.extend_from_slice(&(text.len() as u32).to_le_bytes());
            out.extend_from_slice(text.as_bytes());
        }
        out
    }

    /// Decode from bytes.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, DecodeError> {
        let mut pos = 0usize;
        let take = |pos: &mut usize, n: usize| -> Result<&[u8], DecodeError> {
            let end = pos.checked_add(n).ok_or(DecodeError("overflow"))?;
            if end > bytes.len() {
                return Err(DecodeError("truncated"));
            }
            let s = &bytes[*pos..end];
            *pos = end;
            Ok(s)
        };
        if take(&mut pos, 4)? != MAGIC {
            return Err(DecodeError("bad magic"));
        }
        let dim = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        let count = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
        let mut docs = Vec::with_capacity(count.min(1 << 20));
        for _ in 0..count {
            let id = u64::from_le_bytes(take(&mut pos, 8)?.try_into().expect("8"));
            let len = u32::from_le_bytes(take(&mut pos, 4)?.try_into().expect("4")) as usize;
            let text = std::str::from_utf8(take(&mut pos, len)?)
                .map_err(|_| DecodeError("invalid utf8"))?
                .to_owned();
            docs.push((id, text));
        }
        if pos != bytes.len() {
            return Err(DecodeError("trailing bytes"));
        }
        Ok(Snapshot {
            embedding_dim: dim,
            docs,
        })
    }

    /// Rebuild an engine from the snapshot (re-analyzes all documents —
    /// deterministic, so search results match the original exactly).
    #[must_use]
    pub fn restore(&self) -> Engine {
        let mut engine = Engine::new(self.embedding_dim);
        for (id, text) in &self.docs {
            engine.put(*id, text);
        }
        engine
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SearchMode;

    fn sample() -> Engine {
        let mut e = Engine::new(64);
        e.bulk([
            (3u64, "trusted enclave attestation quote"),
            (1, "bm25 ranking of keyword documents"),
            (7, "tomato gardening in raised beds"),
        ]);
        e
    }

    #[test]
    fn roundtrip_preserves_search_results() {
        let original = sample();
        let snap = Snapshot::capture(&original, 64);
        let restored = Snapshot::from_bytes(&snap.to_bytes()).unwrap().restore();
        for mode in [SearchMode::Bm25, SearchMode::Sbert] {
            let a = original.search("enclave attestation", mode, 5);
            let b = restored.search("enclave attestation", mode, 5);
            assert_eq!(a, b, "{}", mode.label());
        }
        assert_eq!(restored.len(), 3);
        assert_eq!(restored.get(7), Some("tomato gardening in raised beds"));
    }

    #[test]
    fn snapshot_is_deterministic() {
        let e = sample();
        assert_eq!(
            Snapshot::capture(&e, 64).to_bytes(),
            Snapshot::capture(&e, 64).to_bytes()
        );
    }

    #[test]
    fn malformed_bytes_rejected() {
        assert!(Snapshot::from_bytes(b"nope").is_err());
        let mut good = Snapshot::capture(&sample(), 64).to_bytes();
        good.truncate(good.len() - 3);
        assert!(Snapshot::from_bytes(&good).is_err());
        let mut trailing = Snapshot::capture(&sample(), 64).to_bytes();
        trailing.push(0);
        assert!(Snapshot::from_bytes(&trailing).is_err());
    }

    #[test]
    fn empty_engine_roundtrips() {
        let e = Engine::new(32);
        let snap = Snapshot::capture(&e, 32);
        let restored = Snapshot::from_bytes(&snap.to_bytes()).unwrap().restore();
        assert!(restored.is_empty());
    }
}
