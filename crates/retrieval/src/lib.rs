//! A miniature search engine: the Elasticsearch stand-in for the RAG
//! experiments.
//!
//! Section VI runs three retrieval methods over BEIR, with the documents
//! held in an Elasticsearch database, entirely inside TDX:
//!
//! * **BM25** — classic keyword ranking ([`index::InvertedIndex`]).
//! * **Reranked BM25** — BM25 candidates re-scored by a cross-encoder
//!   ([`rerank`]).
//! * **SBERT** — dense retrieval by cosine similarity over sentence
//!   embeddings ([`dense`]).
//!
//! Everything is implemented from scratch: text analysis ([`text`]), the
//! inverted index with BM25 scoring, a deterministic feature-hashing
//! embedder with a brute-force vector index, the reranker, a synthetic
//! BEIR-like corpus generator with relevance judgments ([`beir`]), and
//! retrieval-quality metrics (nDCG@10, recall, MRR — [`metrics`]).
//! [`engine::Engine`] ties them together behind one Elasticsearch-shaped
//! facade.
//!
//! # Example
//!
//! ```
//! use cllm_retrieval::engine::{Engine, SearchMode};
//!
//! let mut engine = Engine::new(64);
//! engine.put(0, "confidential llm inference in trusted enclaves");
//! engine.put(1, "cooking pasta with garlic and olive oil");
//! let hits = engine.search("enclave inference", SearchMode::Bm25, 10);
//! assert_eq!(hits[0].doc, 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod beir;
pub mod dense;
pub mod engine;
pub mod index;
pub mod metrics;
pub mod persist;
pub mod rerank;
pub mod text;
