//! The Elasticsearch-shaped facade tying the retrieval components
//! together: one store, three search modes.

use crate::dense::{Embedder, VectorIndex};
use crate::index::{Hit, InvertedIndex};
use crate::rerank::CrossEncoder;
use std::collections::HashMap;

/// How a search request is executed (the three RAG methods of Figure 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SearchMode {
    /// Classic BM25 keyword ranking.
    Bm25,
    /// BM25 candidates re-scored by the cross-encoder.
    RerankedBm25 {
        /// How many BM25 candidates to rerank.
        candidates: usize,
    },
    /// Dense retrieval by embedding cosine similarity (SBERT-style).
    Sbert,
}

impl SearchMode {
    /// Figure-14 label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SearchMode::Bm25 => "BM25",
            SearchMode::RerankedBm25 { .. } => "Reranked BM25",
            SearchMode::Sbert => "SBERT",
        }
    }
}

/// A document store with lexical and dense indexes.
#[derive(Debug)]
pub struct Engine {
    inverted: InvertedIndex,
    vectors: VectorIndex,
    embedder: Embedder,
    cross_encoder: CrossEncoder,
    texts: HashMap<u64, String>,
}

impl Engine {
    /// A new engine with the given embedding dimension.
    #[must_use]
    pub fn new(embedding_dim: usize) -> Self {
        Engine {
            inverted: InvertedIndex::new(),
            vectors: VectorIndex::new(),
            embedder: Embedder::new(embedding_dim),
            cross_encoder: CrossEncoder::new(embedding_dim),
            texts: HashMap::new(),
        }
    }

    /// Index a document in both indexes.
    pub fn put(&mut self, doc: u64, text: &str) {
        self.inverted.add(doc, text);
        self.vectors.add(doc, self.embedder.embed(text));
        self.texts.insert(doc, text.to_owned());
    }

    /// Bulk-index documents.
    pub fn bulk<'a>(&mut self, docs: impl IntoIterator<Item = (u64, &'a str)>) {
        for (id, text) in docs {
            self.put(id, text);
        }
    }

    /// Number of documents indexed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.texts.len()
    }

    /// Whether the engine holds no documents.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.texts.is_empty()
    }

    /// Retrieve a stored document's text.
    #[must_use]
    pub fn get(&self, doc: u64) -> Option<&str> {
        self.texts.get(&doc).map(String::as_str)
    }

    /// Ids of all stored documents (unordered).
    #[must_use]
    pub fn doc_ids(&self) -> Vec<u64> {
        self.texts.keys().copied().collect()
    }

    /// Execute a search, returning up to `k` hits.
    #[must_use]
    pub fn search(&self, query: &str, mode: SearchMode, k: usize) -> Vec<Hit> {
        match mode {
            SearchMode::Bm25 => self.inverted.search(query, k),
            SearchMode::RerankedBm25 { candidates } => {
                let pool = self.inverted.search(query, candidates.max(k));
                let mut reranked = self
                    .cross_encoder
                    .rerank(query, &pool, &self.inverted, |d| {
                        self.texts.get(&d).map_or("", String::as_str)
                    });
                reranked.truncate(k);
                reranked
            }
            SearchMode::Sbert => self.vectors.search(&self.embedder.embed(query), k),
        }
    }

    /// Approximate work units for one query in each mode — used by the
    /// perf layer to model Figure 14's relative retrieval latencies
    /// (BM25 cheap, reranked = BM25 + candidate re-scoring, SBERT = full
    /// index scan).
    #[must_use]
    pub fn query_cost_units(&self, mode: SearchMode) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let n = self.len() as f64;
        match mode {
            SearchMode::Bm25 => n * 0.02 + 1.0,
            SearchMode::RerankedBm25 { candidates } => {
                #[allow(clippy::cast_precision_loss)]
                let c = candidates as f64;
                n * 0.02 + 1.0 + c * 2.5
            }
            SearchMode::Sbert => n * 0.12 + 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::beir::{self, BeirSpec};
    use crate::metrics::ndcg_at_k;

    fn loaded_engine() -> (Engine, beir::BeirDataset) {
        let data = beir::generate(&BeirSpec {
            topics: 6,
            docs_per_topic: 12,
            queries_per_topic: 2,
            doc_len: 30,
            seed: 5,
        });
        let mut e = Engine::new(128);
        for (id, text) in &data.docs {
            e.put(*id, text);
        }
        (e, data)
    }

    #[test]
    fn all_modes_retrieve_topical_docs() {
        let (e, data) = loaded_engine();
        for mode in [
            SearchMode::Bm25,
            SearchMode::RerankedBm25 { candidates: 20 },
            SearchMode::Sbert,
        ] {
            let mut total = 0.0;
            for (qid, qtext) in &data.queries {
                let hits = e.search(qtext, mode, 10);
                total += ndcg_at_k(&hits, &data.qrels[qid], 10);
            }
            let mean = total / data.queries.len() as f64;
            assert!(mean > 0.5, "{}: mean nDCG@10 {mean}", mode.label());
        }
    }

    #[test]
    fn reranking_does_not_hurt_much() {
        let (e, data) = loaded_engine();
        let mut bm25 = 0.0;
        let mut rr = 0.0;
        for (qid, qtext) in &data.queries {
            bm25 += ndcg_at_k(&e.search(qtext, SearchMode::Bm25, 10), &data.qrels[qid], 10);
            rr += ndcg_at_k(
                &e.search(qtext, SearchMode::RerankedBm25 { candidates: 20 }, 10),
                &data.qrels[qid],
                10,
            );
        }
        assert!(rr > bm25 * 0.8, "reranked {rr} vs bm25 {bm25}");
    }

    #[test]
    fn cost_ordering_matches_figure_14() {
        // Figure 14: BM25 cheapest, SBERT and reranked far costlier.
        let (e, _) = loaded_engine();
        let bm25 = e.query_cost_units(SearchMode::Bm25);
        let rr = e.query_cost_units(SearchMode::RerankedBm25 { candidates: 50 });
        let sbert = e.query_cost_units(SearchMode::Sbert);
        assert!(bm25 < sbert);
        assert!(bm25 < rr);
    }

    #[test]
    fn get_returns_stored_text() {
        let mut e = Engine::new(64);
        e.put(7, "hello world");
        assert_eq!(e.get(7), Some("hello world"));
        assert_eq!(e.get(8), None);
        assert_eq!(e.len(), 1);
    }

    #[test]
    fn bulk_indexes_everything() {
        let mut e = Engine::new(64);
        e.bulk([(0u64, "alpha"), (1, "beta"), (2, "gamma")]);
        assert_eq!(e.len(), 3);
    }
}
