//! Property tests on trace conservation: across random fleets, fault
//! plans and admission bounds, the span trace must tile every node's
//! timeline (`busy + idle + outage == makespan`), chain every request's
//! latency, attribute 100% of the makespan, and never perturb the
//! simulation it observes.

use cllm_cost::{SpillPenalty, SpotParams};
use cllm_obs::{check, node_totals, request_chains};
use cllm_serve::cluster::{
    simulate_cluster, simulate_cluster_traced, ClusterConfig, NodeSpec, WaveModel,
};
use cllm_serve::faults::{FaultPlan, FaultRates};
use cllm_serve::router::AdmissionPolicy;
use cllm_serve::router::BreakerConfig;
use cllm_serve::sim::{
    simulate_serving_faulted, simulate_serving_traced, ServingConfig, ServingNode,
};
use cllm_serve::workload::ArrivalProcess;
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig, TeeKind};
use proptest::prelude::*;

const EPS: f64 = 1e-6;

fn serving(rate: f64, seed: u64) -> ServingConfig {
    ServingConfig {
        arrivals: ArrivalProcess {
            rate_per_s: rate,
            prompt_range: (16, 128),
            output_range: (4, 32),
            seed,
        },
        duration_s: 20.0,
        ..ServingConfig::small_test()
    }
}

/// Random heterogeneous fleet, as in the cluster property tests: bit `i`
/// of `gpu_mask` picks node `i`'s platform class, bit `i` of `spot_mask`
/// its rental.
fn fleet(n_nodes: usize, gpu_mask: u32, spot_mask: u32, node_seed: u64) -> Vec<NodeSpec> {
    (0..n_nodes)
        .map(|i| {
            let gpu = gpu_mask & (1 << i) != 0;
            let spot = spot_mask & (1 << i) != 0;
            let spot_params = if spot {
                SpotParams::gcp_spot()
            } else {
                SpotParams::reserved()
            };
            let (node, kind) = if gpu {
                (
                    ServingNode::Gpu {
                        gpu: cllm_hw::presets::h100_nvl(),
                        tee: GpuTeeConfig::confidential(),
                    },
                    TeeKind::GpuCc,
                )
            } else {
                (
                    ServingNode::Cpu {
                        tee: CpuTeeConfig::tdx(),
                    },
                    TeeKind::Tdx,
                )
            };
            NodeSpec::new(
                node,
                spot,
                FaultRates::for_platform(kind, &spot_params).scaled(600.0),
                node_seed.wrapping_add(i as u64),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cluster traces conserve time under random fleets, wave plans and
    /// admission bounds: every invariant in [`cllm_obs::check`] holds,
    /// per-node totals extend to the cluster makespan with outage equal
    /// to the report's downtime, and tracing never changes the report.
    #[test]
    fn cluster_trace_conserves_under_random_fleets(
        n_nodes in 1usize..5,
        gpu_mask in 0u32..16,
        spot_mask in 0u32..16,
        node_seed in 0u64..40,
        waves_per_hr in 0.0f64..400.0,
        frac in 0.0f64..1.0,
        wave_seed in 0u64..40,
        rate in 0.5f64..4.0,
        arrival_seed in 0u64..30,
        failover_bit in 0u32..2,
        queue_cap in 1usize..40,
    ) {
        let cfg = ClusterConfig {
            serving: serving(rate, arrival_seed),
            nodes: fleet(n_nodes, gpu_mask, spot_mask, node_seed),
            admission: AdmissionPolicy { queue_cap, deadline_s: 15.0 },
            breaker: BreakerConfig::default(),
            wave: WaveModel { waves_per_hr, frac, seed: wave_seed },
            failover: failover_bit == 1,
            spill: SpillPenalty::cross_platform(),
        };
        let baseline = simulate_cluster(&cfg);
        let (report, trace) = simulate_cluster_traced(&cfg);
        prop_assert_eq!(&baseline, &report, "tracing perturbed the simulation");

        let conservation = check(&trace, EPS);
        prop_assert!(conservation.ok(), "violations: {:?}", conservation.errors);

        let totals = node_totals(&trace);
        prop_assert_eq!(totals.len(), n_nodes);
        for (i, t) in totals.iter().enumerate() {
            prop_assert!(
                (t.makespan_s - report.makespan_s).abs() <= EPS * report.makespan_s.max(1.0),
                "node {} extent {} != makespan {}", i, t.makespan_s, report.makespan_s
            );
            prop_assert!(
                (t.outage_s - report.nodes[i].downtime_s).abs() <= EPS * report.makespan_s.max(1.0),
                "node {} outage {} != downtime {}", i, t.outage_s, report.nodes[i].downtime_s
            );
            // Attribution: the five shares cover the whole timeline.
            let accounted = t.prefill_s + t.decode_s + t.reattest_s + t.requant_s
                + t.idle_s + t.outage_s;
            prop_assert!(
                (accounted - t.makespan_s).abs() <= EPS * t.makespan_s.max(1.0),
                "node {} attribution {} != makespan {}", i, accounted, t.makespan_s
            );
            if t.makespan_s > 0.0 {
                let pct = accounted / t.makespan_s * 100.0;
                prop_assert!((pct - 100.0).abs() < 1e-3, "node {} shares sum to {}%", i, pct);
            }
        }

        // Request chains: every recorded request's span chain sums to
        // its end-to-end latency.
        let chains = request_chains(&trace);
        for rec in &report.records {
            let chain = chains.iter().find(|c| c.id == rec.id);
            let total = chain.map_or(0.0, |c| c.total_s);
            prop_assert!(
                (total - rec.e2e_s).abs() <= EPS * rec.e2e_s.max(1.0),
                "request {} chain {} != e2e {}", rec.id, total, rec.e2e_s
            );
        }
    }

    /// Single-node faulted serving traces conserve time across random
    /// rates, seeds and fault schedules.
    #[test]
    fn single_node_trace_conserves(
        rate in 0.5f64..4.0,
        arrival_seed in 0u64..30,
        fault_seed in 0u64..30,
        gpu_bit in 0u32..2,
        scale in 1.0f64..900.0,
    ) {
        let (node, kind) = if gpu_bit == 1 {
            (
                ServingNode::Gpu {
                    gpu: cllm_hw::presets::h100_nvl(),
                    tee: GpuTeeConfig::confidential(),
                },
                TeeKind::GpuCc,
            )
        } else {
            (
                ServingNode::Cpu {
                    tee: CpuTeeConfig::sgx(),
                },
                TeeKind::Sgx,
            )
        };
        let cfg = serving(rate, arrival_seed);
        let rates = FaultRates::for_platform(kind, &SpotParams::gcp_spot()).scaled(scale);
        let plan = FaultPlan::seeded(&rates, cfg.duration_s, fault_seed);
        let baseline = simulate_serving_faulted(&cfg, &node, &plan);
        let (report, trace) = simulate_serving_traced(&cfg, &node, &plan);
        prop_assert_eq!(&baseline, &report, "tracing perturbed the simulation");

        let conservation = check(&trace, EPS);
        prop_assert!(conservation.ok(), "violations: {:?}", conservation.errors);

        let totals = node_totals(&trace);
        prop_assert_eq!(totals.len(), 1);
        let t = &totals[0];
        prop_assert!(
            (t.makespan_s - report.makespan_s).abs() <= EPS * report.makespan_s.max(1.0)
        );
        let chains = request_chains(&trace);
        for rec in &report.records {
            let total = chains.iter().find(|c| c.id == rec.id).map_or(0.0, |c| c.total_s);
            prop_assert!(
                (total - rec.e2e_s).abs() <= EPS * rec.e2e_s.max(1.0),
                "request {} chain {} != e2e {}", rec.id, total, rec.e2e_s
            );
        }
    }

    /// The Chrome export is structurally sound for arbitrary traces from
    /// real simulations: parses, and every event has non-negative
    /// integer timestamps in non-decreasing order.
    #[test]
    fn chrome_export_is_well_formed(
        rate in 0.5f64..3.0,
        arrival_seed in 0u64..20,
        fault_seed in 0u64..20,
    ) {
        let cfg = serving(rate, arrival_seed);
        let rates = FaultRates::for_platform(TeeKind::Tdx, &SpotParams::gcp_spot()).scaled(600.0);
        let plan = FaultPlan::seeded(&rates, cfg.duration_s, fault_seed);
        let node = ServingNode::Cpu { tee: CpuTeeConfig::tdx() };
        let (_, trace) = simulate_serving_traced(&cfg, &node, &plan);
        let json = cllm_obs::chrome_trace_json(&trace);
        let doc: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(serde_json::Value::as_array).unwrap();
        let mut last = 0.0f64;
        for ev in events {
            let ts = ev.get("ts").and_then(serde_json::Value::as_f64).expect("ts");
            prop_assert!(ts >= last, "ts regressed");
            last = ts;
            if let Some(dur) = ev.get("dur").and_then(serde_json::Value::as_f64) {
                prop_assert!(dur >= 0.0);
            }
        }
    }
}
