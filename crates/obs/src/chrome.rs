//! Chrome trace-event JSON export.
//!
//! The output loads directly in `chrome://tracing` or
//! <https://ui.perfetto.dev>: one process (`pid`) per simulation lane,
//! one thread (`tid`) per node or request, complete (`"X"`) events for
//! spans and instant (`"i"`) events for point occurrences.
//!
//! Timestamps are integer *simulated microseconds* — integers keep the
//! serialisation byte-stable across platforms and make the CI
//! monotonicity check trivial — and events are emitted sorted by `ts`.

use crate::span::Scope;
use crate::Trace;
use serde_json::{Number, Value};

/// Thread id offset for request rows, so they never collide with nodes.
const REQUEST_TID_BASE: u64 = 10_000;
/// Thread id for experiment-scoped rows.
const EXPERIMENT_TID: u64 = 9_999;

fn micros(s: f64) -> u64 {
    // Simulated times are non-negative by construction; clamp for safety.
    let us = (s * 1e6).round();
    if us <= 0.0 {
        0
    } else {
        us as u64
    }
}

fn tid_of(scope: Scope) -> u64 {
    match scope {
        Scope::Experiment => EXPERIMENT_TID,
        Scope::Node(n) => u64::from(n),
        Scope::Request(id) => REQUEST_TID_BASE + id,
    }
}

fn cat_of(scope: Scope) -> &'static str {
    match scope {
        Scope::Experiment => "experiment",
        Scope::Node(_) => "node",
        Scope::Request(_) => "request",
    }
}

fn uint(v: u64) -> Value {
    Value::Number(Number::PosInt(v))
}

/// Serialise a trace to Chrome trace-event JSON.
///
/// Deterministic: for a fixed trace the returned bytes are identical on
/// every run and thread count (integer timestamps, stable sort, and the
/// insertion-ordered vendored JSON object).
#[must_use]
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut items: Vec<(u64, Value)> = Vec::with_capacity(trace.spans.len() + trace.events.len());
    for s in &trace.spans {
        let ts = micros(s.start_s);
        let dur = micros(s.end_s).saturating_sub(ts);
        let name = match s.label {
            Some(l) => format!("{} ({l})", s.kind.label()),
            None => s.kind.label().to_string(),
        };
        items.push((
            ts,
            Value::Object(vec![
                ("name".to_string(), Value::String(name)),
                (
                    "cat".to_string(),
                    Value::String(cat_of(s.scope).to_string()),
                ),
                ("ph".to_string(), Value::String("X".to_string())),
                ("ts".to_string(), uint(ts)),
                ("dur".to_string(), uint(dur)),
                ("pid".to_string(), uint(u64::from(s.lane))),
                ("tid".to_string(), uint(tid_of(s.scope))),
            ]),
        ));
    }
    for e in &trace.events {
        let ts = micros(e.at_s);
        let mut fields = vec![
            ("name".to_string(), Value::String(e.name.to_string())),
            (
                "cat".to_string(),
                Value::String(cat_of(e.scope).to_string()),
            ),
            ("ph".to_string(), Value::String("i".to_string())),
            ("ts".to_string(), uint(ts)),
            ("pid".to_string(), uint(u64::from(e.lane))),
            ("tid".to_string(), uint(tid_of(e.scope))),
            ("s".to_string(), Value::String("t".to_string())),
        ];
        if !e.detail.is_empty() {
            fields.push((
                "args".to_string(),
                Value::Object(vec![(
                    "detail".to_string(),
                    Value::String(e.detail.clone()),
                )]),
            ));
        }
        items.push((ts, Value::Object(fields)));
    }
    // Stable sort: equal timestamps keep deterministic emission order.
    items.sort_by_key(|(ts, _)| *ts);
    let events: Vec<Value> = items.into_iter().map(|(_, v)| v).collect();
    let doc = Value::Object(vec![
        ("traceEvents".to_string(), Value::Array(events)),
        (
            "displayTimeUnit".to_string(),
            Value::String("ms".to_string()),
        ),
    ]);
    serde_json::to_string(&doc).expect("trace serialisation cannot fail")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;
    use crate::span::SpanKind;

    fn sample() -> Trace {
        let mut a = TraceSink::new();
        a.span(Scope::Node(0), SpanKind::Idle, 0.0, 0.5);
        a.span(Scope::Node(0), SpanKind::Prefill, 0.5, 0.75);
        a.span(Scope::Request(1), SpanKind::QueueWait, 0.25, 0.5);
        a.event(Scope::Node(0), "route", 0.25, "req 1 -> node 0".to_string());
        let mut b = TraceSink::new();
        b.span_labeled(
            Scope::Node(0),
            SpanKind::Outage,
            0.0,
            1.0,
            Some("preemption"),
        );
        Trace::merge(vec![a.finish(), b.finish()])
    }

    #[test]
    fn export_parses_and_ts_is_monotone_nonnegative() {
        let json = chrome_trace_json(&sample());
        let doc: Value = serde_json::from_str(&json).expect("valid JSON");
        let events = doc.get("traceEvents").and_then(Value::as_array).unwrap();
        assert!(!events.is_empty());
        let mut last = 0.0;
        for ev in events {
            let ts = ev.get("ts").and_then(Value::as_f64).unwrap();
            assert!(ts >= last, "ts not monotone");
            last = ts;
            if let Some(dur) = ev.get("dur").and_then(Value::as_f64) {
                assert!(dur >= 0.0);
            }
        }
    }

    #[test]
    fn lanes_map_to_pids() {
        let json = chrome_trace_json(&sample());
        assert!(json.contains("\"pid\":1"));
        assert!(json.contains("outage (preemption)"));
    }

    #[test]
    fn export_is_byte_stable() {
        let a = chrome_trace_json(&sample());
        let b = chrome_trace_json(&sample());
        assert_eq!(a, b);
    }
}
