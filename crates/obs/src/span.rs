//! The span/event model: scopes, span kinds, and their accounting classes.

/// What a span or event is attached to.
///
/// A trace can hold many simulation *lanes* (grid points, platforms,
/// fleets); scopes are unique only within a lane — see [`crate::Trace`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Scope {
    /// The whole experiment (lane-level bookkeeping).
    Experiment,
    /// One serving node, by its index in the fleet (0 for single-node sims).
    Node(u32),
    /// One request, by its arrival id.
    Request(u64),
}

/// How a node-scoped span counts toward the makespan decomposition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TimeClass {
    /// The node is doing useful (or at least necessary) work.
    Busy,
    /// The node is waiting for work.
    Idle,
    /// The node is unavailable; this is exactly what `downtime_s` counts.
    Outage,
}

/// The taxonomy of spans emitted by the serving and cluster simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// Request-scoped: from enqueue to batch admission.
    QueueWait,
    /// Re-attestation handshake. Busy on the node when paid at admission;
    /// labelled `attest-fail` / `breaker-close` outages when it is downtime.
    Reattest,
    /// Cross-platform spill re-quantisation toll (cGPU -> TDX and back).
    Requant,
    /// Prompt prefill.
    Prefill,
    /// Token-by-token decode (node spans cover whole batch steps).
    Decode,
    /// Request-scoped: decode progress destroyed by a KV-losing fault.
    DecodeLost,
    /// KV pages of a preempted sequence moving out of protected memory
    /// through the priced EPC-paging / bounce-buffer path.
    SwapOut,
    /// Swapped KV pages moving back into protected memory on readmission.
    SwapIn,
    /// Request-scoped: time a preempted sequence spent evicted, waiting
    /// to be readmitted (recompute re-queue or swapped-out residence).
    Preempted,
    /// Request-scoped: crash-to-redelivery retry backoff (includes the
    /// outage itself from the request's point of view).
    Backoff,
    /// Node-scoped: clock jump while the scheduler had nothing to run.
    Idle,
    /// Node-scoped: fault outage or downtime-counted re-attestation toll.
    Outage,
}

impl SpanKind {
    /// Stable lower-case label used in exports and attribution tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::QueueWait => "queue-wait",
            SpanKind::Reattest => "reattest",
            SpanKind::Requant => "requant",
            SpanKind::Prefill => "prefill",
            SpanKind::Decode => "decode",
            SpanKind::DecodeLost => "decode-lost",
            SpanKind::SwapOut => "swap-out",
            SpanKind::SwapIn => "swap-in",
            SpanKind::Preempted => "preempted",
            SpanKind::Backoff => "backoff",
            SpanKind::Idle => "idle",
            SpanKind::Outage => "outage",
        }
    }

    /// Accounting class when this kind appears on a [`Scope::Node`] span.
    ///
    /// `None` marks request-only kinds that must never be node-scoped.
    #[must_use]
    pub fn node_class(self) -> Option<TimeClass> {
        match self {
            SpanKind::Reattest
            | SpanKind::Requant
            | SpanKind::Prefill
            | SpanKind::Decode
            | SpanKind::SwapOut
            | SpanKind::SwapIn => Some(TimeClass::Busy),
            SpanKind::Idle => Some(TimeClass::Idle),
            SpanKind::Outage => Some(TimeClass::Outage),
            SpanKind::QueueWait
            | SpanKind::DecodeLost
            | SpanKind::Preempted
            | SpanKind::Backoff => None,
        }
    }
}

/// A closed interval of simulated time attached to a scope.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Simulation lane this span belongs to (assigned by [`crate::Trace::merge`]).
    pub lane: u32,
    /// What the span is attached to.
    pub scope: Scope,
    /// Which phase of work it covers.
    pub kind: SpanKind,
    /// Start, in simulated seconds.
    pub start_s: f64,
    /// End, in simulated seconds (`end_s >= start_s`).
    pub end_s: f64,
    /// Optional refinement, e.g. the fault kind behind an outage.
    pub label: Option<&'static str>,
}

impl Span {
    /// Span duration in simulated seconds.
    #[must_use]
    pub fn dur_s(&self) -> f64 {
        self.end_s - self.start_s
    }
}

/// An instantaneous occurrence: routing decisions, breaker transitions,
/// failover re-queues, spills, handshake phases.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceEvent {
    /// Simulation lane (assigned by [`crate::Trace::merge`]).
    pub lane: u32,
    /// What the event is attached to.
    pub scope: Scope,
    /// Stable event name (e.g. `route`, `breaker-open`, `spill`).
    pub name: &'static str,
    /// When it happened, in simulated seconds.
    pub at_s: f64,
    /// Free-form detail (e.g. `req 42 -> node 1`). Empty when obvious.
    pub detail: String,
}
