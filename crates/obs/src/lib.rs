//! Deterministic sim-time observability for the confidential-inference sims.
//!
//! Everything in this crate is driven by the *simulated* clock, never the
//! wall clock, so traces are a pure function of the experiment inputs:
//!
//! - [`span::Span`] / [`span::TraceEvent`] — request-, node-, and
//!   experiment-scoped intervals and instants in simulated seconds.
//! - [`sink::TraceSink`] — a single-writer recorder threaded through a
//!   simulation. It is "lock-free-enough": each simulation lane records
//!   into its own sink with no synchronisation at all, and cross-thread
//!   byte-stability comes from [`sink::Trace::merge`] joining lanes in
//!   deterministic input order, not from atomics.
//! - [`chrome`] — export to Chrome trace-event JSON (open in
//!   `chrome://tracing` or Perfetto).
//! - [`attribution`] — per-node busy/idle/outage accounting with hard
//!   conservation invariants (`busy + idle + outage == makespan`,
//!   per-request span chains sum to end-to-end latency).
//!
//! The sink is also cheap to disable: a [`sink::TraceSink::disabled`] sink
//! records nothing, which lets instrumented simulators share one code path
//! with the golden-pinned untraced entry points.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attribution;
pub mod chrome;
pub mod sink;
pub mod span;

pub use attribution::{check, node_totals, request_chains, ConservationReport, NodeTotals};
pub use chrome::chrome_trace_json;
pub use sink::{Trace, TraceSink};
pub use span::{Scope, Span, SpanKind, TimeClass, TraceEvent};
