//! Time-attribution accounting and the conservation invariants behind it.
//!
//! The simulators emit exactly one node-scoped span for every advance of
//! their simulated clock, so the invariants here are structural, not
//! statistical: if a clock advance were ever missed or double-counted,
//! [`check`] fails rather than producing a quietly-wrong attribution.

use crate::span::{Scope, Span, SpanKind, TimeClass};
use crate::Trace;

/// Per-node makespan decomposition, in simulated seconds.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeTotals {
    /// Simulation lane the node belongs to.
    pub lane: u32,
    /// Node index within the lane.
    pub node: u32,
    /// Earliest span start (should be 0: coverage starts at the epoch).
    pub start_s: f64,
    /// Latest span end — the node's makespan.
    pub makespan_s: f64,
    /// Busy-class time (prefill + decode + reattest + requant + swap).
    pub busy_s: f64,
    /// Idle-class time.
    pub idle_s: f64,
    /// Outage-class time (matches the report's `downtime_s`).
    pub outage_s: f64,
    /// Busy sub-total: prompt prefill.
    pub prefill_s: f64,
    /// Busy sub-total: batched decode steps.
    pub decode_s: f64,
    /// Busy sub-total: re-attestation handshakes paid at admission.
    pub reattest_s: f64,
    /// Busy sub-total: cross-platform spill re-quantisation.
    pub requant_s: f64,
    /// Busy sub-total: KV pages swapped out of / back into protected
    /// memory by preemption under the swap eviction policy.
    pub swap_s: f64,
}

impl NodeTotals {
    /// `busy + idle + outage` — conserved against [`NodeTotals::makespan_s`].
    #[must_use]
    pub fn accounted_s(&self) -> f64 {
        self.busy_s + self.idle_s + self.outage_s
    }
}

/// Decompose every node's makespan, sorted by `(lane, node)`.
#[must_use]
pub fn node_totals(trace: &Trace) -> Vec<NodeTotals> {
    let mut out: Vec<NodeTotals> = Vec::new();
    for s in &trace.spans {
        let Scope::Node(node) = s.scope else { continue };
        let t = match out.iter_mut().find(|t| t.lane == s.lane && t.node == node) {
            Some(t) => t,
            None => {
                out.push(NodeTotals {
                    lane: s.lane,
                    node,
                    start_s: s.start_s,
                    ..NodeTotals::default()
                });
                out.last_mut().expect("just pushed")
            }
        };
        t.start_s = t.start_s.min(s.start_s);
        t.makespan_s = t.makespan_s.max(s.end_s);
        let dur = s.dur_s();
        match s.kind.node_class() {
            Some(TimeClass::Busy) => t.busy_s += dur,
            Some(TimeClass::Idle) => t.idle_s += dur,
            Some(TimeClass::Outage) => t.outage_s += dur,
            None => {}
        }
        match s.kind {
            SpanKind::Prefill => t.prefill_s += dur,
            SpanKind::Decode => t.decode_s += dur,
            SpanKind::Reattest => t.reattest_s += dur,
            SpanKind::Requant => t.requant_s += dur,
            SpanKind::SwapOut | SpanKind::SwapIn => t.swap_s += dur,
            _ => {}
        }
    }
    out.sort_by_key(|t| (t.lane, t.node));
    out
}

/// One request's span chain, summed.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestChain {
    /// Simulation lane the request belongs to.
    pub lane: u32,
    /// Request id within the lane.
    pub id: u64,
    /// Chain start (the request's arrival).
    pub start_s: f64,
    /// Chain end (final token, or abort).
    pub end_s: f64,
    /// Sum of span durations — conserved against `end_s - start_s`.
    pub total_s: f64,
}

/// Sum every request's span chain, sorted by `(lane, id)`.
#[must_use]
pub fn request_chains(trace: &Trace) -> Vec<RequestChain> {
    let mut out: Vec<RequestChain> = Vec::new();
    for s in &trace.spans {
        let Scope::Request(id) = s.scope else {
            continue;
        };
        match out.iter_mut().find(|c| c.lane == s.lane && c.id == id) {
            Some(c) => {
                c.start_s = c.start_s.min(s.start_s);
                c.end_s = c.end_s.max(s.end_s);
                c.total_s += s.dur_s();
            }
            None => out.push(RequestChain {
                lane: s.lane,
                id,
                start_s: s.start_s,
                end_s: s.end_s,
                total_s: s.dur_s(),
            }),
        }
    }
    out.sort_by_key(|c| (c.lane, c.id));
    out
}

/// Outcome of a conservation check; `ok()` iff no invariant failed.
#[derive(Debug, Clone, Default)]
pub struct ConservationReport {
    /// Nodes checked.
    pub nodes: usize,
    /// Request chains checked.
    pub requests: usize,
    /// Spans inspected.
    pub spans: usize,
    /// Human-readable invariant violations (empty means conserved).
    pub errors: Vec<String>,
}

impl ConservationReport {
    /// True when every invariant held.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.errors.is_empty()
    }
}

fn sorted_by_start(spans: Vec<&Span>) -> Vec<&Span> {
    let mut spans = spans;
    spans.sort_by(|a, b| {
        a.start_s
            .partial_cmp(&b.start_s)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    spans
}

/// Verify every conservation invariant over a trace.
///
/// With tolerance `eps` (absolute, per comparison; `1e-6` is ample for the
/// horizons simulated here) this checks:
///
/// 1. every span is well-formed (`0 <= start <= end`, finite);
/// 2. node-scoped spans carry a node accounting class, never overlap, and
///    tile the node's timeline: coverage starts at 0 and
///    `busy + idle + outage == makespan`;
/// 3. request-scoped spans chain gaplessly (each span starts where the
///    previous ended), so the chain sum equals end-to-end latency.
#[must_use]
pub fn check(trace: &Trace, eps: f64) -> ConservationReport {
    let mut report = ConservationReport {
        spans: trace.spans.len(),
        ..ConservationReport::default()
    };
    for s in &trace.spans {
        if !(s.start_s.is_finite() && s.end_s.is_finite()) || s.start_s < 0.0 || s.end_s < s.start_s
        {
            report
                .errors
                .push(format!("malformed span {s:?} (negative or non-finite)"));
        }
        if matches!(s.scope, Scope::Node(_)) && s.kind.node_class().is_none() {
            report
                .errors
                .push(format!("request-only kind {:?} on node scope", s.kind));
        }
    }

    let totals = node_totals(trace);
    report.nodes = totals.len();
    for t in &totals {
        let spans = sorted_by_start(
            trace
                .spans
                .iter()
                .filter(|s| s.lane == t.lane && s.scope == Scope::Node(t.node))
                .collect(),
        );
        for pair in spans.windows(2) {
            if pair[1].start_s < pair[0].end_s - eps {
                report.errors.push(format!(
                    "lane {} node {}: spans overlap at {:.6}s ({:?} vs {:?})",
                    t.lane, t.node, pair[1].start_s, pair[0].kind, pair[1].kind
                ));
            }
        }
        if t.start_s > eps {
            report.errors.push(format!(
                "lane {} node {}: coverage starts at {:.6}s, not 0",
                t.lane, t.node, t.start_s
            ));
        }
        if (t.accounted_s() - t.makespan_s).abs() > eps * t.makespan_s.max(1.0) {
            report.errors.push(format!(
                "lane {} node {}: busy+idle+outage = {:.9}s != makespan {:.9}s",
                t.lane,
                t.node,
                t.accounted_s(),
                t.makespan_s
            ));
        }
    }

    let chains = request_chains(trace);
    report.requests = chains.len();
    for c in &chains {
        let spans = sorted_by_start(
            trace
                .spans
                .iter()
                .filter(|s| s.lane == c.lane && s.scope == Scope::Request(c.id))
                .collect(),
        );
        for pair in spans.windows(2) {
            if (pair[1].start_s - pair[0].end_s).abs() > eps {
                report.errors.push(format!(
                    "lane {} request {}: gap {:.6}s -> {:.6}s ({:?} to {:?})",
                    c.lane, c.id, pair[0].end_s, pair[1].start_s, pair[0].kind, pair[1].kind
                ));
            }
        }
        let e2e = c.end_s - c.start_s;
        if (c.total_s - e2e).abs() > eps * e2e.max(1.0) {
            report.errors.push(format!(
                "lane {} request {}: span sum {:.9}s != end-to-end {:.9}s",
                c.lane, c.id, c.total_s, e2e
            ));
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sink::TraceSink;

    fn tiled_node() -> TraceSink {
        let mut sink = TraceSink::new();
        sink.span(Scope::Node(0), SpanKind::Idle, 0.0, 1.0);
        sink.span(Scope::Node(0), SpanKind::Prefill, 1.0, 1.5);
        sink.span(Scope::Node(0), SpanKind::Decode, 1.5, 3.0);
        sink.span_labeled(
            Scope::Node(0),
            SpanKind::Outage,
            3.0,
            4.0,
            Some("enclave-crash"),
        );
        sink
    }

    #[test]
    fn tiled_node_conserves() {
        let trace = tiled_node().finish();
        let report = check(&trace, 1e-9);
        assert!(report.ok(), "{:?}", report.errors);
        let totals = node_totals(&trace);
        assert_eq!(totals.len(), 1);
        assert_eq!(totals[0].busy_s, 2.0);
        assert_eq!(totals[0].idle_s, 1.0);
        assert_eq!(totals[0].outage_s, 1.0);
        assert_eq!(totals[0].makespan_s, 4.0);
    }

    #[test]
    fn gap_in_node_coverage_fails() {
        let mut sink = tiled_node();
        sink.span(Scope::Node(0), SpanKind::Decode, 5.0, 6.0);
        assert!(!check(&sink.finish(), 1e-9).ok());
    }

    #[test]
    fn overlapping_node_spans_fail() {
        let mut sink = tiled_node();
        sink.span(Scope::Node(0), SpanKind::Prefill, 0.5, 1.2);
        assert!(!check(&sink.finish(), 1e-9).ok());
    }

    #[test]
    fn request_chain_sums_to_latency() {
        let mut sink = TraceSink::new();
        sink.span(Scope::Request(3), SpanKind::QueueWait, 1.0, 2.0);
        sink.span(Scope::Request(3), SpanKind::Prefill, 2.0, 2.25);
        sink.span(Scope::Request(3), SpanKind::Decode, 2.25, 5.0);
        let trace = sink.finish();
        let report = check(&trace, 1e-9);
        assert!(report.ok(), "{:?}", report.errors);
        let chains = request_chains(&trace);
        assert_eq!(chains[0].total_s, 4.0);
    }

    #[test]
    fn request_chain_gap_fails() {
        let mut sink = TraceSink::new();
        sink.span(Scope::Request(3), SpanKind::QueueWait, 1.0, 2.0);
        sink.span(Scope::Request(3), SpanKind::Prefill, 2.5, 3.0);
        assert!(!check(&sink.finish(), 1e-9).ok());
    }

    #[test]
    fn swap_spans_are_busy_with_their_own_subtotal() {
        let mut sink = TraceSink::new();
        sink.span(Scope::Node(0), SpanKind::Decode, 0.0, 1.0);
        sink.span(Scope::Node(0), SpanKind::SwapOut, 1.0, 1.5);
        sink.span(Scope::Node(0), SpanKind::SwapIn, 1.5, 2.0);
        let trace = sink.finish();
        let report = check(&trace, 1e-9);
        assert!(report.ok(), "{:?}", report.errors);
        let totals = node_totals(&trace);
        assert_eq!(totals[0].busy_s, 2.0);
        assert_eq!(totals[0].swap_s, 1.0);
        // Preempted is request-only: on a node scope it must fail.
        let mut bad = TraceSink::new();
        bad.span(Scope::Node(0), SpanKind::Preempted, 0.0, 1.0);
        assert!(!check(&bad.finish(), 1e-9).ok());
    }

    #[test]
    fn request_only_kind_on_node_scope_fails() {
        let mut sink = TraceSink::new();
        sink.span(Scope::Node(0), SpanKind::QueueWait, 0.0, 1.0);
        assert!(!check(&sink.finish(), 1e-9).ok());
    }
}
