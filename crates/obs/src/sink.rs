//! The trace recorder and the merged multi-lane trace.

use crate::span::{Scope, Span, SpanKind, TraceEvent};
use std::collections::HashMap;

/// Single-writer span/event recorder threaded through one simulation.
///
/// Determinism contract: a sink is owned by exactly one (single-threaded)
/// simulation, so recording needs no synchronisation; parallel experiment
/// grids give each lane its own sink and join them with [`Trace::merge`]
/// in input order, which is what keeps exports byte-stable across
/// `CLLM_RUNNER_THREADS`.
///
/// A disabled sink records nothing, so instrumented simulators can share
/// one code path with the golden-pinned untraced entry points. Emission
/// must only *read* the simulated clock — never round, reorder, or
/// otherwise influence the float arithmetic of the simulation itself.
#[derive(Debug)]
pub struct TraceSink {
    enabled: bool,
    spans: Vec<Span>,
    events: Vec<TraceEvent>,
    /// Index of the most recent span per node scope, for run coalescing.
    last_node_span: HashMap<u32, usize>,
}

impl TraceSink {
    /// A recording sink.
    #[must_use]
    pub fn new() -> Self {
        TraceSink {
            enabled: true,
            spans: Vec::new(),
            events: Vec::new(),
            last_node_span: HashMap::new(),
        }
    }

    /// A sink that drops everything (zero-cost instrumentation path).
    #[must_use]
    pub fn disabled() -> Self {
        TraceSink {
            enabled: false,
            ..TraceSink::new()
        }
    }

    /// Whether this sink records anything. Callers may skip building
    /// expensive details (cursor bookkeeping, event strings) when `false`.
    #[must_use]
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a span. Zero-length spans are dropped; adjacent node-scoped
    /// spans of the same kind and label (e.g. consecutive decode steps)
    /// are coalesced into one run, which changes no accounting sums.
    #[inline]
    pub fn span(&mut self, scope: Scope, kind: SpanKind, start_s: f64, end_s: f64) {
        self.span_labeled(scope, kind, start_s, end_s, None);
    }

    /// Record a span with a refining label (see [`Span::label`]).
    #[inline]
    pub fn span_labeled(
        &mut self,
        scope: Scope,
        kind: SpanKind,
        start_s: f64,
        end_s: f64,
        label: Option<&'static str>,
    ) {
        if !self.enabled || end_s <= start_s {
            return;
        }
        if let Scope::Node(node) = scope {
            if let Some(&i) = self.last_node_span.get(&node) {
                let prev = &mut self.spans[i];
                if prev.kind == kind && prev.label == label && prev.end_s == start_s {
                    prev.end_s = end_s;
                    return;
                }
            }
            self.last_node_span.insert(node, self.spans.len());
        }
        self.spans.push(Span {
            lane: 0,
            scope,
            kind,
            start_s,
            end_s,
            label,
        });
    }

    /// Record an instantaneous event.
    #[inline]
    pub fn event(&mut self, scope: Scope, name: &'static str, at_s: f64, detail: String) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            lane: 0,
            scope,
            name,
            at_s,
            detail,
        });
    }

    /// Record an instantaneous event whose detail string is built lazily.
    ///
    /// The closure runs only when the sink records, so hot simulation
    /// loops pay zero allocation on the golden-pinned untraced path —
    /// this is what lets the serving kernel keep one code path for traced
    /// and untraced runs without formatting strings it will drop.
    #[inline]
    pub fn event_fmt(
        &mut self,
        scope: Scope,
        name: &'static str,
        at_s: f64,
        detail: impl FnOnce() -> String,
    ) {
        if !self.enabled {
            return;
        }
        self.events.push(TraceEvent {
            lane: 0,
            scope,
            name,
            at_s,
            detail: detail(),
        });
    }

    /// Close the sink and take the recorded lane (lane id 0 until merged).
    #[must_use]
    pub fn finish(self) -> Trace {
        Trace {
            spans: self.spans,
            events: self.events,
        }
    }
}

impl Default for TraceSink {
    fn default() -> Self {
        TraceSink::new()
    }
}

/// A recorded trace: one lane straight from a sink, or many lanes merged.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All spans, in emission order (lane-major after a merge).
    pub spans: Vec<Span>,
    /// All instants, in emission order (lane-major after a merge).
    pub events: Vec<TraceEvent>,
}

impl Trace {
    /// Join per-simulation lanes into one trace, assigning `lane = index`.
    ///
    /// The caller must pass lanes in a deterministic order (grid order,
    /// fleet order) — that order, not any clock, defines the lane ids.
    #[must_use]
    pub fn merge(lanes: Vec<Trace>) -> Trace {
        let mut out = Trace::default();
        for (i, mut lane) in lanes.into_iter().enumerate() {
            let id = u32::try_from(i).unwrap_or(u32::MAX);
            for s in &mut lane.spans {
                s.lane = id;
            }
            for e in &mut lane.events {
                e.lane = id;
            }
            out.spans.append(&mut lane.spans);
            out.events.append(&mut lane.events);
        }
        out
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty() && self.events.is_empty()
    }

    /// Number of distinct lanes present.
    #[must_use]
    pub fn lane_count(&self) -> usize {
        let mut lanes: Vec<u32> = self
            .spans
            .iter()
            .map(|s| s.lane)
            .chain(self.events.iter().map(|e| e.lane))
            .collect();
        lanes.sort_unstable();
        lanes.dedup();
        lanes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_sink_records_nothing() {
        let mut sink = TraceSink::disabled();
        sink.span(Scope::Node(0), SpanKind::Decode, 0.0, 1.0);
        sink.event(Scope::Experiment, "x", 0.5, String::new());
        assert!(!sink.is_enabled());
        assert!(sink.finish().is_empty());
    }

    #[test]
    fn disabled_sink_never_builds_lazy_detail() {
        let mut sink = TraceSink::disabled();
        sink.event_fmt(Scope::Experiment, "x", 0.5, || {
            panic!("detail closure must not run on a disabled sink")
        });
        assert!(sink.finish().is_empty());

        let mut live = TraceSink::new();
        live.event_fmt(Scope::Experiment, "y", 1.0, || "built".to_string());
        let trace = live.finish();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].detail, "built");
    }

    #[test]
    fn zero_length_spans_are_dropped() {
        let mut sink = TraceSink::new();
        sink.span(Scope::Node(0), SpanKind::Idle, 1.0, 1.0);
        assert!(sink.finish().spans.is_empty());
    }

    #[test]
    fn adjacent_node_decode_runs_coalesce() {
        let mut sink = TraceSink::new();
        sink.span(Scope::Node(0), SpanKind::Decode, 0.0, 1.0);
        sink.span(Scope::Node(0), SpanKind::Decode, 1.0, 2.0);
        sink.span(Scope::Node(0), SpanKind::Idle, 2.0, 3.0);
        sink.span(Scope::Node(0), SpanKind::Decode, 3.0, 4.0);
        let trace = sink.finish();
        assert_eq!(trace.spans.len(), 3);
        assert_eq!(trace.spans[0].end_s, 2.0);
    }

    #[test]
    fn request_spans_never_coalesce_across_nodes() {
        let mut sink = TraceSink::new();
        sink.span(Scope::Node(0), SpanKind::Decode, 0.0, 1.0);
        sink.span(Scope::Node(1), SpanKind::Decode, 1.0, 2.0);
        sink.span(Scope::Request(7), SpanKind::Decode, 0.0, 1.0);
        sink.span(Scope::Request(7), SpanKind::Decode, 1.0, 2.0);
        let trace = sink.finish();
        assert_eq!(trace.spans.len(), 4);
    }

    #[test]
    fn merge_assigns_lane_ids_in_input_order() {
        let mut a = TraceSink::new();
        a.span(Scope::Node(0), SpanKind::Idle, 0.0, 1.0);
        let mut b = TraceSink::new();
        b.event(Scope::Experiment, "y", 0.0, String::new());
        let merged = Trace::merge(vec![a.finish(), b.finish()]);
        assert_eq!(merged.spans[0].lane, 0);
        assert_eq!(merged.events[0].lane, 1);
        assert_eq!(merged.lane_count(), 2);
    }
}
