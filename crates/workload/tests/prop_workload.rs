//! Property tests on the workload cost model.

use cllm_hw::DType;
use cllm_workload::ops::{op_cost, BlockOp};
use cllm_workload::phase::{step_cost, RequestSpec};
use cllm_workload::zoo;
use proptest::prelude::*;

fn dtype_strategy() -> impl Strategy<Value = DType> {
    prop_oneof![Just(DType::F32), Just(DType::Bf16), Just(DType::Int8)]
}

proptest! {
    /// FLOPs scale exactly linearly with batch for every operator.
    #[test]
    fn flops_linear_in_batch(batch in 1u64..256, new in 1u64..64, past in 0u64..2048,
                             dtype in dtype_strategy()) {
        let m = zoo::llama2_7b();
        for op in BlockOp::all() {
            let one = op_cost(&m, op, 1, new, past, dtype).flops;
            let many = op_cost(&m, op, batch, new, past, dtype).flops;
            prop_assert!((many - one * batch as f64).abs() < one * batch as f64 * 1e-9 + 1.0,
                "{op:?}: {many} vs {one}*{batch}");
        }
    }

    /// Longer context never reduces any cost component.
    #[test]
    fn costs_monotone_in_context(batch in 1u64..64, past in 0u64..4096, extra in 1u64..512,
                                 dtype in dtype_strategy()) {
        let m = zoo::llama2_7b();
        let a = step_cost(&m, dtype, batch, 1, past);
        let b = step_cost(&m, dtype, batch, 1, past + extra);
        prop_assert!(b.flops >= a.flops);
        prop_assert!(b.kv_read_bytes >= a.kv_read_bytes);
        prop_assert!(b.total_bytes() >= a.total_bytes());
    }

    /// Weight traffic is independent of batch (weights are shared); for
    /// MoE it may grow with batch (expert coverage) but never beyond the
    /// full expert set.
    #[test]
    fn weight_bytes_behaviour(batch in 2u64..256) {
        let dense = zoo::llama2_7b();
        let one = step_cost(&dense, DType::Bf16, 1, 1, 64).weight_bytes;
        let many = step_cost(&dense, DType::Bf16, batch, 1, 64).weight_bytes;
        prop_assert!((one - many).abs() < 1.0, "dense weights must not scale with batch");

        let moe = zoo::mixtral_8x7b();
        let m_one = step_cost(&moe, DType::Bf16, 1, 1, 64).weight_bytes;
        let m_many = step_cost(&moe, DType::Bf16, batch, 1, 64).weight_bytes;
        let m_full = step_cost(&moe, DType::Bf16, 10_000, 1, 64).weight_bytes;
        prop_assert!(m_many >= m_one - 1.0);
        prop_assert!(m_many <= m_full + 1.0);
    }

    /// Prefill cost of N tokens exceeds any single decode step, and
    /// intensity of prefill exceeds decode.
    #[test]
    fn prefill_dominates_decode(input in 8u64..2048, batch in 1u64..16) {
        let m = zoo::llama2_7b();
        let req = RequestSpec::new(batch, input, 8);
        let prefill = req.prefill_step(&m, DType::Bf16);
        let decode = req.decode_step(&m, DType::Bf16, 0);
        prop_assert!(prefill.total().flops > decode.total().flops);
        prop_assert!(prefill.arithmetic_intensity() > decode.arithmetic_intensity());
    }

    /// Beam width multiplies decode batch exactly.
    #[test]
    fn beam_multiplies_decode(batch in 1u64..32, beam in 1u64..8) {
        let req = RequestSpec::new(batch, 64, 8).with_beam(beam);
        prop_assert_eq!(req.decode_batch(), batch * beam);
    }
}
