//! Dense-transformer inference workload model.
//!
//! The paper's figures are all driven by the same underlying quantity: how
//! many floating-point operations and how many bytes of weight/activation/
//! KV-cache traffic one inference step performs, as a function of model
//! size, batch size, sequence lengths and data type. This crate computes
//! those quantities exactly from the model architecture:
//!
//! * [`ModelConfig`] — architecture description (hidden size, layers,
//!   grouped-query heads, gated-MLP width, vocabulary). [`zoo`] provides
//!   the paper's models: Llama2 7B/13B/70B plus the Section III-C2
//!   cross-check set (Llama3 8B, GPT-J 6B, Falcon 7B, Baichuan2 7B,
//!   Qwen 7B).
//! * [`ops`] — the per-decoder-block operator graph (input norm, QKV
//!   projection, RoPE, attention scores/context, output projection,
//!   gated SiLU MLP, down projection) with exact FLOP and byte counts per
//!   operator — the basis of Figure 7's per-block breakdown.
//! * [`phase`] — prefill vs decode request shaping: batch size, beam
//!   width, input/output token counts (the sweep axes of Figures 4-13).
//! * [`kv`] — KV-cache accounting (drives the input-size crossover of
//!   Figure 10).
//! * [`trace`] — generative multi-tenant traffic (diurnal load, seeded
//!   flash crowds, heavy-tailed lognormal shapes, free/standard/premium
//!   tiers) for the serving-layer autoscaling experiments.
//!
//! # Example
//!
//! ```
//! use cllm_workload::{zoo, phase::RequestSpec};
//! use cllm_hw::DType;
//!
//! let model = zoo::llama2_7b();
//! // ~6.7 billion parameters.
//! assert!((model.param_count() as f64 - 6.7e9).abs() < 0.4e9);
//!
//! let req = RequestSpec::new(1, 1024, 128);
//! let step = req.decode_step(&model, DType::Bf16, 0);
//! // Decode is memory-bound: ~1 flop per weight byte streamed.
//! assert!(step.arithmetic_intensity() < 16.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod kv;
pub mod ops;
pub mod phase;
pub mod trace;
pub mod zoo;

pub use config::{MlpKind, ModelConfig};
