//! Per-operator FLOP and byte accounting for one decoder block.
//!
//! Figure 7 of the paper traces single-socket inference and breaks each
//! decoder block into its layers, finding that self-attention and the
//! linear-SiLU multiplication dominate raw time while the two layer norms
//! carry the largest *relative* TEE overhead (but only ~3% of block time).
//! This module provides the exact operator-level cost model behind that
//! figure.

use crate::ModelConfig;
use cllm_hw::DType;
use serde::{Deserialize, Serialize};

/// Fraction of the attention score matrix that spills to memory.
///
/// Modern attention kernels (IPEX fused SDPA, vLLM paged attention,
/// FlashAttention) tile the `B x heads x T x S` score matrix through
/// caches instead of materializing it; only a small fraction reaches
/// DRAM. Eager implementations that materialize it fully are charged via
/// the framework activation-traffic factor instead.
pub const ATTN_SPILL: f64 = 0.06;

/// The operators of one decoder block, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BlockOp {
    /// RMSNorm before attention (`input_layernorm`).
    InputNorm,
    /// Fused Q/K/V projection.
    QkvProj,
    /// Rotary position embedding on Q and K.
    Rope,
    /// Attention score computation `QK^T` + softmax.
    AttnScores,
    /// Attention context computation `softmax(..)V`.
    AttnContext,
    /// Attention output projection + residual add.
    OProj,
    /// RMSNorm after attention (`post_attention_layernorm`).
    PostAttnNorm,
    /// Gate+up projections and SiLU multiply (`linear SiLU mult`).
    GateUpSilu,
    /// Down projection + residual add.
    DownProj,
}

impl BlockOp {
    /// All block operators in execution order.
    #[must_use]
    pub fn all() -> [BlockOp; 9] {
        [
            BlockOp::InputNorm,
            BlockOp::QkvProj,
            BlockOp::Rope,
            BlockOp::AttnScores,
            BlockOp::AttnContext,
            BlockOp::OProj,
            BlockOp::PostAttnNorm,
            BlockOp::GateUpSilu,
            BlockOp::DownProj,
        ]
    }

    /// Label used on Figure 7's x-axis.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BlockOp::InputNorm => "input_norm",
            BlockOp::QkvProj => "qkv_proj",
            BlockOp::Rope => "rope",
            BlockOp::AttnScores => "attn_scores",
            BlockOp::AttnContext => "attn_context",
            BlockOp::OProj => "o_proj",
            BlockOp::PostAttnNorm => "post_attn_norm",
            BlockOp::GateUpSilu => "gate_up_silu",
            BlockOp::DownProj => "down_proj",
        }
    }

    /// Whether the operator is a GEMM-class kernel (AMX-eligible).
    #[must_use]
    pub fn is_gemm(self) -> bool {
        matches!(
            self,
            BlockOp::QkvProj
                | BlockOp::AttnScores
                | BlockOp::AttnContext
                | BlockOp::OProj
                | BlockOp::GateUpSilu
                | BlockOp::DownProj
        )
    }
}

/// The cost of executing one operator once.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct OpCost {
    /// Multiply-accumulate work (1 MAC = 2 flops).
    pub flops: f64,
    /// Weight bytes streamed from memory.
    pub weight_bytes: f64,
    /// Activation bytes read + written.
    pub act_bytes: f64,
    /// KV-cache bytes read.
    pub kv_read_bytes: f64,
    /// KV-cache bytes written.
    pub kv_write_bytes: f64,
}

impl OpCost {
    /// Total bytes moved.
    #[must_use]
    pub fn total_bytes(&self) -> f64 {
        self.weight_bytes + self.act_bytes + self.kv_read_bytes + self.kv_write_bytes
    }

    /// Arithmetic intensity in FLOP/byte.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        let b = self.total_bytes();
        if b == 0.0 {
            0.0
        } else {
            self.flops / b
        }
    }

    /// Accumulate another cost.
    pub fn add(&mut self, other: &OpCost) {
        self.flops += other.flops;
        self.weight_bytes += other.weight_bytes;
        self.act_bytes += other.act_bytes;
        self.kv_read_bytes += other.kv_read_bytes;
        self.kv_write_bytes += other.kv_write_bytes;
    }

    /// Scale every component (e.g. by the number of layers).
    #[must_use]
    pub fn scaled(&self, k: f64) -> OpCost {
        OpCost {
            flops: self.flops * k,
            weight_bytes: self.weight_bytes * k,
            act_bytes: self.act_bytes * k,
            kv_read_bytes: self.kv_read_bytes * k,
            kv_write_bytes: self.kv_write_bytes * k,
        }
    }
}

/// Cost of one [`BlockOp`] processing `new_tokens` fresh tokens per
/// sequence with `past_tokens` of context, at batch size `batch`.
///
/// For prefill, `new_tokens` is the prompt length and `past_tokens` is 0;
/// for decode, `new_tokens` is 1 and `past_tokens` grows per step.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn op_cost(
    model: &ModelConfig,
    op: BlockOp,
    batch: u64,
    new_tokens: u64,
    past_tokens: u64,
    dtype: DType,
) -> OpCost {
    let b = batch as f64;
    let t = new_tokens as f64;
    let s_total = (past_tokens + new_tokens) as f64;
    let h = model.hidden as f64;
    let kv = model.kv_dim() as f64;
    let heads = model.heads as f64;
    let d = model.head_dim() as f64;
    let inter = model.intermediate as f64;
    let e = dtype.bytes();
    let a = dtype.act_bytes();
    // Per-token active gate/up matrices (top_k experts for MoE), and the
    // share of resident expert weights actually streamed this step.
    let (gate_mats, compute_experts, touched) = match model.mlp {
        crate::MlpKind::GatedSilu => (2.0, 1.0, 1.0),
        crate::MlpKind::Gelu => (1.0, 1.0, 1.0),
        crate::MlpKind::GatedMoe { top_k, .. } => (2.0, top_k as f64, model.experts_touched(batch)),
    };

    match op {
        BlockOp::InputNorm | BlockOp::PostAttnNorm => OpCost {
            flops: 5.0 * b * t * h,
            weight_bytes: h * e,
            act_bytes: 2.0 * b * t * h * a,
            ..OpCost::default()
        },
        BlockOp::QkvProj => OpCost {
            flops: 2.0 * b * t * h * (h + 2.0 * kv),
            weight_bytes: h * (h + 2.0 * kv) * e,
            act_bytes: b * t * (h + (h + 2.0 * kv)) * a,
            kv_write_bytes: b * t * 2.0 * kv * a,
            ..OpCost::default()
        },
        BlockOp::Rope => OpCost {
            flops: 4.0 * b * t * (h + kv),
            act_bytes: 2.0 * b * t * (h + kv) * a,
            ..OpCost::default()
        },
        BlockOp::AttnScores => OpCost {
            // QK^T plus softmax.
            flops: 2.0 * b * heads * t * s_total * d + 5.0 * b * heads * t * s_total,
            act_bytes: b * t * h * a + ATTN_SPILL * b * heads * t * s_total * a,
            kv_read_bytes: b * kv * s_total * a,
            ..OpCost::default()
        },
        BlockOp::AttnContext => OpCost {
            flops: 2.0 * b * heads * t * s_total * d,
            act_bytes: ATTN_SPILL * b * heads * t * s_total * a + b * t * h * a,
            kv_read_bytes: b * kv * s_total * a,
            ..OpCost::default()
        },
        BlockOp::OProj => OpCost {
            flops: 2.0 * b * t * h * h + b * t * h,
            weight_bytes: h * h * e,
            act_bytes: 3.0 * b * t * h * a, // in, residual, out
            ..OpCost::default()
        },
        BlockOp::GateUpSilu => OpCost {
            flops: compute_experts * (2.0 * b * t * h * gate_mats * inter + 4.0 * b * t * inter),
            weight_bytes: touched * gate_mats * h * inter * e,
            act_bytes: (b * t * h + compute_experts * gate_mats * b * t * inter) * a,
            ..OpCost::default()
        },
        BlockOp::DownProj => OpCost {
            flops: compute_experts * (2.0 * b * t * inter * h + b * t * h),
            weight_bytes: touched * h * inter * e,
            act_bytes: (compute_experts * b * t * inter + 2.0 * b * t * h) * a,
            ..OpCost::default()
        },
    }
}

/// Cost of the input-embedding gather for `batch x new_tokens` tokens.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn embedding_cost(model: &ModelConfig, batch: u64, new_tokens: u64, dtype: DType) -> OpCost {
    let gathered = (batch * new_tokens * model.hidden) as f64 * dtype.act_bytes();
    OpCost {
        act_bytes: 2.0 * gathered,
        ..OpCost::default()
    }
}

/// Cost of the final norm + LM head for `batch x new_tokens` tokens.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn lm_head_cost(model: &ModelConfig, batch: u64, new_tokens: u64, dtype: DType) -> OpCost {
    let b = batch as f64;
    let t = new_tokens as f64;
    let h = model.hidden as f64;
    let v = model.vocab as f64;
    OpCost {
        flops: 2.0 * b * t * h * v + 5.0 * b * t * h,
        weight_bytes: v * h * dtype.bytes(),
        act_bytes: (b * t * h + b * t * v) * dtype.act_bytes(),
        ..OpCost::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn decode_gemv_intensity_is_about_batch() {
        // For a weight-streaming GEMV, flops/weight-byte = 2*B/elem_size.
        let m = zoo::llama2_7b();
        for batch in [1u64, 4, 16] {
            let c = op_cost(&m, BlockOp::QkvProj, batch, 1, 512, DType::Bf16);
            let ai = c.flops / c.weight_bytes;
            let expected = 2.0 * batch as f64 / 2.0;
            assert!((ai - expected).abs() / expected < 0.05, "batch {batch}");
        }
    }

    #[test]
    fn attention_dominates_at_long_context() {
        // KV reads grow with context; at 4096 past tokens the attention
        // ops move more bytes than the QKV projection weights.
        let m = zoo::llama2_7b();
        let attn = op_cost(&m, BlockOp::AttnScores, 1, 1, 4096, DType::Bf16);
        let qkv = op_cost(&m, BlockOp::QkvProj, 1, 1, 4096, DType::Bf16);
        assert!(attn.kv_read_bytes > 0.3 * qkv.weight_bytes);
    }

    #[test]
    fn block_flops_sum_matches_analytic() {
        // Sum of block GEMM flops per decode token should be ~2 * block
        // params (1 MAC per parameter, 2 flops per MAC).
        let m = zoo::llama2_7b();
        let mut total = OpCost::default();
        for op in BlockOp::all() {
            total.add(&op_cost(&m, op, 1, 1, 0, DType::Bf16));
        }
        let expected = 2.0 * m.block_params() as f64;
        assert!(
            (total.flops - expected).abs() / expected < 0.05,
            "flops {} vs 2*params {}",
            total.flops,
            expected
        );
    }

    #[test]
    fn norms_are_tiny_fraction_of_block() {
        // Figure 7: the two layer norms form only ~3% of block time; in
        // byte terms they are an even smaller share at batch 4.
        let m = zoo::llama2_7b();
        let mut norm_bytes = 0.0;
        let mut total_bytes = 0.0;
        for op in BlockOp::all() {
            let c = op_cost(&m, op, 4, 1, 128, DType::Bf16);
            if matches!(op, BlockOp::InputNorm | BlockOp::PostAttnNorm) {
                norm_bytes += c.total_bytes();
            }
            total_bytes += c.total_bytes();
        }
        assert!(norm_bytes / total_bytes < 0.05);
    }

    #[test]
    fn prefill_is_compute_bound_decode_is_not() {
        let m = zoo::llama2_7b();
        let prefill = op_cost(&m, BlockOp::GateUpSilu, 1, 1024, 0, DType::Bf16);
        let decode = op_cost(&m, BlockOp::GateUpSilu, 1, 1, 1024, DType::Bf16);
        assert!(prefill.arithmetic_intensity() > 100.0);
        assert!(decode.arithmetic_intensity() < 4.0);
    }

    #[test]
    fn gqa_reduces_kv_traffic() {
        let llama70 = zoo::llama2_70b();
        let c = op_cost(&llama70, BlockOp::AttnScores, 1, 1, 1024, DType::Bf16);
        // KV read with 8 kv-heads is 1/8 of what 64 full heads would read.
        let full_kv = (llama70.hidden * 1025) as f64 * 2.0;
        assert!(c.kv_read_bytes < full_kv / 4.0);
    }

    #[test]
    fn scaled_and_add_are_linear() {
        let m = zoo::llama2_7b();
        let c = op_cost(&m, BlockOp::DownProj, 2, 1, 64, DType::Bf16);
        let mut doubled = c;
        doubled.add(&c);
        let scaled = c.scaled(2.0);
        assert!((doubled.flops - scaled.flops).abs() < 1e-6);
        assert!((doubled.total_bytes() - scaled.total_bytes()).abs() < 1e-6);
    }
}
