//! Request shaping: prefill and decode phases.
//!
//! The paper sweeps batch size (Figures 4, 8, 9, 11, 12), input length
//! (Figures 10, 11, 13) and beam width (throughput runs use beam 4). This
//! module turns a request specification into per-step workloads.

use crate::ops::{self, BlockOp, OpCost};
use crate::ModelConfig;
use cllm_hw::DType;
use serde::{Deserialize, Serialize};

/// One inference request shape.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct RequestSpec {
    /// Number of sequences batched together.
    pub batch: u64,
    /// Prompt length in tokens.
    pub input_tokens: u64,
    /// Tokens to generate.
    pub output_tokens: u64,
    /// Beam width (beam search multiplies decode batch).
    pub beam: u64,
}

impl RequestSpec {
    /// A greedy-decoding request (beam 1).
    #[must_use]
    pub fn new(batch: u64, input_tokens: u64, output_tokens: u64) -> Self {
        RequestSpec {
            batch,
            input_tokens,
            output_tokens,
            beam: 1,
        }
    }

    /// Set the beam width (the paper's throughput runs use beam 4).
    #[must_use]
    pub fn with_beam(mut self, beam: u64) -> Self {
        self.beam = beam.max(1);
        self
    }

    /// Effective decode batch: each beam is a live sequence.
    #[must_use]
    pub fn decode_batch(&self) -> u64 {
        self.batch * self.beam
    }

    /// The workload of the prefill phase (all prompt tokens at once).
    #[must_use]
    pub fn prefill_step(&self, model: &ModelConfig, dtype: DType) -> StepWorkload {
        StepWorkload::build(model, dtype, self.batch, self.input_tokens, 0)
    }

    /// The workload of decode step `position` (0-based: the first
    /// generated token sees `input_tokens` of context).
    #[must_use]
    pub fn decode_step(&self, model: &ModelConfig, dtype: DType, position: u64) -> StepWorkload {
        StepWorkload::build(
            model,
            dtype,
            self.decode_batch(),
            1,
            self.input_tokens + position,
        )
    }

    /// Context length at the *median* decode step — a good single
    /// operating point for steady-state throughput models.
    #[must_use]
    pub fn median_context(&self) -> u64 {
        self.input_tokens + self.output_tokens / 2
    }
}

/// Total cost of an arbitrary forward pass — convenience for simulators
/// that do not need the per-operator breakdown.
#[must_use]
pub fn step_cost(
    model: &ModelConfig,
    dtype: DType,
    batch: u64,
    new_tokens: u64,
    past_tokens: u64,
) -> OpCost {
    StepWorkload::build(model, dtype, batch, new_tokens, past_tokens).total()
}

/// The complete workload of one forward pass.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StepWorkload {
    /// Cost of each block operator for ONE decoder layer.
    pub per_op: Vec<(BlockOp, OpCost)>,
    /// Number of decoder layers.
    pub layers: u64,
    /// Embedding gather cost.
    pub embedding: OpCost,
    /// Final norm + LM head cost.
    pub lm_head: OpCost,
    /// Tokens produced by this step per sequence (prompt length for
    /// prefill, 1 for decode).
    pub new_tokens: u64,
    /// Batch size of the step.
    pub batch: u64,
}

impl StepWorkload {
    fn build(
        model: &ModelConfig,
        dtype: DType,
        batch: u64,
        new_tokens: u64,
        past_tokens: u64,
    ) -> Self {
        let per_op = BlockOp::all()
            .into_iter()
            .map(|op| {
                (
                    op,
                    ops::op_cost(model, op, batch, new_tokens, past_tokens, dtype),
                )
            })
            .collect();
        StepWorkload {
            per_op,
            layers: model.layers,
            embedding: ops::embedding_cost(model, batch, new_tokens, dtype),
            lm_head: ops::lm_head_cost(model, batch, new_tokens, dtype),
            new_tokens,
            batch,
        }
    }

    /// Total cost of one decoder layer.
    #[must_use]
    pub fn block_total(&self) -> OpCost {
        let mut t = OpCost::default();
        for (_, c) in &self.per_op {
            t.add(c);
        }
        t
    }

    /// Total cost of the whole forward pass.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn total(&self) -> OpCost {
        let mut t = self.block_total().scaled(self.layers as f64);
        t.add(&self.embedding);
        t.add(&self.lm_head);
        t
    }

    /// Arithmetic intensity of the full pass, FLOP/byte.
    #[must_use]
    pub fn arithmetic_intensity(&self) -> f64 {
        self.total().arithmetic_intensity()
    }

    /// Fraction of total bytes attributable to decoder blocks (the paper
    /// observes decoder blocks take 99.9% of time).
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn block_byte_share(&self) -> f64 {
        let blocks = self.block_total().scaled(self.layers as f64).total_bytes();
        blocks / self.total().total_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn decode_batch_multiplies_beam() {
        let r = RequestSpec::new(6, 1024, 128).with_beam(4);
        assert_eq!(r.decode_batch(), 24);
    }

    #[test]
    fn beam_zero_clamped_to_one() {
        let r = RequestSpec::new(1, 8, 8).with_beam(0);
        assert_eq!(r.beam, 1);
    }

    #[test]
    fn intensity_grows_with_batch() {
        let m = zoo::llama2_7b();
        let mut prev = 0.0;
        for batch in [1u64, 4, 16, 64, 256] {
            let step = RequestSpec::new(batch, 128, 128).decode_step(&m, DType::Bf16, 0);
            let ai = step.arithmetic_intensity();
            assert!(ai > prev, "batch {batch}: {ai} <= {prev}");
            prev = ai;
        }
    }

    #[test]
    fn prefill_much_more_intense_than_decode() {
        let m = zoo::llama2_7b();
        let r = RequestSpec::new(1, 1024, 128);
        let prefill = r.prefill_step(&m, DType::Bf16).arithmetic_intensity();
        let decode = r.decode_step(&m, DType::Bf16, 0).arithmetic_intensity();
        assert!(prefill > 20.0 * decode);
    }

    #[test]
    fn blocks_dominate_bytes() {
        // Paper: "decoder blocks take 99.9% of the time".
        let m = zoo::llama2_7b();
        let step = RequestSpec::new(4, 128, 128).decode_step(&m, DType::Bf16, 64);
        assert!(step.block_byte_share() > 0.85);
    }

    #[test]
    fn later_positions_cost_more_kv() {
        let m = zoo::llama2_7b();
        let r = RequestSpec::new(1, 512, 512);
        let early = r.decode_step(&m, DType::Bf16, 0).total();
        let late = r.decode_step(&m, DType::Bf16, 511).total();
        assert!(late.kv_read_bytes > early.kv_read_bytes);
        assert!(late.flops > early.flops);
    }

    #[test]
    fn decode_bytes_near_weight_bytes_at_batch1() {
        // At batch 1 with short context, decode streams approximately the
        // model weights once per token.
        let m = zoo::llama2_7b();
        let step = RequestSpec::new(1, 128, 16).decode_step(&m, DType::Bf16, 0);
        let total = step.total().total_bytes();
        let weights = m.streamed_weight_bytes(DType::Bf16);
        let ratio = total / weights;
        assert!((0.9..1.6).contains(&ratio), "ratio {ratio}");
    }
}
