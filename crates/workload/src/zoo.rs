//! Model presets.
//!
//! The paper's primary subjects are Llama2 7B/13B/70B (Section III-C3).
//! To confirm generality, Section III-C3 also evaluates Llama3 8B, GPT-J
//! 6B, Falcon 7B, Baichuan2 7B and Qwen 7B, finding 3.1-13.1% TEE
//! overheads "in line with" Llama2 7B — the `model_zoo` experiment
//! reproduces that sweep.

use crate::{MlpKind, ModelConfig};

/// Llama2 7B: 32 layers, 4096 hidden, 32 heads, gated-SiLU MLP 11008.
#[must_use]
pub fn llama2_7b() -> ModelConfig {
    ModelConfig {
        name: "Llama2 7B".to_owned(),
        hidden: 4096,
        layers: 32,
        heads: 32,
        kv_heads: 32,
        intermediate: 11008,
        mlp: MlpKind::GatedSilu,
        vocab: 32000,
        max_seq: 4096,
    }
}

/// Llama2 13B: 40 layers, 5120 hidden, 40 heads, MLP 13824.
#[must_use]
pub fn llama2_13b() -> ModelConfig {
    ModelConfig {
        name: "Llama2 13B".to_owned(),
        hidden: 5120,
        layers: 40,
        heads: 40,
        kv_heads: 40,
        intermediate: 13824,
        mlp: MlpKind::GatedSilu,
        vocab: 32000,
        max_seq: 4096,
    }
}

/// Llama2 70B: 80 layers, 8192 hidden, 64 query heads with 8 KV heads
/// (grouped-query attention), MLP 28672.
#[must_use]
pub fn llama2_70b() -> ModelConfig {
    ModelConfig {
        name: "Llama2 70B".to_owned(),
        hidden: 8192,
        layers: 80,
        heads: 64,
        kv_heads: 8,
        intermediate: 28672,
        mlp: MlpKind::GatedSilu,
        vocab: 32000,
        max_seq: 4096,
    }
}

/// Llama3 8B: GQA (8 KV heads), 14336 MLP, 128k vocabulary.
#[must_use]
pub fn llama3_8b() -> ModelConfig {
    ModelConfig {
        name: "Llama3 8B".to_owned(),
        hidden: 4096,
        layers: 32,
        heads: 32,
        kv_heads: 8,
        intermediate: 14336,
        mlp: MlpKind::GatedSilu,
        vocab: 128_256,
        max_seq: 8192,
    }
}

/// GPT-J 6B: 28 layers, 4096 hidden, 16 heads, classic 4x GELU MLP.
#[must_use]
pub fn gptj_6b() -> ModelConfig {
    ModelConfig {
        name: "GPT-J 6B".to_owned(),
        hidden: 4096,
        layers: 28,
        heads: 16,
        kv_heads: 16,
        intermediate: 16384,
        mlp: MlpKind::Gelu,
        vocab: 50400,
        max_seq: 2048,
    }
}

/// Falcon 7B: 32 layers, 4544 hidden, 71 heads with multi-query attention
/// (1 KV head), 4x GELU MLP.
#[must_use]
pub fn falcon_7b() -> ModelConfig {
    ModelConfig {
        name: "Falcon 7B".to_owned(),
        hidden: 4544,
        layers: 32,
        heads: 71,
        kv_heads: 1,
        intermediate: 18176,
        mlp: MlpKind::Gelu,
        vocab: 65024,
        max_seq: 2048,
    }
}

/// Baichuan2 7B: Llama-like with a 125k vocabulary.
#[must_use]
pub fn baichuan2_7b() -> ModelConfig {
    ModelConfig {
        name: "Baichuan2 7B".to_owned(),
        hidden: 4096,
        layers: 32,
        heads: 32,
        kv_heads: 32,
        intermediate: 11008,
        mlp: MlpKind::GatedSilu,
        vocab: 125_696,
        max_seq: 4096,
    }
}

/// Qwen 7B: Llama-like with a 152k vocabulary.
#[must_use]
pub fn qwen_7b() -> ModelConfig {
    ModelConfig {
        name: "Qwen 7B".to_owned(),
        hidden: 4096,
        layers: 32,
        heads: 32,
        kv_heads: 32,
        intermediate: 11008,
        mlp: MlpKind::GatedSilu,
        vocab: 151_936,
        max_seq: 8192,
    }
}

/// Mixtral 8x7B: the canonical open sparse mixture of experts (8 experts,
/// top-2 routing) — the stand-in for the MoE direction the paper's intro
/// notes the Llama family is taking.
#[must_use]
pub fn mixtral_8x7b() -> ModelConfig {
    ModelConfig {
        name: "Mixtral 8x7B".to_owned(),
        hidden: 4096,
        layers: 32,
        heads: 32,
        kv_heads: 8,
        intermediate: 14336,
        mlp: MlpKind::GatedMoe {
            experts: 8,
            top_k: 2,
        },
        vocab: 32000,
        max_seq: 32768,
    }
}

/// The Section III-C3 cross-check set.
#[must_use]
pub fn cross_check_models() -> Vec<ModelConfig> {
    vec![
        llama3_8b(),
        gptj_6b(),
        falcon_7b(),
        baichuan2_7b(),
        qwen_7b(),
    ]
}

/// All Llama2 sizes evaluated in the paper.
#[must_use]
pub fn llama2_family() -> Vec<ModelConfig> {
    vec![llama2_7b(), llama2_13b(), llama2_70b()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_models_have_plausible_sizes() {
        let expected: [(ModelConfig, f64, f64); 8] = [
            (llama2_7b(), 6.3e9, 7.2e9),
            (llama2_13b(), 12.4e9, 13.6e9),
            (llama2_70b(), 66.0e9, 71.0e9),
            (llama3_8b(), 7.3e9, 8.6e9),
            (gptj_6b(), 5.5e9, 6.5e9),
            (falcon_7b(), 6.3e9, 7.7e9),
            (baichuan2_7b(), 6.9e9, 8.1e9),
            (qwen_7b(), 7.0e9, 8.5e9),
        ];
        for (m, lo, hi) in expected {
            let p = m.param_count() as f64;
            assert!((lo..hi).contains(&p), "{}: {p}", m.name);
        }
    }

    #[test]
    fn head_dims_divide_evenly() {
        for m in [
            llama2_7b(),
            llama2_13b(),
            llama2_70b(),
            llama3_8b(),
            gptj_6b(),
            falcon_7b(),
            baichuan2_7b(),
            qwen_7b(),
        ] {
            assert_eq!(m.hidden % m.heads, 0, "{}", m.name);
            assert!(m.kv_heads <= m.heads, "{}", m.name);
        }
    }

    #[test]
    fn falcon_is_multi_query() {
        assert_eq!(falcon_7b().kv_heads, 1);
    }

    #[test]
    fn mixtral_params_near_47b() {
        let p = mixtral_8x7b().param_count() as f64;
        assert!((44.0e9..50.0e9).contains(&p), "got {p}");
    }

    #[test]
    fn moe_expert_coverage() {
        let m = mixtral_8x7b();
        // One token touches exactly... close to top_k experts.
        assert!((m.experts_touched(1) - 2.0).abs() < 0.3);
        // A big batch touches all 8.
        assert!(m.experts_touched(256) > 7.9);
        // Dense models always 1.0.
        assert_eq!(llama2_7b().experts_touched(64), 1.0);
    }

    #[test]
    fn family_ordering_by_size() {
        let f = llama2_family();
        assert!(f[0].param_count() < f[1].param_count());
        assert!(f[1].param_count() < f[2].param_count());
    }
}
