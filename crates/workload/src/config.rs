//! Model architecture configuration and parameter accounting.

use cllm_hw::DType;
use serde::{Deserialize, Serialize};

/// MLP block style.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MlpKind {
    /// Gated SiLU MLP (Llama family): `down(silu(gate(x)) * up(x))`,
    /// three weight matrices of `hidden x intermediate`.
    GatedSilu,
    /// Classic GELU MLP (GPT-J, Falcon): `down(gelu(up(x)))`,
    /// two weight matrices.
    Gelu,
    /// Sparse mixture of experts over gated-SiLU experts (Mixtral /
    /// Llama 4 style): each token is routed to `top_k` of `experts`
    /// expert MLPs. All experts are resident in memory (footprint), but
    /// only the routed ones are computed and streamed per token — the
    /// access pattern that stresses TEE address translation hardest.
    GatedMoe {
        /// Total experts per layer.
        experts: u64,
        /// Experts active per token.
        top_k: u64,
    },
}

/// A dense-transformer architecture.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Display name, e.g. `"Llama2 7B"`.
    pub name: String,
    /// Hidden (model) dimension.
    pub hidden: u64,
    /// Number of decoder blocks.
    pub layers: u64,
    /// Attention heads.
    pub heads: u64,
    /// Key/value heads (< `heads` for grouped-query attention; Llama2 70B
    /// uses 8 KV heads for 64 query heads).
    pub kv_heads: u64,
    /// MLP intermediate dimension.
    pub intermediate: u64,
    /// MLP style.
    pub mlp: MlpKind,
    /// Vocabulary size.
    pub vocab: u64,
    /// Maximum supported context length.
    pub max_seq: u64,
}

impl ModelConfig {
    /// Per-head dimension.
    #[must_use]
    pub fn head_dim(&self) -> u64 {
        self.hidden / self.heads
    }

    /// Combined K+V projection output dimension.
    #[must_use]
    pub fn kv_dim(&self) -> u64 {
        self.kv_heads * self.head_dim()
    }

    /// Number of MLP weight matrices resident per layer (3 per gated
    /// expert, 2 for plain GELU).
    #[must_use]
    pub fn mlp_matrices(&self) -> u64 {
        match self.mlp {
            MlpKind::GatedSilu => 3,
            MlpKind::Gelu => 2,
            MlpKind::GatedMoe { experts, .. } => 3 * experts,
        }
    }

    /// Experts a batch of `batch` tokens is expected to touch in one
    /// decode step (coupon-collector coverage of `experts` bins with
    /// `batch * top_k` draws); 1.0 for dense models.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn experts_touched(&self, batch: u64) -> f64 {
        match self.mlp {
            MlpKind::GatedSilu | MlpKind::Gelu => 1.0,
            MlpKind::GatedMoe { experts, top_k } => {
                let n = experts as f64;
                let draws = (batch * top_k) as f64;
                n * (1.0 - (1.0 - 1.0 / n).powf(draws))
            }
        }
    }

    /// Parameters in one decoder block.
    #[must_use]
    pub fn block_params(&self) -> u64 {
        let attn = self.hidden * self.hidden        // Q proj
            + 2 * self.hidden * self.kv_dim()       // K, V proj
            + self.hidden * self.hidden; // output proj
        let mlp = self.mlp_matrices() * self.hidden * self.intermediate;
        let router = match self.mlp {
            MlpKind::GatedMoe { experts, .. } => self.hidden * experts,
            _ => 0,
        };
        let norms = 2 * self.hidden;
        attn + mlp + router + norms
    }

    /// Total parameter count (embedding + blocks + final norm + LM head).
    #[must_use]
    pub fn param_count(&self) -> u64 {
        let embed = self.vocab * self.hidden;
        let lm_head = self.vocab * self.hidden;
        embed + self.layers * self.block_params() + self.hidden + lm_head
    }

    /// Bytes of weights at the given data type (int8 keeps norm/embedding
    /// scales negligible; we charge the nominal element size).
    #[must_use]
    pub fn weight_bytes(&self, dtype: DType) -> f64 {
        self.param_count() as f64 * dtype.bytes()
    }

    /// Bytes of *decoder-block* weights streamed per decode step (the
    /// embedding table is gather-accessed, not streamed; the LM head is).
    #[must_use]
    pub fn streamed_weight_bytes(&self, dtype: DType) -> f64 {
        ((self.layers * self.block_params()) as f64 + (self.vocab * self.hidden) as f64)
            * dtype.bytes()
    }
}

#[cfg(test)]
mod tests {
    use crate::zoo;
    use cllm_hw::DType;

    #[test]
    fn llama2_7b_param_count() {
        let m = zoo::llama2_7b();
        let p = m.param_count() as f64;
        assert!((6.4e9..7.1e9).contains(&p), "got {p}");
    }

    #[test]
    fn llama2_13b_param_count() {
        let p = zoo::llama2_13b().param_count() as f64;
        assert!((12.5e9..13.5e9).contains(&p), "got {p}");
    }

    #[test]
    fn llama2_70b_param_count() {
        let p = zoo::llama2_70b().param_count() as f64;
        assert!((66.0e9..71.0e9).contains(&p), "got {p}");
    }

    #[test]
    fn gqa_shrinks_kv_dim() {
        let m = zoo::llama2_70b();
        assert_eq!(m.heads, 64);
        assert_eq!(m.kv_heads, 8);
        assert_eq!(m.kv_dim(), 8 * m.head_dim());
        assert!(m.kv_dim() < m.hidden);
    }

    #[test]
    fn weight_bytes_scale_with_dtype() {
        let m = zoo::llama2_7b();
        let bf16 = m.weight_bytes(DType::Bf16);
        let int8 = m.weight_bytes(DType::Int8);
        let f32 = m.weight_bytes(DType::F32);
        assert!((bf16 / int8 - 2.0).abs() < 1e-9);
        assert!((f32 / bf16 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn llama2_70b_does_not_fit_one_socket_memory() {
        // Figure 5's premise: the 70B model exceeds single-socket memory.
        let m = zoo::llama2_70b();
        let socket_mem = cllm_hw::presets::emr1().dram_capacity_bytes;
        assert!(m.weight_bytes(DType::Bf16) > socket_mem * 0.5);
    }

    #[test]
    fn streamed_excludes_embedding() {
        let m = zoo::llama2_7b();
        assert!(m.streamed_weight_bytes(DType::Bf16) < m.weight_bytes(DType::Bf16));
    }
}
