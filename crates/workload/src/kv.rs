//! KV-cache sizing.
//!
//! Figure 10's input-size crossover is driven by the KV cache: "as we
//! increase the input size, the KV cache size per new token also grows.
//! Eventually ... each token causes a considerable cache miss rate, making
//! the workload memory-bound."

use crate::ModelConfig;
use cllm_hw::DType;
use std::collections::BTreeMap;

/// Bytes of KV cache held for one sequence of `seq_len` tokens.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn kv_bytes_per_sequence(model: &ModelConfig, seq_len: u64, dtype: DType) -> f64 {
    // K and V, per layer, per token, kv_dim wide.
    (2 * model.layers * model.kv_dim() * seq_len) as f64 * dtype.act_bytes()
}

/// Total KV footprint for a batch of sequences.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn kv_bytes_total(model: &ModelConfig, batch: u64, seq_len: u64, dtype: DType) -> f64 {
    batch as f64 * kv_bytes_per_sequence(model, seq_len, dtype)
}

/// Full working-set footprint at a decode step: streamed weights + KV
/// cache + a small activation slab. Drives TLB-reach and LLC decisions.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn working_set_bytes(model: &ModelConfig, batch: u64, seq_len: u64, dtype: DType) -> f64 {
    let acts = (batch * model.hidden * 8) as f64 * dtype.act_bytes();
    model.streamed_weight_bytes(dtype) + kv_bytes_total(model, batch, seq_len, dtype) + acts
}

/// The sequence length at which the KV cache matches the weight footprint
/// — roughly where Figure 10's overhead inflection appears (the workload
/// turns memory-bound again).
#[must_use]
pub fn kv_weight_parity_seq(model: &ModelConfig, batch: u64, dtype: DType) -> u64 {
    let weights = model.streamed_weight_bytes(dtype);
    let per_token = kv_bytes_total(model, batch, 1, dtype);
    if per_token <= 0.0 {
        return u64::MAX;
    }
    (weights / per_token).ceil() as u64
}

/// One sequence's page table inside a [`PagePool`]: the physical pages it
/// holds plus the logical token count mapped onto them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PageTable {
    pages: Vec<u32>,
    tokens: u64,
}

impl PageTable {
    /// Physical pages held.
    #[must_use]
    pub fn pages(&self) -> &[u32] {
        &self.pages
    }

    /// Logical tokens mapped (may exceed page capacity only for a
    /// clamped allocation — see [`PagePool::reserve_clamped`]).
    #[must_use]
    pub fn tokens(&self) -> u64 {
        self.tokens
    }
}

/// A vLLM-style fixed-block KV-cache allocator.
///
/// The pool owns `total_pages` pages of `block_tokens` tokens each.
/// Sequences reserve whole pages through a per-sequence [`PageTable`];
/// the free list is fully deterministic — page ids are handed out in
/// ascending order from a watermark and recycled LIFO — so two runs of
/// the same schedule allocate byte-identically. The free list is lazy
/// (a watermark plus a recycled stack), so memory stays proportional to
/// the pages *live*, never the pool size; huge pools used to disable
/// preemption in tests cost nothing.
///
/// Invariant, checked after every operation in debug builds:
/// `free_pages() + pages_in_use() == total_pages()`.
#[derive(Debug, Clone)]
pub struct PagePool {
    block_tokens: u64,
    total_pages: u64,
    /// Pages `[0, watermark)` have been handed out at least once.
    watermark: u64,
    /// Released pages awaiting reuse (LIFO).
    recycled: Vec<u32>,
    in_use: u64,
    peak_in_use: u64,
    tables: BTreeMap<u64, PageTable>,
}

impl PagePool {
    /// An empty pool of `total_pages` pages of `block_tokens` each.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    #[must_use]
    pub fn new(total_pages: u64, block_tokens: u64) -> Self {
        assert!(total_pages > 0, "pool must hold at least one page");
        assert!(block_tokens > 0, "pages must hold at least one token");
        PagePool {
            block_tokens,
            total_pages,
            watermark: 0,
            recycled: Vec::new(),
            in_use: 0,
            peak_in_use: 0,
            tables: BTreeMap::new(),
        }
    }

    /// Tokens per page.
    #[must_use]
    pub fn block_tokens(&self) -> u64 {
        self.block_tokens
    }

    /// Pool capacity in pages.
    #[must_use]
    pub fn total_pages(&self) -> u64 {
        self.total_pages
    }

    /// Pages currently free.
    #[must_use]
    pub fn free_pages(&self) -> u64 {
        self.total_pages - self.in_use
    }

    /// Pages currently allocated to sequences.
    #[must_use]
    pub fn pages_in_use(&self) -> u64 {
        self.in_use
    }

    /// High-water mark of [`PagePool::pages_in_use`].
    #[must_use]
    pub fn peak_pages_in_use(&self) -> u64 {
        self.peak_in_use
    }

    /// Sequences currently holding pages.
    #[must_use]
    pub fn sequences(&self) -> usize {
        self.tables.len()
    }

    /// Pages needed to hold `tokens` tokens (ceiling division; at least
    /// one page so even an empty reservation is addressable).
    #[must_use]
    pub fn pages_for(&self, tokens: u64) -> u64 {
        tokens.div_ceil(self.block_tokens).max(1)
    }

    /// The page table of sequence `id`, if it holds pages.
    #[must_use]
    pub fn table(&self, id: u64) -> Option<&PageTable> {
        self.tables.get(&id)
    }

    /// Internal fragmentation: tokens of page capacity allocated but not
    /// (yet) occupied by mapped tokens, summed over all sequences.
    #[must_use]
    pub fn slack_tokens(&self) -> u64 {
        self.tables
            .values()
            .map(|t| (t.pages.len() as u64 * self.block_tokens).saturating_sub(t.tokens))
            .sum()
    }

    fn pop_free(&mut self) -> Option<u32> {
        if let Some(p) = self.recycled.pop() {
            return Some(p);
        }
        if self.watermark < self.total_pages {
            #[allow(clippy::cast_possible_truncation)]
            let p = (self.watermark % u64::from(u32::MAX)) as u32;
            self.watermark += 1;
            return Some(p);
        }
        None
    }

    /// Grow (or create) sequence `id` to hold `tokens` logical tokens.
    /// Reservations only grow: shrinking a live sequence is not a KV
    /// operation the serving model needs. Returns `false` — leaving the
    /// pool untouched — when the free list cannot cover the growth.
    pub fn try_reserve(&mut self, id: u64, tokens: u64) -> bool {
        let target = self.pages_for(tokens);
        let have = self.tables.get(&id).map_or(0, |t| t.pages.len() as u64);
        let delta = target.saturating_sub(have);
        if delta > self.free_pages() {
            return false;
        }
        let mut grown = Vec::with_capacity(usize::try_from(delta).unwrap_or(0));
        for _ in 0..delta {
            grown.push(self.pop_free().expect("free count checked"));
        }
        self.in_use += delta;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        let entry = self.tables.entry(id).or_insert(PageTable {
            pages: Vec::new(),
            tokens: 0,
        });
        entry.pages.extend(grown);
        entry.tokens = entry.tokens.max(tokens);
        self.debug_check();
        true
    }

    /// Grow sequence `id` toward `tokens`, taking at most what is free.
    /// This is the liveness clamp: a sequence larger than the whole pool
    /// still makes progress (running with a partial residency priced by
    /// the pressure model) instead of deadlocking admission.
    pub fn reserve_clamped(&mut self, id: u64, tokens: u64) {
        let target = self.pages_for(tokens);
        let have = self.tables.get(&id).map_or(0, |t| t.pages.len() as u64);
        let delta = target.saturating_sub(have).min(self.free_pages());
        let mut grown = Vec::with_capacity(usize::try_from(delta).unwrap_or(0));
        for _ in 0..delta {
            grown.push(self.pop_free().expect("free count checked"));
        }
        self.in_use += delta;
        self.peak_in_use = self.peak_in_use.max(self.in_use);
        let entry = self.tables.entry(id).or_insert(PageTable {
            pages: Vec::new(),
            tokens: 0,
        });
        entry.pages.extend(grown);
        entry.tokens = entry.tokens.max(tokens);
        self.debug_check();
    }

    /// Release every page sequence `id` holds (completion, preemption or
    /// node loss). Pages return to the free list newest-first so reuse
    /// order stays deterministic. Returns the number of pages freed.
    pub fn release(&mut self, id: u64) -> u64 {
        let Some(table) = self.tables.remove(&id) else {
            return 0;
        };
        let freed = table.pages.len() as u64;
        self.recycled.extend(table.pages.into_iter().rev());
        self.in_use -= freed;
        self.debug_check();
        freed
    }

    /// The conservation invariant, as a queryable predicate (property
    /// tests call this after every operation).
    #[must_use]
    pub fn conserved(&self) -> bool {
        let held: u64 = self.tables.values().map(|t| t.pages.len() as u64).sum();
        held == self.in_use && self.free_pages() + self.in_use == self.total_pages
    }

    fn debug_check(&self) {
        debug_assert!(self.conserved(), "page pool lost track of pages");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn llama2_7b_kv_per_token() {
        // 2 * 32 layers * 4096 * 2 bytes = 512 KiB per token at bf16.
        let m = zoo::llama2_7b();
        let per_tok = kv_bytes_per_sequence(&m, 1, DType::Bf16);
        assert!((per_tok - 524_288.0).abs() < 1.0, "got {per_tok}");
    }

    #[test]
    fn kv_linear_in_batch_and_seq() {
        let m = zoo::llama2_7b();
        let base = kv_bytes_total(&m, 1, 100, DType::Bf16);
        assert!((kv_bytes_total(&m, 2, 100, DType::Bf16) - 2.0 * base).abs() < 1.0);
        assert!((kv_bytes_total(&m, 1, 200, DType::Bf16) - 2.0 * base).abs() < 1.0);
    }

    #[test]
    fn parity_seq_in_figure10_range() {
        // At batch 64 the paper sees the inflection around 2048 input
        // tokens; KV/weight parity should be in the low hundreds-to-
        // thousands range for batch 64.
        let m = zoo::llama2_7b();
        let parity = kv_weight_parity_seq(&m, 64, DType::Bf16);
        assert!(
            (100..3000).contains(&parity),
            "parity at batch 64 is {parity}"
        );
    }

    #[test]
    fn working_set_exceeds_weights() {
        let m = zoo::llama2_7b();
        assert!(working_set_bytes(&m, 8, 1024, DType::Bf16) > m.streamed_weight_bytes(DType::Bf16));
    }

    #[test]
    fn gqa_shrinks_kv_eightfold() {
        let m70 = zoo::llama2_70b();
        let per_tok = kv_bytes_per_sequence(&m70, 1, DType::Bf16);
        // 2 * 80 layers * (8 * 128) * 2 bytes = 320 KiB, despite 8192 hidden.
        assert!((per_tok - 327_680.0).abs() < 1.0, "got {per_tok}");
    }

    #[test]
    fn pool_reserve_release_conserves_pages() {
        let mut pool = PagePool::new(8, 16);
        assert!(pool.try_reserve(1, 33)); // 3 pages
        assert!(pool.try_reserve(2, 16)); // 1 page
        assert!(pool.conserved());
        assert_eq!(pool.pages_in_use(), 4);
        assert_eq!(pool.free_pages(), 4);
        assert_eq!(pool.release(1), 3);
        assert!(pool.conserved());
        assert_eq!(pool.pages_in_use(), 1);
        assert_eq!(pool.peak_pages_in_use(), 4);
    }

    #[test]
    fn pool_reservation_failure_leaves_pool_untouched() {
        let mut pool = PagePool::new(4, 16);
        assert!(pool.try_reserve(1, 48)); // 3 pages
        assert!(!pool.try_reserve(2, 32)); // needs 2, only 1 free
        assert_eq!(pool.pages_in_use(), 3);
        assert!(pool.table(2).is_none());
        assert!(pool.try_reserve(2, 16)); // 1 page fits
        assert_eq!(pool.free_pages(), 0);
    }

    #[test]
    fn pool_growth_only_pays_the_delta() {
        let mut pool = PagePool::new(8, 16);
        assert!(pool.try_reserve(7, 20)); // 2 pages
        assert!(pool.try_reserve(7, 40)); // 3 pages total, +1
        assert_eq!(pool.pages_in_use(), 3);
        assert_eq!(pool.table(7).unwrap().tokens(), 40);
        // Shrinking requests are ignored: reservations only grow.
        assert!(pool.try_reserve(7, 10));
        assert_eq!(pool.pages_in_use(), 3);
        assert_eq!(pool.table(7).unwrap().tokens(), 40);
    }

    #[test]
    fn pool_allocation_order_is_deterministic() {
        let run = || {
            let mut pool = PagePool::new(6, 4);
            assert!(pool.try_reserve(1, 8));
            assert!(pool.try_reserve(2, 8));
            pool.release(1);
            assert!(pool.try_reserve(3, 12));
            pool.table(3).unwrap().pages().to_vec()
        };
        let a = run();
        assert_eq!(a, run());
        // Pages recycle LIFO: sequence 3 reuses sequence 1's pages first.
        assert_eq!(a, vec![0, 1, 4]);
    }

    #[test]
    fn pool_clamped_reservation_takes_what_is_free() {
        let mut pool = PagePool::new(4, 16);
        pool.reserve_clamped(9, 1000); // wants 63 pages, gets all 4
        assert_eq!(pool.pages_in_use(), 4);
        assert_eq!(pool.table(9).unwrap().tokens(), 1000);
        assert!(pool.conserved());
    }

    #[test]
    fn pool_slack_counts_internal_fragmentation() {
        let mut pool = PagePool::new(8, 16);
        assert!(pool.try_reserve(1, 17)); // 2 pages = 32 tokens capacity
        assert_eq!(pool.slack_tokens(), 15);
        assert!(pool.try_reserve(1, 32)); // fills the second page
        assert_eq!(pool.slack_tokens(), 0);
    }
}
