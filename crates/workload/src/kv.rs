//! KV-cache sizing.
//!
//! Figure 10's input-size crossover is driven by the KV cache: "as we
//! increase the input size, the KV cache size per new token also grows.
//! Eventually ... each token causes a considerable cache miss rate, making
//! the workload memory-bound."

use crate::ModelConfig;
use cllm_hw::DType;

/// Bytes of KV cache held for one sequence of `seq_len` tokens.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn kv_bytes_per_sequence(model: &ModelConfig, seq_len: u64, dtype: DType) -> f64 {
    // K and V, per layer, per token, kv_dim wide.
    (2 * model.layers * model.kv_dim() * seq_len) as f64 * dtype.act_bytes()
}

/// Total KV footprint for a batch of sequences.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn kv_bytes_total(model: &ModelConfig, batch: u64, seq_len: u64, dtype: DType) -> f64 {
    batch as f64 * kv_bytes_per_sequence(model, seq_len, dtype)
}

/// Full working-set footprint at a decode step: streamed weights + KV
/// cache + a small activation slab. Drives TLB-reach and LLC decisions.
#[must_use]
#[allow(clippy::cast_precision_loss)]
pub fn working_set_bytes(model: &ModelConfig, batch: u64, seq_len: u64, dtype: DType) -> f64 {
    let acts = (batch * model.hidden * 8) as f64 * dtype.act_bytes();
    model.streamed_weight_bytes(dtype) + kv_bytes_total(model, batch, seq_len, dtype) + acts
}

/// The sequence length at which the KV cache matches the weight footprint
/// — roughly where Figure 10's overhead inflection appears (the workload
/// turns memory-bound again).
#[must_use]
pub fn kv_weight_parity_seq(model: &ModelConfig, batch: u64, dtype: DType) -> u64 {
    let weights = model.streamed_weight_bytes(dtype);
    let per_token = kv_bytes_total(model, batch, 1, dtype);
    if per_token <= 0.0 {
        return u64::MAX;
    }
    (weights / per_token).ceil() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::zoo;

    #[test]
    fn llama2_7b_kv_per_token() {
        // 2 * 32 layers * 4096 * 2 bytes = 512 KiB per token at bf16.
        let m = zoo::llama2_7b();
        let per_tok = kv_bytes_per_sequence(&m, 1, DType::Bf16);
        assert!((per_tok - 524_288.0).abs() < 1.0, "got {per_tok}");
    }

    #[test]
    fn kv_linear_in_batch_and_seq() {
        let m = zoo::llama2_7b();
        let base = kv_bytes_total(&m, 1, 100, DType::Bf16);
        assert!((kv_bytes_total(&m, 2, 100, DType::Bf16) - 2.0 * base).abs() < 1.0);
        assert!((kv_bytes_total(&m, 1, 200, DType::Bf16) - 2.0 * base).abs() < 1.0);
    }

    #[test]
    fn parity_seq_in_figure10_range() {
        // At batch 64 the paper sees the inflection around 2048 input
        // tokens; KV/weight parity should be in the low hundreds-to-
        // thousands range for batch 64.
        let m = zoo::llama2_7b();
        let parity = kv_weight_parity_seq(&m, 64, DType::Bf16);
        assert!(
            (100..3000).contains(&parity),
            "parity at batch 64 is {parity}"
        );
    }

    #[test]
    fn working_set_exceeds_weights() {
        let m = zoo::llama2_7b();
        assert!(working_set_bytes(&m, 8, 1024, DType::Bf16) > m.streamed_weight_bytes(DType::Bf16));
    }

    #[test]
    fn gqa_shrinks_kv_eightfold() {
        let m70 = zoo::llama2_70b();
        let per_tok = kv_bytes_per_sequence(&m70, 1, DType::Bf16);
        // 2 * 80 layers * (8 * 128) * 2 bytes = 320 KiB, despite 8192 hidden.
        assert!((per_tok - 327_680.0).abs() < 1.0, "got {per_tok}");
    }
}
