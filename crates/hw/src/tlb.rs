//! TLB and page-size modeling.
//!
//! Insights 6–7 of the paper hinge on address-translation behaviour: TDX
//! silently falls back to 2 MiB transparent huge pages even when 1 GiB pages
//! are reserved, and virtualization doubles page-walk depth (two-dimensional
//! EPT walks). This module computes TLB reach, miss rates for streaming
//! working sets, and the per-byte translation cost the roofline charges.

/// Page size used to map the inference working set.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PageSize {
    /// Base 4 KiB pages.
    Base4K,
    /// 2 MiB huge pages (transparent or explicit).
    Huge2M,
    /// 1 GiB huge pages (explicit reservation only).
    Huge1G,
}

impl PageSize {
    /// Page size in bytes.
    #[must_use]
    pub fn bytes(self) -> f64 {
        match self {
            PageSize::Base4K => 4096.0,
            PageSize::Huge2M => 2.0 * 1024.0 * 1024.0,
            PageSize::Huge1G => 1024.0 * 1024.0 * 1024.0,
        }
    }

    /// Human-readable label (`4K`, `2M`, `1G`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PageSize::Base4K => "4K",
            PageSize::Huge2M => "2M",
            PageSize::Huge1G => "1G",
        }
    }
}

/// How the hypervisor / OS provides huge pages to the workload.
///
/// Figure 6 compares `VM FH` (explicit 1 GiB pages), `VM TH` (2 MiB
/// transparent huge pages) and TDX, which *ignores manually reserved 1 GiB
/// pages* and self-allocates transparent 2 MiB pages (Insight 7).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum HugePagePolicy {
    /// No huge pages: everything on 4 KiB base pages.
    None,
    /// Transparent 2 MiB huge pages (`VM TH`).
    Transparent2M,
    /// Explicitly reserved 1 GiB pages (`VM FH`).
    Explicit1G,
}

impl HugePagePolicy {
    /// The page size the workload actually runs on under this policy,
    /// given whether the platform honours explicit reservations.
    ///
    /// TDX does not honour 1 GiB reservations; requesting [`Explicit1G`]
    /// under TDX yields [`PageSize::Huge2M`] (paper Section IV-A2).
    ///
    /// [`Explicit1G`]: HugePagePolicy::Explicit1G
    #[must_use]
    pub fn effective_page(self, honours_reservations: bool) -> PageSize {
        match self {
            HugePagePolicy::None => PageSize::Base4K,
            HugePagePolicy::Transparent2M => PageSize::Huge2M,
            HugePagePolicy::Explicit1G => {
                if honours_reservations {
                    PageSize::Huge1G
                } else {
                    PageSize::Huge2M
                }
            }
        }
    }
}

/// Second-level (unified) TLB model with per-page-size entry counts and
/// page-walk costs.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct TlbModel {
    /// STLB entries available for 4 KiB translations.
    pub entries_4k: u32,
    /// STLB entries available for 2 MiB translations.
    pub entries_2m: u32,
    /// STLB entries available for 1 GiB translations.
    pub entries_1g: u32,
    /// Cost of one native (one-dimensional) page walk, nanoseconds.
    pub walk_ns_native: f64,
    /// Cost of one virtualized (two-dimensional, EPT) page walk,
    /// nanoseconds. A 4-level guest walk under a 4-level EPT requires up to
    /// 24 memory references instead of 4, so this is roughly 3-4x the
    /// native cost.
    pub walk_ns_virtualized: f64,
}

impl TlbModel {
    /// Golden-Cove-class STLB: 2048 entries shared for 4K/2M, 16 for 1G.
    #[must_use]
    pub fn golden_cove() -> Self {
        TlbModel {
            entries_4k: 2048,
            entries_2m: 2048,
            entries_1g: 16,
            walk_ns_native: 40.0,
            walk_ns_virtualized: 150.0,
        }
    }

    /// TLB reach in bytes for a given page size: entries x page size.
    #[must_use]
    pub fn reach_bytes(&self, page: PageSize) -> f64 {
        let entries = match page {
            PageSize::Base4K => self.entries_4k,
            PageSize::Huge2M => self.entries_2m,
            PageSize::Huge1G => self.entries_1g,
        };
        f64::from(entries) * page.bytes()
    }

    /// Expected TLB misses per byte for a working set that is *streamed*
    /// (touched sequentially once per pass), of total size
    /// `footprint_bytes`.
    ///
    /// If the footprint fits in TLB reach, translations are cached across
    /// passes and the miss rate is ~0. Beyond reach, every page crossing
    /// misses, i.e. one miss per `page.bytes()` bytes, scaled by the
    /// fraction of the footprint that exceeds reach.
    #[must_use]
    pub fn misses_per_byte(&self, page: PageSize, footprint_bytes: f64) -> f64 {
        if footprint_bytes <= 0.0 {
            return 0.0;
        }
        let reach = self.reach_bytes(page);
        if footprint_bytes <= reach {
            return 0.0;
        }
        let uncovered_fraction = 1.0 - reach / footprint_bytes;
        uncovered_fraction / page.bytes()
    }

    /// Average extra nanoseconds of translation work per byte streamed, for
    /// the given page size, footprint and virtualization depth.
    ///
    /// `virtualized` selects the two-dimensional walk cost; `overlap`
    /// in `[0, 1)` is the fraction of walk latency hidden by out-of-order
    /// execution and concurrent page walkers (modern cores have 2-4).
    #[must_use]
    pub fn translation_ns_per_byte(
        &self,
        page: PageSize,
        footprint_bytes: f64,
        virtualized: bool,
        overlap: f64,
    ) -> f64 {
        let walk = if virtualized {
            self.walk_ns_virtualized
        } else {
            self.walk_ns_native
        };
        let exposed = walk * (1.0 - overlap.clamp(0.0, 0.999));
        self.misses_per_byte(page, footprint_bytes) * exposed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GIB;

    #[test]
    fn page_sizes() {
        assert_eq!(PageSize::Base4K.bytes(), 4096.0);
        assert_eq!(PageSize::Huge2M.bytes(), 2097152.0);
        assert_eq!(PageSize::Huge1G.bytes(), 1073741824.0);
    }

    #[test]
    fn tdx_ignores_1g_reservations() {
        // Insight 7: TDX uses self-allocated THP even when 1G pages exist.
        assert_eq!(
            HugePagePolicy::Explicit1G.effective_page(false),
            PageSize::Huge2M
        );
        assert_eq!(
            HugePagePolicy::Explicit1G.effective_page(true),
            PageSize::Huge1G
        );
    }

    #[test]
    fn reach_ordering() {
        let t = TlbModel::golden_cove();
        assert!(t.reach_bytes(PageSize::Base4K) < t.reach_bytes(PageSize::Huge2M));
        // 16 x 1G = 16 GiB still exceeds 2048 x 2M = 4 GiB.
        assert!(t.reach_bytes(PageSize::Huge2M) < t.reach_bytes(PageSize::Huge1G));
    }

    #[test]
    fn no_misses_within_reach() {
        let t = TlbModel::golden_cove();
        assert_eq!(t.misses_per_byte(PageSize::Huge2M, 1.0 * GIB), 0.0);
    }

    #[test]
    fn misses_grow_with_footprint_beyond_reach() {
        let t = TlbModel::golden_cove();
        let a = t.misses_per_byte(PageSize::Huge2M, 8.0 * GIB);
        let b = t.misses_per_byte(PageSize::Huge2M, 16.0 * GIB);
        assert!(a > 0.0);
        assert!(b > a);
        // Asymptote: one miss per page.
        assert!(b < 1.0 / PageSize::Huge2M.bytes());
    }

    #[test]
    fn virtualized_walks_cost_more() {
        let t = TlbModel::golden_cove();
        let native = t.translation_ns_per_byte(PageSize::Huge2M, 16.0 * GIB, false, 0.5);
        let virt = t.translation_ns_per_byte(PageSize::Huge2M, 16.0 * GIB, true, 0.5);
        assert!(virt > 2.0 * native);
    }

    #[test]
    fn larger_pages_translate_cheaper() {
        let t = TlbModel::golden_cove();
        let p4k = t.translation_ns_per_byte(PageSize::Base4K, 16.0 * GIB, true, 0.5);
        let p2m = t.translation_ns_per_byte(PageSize::Huge2M, 16.0 * GIB, true, 0.5);
        // 1 GiB pages: 16 GiB footprint exactly equals reach -> zero misses.
        let p1g = t.translation_ns_per_byte(PageSize::Huge1G, 16.0 * GIB, true, 0.5);
        assert!(p4k > p2m);
        assert!(p2m > p1g);
        assert_eq!(p1g, 0.0);
    }
}
