//! CPU socket/package model.

use crate::{CacheHierarchy, DType, Isa, TlbModel};

/// CPU vendor (the paper restricts itself to Intel because only Intel
/// offers both a process TEE and a VM TEE on the same part, plus AMX).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum CpuVendor {
    /// Intel (SGX + TDX + AMX).
    Intel,
    /// AMD (SEV-SNP; modelled for completeness, overheads close to TDX
    /// per Misono et al. \[55\]).
    Amd,
}

/// An analytical model of one CPU package (socket) and its memory system.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CpuModel {
    /// Marketing name, e.g. `"Intel Xeon Gold 6530"`.
    pub name: String,
    /// Vendor.
    pub vendor: CpuVendor,
    /// Physical cores per socket.
    pub cores_per_socket: u32,
    /// Sustained all-core frequency in Hz under AMX-heavy load (AMX lowers
    /// turbo bins; we use the all-core AMX frequency).
    pub all_core_hz: f64,
    /// Best available ISA on this part.
    pub best_isa: Isa,
    /// Cache hierarchy.
    pub caches: CacheHierarchy,
    /// TLB model.
    pub tlb: TlbModel,
    /// Sustained DRAM bandwidth per socket in bytes/second (8 channels of
    /// DDR5-4800 ≈ 307 GB/s theoretical, ~78% achievable when streaming).
    pub dram_bw_bytes_per_s: f64,
    /// DRAM random-access latency in nanoseconds.
    pub dram_latency_ns: f64,
    /// Installed memory per socket in bytes.
    pub dram_capacity_bytes: f64,
    /// List price of the CPU in USD (from Intel ARK, as cited in the paper).
    pub list_price_usd: f64,
}

impl CpuModel {
    /// Peak MAC throughput in FLOP/s for `cores` cores using `isa` on
    /// `dtype` data.
    #[must_use]
    pub fn peak_flops(&self, isa: Isa, dtype: DType, cores: u32) -> f64 {
        isa.flops_per_cycle(dtype) * self.all_core_hz * f64::from(cores)
    }

    /// Peak MAC throughput with the best ISA this part supports.
    #[must_use]
    pub fn peak_flops_best(&self, dtype: DType, cores: u32) -> f64 {
        self.peak_flops(self.best_isa, dtype, cores)
    }

    /// Sustained DRAM bandwidth available to `cores` active cores, bytes/s.
    ///
    /// A single core cannot saturate the socket's memory controllers; the
    /// per-core achievable bandwidth is limited by outstanding-miss
    /// capacity (~20 GB/s/core on Golden Cove). Bandwidth therefore ramps
    /// roughly linearly with cores until the socket limit.
    #[must_use]
    pub fn dram_bw_for_cores(&self, cores: u32) -> f64 {
        const PER_CORE_BW: f64 = 21.0e9;
        (f64::from(cores) * PER_CORE_BW).min(self.dram_bw_bytes_per_s)
    }

    /// Number of cores at which the socket's DRAM bandwidth saturates —
    /// beyond this, memory-bound phases gain nothing from more cores
    /// (Figure 12 finds the knee at ~32 cores on EMR2).
    #[must_use]
    pub fn bw_saturation_cores(&self) -> u32 {
        let c = (self.dram_bw_bytes_per_s / 21.0e9).ceil();
        // A socket always has at least one core's worth of bandwidth.
        c.max(1.0) as u32
    }

    /// Machine balance in FLOP/byte at full-socket AMX throughput: the
    /// arithmetic intensity above which a kernel becomes compute-bound.
    #[must_use]
    pub fn balance_flops_per_byte(&self, dtype: DType) -> f64 {
        self.peak_flops_best(dtype, self.cores_per_socket) / self.dram_bw_bytes_per_s
    }
}

#[cfg(test)]
mod tests {
    use crate::presets;
    use crate::{DType, Isa};

    #[test]
    fn emr1_peak_bf16_amx_in_expected_range() {
        let c = presets::emr1();
        let tflops = c.peak_flops(Isa::Amx, DType::Bf16, c.cores_per_socket) / 1e12;
        // 32 cores x 2048 flop/cycle x ~1.9 GHz ≈ 125 TFLOP/s.
        assert!(tflops > 80.0 && tflops < 200.0, "got {tflops} TFLOP/s");
    }

    #[test]
    fn bandwidth_saturates_near_32_cores() {
        let c = presets::emr2();
        let knee = c.bw_saturation_cores();
        assert!(
            (8..=40).contains(&knee),
            "Figure 12 expects a knee near 32 cores, got {knee}"
        );
        // Beyond the knee, bandwidth no longer grows.
        assert_eq!(
            c.dram_bw_for_cores(knee + 8),
            c.dram_bw_for_cores(knee + 16)
        );
    }

    #[test]
    fn bandwidth_monotone_in_cores() {
        let c = presets::emr2();
        let mut prev = 0.0;
        for cores in [1, 2, 4, 8, 16, 32, 60] {
            let bw = c.dram_bw_for_cores(cores);
            assert!(bw >= prev);
            prev = bw;
        }
    }

    #[test]
    fn balance_shows_decode_is_memory_bound() {
        // Decode GEMV intensity is ~1 flop/byte; machine balance with AMX
        // is hundreds, so decode sits deep in the memory-bound region.
        let c = presets::emr2();
        assert!(c.balance_flops_per_byte(DType::Bf16) > 100.0);
    }
}
