//! Hardware models for confidential-LLM performance simulation.
//!
//! This crate provides parameterized, data-driven models of the hardware the
//! paper *"Confidential LLM Inference: Performance and Cost Across CPU and
//! GPU TEEs"* (IISWC 2025) was evaluated on:
//!
//! * [`CpuModel`] — multi-socket Xeon-class CPUs with AMX/AVX-512 matrix
//!   units, cache hierarchies, DDR5 memory channels and UPI socket links.
//!   Presets [`presets::emr1`] and [`presets::emr2`] replicate the paper's
//!   two Emerald Rapids testbeds (Xeon Gold 6530 and Platinum 8580).
//! * [`GpuModel`] — Hopper-class accelerators; [`presets::h100_nvl`]
//!   replicates the paper's H100 NVL 94 GB card.
//! * [`TlbModel`] / [`PageSize`] — translation look-aside buffer reach and
//!   page-walk costs for 4 KiB, 2 MiB and 1 GiB pages, including the doubled
//!   (two-dimensional) walks under virtualization.
//! * [`NumaTopology`] and [`Interconnect`] — socket topology, sub-NUMA
//!   clustering, and encrypted links (UPI, PCIe, NVLink).
//!
//! The models are intentionally *analytical*: they expose peak and sustained
//! rates (`flops`, `bytes/s`, latencies) that the `cllm-perf` roofline
//! simulator consumes. Nothing in this crate executes on real hardware; the
//! numbers are taken from public spec sheets and the paper itself, so the
//! simulator reproduces the paper's performance *ratios* on any machine.
//!
//! # Example
//!
//! ```
//! use cllm_hw::{presets, DType, Isa};
//!
//! let emr2 = presets::emr2();
//! // Peak bf16 AMX throughput of one socket, in FLOP/s.
//! let peak = emr2.peak_flops(Isa::Amx, DType::Bf16, emr2.cores_per_socket);
//! assert!(peak > 1e14); // > 100 TFLOP/s per socket with AMX
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cpu;
mod dtype;
mod gpu;
mod interconnect;
pub mod presets;
mod tlb;
mod topology;

pub use cache::{CacheHierarchy, CacheLevel};
pub use cpu::{CpuModel, CpuVendor};
pub use dtype::DType;
pub use gpu::{GpuArch, GpuModel};
pub use interconnect::{Interconnect, LinkKind, LinkSecurity};
pub use tlb::{HugePagePolicy, PageSize, TlbModel};
pub use topology::{NumaBinding, NumaTopology, SubNumaClustering};

/// Instruction-set extensions relevant to LLM inference on CPUs.
///
/// The paper's Insight 3/8 show that AMX (Advanced Matrix Extensions) both
/// doubles-to-sextuples raw inference performance and *reduces* TEE
/// overheads; the ISA chosen therefore feeds directly into the roofline
/// compute term.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum Isa {
    /// Scalar fallback (no vector units). Used to model pathological paths
    /// such as IPEX int8 without AMX (Section IV-C: 96% throughput / 1700%
    /// latency overhead).
    Scalar,
    /// 256-bit AVX2 with FMA.
    Avx2,
    /// 512-bit AVX-512 with BF16 and VNNI extensions.
    Avx512,
    /// Advanced Matrix Extensions: 16x16 tile matrix-multiply units with
    /// native bfloat16 and int8 support.
    Amx,
}

impl Isa {
    /// Multiply-accumulate throughput in *operations per core per cycle*
    /// for the given data type (1 FLOP = one multiply or one add).
    ///
    /// Derived from Intel's optimization manuals: AMX performs a
    /// 16x16x32 bf16 tile-matmul on one TMUL unit sustaining roughly
    /// 2048 flop/cycle; int8 doubles that. AVX-512 with two 512-bit FMA
    /// ports sustains 64 f32 flop/cycle, 128 bf16 flop/cycle
    /// (`VDPBF16PS`), and 256 int8 ops/cycle (VNNI).
    #[must_use]
    pub fn flops_per_cycle(self, dtype: DType) -> f64 {
        match (self, dtype) {
            (Isa::Amx, DType::Int8) => 4096.0,
            (Isa::Amx, DType::Bf16) => 2048.0,
            // AMX has no f32 tiles; falls back to AVX-512 rates.
            (Isa::Amx, DType::F32) => 64.0,
            (Isa::Avx512, DType::Int8) => 256.0,
            (Isa::Avx512, DType::Bf16) => 128.0,
            (Isa::Avx512, DType::F32) => 64.0,
            (Isa::Avx2, DType::Int8) => 64.0,
            (Isa::Avx2, DType::Bf16) => 16.0, // emulated via f32 convert
            (Isa::Avx2, DType::F32) => 32.0,
            (Isa::Scalar, _) => 2.0,
        }
    }

    /// Whether this ISA has native matrix-tile support for the data type.
    ///
    /// IPEX int8 kernels are only implemented for AMX; when AMX is disabled
    /// the int8 path degrades to a near-scalar reference implementation
    /// (paper Section IV-C).
    #[must_use]
    pub fn has_native_tiles(self, dtype: DType) -> bool {
        matches!((self, dtype), (Isa::Amx, DType::Bf16 | DType::Int8))
    }
}

/// Convenience constant: bytes in one GiB.
pub const GIB: f64 = 1024.0 * 1024.0 * 1024.0;
/// Convenience constant: bytes in one MiB.
pub const MIB: f64 = 1024.0 * 1024.0;
/// Convenience constant: bytes in one KiB.
pub const KIB: f64 = 1024.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn amx_beats_avx512_on_bf16() {
        assert!(Isa::Amx.flops_per_cycle(DType::Bf16) > Isa::Avx512.flops_per_cycle(DType::Bf16));
    }

    #[test]
    fn int8_doubles_bf16_on_amx() {
        let bf16 = Isa::Amx.flops_per_cycle(DType::Bf16);
        let int8 = Isa::Amx.flops_per_cycle(DType::Int8);
        assert!((int8 / bf16 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn scalar_is_slowest_everywhere() {
        for dt in [DType::F32, DType::Bf16, DType::Int8] {
            for isa in [Isa::Avx2, Isa::Avx512, Isa::Amx] {
                assert!(isa.flops_per_cycle(dt) > Isa::Scalar.flops_per_cycle(dt));
            }
        }
    }

    #[test]
    fn native_tiles_only_amx() {
        assert!(Isa::Amx.has_native_tiles(DType::Bf16));
        assert!(Isa::Amx.has_native_tiles(DType::Int8));
        assert!(!Isa::Amx.has_native_tiles(DType::F32));
        assert!(!Isa::Avx512.has_native_tiles(DType::Bf16));
    }
}
