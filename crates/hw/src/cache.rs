//! Cache-hierarchy description used to decide when a working set spills to
//! DRAM and how effective bandwidth degrades as footprints grow.

use crate::MIB;

/// One level of the on-chip cache hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheLevel {
    /// Total capacity in bytes (per core for L1/L2, per socket for LLC).
    pub capacity_bytes: f64,
    /// Sustained bandwidth in bytes/second available from this level to the
    /// cores that share it.
    pub bandwidth_bytes_per_s: f64,
    /// Load-to-use latency in nanoseconds.
    pub latency_ns: f64,
}

/// A three-level cache hierarchy (L1D, L2 per core; LLC per socket).
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct CacheHierarchy {
    /// Per-core L1 data cache.
    pub l1d: CacheLevel,
    /// Per-core unified L2.
    pub l2: CacheLevel,
    /// Shared last-level cache (per socket).
    pub llc: CacheLevel,
}

impl CacheHierarchy {
    /// Emerald-Rapids-class hierarchy: 48 KiB L1D and 2 MiB L2 per core,
    /// large shared LLC per socket (`llc_mib` varies by SKU: 160 MiB on the
    /// Xeon Gold 6530, 300 MiB on the Platinum 8580).
    #[must_use]
    pub fn emerald_rapids(llc_mib: f64) -> Self {
        CacheHierarchy {
            l1d: CacheLevel {
                capacity_bytes: 48.0 * 1024.0,
                bandwidth_bytes_per_s: 1.0e12,
                latency_ns: 1.0,
            },
            l2: CacheLevel {
                capacity_bytes: 2.0 * MIB,
                bandwidth_bytes_per_s: 4.0e11,
                latency_ns: 4.5,
            },
            llc: CacheLevel {
                capacity_bytes: llc_mib * MIB,
                bandwidth_bytes_per_s: 8.0e11,
                latency_ns: 21.0,
            },
        }
    }

    /// Fraction of a streaming working set of `footprint_bytes` that is
    /// served from the LLC rather than DRAM.
    ///
    /// For LLM decode, weights are streamed once per token, so reuse is
    /// only possible for the slice of the model that fits in the LLC.
    #[must_use]
    pub fn llc_hit_fraction(&self, footprint_bytes: f64) -> f64 {
        if footprint_bytes <= 0.0 {
            return 1.0;
        }
        (self.llc.capacity_bytes / footprint_bytes).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GIB;

    #[test]
    fn emr_hierarchy_is_ordered() {
        let h = CacheHierarchy::emerald_rapids(160.0);
        assert!(h.l1d.capacity_bytes < h.l2.capacity_bytes);
        assert!(h.l2.capacity_bytes < h.llc.capacity_bytes);
        assert!(h.l1d.latency_ns < h.l2.latency_ns);
        assert!(h.l2.latency_ns < h.llc.latency_ns);
    }

    #[test]
    fn llc_hit_fraction_saturates() {
        let h = CacheHierarchy::emerald_rapids(300.0);
        assert_eq!(h.llc_hit_fraction(1.0 * MIB), 1.0);
        let big = h.llc_hit_fraction(13.0 * GIB);
        assert!(big > 0.0 && big < 0.05);
    }

    #[test]
    fn llc_hit_fraction_monotone_in_footprint() {
        let h = CacheHierarchy::emerald_rapids(160.0);
        let mut prev = 1.0;
        for gib in [0.1, 0.5, 1.0, 4.0, 16.0, 64.0] {
            let f = h.llc_hit_fraction(gib * GIB);
            assert!(f <= prev + 1e-12);
            prev = f;
        }
    }
}
