//! NUMA topology and memory-placement policies.
//!
//! Insight 6: TDX and SGX drivers lack working NUMA support. TDX's KVM
//! driver ignores the node bindings supplied via QEMU; SGX presents memory
//! as a single unified node, potentially allocating everything on one
//! socket. Sub-NUMA clustering (SNC) makes this dramatically worse (5% ->
//! 42% overhead in the paper's test runs) because TEE drivers do not place
//! memory within sub-domains either.

use crate::Interconnect;

/// How the workload's memory is bound to NUMA nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum NumaBinding {
    /// Memory explicitly bound to the node of the threads using it
    /// (`VM B` in Figure 5). Remote-access fraction ~ 0 for data parallel
    /// work; only algorithmically-required traffic crosses sockets.
    Bound,
    /// No binding: first-touch/interleaved allocation spreads pages across
    /// nodes (`VM NB` in Figure 5).
    Unbound,
    /// Bindings requested but silently ignored by the TEE driver (TDX
    /// behaviour per Insight 6): placement is as-if unbound, but slightly
    /// better than fully interleaved because the guest kernel still
    /// first-touches some pages locally.
    IgnoredByTee,
}

impl NumaBinding {
    /// Expected fraction of memory accesses that land on a remote socket,
    /// for a workload whose threads span `nodes` NUMA nodes.
    ///
    /// With one node there is no remote traffic regardless of policy.
    /// Interleaved allocation over `n` nodes makes `(n-1)/n` of accesses
    /// remote. TEE-ignored bindings leak far less: the guest kernel still
    /// allocates NUMA-aware within the guest and vCPUs stay pinned — only
    /// the host-level guest-physical placement breaks, so a modest
    /// fraction of pages ends up remote (which is why Figure 6's TDX
    /// dual-socket overhead is 12-24%, not the ~180% of a fully unbound
    /// VM in Figure 5).
    #[must_use]
    pub fn remote_access_fraction(self, nodes: u32) -> f64 {
        if nodes <= 1 {
            return 0.0;
        }
        let interleaved = (f64::from(nodes) - 1.0) / f64::from(nodes);
        match self {
            NumaBinding::Bound => 0.0,
            NumaBinding::Unbound => interleaved,
            NumaBinding::IgnoredByTee => interleaved * 0.07,
        }
    }
}

/// Sub-NUMA clustering configuration (Intel SNC).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum SubNumaClustering {
    /// SNC disabled: one NUMA domain per socket (the paper's final
    /// configuration).
    Off,
    /// SNC-2: each socket splits into two sub-domains.
    Snc2,
    /// SNC-4 (HBM-class parts) — kept for completeness.
    Snc4,
}

impl SubNumaClustering {
    /// Number of NUMA domains each socket is divided into.
    #[must_use]
    pub fn domains_per_socket(self) -> u32 {
        match self {
            SubNumaClustering::Off => 1,
            SubNumaClustering::Snc2 => 2,
            SubNumaClustering::Snc4 => 4,
        }
    }
}

/// Topology of a multi-socket machine: sockets, sub-NUMA domains and the
/// socket interconnect.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct NumaTopology {
    /// Number of CPU sockets used by the workload (the paper uses 1 or 2).
    pub sockets: u32,
    /// Sub-NUMA clustering setting.
    pub snc: SubNumaClustering,
    /// The inter-socket link.
    pub link: Interconnect,
}

impl NumaTopology {
    /// Single-socket topology with SNC off.
    #[must_use]
    pub fn single_socket() -> Self {
        NumaTopology {
            sockets: 1,
            snc: SubNumaClustering::Off,
            link: Interconnect::upi_emr(),
        }
    }

    /// Dual-socket topology with SNC off (the paper's multi-socket setup).
    #[must_use]
    pub fn dual_socket() -> Self {
        NumaTopology {
            sockets: 2,
            snc: SubNumaClustering::Off,
            link: Interconnect::upi_emr(),
        }
    }

    /// Total number of NUMA domains visible to the OS.
    #[must_use]
    pub fn total_domains(&self) -> u32 {
        self.sockets * self.snc.domains_per_socket()
    }

    /// Fraction of memory traffic that crosses a domain boundary under a
    /// given binding policy, where TEE drivers additionally cannot place
    /// memory inside sub-NUMA domains.
    ///
    /// With SNC enabled and a TEE that ignores bindings, the effective
    /// domain count against which placement fails is the *total* domain
    /// count, which is what blew up overheads from ~5% to ~42% in the
    /// paper's SNC test runs.
    #[must_use]
    pub fn remote_fraction(&self, binding: NumaBinding, tee_breaks_snc: bool) -> f64 {
        let domains = if tee_breaks_snc {
            self.total_domains()
        } else {
            self.sockets
        };
        binding.remote_access_fraction(domains)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_socket_never_remote() {
        for b in [
            NumaBinding::Bound,
            NumaBinding::Unbound,
            NumaBinding::IgnoredByTee,
        ] {
            assert_eq!(b.remote_access_fraction(1), 0.0);
        }
    }

    #[test]
    fn binding_ordering_matches_fig5() {
        // Figure 5: VM B (bound) best, TDX (ignored) middle, VM NB worst.
        let bound = NumaBinding::Bound.remote_access_fraction(2);
        let ignored = NumaBinding::IgnoredByTee.remote_access_fraction(2);
        let unbound = NumaBinding::Unbound.remote_access_fraction(2);
        assert!(bound < ignored);
        assert!(ignored < unbound);
    }

    #[test]
    fn snc_multiplies_domains() {
        let mut t = NumaTopology::dual_socket();
        assert_eq!(t.total_domains(), 2);
        t.snc = SubNumaClustering::Snc2;
        assert_eq!(t.total_domains(), 4);
    }

    #[test]
    fn snc_with_broken_tee_placement_is_worse() {
        let mut t = NumaTopology::dual_socket();
        let base = t.remote_fraction(NumaBinding::IgnoredByTee, true);
        t.snc = SubNumaClustering::Snc2;
        let snc = t.remote_fraction(NumaBinding::IgnoredByTee, true);
        assert!(snc > base, "SNC must increase remote traffic for TEEs");
    }
}
