//! GPU accelerator model (Hopper-class, for the cGPU experiments).

use crate::{DType, Interconnect};

/// GPU micro-architecture generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum GpuArch {
    /// NVIDIA Hopper (H100): first confidential-computing GPU. HBM is NOT
    /// encrypted; NVLink is unprotected; PCIe uses an encrypted bounce
    /// buffer (Section V-A).
    Hopper,
    /// NVIDIA Blackwell (B100): adds HBM and NVLink encryption; modelled
    /// for the paper's forward-looking discussion (Section V-D3).
    Blackwell,
}

impl GpuArch {
    /// Whether device memory (HBM) is encrypted in confidential mode.
    #[must_use]
    pub fn hbm_encrypted(self) -> bool {
        matches!(self, GpuArch::Blackwell)
    }

    /// Whether NVLink traffic is protected in confidential mode.
    #[must_use]
    pub fn nvlink_protected(self) -> bool {
        matches!(self, GpuArch::Blackwell)
    }
}

/// Analytical model of one GPU.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct GpuModel {
    /// Marketing name, e.g. `"NVIDIA H100 NVL 94GB"`.
    pub name: String,
    /// Architecture generation.
    pub arch: GpuArch,
    /// Dense tensor-core throughput for bf16 in FLOP/s.
    pub bf16_flops: f64,
    /// Dense tensor-core throughput for int8 in OP/s.
    pub int8_flops: f64,
    /// HBM capacity in bytes.
    pub hbm_capacity_bytes: f64,
    /// Sustained HBM bandwidth in bytes/second.
    pub hbm_bw_bytes_per_s: f64,
    /// Kernel-launch latency in microseconds without confidential compute.
    pub kernel_launch_us: f64,
    /// Additional per-launch latency in microseconds under confidential
    /// compute (encrypted/authenticated command buffers, Section V-A).
    pub cc_launch_adder_us: f64,
    /// Host link (PCIe), including the CC bounce-buffer behaviour.
    pub host_link: Interconnect,
    /// Purchase price in USD (the paper cites ~$30,000 for an H100 NVL).
    pub list_price_usd: f64,
}

impl GpuModel {
    /// Peak throughput for the given data type, FLOP/s (OP/s for int8).
    #[must_use]
    pub fn peak_flops(&self, dtype: DType) -> f64 {
        match dtype {
            DType::F32 => self.bf16_flops / 2.0,
            DType::Bf16 => self.bf16_flops,
            DType::Int8 => self.int8_flops,
        }
    }

    /// Machine balance in FLOP/byte against HBM.
    #[must_use]
    pub fn balance_flops_per_byte(&self, dtype: DType) -> f64 {
        self.peak_flops(dtype) / self.hbm_bw_bytes_per_s
    }

    /// Effective HBM bandwidth under confidential compute: derated only if
    /// the architecture encrypts HBM (B100), which the paper expects to add
    /// a non-negligible overhead analogous to CPU memory encryption.
    #[must_use]
    pub fn hbm_bw_confidential(&self) -> f64 {
        if self.arch.hbm_encrypted() {
            self.hbm_bw_bytes_per_s * 0.93
        } else {
            self.hbm_bw_bytes_per_s
        }
    }

    /// Total kernel-launch latency in seconds for one launch.
    #[must_use]
    pub fn launch_latency_s(&self, confidential: bool) -> f64 {
        let us = if confidential {
            self.kernel_launch_us + self.cc_launch_adder_us
        } else {
            self.kernel_launch_us
        };
        us * 1e-6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::presets;

    #[test]
    fn h100_hbm_not_encrypted() {
        let g = presets::h100_nvl();
        assert!(!g.arch.hbm_encrypted());
        assert_eq!(g.hbm_bw_confidential(), g.hbm_bw_bytes_per_s);
    }

    #[test]
    fn b100_encrypts_hbm_and_nvlink() {
        assert!(GpuArch::Blackwell.hbm_encrypted());
        assert!(GpuArch::Blackwell.nvlink_protected());
    }

    #[test]
    fn cc_adds_launch_latency() {
        let g = presets::h100_nvl();
        assert!(g.launch_latency_s(true) > g.launch_latency_s(false));
    }

    #[test]
    fn gpu_vastly_outclasses_cpu_raw() {
        let g = presets::h100_nvl();
        let c = presets::emr2();
        let gpu = g.peak_flops(crate::DType::Bf16);
        let cpu = c.peak_flops_best(crate::DType::Bf16, c.cores_per_socket);
        assert!(gpu / cpu > 3.0, "H100 should be >3x one EMR socket peak");
    }

    #[test]
    fn h100_balance_reasonable() {
        // ~990 TFLOP/s over ~3.35 TB/s sustained ≈ 300 flop/byte.
        let g = presets::h100_nvl();
        let b = g.balance_flops_per_byte(crate::DType::Bf16);
        assert!(b > 150.0 && b < 500.0);
    }
}
