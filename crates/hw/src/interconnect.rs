//! Links between sockets and devices: UPI, PCIe, NVLink.
//!
//! Section IV-A1 attributes a large share of multi-socket TEE overhead to
//! the dedicated cryptographic unit on the socket interconnect: any data
//! moving between sockets must be encrypted and integrity-protected on the
//! critical path. Section V notes that cGPU PCIe traffic goes through an
//! encrypted bounce buffer while NVLink is unprotected on H100s (forcing
//! secure multi-GPU traffic through the host).

/// The physical kind of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum LinkKind {
    /// Intel Ultra Path Interconnect between CPU sockets.
    Upi,
    /// PCI Express between host and device.
    Pcie,
    /// NVIDIA NVLink between GPUs.
    NvLink,
    /// Datacenter network (for scale-out comparisons, Section V-D4).
    Network,
}

/// Whether and how a link's traffic is protected in a confidential setup.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub enum LinkSecurity {
    /// Link has no line-rate protection; confidential traffic must not use
    /// it (e.g. NVLink on H100 CC) or must be tunnelled via the host.
    Unprotected,
    /// Hardware line-rate encryption + integrity (e.g. UPI crypto unit).
    InlineCrypto {
        /// Multiplicative bandwidth derate from the crypto unit (0..1].
        bandwidth_derate: f64,
        /// Additional one-way latency in nanoseconds.
        latency_adder_ns: f64,
    },
    /// Software bounce-buffer encryption (H100 CC PCIe path): data is
    /// staged, encrypted/authenticated by the driver, and copied again.
    BounceBuffer {
        /// Effective bandwidth derate of the staged, encrypt-then-copy path.
        bandwidth_derate: f64,
        /// Fixed per-transfer cost in microseconds (buffer setup + auth).
        per_transfer_us: f64,
    },
}

/// A point-to-point link with optional confidential-computing protection.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Interconnect {
    /// What this link physically is.
    pub kind: LinkKind,
    /// Raw unidirectional bandwidth, bytes/second.
    pub bandwidth_bytes_per_s: f64,
    /// One-way latency, nanoseconds.
    pub latency_ns: f64,
    /// Protection applied when running confidentially.
    pub security: LinkSecurity,
}

impl Interconnect {
    /// UPI between Emerald Rapids sockets: 3-4 links at 20 GT/s, roughly
    /// 100 GB/s sustained aggregate each direction, with an inline crypto
    /// unit that the paper identifies as a critical-path cost in
    /// multi-socket TEEs.
    #[must_use]
    pub fn upi_emr() -> Self {
        Interconnect {
            kind: LinkKind::Upi,
            bandwidth_bytes_per_s: 100.0e9,
            latency_ns: 120.0,
            security: LinkSecurity::InlineCrypto {
                bandwidth_derate: 0.92,
                latency_adder_ns: 45.0,
            },
        }
    }

    /// PCIe Gen5 x16 to an H100: 64 GB/s raw; under confidential compute
    /// all transfers are staged through an encrypted bounce buffer
    /// (Section V-A), halving effective bandwidth and adding per-transfer
    /// setup cost.
    #[must_use]
    pub fn pcie_gen5_cc() -> Self {
        Interconnect {
            kind: LinkKind::Pcie,
            bandwidth_bytes_per_s: 64.0e9,
            latency_ns: 500.0,
            security: LinkSecurity::BounceBuffer {
                bandwidth_derate: 0.45,
                per_transfer_us: 6.0,
            },
        }
    }

    /// NVLink 4 between H100s (900 GB/s aggregate), *unprotected* under CC:
    /// confidential multi-GPU traffic must detour through the host, capping
    /// throughput near 3 GB/s (Section V-D4).
    #[must_use]
    pub fn nvlink4_h100() -> Self {
        Interconnect {
            kind: LinkKind::NvLink,
            bandwidth_bytes_per_s: 900.0e9,
            latency_ns: 300.0,
            security: LinkSecurity::Unprotected,
        }
    }

    /// Effective bandwidth in bytes/second when `confidential` protections
    /// are active. Unprotected links keep raw bandwidth when not
    /// confidential; when confidential they are modelled at the host-detour
    /// rate of 3 GB/s reported by the paper for cGPU instances without
    /// RDMA/GPUDirect.
    #[must_use]
    pub fn effective_bandwidth(&self, confidential: bool) -> f64 {
        if !confidential {
            return self.bandwidth_bytes_per_s;
        }
        match self.security {
            LinkSecurity::Unprotected => 3.0e9,
            LinkSecurity::InlineCrypto {
                bandwidth_derate, ..
            } => self.bandwidth_bytes_per_s * bandwidth_derate,
            LinkSecurity::BounceBuffer {
                bandwidth_derate, ..
            } => self.bandwidth_bytes_per_s * bandwidth_derate,
        }
    }

    /// Time in seconds to move `bytes` across the link as `transfers`
    /// discrete operations, with `confidential` protections active.
    #[must_use]
    pub fn transfer_time_s(&self, bytes: f64, transfers: f64, confidential: bool) -> f64 {
        let bw = self.effective_bandwidth(confidential);
        let mut t = bytes / bw + transfers * self.latency_ns * 1e-9;
        if confidential {
            match self.security {
                LinkSecurity::InlineCrypto {
                    latency_adder_ns, ..
                } => t += transfers * latency_adder_ns * 1e-9,
                LinkSecurity::BounceBuffer {
                    per_transfer_us, ..
                } => t += transfers * per_transfer_us * 1e-6,
                LinkSecurity::Unprotected => {}
            }
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn upi_crypto_derates_bandwidth() {
        let upi = Interconnect::upi_emr();
        let plain = upi.effective_bandwidth(false);
        let conf = upi.effective_bandwidth(true);
        assert!(conf < plain);
        assert!(conf / plain > 0.85, "UPI crypto derate should be mild");
    }

    #[test]
    fn nvlink_collapses_under_cc() {
        let nv = Interconnect::nvlink4_h100();
        assert_eq!(nv.effective_bandwidth(false), 900.0e9);
        // Paper: confidential instances cap inter-GPU traffic at ~3 GB/s.
        assert_eq!(nv.effective_bandwidth(true), 3.0e9);
    }

    #[test]
    fn bounce_buffer_hits_small_transfers_hardest() {
        let pcie = Interconnect::pcie_gen5_cc();
        let small_plain = pcie.transfer_time_s(4096.0, 1.0, false);
        let small_cc = pcie.transfer_time_s(4096.0, 1.0, true);
        let big_plain = pcie.transfer_time_s(1e9, 1.0, false);
        let big_cc = pcie.transfer_time_s(1e9, 1.0, true);
        let small_ratio = small_cc / small_plain;
        let big_ratio = big_cc / big_plain;
        assert!(
            small_ratio > big_ratio,
            "relative CC cost must shrink with transfer size (Insight 10)"
        );
    }

    #[test]
    fn transfer_time_monotone_in_bytes() {
        let upi = Interconnect::upi_emr();
        let t1 = upi.transfer_time_s(1e6, 1.0, true);
        let t2 = upi.transfer_time_s(2e6, 1.0, true);
        assert!(t2 > t1);
    }
}
