//! Hardware presets replicating the paper's testbeds.
//!
//! * `EMR1`: dual-socket Intel Xeon Gold 6530, 32 cores/socket,
//!   16x32 GiB DDR5-4800, list price $2,130 (Section III-C1).
//! * `EMR2`: dual-socket Intel Xeon Platinum 8580, 60 cores/socket,
//!   16x32 GiB DDR5-4800, list price $10,710.
//! * `SPR`: a Sapphire Rapids alternative the paper mentions as "almost 2x
//!   cheaper, performing up to 40% worse" for memory-bound work.
//! * `H100 NVL`: 94 GB HBM3, rented from Azure (NCCads_H100_v5), card
//!   price ~$30,000 (Section V-B).

use crate::{
    CacheHierarchy, CpuModel, CpuVendor, GpuArch, GpuModel, Interconnect, Isa, TlbModel, GIB,
};

/// Sustained fraction of theoretical DDR5 channel bandwidth achievable by
/// a streaming workload (copy/triad-like efficiency).
const DDR5_EFFICIENCY: f64 = 0.78;

/// Theoretical bandwidth of 8 DDR5-4800 channels, bytes/second.
const DDR5_4800_8CH: f64 = 8.0 * 4800.0e6 * 8.0;

/// EMR1: dual-socket Intel Xeon Gold 6530 (32 cores, 160 MiB LLC).
///
/// This is the machine behind Figures 3-6. `all_core_hz` is the sustained
/// all-core frequency under AMX-heavy load (between the 2.1 GHz base and
/// the 2.7 GHz all-core turbo).
#[must_use]
pub fn emr1() -> CpuModel {
    CpuModel {
        name: "Intel Xeon Gold 6530 (EMR1)".to_owned(),
        vendor: CpuVendor::Intel,
        cores_per_socket: 32,
        all_core_hz: 2.4e9,
        best_isa: Isa::Amx,
        caches: CacheHierarchy::emerald_rapids(160.0),
        tlb: TlbModel::golden_cove(),
        dram_bw_bytes_per_s: DDR5_4800_8CH * DDR5_EFFICIENCY,
        dram_latency_ns: 105.0,
        dram_capacity_bytes: 8.0 * 32.0 * GIB,
        list_price_usd: 2130.0,
    }
}

/// EMR2: dual-socket Intel Xeon Platinum 8580 (60 cores, 300 MiB LLC).
///
/// This is the machine behind Figures 7-10 and 12-14.
#[must_use]
pub fn emr2() -> CpuModel {
    CpuModel {
        name: "Intel Xeon Platinum 8580 (EMR2)".to_owned(),
        vendor: CpuVendor::Intel,
        cores_per_socket: 60,
        all_core_hz: 2.3e9,
        best_isa: Isa::Amx,
        caches: CacheHierarchy::emerald_rapids(300.0),
        tlb: TlbModel::golden_cove(),
        dram_bw_bytes_per_s: DDR5_4800_8CH * DDR5_EFFICIENCY,
        dram_latency_ns: 105.0,
        dram_capacity_bytes: 8.0 * 32.0 * GIB,
        list_price_usd: 10710.0,
    }
}

/// A Sapphire Rapids stand-in: the paper notes renting an "almost 2x
/// cheaper Sapphire Rapid performing up to 40% worse" is an even more
/// affordable option for memory-bound workloads (Section V-D2).
#[must_use]
pub fn spr() -> CpuModel {
    CpuModel {
        name: "Intel Xeon Platinum 8480+ (SPR)".to_owned(),
        vendor: CpuVendor::Intel,
        cores_per_socket: 56,
        all_core_hz: 2.0e9,
        best_isa: Isa::Amx,
        caches: CacheHierarchy::emerald_rapids(105.0),
        tlb: TlbModel::golden_cove(),
        // DDR5-4400 on SPR plus a less efficient mesh.
        dram_bw_bytes_per_s: 8.0 * 4400.0e6 * 8.0 * 0.72,
        dram_latency_ns: 118.0,
        dram_capacity_bytes: 8.0 * 32.0 * GIB,
        list_price_usd: 5600.0,
    }
}

/// AMD EPYC 9654 "Genoa": the SEV-SNP counterpart (Zen 4 with AVX-512
/// but no AMX — one reason the paper selects Intel). Used by the
/// `sev_snp` cross-check experiment; Misono et al. \[55\] report SEV-SNP
/// overheads close to TDX's.
#[must_use]
pub fn genoa() -> CpuModel {
    CpuModel {
        name: "AMD EPYC 9654 (Genoa)".to_owned(),
        vendor: CpuVendor::Amd,
        cores_per_socket: 96,
        all_core_hz: 2.6e9,
        best_isa: Isa::Avx512,
        caches: CacheHierarchy::emerald_rapids(384.0),
        tlb: TlbModel::golden_cove(),
        // 12 channels of DDR5-4800.
        dram_bw_bytes_per_s: 12.0 * 4800.0e6 * 8.0 * 0.74,
        dram_latency_ns: 112.0,
        dram_capacity_bytes: 12.0 * 32.0 * GIB,
        list_price_usd: 11805.0,
    }
}

/// H100 NVL 94 GB as rented from Azure (NCCads_H100_v5 /
/// NCads_H100_v5). Dense bf16 tensor throughput ~990 TFLOP/s (no
/// sparsity), HBM3 ~3.9 TB/s raw / ~3.35 TB/s sustained.
#[must_use]
pub fn h100_nvl() -> GpuModel {
    GpuModel {
        name: "NVIDIA H100 NVL 94GB".to_owned(),
        arch: GpuArch::Hopper,
        bf16_flops: 990.0e12,
        int8_flops: 1980.0e12,
        hbm_capacity_bytes: 94.0 * GIB,
        hbm_bw_bytes_per_s: 3.35e12,
        kernel_launch_us: 4.0,
        cc_launch_adder_us: 3.6,
        host_link: Interconnect::pcie_gen5_cc(),
        list_price_usd: 30000.0,
    }
}

/// NVIDIA B100 (Blackwell) projection: the paper expects HBM and NVLink
/// encryption to add a "non-negligible overhead" over H100 results
/// (Section V-D3). Specs from NVIDIA's Blackwell announcement.
#[must_use]
pub fn b100() -> GpuModel {
    GpuModel {
        name: "NVIDIA B100 (projection)".to_owned(),
        arch: GpuArch::Blackwell,
        bf16_flops: 1750.0e12,
        int8_flops: 3500.0e12,
        hbm_capacity_bytes: 192.0 * GIB,
        hbm_bw_bytes_per_s: 7.0e12,
        kernel_launch_us: 4.0,
        cc_launch_adder_us: 3.6,
        host_link: Interconnect::pcie_gen5_cc(),
        list_price_usd: 40000.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn emr_bandwidth_near_240_gbs() {
        let bw = emr1().dram_bw_bytes_per_s / 1e9;
        assert!((200.0..280.0).contains(&bw), "got {bw} GB/s");
    }

    #[test]
    fn emr2_has_more_cores_and_costs_more() {
        let (a, b) = (emr1(), emr2());
        assert!(b.cores_per_socket > a.cores_per_socket);
        assert!(b.list_price_usd > a.list_price_usd);
    }

    #[test]
    fn spr_is_cheaper_and_slower_than_emr2() {
        let (s, e) = (spr(), emr2());
        assert!(s.list_price_usd < e.list_price_usd / 1.5);
        assert!(s.dram_bw_bytes_per_s < e.dram_bw_bytes_per_s);
    }

    #[test]
    fn genoa_has_more_cores_no_amx() {
        let g = genoa();
        assert!(g.cores_per_socket > emr2().cores_per_socket);
        assert_eq!(g.best_isa, Isa::Avx512);
        assert!(g.dram_bw_bytes_per_s > emr2().dram_bw_bytes_per_s);
    }

    #[test]
    fn b100_encrypts_hbm() {
        let b = b100();
        assert!(b.arch.hbm_encrypted());
        assert!(b.hbm_bw_confidential() < b.hbm_bw_bytes_per_s);
        assert!(b.bf16_flops > h100_nvl().bf16_flops);
    }

    #[test]
    fn h100_capacity_fits_7b_not_70b() {
        use crate::GIB;
        let g = h100_nvl();
        let w7b_bf16 = 7.0e9 * 2.0;
        let w70b_bf16 = 70.0e9 * 2.0;
        assert!(w7b_bf16 < g.hbm_capacity_bytes);
        assert!(w70b_bf16 > g.hbm_capacity_bytes);
        assert!((g.hbm_capacity_bytes / GIB - 94.0).abs() < 1e-9);
    }
}
