//! Numeric data types used for model weights, activations and KV caches.

/// Inference data type.
///
/// The paper evaluates bfloat16 and int8 (via model quantization) as the two
/// practical deployment types, with float32 appearing only in the framework
/// micro-benchmark (Figure 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum DType {
    /// IEEE-754 single precision, 4 bytes per element.
    F32,
    /// Brain floating point, 2 bytes per element; natively supported by AMX
    /// tiles and AVX-512 BF16.
    Bf16,
    /// 8-bit integer with per-tensor scale (post-training quantization).
    Int8,
}

impl DType {
    /// Storage size of one element in bytes.
    #[must_use]
    pub fn bytes(self) -> f64 {
        match self {
            DType::F32 => 4.0,
            DType::Bf16 => 2.0,
            DType::Int8 => 1.0,
        }
    }

    /// Short lowercase label used in tables and figure legends
    /// (matches the paper: `f32`, `bf16`, `int8`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            DType::F32 => "f32",
            DType::Bf16 => "bf16",
            DType::Int8 => "int8",
        }
    }

    /// Storage size of one *activation/KV-cache* element when weights are
    /// stored at this dtype. int8 quantization applies to weights only;
    /// the inference state (activations, KV cache) stays at bfloat16 in
    /// IPEX — which is why int8 roughly halves latency (weights dominate
    /// batch-1 decode) but gains less throughput at large batch, where
    /// bf16 KV reads dominate (Figure 4).
    #[must_use]
    pub fn act_bytes(self) -> f64 {
        match self {
            DType::F32 => 4.0,
            DType::Bf16 | DType::Int8 => 2.0,
        }
    }

    /// Relative per-operator compute cost multiplier of running this dtype
    /// compared to raw MAC throughput, accounting for quantize/dequantize
    /// traffic on the int8 path and up-conversion on f32.
    ///
    /// int8 inference still performs activation quantization, scale fusion
    /// and fp32 accumulation; the paper observes it achieves *similar
    /// throughput* to bf16 on AMX despite twice the nominal tile rate
    /// (Figure 4), which this multiplier reflects.
    #[must_use]
    pub fn compute_tax(self) -> f64 {
        match self {
            DType::F32 => 1.0,
            DType::Bf16 => 1.0,
            DType::Int8 => 1.9,
        }
    }

    /// All deployment data types, in the order figures present them.
    #[must_use]
    pub fn all() -> [DType; 3] {
        [DType::F32, DType::Bf16, DType::Int8]
    }
}

impl std::fmt::Display for DType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_powers_of_two_halving() {
        assert_eq!(DType::F32.bytes(), 4.0);
        assert_eq!(DType::Bf16.bytes(), 2.0);
        assert_eq!(DType::Int8.bytes(), 1.0);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(DType::Bf16.to_string(), "bf16");
        assert_eq!(DType::Int8.to_string(), "int8");
        assert_eq!(DType::F32.to_string(), "f32");
    }

    #[test]
    fn int8_compute_tax_halves_its_nominal_advantage() {
        // With AMX int8 at 2x bf16 tile rate but ~1.9x compute tax, the
        // effective throughput advantage is ~5%, matching Figure 4 where
        // int8 "generally achieves similar throughput to bfloat16".
        let effective = 2.0 / DType::Int8.compute_tax();
        assert!(effective > 0.95 && effective < 1.25);
    }
}
