//! Benchmark-harness support: shared runner for the per-figure binaries.
//!
//! Each `figN` binary regenerates one table/figure of the paper: it runs
//! the corresponding `cllm-core` experiment, prints the aligned table the
//! paper's plot encodes, and writes machine-readable JSON next to the
//! repository's `results/` directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cllm_core::experiments::{run_by_id, ExperimentResult};
use std::path::PathBuf;

/// Run one experiment by id, print its table, and persist JSON under
/// `results/<id>.json`. Exits the process with an error message if the id
/// is unknown.
pub fn run_and_emit(id: &str) -> ExperimentResult {
    let Some(result) = run_by_id(id) else {
        eprintln!("unknown experiment id: {id}");
        std::process::exit(2);
    };
    println!("{}", result.render());
    if let Err(e) = persist(&result) {
        eprintln!("warning: could not write results JSON: {e}");
    }
    result
}

fn persist(result: &ExperimentResult) -> std::io::Result<()> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{}.json", result.id));
    let json = serde_json::to_string_pretty(&result.to_json())?;
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());
    Ok(())
}

fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("results")
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_dir_points_into_repo() {
        let d = super::results_dir();
        assert!(d.ends_with("results"));
    }
}
