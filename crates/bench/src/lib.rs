//! Benchmark-harness support: shared runner for the per-figure binaries.
//!
//! Each `figN` binary regenerates one table/figure of the paper: it runs
//! the corresponding `cllm-core` experiment (through the parallel runner
//! machinery — heavy grids fan out over `cllm_core::runner::par_map`),
//! prints the aligned table the paper's plot encodes, and writes
//! machine-readable JSON into the results directory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use cllm_core::experiments::ExperimentResult;
use cllm_core::runner;
use std::path::PathBuf;

/// Run one experiment by id, print its table, and persist JSON under
/// [`results_dir`]. Exits the process with an error message if the id
/// is unknown.
pub fn run_and_emit(id: &str) -> ExperimentResult {
    let Some(result) = runner::run_one(id) else {
        eprintln!("unknown experiment id: {id}");
        std::process::exit(2);
    };
    println!("{}", result.render());
    if let Err(e) = persist(&result) {
        eprintln!("warning: could not write results JSON: {e}");
    }
    result
}

/// Write one result's JSON to `<results_dir>/<id>.json`, reporting the
/// chosen path on stdout.
///
/// # Errors
///
/// Propagates filesystem errors (unwritable directory, full disk, ...).
pub fn persist(result: &ExperimentResult) -> std::io::Result<()> {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)?;
    let path = dir.join(format!("{}.json", result.id));
    let json = serde_json::to_string_pretty(result.to_json())?;
    std::fs::write(&path, json)?;
    println!("wrote {}", path.display());
    Ok(())
}

/// Directory results JSON is written to: the `CLLM_RESULTS_DIR`
/// environment variable when set and non-empty, else `results/` at the
/// repository root.
#[must_use]
pub fn results_dir() -> PathBuf {
    match std::env::var_os("CLLM_RESULTS_DIR") {
        Some(dir) if !dir.is_empty() => PathBuf::from(dir),
        // CARGO_MANIFEST_DIR = crates/bench; results live at the repo root.
        _ => PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("results"),
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn results_dir_points_into_repo() {
        // Note: no parallel test in this crate may set CLLM_RESULTS_DIR.
        let d = super::results_dir();
        assert!(d.ends_with("results"));
    }

    #[test]
    fn results_dir_honors_env_override() {
        // The override also ends in "results" so the concurrent default
        // test above stays true during this test's window.
        let alt = std::path::Path::new("/tmp/cllm-alt/results");
        std::env::set_var("CLLM_RESULTS_DIR", alt);
        assert_eq!(super::results_dir(), alt);
        // Empty override falls back to the repository default.
        std::env::set_var("CLLM_RESULTS_DIR", "");
        assert!(super::results_dir().to_string_lossy().contains("crates"));
        std::env::remove_var("CLLM_RESULTS_DIR");
        assert!(super::results_dir().ends_with("results"));
    }
}
