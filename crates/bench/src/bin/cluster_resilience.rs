//! Cluster-resilience extension — multi-node TEE fleets under correlated
//! preemption waves: failover, admission control and effective cost.

fn main() {
    let _ = cllm_bench::run_and_emit("cluster_resilience");
}
