//! Regenerate every table and figure of the paper, printing each table
//! and writing JSON under the results directory (`CLLM_RESULTS_DIR` or
//! `results/`).
//!
//! The registry runs twice from a cold simulation cache — once
//! sequentially, once across the parallel runner's worker pool — and the
//! binary asserts the two runs render byte-identical JSON before
//! persisting, then reports the wall-clock comparison.

use std::time::Instant;

fn main() {
    let workers = cllm_core::runner::default_workers();

    cllm_perf::cache::clear();
    let t0 = Instant::now();
    let sequential = cllm_core::runner::run_all_sequential();
    let seq_wall = t0.elapsed();

    cllm_perf::cache::clear();
    let t1 = Instant::now();
    let parallel = cllm_core::runner::run_all_parallel(workers);
    let par_wall = t1.elapsed();
    let cache = cllm_perf::cache::stats();

    assert_eq!(
        sequential.len(),
        parallel.len(),
        "runner dropped experiments"
    );
    for (seq, par) in sequential.iter().zip(&parallel) {
        let seq_json = serde_json::to_string_pretty(seq.to_json()).expect("result serializes");
        let par_json = serde_json::to_string_pretty(par.to_json()).expect("result serializes");
        assert_eq!(
            seq_json, par_json,
            "parallel output for {} diverges from sequential",
            seq.id
        );
    }

    for result in &parallel {
        println!("{}", result.render());
        if let Err(e) = cllm_bench::persist(result) {
            eprintln!("warning: could not write results JSON: {e}");
        }
        println!();
    }

    let speedup = seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-9);
    println!(
        "all {} experiments verified byte-identical across runs",
        parallel.len()
    );
    println!(
        "sequential {:.2}s  |  parallel {:.2}s on {workers} workers  |  speedup {speedup:.2}x",
        seq_wall.as_secs_f64(),
        par_wall.as_secs_f64()
    );
    println!(
        "simulation cache: {} hits / {} misses ({} cpu + {} gpu points)",
        cache.hits, cache.misses, cache.cpu_entries, cache.gpu_entries
    );
}
