//! Regenerate every table and figure of the paper, printing each table
//! and writing JSON under the results directory (`CLLM_RESULTS_DIR` or
//! `results/`).
//!
//! The registry runs twice from a cold simulation cache — once
//! sequentially, once across the parallel runner's worker pool — and the
//! binary asserts the two runs render byte-identical JSON before
//! persisting, then reports the wall-clock comparison.
//!
//! Every experiment is panic-isolated: a failing experiment costs only
//! its own table. The healthy results are still printed and persisted
//! (partial emission), the failures are summarized on stderr, and the
//! process exits non-zero. Setting `CLLM_INJECT_FAILING_STUB` appends a
//! deliberately panicking stub to the registry so CI can prove that
//! property end to end.

use cllm_core::experiments::{ExperimentEntry, ExperimentResult};
use cllm_core::runner::{
    default_workers, run_entries_isolated, with_grid_workers, ExperimentError,
};
use std::time::Instant;

/// The deliberately failing registry entry behind
/// `CLLM_INJECT_FAILING_STUB`.
fn failing_stub() -> ExperimentResult {
    panic!("intentionally failing stub (CLLM_INJECT_FAILING_STUB is set)")
}

fn main() {
    let workers = default_workers();
    let mut entries: Vec<ExperimentEntry> = cllm_core::experiments::all_experiments();
    if std::env::var_os("CLLM_INJECT_FAILING_STUB").is_some_and(|v| !v.is_empty()) {
        entries.push(("__failing_stub", failing_stub));
    }

    cllm_perf::cache::clear();
    let t0 = Instant::now();
    let sequential = with_grid_workers(1, || run_entries_isolated(&entries, 1));
    let seq_wall = t0.elapsed();

    cllm_perf::cache::clear();
    let t1 = Instant::now();
    let parallel = run_entries_isolated(&entries, workers);
    let par_wall = t1.elapsed();
    let cache = cllm_perf::cache::stats();

    assert_eq!(
        sequential.len(),
        parallel.len(),
        "runner dropped experiments"
    );

    let mut failures: Vec<ExperimentError> = Vec::new();
    let mut emitted = 0usize;
    for ((id, seq), (_, par)) in sequential.iter().zip(&parallel) {
        match (seq, par) {
            (Ok(s), Ok(p)) => {
                let seq_json =
                    serde_json::to_string_pretty(s.to_json()).expect("result serializes");
                let par_json =
                    serde_json::to_string_pretty(p.to_json()).expect("result serializes");
                assert_eq!(
                    seq_json, par_json,
                    "parallel output for {id} diverges from sequential"
                );
                println!("{}", p.render());
                if let Err(e) = cllm_bench::persist(p) {
                    eprintln!("warning: could not write results JSON: {e}");
                }
                println!();
                emitted += 1;
            }
            (Err(e), Err(_)) => failures.push(e.clone()),
            // Failing in only one mode is itself a determinism bug worth
            // flagging loudly.
            (Err(e), Ok(_)) | (Ok(_), Err(e)) => {
                failures.push(e.clone());
                eprintln!("error: '{id}' failed in one run mode but not the other");
            }
        }
    }

    let speedup = seq_wall.as_secs_f64() / par_wall.as_secs_f64().max(1e-9);
    println!(
        "{emitted}/{} experiments verified byte-identical across runs",
        parallel.len()
    );
    println!(
        "sequential {:.2}s  |  parallel {:.2}s on {workers} workers  |  speedup {speedup:.2}x",
        seq_wall.as_secs_f64(),
        par_wall.as_secs_f64()
    );
    println!(
        "simulation cache: {} hits / {} misses ({} cpu + {} gpu points)",
        cache.hits, cache.misses, cache.cpu_entries, cache.gpu_entries
    );

    if !failures.is_empty() {
        eprintln!(
            "\n{} experiment(s) FAILED (partial results emitted):",
            failures.len()
        );
        for f in &failures {
            eprintln!("  - {f}");
        }
        std::process::exit(1);
    }
}
