//! Regenerate every table and figure of the paper in order, printing each
//! table and writing JSON under `results/`.

fn main() {
    for (id, _) in cllm_core::experiments::all_experiments() {
        let _ = cllm_bench::run_and_emit(id);
        println!();
    }
}
