//! Resilience extension — serving under injected TEE faults: recovery,
//! availability, degraded SLO attainment and effective $/Mtoken.

fn main() {
    let _ = cllm_bench::run_and_emit("resilience");
}
