//! Regenerate fig7 of the paper (see DESIGN.md's experiment index).

fn main() {
    let _ = cllm_bench::run_and_emit("fig7");
}
