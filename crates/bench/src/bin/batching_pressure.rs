//! Paged-KV extension — KV policies under TEE memory pressure and the
//! continuous-vs-static batching crossover.

fn main() {
    let _ = cllm_bench::run_and_emit("batching_pressure");
}
