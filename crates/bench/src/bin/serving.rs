//! Regenerate the serving experiment (see DESIGN.md's experiment index).

fn main() {
    let _ = cllm_bench::run_and_emit("serving");
}
