//! Wall-clock throughput bench for the unified discrete-event kernel.
//!
//! Runs the `serve_scale` cluster (64 nodes) and reports kernel
//! events/sec. Three modes:
//!
//! * default / `--out <path>` — run the **full** scale (1M+ requests,
//!   520 s simulated horizon) twice — once on the conservative KV
//!   policy, once on paged-recompute with a small page pool — and write
//!   `BENCH_serve.json`. When the output file already exists with
//!   pinned `floor_events_per_s` / `floor_paged_events_per_s`, the pins
//!   are preserved; otherwise each floor is set to a quarter of its
//!   measured rate so machine variance cannot flake CI.
//! * `--smoke` — run the reduced **smoke** scale (both policies) and
//!   print events/sec without touching the pins. Fast enough for CI.
//! * `--check <path>` — validate the `BENCH_serve.json` schema at
//!   `path`, run both smoke scales, and exit non-zero if either
//!   measured events/sec falls more than 30% below its pinned floor.
//!
//! Only this binary ever records wall time; the golden tables stay
//! machine-independent.

use cllm_core::experiments::serve_scale::{autoscale_report, paged_report, report, Scale};
use serde_json::{Number, Value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// Schema fields every `BENCH_serve.json` must carry, with their JSON
/// type class (`true` = number, `false` = string).
const SCHEMA: [(&str, bool); 24] = [
    ("schema_version", true),
    ("scale", false),
    ("nodes", true),
    ("arrivals", true),
    ("completed", true),
    ("aborted", true),
    ("rejected", true),
    ("retries", true),
    ("makespan_s", true),
    ("goodput_tps", true),
    ("kernel_events", true),
    ("wall_s", true),
    ("events_per_s", true),
    ("floor_events_per_s", true),
    ("paged_preemptions", true),
    ("paged_kernel_events", true),
    ("paged_wall_s", true),
    ("paged_events_per_s", true),
    ("floor_paged_events_per_s", true),
    ("autoscale_scale_ups", true),
    ("autoscale_kernel_events", true),
    ("autoscale_wall_s", true),
    ("autoscale_events_per_s", true),
    ("floor_autoscale_events_per_s", true),
];

fn int(v: u64) -> Value {
    Value::Number(Number::PosInt(v))
}

fn float(v: f64) -> Value {
    Value::Number(Number::Float(v))
}

/// Replace or append a field on an object document.
fn set(doc: &mut Value, key: &str, value: Value) {
    let Value::Object(fields) = doc else {
        panic!("document is not an object");
    };
    if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
        slot.1 = value;
    } else {
        fields.push((key.to_string(), value));
    }
}

fn field_f64(doc: &Value, key: &str) -> f64 {
    doc.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

/// One timed run at `scale`, rendered as the BENCH_serve.json document
/// (floor left at zero for the caller to pin) plus the measured rate.
fn measure(scale: Scale) -> (Value, f64) {
    let t0 = Instant::now();
    let (rep, stats) = report(scale);
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        rep.completed + rep.aborted + rep.rejected,
        rep.arrivals,
        "conservation violated at {} scale",
        scale.label()
    );
    #[allow(clippy::cast_precision_loss)]
    let events_per_s = stats.events() as f64 / wall_s.max(1e-9);
    let doc = Value::Object(vec![
        ("schema_version".into(), int(1)),
        ("scale".into(), Value::String(scale.label().into())),
        ("nodes".into(), int(rep.nodes.len() as u64)),
        ("arrivals".into(), int(rep.arrivals as u64)),
        ("completed".into(), int(rep.completed as u64)),
        ("aborted".into(), int(rep.aborted as u64)),
        ("rejected".into(), int(rep.rejected as u64)),
        ("retries".into(), int(rep.retries)),
        ("makespan_s".into(), float(rep.makespan_s)),
        ("goodput_tps".into(), float(rep.goodput_tps)),
        ("kernel_events".into(), int(stats.events())),
        ("wall_s".into(), float(wall_s)),
        ("events_per_s".into(), float(events_per_s)),
        ("floor_events_per_s".into(), float(0.0)),
    ]);
    (doc, events_per_s)
}

/// One timed run of the paged-recompute operating point at `scale`,
/// returning the `paged_*` fields to append to the document (floor left
/// at zero) plus the measured rate. A separate row because the paged
/// path exercises the allocator, eviction and readmission code the
/// conservative run never touches — a regression there must not hide
/// behind the conservative floor.
fn measure_paged(scale: Scale) -> (Vec<(String, Value)>, f64) {
    let t0 = Instant::now();
    let (rep, stats) = paged_report(scale);
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        rep.completed + rep.aborted + rep.rejected,
        rep.arrivals,
        "paged conservation violated at {} scale",
        scale.label()
    );
    assert!(
        rep.preemptions > 0,
        "paged bench must exercise the preemption path at {} scale",
        scale.label()
    );
    #[allow(clippy::cast_precision_loss)]
    let events_per_s = stats.events() as f64 / wall_s.max(1e-9);
    let fields = vec![
        ("paged_preemptions".to_string(), int(rep.preemptions)),
        ("paged_kernel_events".to_string(), int(stats.events())),
        ("paged_wall_s".to_string(), float(wall_s)),
        ("paged_events_per_s".to_string(), float(events_per_s)),
        ("floor_paged_events_per_s".to_string(), float(0.0)),
    ];
    (fields, events_per_s)
}

/// One timed run of the flash-crowd autoscale operating point at
/// `scale`, returning the `autoscale_*` fields to append (floor left at
/// zero) plus the measured rate. A separate row because the autoscale
/// path layers generative tiered traffic, controller ticks, attested
/// cold starts and drain scale-downs on top of the kernel — a
/// regression there must not hide behind the cluster floors.
fn measure_autoscale(scale: Scale) -> (Vec<(String, Value)>, f64) {
    let t0 = Instant::now();
    let (rep, stats) = autoscale_report(scale);
    let wall_s = t0.elapsed().as_secs_f64();
    assert_eq!(
        rep.completed + rep.shed + rep.aborted,
        rep.arrivals,
        "autoscale conservation violated at {} scale",
        scale.label()
    );
    assert!(
        rep.scale_ups > 0,
        "autoscale bench must exercise the scale-up path at {} scale",
        scale.label()
    );
    #[allow(clippy::cast_precision_loss)]
    let events_per_s = stats.events() as f64 / wall_s.max(1e-9);
    let fields = vec![
        ("autoscale_scale_ups".to_string(), int(rep.scale_ups)),
        ("autoscale_kernel_events".to_string(), int(stats.events())),
        ("autoscale_wall_s".to_string(), float(wall_s)),
        ("autoscale_events_per_s".to_string(), float(events_per_s)),
        ("floor_autoscale_events_per_s".to_string(), float(0.0)),
    ];
    (fields, events_per_s)
}

/// Validate the pinned document: every schema field present with the
/// right JSON type, counts conserved, floor positive and honest.
fn validate(doc: &Value) -> Result<(), String> {
    if !matches!(doc, Value::Object(_)) {
        return Err("document is not a JSON object".into());
    }
    for (key, numeric) in SCHEMA {
        let v = doc
            .get(key)
            .ok_or_else(|| format!("missing field `{key}`"))?;
        let ok = if numeric {
            matches!(v, Value::Number(_))
        } else {
            matches!(v, Value::String(_))
        };
        if !ok {
            let want = if numeric { "number" } else { "string" };
            return Err(format!("field `{key}` must be a {want}"));
        }
    }
    let arrivals = field_f64(doc, "arrivals");
    let terminal =
        field_f64(doc, "completed") + field_f64(doc, "aborted") + field_f64(doc, "rejected");
    if (terminal - arrivals).abs() > 0.0 {
        return Err("terminal states do not sum to arrivals".into());
    }
    for (rate_key, floor_key) in [
        ("events_per_s", "floor_events_per_s"),
        ("paged_events_per_s", "floor_paged_events_per_s"),
        ("autoscale_events_per_s", "floor_autoscale_events_per_s"),
    ] {
        let floor = field_f64(doc, floor_key);
        if floor.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!("{floor_key} must be positive"));
        }
        if field_f64(doc, rate_key) < floor {
            return Err(format!("pinned {rate_key} is below its own floor"));
        }
    }
    Ok(())
}

/// Default output path: the repository root, next to EXPERIMENTS.md.
fn default_out() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json")
}

fn read_floor(path: &Path, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc: Value = serde_json::from_str(&text).ok()?;
    let floor = doc.get(key)?.as_f64()?;
    (floor > 0.0).then_some(floor)
}

fn run_full(out: &Path) -> ExitCode {
    println!("running full scale (1M+ requests, 64 nodes)...");
    let (mut doc, events_per_s) = measure(Scale::Full);
    println!("running full scale again on the paged-recompute policy...");
    let (paged_fields, paged_events_per_s) = measure_paged(Scale::Full);
    for (key, value) in paged_fields {
        set(&mut doc, &key, value);
    }
    println!("running full scale on the flash-crowd autoscaler...");
    let (autoscale_fields, autoscale_events_per_s) = measure_autoscale(Scale::Full);
    for (key, value) in autoscale_fields {
        set(&mut doc, &key, value);
    }
    // Preserve existing pins so reruns on faster machines don't
    // silently raise the regression bar; a first run pins measured/4.
    let floor = read_floor(out, "floor_events_per_s").unwrap_or(events_per_s / 4.0);
    let paged_floor =
        read_floor(out, "floor_paged_events_per_s").unwrap_or(paged_events_per_s / 4.0);
    let autoscale_floor =
        read_floor(out, "floor_autoscale_events_per_s").unwrap_or(autoscale_events_per_s / 4.0);
    set(&mut doc, "floor_events_per_s", float(floor));
    set(&mut doc, "floor_paged_events_per_s", float(paged_floor));
    set(
        &mut doc,
        "floor_autoscale_events_per_s",
        float(autoscale_floor),
    );
    validate(&doc).expect("freshly measured document must be schema-valid");
    let pretty = serde_json::to_string_pretty(&doc).expect("doc serializes");
    std::fs::write(out, pretty + "\n").expect("write BENCH_serve.json");
    println!(
        "full: {:.0} arrivals, {:.0} kernel events in {:.2}s wall = {events_per_s:.0} events/s (floor {floor:.0})",
        field_f64(&doc, "arrivals"),
        field_f64(&doc, "kernel_events"),
        field_f64(&doc, "wall_s"),
    );
    println!(
        "paged: {:.0} preemptions, {:.0} kernel events in {:.2}s wall = {paged_events_per_s:.0} events/s (floor {paged_floor:.0})",
        field_f64(&doc, "paged_preemptions"),
        field_f64(&doc, "paged_kernel_events"),
        field_f64(&doc, "paged_wall_s"),
    );
    println!(
        "autoscale: {:.0} scale-ups, {:.0} kernel events in {:.2}s wall = {autoscale_events_per_s:.0} events/s (floor {autoscale_floor:.0})",
        field_f64(&doc, "autoscale_scale_ups"),
        field_f64(&doc, "autoscale_kernel_events"),
        field_f64(&doc, "autoscale_wall_s"),
    );
    println!("wrote {}", out.display());
    ExitCode::SUCCESS
}

fn run_smoke() -> ((f64, f64, f64), ExitCode) {
    let (doc, events_per_s) = measure(Scale::Smoke);
    println!(
        "smoke: {:.0} arrivals, {:.0} kernel events in {:.3}s wall = {events_per_s:.0} events/s",
        field_f64(&doc, "arrivals"),
        field_f64(&doc, "kernel_events"),
        field_f64(&doc, "wall_s"),
    );
    let (paged_fields, paged_events_per_s) = measure_paged(Scale::Smoke);
    let preemptions = paged_fields
        .iter()
        .find(|(k, _)| k == "paged_preemptions")
        .and_then(|(_, v)| v.as_f64())
        .unwrap_or(0.0);
    println!("smoke paged: {preemptions:.0} preemptions = {paged_events_per_s:.0} events/s");
    let (autoscale_fields, autoscale_events_per_s) = measure_autoscale(Scale::Smoke);
    let scale_ups = autoscale_fields
        .iter()
        .find(|(k, _)| k == "autoscale_scale_ups")
        .and_then(|(_, v)| v.as_f64())
        .unwrap_or(0.0);
    println!("smoke autoscale: {scale_ups:.0} scale-ups = {autoscale_events_per_s:.0} events/s");
    (
        (events_per_s, paged_events_per_s, autoscale_events_per_s),
        ExitCode::SUCCESS,
    )
}

fn run_check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check failed: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("check failed: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate(&doc) {
        eprintln!("check failed: schema error in {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    let ((measured, paged_measured, autoscale_measured), _) = run_smoke();
    for (label, rate, floor_key) in [
        ("smoke", measured, "floor_events_per_s"),
        ("smoke paged", paged_measured, "floor_paged_events_per_s"),
        (
            "smoke autoscale",
            autoscale_measured,
            "floor_autoscale_events_per_s",
        ),
    ] {
        let floor = field_f64(&doc, floor_key);
        let bar = floor * 0.7;
        if rate < bar {
            eprintln!(
                "check failed: {label} events/sec {rate:.0} regressed >30% below pinned floor {floor:.0} (bar {bar:.0})"
            );
            return ExitCode::FAILURE;
        }
        println!("check ok: {label} {rate:.0} events/s >= 0.7 x floor {floor:.0}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => run_full(&default_out()),
        Some("--out") => {
            let path = args.get(1).map_or_else(default_out, PathBuf::from);
            run_full(&path)
        }
        Some("--smoke") => run_smoke().1,
        Some("--check") => match args.get(1) {
            Some(p) => run_check(Path::new(p)),
            None => {
                eprintln!("--check requires a path to BENCH_serve.json");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("unknown argument `{other}`; use --smoke, --check <path>, or --out <path>");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        Value::Object(vec![
            ("schema_version".into(), int(1)),
            ("scale".into(), Value::String("full".into())),
            ("nodes".into(), int(64)),
            ("arrivals".into(), int(1_040_000)),
            ("completed".into(), int(1_030_000)),
            ("aborted".into(), int(10_000)),
            ("rejected".into(), int(0)),
            ("retries".into(), int(5_000)),
            ("makespan_s".into(), float(523.4)),
            ("goodput_tps".into(), float(39_000.0)),
            ("kernel_events".into(), int(25_000_000)),
            ("wall_s".into(), float(3.2)),
            ("events_per_s".into(), float(7_800_000.0)),
            ("floor_events_per_s".into(), float(1_950_000.0)),
            ("paged_preemptions".into(), int(120_000)),
            ("paged_kernel_events".into(), int(27_000_000)),
            ("paged_wall_s".into(), float(3.6)),
            ("paged_events_per_s".into(), float(7_500_000.0)),
            ("floor_paged_events_per_s".into(), float(1_875_000.0)),
            ("autoscale_scale_ups".into(), int(12)),
            ("autoscale_kernel_events".into(), int(9_000_000)),
            ("autoscale_wall_s".into(), float(2.1)),
            ("autoscale_events_per_s".into(), float(4_300_000.0)),
            ("floor_autoscale_events_per_s".into(), float(1_075_000.0)),
        ])
    }

    #[test]
    fn sample_document_is_schema_valid() {
        validate(&sample()).expect("sample must validate");
    }

    #[test]
    fn missing_field_is_rejected() {
        let Value::Object(mut fields) = sample() else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "events_per_s");
        let err = validate(&Value::Object(fields)).unwrap_err();
        assert!(err.contains("events_per_s"), "{err}");
    }

    #[test]
    fn wrong_type_is_rejected() {
        let mut doc = sample();
        set(&mut doc, "nodes", Value::String("sixty-four".into()));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("nodes"), "{err}");
    }

    #[test]
    fn non_conserved_counts_are_rejected() {
        let mut doc = sample();
        set(&mut doc, "completed", int(1));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("arrivals"), "{err}");
    }

    #[test]
    fn zero_floor_is_rejected() {
        let mut doc = sample();
        set(&mut doc, "floor_events_per_s", float(0.0));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("floor"), "{err}");
    }

    #[test]
    fn zero_paged_floor_is_rejected() {
        let mut doc = sample();
        set(&mut doc, "floor_paged_events_per_s", float(0.0));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("floor_paged"), "{err}");
    }

    #[test]
    fn paged_rate_below_its_floor_is_rejected() {
        let mut doc = sample();
        set(&mut doc, "paged_events_per_s", float(1.0));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("paged_events_per_s"), "{err}");
    }

    #[test]
    fn zero_autoscale_floor_is_rejected() {
        let mut doc = sample();
        set(&mut doc, "floor_autoscale_events_per_s", float(0.0));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("floor_autoscale"), "{err}");
    }

    #[test]
    fn autoscale_rate_below_its_floor_is_rejected() {
        let mut doc = sample();
        set(&mut doc, "autoscale_events_per_s", float(1.0));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("autoscale_events_per_s"), "{err}");
    }

    #[test]
    fn round_trip_through_text_stays_valid() {
        let pretty = serde_json::to_string_pretty(sample()).expect("serializes");
        let back: Value = serde_json::from_str(&pretty).expect("parses");
        validate(&back).expect("round-tripped document must validate");
    }

    #[test]
    fn smoke_measure_is_conservative() {
        let (mut doc, events_per_s) = measure(Scale::Smoke);
        assert!(events_per_s > 0.0);
        assert_eq!(doc.get("scale").and_then(Value::as_str), Some("smoke"));
        assert_eq!(field_f64(&doc, "nodes") as u64, 64);
        let (paged_fields, paged_events_per_s) = measure_paged(Scale::Smoke);
        assert!(paged_events_per_s > 0.0);
        for (key, value) in paged_fields {
            set(&mut doc, &key, value);
        }
        assert!(field_f64(&doc, "paged_preemptions") > 0.0);
        let (autoscale_fields, autoscale_events_per_s) = measure_autoscale(Scale::Smoke);
        assert!(autoscale_events_per_s > 0.0);
        for (key, value) in autoscale_fields {
            set(&mut doc, &key, value);
        }
        assert!(field_f64(&doc, "autoscale_scale_ups") > 0.0);
        // Floors are the caller's to pin; everything else must be present.
        set(&mut doc, "floor_events_per_s", float(1.0));
        set(&mut doc, "floor_paged_events_per_s", float(1.0));
        set(&mut doc, "floor_autoscale_events_per_s", float(1.0));
        validate(&doc).expect("measured smoke doc must be schema-valid");
    }
}
