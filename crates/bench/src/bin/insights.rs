//! Check the paper's 12 insights against the simulator and print the
//! evidence for each.

fn main() {
    let summary = cllm_core::summary::build();
    println!("{}", summary.render());
    let ok = summary.confirmed();
    println!("{ok}/12 insights confirmed");
    if ok != 12 {
        std::process::exit(1);
    }
}
