//! Wall-clock tokens/sec bench for the real `cllm-infer` engine.
//!
//! Times prefill (one chunked forward over a prompt) and decode (the
//! sequential token loop) on a weight-bound model shape across the
//! engine's kernel variants — scalar reference (`naive`), tiled f32,
//! group-wise int8, packed int4 — plus speculative decoding with an
//! int8-quantized draft. Three modes:
//!
//! * default / `--out <path>` — run the **full** shape (~20M params,
//!   80 MB of f32 weights, large enough that decode streams from
//!   memory) and write `BENCH_infer.json`. When the output file
//!   already exists with pinned `floor_*_tps` fields, the pins are
//!   preserved; otherwise each floor is set to a quarter of its
//!   measured rate so machine variance cannot flake CI. The decode
//!   speedup ratios are checked against the measured-vs-modeled bands
//!   in `cllm_perf::calib::measured` and against the hard acceptance
//!   bars (tiled >= 2x naive, int8 >= 1.5x tiled).
//! * `--smoke` — run the reduced **smoke** shape and print tokens/sec
//!   without touching the pins. Fast enough for CI.
//! * `--check <path>` — validate the `BENCH_infer.json` schema and
//!   calibration bands at `path`, run the smoke shape, and exit
//!   non-zero if any measured tokens/sec falls more than 30% below its
//!   pinned floor (the smoke shape is smaller, hence never slower, so
//!   full-shape floors are a valid lower bar).
//!
//! Only this binary ever records wall time; the golden tables stay
//! machine-independent.

use cllm_infer::kernels::argmax;
use cllm_infer::model::{TinyConfig, TinyModel};
use cllm_infer::speculative::speculative_generate;
use cllm_perf::calib::measured::{CalibrationReport, MeasuredRatios};
use serde_json::{Number, Value};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

/// Schema fields every `BENCH_infer.json` must carry, with their JSON
/// type class (`true` = number, `false` = string).
const SCHEMA: [(&str, bool); 30] = [
    ("schema_version", true),
    ("model", false),
    ("hidden", true),
    ("layers", true),
    ("vocab", true),
    ("params", true),
    ("prefill_tokens", true),
    ("decode_tokens", true),
    ("draft_k", true),
    ("naive_prefill_tps", true),
    ("naive_decode_tps", true),
    ("tiled_prefill_tps", true),
    ("tiled_decode_tps", true),
    ("int8_prefill_tps", true),
    ("int8_decode_tps", true),
    ("int4_prefill_tps", true),
    ("int4_decode_tps", true),
    ("spec_decode_tps", true),
    ("spec_acceptance", true),
    ("ratio_tiled_over_naive_decode", true),
    ("ratio_int8_over_tiled_decode", true),
    ("ratio_int4_over_int8_decode", true),
    ("ratio_spec_over_tiled_decode", true),
    ("calibration_ok", true),
    ("floor_naive_decode_tps", true),
    ("floor_tiled_prefill_tps", true),
    ("floor_tiled_decode_tps", true),
    ("floor_int8_decode_tps", true),
    ("floor_int4_decode_tps", true),
    ("floor_spec_decode_tps", true),
];

/// The six (rate, floor) pairs `--check` guards.
const FLOORED: [(&str, &str); 6] = [
    ("naive_decode_tps", "floor_naive_decode_tps"),
    ("tiled_prefill_tps", "floor_tiled_prefill_tps"),
    ("tiled_decode_tps", "floor_tiled_decode_tps"),
    ("int8_decode_tps", "floor_int8_decode_tps"),
    ("int4_decode_tps", "floor_int4_decode_tps"),
    ("spec_decode_tps", "floor_spec_decode_tps"),
];

fn int(v: u64) -> Value {
    Value::Number(Number::PosInt(v))
}

fn float(v: f64) -> Value {
    Value::Number(Number::Float(v))
}

/// Replace or append a field on an object document.
fn set(doc: &mut Value, key: &str, value: Value) {
    let Value::Object(fields) = doc else {
        panic!("document is not an object");
    };
    if let Some(slot) = fields.iter_mut().find(|(k, _)| k == key) {
        slot.1 = value;
    } else {
        fields.push((key.to_string(), value));
    }
}

fn field_f64(doc: &Value, key: &str) -> f64 {
    doc.get(key).and_then(Value::as_f64).unwrap_or(f64::NAN)
}

/// The bench's model scales.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Scale {
    /// ~20M params / 80 MB f32: decode streams weights from memory, the
    /// regime the paper's CPU roofline prices.
    Full,
    /// ~3M params: cache-resident, fast enough for CI.
    Smoke,
}

impl Scale {
    fn label(self) -> &'static str {
        match self {
            Scale::Full => "full",
            Scale::Smoke => "smoke",
        }
    }

    fn config(self) -> TinyConfig {
        match self {
            Scale::Full => TinyConfig {
                hidden: 512,
                layers: 6,
                heads: 8,
                kv_heads: 4,
                intermediate: 1408,
                vocab: 2048,
                max_seq: 256,
                rope_theta: 10_000.0,
                eps: 1e-5,
            },
            Scale::Smoke => TinyConfig {
                hidden: 256,
                layers: 4,
                heads: 8,
                kv_heads: 4,
                intermediate: 704,
                vocab: 512,
                max_seq: 256,
                rope_theta: 10_000.0,
                eps: 1e-5,
            },
        }
    }
}

/// Prompt length timed as prefill (one chunked forward).
const PREFILL_TOKENS: usize = 32;
/// Tokens generated in each timed decode loop.
const DECODE_TOKENS: usize = 48;
/// Speculative draft window. With an int8 draft of the same shape the
/// draft step costs a sizable fraction of a target step, so throughput
/// peaks at a short window: at acceptance `a ~ 0.87`, expected tokens
/// per round `E = (1 - a^(k+1)) / (1 - a)` grows slower in `k` than the
/// `k` draft steps cost, and `k = 2` maximizes `E / round-cost`.
const DRAFT_K: usize = 2;

fn prompt(vocab: usize) -> Vec<usize> {
    (0..PREFILL_TOKENS).map(|i| (i * 37 + 11) % vocab).collect()
}

/// Tokens/sec of one chunked prefill over `PREFILL_TOKENS` tokens.
fn prefill_tps(model: &TinyModel) -> f64 {
    let p = prompt(model.config.vocab);
    let mut cache = model.new_cache();
    let t0 = Instant::now();
    let rows = model.forward_chunk(&p, &mut cache);
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(rows.row(p.len() - 1)[0]);
    #[allow(clippy::cast_precision_loss)]
    {
        p.len() as f64 / wall
    }
}

/// Tokens/sec of a greedy decode loop (prefill excluded from the
/// timed region).
fn decode_tps(model: &TinyModel) -> f64 {
    let p = prompt(model.config.vocab);
    let mut cache = model.new_cache();
    let rows = model.forward_chunk(&p, &mut cache);
    let mut logits = rows.row(p.len() - 1).to_vec();
    let t0 = Instant::now();
    for _ in 0..DECODE_TOKENS {
        let tok = argmax(&logits);
        logits = model.forward(tok, &mut cache);
    }
    let wall = t0.elapsed().as_secs_f64().max(1e-9);
    std::hint::black_box(logits[0]);
    #[allow(clippy::cast_precision_loss)]
    {
        DECODE_TOKENS as f64 / wall
    }
}

/// Tokens/sec and acceptance rate of speculative decode with an
/// int8-quantized draft. Int8 keeps acceptance high on the seeded
/// random weights; int4's extra rounding flips too many argmax draws
/// to pay off as a draft here.
///
/// `speculative_generate` prefills both models internally, while
/// `decode_tps` excludes prefill from its timed region; to compare
/// like-for-like, the two prompt prefills are timed separately on
/// scratch caches and subtracted from the speculative wall.
fn spec_tps(target: &TinyModel, draft: &TinyModel) -> (f64, f64) {
    let p = prompt(target.config.vocab);
    let t0 = Instant::now();
    for m in [target, draft] {
        let mut cache = m.new_cache();
        let rows = m.forward_chunk(&p, &mut cache);
        std::hint::black_box(rows.row(p.len() - 1)[0]);
    }
    let prefill_wall = t0.elapsed().as_secs_f64();
    let t0 = Instant::now();
    let (out, stats) = speculative_generate(
        target,
        draft,
        &p,
        DECODE_TOKENS,
        DRAFT_K,
        cllm_infer::generate::Sampling::Greedy,
        0,
    );
    let wall = (t0.elapsed().as_secs_f64() - prefill_wall).max(1e-9);
    std::hint::black_box(out.last().copied());
    #[allow(clippy::cast_precision_loss)]
    {
        (DECODE_TOKENS as f64 / wall, stats.acceptance_rate())
    }
}

/// All timed rates for one scale.
struct Rates {
    naive_prefill: f64,
    naive_decode: f64,
    tiled_prefill: f64,
    tiled_decode: f64,
    int8_prefill: f64,
    int8_decode: f64,
    int4_prefill: f64,
    int4_decode: f64,
    spec_decode: f64,
    spec_acceptance: f64,
}

/// Run every variant at `scale`. The same seeded weights back every
/// variant, so the ratios isolate the kernels.
fn measure(scale: Scale) -> (TinyConfig, usize, Rates) {
    let config = scale.config();
    let tiled = TinyModel::init(&config, 42);
    let naive = tiled.naive();
    let int8 = tiled.quantized();
    let int4 = tiled.quantized4();
    let rates = Rates {
        naive_prefill: prefill_tps(&naive),
        naive_decode: decode_tps(&naive),
        tiled_prefill: prefill_tps(&tiled),
        tiled_decode: decode_tps(&tiled),
        int8_prefill: prefill_tps(&int8),
        int8_decode: decode_tps(&int8),
        int4_prefill: prefill_tps(&int4),
        int4_decode: decode_tps(&int4),
        spec_decode: 0.0,
        spec_acceptance: 0.0,
    };
    let (spec, acceptance) = spec_tps(&tiled, &int8);
    let rates = Rates {
        spec_decode: spec,
        spec_acceptance: acceptance,
        ..rates
    };
    (config, tiled.param_count(), rates)
}

fn ratios(r: &Rates) -> MeasuredRatios {
    MeasuredRatios {
        tiled_over_naive: r.tiled_decode / r.naive_decode,
        int8_over_tiled: r.int8_decode / r.tiled_decode,
        int4_over_int8: r.int4_decode / r.int8_decode,
        spec_over_tiled: r.spec_decode / r.tiled_decode,
    }
}

/// Render one measurement as the BENCH_infer.json document (floors
/// left at zero for the caller to pin).
fn document(scale: Scale, config: &TinyConfig, params: usize, r: &Rates) -> Value {
    let q = ratios(r);
    let calibration = CalibrationReport::new(&q);
    Value::Object(vec![
        ("schema_version".into(), int(1)),
        ("model".into(), Value::String(scale.label().into())),
        ("hidden".into(), int(config.hidden as u64)),
        ("layers".into(), int(config.layers as u64)),
        ("vocab".into(), int(config.vocab as u64)),
        ("params".into(), int(params as u64)),
        ("prefill_tokens".into(), int(PREFILL_TOKENS as u64)),
        ("decode_tokens".into(), int(DECODE_TOKENS as u64)),
        ("draft_k".into(), int(DRAFT_K as u64)),
        ("naive_prefill_tps".into(), float(r.naive_prefill)),
        ("naive_decode_tps".into(), float(r.naive_decode)),
        ("tiled_prefill_tps".into(), float(r.tiled_prefill)),
        ("tiled_decode_tps".into(), float(r.tiled_decode)),
        ("int8_prefill_tps".into(), float(r.int8_prefill)),
        ("int8_decode_tps".into(), float(r.int8_decode)),
        ("int4_prefill_tps".into(), float(r.int4_prefill)),
        ("int4_decode_tps".into(), float(r.int4_decode)),
        ("spec_decode_tps".into(), float(r.spec_decode)),
        ("spec_acceptance".into(), float(r.spec_acceptance)),
        (
            "ratio_tiled_over_naive_decode".into(),
            float(q.tiled_over_naive),
        ),
        (
            "ratio_int8_over_tiled_decode".into(),
            float(q.int8_over_tiled),
        ),
        (
            "ratio_int4_over_int8_decode".into(),
            float(q.int4_over_int8),
        ),
        (
            "ratio_spec_over_tiled_decode".into(),
            float(q.spec_over_tiled),
        ),
        (
            "calibration_ok".into(),
            int(u64::from(calibration.all_within())),
        ),
        ("floor_naive_decode_tps".into(), float(0.0)),
        ("floor_tiled_prefill_tps".into(), float(0.0)),
        ("floor_tiled_decode_tps".into(), float(0.0)),
        ("floor_int8_decode_tps".into(), float(0.0)),
        ("floor_int4_decode_tps".into(), float(0.0)),
        ("floor_spec_decode_tps".into(), float(0.0)),
    ])
}

/// Validate the pinned document: every schema field present with the
/// right JSON type, ratios consistent with the rates they summarize,
/// calibration bands and hard acceptance bars met, floors positive and
/// honest.
fn validate(doc: &Value) -> Result<(), String> {
    if !matches!(doc, Value::Object(_)) {
        return Err("document is not a JSON object".into());
    }
    for (key, numeric) in SCHEMA {
        let v = doc
            .get(key)
            .ok_or_else(|| format!("missing field `{key}`"))?;
        let ok = if numeric {
            matches!(v, Value::Number(_))
        } else {
            matches!(v, Value::String(_))
        };
        if !ok {
            let want = if numeric { "number" } else { "string" };
            return Err(format!("field `{key}` must be a {want}"));
        }
    }
    // Ratios must restate the rates they were derived from.
    for (ratio_key, num_key, den_key) in [
        (
            "ratio_tiled_over_naive_decode",
            "tiled_decode_tps",
            "naive_decode_tps",
        ),
        (
            "ratio_int8_over_tiled_decode",
            "int8_decode_tps",
            "tiled_decode_tps",
        ),
        (
            "ratio_int4_over_int8_decode",
            "int4_decode_tps",
            "int8_decode_tps",
        ),
        (
            "ratio_spec_over_tiled_decode",
            "spec_decode_tps",
            "tiled_decode_tps",
        ),
    ] {
        let stated = field_f64(doc, ratio_key);
        let derived = field_f64(doc, num_key) / field_f64(doc, den_key);
        if !(stated.is_finite() && ((stated - derived) / derived).abs() < 1e-6) {
            return Err(format!("{ratio_key} does not match {num_key}/{den_key}"));
        }
    }
    // Calibration: ratios inside the measured-vs-modeled bands.
    let report = CalibrationReport::new(&MeasuredRatios {
        tiled_over_naive: field_f64(doc, "ratio_tiled_over_naive_decode"),
        int8_over_tiled: field_f64(doc, "ratio_int8_over_tiled_decode"),
        int4_over_int8: field_f64(doc, "ratio_int4_over_int8_decode"),
        spec_over_tiled: field_f64(doc, "ratio_spec_over_tiled_decode"),
    });
    if !report.all_within() {
        return Err(format!(
            "measured ratios outside calibration bands:\n{}",
            report.render()
        ));
    }
    if field_f64(doc, "calibration_ok") != 1.0 {
        return Err("calibration_ok must be 1".into());
    }
    // Hard acceptance bars on weight-bound decode.
    if field_f64(doc, "ratio_tiled_over_naive_decode") < 2.0 {
        return Err("tiled decode must be >= 2x naive".into());
    }
    if field_f64(doc, "ratio_int8_over_tiled_decode") < 1.5 {
        return Err("int8 decode must be >= 1.5x tiled".into());
    }
    let acceptance = field_f64(doc, "spec_acceptance");
    if !(0.0..=1.0).contains(&acceptance) {
        return Err("spec_acceptance must be in [0, 1]".into());
    }
    for (rate_key, floor_key) in FLOORED {
        let floor = field_f64(doc, floor_key);
        if floor.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(format!("{floor_key} must be positive"));
        }
        if field_f64(doc, rate_key) < floor {
            return Err(format!("pinned {rate_key} is below its own floor"));
        }
    }
    Ok(())
}

/// Default output path: the repository root, next to BENCH_serve.json.
fn default_out() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_infer.json")
}

fn read_floor(path: &Path, key: &str) -> Option<f64> {
    let text = std::fs::read_to_string(path).ok()?;
    let doc: Value = serde_json::from_str(&text).ok()?;
    let floor = doc.get(key)?.as_f64()?;
    (floor > 0.0).then_some(floor)
}

fn print_rates(scale: Scale, r: &Rates) {
    let q = ratios(r);
    println!(
        "{}: naive {:.0}/{:.0} tiled {:.0}/{:.0} int8 {:.0}/{:.0} int4 {:.0}/{:.0} prefill/decode tok/s",
        scale.label(),
        r.naive_prefill,
        r.naive_decode,
        r.tiled_prefill,
        r.tiled_decode,
        r.int8_prefill,
        r.int8_decode,
        r.int4_prefill,
        r.int4_decode,
    );
    println!(
        "{}: spec {:.0} tok/s at {:.0}% acceptance | ratios tiled/naive {:.2} int8/tiled {:.2} int4/int8 {:.2} spec/tiled {:.2}",
        scale.label(),
        r.spec_decode,
        r.spec_acceptance * 100.0,
        q.tiled_over_naive,
        q.int8_over_tiled,
        q.int4_over_int8,
        q.spec_over_tiled,
    );
}

fn run_full(out: &Path) -> ExitCode {
    println!("running full shape (~20M params, weight-bound decode)...");
    let (config, params, rates) = measure(Scale::Full);
    print_rates(Scale::Full, &rates);
    let report = CalibrationReport::new(&ratios(&rates));
    print!("{}", report.render());
    let mut doc = document(Scale::Full, &config, params, &rates);
    // Preserve existing pins so reruns on faster machines don't
    // silently raise the regression bar; a first run pins measured/4.
    for (rate_key, floor_key) in FLOORED {
        let floor = read_floor(out, floor_key).unwrap_or(field_f64(&doc, rate_key) / 4.0);
        set(&mut doc, floor_key, float(floor));
    }
    if let Err(e) = validate(&doc) {
        eprintln!("freshly measured document failed validation: {e}");
        return ExitCode::FAILURE;
    }
    let pretty = serde_json::to_string_pretty(&doc).expect("doc serializes");
    std::fs::write(out, pretty + "\n").expect("write BENCH_infer.json");
    println!("wrote {}", out.display());
    ExitCode::SUCCESS
}

fn run_smoke() -> (Rates, ExitCode) {
    let (_, _, rates) = measure(Scale::Smoke);
    print_rates(Scale::Smoke, &rates);
    (rates, ExitCode::SUCCESS)
}

fn run_check(path: &Path) -> ExitCode {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("check failed: cannot read {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    let doc: Value = match serde_json::from_str(&text) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("check failed: {} is not valid JSON: {e}", path.display());
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = validate(&doc) {
        eprintln!("check failed: schema error in {}: {e}", path.display());
        return ExitCode::FAILURE;
    }
    let (rates, _) = run_smoke();
    for (label, rate, floor_key) in [
        ("naive decode", rates.naive_decode, "floor_naive_decode_tps"),
        (
            "tiled prefill",
            rates.tiled_prefill,
            "floor_tiled_prefill_tps",
        ),
        ("tiled decode", rates.tiled_decode, "floor_tiled_decode_tps"),
        ("int8 decode", rates.int8_decode, "floor_int8_decode_tps"),
        ("int4 decode", rates.int4_decode, "floor_int4_decode_tps"),
        ("spec decode", rates.spec_decode, "floor_spec_decode_tps"),
    ] {
        let floor = field_f64(&doc, floor_key);
        let bar = floor * 0.7;
        if rate < bar {
            eprintln!(
                "check failed: {label} tokens/sec {rate:.0} regressed >30% below pinned floor {floor:.0} (bar {bar:.0})"
            );
            return ExitCode::FAILURE;
        }
        println!("check ok: {label} {rate:.0} tok/s >= 0.7 x floor {floor:.0}");
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None => run_full(&default_out()),
        Some("--out") => {
            let path = args.get(1).map_or_else(default_out, PathBuf::from);
            run_full(&path)
        }
        Some("--smoke") => run_smoke().1,
        Some("--check") => match args.get(1) {
            Some(p) => run_check(Path::new(p)),
            None => {
                eprintln!("--check requires a path to BENCH_infer.json");
                ExitCode::FAILURE
            }
        },
        Some(other) => {
            eprintln!("unknown argument `{other}`; use --smoke, --check <path>, or --out <path>");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Value {
        let rates = Rates {
            naive_prefill: 40.0,
            naive_decode: 30.0,
            tiled_prefill: 400.0,
            tiled_decode: 120.0,
            int8_prefill: 500.0,
            int8_decode: 240.0,
            int4_prefill: 520.0,
            int4_decode: 300.0,
            spec_decode: 100.0,
            spec_acceptance: 0.85,
        };
        let mut doc = document(Scale::Full, &Scale::Full.config(), 20_000_000, &rates);
        for (rate_key, floor_key) in FLOORED {
            let quarter = field_f64(&doc, rate_key) / 4.0;
            set(&mut doc, floor_key, float(quarter));
        }
        doc
    }

    #[test]
    fn sample_document_is_schema_valid() {
        validate(&sample()).expect("sample must validate");
    }

    #[test]
    fn missing_field_is_rejected() {
        let Value::Object(mut fields) = sample() else {
            unreachable!()
        };
        fields.retain(|(k, _)| k != "tiled_decode_tps");
        let err = validate(&Value::Object(fields)).unwrap_err();
        assert!(err.contains("tiled_decode_tps"), "{err}");
    }

    #[test]
    fn inconsistent_ratio_is_rejected() {
        let mut doc = sample();
        set(&mut doc, "ratio_int8_over_tiled_decode", float(1.9));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("ratio_int8_over_tiled_decode"), "{err}");
    }

    #[test]
    fn scalar_fallback_regression_is_rejected() {
        // Tiled decode collapsing to naive speed must fail both the
        // consistency-recomputed band and the hard 2x bar.
        let mut doc = sample();
        let naive = field_f64(&doc, "naive_decode_tps");
        set(&mut doc, "tiled_decode_tps", float(naive));
        set(&mut doc, "ratio_tiled_over_naive_decode", float(1.0));
        // Keep downstream ratios consistent so only the tiled band trips.
        let int8 = field_f64(&doc, "int8_decode_tps");
        set(
            &mut doc,
            "ratio_int8_over_tiled_decode",
            float(int8 / naive),
        );
        let spec = field_f64(&doc, "spec_decode_tps");
        set(
            &mut doc,
            "ratio_spec_over_tiled_decode",
            float(spec / naive),
        );
        assert!(validate(&doc).is_err());
    }

    #[test]
    fn zero_floor_is_rejected() {
        let mut doc = sample();
        set(&mut doc, "floor_int4_decode_tps", float(0.0));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("floor_int4_decode_tps"), "{err}");
    }

    #[test]
    fn rate_below_its_floor_is_rejected() {
        let mut doc = sample();
        set(&mut doc, "floor_spec_decode_tps", float(1e9));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("spec_decode_tps"), "{err}");
    }

    #[test]
    fn bad_acceptance_is_rejected() {
        let mut doc = sample();
        set(&mut doc, "spec_acceptance", float(1.5));
        let err = validate(&doc).unwrap_err();
        assert!(err.contains("spec_acceptance"), "{err}");
    }

    #[test]
    fn round_trip_through_text_stays_valid() {
        let pretty = serde_json::to_string_pretty(sample()).expect("serializes");
        let back: Value = serde_json::from_str(&pretty).expect("parses");
        validate(&back).expect("round-tripped document must validate");
    }

    #[test]
    fn smoke_rates_are_positive_and_ordered() {
        // One real smoke measurement: every rate positive, and the
        // structural orderings that hold at any shape (quantized decode
        // at least as fast as f32 tiled's floor class is checked by CI
        // at full shape; here we only require positivity and a sane
        // acceptance rate, since debug builds invert some ratios).
        let (_, params, r) = measure(Scale::Smoke);
        assert!(params > 1_000_000);
        for rate in [
            r.naive_prefill,
            r.naive_decode,
            r.tiled_prefill,
            r.tiled_decode,
            r.int8_prefill,
            r.int8_decode,
            r.int4_prefill,
            r.int4_decode,
            r.spec_decode,
        ] {
            assert!(rate > 0.0, "all rates positive");
        }
        assert!((0.0..=1.0).contains(&r.spec_acceptance));
    }
}
