//! Regenerate the b100 experiment (see DESIGN.md's experiment index).

fn main() {
    let _ = cllm_bench::run_and_emit("b100");
}
