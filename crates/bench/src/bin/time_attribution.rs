//! Time-attribution extension — span-accounted makespan shares (prefill,
//! decode, re-attestation, idle, outage) under the resilience fault plan.

fn main() {
    let _ = cllm_bench::run_and_emit("time_attribution");
}
