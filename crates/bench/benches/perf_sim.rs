//! Criterion benches for the simulator itself (how fast the instrument
//! runs) and ablations of its design choices: noise model on/off, EPC
//! size, enclave-exit rate, and the GPU bounce-buffer cost.

use cllm_hw::DType;
use cllm_perf::{simulate_cpu, simulate_gpu, CpuTarget};
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig, MeeParams, SgxParams};
use cllm_workload::phase::RequestSpec;
use cllm_workload::zoo;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_simulators(c: &mut Criterion) {
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(6, 1024, 128).with_beam(4);
    let target = CpuTarget::emr1_single_socket();
    c.bench_function("simulate_cpu_128_tokens", |b| {
        b.iter(|| {
            black_box(simulate_cpu(
                black_box(&model),
                &req,
                DType::Bf16,
                &target,
                &CpuTeeConfig::tdx(),
            ))
        })
    });
    let gpu = cllm_hw::presets::h100_nvl();
    c.bench_function("simulate_gpu_128_tokens", |b| {
        b.iter(|| {
            black_box(simulate_gpu(
                black_box(&model),
                &req,
                DType::Bf16,
                &gpu,
                &GpuTeeConfig::confidential(),
            ))
        })
    });
}

/// Ablation: how the MEE noise model affects the reported mean (DESIGN.md
/// calls out the noise/outlier model as a design choice).
fn bench_noise_ablation(c: &mut Criterion) {
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(1, 1024, 128);
    let target = CpuTarget::emr1_single_socket();
    let mut quiet_tdx = CpuTeeConfig::tdx();
    if let Some(mee) = quiet_tdx.mee.as_mut() {
        *mee = MeeParams {
            noise_sigma: 0.0,
            outlier_prob: 0.0,
            ..*mee
        };
    }
    let mut group = c.benchmark_group("ablation_noise_model");
    group.bench_function("with_noise", |b| {
        b.iter(|| {
            black_box(simulate_cpu(
                &model,
                &req,
                DType::Bf16,
                &target,
                &CpuTeeConfig::tdx(),
            ))
        })
    });
    group.bench_function("no_noise", |b| {
        b.iter(|| black_box(simulate_cpu(&model, &req, DType::Bf16, &target, &quiet_tdx)))
    });
    group.finish();
}

/// Ablation: EPC pressure — shrink the EPC below the working set and
/// watch SGX paging costs appear (the paper used the largest EPC to avoid
/// exactly this).
fn bench_epc_ablation(c: &mut Criterion) {
    let model = zoo::llama2_7b();
    let req = RequestSpec::new(1, 1024, 32);
    let target = CpuTarget::emr1_single_socket();
    let mut group = c.benchmark_group("ablation_epc_size");
    for (name, epc_gib) in [("epc_512g", 512.0), ("epc_8g", 8.0)] {
        let mut sgx = CpuTeeConfig::sgx();
        if let Some(p) = sgx.sgx.as_mut() {
            *p = SgxParams {
                epc_bytes: epc_gib * cllm_hw::GIB,
                ..*p
            };
        }
        group.bench_function(name, |b| {
            b.iter(|| black_box(simulate_cpu(&model, &req, DType::Bf16, &target, &sgx)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_simulators,
    bench_noise_ablation,
    bench_epc_ablation
);
criterion_main!(benches);
