//! Criterion benches for the retrieval engine: the *measured* per-query
//! costs of the three RAG methods (Figure 14's bare-metal bars, on real
//! code instead of the analytical work model).

use cllm_retrieval::beir::{generate, BeirSpec};
use cllm_retrieval::engine::{Engine, SearchMode};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn loaded_engine() -> (Engine, Vec<String>) {
    let data = generate(&BeirSpec::default());
    let mut engine = Engine::new(128);
    for (id, text) in &data.docs {
        engine.put(*id, text);
    }
    let queries = data.queries.iter().map(|(_, q)| q.clone()).collect();
    (engine, queries)
}

fn bench_search_modes(c: &mut Criterion) {
    let (engine, queries) = loaded_engine();
    let mut group = c.benchmark_group("rag_query");
    for (name, mode) in [
        ("bm25", SearchMode::Bm25),
        ("reranked_bm25", SearchMode::RerankedBm25 { candidates: 50 }),
        ("sbert", SearchMode::Sbert),
    ] {
        group.bench_function(name, |b| {
            let mut i = 0;
            b.iter(|| {
                let q = &queries[i % queries.len()];
                i += 1;
                black_box(engine.search(black_box(q), mode, 10))
            })
        });
    }
    group.finish();
}

fn bench_indexing(c: &mut Criterion) {
    let data = generate(&BeirSpec {
        topics: 4,
        docs_per_topic: 25,
        queries_per_topic: 1,
        doc_len: 48,
        seed: 7,
    });
    c.bench_function("bulk_index_100_docs", |b| {
        b.iter(|| {
            let mut engine = Engine::new(128);
            for (id, text) in &data.docs {
                engine.put(*id, text);
            }
            black_box(engine.len())
        })
    });
}

criterion_group!(benches, bench_search_modes, bench_indexing);
criterion_main!(benches);
