//! Criterion benches for the functional inference engine: decode rate of
//! the tiny model at f32 and int8, mirroring the paper's dtype comparison
//! at miniature scale.

use cllm_infer::generate::{generate, Sampling};
use cllm_infer::model::{TinyConfig, TinyModel};
use cllm_infer::tokenizer::BpeTokenizer;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_forward(c: &mut Criterion) {
    let model = TinyModel::init(&TinyConfig::test_small(), 42);
    let quant = model.quantized();
    c.bench_function("tiny_forward_f32", |b| {
        b.iter(|| {
            let mut cache = model.new_cache();
            black_box(model.forward(17, &mut cache))
        })
    });
    c.bench_function("tiny_forward_int8", |b| {
        b.iter(|| {
            let mut cache = quant.new_cache();
            black_box(quant.forward(17, &mut cache))
        })
    });
}

fn bench_decode_with_context(c: &mut Criterion) {
    let model = TinyModel::init(&TinyConfig::test_small(), 42);
    let mut group = c.benchmark_group("tiny_decode_by_context");
    for context in [8usize, 32, 96] {
        group.bench_function(format!("ctx{context}"), |b| {
            b.iter(|| {
                let mut cache = model.new_cache();
                for t in 0..context {
                    let _ = model.forward(t % 256, &mut cache);
                }
                black_box(model.forward(0, &mut cache))
            })
        });
    }
    group.finish();
}

fn bench_generate(c: &mut Criterion) {
    let model = TinyModel::init(&TinyConfig::test_small(), 42);
    c.bench_function("tiny_generate_16_tokens", |b| {
        b.iter(|| black_box(generate(&model, &[1, 2, 3], 16, Sampling::Greedy, 0)))
    });
}

fn bench_tokenizer(c: &mut Criterion) {
    let corpus = "the quick brown fox jumps over the lazy dog ".repeat(20);
    let tok = BpeTokenizer::train(&corpus, 50);
    c.bench_function("bpe_encode_1KiB", |b| {
        let text = corpus.as_str();
        b.iter(|| black_box(tok.encode(black_box(text))))
    });
}

criterion_group!(
    benches,
    bench_forward,
    bench_decode_with_context,
    bench_generate,
    bench_tokenizer
);
criterion_main!(benches);
