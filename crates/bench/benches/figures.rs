//! One criterion bench per paper table/figure: times the end-to-end
//! regeneration of each experiment (the harness the paper's plots would
//! be rebuilt from).

use cllm_core::experiments::all_experiments;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use std::time::Duration;

fn bench_every_figure(c: &mut Criterion) {
    let mut group = c.benchmark_group("paper_figures");
    // Experiments are deterministic; a few samples suffice and keep the
    // full-suite `cargo bench --workspace` run short.
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(500));
    group.measurement_time(Duration::from_secs(2));
    for (id, runner) in all_experiments() {
        group.bench_function(id, |b| b.iter(|| black_box(runner())));
    }
    group.finish();
}

criterion_group!(benches, bench_every_figure);
criterion_main!(benches);
