//! Criterion benches for the crypto substrate — the software analogue of
//! the TEE memory-encryption engines whose cost the paper measures.

use cllm_crypto::drbg::HashDrbg;
use cllm_crypto::kdf::derive_sealing_key;
use cllm_crypto::modes::{Ctr, Gcm};
use cllm_crypto::sha256::sha256;
use cllm_tee::sealed::{BlockDevice, SECTOR_BYTES};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sha256(c: &mut Criterion) {
    let small = vec![0xAAu8; 1024];
    let large = vec![0x55u8; 64 * 1024];
    c.bench_function("sha256_1KiB", |b| b.iter(|| sha256(black_box(&small))));
    c.bench_function("sha256_64KiB", |b| b.iter(|| sha256(black_box(&large))));
}

fn bench_gcm(c: &mut Criterion) {
    let gcm = Gcm::new(&[7u8; 16]);
    let iv = [1u8; 12];
    let data = vec![0x42u8; 4096];
    c.bench_function("aes_gcm_seal_4KiB", |b| {
        b.iter(|| gcm.encrypt(black_box(&iv), black_box(&data), b"aad"))
    });
    let (ct, tag) = gcm.encrypt(&iv, &data, b"aad");
    c.bench_function("aes_gcm_open_4KiB", |b| {
        b.iter(|| gcm.decrypt(black_box(&iv), black_box(&ct), b"aad", &tag))
    });
}

fn bench_ctr_and_device(c: &mut Criterion) {
    let ctr = Ctr::new(&[3u8; 16]);
    let iv = [9u8; 12];
    let mut buf = vec![0u8; 4096];
    c.bench_function("aes_ctr_4KiB", |b| {
        b.iter(|| ctr.apply(black_box(&iv), 0, black_box(&mut buf)))
    });
    let mut dev = BlockDevice::format(&[5u8; 16], 64);
    let sector = [0x5Au8; SECTOR_BYTES];
    c.bench_function("luks_sector_write_read", |b| {
        b.iter(|| {
            dev.write_sector(7, black_box(&sector));
            black_box(dev.read_sector(7))
        })
    });
}

fn bench_kdf_and_drbg(c: &mut Criterion) {
    c.bench_function("sealing_key_derivation", |b| {
        b.iter(|| derive_sealing_key(black_box(b"root"), &[1u8; 32], "weights"))
    });
    let mut drbg = HashDrbg::new(b"bench");
    let mut out = [0u8; 256];
    c.bench_function("drbg_fill_256B", |b| {
        b.iter(|| drbg.fill(black_box(&mut out)))
    });
}

criterion_group!(
    benches,
    bench_sha256,
    bench_gcm,
    bench_ctr_and_device,
    bench_kdf_and_drbg
);
criterion_main!(benches);
