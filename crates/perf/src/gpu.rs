//! GPU inference simulation (H100 / cGPU).
//!
//! Section V: confidential H100s encrypt PCIe transfers via a bounce
//! buffer and authenticate command buffers (extra kernel-launch latency);
//! HBM itself is *not* encrypted, so there is no steady-state bandwidth
//! derate — which is why cGPU overheads (7.5% → 4.4%) shrink as batch and
//! input sizes grow (Insight 10).

use crate::{calib, stats};
use cllm_hw::{DType, GpuModel};
use cllm_tee::platform::GpuTeeConfig;
use cllm_workload::phase::RequestSpec;
use cllm_workload::ModelConfig;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Result of simulating one request on a GPU.
#[derive(Debug, Clone)]
pub struct GpuSimResult {
    /// Prefill (first-token) time, seconds.
    pub prefill_s: f64,
    /// Per-token decode latencies, seconds.
    pub token_latencies_s: Vec<f64>,
    /// Z>3-filtered latency summary.
    pub summary: stats::Summary,
    /// Steady-state decode throughput, user-visible tokens/second.
    pub decode_tps: f64,
    /// End-to-end throughput including prefill.
    pub e2e_tps: f64,
}

impl GpuSimResult {
    /// Mean next-token latency after filtering.
    #[must_use]
    pub fn mean_token_latency_s(&self) -> f64 {
        self.summary.mean
    }
}

fn step_time(
    model: &ModelConfig,
    gpu: &GpuModel,
    cfg: &GpuTeeConfig,
    dtype: DType,
    batch: u64,
    new_tokens: u64,
    past_tokens: u64,
) -> f64 {
    let step = cllm_workload::phase::step_cost(model, dtype, batch, new_tokens, past_tokens);
    let peak = gpu.peak_flops(dtype) * calib::GPU_EFFICIENCY / dtype.compute_tax();
    let t_compute = step.flops / peak;
    let hbm_bw = if cfg.confidential {
        gpu.hbm_bw_confidential()
    } else {
        gpu.hbm_bw_bytes_per_s
    };
    let t_memory = step.total_bytes() / hbm_bw;

    // Kernel launches: authenticated command buffers add latency under CC.
    let launches = calib::GPU_LAUNCHES_PER_STEP;
    let t_launch = launches * gpu.launch_latency_s(cfg.confidential);

    // Host<->device token traffic through the (possibly bounce-buffered)
    // PCIe link.
    #[allow(clippy::cast_precision_loss)]
    let host_bytes = calib::GPU_STEP_HOST_BYTES_PER_SEQ * batch as f64 * new_tokens.max(1) as f64;
    let t_pcie =
        gpu.host_link
            .transfer_time_s(host_bytes, calib::GPU_STEP_TRANSFERS, cfg.confidential);

    let mut core = t_compute.max(t_memory);
    if cfg.confidential {
        core *= 1.0 + calib::GPU_CC_PROPORTIONAL;
    }
    core + t_launch + t_pcie + calib::GPU_STEP_SOFTWARE_US * 1e-6
}

/// Time of a single decode step for `batch` sequences at `context`
/// tokens of history on a (possibly confidential) GPU — the
/// per-iteration cost a serving scheduler pays (noise-free; used by
/// `cllm-serve`, mirroring [`crate::decode_step_time_s`] on CPUs).
#[must_use]
pub fn gpu_decode_step_time_s(
    model: &ModelConfig,
    dtype: DType,
    gpu: &GpuModel,
    cfg: &GpuTeeConfig,
    batch: u64,
    context: u64,
) -> f64 {
    step_time(model, gpu, cfg, dtype, batch.max(1), 1, context.max(1))
}

/// Time to prefill `prompt_tokens` for `batch` sequences on a GPU
/// (noise-free; used by `cllm-serve` for admission/prefill charging,
/// mirroring [`crate::prefill_time_s`] on CPUs).
#[must_use]
pub fn gpu_prefill_time_s(
    model: &ModelConfig,
    dtype: DType,
    gpu: &GpuModel,
    cfg: &GpuTeeConfig,
    batch: u64,
    prompt_tokens: u64,
) -> f64 {
    step_time(
        model,
        gpu,
        cfg,
        dtype,
        batch.max(1),
        prompt_tokens.max(1),
        0,
    )
}

/// Simulate one request on a GPU platform.
#[must_use]
pub fn simulate_gpu(
    model: &ModelConfig,
    req: &RequestSpec,
    dtype: DType,
    gpu: &GpuModel,
    cfg: &GpuTeeConfig,
) -> GpuSimResult {
    let mut rng = StdRng::seed_from_u64(
        calib::NOISE_SEED
            ^ (u64::from(cfg.confidential) << 1)
            ^ (req.batch << 8)
            ^ (req.input_tokens << 24),
    );
    // GPUs show far lower noise than CPU TEEs (no encrypted DRAM on the
    // critical path) — Section V-C.
    let sigma = if cfg.confidential { 0.004 } else { 0.003 };

    let prefill_s =
        step_time(model, gpu, cfg, dtype, req.batch, req.input_tokens, 0) * jitter(&mut rng, sigma);

    let batch = req.decode_batch();
    let mut token_latencies_s = Vec::with_capacity(req.output_tokens as usize);
    let mut total = 0.0;
    for pos in 0..req.output_tokens {
        let t = step_time(model, gpu, cfg, dtype, batch, 1, req.input_tokens + pos)
            * jitter(&mut rng, sigma);
        token_latencies_s.push(t);
        total += t;
    }

    let summary = stats::summarize_filtered(&token_latencies_s);
    #[allow(clippy::cast_precision_loss)]
    let decode_tps = req.batch as f64 / summary.mean;
    #[allow(clippy::cast_precision_loss)]
    let e2e_tps = (req.batch * req.output_tokens) as f64 / (prefill_s + total);

    GpuSimResult {
        prefill_s,
        token_latencies_s,
        summary,
        decode_tps,
        e2e_tps,
    }
}

/// Whether a model's weights fit across `num_gpus` devices at `dtype`.
#[must_use]
pub fn fits_on_gpus(model: &ModelConfig, dtype: DType, gpu: &GpuModel, num_gpus: u32) -> bool {
    model.weight_bytes(dtype) * 1.1 <= gpu.hbm_capacity_bytes * f64::from(num_gpus)
}

/// HBM bytes left for the KV page pool after the weights (with the same
/// 10% working margin [`fits_on_gpus`] reserves). Zero when the model
/// does not fit on one device.
#[must_use]
pub fn gpu_kv_budget_bytes(model: &ModelConfig, dtype: DType, gpu: &GpuModel) -> f64 {
    (gpu.hbm_capacity_bytes - model.weight_bytes(dtype) * 1.1).max(0.0)
}

/// Time to move `bytes` of KV cache between HBM and host memory — the
/// cost of swapping a preempted sequence out (or back in) under the
/// `swap` eviction policy. Under confidential compute the traffic
/// detours through the encrypted PCIe bounce buffer, which is what makes
/// swap-preemption expensive on cGPUs.
#[must_use]
pub fn gpu_kv_swap_time_s(gpu: &GpuModel, cfg: &GpuTeeConfig, bytes: f64) -> f64 {
    gpu.host_link
        .transfer_time_s(bytes.max(0.0), 1.0, cfg.confidential)
}

/// Stall a decode step pays when `excess_bytes` of resident KV exceed
/// the HBM budget: the overflow is re-streamed over the (possibly
/// bounce-buffered) host link every pass, mirroring the SGX EPC-paging
/// model on the GPU side.
#[must_use]
pub fn gpu_kv_pressure_stall_s(gpu: &GpuModel, cfg: &GpuTeeConfig, excess_bytes: f64) -> f64 {
    let excess = excess_bytes.max(0.0);
    if excess <= 0.0 {
        return 0.0;
    }
    gpu.host_link.transfer_time_s(excess, 1.0, cfg.confidential)
}

/// Simulate tensor-parallel inference across `num_gpus` devices.
///
/// Each device holds `1/num_gpus` of the weights and KV cache; every
/// decoder layer performs two allreduces over the inter-GPU fabric.
/// Under confidential compute the NVLink fabric is unprotected
/// (Section V-D4), so secure traffic detours through the host at
/// ~3 GB/s — the mechanism that makes confidential scale-out
/// uneconomical for throughput-oriented batches.
///
/// # Panics
///
/// Panics if `num_gpus == 0` or the model does not fit.
#[must_use]
pub fn simulate_multi_gpu(
    model: &ModelConfig,
    req: &RequestSpec,
    dtype: DType,
    gpu: &GpuModel,
    cfg: &GpuTeeConfig,
    num_gpus: u32,
) -> GpuSimResult {
    assert!(num_gpus >= 1, "need at least one GPU");
    assert!(
        fits_on_gpus(model, dtype, gpu, num_gpus),
        "{} does not fit on {num_gpus} x {}",
        model.name,
        gpu.name
    );
    let mut rng = StdRng::seed_from_u64(
        calib::NOISE_SEED
            ^ (u64::from(cfg.confidential) << 1)
            ^ (u64::from(num_gpus) << 40)
            ^ (req.batch << 8),
    );
    let sigma = 0.004;
    let n = f64::from(num_gpus);
    let fabric = cllm_hw::Interconnect::nvlink4_h100();

    let shard_step = |batch: u64, new_tokens: u64, past: u64| -> f64 {
        let step = cllm_workload::phase::step_cost(model, dtype, batch, new_tokens, past);
        let peak = gpu.peak_flops(dtype) * calib::GPU_EFFICIENCY / dtype.compute_tax() * n;
        let t_compute = step.flops / peak;
        let hbm_bw = if cfg.confidential {
            gpu.hbm_bw_confidential()
        } else {
            gpu.hbm_bw_bytes_per_s
        } * n;
        let t_memory = step.total_bytes() / hbm_bw;
        let mut core = t_compute.max(t_memory);
        if cfg.confidential {
            core *= 1.0 + calib::GPU_CC_PROPORTIONAL;
        }
        // Two allreduces per layer over the fabric (host detour under CC).
        #[allow(clippy::cast_precision_loss)]
        let comm_bytes = 2.0
            * model.layers as f64
            * (batch * new_tokens * model.hidden) as f64
            * dtype.act_bytes();
        #[allow(clippy::cast_precision_loss)]
        let transfers = 2.0 * model.layers as f64;
        let t_comm = if num_gpus > 1 {
            fabric.transfer_time_s(comm_bytes, transfers, cfg.confidential)
        } else {
            0.0
        };
        let t_launch = calib::GPU_LAUNCHES_PER_STEP * gpu.launch_latency_s(cfg.confidential);
        core + t_comm + t_launch + calib::GPU_STEP_SOFTWARE_US * 1e-6
    };

    let prefill_s = shard_step(req.batch, req.input_tokens, 0) * jitter(&mut rng, sigma);
    let batch = req.decode_batch();
    let mut token_latencies_s = Vec::with_capacity(req.output_tokens as usize);
    let mut total = 0.0;
    for pos in 0..req.output_tokens {
        let t = shard_step(batch, 1, req.input_tokens + pos) * jitter(&mut rng, sigma);
        token_latencies_s.push(t);
        total += t;
    }
    let summary = stats::summarize_filtered(&token_latencies_s);
    #[allow(clippy::cast_precision_loss)]
    let decode_tps = req.batch as f64 / summary.mean;
    #[allow(clippy::cast_precision_loss)]
    let e2e_tps = (req.batch * req.output_tokens) as f64 / (prefill_s + total);
    GpuSimResult {
        prefill_s,
        token_latencies_s,
        summary,
        decode_tps,
        e2e_tps,
    }
}

fn jitter(rng: &mut StdRng, sigma: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z - sigma * sigma / 2.0).exp()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_hw::presets;
    use cllm_workload::zoo;

    fn run(confidential: bool, batch: u64, input: u64) -> GpuSimResult {
        let cfg = if confidential {
            GpuTeeConfig::confidential()
        } else {
            GpuTeeConfig::native()
        };
        simulate_gpu(
            &zoo::llama2_7b(),
            &RequestSpec::new(batch, input, 64),
            DType::Bf16,
            &presets::h100_nvl(),
            &cfg,
        )
    }

    #[test]
    fn cc_costs_single_digit_percent() {
        let raw = run(false, 16, 512);
        let cc = run(true, 16, 512);
        let overhead = cc.summary.mean / raw.summary.mean - 1.0;
        assert!((0.01..0.15).contains(&overhead), "cGPU overhead {overhead}");
    }

    #[test]
    fn overhead_shrinks_with_batch() {
        // Insight 10.
        let small = run(true, 1, 128).summary.mean / run(false, 1, 128).summary.mean;
        let large = run(true, 128, 128).summary.mean / run(false, 128, 128).summary.mean;
        assert!(large < small, "batch 128 {large} !< batch 1 {small}");
    }

    #[test]
    fn gpu_much_faster_than_cpu() {
        let gpu = run(false, 1, 512);
        // H100 decode of a 7B at bf16 should be a few ms/token.
        assert!(gpu.summary.mean < 0.02, "token {}", gpu.summary.mean);
    }

    #[test]
    fn throughput_scales_with_batch() {
        let a = run(true, 1, 128);
        let b = run(true, 64, 128);
        assert!(b.decode_tps > 10.0 * a.decode_tps);
    }

    #[test]
    fn native_multi_gpu_scales_cc_does_not() {
        // Section V-D4: confidential instances route inter-GPU traffic
        // through the host at ~3 GB/s.
        let m70 = zoo::llama2_70b();
        let req = RequestSpec::new(64, 128, 32);
        let gpu = presets::h100_nvl();
        let native2 = simulate_multi_gpu(&m70, &req, DType::Bf16, &gpu, &GpuTeeConfig::native(), 2);
        let cc2 = simulate_multi_gpu(
            &m70,
            &req,
            DType::Bf16,
            &gpu,
            &GpuTeeConfig::confidential(),
            2,
        );
        let penalty = native2.decode_tps / cc2.decode_tps;
        assert!(
            penalty > 1.5,
            "CC scale-out should be crippled: only {penalty:.2}x slower"
        );
    }

    #[test]
    fn capacity_check_enforced() {
        let m70 = zoo::llama2_70b();
        let gpu = presets::h100_nvl();
        assert!(!fits_on_gpus(&m70, DType::Bf16, &gpu, 1));
        assert!(fits_on_gpus(&m70, DType::Bf16, &gpu, 2));
        assert!(fits_on_gpus(&zoo::llama2_7b(), DType::Bf16, &gpu, 1));
    }

    #[test]
    fn serving_step_helpers_are_noise_free_and_cc_taxed() {
        let model = zoo::llama2_7b();
        let gpu = presets::h100_nvl();
        let native = GpuTeeConfig::native();
        let cc = GpuTeeConfig::confidential();
        let a = gpu_decode_step_time_s(&model, DType::Bf16, &gpu, &cc, 8, 512);
        let b = gpu_decode_step_time_s(&model, DType::Bf16, &gpu, &cc, 8, 512);
        assert_eq!(a, b, "step helper must be deterministic (no jitter)");
        assert!(
            a > gpu_decode_step_time_s(&model, DType::Bf16, &gpu, &native, 8, 512),
            "confidential mode must cost decode time"
        );
        let p = gpu_prefill_time_s(&model, DType::Bf16, &gpu, &cc, 1, 256);
        assert!(p > 0.0 && p.is_finite());
        // Degenerate shapes clamp instead of dividing by zero.
        assert!(gpu_decode_step_time_s(&model, DType::Bf16, &gpu, &cc, 0, 0).is_finite());
    }

    #[test]
    fn kv_budget_and_swap_pricing() {
        let model = zoo::llama2_7b();
        let gpu = presets::h100_nvl();
        let budget = gpu_kv_budget_bytes(&model, DType::Bf16, &gpu);
        assert!(budget > 0.0 && budget < gpu.hbm_capacity_bytes);
        // A 70B at bf16 does not fit on one device: no KV budget at all.
        assert_eq!(
            gpu_kv_budget_bytes(&zoo::llama2_70b(), DType::Bf16, &gpu),
            0.0
        );

        let gib = 1024.0 * 1024.0 * 1024.0;
        let cc = gpu_kv_swap_time_s(&gpu, &GpuTeeConfig::confidential(), gib);
        let native = gpu_kv_swap_time_s(&gpu, &GpuTeeConfig::native(), gib);
        assert!(
            cc > native,
            "bounce buffer must make CC swaps dearer: {cc} !> {native}"
        );
        assert!(gpu_kv_pressure_stall_s(&gpu, &GpuTeeConfig::confidential(), gib) > 0.0);
        assert_eq!(
            gpu_kv_pressure_stall_s(&gpu, &GpuTeeConfig::native(), -1.0),
            0.0
        );
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_model_panics() {
        let _ = simulate_multi_gpu(
            &zoo::llama2_70b(),
            &RequestSpec::new(1, 32, 4),
            DType::Bf16,
            &presets::h100_nvl(),
            &GpuTeeConfig::native(),
            1,
        );
    }
}
