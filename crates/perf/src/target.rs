//! Execution targets: which CPU, how many sockets/cores, which ISA.

use crate::Framework;
use cllm_hw::{CpuModel, Isa, NumaTopology};
use serde::{Deserialize, Serialize};

/// A concrete CPU deployment target for a simulation run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuTarget {
    /// The CPU model (per socket).
    pub cpu: CpuModel,
    /// Socket topology and interconnect.
    pub topology: NumaTopology,
    /// Cores used per socket (the paper sweeps this in Figure 12).
    pub cores_per_socket: u32,
    /// Whether AMX is enabled (Figure 8 disables it).
    pub amx_enabled: bool,
    /// Inference framework.
    pub framework: Framework,
}

impl CpuTarget {
    /// EMR1, one socket, all cores, AMX, IPEX — the Figure 3/4 setup.
    #[must_use]
    pub fn emr1_single_socket() -> Self {
        let cpu = cllm_hw::presets::emr1();
        CpuTarget {
            cores_per_socket: cpu.cores_per_socket,
            cpu,
            topology: NumaTopology::single_socket(),
            amx_enabled: true,
            framework: Framework::Ipex,
        }
    }

    /// EMR1, both sockets — the Figure 5/6 setup.
    #[must_use]
    pub fn emr1_dual_socket() -> Self {
        CpuTarget {
            topology: NumaTopology::dual_socket(),
            ..Self::emr1_single_socket()
        }
    }

    /// EMR2, one socket — the Figure 7/9/10/12 setup.
    #[must_use]
    pub fn emr2_single_socket() -> Self {
        let cpu = cllm_hw::presets::emr2();
        CpuTarget {
            cores_per_socket: cpu.cores_per_socket,
            cpu,
            topology: NumaTopology::single_socket(),
            amx_enabled: true,
            framework: Framework::Ipex,
        }
    }

    /// EMR2, both sockets — the Figure 8 latency setup.
    #[must_use]
    pub fn emr2_dual_socket() -> Self {
        CpuTarget {
            topology: NumaTopology::dual_socket(),
            ..Self::emr2_single_socket()
        }
    }

    /// Restrict the number of cores per socket (Figure 12's sweep).
    #[must_use]
    pub fn with_cores(mut self, cores: u32) -> Self {
        self.cores_per_socket = cores.clamp(1, self.cpu.cores_per_socket);
        self
    }

    /// Enable/disable AMX (Figure 8's ablation).
    #[must_use]
    pub fn with_amx(mut self, on: bool) -> Self {
        self.amx_enabled = on;
        self
    }

    /// Select the framework (Figure 3's sweep).
    #[must_use]
    pub fn with_framework(mut self, fw: Framework) -> Self {
        self.framework = fw;
        self
    }

    /// The best ISA available to kernels on this target.
    #[must_use]
    pub fn hw_isa(&self) -> Isa {
        if self.amx_enabled {
            self.cpu.best_isa
        } else {
            Isa::Avx512
        }
    }

    /// Total cores in use across sockets.
    #[must_use]
    pub fn total_cores(&self) -> u32 {
        self.cores_per_socket * self.topology.sockets
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_use_all_cores() {
        assert_eq!(CpuTarget::emr1_single_socket().total_cores(), 32);
        assert_eq!(CpuTarget::emr1_dual_socket().total_cores(), 64);
        assert_eq!(CpuTarget::emr2_single_socket().total_cores(), 60);
    }

    #[test]
    fn with_cores_clamps() {
        let t = CpuTarget::emr2_single_socket().with_cores(1000);
        assert_eq!(t.cores_per_socket, 60);
        let t = CpuTarget::emr2_single_socket().with_cores(0);
        assert_eq!(t.cores_per_socket, 1);
    }

    #[test]
    fn amx_toggle_changes_isa() {
        assert_eq!(CpuTarget::emr2_single_socket().hw_isa(), Isa::Amx);
        assert_eq!(
            CpuTarget::emr2_single_socket().with_amx(false).hw_isa(),
            Isa::Avx512
        );
    }
}
