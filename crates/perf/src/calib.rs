//! Calibration constants.
//!
//! Each constant is tied to a figure or insight of the paper; integration
//! tests (`tests/paper_bands.rs` at the workspace root) assert that the
//! simulator reproduces the published bands with these values. The physics
//! (roofline structure, footprint arithmetic, per-mechanism costs) lives
//! in the simulator; these constants set the magnitudes that depend on
//! unpublished micro-details of the testbed.

pub mod measured;

/// Fraction of DRAM page-walk latency *not* hidden by out-of-order
/// execution and concurrent hardware walkers during streaming access.
pub const WALK_EXPOSURE: f64 = 0.8;

/// Per-step software tax of running on transparent 2 MiB hugepages instead
/// of reserved 1 GiB pages: khugepaged scanning, promotion faults and
/// compaction. Figure 6 measures the full VM-TH vs VM-FH gap at 3.19-5.20%;
/// the page-walk model covers part of it and this constant the rest.
pub const THP_MANAGEMENT_TAX: f64 = 0.012;

/// Exposure of the MEE latency adder as a function of decode batch:
/// `exposure = LAT_EXPOSURE_BATCH0 / (LAT_EXPOSURE_BATCH0 + batch)`.
/// Small batches are memory-latency-bound (GEMV chains), so the AES
/// pipeline latency shows; large batches stream and hide it. This drives
/// the latency-vs-throughput overhead asymmetry of Figure 4.
pub const LAT_EXPOSURE_BATCH0: f64 = 1.6;

/// Fraction of the algorithmically-required tensor-parallel allreduce
/// traffic that crosses sockets in a 2-socket oneCCL deployment.
pub const ALLREDUCE_CROSS_FRACTION: f64 = 1.0;

/// Number of allreduce operations per decoder layer in tensor-parallel
/// inference (one after attention, one after the MLP).
pub const ALLREDUCES_PER_LAYER: f64 = 2.0;

/// Per-core efficiency of IPEX AMX GEMM kernels relative to peak tile
/// throughput (sustained / theoretical; includes tile load/store and
/// re-layout overheads).
pub const IPEX_AMX_EFFICIENCY: f64 = 0.42;

/// Relative compute efficiency of IPEX's int8 path *without* AMX: no AVX
/// implementation exists (Section IV-C), so execution falls back to a
/// slow reference kernel. Calibrated to reproduce "up to 96% of overhead
/// in throughput and 1700% in latency for int8".
pub const IPEX_INT8_NO_AMX_EFFICIENCY: f64 = 0.17;

/// Extra activation-traffic factor of AVX-512 (non-AMX) kernels: without
/// tile registers, blocked GEMMs spill more intermediate data, raising
/// NUMA/memory traffic. Explains why AMX *reduces* TDX overheads
/// (Section IV-C: "lower NUMA traffic caused by AMX").
pub const NO_AMX_ACT_TRAFFIC: f64 = 1.7;

/// Relative AMX/GEMM efficiency of CPU attention kernels compared to
/// plain linear layers: flash-style tiled attention interleaves softmax,
/// masking and small reductions with the matmuls, so the tile units stay
/// partially idle. This is what makes long-context prefill so expensive
/// on CPUs relative to GPUs (Figure 13's cost crossover).
pub const ATTN_GEMM_EFFICIENCY: f64 = 0.45;

/// Per-decode-step software overhead of the serving stack (Python,
/// scheduler, sampling) in microseconds, for the IPEX path.
pub const FRAMEWORK_STEP_US: f64 = 900.0;

/// Effective GPU kernel launches per decode step under vLLM with CUDA
/// graphs (fused; far fewer than raw layer count).
pub const GPU_LAUNCHES_PER_STEP: f64 = 64.0;

/// GPU tensor-core sustained efficiency under vLLM.
pub const GPU_EFFICIENCY: f64 = 0.55;

/// Host<->device bytes exchanged per decode step per sequence (token ids
/// down, sampled token + metadata up).
pub const GPU_STEP_HOST_BYTES_PER_SEQ: f64 = 512.0;

/// Host<->device transfers per decode step (one down, one up).
pub const GPU_STEP_TRANSFERS: f64 = 2.0;

/// Per-decode-step software overhead of the GPU serving stack (vLLM
/// scheduler, sampling, Python) in microseconds. This is why measured
/// H100 decode rates sit well below the HBM roofline at batch 1.
pub const GPU_STEP_SOFTWARE_US: f64 = 2200.0;

/// Proportional slowdown of GPU execution under confidential compute:
/// protected DMA descriptors, doorbells and synchronization on every
/// kernel. This is the floor the paper's cGPU overhead approaches at
/// large batch/input sizes (~4.4%, Figure 11).
pub const GPU_CC_PROPORTIONAL: f64 = 0.045;

/// Fraction of local DRAM bandwidth that remote (cross-socket) accesses
/// can sustain through UPI per direction, before the crypto derate.
pub const REMOTE_ACCESS_BW_FRACTION: f64 = 0.55;

/// Latency-exposure multiplier for small vector ops (layer norms, RoPE):
/// element-wise passes over short vectors are dependent-access chains
/// that cannot hide the MEE pipeline latency, which is why Figure 7 finds
/// the *largest relative* TDX overheads in the input/post-attention
/// norms (while they remain ~3% of block time).
pub const SMALL_OP_LAT_EXPOSURE: f64 = 4.0;

/// Per-invocation dispatch cost of a small vector op in microseconds:
/// OpenMP fork/barrier for the norm/RoPE kernels. This is why the two
/// layer norms account for ~3% of block time in Figure 7 despite moving
/// almost no data.
pub const VECTOR_OP_DISPATCH_US: f64 = 9.0;

/// Extra fraction a TDX guest pays on thread-barrier dispatch (IPIs and
/// timer interrupts take vmexit round trips through the TDX module).
pub const TDX_BARRIER_PENALTY: f64 = 0.45;

/// Extra fraction Gramine-SGX pays on thread-barrier dispatch (futex
/// paths that exit the enclave).
pub const SGX_BARRIER_PENALTY: f64 = 0.30;

/// Sustained bandwidth of a KV-cache swap between protected and ordinary
/// DRAM on platforms without an EPC-style paging path (TDX/SEV/bare): a
/// memcpy-class copy bounded by one socket's streaming bandwidth. SGX
/// swaps instead pay the per-byte EPC paging cost, and GPUs the bounce-
/// buffered PCIe link, so this constant only prices the VM-TEE/baseline
/// arms of the preemption model.
pub const KV_SWAP_BW_BYTES_PER_S: f64 = 50.0e9;

/// Seed namespace for the deterministic noise model.
pub const NOISE_SEED: u64 = 0x00C1_1A0F_EE5E_ED00;

#[cfg(test)]
mod tests {
    #[test]
    #[allow(clippy::assertions_on_constants)]
    fn constants_in_sane_ranges() {
        assert!((0.0..=1.0).contains(&super::WALK_EXPOSURE));
        assert!((0.0..0.1).contains(&super::THP_MANAGEMENT_TAX));
        assert!(super::IPEX_AMX_EFFICIENCY > super::IPEX_INT8_NO_AMX_EFFICIENCY * 2.0);
        assert!(super::NO_AMX_ACT_TRAFFIC >= 1.0);
        assert!((0.0..=1.0).contains(&super::GPU_EFFICIENCY));
        assert!((0.0..=1.0).contains(&super::REMOTE_ACCESS_BW_FRACTION));
    }
}
