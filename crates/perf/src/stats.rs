//! Statistics helpers: summaries, Z-score outlier filtering.
//!
//! The paper excludes per-token outliers with a Z-score > 3 (~0.64% of
//! samples) caused by memory-encryption variability before plotting the
//! violins of Figure 4.

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Summary {
    /// Sample count after filtering.
    pub n: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub median: f64,
    /// Standard deviation (population).
    pub std: f64,
    /// 5th percentile.
    pub p5: f64,
    /// 95th percentile.
    pub p95: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
}

/// Compute mean and population standard deviation.
#[must_use]
pub fn mean_std(samples: &[f64]) -> (f64, f64) {
    if samples.is_empty() {
        return (f64::NAN, f64::NAN);
    }
    let n = samples.len() as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

/// Percentile by linear interpolation on the sorted sample (`q` in 0..=1,
/// clamped). The input **must** be sorted ascending — debug builds check
/// this; release builds trust the caller (the check is linear and this
/// sits on the per-token hot path).
#[must_use]
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    debug_assert!(
        sorted.windows(2).all(|w| w[0] <= w[1]),
        "percentile() requires ascending sorted input"
    );
    if sorted.is_empty() {
        return f64::NAN;
    }
    let pos = q.clamp(0.0, 1.0) * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Remove samples with |Z| > `z_max` (the paper uses 3.0).
#[must_use]
pub fn z_filter(samples: &[f64], z_max: f64) -> Vec<f64> {
    let (mean, std) = mean_std(samples);
    if !std.is_finite() || std == 0.0 {
        return samples.to_vec();
    }
    samples
        .iter()
        .copied()
        .filter(|x| ((x - mean) / std).abs() <= z_max)
        .collect()
}

/// Summarize after Z>3 filtering, as the paper does.
#[must_use]
pub fn summarize_filtered(samples: &[f64]) -> Summary {
    let kept = z_filter(samples, 3.0);
    summarize(&kept)
}

/// Summarize a sample without filtering.
#[must_use]
pub fn summarize(samples: &[f64]) -> Summary {
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
    let (mean, std) = mean_std(&sorted);
    Summary {
        n: sorted.len(),
        mean,
        median: percentile(&sorted, 0.5),
        std,
        p5: percentile(&sorted, 0.05),
        p95: percentile(&sorted, 0.95),
        min: sorted.first().copied().unwrap_or(f64::NAN),
        max: sorted.last().copied().unwrap_or(f64::NAN),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_std_basic() {
        let (m, s) = mean_std(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((m - 5.0).abs() < 1e-12);
        assert!((s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let s = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&s, 0.0), 1.0);
        assert_eq!(percentile(&s, 1.0), 4.0);
        assert!((percentile(&s, 0.5) - 2.5).abs() < 1e-12);
    }

    #[test]
    fn z_filter_drops_outliers() {
        let mut samples = vec![10.0; 200];
        samples.push(1000.0);
        let kept = z_filter(&samples, 3.0);
        assert_eq!(kept.len(), 200);
        assert!(kept.iter().all(|&x| x == 10.0));
    }

    #[test]
    fn z_filter_keeps_uniform_sample() {
        let samples = vec![5.0; 50];
        assert_eq!(z_filter(&samples, 3.0).len(), 50);
    }

    #[test]
    fn summary_orders_percentiles() {
        let samples: Vec<f64> = (1..=1000).map(f64::from).collect();
        let s = summarize(&samples);
        assert!(s.min <= s.p5 && s.p5 <= s.median);
        assert!(s.median <= s.p95 && s.p95 <= s.max);
        assert_eq!(s.n, 1000);
    }

    #[test]
    fn empty_sample_is_nan() {
        let s = summarize(&[]);
        assert!(s.mean.is_nan());
        assert_eq!(s.n, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "sorted")]
    fn percentile_rejects_unsorted_in_debug() {
        let _ = percentile(&[3.0, 1.0, 2.0], 0.5);
    }

    #[test]
    fn percentile_single_element() {
        for q in [0.0, 0.05, 0.5, 0.95, 1.0] {
            assert_eq!(percentile(&[7.0], q), 7.0, "q={q}");
        }
    }

    #[test]
    fn percentile_clamps_q_outside_unit_interval() {
        let s = [1.0, 2.0, 3.0];
        assert_eq!(percentile(&s, -0.5), 1.0);
        assert_eq!(percentile(&s, 1.5), 3.0);
    }

    #[test]
    fn summarize_filtered_single_sample() {
        let s = summarize_filtered(&[0.25]);
        assert_eq!(s.n, 1);
        for v in [s.mean, s.median, s.p5, s.p95, s.min, s.max] {
            assert_eq!(v, 0.25);
        }
        assert_eq!(s.std, 0.0);
    }

    #[test]
    fn summarize_filtered_all_equal_keeps_everything() {
        let s = summarize_filtered(&[4.0; 32]);
        assert_eq!(s.n, 32);
        assert_eq!((s.p5, s.median, s.p95), (4.0, 4.0, 4.0));
        assert_eq!((s.min, s.max, s.std), (4.0, 4.0, 0.0));
    }

    #[test]
    fn summarize_filtered_handles_unsorted_input() {
        // Callers hand summarize_filtered raw (unsorted) latencies; the
        // q=0/q=1 boundary percentiles must still equal min and max.
        let raw = [5.0, 1.0, 4.0, 2.0, 3.0];
        let s = summarize_filtered(&raw);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 0.0), s.min);
        assert_eq!(percentile(&[1.0, 2.0, 3.0, 4.0, 5.0], 1.0), s.max);
        assert_eq!((s.min, s.max, s.median), (1.0, 5.0, 3.0));
    }
}
