//! Inference-framework models.
//!
//! Figure 3 compares Hugging Face `transformers`, vLLM, Llama.cpp and
//! Intel's IPEX on CPU; IPEX wins by ~2x thanks to AMX kernels and oneCCL
//! (Insight 3). Frameworks differ in three modelled dimensions: sustained
//! compute efficiency per ISA/dtype, extra activation traffic, and
//! per-step software overhead.

use crate::calib;
use cllm_hw::{DType, Isa};
use serde::{Deserialize, Serialize};

/// A CPU inference framework.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Framework {
    /// Hugging Face `transformers` (eager PyTorch).
    HuggingFace,
    /// vLLM's CPU backend (paged attention, AVX-512 kernels).
    Vllm,
    /// Llama.cpp with mixed-precision GGUF quantization.
    LlamaCpp,
    /// Intel Extension for PyTorch: AMX + oneDNN + oneCCL (the paper's
    /// selected framework).
    Ipex,
}

impl Framework {
    /// All frameworks in Figure 3's comparison.
    #[must_use]
    pub fn all() -> [Framework; 4] {
        [
            Framework::HuggingFace,
            Framework::Vllm,
            Framework::LlamaCpp,
            Framework::Ipex,
        ]
    }

    /// Figure-legend label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Framework::HuggingFace => "HF",
            Framework::Vllm => "vLLM",
            Framework::LlamaCpp => "llama.cpp",
            Framework::Ipex => "IPEX",
        }
    }

    /// The ISA this framework's GEMM kernels actually use, given what the
    /// hardware offers. Only IPEX engages AMX; the others ship AVX-512
    /// kernels at best. IPEX int8 *requires* AMX — without it execution
    /// falls to a reference path (Section IV-C).
    #[must_use]
    pub fn effective_isa(self, hw_best: Isa, dtype: DType) -> Isa {
        match self {
            Framework::Ipex => {
                if hw_best == Isa::Amx && hw_best.has_native_tiles(dtype) {
                    Isa::Amx
                } else if dtype == DType::Int8 {
                    // No AVX int8 path in IPEX.
                    Isa::Scalar
                } else {
                    Isa::Avx512.min_with(hw_best)
                }
            }
            Framework::Vllm | Framework::LlamaCpp | Framework::HuggingFace => {
                Isa::Avx512.min_with(hw_best)
            }
        }
    }

    /// Sustained fraction of the ISA's peak the framework's kernels reach.
    #[must_use]
    pub fn compute_efficiency(self, isa: Isa, dtype: DType) -> f64 {
        match self {
            Framework::Ipex => match isa {
                Isa::Amx => calib::IPEX_AMX_EFFICIENCY,
                Isa::Scalar if dtype == DType::Int8 => calib::IPEX_INT8_NO_AMX_EFFICIENCY,
                _ => 0.50,
            },
            Framework::Vllm => 0.42,
            Framework::LlamaCpp => 0.38,
            Framework::HuggingFace => 0.22,
        }
    }

    /// Multiplier on activation traffic (kernel fusion quality; tile
    /// registers avoid spills).
    #[must_use]
    pub fn act_traffic_factor(self, isa: Isa) -> f64 {
        let base = match self {
            Framework::Ipex => 1.0,
            Framework::Vllm => 1.25,
            Framework::LlamaCpp => 1.35,
            Framework::HuggingFace => 2.2,
        };
        if isa == Isa::Amx {
            base
        } else {
            base * calib::NO_AMX_ACT_TRAFFIC
        }
    }

    /// Per-decode-step software overhead in seconds.
    #[must_use]
    pub fn step_overhead_s(self) -> f64 {
        let us = match self {
            Framework::Ipex => calib::FRAMEWORK_STEP_US,
            Framework::Vllm => calib::FRAMEWORK_STEP_US * 1.2,
            Framework::LlamaCpp => calib::FRAMEWORK_STEP_US * 0.5,
            Framework::HuggingFace => calib::FRAMEWORK_STEP_US * 3.0,
        };
        us * 1e-6
    }

    /// Effective weight bytes factor: Llama.cpp's mixed quantization packs
    /// weights to ~4.5 bits/param regardless of the nominal dtype.
    #[must_use]
    pub fn weight_bytes_factor(self, dtype: DType) -> f64 {
        match self {
            Framework::LlamaCpp => 0.56 / dtype.bytes() * 2.0, // ~4.5 bit
            _ => 1.0,
        }
    }
}

/// Ordering helper on ISA capability.
trait IsaExt {
    fn min_with(self, other: Isa) -> Isa;
}

impl IsaExt for Isa {
    fn min_with(self, other: Isa) -> Isa {
        fn rank(i: Isa) -> u8 {
            match i {
                Isa::Scalar => 0,
                Isa::Avx2 => 1,
                Isa::Avx512 => 2,
                Isa::Amx => 3,
            }
        }
        if rank(self) <= rank(other) {
            self
        } else {
            other
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_ipex_uses_amx() {
        for fw in Framework::all() {
            let isa = fw.effective_isa(Isa::Amx, DType::Bf16);
            if fw == Framework::Ipex {
                assert_eq!(isa, Isa::Amx);
            } else {
                assert_eq!(isa, Isa::Avx512);
            }
        }
    }

    #[test]
    fn ipex_int8_without_amx_falls_to_scalar() {
        // Section IV-C: "a lack of AVX implementation for int8 in IPEX".
        assert_eq!(
            Framework::Ipex.effective_isa(Isa::Avx512, DType::Int8),
            Isa::Scalar
        );
        assert_eq!(
            Framework::Ipex.effective_isa(Isa::Avx512, DType::Bf16),
            Isa::Avx512
        );
    }

    #[test]
    fn ipex_is_most_efficient() {
        let ipex = Framework::Ipex.compute_efficiency(Isa::Amx, DType::Bf16)
            * Isa::Amx.flops_per_cycle(DType::Bf16);
        for other in [Framework::Vllm, Framework::LlamaCpp, Framework::HuggingFace] {
            let eff = other.compute_efficiency(Isa::Avx512, DType::Bf16)
                * Isa::Avx512.flops_per_cycle(DType::Bf16);
            assert!(ipex > 2.0 * eff, "{other:?}");
        }
    }

    #[test]
    fn hf_has_most_traffic_and_overhead() {
        assert!(
            Framework::HuggingFace.act_traffic_factor(Isa::Avx512)
                > Framework::Vllm.act_traffic_factor(Isa::Avx512)
        );
        assert!(Framework::HuggingFace.step_overhead_s() > Framework::Ipex.step_overhead_s());
    }

    #[test]
    fn llamacpp_quantization_shrinks_weights() {
        assert!(Framework::LlamaCpp.weight_bytes_factor(DType::Bf16) < 1.0);
        assert!((Framework::Ipex.weight_bytes_factor(DType::Bf16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amx_reduces_act_traffic() {
        assert!(
            Framework::Ipex.act_traffic_factor(Isa::Amx)
                < Framework::Ipex.act_traffic_factor(Isa::Avx512)
        );
    }
}
