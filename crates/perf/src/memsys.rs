//! Effective memory-system model: bandwidth under encryption, page-walk
//! costs, NUMA placement and hugepage policies.

use crate::calib;
use crate::CpuTarget;
use cllm_hw::PageSize;
use cllm_tee::CpuTeeConfig;

/// The resolved memory system for one (target, TEE, footprint) triple.
///
/// Built once per simulation; [`MemSystem::memory_time`] then prices the
/// byte traffic of each operator.
#[derive(Debug, Clone, PartialEq)]
pub struct MemSystem {
    /// Aggregate local DRAM bandwidth across the sockets in use, bytes/s
    /// (already derated by the MEE).
    pub local_bw: f64,
    /// Sustainable cross-socket bandwidth for remote accesses, bytes/s
    /// (already derated by UPI inline crypto when confidential).
    pub remote_bw: f64,
    /// Fraction of accesses landing on a remote NUMA domain.
    pub remote_fraction: f64,
    /// Address-translation cost per byte streamed, seconds.
    pub translation_s_per_byte: f64,
    /// MEE latency adder relative to DRAM latency (0 when no MEE).
    pub latency_factor: f64,
    /// Multiplicative tax of transparent-hugepage management.
    pub thp_tax: f64,
    /// SGX multi-socket pathology: all memory on one node.
    pub single_node_alloc: bool,
    /// Per-socket (not aggregate) local bandwidth, for the single-node
    /// bottleneck path.
    per_socket_bw: f64,
    /// Extra exposure of memory latency on non-AMX kernel paths (more
    /// dependent loads without tile registers).
    pub latency_exposure_mult: f64,
    /// The page size translation actually uses.
    pub effective_page: PageSize,
}

impl MemSystem {
    /// Resolve the memory system for a simulation.
    ///
    /// `footprint_bytes` is the streaming working set (weights + KV +
    /// activations) that determines TLB pressure.
    #[must_use]
    pub fn build(target: &CpuTarget, tee: &CpuTeeConfig, footprint_bytes: f64) -> Self {
        let cpu = &target.cpu;
        let sockets = target.topology.sockets;
        let confidential = tee.kind.is_confidential();

        let mee_derate = tee.mee.map_or(1.0, |m| m.bandwidth_derate);
        let latency_factor = tee
            .mee
            .map_or(0.0, |m| m.latency_adder_ns / cpu.dram_latency_ns);

        let per_socket_bw = cpu.dram_bw_for_cores(target.cores_per_socket) * mee_derate;
        let local_bw = per_socket_bw * f64::from(sockets);

        // Remote path: UPI per-direction bandwidth across the link pair,
        // capped by what a socket's controllers can serve remotely.
        let link_bw = target.topology.link.effective_bandwidth(confidential);
        let remote_bw = (2.0 * link_bw).min(per_socket_bw) * calib::REMOTE_ACCESS_BW_FRACTION;

        let binding = tee.effective_binding();
        let single_node_alloc = tee.sgx.is_some_and(|s| !s.numa_aware) && sockets > 1;
        let remote_fraction = if single_node_alloc {
            // Threads on the far socket see 100% remote; half the threads.
            0.5
        } else {
            target.topology.remote_fraction(binding, confidential)
        };

        let effective_page = tee.effective_page();
        // Page-walker caches thrash once the footprint dwarfs TLB reach
        // (Figure 10's right-hand overhead rise): walk latency grows
        // logarithmically with the over-subscription.
        let reach = cpu.tlb.reach_bytes(effective_page);
        let thrash = if footprint_bytes > 16.0 * reach {
            1.0 + 0.4 * (footprint_bytes / (16.0 * reach)).log2()
        } else {
            1.0
        };
        let translation_s_per_byte = cpu.tlb.translation_ns_per_byte(
            effective_page,
            footprint_bytes,
            tee.virtualized_walks(),
            1.0 - calib::WALK_EXPOSURE,
        ) * 1e-9
            * thrash;

        // Broken sub-NUMA placement (Insight 6): when SNC is enabled and a
        // TEE cannot place memory within sub-domains, traffic criss-crosses
        // the mesh and each sub-domain's controllers serve foreign rows,
        // costing a large slice of effective bandwidth (the paper measured
        // ~5% -> ~42% overhead with SNC on).
        let snc_broken = confidential && target.topology.snc != cllm_hw::SubNumaClustering::Off;
        let local_bw = if snc_broken {
            local_bw * 0.72
        } else {
            local_bw
        };

        let latency_exposure_mult = if target.amx_enabled { 1.0 } else { 1.5 };

        let thp_tax = if effective_page == PageSize::Huge2M {
            calib::THP_MANAGEMENT_TAX
        } else if effective_page == PageSize::Base4K {
            calib::THP_MANAGEMENT_TAX * 2.0
        } else {
            0.0
        };

        MemSystem {
            local_bw,
            remote_bw,
            remote_fraction,
            translation_s_per_byte,
            latency_factor,
            thp_tax,
            single_node_alloc,
            per_socket_bw,
            latency_exposure_mult,
            effective_page,
        }
    }

    /// Latency exposure of the MEE adder at a given decode batch: GEMV
    /// chains at batch 1 are latency-bound; large batches stream.
    #[must_use]
    pub fn latency_exposure(batch: u64) -> f64 {
        calib::LAT_EXPOSURE_BATCH0 / (calib::LAT_EXPOSURE_BATCH0 + batch as f64)
    }

    /// Time in seconds to move `bytes` through the memory system at decode
    /// batch `batch`.
    #[must_use]
    pub fn memory_time(&self, bytes: f64, batch: u64) -> f64 {
        self.memory_time_exposed(bytes, batch, 1.0)
    }

    /// [`MemSystem::memory_time`] with an extra latency-exposure
    /// multiplier for op classes that cannot hide access latency (small
    /// vector ops like layer norms — Figure 7's per-layer overheads).
    #[must_use]
    pub fn memory_time_exposed(&self, bytes: f64, batch: u64, exposure_mult: f64) -> f64 {
        if bytes <= 0.0 {
            return 0.0;
        }
        let lat_penalty = 1.0
            + self.latency_factor
                * Self::latency_exposure(batch)
                * self.latency_exposure_mult
                * exposure_mult;
        let t = if self.single_node_alloc {
            // Every byte is served by one socket's controllers, and the far
            // socket's half additionally crosses UPI with partial overlap.
            bytes / self.per_socket_bw + 0.5 * bytes * self.remote_fraction / self.remote_bw
        } else {
            // Remote accesses serialize behind the narrower UPI path while
            // local traffic proceeds; the blend is a weighted harmonic sum.
            bytes * (1.0 - self.remote_fraction) / self.local_bw
                + bytes * self.remote_fraction / self.remote_bw
        };
        (t * lat_penalty + bytes * self.translation_s_per_byte) * (1.0 + self.thp_tax)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_hw::GIB;

    fn footprint() -> f64 {
        14.0 * GIB
    }

    #[test]
    fn tdx_slower_than_vm_slower_than_bare() {
        let target = CpuTarget::emr1_single_socket();
        let bare = MemSystem::build(&target, &CpuTeeConfig::bare_metal(), footprint());
        let vm = MemSystem::build(&target, &CpuTeeConfig::vm(), footprint());
        let tdx = MemSystem::build(&target, &CpuTeeConfig::tdx(), footprint());
        let bytes = 13.0 * GIB;
        let (tb, tv, tt) = (
            bare.memory_time(bytes, 6),
            vm.memory_time(bytes, 6),
            tdx.memory_time(bytes, 6),
        );
        // The raw-VM memory path only differs from bare metal through
        // page-walk/translation effects (its CPU tax is charged by the
        // simulator, not here); TDX additionally pays the MEE.
        assert!(tb <= tv, "bare {tb} !<= vm {tv}");
        assert!(tv < tt, "vm {tv} !< tdx {tt}");
    }

    #[test]
    fn latency_exposure_shrinks_with_batch() {
        assert!(MemSystem::latency_exposure(1) > MemSystem::latency_exposure(8));
        assert!(MemSystem::latency_exposure(8) > MemSystem::latency_exposure(512));
        assert!(MemSystem::latency_exposure(512) < 0.01);
    }

    #[test]
    fn sgx_dual_socket_collapses() {
        // Insight 6: SGX presents a single NUMA node; two-socket runs pay
        // dearly (paper: up to 230% overhead).
        let t2 = CpuTarget::emr1_dual_socket();
        let bare = MemSystem::build(&t2, &CpuTeeConfig::bare_metal(), footprint());
        let sgx = MemSystem::build(&t2, &CpuTeeConfig::sgx(), footprint());
        assert!(sgx.single_node_alloc);
        let bytes = 13.0 * GIB;
        let ratio = sgx.memory_time(bytes, 6) / bare.memory_time(bytes, 6);
        assert!(ratio > 2.0, "SGX dual socket ratio only {ratio}");
    }

    #[test]
    fn single_socket_has_no_remote_traffic() {
        let t = CpuTarget::emr1_single_socket();
        let tdx = MemSystem::build(&t, &CpuTeeConfig::tdx(), footprint());
        assert_eq!(tdx.remote_fraction, 0.0);
    }

    #[test]
    fn tdx_dual_socket_has_remote_traffic_vm_does_not() {
        let t2 = CpuTarget::emr1_dual_socket();
        let vm = MemSystem::build(&t2, &CpuTeeConfig::vm(), footprint());
        let tdx = MemSystem::build(&t2, &CpuTeeConfig::tdx(), footprint());
        assert_eq!(vm.remote_fraction, 0.0);
        assert!(tdx.remote_fraction > 0.02);
    }

    #[test]
    fn unbound_vm_worse_than_tdx_worse_than_bound_vm() {
        // Figure 5's ordering for the 70B two-socket case.
        let t2 = CpuTarget::emr1_dual_socket();
        let bytes = 100.0 * GIB;
        let fp = 140.0 * GIB;
        let vm_b = MemSystem::build(&t2, &CpuTeeConfig::vm(), fp).memory_time(bytes, 1);
        let tdx = MemSystem::build(&t2, &CpuTeeConfig::tdx(), fp).memory_time(bytes, 1);
        let vm_nb = MemSystem::build(&t2, &CpuTeeConfig::vm_unbound(), fp).memory_time(bytes, 1);
        assert!(vm_b < tdx);
        assert!(tdx < vm_nb);
    }

    #[test]
    fn translation_cost_rises_with_footprint() {
        let t = CpuTarget::emr2_single_socket();
        let small = MemSystem::build(&t, &CpuTeeConfig::tdx(), 3.0 * GIB);
        let large = MemSystem::build(&t, &CpuTeeConfig::tdx(), 80.0 * GIB);
        assert!(large.translation_s_per_byte > small.translation_s_per_byte);
    }

    #[test]
    fn memory_time_monotone_in_bytes() {
        let t = CpuTarget::emr2_single_socket();
        let ms = MemSystem::build(&t, &CpuTeeConfig::tdx(), footprint());
        assert!(ms.memory_time(2.0 * GIB, 4) > ms.memory_time(1.0 * GIB, 4));
        assert_eq!(ms.memory_time(0.0, 4), 0.0);
    }
}
