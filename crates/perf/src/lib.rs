//! Roofline performance simulator for LLM inference under CPU and GPU TEEs.
//!
//! This crate is the measurement instrument of the reproduction: it
//! executes the `cllm-workload` operator graph on a `cllm-hw` hardware
//! model under a `cllm-tee` platform configuration and produces per-token
//! latencies, throughput and per-operator traces — the quantities every
//! figure of the paper plots.
//!
//! # Model
//!
//! Per operator the simulator evaluates a roofline with TEE terms:
//!
//! ```text
//! t_compute = flops * dtype_tax / (peak(isa, dtype, cores) * framework_eff) * (1 + virt_tax)
//! t_memory  = local_bytes / eff_bw  ⊔  remote_bytes / upi_bw   (overlapped channels)
//! eff_bw    = dram_bw(cores) * mee_derate / (1 + latency_exposure)
//!             minus page-walk cost per byte (2D walks under virtualization)
//! t_op      = max(t_compute, t_memory)
//! t_token   = Σ_ops t_op * layers + fixed (TD transitions, enclave exits,
//!             framework per-step overhead)
//! ```
//!
//! Every mechanism the paper identifies is its own model component:
//! memory-encryption bandwidth/latency (Insight 4), virtualization tax
//! (Insight 5), broken NUMA bindings and SNC (Insight 6), transparent-
//! hugepage fallback (Insight 7), AMX compute and traffic effects
//! (Insight 8), compute-boundedness (Insight 9), and GPU bounce-buffer /
//! kernel-launch costs (Insight 10).
//!
//! # Example
//!
//! ```
//! use cllm_perf::{simulate_cpu, CpuTarget};
//! use cllm_tee::CpuTeeConfig;
//! use cllm_workload::{zoo, phase::RequestSpec};
//! use cllm_hw::DType;
//!
//! let model = zoo::llama2_7b();
//! let req = RequestSpec::new(1, 1024, 128);
//! let target = CpuTarget::emr1_single_socket();
//!
//! let bare = simulate_cpu(&model, &req, DType::Bf16, &target, &CpuTeeConfig::bare_metal());
//! let tdx = simulate_cpu(&model, &req, DType::Bf16, &target, &CpuTeeConfig::tdx());
//! let overhead = tdx.mean_token_latency_s() / bare.mean_token_latency_s() - 1.0;
//! assert!(overhead > 0.0 && overhead < 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod calib;
mod cpu;
mod framework;
mod gpu;
mod memsys;
pub mod stats;
mod target;

pub use cache::{cpu_key, gpu_key, simulate_cpu_cached, simulate_gpu_cached, CacheStats};
pub use cpu::{
    decode_step_time_s, kv_pressure_stall_s, kv_swap_time_s, prefill_time_s, simulate_cpu, OpTrace,
    SimResult,
};
pub use framework::Framework;
pub use gpu::{
    fits_on_gpus, gpu_decode_step_time_s, gpu_kv_budget_bytes, gpu_kv_pressure_stall_s,
    gpu_kv_swap_time_s, gpu_prefill_time_s, simulate_gpu, simulate_multi_gpu, GpuSimResult,
};
pub use memsys::MemSystem;
pub use target::CpuTarget;

/// Finite sentinel returned by [`overhead_pct`] and
/// [`throughput_overhead_pct`] when the comparison is undefined (zero or
/// non-finite baseline, non-finite observation). Large enough that any
/// band assertion on a real overhead rejects it, finite so it survives
/// arithmetic and JSON serialization (`serde_json` turns non-finite
/// floats into `null`).
pub const OVERHEAD_UNDEFINED_PCT: f64 = 1.0e12;

/// Relative overhead of `observed` versus `baseline` in percent:
/// positive means `observed` is slower / worse. `None` when the
/// comparison is undefined — zero or non-finite `baseline`, or
/// non-finite `observed`.
#[must_use]
pub fn try_overhead_pct(baseline: f64, observed: f64) -> Option<f64> {
    if baseline == 0.0 || !baseline.is_finite() || !observed.is_finite() {
        return None;
    }
    Some((observed / baseline - 1.0) * 100.0)
}

/// Relative overhead of `observed` versus `baseline` in percent:
/// positive means `observed` is slower / worse.
///
/// Undefined comparisons (zero/non-finite baseline, non-finite
/// observation) return the documented finite sentinel
/// [`OVERHEAD_UNDEFINED_PCT`] instead of propagating `inf`/`NaN`; use
/// [`try_overhead_pct`] to handle them explicitly.
#[must_use]
pub fn overhead_pct(baseline: f64, observed: f64) -> f64 {
    try_overhead_pct(baseline, observed).unwrap_or(OVERHEAD_UNDEFINED_PCT)
}

/// Relative throughput overhead in percent (throughput is
/// higher-is-better, so the ratio flips). `None` when the comparison is
/// undefined — zero or non-finite `baseline_tps`, zero or non-finite
/// `observed_tps` (the denominator here).
#[must_use]
pub fn try_throughput_overhead_pct(baseline_tps: f64, observed_tps: f64) -> Option<f64> {
    if baseline_tps == 0.0
        || !baseline_tps.is_finite()
        || observed_tps == 0.0
        || !observed_tps.is_finite()
    {
        return None;
    }
    Some((baseline_tps / observed_tps - 1.0) * 100.0)
}

/// Relative throughput overhead in percent (throughput is
/// higher-is-better, so the ratio flips).
///
/// Undefined comparisons (zero/non-finite baseline or observation)
/// return the documented finite sentinel [`OVERHEAD_UNDEFINED_PCT`]
/// instead of propagating `inf`/`NaN`; use
/// [`try_throughput_overhead_pct`] to handle them explicitly.
#[must_use]
pub fn throughput_overhead_pct(baseline_tps: f64, observed_tps: f64) -> f64 {
    try_throughput_overhead_pct(baseline_tps, observed_tps).unwrap_or(OVERHEAD_UNDEFINED_PCT)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_signs() {
        assert!((overhead_pct(100.0, 110.0) - 10.0).abs() < 1e-9);
        assert!(overhead_pct(100.0, 90.0) < 0.0);
        assert!((throughput_overhead_pct(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert!(throughput_overhead_pct(100.0, 110.0) < 0.0);
    }

    #[test]
    fn try_variants_agree_on_defined_inputs() {
        assert_eq!(
            try_overhead_pct(100.0, 110.0),
            Some(overhead_pct(100.0, 110.0))
        );
        assert_eq!(
            try_throughput_overhead_pct(110.0, 100.0),
            Some(throughput_overhead_pct(110.0, 100.0))
        );
    }

    #[test]
    fn zero_baseline_is_undefined() {
        assert_eq!(try_overhead_pct(0.0, 5.0), None);
        assert_eq!(overhead_pct(0.0, 5.0), OVERHEAD_UNDEFINED_PCT);
        assert_eq!(try_throughput_overhead_pct(0.0, 5.0), None);
        assert_eq!(throughput_overhead_pct(0.0, 5.0), OVERHEAD_UNDEFINED_PCT);
    }

    #[test]
    fn non_finite_inputs_are_undefined() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            assert_eq!(try_overhead_pct(bad, 5.0), None, "baseline {bad}");
            assert_eq!(try_overhead_pct(5.0, bad), None, "observed {bad}");
            assert_eq!(
                try_throughput_overhead_pct(bad, 5.0),
                None,
                "baseline {bad}"
            );
            assert_eq!(
                try_throughput_overhead_pct(5.0, bad),
                None,
                "observed {bad}"
            );
            assert_eq!(overhead_pct(bad, 5.0), OVERHEAD_UNDEFINED_PCT);
        }
    }

    #[test]
    fn zero_observed_throughput_is_undefined_not_inf() {
        // A stalled observation must not turn into a division by zero.
        assert_eq!(try_throughput_overhead_pct(100.0, 0.0), None);
        assert!(throughput_overhead_pct(100.0, 0.0).is_finite());
        // A zero *latency* observation is a defined (−100%) overhead.
        assert_eq!(try_overhead_pct(100.0, 0.0), Some(-100.0));
    }

    #[test]
    fn sentinel_is_finite_and_out_of_band() {
        let sentinel = overhead_pct(0.0, 5.0);
        assert!(sentinel.is_finite());
        assert!(
            sentinel > 1e6,
            "sentinel must sit far outside real overhead bands"
        );
    }
}
