//! Roofline performance simulator for LLM inference under CPU and GPU TEEs.
//!
//! This crate is the measurement instrument of the reproduction: it
//! executes the `cllm-workload` operator graph on a `cllm-hw` hardware
//! model under a `cllm-tee` platform configuration and produces per-token
//! latencies, throughput and per-operator traces — the quantities every
//! figure of the paper plots.
//!
//! # Model
//!
//! Per operator the simulator evaluates a roofline with TEE terms:
//!
//! ```text
//! t_compute = flops * dtype_tax / (peak(isa, dtype, cores) * framework_eff) * (1 + virt_tax)
//! t_memory  = local_bytes / eff_bw  ⊔  remote_bytes / upi_bw   (overlapped channels)
//! eff_bw    = dram_bw(cores) * mee_derate / (1 + latency_exposure)
//!             minus page-walk cost per byte (2D walks under virtualization)
//! t_op      = max(t_compute, t_memory)
//! t_token   = Σ_ops t_op * layers + fixed (TD transitions, enclave exits,
//!             framework per-step overhead)
//! ```
//!
//! Every mechanism the paper identifies is its own model component:
//! memory-encryption bandwidth/latency (Insight 4), virtualization tax
//! (Insight 5), broken NUMA bindings and SNC (Insight 6), transparent-
//! hugepage fallback (Insight 7), AMX compute and traffic effects
//! (Insight 8), compute-boundedness (Insight 9), and GPU bounce-buffer /
//! kernel-launch costs (Insight 10).
//!
//! # Example
//!
//! ```
//! use cllm_perf::{simulate_cpu, CpuTarget};
//! use cllm_tee::CpuTeeConfig;
//! use cllm_workload::{zoo, phase::RequestSpec};
//! use cllm_hw::DType;
//!
//! let model = zoo::llama2_7b();
//! let req = RequestSpec::new(1, 1024, 128);
//! let target = CpuTarget::emr1_single_socket();
//!
//! let bare = simulate_cpu(&model, &req, DType::Bf16, &target, &CpuTeeConfig::bare_metal());
//! let tdx = simulate_cpu(&model, &req, DType::Bf16, &target, &CpuTeeConfig::tdx());
//! let overhead = tdx.mean_token_latency_s() / bare.mean_token_latency_s() - 1.0;
//! assert!(overhead > 0.0 && overhead < 0.25);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calib;
mod cpu;
mod framework;
mod gpu;
mod memsys;
pub mod stats;
mod target;

pub use cpu::{decode_step_time_s, prefill_time_s, simulate_cpu, OpTrace, SimResult};
pub use framework::Framework;
pub use gpu::{fits_on_gpus, simulate_gpu, simulate_multi_gpu, GpuSimResult};
pub use memsys::MemSystem;
pub use target::CpuTarget;

/// Relative overhead of `observed` versus `baseline` in percent:
/// positive means `observed` is slower / worse.
#[must_use]
pub fn overhead_pct(baseline: f64, observed: f64) -> f64 {
    (observed / baseline - 1.0) * 100.0
}

/// Relative throughput overhead in percent (throughput is
/// higher-is-better, so the ratio flips).
#[must_use]
pub fn throughput_overhead_pct(baseline_tps: f64, observed_tps: f64) -> f64 {
    (baseline_tps / observed_tps - 1.0) * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn overhead_signs() {
        assert!((overhead_pct(100.0, 110.0) - 10.0).abs() < 1e-9);
        assert!(overhead_pct(100.0, 90.0) < 0.0);
        assert!((throughput_overhead_pct(110.0, 100.0) - 10.0).abs() < 1e-9);
        assert!(throughput_overhead_pct(100.0, 110.0) < 0.0);
    }
}
