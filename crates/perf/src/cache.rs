//! Memoized simulation layer: process-wide caches over [`simulate_cpu`]
//! and [`simulate_gpu`].
//!
//! Several experiment grids evaluate the *same* operating point more than
//! once — every overhead is a (baseline, TEE) pair and the bare-metal
//! baseline is shared across metrics (Figure 9 used to simulate the
//! identical bare-metal point twice per grid cell). The simulator is
//! deterministic (noise is seeded from the inputs), so a simulation is
//! fully described by its arguments and can be computed once and shared.
//!
//! Keys are the `Debug` rendering of the full argument tuple: every
//! parameter that influences the result derives `Debug`, so two calls get
//! the same entry exactly when the simulator would produce the same
//! output. Results are returned as [`Arc`]s; deref gives the same fields
//! as the uncached call.
//!
//! The cache is shared across threads (the parallel experiment runner in
//! `cllm-core` hits it from a worker pool). A miss computes *outside* the
//! lock so concurrent misses never serialize behind a simulation; two
//! threads racing on the same key may both simulate, but determinism
//! makes the duplicate insert harmless.

use crate::cpu::{simulate_cpu, SimResult};
use crate::gpu::{simulate_gpu, GpuSimResult};
use crate::target::CpuTarget;
use cllm_hw::{DType, GpuModel};
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig};
use cllm_workload::phase::RequestSpec;
use cllm_workload::ModelConfig;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

static CPU_CACHE: OnceLock<Mutex<HashMap<String, Arc<SimResult>>>> = OnceLock::new();
static GPU_CACHE: OnceLock<Mutex<HashMap<String, Arc<GpuSimResult>>>> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn cpu_cache() -> &'static Mutex<HashMap<String, Arc<SimResult>>> {
    CPU_CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

fn gpu_cache() -> &'static Mutex<HashMap<String, Arc<GpuSimResult>>> {
    GPU_CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Counters and sizes of the simulation caches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache (CPU + GPU).
    pub hits: u64,
    /// Lookups that ran the simulator (CPU + GPU).
    pub misses: u64,
    /// Distinct CPU operating points currently cached.
    pub cpu_entries: usize,
    /// Distinct GPU operating points currently cached.
    pub gpu_entries: usize,
}

/// The cache key of a CPU operating point: the `Debug` rendering of the
/// full argument tuple. Public so higher layers (the `cllm-core`
/// scenario builder) can identify a point without duplicating the key
/// scheme.
#[must_use]
pub fn cpu_key(
    model: &ModelConfig,
    req: &RequestSpec,
    dtype: DType,
    target: &CpuTarget,
    tee: &CpuTeeConfig,
) -> String {
    format!("{model:?}|{req:?}|{dtype:?}|{target:?}|{tee:?}")
}

/// The cache key of a GPU operating point (see [`cpu_key`]).
#[must_use]
pub fn gpu_key(
    model: &ModelConfig,
    req: &RequestSpec,
    dtype: DType,
    gpu: &GpuModel,
    cfg: &GpuTeeConfig,
) -> String {
    format!("{model:?}|{req:?}|{dtype:?}|{gpu:?}|{cfg:?}")
}

/// Memoized [`simulate_cpu`]: identical arguments return the cached
/// result without re-running the simulator.
#[must_use]
pub fn simulate_cpu_cached(
    model: &ModelConfig,
    req: &RequestSpec,
    dtype: DType,
    target: &CpuTarget,
    tee: &CpuTeeConfig,
) -> Arc<SimResult> {
    let key = cpu_key(model, req, dtype, target, tee);
    if let Some(hit) = cpu_cache().lock().expect("cpu cache lock").get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    // Simulate outside the lock so concurrent misses run in parallel.
    MISSES.fetch_add(1, Ordering::Relaxed);
    let result = Arc::new(simulate_cpu(model, req, dtype, target, tee));
    let mut map = cpu_cache().lock().expect("cpu cache lock");
    Arc::clone(map.entry(key).or_insert(result))
}

/// Memoized [`simulate_gpu`]: identical arguments return the cached
/// result without re-running the simulator.
#[must_use]
pub fn simulate_gpu_cached(
    model: &ModelConfig,
    req: &RequestSpec,
    dtype: DType,
    gpu: &GpuModel,
    cfg: &GpuTeeConfig,
) -> Arc<GpuSimResult> {
    let key = gpu_key(model, req, dtype, gpu, cfg);
    if let Some(hit) = gpu_cache().lock().expect("gpu cache lock").get(&key) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return Arc::clone(hit);
    }
    MISSES.fetch_add(1, Ordering::Relaxed);
    let result = Arc::new(simulate_gpu(model, req, dtype, gpu, cfg));
    let mut map = gpu_cache().lock().expect("gpu cache lock");
    Arc::clone(map.entry(key).or_insert(result))
}

/// Drop every cached result and reset the hit/miss counters. Used to run
/// cold-cache timing comparisons and to bound memory in long processes.
pub fn clear() {
    cpu_cache().lock().expect("cpu cache lock").clear();
    gpu_cache().lock().expect("gpu cache lock").clear();
    HITS.store(0, Ordering::Relaxed);
    MISSES.store(0, Ordering::Relaxed);
}

/// Snapshot the cache counters and entry counts.
#[must_use]
pub fn stats() -> CacheStats {
    CacheStats {
        hits: HITS.load(Ordering::Relaxed),
        misses: MISSES.load(Ordering::Relaxed),
        cpu_entries: cpu_cache().lock().expect("cpu cache lock").len(),
        gpu_entries: gpu_cache().lock().expect("gpu cache lock").len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_workload::zoo;

    /// The memoized CPU path returns results identical to the uncached
    /// simulator across dtypes, targets and TEE configurations.
    #[test]
    fn cpu_cached_matches_uncached_across_grid() {
        let model = zoo::llama2_7b();
        let req = RequestSpec::new(4, 128, 16);
        for dtype in [DType::Bf16, DType::Int8] {
            for target in [
                CpuTarget::emr1_single_socket(),
                CpuTarget::emr2_single_socket(),
                CpuTarget::emr2_dual_socket(),
            ] {
                for tee in [
                    CpuTeeConfig::bare_metal(),
                    CpuTeeConfig::vm(),
                    CpuTeeConfig::tdx(),
                ] {
                    let direct = simulate_cpu(&model, &req, dtype, &target, &tee);
                    let cached = simulate_cpu_cached(&model, &req, dtype, &target, &tee);
                    let again = simulate_cpu_cached(&model, &req, dtype, &target, &tee);
                    assert_eq!(
                        format!("{direct:?}"),
                        format!("{:?}", *cached),
                        "{dtype:?}/{tee:?}: cached result diverges"
                    );
                    assert_eq!(format!("{:?}", *cached), format!("{:?}", *again));
                }
            }
        }
    }

    #[test]
    fn gpu_cached_matches_uncached() {
        let model = zoo::llama2_7b();
        let req = RequestSpec::new(8, 256, 16);
        let gpu = cllm_hw::presets::h100_nvl();
        for cfg in [GpuTeeConfig::native(), GpuTeeConfig::confidential()] {
            let direct = simulate_gpu(&model, &req, DType::Bf16, &gpu, &cfg);
            let cached = simulate_gpu_cached(&model, &req, DType::Bf16, &gpu, &cfg);
            assert_eq!(
                format!("{direct:?}"),
                format!("{:?}", *cached),
                "{cfg:?}: cached result diverges"
            );
        }
    }

    #[test]
    fn repeat_lookups_hit_and_clear_resets() {
        let model = zoo::llama2_7b();
        let req = RequestSpec::new(2, 64, 8);
        let target = CpuTarget::emr1_single_socket();
        let tee = CpuTeeConfig::tdx();

        let before = stats();
        let first = simulate_cpu_cached(&model, &req, DType::Bf16, &target, &tee);
        let second = simulate_cpu_cached(&model, &req, DType::Bf16, &target, &tee);
        let after = stats();
        assert!(
            Arc::ptr_eq(&first, &second),
            "second lookup should share the entry"
        );
        assert!(after.hits > before.hits, "repeat lookup must count a hit");
        assert!(after.cpu_entries >= 1);

        clear();
        let reset = stats();
        assert_eq!((reset.hits, reset.misses), (0, 0));
        assert_eq!((reset.cpu_entries, reset.gpu_entries), (0, 0));
    }

    #[test]
    fn distinct_points_get_distinct_entries() {
        clear();
        let model = zoo::llama2_7b();
        let target = CpuTarget::emr1_single_socket();
        let tee = CpuTeeConfig::tdx();
        let a = simulate_cpu_cached(
            &model,
            &RequestSpec::new(1, 64, 8),
            DType::Bf16,
            &target,
            &tee,
        );
        let b = simulate_cpu_cached(
            &model,
            &RequestSpec::new(2, 64, 8),
            DType::Bf16,
            &target,
            &tee,
        );
        assert!(!Arc::ptr_eq(&a, &b));
        assert!(stats().cpu_entries >= 2);
    }
}
