//! Measured-vs-modeled calibration: compare kernel speedup ratios
//! *measured* on the real `cllm-infer` engine (by `bench_infer`, pinned
//! in `BENCH_infer.json`) against what the analytical roofline in this
//! crate predicts.
//!
//! The analytical model prices decode as weight-streaming-bound and
//! prefill as compute-bound; the executable engine lets us check those
//! magnitudes on real silicon. Absolute tokens/sec are machine-specific
//! (and guarded by the bench floors, not here), but the *ratios*
//! between kernel variants cancel the machine out to first order:
//!
//! * **tiled / naive decode** — the scalar reference GEMV is one long
//!   dependency chain (~1 element per FP-add latency); the tiled kernel
//!   runs `cllm_infer::kernels::LANES` independent accumulators that
//!   vectorize, so the modeled win is several-fold until the weight
//!   stream saturates memory.
//! * **int8 / tiled decode** — group-quantized weights shrink the
//!   per-token weight traffic 4x (minus scale overhead); the fused
//!   dequant costs int-to-float converts, so the realized win sits
//!   between 1x (compute-bound) and the ~3.8x traffic ceiling.
//! * **int4 / int8 decode** — packed nibbles halve traffic again but
//!   every element pays a nibble unpack, so on shapes where int8 is
//!   already compute-bound (not traffic-bound) int4 lands *below*
//!   int8, approaching parity with 512-bit unpacking. Its win is
//!   footprint, not speed.
//! * **speculative / tiled decode** — chunked verification amortizes
//!   the target's weight stream over `E = (1 - a^(k+1)) / (1 - a)`
//!   tokens per round at acceptance `a`, but the int8 draft shares the
//!   target's shape and costs over half a target step, so a round
//!   never beats plain decode here. Speculation pays only when the
//!   draft is much smaller than the target — the regime the
//!   `spec_decode` experiment prices analytically.
//!
//! Each ratio gets a pinned [`Band`]: a modeled center plus a tolerance
//! range wide enough for cache-hierarchy and ISA variance across CI
//! machines, but tight enough that a kernel regression (say, the tiled
//! path silently falling back to scalar) trips it. `bench_infer --check`
//! recomputes the report from the pinned document on every CI run.

/// A pinned tolerance band for one measured/modeled ratio.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Band {
    /// The ratio the analytical roofline predicts on weight-bound
    /// decode shapes.
    pub modeled: f64,
    /// Lowest acceptable measured ratio.
    pub lo: f64,
    /// Highest plausible measured ratio (above it the measurement
    /// methodology, not the kernel, is suspect).
    pub hi: f64,
}

impl Band {
    /// Is `ratio` inside the band (inclusive)?
    #[must_use]
    pub fn contains(&self, ratio: f64) -> bool {
        ratio.is_finite() && ratio >= self.lo && ratio <= self.hi
    }
}

/// Tiled GEMV over the scalar reference, decode phase. The independent
/// accumulator lanes break the FP-add dependency chain and vectorize;
/// the win is capped by the DRAM weight stream.
pub const TILED_OVER_NAIVE_DECODE: Band = Band {
    modeled: 4.0,
    lo: 2.0,
    hi: 32.0,
};

/// Group-wise int8 over tiled f32, decode phase. Traffic ceiling is
/// `4 / 1.0625 = 3.76`; the fused dequant's convert traffic keeps the
/// realized ratio below it.
pub const INT8_OVER_TILED_DECODE: Band = Band {
    modeled: 2.2,
    lo: 1.5,
    hi: 3.8,
};

/// Packed int4 over int8, decode phase. Traffic halves but every
/// element pays a nibble unpack; on cache-resident shapes where int8
/// is compute-bound, int4 sits below parity. A measured ratio above
/// `hi` would mean int8 regressed, not that int4 got fast.
pub const INT4_OVER_INT8_DECODE: Band = Band {
    modeled: 0.9,
    lo: 0.5,
    hi: 1.6,
};

/// Speculative decode (same-shape int8-quantized draft, k=2) over
/// plain tiled decode. The win `E[tokens/round] / round-cost` is
/// discounted by a draft step that costs over half a target step, so
/// the modeled center sits below 1: speculation is priced here to
/// *prove token-identity and measure its overhead*, not to win — the
/// winning small-draft regime is the `spec_decode` experiment's job.
pub const SPEC_OVER_TILED_DECODE: Band = Band {
    modeled: 0.7,
    lo: 0.3,
    hi: 1.3,
};

/// The four decode-phase speedup ratios `bench_infer` measures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MeasuredRatios {
    /// Tiled f32 tokens/sec over the scalar reference.
    pub tiled_over_naive: f64,
    /// Int8 tokens/sec over tiled f32.
    pub int8_over_tiled: f64,
    /// Int4 tokens/sec over int8.
    pub int4_over_int8: f64,
    /// Speculative tokens/sec over tiled f32.
    pub spec_over_tiled: f64,
}

/// One ratio compared against its pinned band.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RatioCheck {
    /// Which ratio this row reports.
    pub name: &'static str,
    /// The measured value.
    pub measured: f64,
    /// The pinned band it must fall in.
    pub band: Band,
}

impl RatioCheck {
    /// Does the measurement sit inside the pinned band?
    #[must_use]
    pub fn ok(&self) -> bool {
        self.band.contains(self.measured)
    }
}

/// The full measured-vs-modeled comparison, one row per ratio.
#[derive(Debug, Clone, PartialEq)]
pub struct CalibrationReport {
    /// Rows in fixed order: tiled/naive, int8/tiled, int4/int8,
    /// spec/tiled.
    pub checks: Vec<RatioCheck>,
}

impl CalibrationReport {
    /// Compare measured ratios against the pinned bands.
    #[must_use]
    pub fn new(r: &MeasuredRatios) -> Self {
        CalibrationReport {
            checks: vec![
                RatioCheck {
                    name: "tiled_over_naive_decode",
                    measured: r.tiled_over_naive,
                    band: TILED_OVER_NAIVE_DECODE,
                },
                RatioCheck {
                    name: "int8_over_tiled_decode",
                    measured: r.int8_over_tiled,
                    band: INT8_OVER_TILED_DECODE,
                },
                RatioCheck {
                    name: "int4_over_int8_decode",
                    measured: r.int4_over_int8,
                    band: INT4_OVER_INT8_DECODE,
                },
                RatioCheck {
                    name: "spec_over_tiled_decode",
                    measured: r.spec_over_tiled,
                    band: SPEC_OVER_TILED_DECODE,
                },
            ],
        }
    }

    /// Do all ratios sit inside their bands?
    #[must_use]
    pub fn all_within(&self) -> bool {
        self.checks.iter().all(RatioCheck::ok)
    }

    /// Human-readable table: one line per ratio with measured value,
    /// modeled center, band and verdict.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out =
            String::from("ratio                     measured  modeled  band             verdict\n");
        for c in &self.checks {
            let verdict = if c.ok() { "ok" } else { "OUT OF BAND" };
            out.push_str(&format!(
                "{:<25} {:>8.2} {:>8.2}  [{:.2}, {:.2}]     {}\n",
                c.name, c.measured, c.band.modeled, c.band.lo, c.band.hi, verdict
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modeled_ratios() -> MeasuredRatios {
        MeasuredRatios {
            tiled_over_naive: TILED_OVER_NAIVE_DECODE.modeled,
            int8_over_tiled: INT8_OVER_TILED_DECODE.modeled,
            int4_over_int8: INT4_OVER_INT8_DECODE.modeled,
            spec_over_tiled: SPEC_OVER_TILED_DECODE.modeled,
        }
    }

    #[test]
    fn modeled_centers_sit_inside_their_own_bands() {
        let report = CalibrationReport::new(&modeled_ratios());
        assert!(report.all_within(), "\n{}", report.render());
    }

    #[test]
    fn scalar_fallback_regression_trips_the_tiled_band() {
        // A tiled kernel silently falling back to scalar code measures
        // ~1x over naive — the exact regression the band exists for.
        let mut r = modeled_ratios();
        r.tiled_over_naive = 1.0;
        let report = CalibrationReport::new(&r);
        assert!(!report.all_within());
        assert!(!report.checks[0].ok());
        assert!(report.checks[1].ok());
    }

    #[test]
    fn non_finite_and_absurd_ratios_are_rejected() {
        assert!(!TILED_OVER_NAIVE_DECODE.contains(f64::NAN));
        assert!(!TILED_OVER_NAIVE_DECODE.contains(f64::INFINITY));
        assert!(!TILED_OVER_NAIVE_DECODE.contains(1000.0));
        assert!(!INT8_OVER_TILED_DECODE.contains(0.0));
    }

    #[test]
    fn render_lists_every_ratio_with_verdict() {
        let report = CalibrationReport::new(&modeled_ratios());
        let text = report.render();
        for name in [
            "tiled_over_naive_decode",
            "int8_over_tiled_decode",
            "int4_over_int8_decode",
            "spec_over_tiled_decode",
        ] {
            assert!(text.contains(name), "missing {name} in:\n{text}");
        }
        assert!(!text.contains("OUT OF BAND"));
    }

    #[test]
    fn acceptance_floor_ratios_clear_the_bands() {
        // The bench's hard acceptance bars (tiled >= 2x naive,
        // int8 >= 1.5x tiled) coincide with the band floors: passing
        // the bench implies a calibration-admissible ratio.
        assert!(TILED_OVER_NAIVE_DECODE.contains(2.0));
        assert!(INT8_OVER_TILED_DECODE.contains(1.5));
    }
}
