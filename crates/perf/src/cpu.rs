//! CPU inference simulation.

use crate::memsys::MemSystem;
use crate::{calib, stats, CpuTarget};
use cllm_hw::{DType, Isa};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::ops::BlockOp;
use cllm_workload::phase::{RequestSpec, StepWorkload};
use cllm_workload::{kv, ModelConfig};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Per-operator time of one decoder layer at the median decode step
/// (noise-free) — the data behind Figure 7.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpTrace {
    /// The operator.
    pub op: BlockOp,
    /// Time per layer in seconds.
    pub time_s: f64,
}

/// Result of simulating one request on a CPU platform.
#[derive(Debug, Clone)]
pub struct SimResult {
    /// Prefill (first-token) time in seconds.
    pub prefill_s: f64,
    /// Raw per-generated-token latencies (with deterministic noise and
    /// outliers; filter with [`stats::z_filter`] as the paper does).
    pub token_latencies_s: Vec<f64>,
    /// Z>3-filtered summary of token latencies.
    pub summary: stats::Summary,
    /// Per-operator trace of one decoder layer at the median decode step.
    pub decode_trace: Vec<OpTrace>,
    /// Steady-state decode throughput in user-visible tokens/second
    /// (batch streams x 1 token per step / step time).
    pub decode_tps: f64,
    /// End-to-end throughput including the prefill (Figure 12/13's
    /// "generation throughput includes the first token latency").
    pub e2e_tps: f64,
}

impl SimResult {
    /// Mean next-token latency after Z>3 filtering (the paper's latency
    /// metric).
    #[must_use]
    pub fn mean_token_latency_s(&self) -> f64 {
        self.summary.mean
    }
}

/// Pricing engine shared by prefill and decode.
struct Engine<'a> {
    target: &'a CpuTarget,
    tee: &'a CpuTeeConfig,
    memsys: MemSystem,
    /// Peak GEMM FLOP/s after framework efficiency and dtype tax.
    gemm_flops: f64,
    /// Peak vector FLOP/s for non-GEMM ops.
    vector_flops: f64,
    act_factor: f64,
    weight_factor: f64,
    virt_tax: f64,
    /// Streaming working set (weights + KV + activations), bytes.
    footprint: f64,
}

impl<'a> Engine<'a> {
    fn new(
        model: &ModelConfig,
        req: &RequestSpec,
        dtype: DType,
        target: &'a CpuTarget,
        tee: &'a CpuTeeConfig,
    ) -> Self {
        let fw = target.framework;
        let isa = fw.effective_isa(target.hw_isa(), dtype);
        let eff = fw.compute_efficiency(isa, dtype);
        let cores = target.total_cores();
        let gemm_flops = target.cpu.peak_flops(isa, dtype, cores) * eff / dtype.compute_tax();
        let vector_isa = match target.hw_isa() {
            Isa::Amx | Isa::Avx512 => Isa::Avx512,
            other => other,
        };
        // Vector (norm/rope/softmax) ops run in f32 regardless of dtype.
        let vector_flops = target.cpu.peak_flops(vector_isa, DType::F32, cores) * 0.5;

        let footprint =
            kv::working_set_bytes(model, req.decode_batch(), req.median_context(), dtype)
                * fw.weight_bytes_factor(dtype);
        let memsys = MemSystem::build(target, tee, footprint);
        let virt_tax = tee.virt.map_or(0.0, |v| v.cpu_tax);

        Engine {
            target,
            tee,
            memsys,
            gemm_flops,
            vector_flops,
            act_factor: fw.act_traffic_factor(isa),
            weight_factor: fw.weight_bytes_factor(dtype),
            virt_tax,
            footprint,
        }
    }

    /// Roofline time of one operator (one layer), in seconds.
    fn op_time(&self, op: BlockOp, cost: &cllm_workload::ops::OpCost, exposure_batch: u64) -> f64 {
        let peak = if matches!(op, BlockOp::AttnScores | BlockOp::AttnContext) {
            // Fused attention keeps tile units partially idle.
            self.gemm_flops * calib::ATTN_GEMM_EFFICIENCY
        } else if op.is_gemm() {
            self.gemm_flops
        } else {
            self.vector_flops
        };
        let t_compute = cost.flops / peak;
        let bytes = cost.weight_bytes * self.weight_factor
            + cost.act_bytes * self.act_factor
            + cost.kv_read_bytes
            + cost.kv_write_bytes;
        // Small vector ops (norms, RoPE) expose the MEE latency far more
        // than streaming GEMMs (Figure 7).
        let exposure_mult = if op.is_gemm() {
            1.0
        } else {
            calib::SMALL_OP_LAT_EXPOSURE
        };
        let t_memory = self
            .memsys
            .memory_time_exposed(bytes, exposure_batch, exposure_mult);
        let mut t = t_compute.max(t_memory);
        if !op.is_gemm() {
            // OpenMP fork/barrier per small kernel; TEEs pay extra on the
            // IPI/futex paths (Figure 7's norm-layer overheads and noise).
            let barrier_penalty = if self.tee.virt.is_some() && self.tee.kind.is_confidential() {
                calib::TDX_BARRIER_PENALTY
            } else if self.tee.sgx.is_some() {
                calib::SGX_BARRIER_PENALTY
            } else {
                0.0
            };
            t += calib::VECTOR_OP_DISPATCH_US * 1e-6 * (1.0 + barrier_penalty);
        }
        t
    }

    /// Time of a whole forward pass, excluding noise.
    fn step_time(&self, step: &StepWorkload, exposure_batch: u64) -> f64 {
        let mut per_layer = 0.0;
        for (op, cost) in &step.per_op {
            per_layer += self.op_time(*op, cost, exposure_batch);
        }
        #[allow(clippy::cast_precision_loss)]
        let mut t = per_layer * step.layers as f64;
        // Embedding gather + LM head.
        t += self.op_time(BlockOp::OProj, &step.embedding, exposure_batch);
        t += self.op_time(BlockOp::DownProj, &step.lm_head, exposure_batch);
        // Cross-socket tensor-parallel allreduces (oneCCL).
        t += self.comm_time(step);
        // Fixed per-step costs.
        t += self.fixed_step_cost();
        // Virtualization tax applies to the whole critical path (vmexits,
        // virtual timers/APIC stalls).
        t * (1.0 + self.virt_tax)
    }

    fn comm_time(&self, step: &StepWorkload) -> f64 {
        let sockets = self.target.topology.sockets;
        if sockets <= 1 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        let hidden_bytes = step
            .per_op
            .iter()
            .find(|(op, _)| *op == BlockOp::OProj)
            .map_or(0.0, |(_, c)| c.act_bytes / 3.0); // one activation slab
        let comm_bytes = calib::ALLREDUCES_PER_LAYER
            * step.layers as f64
            * hidden_bytes
            * self.act_factor
            * calib::ALLREDUCE_CROSS_FRACTION;
        let transfers = calib::ALLREDUCES_PER_LAYER * step.layers as f64;
        let confidential = self.tee.kind.is_confidential();
        self.target
            .topology
            .link
            .transfer_time_s(comm_bytes, transfers, confidential)
    }

    fn fixed_step_cost(&self) -> f64 {
        let mut t = self.target.framework.step_overhead_s();
        if let Some(virt) = self.tee.virt {
            t += virt.td_transition_us_per_token * 1e-6;
        }
        if let Some(sgx) = self.tee.sgx {
            t += sgx.exits_per_token * sgx.exit_cost_us * 1e-6;
            // EPC paging: if the working set exceeds the EPC, the excess is
            // re-paged (encrypt + verify) every pass.
            let excess = (self.footprint - sgx.epc_bytes).max(0.0);
            t += excess * sgx.paging_ns_per_byte * 1e-9;
        }
        t
    }
}

/// Deterministic multiplicative noise for one token.
fn noise_factor(rng: &mut StdRng, tee: &CpuTeeConfig) -> f64 {
    let Some(mee) = tee.mee else {
        // Baselines still jitter a little (scheduling), but far less.
        return lognormal(rng, 0.006);
    };
    let mut f = lognormal(rng, mee.noise_sigma);
    if rng.random::<f64>() < mee.outlier_prob {
        f *= mee.outlier_factor;
    }
    f
}

/// Log-normal multiplier with unit mean.
fn lognormal(rng: &mut StdRng, sigma: f64) -> f64 {
    // Box-Muller.
    let u1: f64 = rng.random::<f64>().max(1e-12);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    (sigma * z - sigma * sigma / 2.0).exp()
}

fn seed_for(target: &CpuTarget, tee: &CpuTeeConfig, dtype: DType, req: &RequestSpec) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    tee.kind.hash(&mut h);
    dtype.hash(&mut h);
    req.hash(&mut h);
    target.topology.sockets.hash(&mut h);
    target.cores_per_socket.hash(&mut h);
    target.amx_enabled.hash(&mut h);
    target.framework.hash(&mut h);
    calib::NOISE_SEED ^ h.finish()
}

/// Time of a single decode step for `batch` sequences at `context`
/// tokens of history — the per-iteration cost a serving scheduler pays
/// (noise-free; used by `cllm-serve`).
#[must_use]
pub fn decode_step_time_s(
    model: &ModelConfig,
    dtype: DType,
    target: &CpuTarget,
    tee: &CpuTeeConfig,
    batch: u64,
    context: u64,
) -> f64 {
    let req = RequestSpec::new(batch.max(1), context.max(1), 1);
    let engine = Engine::new(model, &req, dtype, target, tee);
    let step = req.decode_step(model, dtype, 0);
    engine.step_time(&step, batch.max(1))
}

/// Time to prefill `prompt_tokens` for `batch` sequences (noise-free;
/// used by `cllm-serve` for admission/prefill charging).
#[must_use]
pub fn prefill_time_s(
    model: &ModelConfig,
    dtype: DType,
    target: &CpuTarget,
    tee: &CpuTeeConfig,
    batch: u64,
    prompt_tokens: u64,
) -> f64 {
    let req = RequestSpec::new(batch.max(1), prompt_tokens.max(1), 1);
    let engine = Engine::new(model, &req, dtype, target, tee);
    let step = req.prefill_step(model, dtype);
    engine.step_time(&step, batch.max(1) * prompt_tokens.max(1))
}

/// Stall a decode step pays when `excess_bytes` of resident KV pages sit
/// beyond the platform's protected-residency budget. On SGX the excess
/// is re-paged through the EPC (encrypt + verify) every pass — the same
/// mechanism [`SgxParams::paging_ns_per_byte`] prices for oversized
/// working sets. Platforms whose encrypted memory spans all of DRAM
/// (TDX/SEV/bare/VM) have no residency cliff and pay nothing.
///
/// [`SgxParams::paging_ns_per_byte`]: cllm_tee::platform::SgxParams::paging_ns_per_byte
#[must_use]
pub fn kv_pressure_stall_s(tee: &CpuTeeConfig, excess_bytes: f64) -> f64 {
    let excess = excess_bytes.max(0.0);
    tee.sgx
        .map_or(0.0, |sgx| excess * sgx.paging_ns_per_byte * 1e-9)
}

/// Time to move `bytes` of KV cache between protected and unprotected
/// memory — the cost of swapping a preempted sequence out (or back in)
/// under the `swap` eviction policy. On SGX this is the EPC paging path;
/// elsewhere it is a DRAM copy at [`calib::KV_SWAP_BW_BYTES_PER_S`],
/// derated by the memory-encryption engine when one is present.
#[must_use]
pub fn kv_swap_time_s(tee: &CpuTeeConfig, bytes: f64) -> f64 {
    let bytes = bytes.max(0.0);
    if let Some(sgx) = tee.sgx {
        return bytes * sgx.paging_ns_per_byte * 1e-9;
    }
    let derate = tee.mee.map_or(1.0, |m| m.bandwidth_derate);
    bytes / (calib::KV_SWAP_BW_BYTES_PER_S * derate)
}

/// Simulate one request end to end on a CPU platform.
///
/// Returns per-token latencies (with the paper's noise/outlier model),
/// filtered summaries, throughput and the per-operator decode trace.
#[must_use]
pub fn simulate_cpu(
    model: &ModelConfig,
    req: &RequestSpec,
    dtype: DType,
    target: &CpuTarget,
    tee: &CpuTeeConfig,
) -> SimResult {
    let engine = Engine::new(model, req, dtype, target, tee);
    let mut rng = StdRng::seed_from_u64(seed_for(target, tee, dtype, req));

    // Prefill: all prompt tokens at once; exposure batch is huge (pure
    // streaming), so pass the token count.
    let prefill_step = req.prefill_step(model, dtype);
    let prefill_s = engine.step_time(&prefill_step, req.batch * req.input_tokens.max(1))
        * noise_factor(&mut rng, tee);

    // Decode: one pass per generated token.
    let exposure_batch = req.decode_batch();
    let mut token_latencies_s = Vec::with_capacity(req.output_tokens as usize);
    let mut total_decode = 0.0;
    for pos in 0..req.output_tokens {
        let step = req.decode_step(model, dtype, pos);
        let t = engine.step_time(&step, exposure_batch) * noise_factor(&mut rng, tee);
        token_latencies_s.push(t);
        total_decode += t;
    }

    // Per-op trace at the median decode step, noise-free.
    let median = req.decode_step(model, dtype, req.output_tokens / 2);
    let decode_trace = median
        .per_op
        .iter()
        .map(|(op, cost)| OpTrace {
            op: *op,
            time_s: engine.op_time(*op, cost, exposure_batch),
        })
        .collect();

    let summary = stats::summarize_filtered(&token_latencies_s);
    #[allow(clippy::cast_precision_loss)]
    let decode_tps = if summary.mean > 0.0 {
        req.batch as f64 / summary.mean
    } else {
        0.0
    };
    #[allow(clippy::cast_precision_loss)]
    let e2e_tps = (req.batch * req.output_tokens) as f64 / (prefill_s + total_decode);

    SimResult {
        prefill_s,
        token_latencies_s,
        summary,
        decode_trace,
        decode_tps,
        e2e_tps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_workload::zoo;

    fn run(tee: &CpuTeeConfig, dtype: DType, batch: u64) -> SimResult {
        let model = zoo::llama2_7b();
        let req = RequestSpec::new(batch, 1024, 64);
        let target = CpuTarget::emr1_single_socket();
        simulate_cpu(&model, &req, dtype, &target, tee)
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(&CpuTeeConfig::tdx(), DType::Bf16, 1);
        let b = run(&CpuTeeConfig::tdx(), DType::Bf16, 1);
        assert_eq!(a.token_latencies_s, b.token_latencies_s);
    }

    #[test]
    fn ordering_bare_vm_tdx() {
        let bare = run(&CpuTeeConfig::bare_metal(), DType::Bf16, 6);
        let vm = run(&CpuTeeConfig::vm(), DType::Bf16, 6);
        let tdx = run(&CpuTeeConfig::tdx(), DType::Bf16, 6);
        assert!(bare.summary.mean < vm.summary.mean);
        assert!(vm.summary.mean < tdx.summary.mean);
    }

    #[test]
    fn int8_roughly_halves_latency() {
        let bf16 = run(&CpuTeeConfig::bare_metal(), DType::Bf16, 1);
        let int8 = run(&CpuTeeConfig::bare_metal(), DType::Int8, 1);
        let ratio = bf16.summary.mean / int8.summary.mean;
        assert!((1.5..2.5).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn latency_below_reading_speed() {
        // Section III-D: all systems stay under the 200 ms/word standard.
        for tee in [
            CpuTeeConfig::bare_metal(),
            CpuTeeConfig::sgx(),
            CpuTeeConfig::tdx(),
        ] {
            let r = run(&tee, DType::Bf16, 1);
            assert!(r.summary.mean < 0.2, "{:?}: {}", tee.kind, r.summary.mean);
        }
    }

    #[test]
    fn throughput_grows_with_batch() {
        let a = run(&CpuTeeConfig::bare_metal(), DType::Bf16, 1);
        let b = run(&CpuTeeConfig::bare_metal(), DType::Bf16, 16);
        assert!(b.decode_tps > 2.0 * a.decode_tps);
    }

    #[test]
    fn trace_attention_and_silu_dominate() {
        // Figure 7: self-attention and linear-SiLU are the biggest raw
        // contributors per block.
        let r = run(&CpuTeeConfig::tdx(), DType::Bf16, 4);
        let total: f64 = r.decode_trace.iter().map(|t| t.time_s).sum();
        let attn: f64 = r
            .decode_trace
            .iter()
            .filter(|t| {
                matches!(
                    t.op,
                    BlockOp::AttnScores | BlockOp::AttnContext | BlockOp::QkvProj
                )
            })
            .map(|t| t.time_s)
            .sum();
        let silu: f64 = r
            .decode_trace
            .iter()
            .filter(|t| matches!(t.op, BlockOp::GateUpSilu))
            .map(|t| t.time_s)
            .sum();
        assert!(attn + silu > 0.6 * total);
    }

    #[test]
    fn kv_pressure_only_bites_on_sgx() {
        let gib = 1024.0 * 1024.0 * 1024.0;
        assert!(kv_pressure_stall_s(&CpuTeeConfig::sgx(), gib) > 0.0);
        assert_eq!(kv_pressure_stall_s(&CpuTeeConfig::tdx(), gib), 0.0);
        assert_eq!(kv_pressure_stall_s(&CpuTeeConfig::bare_metal(), gib), 0.0);
        // Negative excess never credits time back.
        assert_eq!(kv_pressure_stall_s(&CpuTeeConfig::sgx(), -gib), 0.0);
    }

    #[test]
    fn kv_swap_is_priciest_on_sgx() {
        let gib = 1024.0 * 1024.0 * 1024.0;
        let sgx = kv_swap_time_s(&CpuTeeConfig::sgx(), gib);
        let tdx = kv_swap_time_s(&CpuTeeConfig::tdx(), gib);
        let bare = kv_swap_time_s(&CpuTeeConfig::bare_metal(), gib);
        assert!(sgx > tdx, "EPC paging must cost more than a TDX copy");
        assert!(tdx > bare, "MEE derate must cost over the bare copy");
        assert!(bare > 0.0);
        assert_eq!(kv_swap_time_s(&CpuTeeConfig::sgx(), 0.0), 0.0);
    }

    #[test]
    fn norms_are_small_fraction_of_block_time() {
        let r = run(&CpuTeeConfig::tdx(), DType::Bf16, 4);
        let total: f64 = r.decode_trace.iter().map(|t| t.time_s).sum();
        let norms: f64 = r
            .decode_trace
            .iter()
            .filter(|t| matches!(t.op, BlockOp::InputNorm | BlockOp::PostAttnNorm))
            .map(|t| t.time_s)
            .sum();
        assert!(norms / total < 0.1, "norm share {}", norms / total);
    }
}
