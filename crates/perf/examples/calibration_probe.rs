//! Calibration probe: prints the simulator's overheads next to the
//! paper's reported bands for quick tuning of `calib` constants.

use cllm_hw::DType;
use cllm_perf::{simulate_cpu, simulate_gpu, throughput_overhead_pct, CpuTarget};
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig};
use cllm_workload::phase::RequestSpec;
use cllm_workload::zoo;

fn main() {
    let m7 = zoo::llama2_7b();

    println!("== Fig 4: EMR1 single socket, 1024/128 ==");
    for dtype in [DType::Bf16, DType::Int8] {
        let thr_req = RequestSpec::new(6, 1024, 128).with_beam(4);
        let lat_req = RequestSpec::new(1, 1024, 128);
        let t1 = CpuTarget::emr1_single_socket();
        let bare_t = simulate_cpu(&m7, &thr_req, dtype, &t1, &CpuTeeConfig::bare_metal());
        let bare_l = simulate_cpu(&m7, &lat_req, dtype, &t1, &CpuTeeConfig::bare_metal());
        for tee in [CpuTeeConfig::vm(), CpuTeeConfig::sgx(), CpuTeeConfig::tdx()] {
            let t = simulate_cpu(&m7, &thr_req, dtype, &t1, &tee);
            let l = simulate_cpu(&m7, &lat_req, dtype, &t1, &tee);
            println!(
                "{:5} {:4}: thr_ovh {:5.2}%  lat_ovh {:5.2}%  (thr {:6.1} tps, lat {:6.1} ms)",
                tee.kind.label(),
                dtype.label(),
                throughput_overhead_pct(bare_t.decode_tps, t.decode_tps),
                (l.summary.mean / bare_l.summary.mean - 1.0) * 100.0,
                t.decode_tps,
                l.summary.mean * 1e3,
            );
        }
    }

    println!("\n== Fig 6: EMR1 dual socket, 1024/128, bf16 ==");
    let t2 = CpuTarget::emr1_dual_socket();
    let thr_req = RequestSpec::new(6, 1024, 128).with_beam(4);
    let lat_req = RequestSpec::new(1, 1024, 128);
    let bare_t = simulate_cpu(&m7, &thr_req, DType::Bf16, &t2, &CpuTeeConfig::bare_metal());
    let bare_l = simulate_cpu(&m7, &lat_req, DType::Bf16, &t2, &CpuTeeConfig::bare_metal());
    for tee in [
        CpuTeeConfig::vm(),
        CpuTeeConfig::vm_thp(),
        CpuTeeConfig::tdx(),
        CpuTeeConfig::sgx(),
    ] {
        let t = simulate_cpu(&m7, &thr_req, DType::Bf16, &t2, &tee);
        let l = simulate_cpu(&m7, &lat_req, DType::Bf16, &t2, &tee);
        let name = match (&tee.kind, tee.hugepage_policy) {
            (cllm_tee::TeeKind::Vm, cllm_hw::HugePagePolicy::Transparent2M) => "VM TH",
            (cllm_tee::TeeKind::Vm, _) => "VM FH",
            (k, _) => k.label(),
        };
        println!(
            "{name:5}: thr_ovh {:6.2}%  lat_ovh {:6.2}%",
            throughput_overhead_pct(bare_t.decode_tps, t.decode_tps),
            (l.summary.mean / bare_l.summary.mean - 1.0) * 100.0,
        );
    }

    println!("\n== Fig 9: EMR2 batch sweep (thr 1 socket), 128/128 ==");
    let e2 = CpuTarget::emr2_single_socket();
    for dtype in [DType::Bf16, DType::Int8] {
        print!("{:4}: ", dtype.label());
        for batch in [1u64, 4, 16, 64, 256, 512] {
            let req = RequestSpec::new(batch, 128, 128);
            let bare = simulate_cpu(&m7, &req, dtype, &e2, &CpuTeeConfig::bare_metal());
            let tdx = simulate_cpu(&m7, &req, dtype, &e2, &CpuTeeConfig::tdx());
            print!(
                "b{batch}={:.1}%({:.0}tps) ",
                throughput_overhead_pct(bare.decode_tps, tdx.decode_tps),
                bare.decode_tps
            );
        }
        println!();
    }

    println!("\n== Fig 10: EMR2 input sweep (b=64, out 128) bf16 ==");
    for input in [32u64, 128, 512, 1024, 2048, 4096] {
        let req = RequestSpec::new(64, input, 128);
        let bare = simulate_cpu(&m7, &req, DType::Bf16, &e2, &CpuTeeConfig::bare_metal());
        let tdx = simulate_cpu(&m7, &req, DType::Bf16, &e2, &CpuTeeConfig::tdx());
        print!(
            "in{input}={:.1}% ",
            throughput_overhead_pct(bare.e2e_tps, tdx.e2e_tps)
        );
    }
    println!();

    println!("\n== Fig 8: AMX ablation EMR2, 128/128, thr 1 socket ==");
    for dtype in [DType::Bf16, DType::Int8] {
        for batch in [1u64, 16, 64] {
            let req = RequestSpec::new(batch, 128, 128);
            let amx = simulate_cpu(&m7, &req, dtype, &e2, &CpuTeeConfig::bare_metal());
            let noamx = simulate_cpu(
                &m7,
                &req,
                dtype,
                &e2.clone().with_amx(false),
                &CpuTeeConfig::bare_metal(),
            );
            let tdx_amx = simulate_cpu(&m7, &req, dtype, &e2, &CpuTeeConfig::tdx());
            let tdx_noamx = simulate_cpu(
                &m7,
                &req,
                dtype,
                &e2.clone().with_amx(false),
                &CpuTeeConfig::tdx(),
            );
            println!(
                "{} b{batch}: amx_speedup {:.2}x | tdx_ovh amx {:.1}% noamx {:.1}%",
                dtype.label(),
                noamx.summary.mean / amx.summary.mean,
                throughput_overhead_pct(amx.decode_tps, tdx_amx.decode_tps),
                throughput_overhead_pct(noamx.decode_tps, tdx_noamx.decode_tps),
            );
        }
    }

    println!("\n== Fig 11: GPU batch/input sweep bf16 ==");
    let gpu = cllm_hw::presets::h100_nvl();
    for batch in [1u64, 8, 32, 128] {
        for input in [128u64, 1024] {
            let req = RequestSpec::new(batch, input, 128);
            let raw = simulate_gpu(&m7, &req, DType::Bf16, &gpu, &GpuTeeConfig::native());
            let cc = simulate_gpu(&m7, &req, DType::Bf16, &gpu, &GpuTeeConfig::confidential());
            print!(
                "b{batch}/in{input}={:.1}%({:.0}tps) ",
                throughput_overhead_pct(raw.e2e_tps, cc.e2e_tps),
                raw.e2e_tps
            );
        }
    }
    println!();

    println!("\n== Fig 5: 70B dual socket bf16 (lat b=1) ==");
    let m70 = zoo::llama2_70b();
    let req = RequestSpec::new(1, 1024, 32);
    let vm_b = simulate_cpu(&m70, &req, DType::Bf16, &t2, &CpuTeeConfig::vm());
    let vm_nb = simulate_cpu(&m70, &req, DType::Bf16, &t2, &CpuTeeConfig::vm_unbound());
    let tdx = simulate_cpu(&m70, &req, DType::Bf16, &t2, &CpuTeeConfig::tdx());
    println!(
        "VM B {:.0}ms | TDX {:.0}ms (+{:.1}% vs VM B) | VM NB {:.0}ms (+{:.1}%)",
        vm_b.summary.mean * 1e3,
        tdx.summary.mean * 1e3,
        (tdx.summary.mean / vm_b.summary.mean - 1.0) * 100.0,
        vm_nb.summary.mean * 1e3,
        (vm_nb.summary.mean / vm_b.summary.mean - 1.0) * 100.0,
    );

    println!("\n== Fig 12 knee: EMR2 core sweep b=64 128/128 bf16 ==");
    for cores in [4u32, 8, 16, 32, 48, 60] {
        let req = RequestSpec::new(64, 128, 128);
        let tgt = CpuTarget::emr2_single_socket().with_cores(cores);
        let bare = simulate_cpu(&m7, &req, DType::Bf16, &tgt, &CpuTeeConfig::bare_metal());
        let tdx = simulate_cpu(&m7, &req, DType::Bf16, &tgt, &CpuTeeConfig::tdx());
        print!(
            "c{cores}={:.0}tps({:.1}%) ",
            bare.e2e_tps,
            throughput_overhead_pct(bare.e2e_tps, tdx.e2e_tps)
        );
    }
    println!();
}
