//! Discrete-event serving simulator for confidential LLM deployments.
//!
//! The paper reports *offline* throughput and latency; production
//! deployments care about *online*, user-perceived service levels under
//! load — the 200 ms/word reading-speed standard the paper cites is a
//! per-user bound. This crate closes that gap with a continuous-batching
//! serving simulator in the style of vLLM/DeepSpeed-Inference schedulers:
//!
//! * [`kernel`] — the discrete-event core shared by the single-node and
//!   cluster loops: a binary-heap event queue with deterministic
//!   `(time, key, seq)` tie-breaking, slab-allocated per-request state
//!   (dense indices, not hash lookups, on the hot path), and event
//!   counters that make throughput measurable.
//! * [`workload::ArrivalProcess`] — deterministic-seeded Poisson request
//!   arrivals with configurable prompt/output length distributions.
//! * [`scheduler::ContinuousBatcher`] — iteration-level scheduling:
//!   requests join the running batch between decode steps, bounded by a
//!   batch cap and a KV-memory budget. Three KV disciplines
//!   ([`scheduler::KvPolicy`]): conservative full-extent reservation
//!   (default), and two vLLM-style paged policies over a
//!   `cllm_workload::kv::PagePool` — admit on prompt pages, grow
//!   page-by-page, and under pressure preempt tail-first, either
//!   dropping the victim's pages (recompute) or swapping them through
//!   the platform's priced paging path (swap).
//! * [`sim`] — the event loop: prefill admission, per-step decode timing
//!   from the calibrated `cllm-perf` roofline (so every TEE mechanism —
//!   memory encryption, hugepage fallback, TD transitions — shapes the
//!   tail), and per-request records.
//! * [`slo`] — time-to-first-token / time-per-output-token percentiles
//!   and SLO attainment, comparable across bare metal, TDX, SGX and
//!   cGPUs.
//! * [`faults`] — deterministic, seeded injection of TEE-specific
//!   failures (attestation failures, enclave crashes, AEX/TD-exit
//!   storms, EPC-paging and bounce-buffer stalls, spot preemptions);
//!   the event loop recovers with bounded retry, exponential backoff
//!   and re-attestation tolls.
//! * [`invariants`] — the unified invariant registry: one typed
//!   definition of every correctness invariant (conservation, billing
//!   identity, pool conservation, time attribution, retry budgets,
//!   breaker accounting, finiteness), shared by the simulators' debug
//!   asserts, the property tests, the CLI, and the `cllm-chaos` search
//!   engine.
//! * [`router`] — cluster admission control (queue caps, deadlines, a
//!   `Rejected` terminal state) and per-node circuit breakers whose
//!   close pays a real attested re-handshake.
//! * [`cluster`] — the multi-node simulation: heterogeneous fleets
//!   behind a failover router surviving correlated preemption waves,
//!   with cross-platform spills priced via `cllm-cost`.
//! * [`autoscale`] — a deterministic reactive autoscaler over the same
//!   kernel: flash-crowd traffic from `cllm_workload::trace`, scale-ups
//!   that pay the real attested handshake plus weight-unseal before
//!   joining routing (optionally skipped by a pre-attested warm pool at
//!   carrying cost), graceful scale-down drains, tiered shedding, retry
//!   budgets with a global storm circuit, and brownout degradation.
//!
//! Both event loops are instrumented with `cllm-obs` span tracing as a
//! pure observer of the simulated clock: `sim::simulate_serving_traced`
//! and `cluster::simulate_cluster_traced` return the same report as
//! their untraced twins plus a [`cllm_obs::Trace`] whose per-node spans
//! tile the makespan (`busy + idle + outage`) and whose per-request
//! chains sum to each end-to-end latency.
//!
//! # Example
//!
//! ```
//! use cllm_serve::sim::{simulate_serving, ServingConfig};
//! use cllm_tee::platform::CpuTeeConfig;
//!
//! let cfg = ServingConfig::small_test();
//! let report = simulate_serving(&cfg, &CpuTeeConfig::tdx());
//! assert!(report.completed > 0);
//! assert!(report.tpot_p50_s > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod autoscale;
pub mod cluster;
pub mod faults;
pub mod invariants;
pub mod kernel;
#[doc(hidden)]
pub mod legacy;
pub mod router;
pub mod scheduler;
pub mod sim;
pub mod slo;
pub mod workload;
