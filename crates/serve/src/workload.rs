//! Request arrival processes and shape distributions.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// One inference request as it enters the system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Request id (arrival order).
    pub id: u64,
    /// Arrival time, seconds from simulation start.
    pub arrival_s: f64,
    /// Prompt length in tokens.
    pub prompt_tokens: u64,
    /// Output budget in tokens.
    pub output_tokens: u64,
}

/// Poisson arrivals with log-uniform prompt/output lengths — the shape of
/// real chat/serving traces (many short, few long).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArrivalProcess {
    /// Mean arrival rate, requests/second.
    pub rate_per_s: f64,
    /// Prompt length range (log-uniform), tokens.
    pub prompt_range: (u64, u64),
    /// Output length range (log-uniform), tokens.
    pub output_range: (u64, u64),
    /// RNG seed (deterministic trace).
    pub seed: u64,
}

impl ArrivalProcess {
    /// A modest chat-like workload.
    #[must_use]
    pub fn chat(rate_per_s: f64, seed: u64) -> Self {
        ArrivalProcess {
            rate_per_s,
            prompt_range: (32, 1024),
            output_range: (16, 256),
            seed,
        }
    }

    /// Generate the deterministic request trace for a horizon of
    /// `duration_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if the rate is not positive or a range is empty/reversed.
    #[must_use]
    pub fn trace(&self, duration_s: f64) -> Vec<Request> {
        assert!(self.rate_per_s > 0.0, "arrival rate must be positive");
        assert!(self.prompt_range.0 >= 1 && self.prompt_range.0 <= self.prompt_range.1);
        assert!(self.output_range.0 >= 1 && self.output_range.0 <= self.output_range.1);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5EED_5EED);
        let mut out = Vec::new();
        let mut t = 0.0;
        let mut id = 0;
        loop {
            // Exponential inter-arrival times.
            let u: f64 = rng.random::<f64>().max(1e-12);
            t += -u.ln() / self.rate_per_s;
            if t >= duration_s {
                break;
            }
            out.push(Request {
                id,
                arrival_s: t,
                prompt_tokens: log_uniform(&mut rng, self.prompt_range),
                output_tokens: log_uniform(&mut rng, self.output_range),
            });
            id += 1;
        }
        out
    }
}

#[allow(
    clippy::cast_precision_loss,
    clippy::cast_sign_loss,
    clippy::cast_possible_truncation
)]
fn log_uniform(rng: &mut StdRng, (lo, hi): (u64, u64)) -> u64 {
    if lo == hi {
        return lo;
    }
    let (llo, lhi) = ((lo as f64).ln(), (hi as f64).ln());
    let v = (llo + rng.random::<f64>() * (lhi - llo)).exp();
    (v.round() as u64).clamp(lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_is_deterministic() {
        let p = ArrivalProcess::chat(2.0, 7);
        assert_eq!(p.trace(30.0), p.trace(30.0));
    }

    #[test]
    fn rate_is_respected() {
        let p = ArrivalProcess::chat(5.0, 1);
        let trace = p.trace(200.0);
        let rate = trace.len() as f64 / 200.0;
        assert!((rate - 5.0).abs() < 1.0, "observed rate {rate}");
    }

    #[test]
    fn arrivals_are_ordered_and_in_horizon() {
        let trace = ArrivalProcess::chat(3.0, 2).trace(50.0);
        for w in trace.windows(2) {
            assert!(w[0].arrival_s <= w[1].arrival_s);
        }
        assert!(trace.iter().all(|r| r.arrival_s < 50.0));
    }

    #[test]
    fn shapes_within_ranges() {
        let p = ArrivalProcess::chat(10.0, 3);
        for r in p.trace(50.0) {
            assert!((32..=1024).contains(&r.prompt_tokens));
            assert!((16..=256).contains(&r.output_tokens));
        }
    }

    #[test]
    fn log_uniform_favors_short_requests() {
        // Median of a log-uniform over [32, 1024] is ~181, well below the
        // arithmetic midpoint of 528.
        let p = ArrivalProcess::chat(20.0, 4);
        let mut lens: Vec<u64> = p.trace(100.0).iter().map(|r| r.prompt_tokens).collect();
        lens.sort_unstable();
        let median = lens[lens.len() / 2];
        assert!(median < 400, "median prompt {median}");
    }

    #[test]
    #[should_panic(expected = "arrival rate")]
    fn zero_rate_rejected() {
        let mut p = ArrivalProcess::chat(1.0, 0);
        p.rate_per_s = 0.0;
        let _ = p.trace(1.0);
    }
}
