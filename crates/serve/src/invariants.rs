//! The unified invariant registry: one definition of every correctness
//! invariant the serving simulators maintain, shared by the debug
//! asserts inside the simulators, the property tests, the CLI's
//! `conservation : ok` line, and the `cllm-chaos` search engine.
//!
//! Each check returns the full list of violations (empty means the
//! invariant held everywhere), so a chaos run can report *every* broken
//! invariant of a failing point, not just the first.
//!
//! | invariant | check |
//! |---|---|
//! | `completed + aborted == arrivals` (single node) | [`check_serving`] |
//! | `completed + aborted + rejected == arrivals` (cluster) | [`check_cluster`] |
//! | `completed + aborted + shed == arrivals` (autoscale) | [`check_autoscale`] |
//! | billing identity `total == rental + warm_pool + base` | [`check_autoscale`] |
//! | tier slices tile the totals | [`check_autoscale`] |
//! | scale-up ledger `scale_ups == warm + cold` | [`check_autoscale`] |
//! | `0 <= availability <= 1` | [`check_serving`], [`check_cluster`] |
//! | breaker accounting `closes <= trips` | [`check_cluster`] |
//! | every report field finite | all three report checks |
//! | per-request retry budget respected | [`check_retry_budget`] |
//! | KV pool `free + in_use == total` | [`check_pool`] |
//! | time attribution `busy + idle + outage == makespan` | [`check_trace`] |
//! | infer token ledger `emitted == accepted + resampled` | [`check_infer`] |
//! | no non-finite logit reaches an emission decision | [`check_infer`] |

use crate::autoscale::AutoscaleReport;
use crate::cluster::ClusterReport;
use crate::sim::RequestRecord;
use crate::slo::ServingReport;
use cllm_obs::Trace;
use cllm_workload::kv::PagePool;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Absolute tolerance for floating-point identities (billing sums,
/// attribution tiling). Generous for the horizons simulated here while
/// still catching any real accounting bug.
pub const EPS: f64 = 1e-6;

/// One broken invariant, with enough context to read the failure
/// without re-running the simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InvariantViolation {
    /// Some arrival ended in no terminal state, or in more than one:
    /// `completed + aborted + rejected + shed != arrivals` (the rejected
    /// and shed legs are zero for paths without those outcomes).
    Conservation {
        /// Which serving path produced the report.
        path: String,
        /// Requests that completed.
        completed: usize,
        /// Requests aborted after exhausting retries.
        aborted: usize,
        /// Requests the router rejected (cluster only).
        rejected: usize,
        /// Requests shed by admission control (autoscale only).
        shed: usize,
        /// Requests that arrived.
        arrivals: usize,
    },
    /// The bill does not decompose: `total != rental + warm_pool + base`.
    BillingIdentity {
        /// Reported total, dollars.
        total_usd: f64,
        /// Rental leg, dollars.
        rental_usd: f64,
        /// Warm-pool carrying leg, dollars.
        warm_pool_usd: f64,
        /// Base-fleet leg, dollars.
        base_usd: f64,
    },
    /// A KV page pool lost track of pages: `free + in_use != total`, or
    /// the per-sequence holds disagree with `in_use`.
    PoolConservation {
        /// Free pages.
        free: u64,
        /// Pages held by sequences.
        in_use: u64,
        /// Pool capacity in pages.
        total: u64,
    },
    /// An availability figure left `[0, 1]`.
    AvailabilityRange {
        /// Which node (or `"cluster"` for the fleet mean).
        scope: String,
        /// The offending value.
        value: f64,
    },
    /// A report field that must be finite is `NaN` or infinite.
    NonFinite {
        /// Field name as it appears in the report.
        field: String,
        /// The offending value.
        value: f64,
    },
    /// A surviving record retried more times than the per-request
    /// budget allows.
    RetryBudgetExceeded {
        /// Request id.
        id: u64,
        /// Retries the record actually took.
        retries: u32,
        /// The configured per-request budget.
        budget: u32,
    },
    /// A breaker closed more times than it tripped — every close needs
    /// a preceding trip, so `closes <= trips` always.
    BreakerAccounting {
        /// Fleet index of the offending node.
        node: usize,
        /// Trips recorded.
        trips: u64,
        /// Closes recorded.
        closes: u64,
    },
    /// The scale-up ledger does not balance:
    /// `scale_ups != warm_promotions + cold_starts`.
    ScaleUpLedger {
        /// Scale-up decisions executed.
        scale_ups: u64,
        /// Served from the warm pool.
        warm_promotions: u64,
        /// Paid the full cold boot.
        cold_starts: u64,
    },
    /// A per-tier slice does not tile its fleet-wide total.
    TierAccounting {
        /// Which total ("arrivals", "completed", "shed", "aborted").
        field: String,
        /// Sum over the three tier slices.
        tier_sum: usize,
        /// The fleet-wide total.
        total: usize,
    },
    /// Node time attribution failed: spans overlap, leave gaps, or
    /// `busy + idle + outage != makespan` (from [`cllm_obs::check`]).
    TimeAttribution {
        /// The attribution checker's message.
        detail: String,
    },
    /// A rule imposed on a specific run (chaos plants these to exercise
    /// the shrinker), not a structural invariant of the simulators.
    Forbidden {
        /// The planted rule that fired.
        rule: String,
        /// What was observed.
        detail: String,
    },
    /// The functional infer loop emitted a token ledger that does not
    /// balance: every emitted token must be either an accepted draft or
    /// a target resample, and no more can be accepted than drafted.
    TokenConservation {
        /// Tokens emitted.
        emitted: usize,
        /// Draft proposals accepted.
        accepted: usize,
        /// Target resamples emitted on rejection.
        resampled: usize,
        /// Draft proposals made.
        drafted: usize,
    },
    /// A logits vector used for an emission decision contained NaN/inf
    /// — generation must never sample from a poisoned distribution.
    NonFiniteLogit {
        /// Non-finite entries observed across the run.
        count: usize,
        /// Tokens emitted by the run (for scale).
        emitted: usize,
    },
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::Conservation {
                path,
                completed,
                aborted,
                rejected,
                shed,
                arrivals,
            } => write!(
                f,
                "{path} conservation: {completed} completed + {aborted} aborted \
                 + {rejected} rejected + {shed} shed != {arrivals} arrivals"
            ),
            InvariantViolation::BillingIdentity {
                total_usd,
                rental_usd,
                warm_pool_usd,
                base_usd,
            } => write!(
                f,
                "billing identity: total ${total_usd} != rental ${rental_usd} \
                 + warm pool ${warm_pool_usd} + base ${base_usd}"
            ),
            InvariantViolation::PoolConservation {
                free,
                in_use,
                total,
            } => write!(
                f,
                "KV pool conservation: {free} free + {in_use} in use != {total} total"
            ),
            InvariantViolation::AvailabilityRange { scope, value } => {
                write!(f, "availability of {scope} out of [0, 1]: {value}")
            }
            InvariantViolation::NonFinite { field, value } => {
                write!(f, "non-finite report field {field}: {value}")
            }
            InvariantViolation::RetryBudgetExceeded {
                id,
                retries,
                budget,
            } => write!(
                f,
                "request {id} retried {retries} times past a budget of {budget}"
            ),
            InvariantViolation::BreakerAccounting {
                node,
                trips,
                closes,
            } => write!(
                f,
                "node {node} breaker closed {closes} times but tripped only {trips}"
            ),
            InvariantViolation::ScaleUpLedger {
                scale_ups,
                warm_promotions,
                cold_starts,
            } => write!(
                f,
                "scale-up ledger: {scale_ups} scale-ups != {warm_promotions} \
                 warm promotions + {cold_starts} cold starts"
            ),
            InvariantViolation::TierAccounting {
                field,
                tier_sum,
                total,
            } => write!(
                f,
                "tier slices of {field} sum to {tier_sum}, total is {total}"
            ),
            InvariantViolation::TimeAttribution { detail } => {
                write!(f, "time attribution: {detail}")
            }
            InvariantViolation::Forbidden { rule, detail } => {
                write!(f, "planted rule {rule} violated: {detail}")
            }
            InvariantViolation::TokenConservation {
                emitted,
                accepted,
                resampled,
                drafted,
            } => write!(
                f,
                "token conservation: {emitted} emitted != {accepted} accepted \
                 + {resampled} resampled (drafted {drafted})"
            ),
            InvariantViolation::NonFiniteLogit { count, emitted } => {
                write!(
                    f,
                    "{count} non-finite logit entries across {emitted} emitted tokens"
                )
            }
        }
    }
}

/// A stable short label for grouping violations in chaos summaries and
/// repro files.
impl InvariantViolation {
    /// Kebab-case label naming the invariant class.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            InvariantViolation::Conservation { .. } => "conservation",
            InvariantViolation::BillingIdentity { .. } => "billing-identity",
            InvariantViolation::PoolConservation { .. } => "pool-conservation",
            InvariantViolation::AvailabilityRange { .. } => "availability-range",
            InvariantViolation::NonFinite { .. } => "non-finite",
            InvariantViolation::RetryBudgetExceeded { .. } => "retry-budget",
            InvariantViolation::BreakerAccounting { .. } => "breaker-accounting",
            InvariantViolation::ScaleUpLedger { .. } => "scale-up-ledger",
            InvariantViolation::TierAccounting { .. } => "tier-accounting",
            InvariantViolation::TimeAttribution { .. } => "time-attribution",
            InvariantViolation::Forbidden { .. } => "forbidden",
            InvariantViolation::TokenConservation { .. } => "token-conservation",
            InvariantViolation::NonFiniteLogit { .. } => "forbid-nonfinite-logits",
        }
    }
}

fn push_finite(out: &mut Vec<InvariantViolation>, field: &str, value: f64) {
    if !value.is_finite() {
        out.push(InvariantViolation::NonFinite {
            field: field.to_string(),
            value,
        });
    }
}

fn check_availability(out: &mut Vec<InvariantViolation>, scope: &str, value: f64) {
    if !value.is_finite() || !(0.0..=1.0).contains(&value) {
        out.push(InvariantViolation::AvailabilityRange {
            scope: scope.to_string(),
            value,
        });
    }
}

fn check_records(out: &mut Vec<InvariantViolation>, records: &[RequestRecord]) {
    for r in records {
        for (field, v) in [
            ("record.ttft_s", r.ttft_s),
            ("record.tpot_s", r.tpot_s),
            ("record.e2e_s", r.e2e_s),
        ] {
            push_finite(out, &format!("{field}[{}]", r.id), v);
        }
    }
}

/// Check a single-node serving report: conservation
/// (`completed + aborted == arrivals`), availability in `[0, 1]`, one
/// record per completion, and every field finite.
#[must_use]
pub fn check_serving(r: &ServingReport) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    if r.completed + r.aborted != r.arrivals {
        out.push(InvariantViolation::Conservation {
            path: "single-node".to_string(),
            completed: r.completed,
            aborted: r.aborted,
            rejected: 0,
            shed: 0,
            arrivals: r.arrivals,
        });
    }
    check_availability(&mut out, "node", r.availability);
    for (field, v) in [
        ("makespan_s", r.makespan_s),
        ("goodput_tps", r.goodput_tps),
        ("queue_wait_mean_s", r.queue_wait_mean_s),
        ("queue_wait_p99_s", r.queue_wait_p99_s),
        ("ttft_p50_s", r.ttft_p50_s),
        ("ttft_p95_s", r.ttft_p95_s),
        ("tpot_p50_s", r.tpot_p50_s),
        ("tpot_p95_s", r.tpot_p95_s),
        ("swap_out_bytes", r.swap_out_bytes),
        ("swap_in_bytes", r.swap_in_bytes),
    ] {
        push_finite(&mut out, field, v);
    }
    check_records(&mut out, &r.records);
    out
}

/// Check a cluster report: conservation
/// (`completed + aborted + rejected == arrivals`), per-node and mean
/// availability in `[0, 1]`, per-node completions tiling the total,
/// breaker accounting (`closes <= trips`), and every field finite.
#[must_use]
pub fn check_cluster(r: &ClusterReport) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    if r.completed + r.aborted + r.rejected != r.arrivals {
        out.push(InvariantViolation::Conservation {
            path: "cluster".to_string(),
            completed: r.completed,
            aborted: r.aborted,
            rejected: r.rejected,
            shed: 0,
            arrivals: r.arrivals,
        });
    }
    check_availability(&mut out, "cluster", r.availability);
    for (field, v) in [
        ("makespan_s", r.makespan_s),
        ("goodput_tps", r.goodput_tps),
        ("ttft_p50_s", r.ttft_p50_s),
        ("ttft_p99_s", r.ttft_p99_s),
        ("swap_out_bytes", r.swap_out_bytes),
        ("swap_in_bytes", r.swap_in_bytes),
    ] {
        push_finite(&mut out, field, v);
    }
    let node_sum: usize = r.nodes.iter().map(|n| n.completed).sum();
    if node_sum != r.completed {
        out.push(InvariantViolation::TierAccounting {
            field: "node completions".to_string(),
            tier_sum: node_sum,
            total: r.completed,
        });
    }
    for (i, n) in r.nodes.iter().enumerate() {
        check_availability(&mut out, &format!("node {i}"), n.availability);
        push_finite(&mut out, &format!("nodes[{i}].downtime_s"), n.downtime_s);
        if n.breaker_closes > n.breaker_trips {
            out.push(InvariantViolation::BreakerAccounting {
                node: i,
                trips: n.breaker_trips,
                closes: n.breaker_closes,
            });
        }
    }
    check_records(&mut out, &r.records);
    out
}

/// Check an autoscale report: conservation
/// (`completed + aborted + shed == arrivals`), the billing identity,
/// tier slices tiling the totals, the scale-up ledger, and every field
/// finite.
#[must_use]
pub fn check_autoscale(r: &AutoscaleReport) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    if r.completed + r.aborted + r.shed != r.arrivals {
        out.push(InvariantViolation::Conservation {
            path: "autoscale".to_string(),
            completed: r.completed,
            aborted: r.aborted,
            rejected: 0,
            shed: r.shed,
            arrivals: r.arrivals,
        });
    }
    let parts = r.rental_cost_usd + r.warm_pool_cost_usd + r.base_cost_usd;
    if !parts.is_finite() || (r.total_cost_usd - parts).abs() > EPS {
        out.push(InvariantViolation::BillingIdentity {
            total_usd: r.total_cost_usd,
            rental_usd: r.rental_cost_usd,
            warm_pool_usd: r.warm_pool_cost_usd,
            base_usd: r.base_cost_usd,
        });
    }
    if r.scale_ups != r.warm_promotions + r.cold_starts {
        out.push(InvariantViolation::ScaleUpLedger {
            scale_ups: r.scale_ups,
            warm_promotions: r.warm_promotions,
            cold_starts: r.cold_starts,
        });
    }
    for (field, total, per_tier) in [
        ("arrivals", r.arrivals, r.tiers.map(|t| t.arrivals)),
        ("completed", r.completed, r.tiers.map(|t| t.completed)),
        ("shed", r.shed, r.tiers.map(|t| t.shed)),
        ("aborted", r.aborted, r.tiers.map(|t| t.aborted)),
    ] {
        let tier_sum: usize = per_tier.iter().sum();
        if tier_sum != total {
            out.push(InvariantViolation::TierAccounting {
                field: field.to_string(),
                tier_sum,
                total,
            });
        }
    }
    for (field, v) in [
        ("makespan_s", r.makespan_s),
        ("goodput_tps", r.goodput_tps),
        ("cold_start_s", r.cold_start_s),
        ("unseal_s", r.unseal_s),
        ("ttft_p50_s", r.ttft_p50_s),
        ("ttft_p99_s", r.ttft_p99_s),
        ("ttft_p99_burst_s", r.ttft_p99_burst_s),
        ("rental_cost_usd", r.rental_cost_usd),
        ("warm_pool_cost_usd", r.warm_pool_cost_usd),
        ("base_cost_usd", r.base_cost_usd),
        ("total_cost_usd", r.total_cost_usd),
        ("usd_per_mtok", r.usd_per_mtok),
    ] {
        push_finite(&mut out, field, v);
    }
    check_records(&mut out, &r.records);
    out
}

/// Check that no surviving record exceeded the per-request retry
/// budget. The budget is a config knob, not a report field, so callers
/// (chaos, property tests) pass it in.
#[must_use]
pub fn check_retry_budget(records: &[RequestRecord], per_request: u32) -> Vec<InvariantViolation> {
    records
        .iter()
        .filter(|r| r.retries > per_request)
        .map(|r| InvariantViolation::RetryBudgetExceeded {
            id: r.id,
            retries: r.retries,
            budget: per_request,
        })
        .collect()
}

/// Check KV page-pool conservation: `free + in_use == total` and the
/// per-sequence holds agree with `in_use`.
#[must_use]
pub fn check_pool(pool: &PagePool) -> Vec<InvariantViolation> {
    if pool.conserved() {
        Vec::new()
    } else {
        vec![InvariantViolation::PoolConservation {
            free: pool.free_pages(),
            in_use: pool.pages_in_use(),
            total: pool.total_pages(),
        }]
    }
}

/// Check node time attribution over an emitted trace: spans tile each
/// node's timeline (`busy + idle + outage == makespan`) with no overlap
/// and gapless request chains. Wraps [`cllm_obs::check`].
#[must_use]
pub fn check_trace(trace: &Trace, eps: f64) -> Vec<InvariantViolation> {
    cllm_obs::check(trace, eps)
        .errors
        .into_iter()
        .map(|detail| InvariantViolation::TimeAttribution { detail })
        .collect()
}

/// Counters of one functional infer-loop run (vanilla, batched or
/// speculative decode in `cllm-infer`), checked by [`check_infer`].
/// Plain numbers so this crate needs no dependency on the engine; the
/// chaos runner builds it from the engine's `SpecStats`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InferLoopReport {
    /// Tokens the caller asked for.
    pub requested: usize,
    /// Tokens actually emitted.
    pub emitted: usize,
    /// Draft proposals made (0 for non-speculative decode).
    pub drafted: usize,
    /// Draft proposals accepted verbatim.
    pub accepted: usize,
    /// Target resamples emitted on draft rejection. For non-speculative
    /// decode every token counts as a resample, keeping the ledger total.
    pub resampled: usize,
    /// Non-finite entries observed across all emission logits.
    pub nonfinite_logits: usize,
}

/// Check the infer loop's token ledger and logit health:
/// `emitted == accepted + resampled`, `accepted <= drafted`,
/// `emitted <= requested`, and no non-finite logit ever reached an
/// emission decision (`forbid-nonfinite-logits`).
#[must_use]
pub fn check_infer(report: &InferLoopReport) -> Vec<InvariantViolation> {
    let mut out = Vec::new();
    if report.emitted != report.accepted + report.resampled
        || report.accepted > report.drafted
        || report.emitted > report.requested
    {
        out.push(InvariantViolation::TokenConservation {
            emitted: report.emitted,
            accepted: report.accepted,
            resampled: report.resampled,
            drafted: report.drafted,
        });
    }
    if report.nonfinite_logits > 0 {
        out.push(InvariantViolation::NonFiniteLogit {
            count: report.nonfinite_logits,
            emitted: report.emitted,
        });
    }
    out
}

/// Render a violation list for an assert or log line. Empty input
/// renders as `"ok"`.
#[must_use]
pub fn describe(violations: &[InvariantViolation]) -> String {
    if violations.is_empty() {
        return "ok".to_string();
    }
    violations
        .iter()
        .map(ToString::to_string)
        .collect::<Vec<_>>()
        .join("; ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::{simulate_serving, ServingConfig};
    use cllm_tee::platform::CpuTeeConfig;

    #[test]
    fn clean_run_has_no_violations() {
        let report = simulate_serving(&ServingConfig::small_test(), &CpuTeeConfig::tdx());
        let v = check_serving(&report);
        assert!(v.is_empty(), "{}", describe(&v));
    }

    #[test]
    fn broken_conservation_is_reported() {
        let mut report = simulate_serving(&ServingConfig::small_test(), &CpuTeeConfig::tdx());
        report.arrivals += 1;
        let v = check_serving(&report);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].label(), "conservation");
        assert!(describe(&v).contains("single-node conservation"));
    }

    #[test]
    fn non_finite_fields_are_reported_by_name() {
        let mut report = simulate_serving(&ServingConfig::small_test(), &CpuTeeConfig::tdx());
        report.goodput_tps = f64::NAN;
        report.ttft_p95_s = f64::INFINITY;
        let v = check_serving(&report);
        let labels: Vec<_> = v.iter().map(InvariantViolation::label).collect();
        assert_eq!(labels, ["non-finite", "non-finite"]);
        assert!(describe(&v).contains("goodput_tps"));
        assert!(describe(&v).contains("ttft_p95_s"));
    }

    #[test]
    fn availability_out_of_range_is_reported() {
        let mut report = simulate_serving(&ServingConfig::small_test(), &CpuTeeConfig::tdx());
        report.availability = 1.5;
        let v = check_serving(&report);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].label(), "availability-range");
    }

    #[test]
    fn retry_budget_check_flags_only_offenders() {
        let records = vec![
            crate::sim::RequestRecord {
                id: 0,
                ttft_s: 0.1,
                tpot_s: 0.01,
                e2e_s: 0.2,
                retries: 2,
            },
            crate::sim::RequestRecord {
                id: 1,
                ttft_s: 0.1,
                tpot_s: 0.01,
                e2e_s: 0.2,
                retries: 5,
            },
        ];
        let v = check_retry_budget(&records, 3);
        assert_eq!(v.len(), 1);
        assert!(matches!(
            v[0],
            InvariantViolation::RetryBudgetExceeded {
                id: 1,
                retries: 5,
                budget: 3
            }
        ));
    }

    #[test]
    fn pool_conservation_passes_on_a_fresh_pool() {
        let pool = PagePool::new(64, 16);
        assert!(check_pool(&pool).is_empty());
    }

    #[test]
    fn clean_infer_ledger_passes() {
        let report = InferLoopReport {
            requested: 16,
            emitted: 16,
            drafted: 20,
            accepted: 11,
            resampled: 5,
            nonfinite_logits: 0,
        };
        assert!(check_infer(&report).is_empty());
    }

    #[test]
    fn broken_infer_ledger_is_reported() {
        let mut report = InferLoopReport {
            requested: 16,
            emitted: 16,
            drafted: 20,
            accepted: 11,
            resampled: 5,
            nonfinite_logits: 0,
        };
        report.emitted += 1; // a token appeared from nowhere
        let v = check_infer(&report);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].label(), "token-conservation");

        report.emitted -= 1;
        report.accepted = 30; // more accepted than drafted
        let v = check_infer(&report);
        assert_eq!(v.len(), 1, "{}", describe(&v));
    }

    #[test]
    fn nonfinite_logits_are_forbidden() {
        let report = InferLoopReport {
            requested: 8,
            emitted: 8,
            drafted: 0,
            accepted: 0,
            resampled: 8,
            nonfinite_logits: 3,
        };
        let v = check_infer(&report);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].label(), "forbid-nonfinite-logits");
        assert!(describe(&v).contains("non-finite logit"));
    }

    #[test]
    fn violations_serialize_round_trip() {
        let v = InvariantViolation::BillingIdentity {
            total_usd: 10.0,
            rental_usd: 4.0,
            warm_pool_usd: 3.0,
            base_usd: 2.0,
        };
        let json = serde_json::to_string(&v).expect("serializes");
        let back: InvariantViolation = serde_json::from_str(&json).expect("parses");
        assert_eq!(v, back);
    }
}
