//! Attestation-aware reactive autoscaling with graceful degradation.
//!
//! The paper prices confidential inference at steady state; this module
//! answers the transient question its cost story raises: **what does a
//! TEE scale-up actually cost when a flash crowd hits?** Every node an
//! autoscaler rents must pay the attested handshake plus the
//! weight-unseal copy through the platform's protected path *before it
//! serves a single token* — on SGX that is an EPC-paged walk over the
//! whole weight footprint. A pre-attested warm pool skips the toll at a
//! steady carrying cost; the break-even between the two is the headline
//! of the `flash_crowd` experiment.
//!
//! The driver reuses the PR-6 discrete-event kernel and the cluster
//! loop's node machinery, adding:
//!
//! * **a dynamic fleet** — nodes progress through
//!   `ColdStart → Attesting → Unsealing → Serving → Draining → Retired`;
//!   a cold-started node joins routing only at its ready time, a
//!   draining node takes no new work and retires when idle, and both the
//!   cold-start downtime and the drain deadline are clamped to the
//!   horizon (the PR-6 `reattest_s` clamp, applied to the new machinery);
//! * **tiered overload protection** — per-tier queue caps and staleness
//!   deadlines ([`TieredAdmission`]):
//!   free is shed first, premium last;
//! * **retry budgets with a storm circuit** —
//!   [`RetryStormGuard`] bounds both the
//!   per-request attempts and the fleet-wide retry rate, converting
//!   metastable retry storms into bounded aborts;
//! * **brownout** — [`Brownout`] degrades
//!   output-length caps before any request is shed;
//! * **billing** — rented lifetimes, warm-pool carrying cost and the
//!   base fleet are priced through [`cllm_cost::RentalBill`], yielding
//!   effective $/Mtok on *delivered* goodput.
//!
//! Everything is deterministic in the config's seeds: two runs are
//! byte-identical on any `CLLM_RUNNER_THREADS`.

use crate::cluster::{hs_seed, place, ClusterRetry, NodeSpec, NodeState};
use crate::faults::{attested_rehandshake_phased, FaultEvent, FaultKind, FaultPlan, FaultRates};
use crate::kernel::{EventQueue, KernelStats, RequestSlab};
use crate::router::{
    route_least_loaded, BreakerConfig, Brownout, BrownoutConfig, CircuitBreaker, RetryBudget,
    RetryStormGuard, TieredAdmission,
};
use crate::scheduler::{Admission, ContinuousBatcher};
use crate::sim::{RequestRecord, ServingConfig, ServingNode};
use crate::slo::sorted_percentile;
use crate::workload::Request;
use cllm_cost::{RentalBill, SpillPenalty};
use cllm_obs::TraceSink;
use cllm_tee::attestation::Measurement;
use cllm_tee::sealed::SealedBlob;
use cllm_tee::session::{enclave_respond, Verifier};
use cllm_workload::kv;
use cllm_workload::trace::{Tier, TraceRequest, TrafficModel};
use serde::{Deserialize, Serialize};

/// Template for the nodes the autoscaler rents on scale-up: identical
/// hardware, spot-class fault environment, and an hourly price.
#[derive(Debug, Clone)]
pub struct RentalSpec {
    /// The hardware + TEE each rented node serves on.
    pub node: ServingNode,
    /// Mean per-kind fault rates for each rented node's seeded stream.
    pub rates: FaultRates,
    /// Instance price, dollars/hour — accrues from rent to retirement,
    /// cold start included.
    pub price_per_hr: f64,
    /// Attested cold-start handshake time, seconds (nonce + DH + quote +
    /// HKDF against the verifier), paid before the weight unseal.
    pub attest_s: f64,
    /// Base seed; each rented node derives its fault schedule from it.
    pub seed: u64,
}

/// Reactive controller tuning. The controller runs at deterministic
/// sim-time ticks (driven by arrival dispatch, never wall clock) and
/// scales on aggregate queue backlog per serving node.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ControllerConfig {
    /// Seconds between controller evaluations.
    pub control_interval_s: f64,
    /// Queued requests per serving node above which the controller rents.
    pub up_depth_per_node: f64,
    /// Queued requests per serving node below which a tick counts toward
    /// scale-down.
    pub down_depth_per_node: f64,
    /// Nodes rented per over-threshold tick.
    pub scale_up_step: usize,
    /// Maximum rented nodes alive at once (warm promotions included).
    pub max_rented: usize,
    /// Consecutive under-threshold ticks before one node is drained.
    pub scale_down_ticks: u32,
    /// Grace period a draining node gets to finish its running batch
    /// before the remainder is force-drained to the retry path, seconds.
    /// The deadline is clamped to the horizon.
    pub drain_window_s: f64,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            control_interval_s: 5.0,
            up_depth_per_node: 8.0,
            down_depth_per_node: 1.0,
            scale_up_step: 1,
            max_rented: 8,
            scale_down_ticks: 3,
            drain_window_s: 20.0,
        }
    }
}

/// A complete autoscaling simulation configuration.
#[derive(Debug, Clone)]
pub struct AutoscaleConfig {
    /// Model, dtype, target, scheduler limits, KV policy and horizon.
    /// The embedded [`ServingConfig::arrivals`] process is **ignored** —
    /// arrivals come from [`AutoscaleConfig::traffic`].
    pub serving: ServingConfig,
    /// The generative tiered traffic the fleet faces.
    pub traffic: TrafficModel,
    /// Always-on reserved nodes (never drained, never billed as rental).
    /// Must be non-empty — the fleet needs somewhere to land retries.
    pub base_fleet: Vec<NodeSpec>,
    /// Hourly price of each base-fleet node (billed over the makespan).
    pub base_price_per_hr: f64,
    /// Template for scale-up rentals.
    pub rental: RentalSpec,
    /// Pre-attested standby nodes: promotion is instant (no handshake,
    /// no unseal), carried at [`RentalSpec::price_per_hr`] for the whole
    /// horizon whether or not they are ever promoted.
    pub warm_pool: usize,
    /// Controller tuning.
    pub controller: ControllerConfig,
    /// Per-tier queue caps, staleness deadlines and SLOs.
    pub tiers: TieredAdmission,
    /// Per-request retry budget and the global storm circuit.
    pub retry: RetryBudget,
    /// Optional brownout: degrade output length before shedding.
    pub brownout: Option<BrownoutConfig>,
    /// Circuit-breaker tuning (one breaker per node, rented included).
    pub breaker: BreakerConfig,
    /// Cost of failing a request over across platform classes.
    pub spill: SpillPenalty,
}

/// Per-tier slice of an [`AutoscaleReport`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct TierReport {
    /// Requests of this tier that arrived.
    pub arrivals: usize,
    /// Requests of this tier that completed.
    pub completed: usize,
    /// Requests of this tier shed (front door, tier cap, or deadline).
    pub shed: usize,
    /// Requests of this tier aborted (retry budget or storm circuit).
    pub aborted: usize,
    /// Completions that met this tier's SLO.
    pub slo_met: usize,
}

impl TierReport {
    /// Degraded SLO attainment: completions meeting the tier's SLO over
    /// *arrivals*, so sheds and aborts count as misses. `1.0` when the
    /// tier saw no traffic.
    #[must_use]
    pub fn slo_attainment(&self) -> f64 {
        if self.arrivals == 0 {
            return 1.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.slo_met as f64 / self.arrivals as f64
        }
    }
}

/// The outcome of one autoscaling simulation. Conservation holds by
/// construction: `completed + aborted + shed == arrivals`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscaleReport {
    /// Requests the traffic model generated.
    pub arrivals: usize,
    /// Requests that completed on some node.
    pub completed: usize,
    /// Requests aborted by the retry budget or the storm circuit.
    pub aborted: usize,
    /// Requests shed: no eligible node, tier queue cap, or staleness
    /// deadline.
    pub shed: usize,
    /// Re-queue events across the fleet.
    pub retries: u64,
    /// Retries refused by the global storm circuit (each became an
    /// abort).
    pub storm_drops: u64,
    /// Failovers that crossed platform classes and paid the spill
    /// penalty.
    pub spills: u64,
    /// Scale-up decisions executed (cold starts + warm promotions).
    pub scale_ups: u64,
    /// Scale-ups served instantly from the warm pool.
    pub warm_promotions: u64,
    /// Scale-ups that paid the full attested handshake + weight unseal.
    pub cold_starts: u64,
    /// Scale-down drains initiated.
    pub scale_downs: u64,
    /// Total cold-start time paid (attest + unseal), horizon-clamped,
    /// seconds.
    pub cold_start_s: f64,
    /// Total weight-unseal time inside `cold_start_s`, seconds.
    pub unseal_s: f64,
    /// Brownout activations (0 when brownout is disabled).
    pub brownout_activations: u64,
    /// Output tokens trimmed by brownout caps.
    pub tokens_trimmed: u64,
    /// Wall time to drain the trace, seconds (max over node clocks).
    pub makespan_s: f64,
    /// Delivered tokens per second over the makespan.
    pub goodput_tps: f64,
    /// Tokens actually generated by completed requests.
    pub delivered_tokens: u64,
    /// Median time to first token, seconds (from original arrival).
    pub ttft_p50_s: f64,
    /// 99th-percentile time to first token, seconds.
    pub ttft_p99_s: f64,
    /// 99th-percentile TTFT over requests that *arrived inside a burst
    /// window* — the flash-crowd tail the autoscaler exists to protect.
    /// `0.0` when no completion arrived during a burst.
    pub ttft_p99_burst_s: f64,
    /// Per-tier outcomes, indexed free/standard/premium.
    pub tiers: [TierReport; 3],
    /// Rental bill over every rented node's clamped lifetime, dollars.
    pub rental_cost_usd: f64,
    /// Carrying cost of never-promoted warm standbys, dollars.
    pub warm_pool_cost_usd: f64,
    /// Base-fleet bill over the makespan, dollars.
    pub base_cost_usd: f64,
    /// `rental + warm pool + base`, dollars.
    pub total_cost_usd: f64,
    /// Effective dollars per million *delivered* tokens, attestation and
    /// carrying cost included. `0.0` when nothing was delivered.
    pub usd_per_mtok: f64,
    /// Per-request records (sorted by id).
    pub records: Vec<RequestRecord>,
}

/// One fleet member with its lifecycle envelope around the shared
/// [`NodeState`] machinery.
struct FleetNode {
    st: NodeState,
    /// When the node may first take work (cold start done). `0.0` for
    /// the base fleet and promoted warm standbys.
    ready_at_s: f64,
    /// When rent started accruing (`0.0` for base and warm nodes).
    rented_at_s: f64,
    /// Whether the node bills at the rental price.
    rented: bool,
    draining: bool,
    drain_deadline_s: f64,
    retired: bool,
    retired_at_s: f64,
}

impl FleetNode {
    /// Whether the router may consider this node at time `t`.
    fn eligible(&self, t: f64) -> bool {
        !self.retired && !self.draining && self.ready_at_s <= t
    }
}

/// Drive one *successful* cold-start secure boot through the real
/// attestation and sealing layers: a golden-measurement handshake must
/// verify, and a sealed weight-shard stand-in must round-trip under the
/// attested identity. The simulated *time* cost is
/// [`RentalSpec::attest_s`] plus
/// [`ServingNode::weight_unseal_time_s`]; this function is the fidelity
/// check that the boot the clock charges for actually works.
///
/// # Panics
///
/// Panics if the handshake or the unseal fails — a bug in the session
/// or sealing layer, not an injected fault.
pub fn cold_start_secure_boot(seed: u64) {
    let golden = Measurement([0x5E; 32]);
    let vseed = seed.to_be_bytes();
    let eseed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_be_bytes();
    let (verifier, challenge) = Verifier::start(golden, b"hw-root", &vseed);
    let (response, _enclave_chan) = enclave_respond(b"hw-root", golden, 7, &challenge, &eseed)
        .expect("cold-start respond must succeed");
    verifier
        .finish(&response)
        .expect("cold-start handshake must verify");
    let shard = seed.to_le_bytes();
    let blob = SealedBlob::seal(b"hw-root", &golden, "weights-shard", &shard, &vseed);
    let out = blob
        .unseal(b"hw-root", &golden)
        .expect("weight shard must unseal under the attested identity");
    assert_eq!(out, shard, "unsealed weights must match what was sealed");
}

/// Run the deterministic autoscaling simulation.
///
/// # Panics
///
/// Panics if the base fleet is empty.
#[must_use]
pub fn simulate_autoscale(cfg: &AutoscaleConfig) -> AutoscaleReport {
    simulate_autoscale_stats(cfg).0
}

/// [`simulate_autoscale`] plus the kernel's event counters, for
/// throughput benchmarking (`serve_bench` divides
/// [`KernelStats::events`] by wall time).
///
/// # Panics
///
/// Panics if the base fleet is empty.
#[must_use]
#[allow(clippy::too_many_lines, clippy::cast_precision_loss)]
pub fn simulate_autoscale_stats(cfg: &AutoscaleConfig) -> (AutoscaleReport, KernelStats) {
    assert!(!cfg.base_fleet.is_empty(), "autoscale needs a base fleet");
    let horizon_s = cfg.serving.duration_s;
    let mut stats = KernelStats::default();
    let mut sink = TraceSink::disabled();

    let trace: Vec<TraceRequest> = if horizon_s > 0.0 {
        cfg.traffic.generate(horizon_s)
    } else {
        Vec::new()
    };
    let onsets = cfg.traffic.bursts.onsets(horizon_s.max(0.0));
    if trace.is_empty() {
        return (empty_report(), stats);
    }
    let tier_of: Vec<Tier> = trace.iter().map(|r| r.tier).collect();
    let mut pending: std::collections::VecDeque<Request> = trace
        .iter()
        .map(|r| Request {
            id: r.id,
            arrival_s: r.arrival_s,
            prompt_tokens: r.prompt_tokens,
            output_tokens: r.output_tokens,
        })
        .collect();
    let total_arrivals = pending.len();
    let mut tiers_out = [TierReport::default(); 3];
    for t in &tier_of {
        tiers_out[t.index()].arrivals += 1;
    }

    // The fleet: base nodes first (always ready), rentals appended live.
    let mut nodes: Vec<FleetNode> = cfg
        .base_fleet
        .iter()
        .map(|spec| {
            let base = FaultPlan::seeded(&spec.rates, horizon_s, spec.seed);
            let policy = base.policy;
            let plan = base.merge(FaultPlan {
                events: spec.extra_events.clone(),
                policy,
            });
            FleetNode {
                st: new_node_state(cfg, spec.node.clone(), plan),
                ready_at_s: 0.0,
                rented_at_s: 0.0,
                rented: false,
                draining: false,
                drain_deadline_s: f64::INFINITY,
                retired: false,
                retired_at_s: 0.0,
            }
        })
        .collect();

    let mut retry_queue: EventQueue<ClusterRetry> = EventQueue::new();
    let mut slab = RequestSlab::new(total_arrivals);
    let mut guard = RetryStormGuard::new(cfg.retry);
    let mut brownout = cfg.brownout.map(Brownout::new);
    let per_token_bytes = kv::kv_bytes_per_sequence(&cfg.serving.model, 1, cfg.serving.dtype);
    let block_bytes = per_token_bytes * cfg.serving.kv.block_tokens as f64;

    let mut records: Vec<RequestRecord> = Vec::with_capacity(total_arrivals);
    let mut shed = 0usize;
    let mut aborted = 0usize;
    let mut retries = 0u64;
    let mut spills = 0u64;
    let mut scale_ups = 0u64;
    let mut warm_promotions = 0u64;
    let mut cold_starts = 0u64;
    let mut scale_downs = 0u64;
    let mut cold_start_s = 0.0f64;
    let mut unseal_total_s = 0.0f64;
    let mut warm_available = cfg.warm_pool;
    let mut next_control_s = 0.0f64;
    let mut low_ticks = 0u32;

    loop {
        let t_arrival = pending.front().map(|r| r.arrival_s);
        let next_retry = retry_queue.peek_time();
        let t_dispatch = match (t_arrival, next_retry) {
            (Some(a), Some(r)) => Some(a.min(r)),
            (Some(a), None) => Some(a),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        };

        let runnable = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.retired && !n.st.scheduler.idle())
            .min_by(|(i, a), (j, b)| {
                a.st.now
                    .partial_cmp(&b.st.now)
                    // infallible: sim clocks are sums of finite step times; the non-finite invariant would trip first
                    .expect("finite clocks")
                    .then(i.cmp(j))
            })
            .map(|(i, n)| (i, n.st.now));

        let do_dispatch = match (t_dispatch, runnable) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(t), Some((_, node_now))) => t <= node_now,
        };

        if do_dispatch {
            let arrival_first = match (t_arrival, next_retry) {
                (Some(a), Some(r)) => a <= r,
                (Some(_), None) => true,
                _ => false,
            };
            if arrival_first {
                let mut r = pending.pop_front().expect("arrival checked");
                stats.arrivals += 1;
                let t = r.arrival_s;
                // infallible: request ids are dense trace indices (0..len), here and in every tier_of lookup below
                let tier = tier_of[usize::try_from(r.id).expect("dense id")];

                // Controller tick (deterministic, sim-time driven).
                if t >= next_control_s {
                    next_control_s = t + cfg.controller.control_interval_s;
                    run_controller(
                        cfg,
                        &mut nodes,
                        t,
                        horizon_s,
                        &mut warm_available,
                        &mut scale_ups,
                        &mut warm_promotions,
                        &mut cold_starts,
                        &mut scale_downs,
                        &mut cold_start_s,
                        &mut unseal_total_s,
                        &mut low_ticks,
                        &mut sink,
                    );
                }

                // Brownout: degrade output length before shedding.
                if let Some(b) = brownout.as_mut() {
                    let depth: usize = nodes
                        .iter()
                        .filter(|n| !n.retired)
                        .map(|n| n.st.scheduler.queued())
                        .sum();
                    if b.observe_depth(depth) {
                        r.output_tokens = b.cap_output(r.output_tokens);
                    }
                }

                // Tier queue cap: count this tier's queued work fleet-wide.
                let tier_queued: usize = nodes
                    .iter()
                    .filter(|n| !n.retired)
                    .flat_map(|n| n.st.scheduler.queued_requests())
                    .filter(|q| tier_of[usize::try_from(q.id).expect("dense id")] == tier)
                    .count();
                if tier_queued >= cfg.tiers.policy(tier).queue_cap {
                    shed += 1;
                    tiers_out[tier.index()].shed += 1;
                    stats.rejections += 1;
                    continue;
                }

                let mut candidates = Vec::with_capacity(nodes.len());
                for (i, n) in nodes.iter_mut().enumerate() {
                    if n.eligible(t) && n.st.breaker.accepts(t) {
                        candidates.push((i, n.st.depth()));
                    }
                }
                match route_least_loaded(&candidates) {
                    Some(i) => place(&mut nodes[i].st, i, r, t, &mut sink),
                    None => {
                        shed += 1;
                        tiers_out[tier.index()].shed += 1;
                        stats.rejections += 1;
                    }
                }
            } else {
                let (t, e) = retry_queue.pop().expect("retry checked");
                stats.retries_delivered += 1;
                let mut candidates = Vec::with_capacity(nodes.len());
                for (i, n) in nodes.iter_mut().enumerate() {
                    if n.eligible(t) && n.st.breaker.accepts(t) {
                        candidates.push((i, n.st.depth()));
                    }
                }
                // Retries are always placeable among live nodes: fall
                // back past breakers to the least-loaded eligible node
                // (the base fleet is never draining, so one exists).
                let target = route_least_loaded(&candidates).unwrap_or_else(|| {
                    let all: Vec<(usize, usize)> = nodes
                        .iter()
                        .enumerate()
                        .filter(|(_, n)| n.eligible(t))
                        .map(|(i, n)| (i, n.st.depth()))
                        .collect();
                    // infallible: the base fleet never drains, so an eligible node always exists
                    route_least_loaded(&all).expect("base fleet is always eligible")
                });
                if nodes[target].st.is_gpu() != e.origin_gpu {
                    spills += 1;
                    slab.mark_spilled(e.request.id);
                }
                place(&mut nodes[target].st, target, e.request, t, &mut sink);
            }
            continue;
        }

        // Advance the chosen node by one batching iteration.
        // infallible: the advance branch is only taken when `runnable` is Some
        let (i, _) = runnable.expect("advance branch requires a runnable node");
        let n = &mut nodes[i];

        // Faults due by the node clock, oldest first.
        while n
            .st
            .plan
            .events
            .get(n.st.next_event)
            .is_some_and(|e| e.at_s <= n.st.now)
        {
            let ev = n.st.plan.events[n.st.next_event];
            n.st.next_event += 1;
            stats.faults_applied += 1;
            apply_fault(
                &ev,
                &mut n.st,
                i,
                horizon_s,
                &mut slab,
                &mut retry_queue,
                &mut guard,
                &mut retries,
                &mut aborted,
                &mut tiers_out,
                &tier_of,
            );
        }

        // Drain deadline: a draining node out of grace force-drains its
        // running batch to the retry path (bounded by the storm guard).
        if n.draining && n.st.now >= n.drain_deadline_s && !n.st.scheduler.running().is_empty() {
            let origin_gpu = n.st.is_gpu();
            let now = n.st.now;
            for victim in n.st.scheduler.drain_running() {
                let id = victim.request.id;
                let a = slab.bump_attempts(id);
                if guard.admit_retry(now, a - 1) {
                    retries += 1;
                    retry_queue.push_keyed(
                        now + n.st.plan.policy.backoff_s(a),
                        id,
                        ClusterRetry {
                            request: victim.request,
                            origin: i,
                            origin_gpu,
                        },
                    );
                } else {
                    aborted += 1;
                    tiers_out[tier_of[usize::try_from(id).expect("dense id")].index()].aborted += 1;
                }
            }
        }
        if n.draining && n.st.scheduler.idle() {
            // A gray StuckDrain window wedges the scale-down: the node
            // keeps renting (billed until it actually retires) without
            // serving. `drain_deadline_s` is horizon-clamped when the
            // controller sets it, so the billed tail is bounded.
            n.retired = true;
            n.retired_at_s = drain_retire_time(n.st.now, n.st.stuck_until_s, n.drain_deadline_s);
            continue;
        }

        // Tier staleness deadlines: shed queued requests past their
        // tier's patience.
        {
            let now = n.st.now;
            let tiers = &cfg.tiers;
            let tier_of_ref = &tier_of;
            let dropped = n.st.scheduler.shed(|r| {
                let tier = tier_of_ref[usize::try_from(r.id).expect("dense id")];
                now - r.arrival_s > tiers.policy(tier).deadline_s
            });
            shed += dropped.len();
            stats.rejections += dropped.len() as u64;
            for r in &dropped {
                tiers_out[tier_of[usize::try_from(r.id).expect("dense id")].index()].shed += 1;
            }
        }

        // Admit + prefill (retried victims re-attest, spilled victims
        // re-quantise, swapped-out sequences resume after a swap-in).
        let admitted =
            n.st.scheduler
                .admit_any(&cfg.serving.model, cfg.serving.dtype, n.st.now);
        for adm in admitted {
            match adm {
                Admission::Fresh(r) => {
                    stats.admissions += 1;
                    if slab.attempts(r.id) > 0 {
                        n.st.now += n.st.plan.policy.reattest_s;
                    }
                    let mut t_prefill = n.st.node.prefill_time_s(&cfg.serving, r.prompt_tokens);
                    if slab.take_spilled(r.id) {
                        n.st.now += cfg.spill.requant_s;
                        t_prefill *= cfg.spill.prefill_factor;
                    }
                    n.st.now += t_prefill;
                    n.st.scheduler.start(r, n.st.now);
                }
                Admission::Resumed {
                    request: _,
                    swap_in_tokens,
                } => {
                    stats.swap_ins += 1;
                    let bytes = swap_in_tokens as f64 * per_token_bytes;
                    n.st.swap_in_bytes += bytes;
                    n.st.now += n.st.node.kv_swap_time_s(bytes);
                }
            }
        }

        if n.st.scheduler.running().is_empty() {
            continue;
        }

        // Page-pool pressure: evictions off the batch tail.
        let prep = n.st.scheduler.prepare_step(n.st.now);
        stats.preemptions += (prep.preempted_recompute.len() + prep.preempted_swap.len()) as u64;
        n.st.preemptions += (prep.preempted_recompute.len() + prep.preempted_swap.len()) as u64;
        for victim in &prep.preempted_swap {
            stats.swap_outs += 1;
            let bytes = victim.context() as f64 * per_token_bytes;
            n.st.swap_out_bytes += bytes;
            n.st.now += n.st.node.kv_swap_time_s(bytes);
        }

        let batch = n.st.scheduler.running().len() as u64;
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let mean_context = (n
            .st
            .scheduler
            .running()
            .iter()
            .map(|a| a.context())
            .sum::<u64>() as f64
            / batch as f64)
            .round() as u64;
        let mut t_step =
            n.st.node
                .decode_step_time_s(&cfg.serving, batch, mean_context);
        if prep.resident_pages > 0 {
            let excess = prep.resident_pages as f64 * block_bytes - n.st.kv_budget_bytes;
            if excess > 0.0 {
                t_step += n.st.node.kv_pressure_stall_s(excess);
            }
        }
        // A step that begins inside a gray DegradedThroughput window
        // runs at the derated rate — no breaker error, no downtime.
        if n.st.now < n.st.derate_until_s {
            t_step *= crate::faults::DEGRADED_THROUGHPUT_FACTOR;
        }
        n.st.now += t_step;
        stats.decode_steps += 1;

        for fin in n.st.scheduler.step() {
            let ttft = fin.first_token_s - fin.request.arrival_s;
            let decode_span = n.st.now - fin.first_token_s;
            let tpot = decode_span / (fin.request.output_tokens.saturating_sub(1).max(1)) as f64;
            n.st.useful_tokens += fin.request.output_tokens;
            n.st.completed += 1;
            stats.completions += 1;
            let tier = tier_of[usize::try_from(fin.request.id).expect("dense id")];
            tiers_out[tier.index()].completed += 1;
            let slo = cfg.tiers.policy(tier).slo;
            if ttft <= slo.ttft_s && tpot <= slo.tpot_s {
                tiers_out[tier.index()].slo_met += 1;
            }
            records.push(RequestRecord {
                id: fin.request.id,
                ttft_s: ttft,
                tpot_s: tpot,
                e2e_s: n.st.now - fin.request.arrival_s,
                retries: slab.attempts(fin.request.id),
            });
            if n.st.breaker.record_success() {
                n.st.handshake_seq += 1;
                attested_rehandshake_phased(hs_seed(i, n.st.handshake_seq), &mut |_| {})
                    // infallible: simulated attestation over an in-process channel cannot fail; crashes charge recovery time, not handshake errors
                    .expect("re-handshake must recover the session");
                n.st.now += n.st.plan.policy.reattest_s;
                n.st.downtime_s += n.st.plan.policy.reattest_s;
            }
        }
    }

    // Retire every node still draining (idle by construction once the
    // loop exits) and clamp never-ready rentals to the horizon. A gray
    // StuckDrain window wedges the drain: the node bills until the
    // window clears or its force-retire deadline, whichever is first.
    for n in &mut nodes {
        if n.draining && !n.retired {
            n.retired = true;
            n.retired_at_s = drain_retire_time(n.st.now, n.st.stuck_until_s, n.drain_deadline_s);
        }
        if n.rented && !n.retired && n.ready_at_s >= horizon_s {
            // Rented against a burst so late it never became ready: the
            // contract ends at the horizon, not at the phantom ready
            // time.
            n.retired = true;
            n.retired_at_s = horizon_s.max(n.rented_at_s);
        }
    }

    let makespan_s = nodes.iter().map(|n| n.st.now).fold(0.0f64, f64::max);

    // Billing.
    let bill = RentalBill {
        price_per_hr: cfg.rental.price_per_hr,
    };
    let rental_cost_usd: f64 = nodes
        .iter()
        .filter(|n| n.rented)
        .map(|n| {
            let end = if n.retired {
                n.retired_at_s
            } else {
                makespan_s
            };
            bill.node_cost_usd(end - n.rented_at_s)
        })
        .sum();
    let warm_pool_cost_usd = bill.warm_pool_cost_usd(warm_available, horizon_s.max(0.0));
    let base_bill = RentalBill {
        price_per_hr: cfg.base_price_per_hr,
    };
    let base_cost_usd = base_bill.warm_pool_cost_usd(cfg.base_fleet.len(), makespan_s);
    let total_cost_usd = rental_cost_usd + warm_pool_cost_usd + base_cost_usd;

    records.sort_by_key(|r| r.id);
    let delivered_tokens: u64 = nodes.iter().map(|n| n.st.useful_tokens).sum();
    let completed = records.len();
    let mut ttft: Vec<f64> = records.iter().map(|r| r.ttft_s).collect();
    // infallible: latencies are differences of finite sim clocks
    ttft.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    // The burst tail is judged by *arrival* time; RequestRecord doesn't
    // carry it, so recover it from the trace by id.
    let in_burst = |t: f64| {
        onsets
            .iter()
            .any(|&o| t >= o && t < o + cfg.traffic.bursts.window_s)
    };
    let mut burst_ttft: Vec<f64> = records
        .iter()
        .filter(|r| in_burst(trace[usize::try_from(r.id).expect("dense id")].arrival_s))
        .map(|r| r.ttft_s)
        .collect();
    // infallible: latencies are differences of finite sim clocks
    burst_ttft.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    let usd_per_mtok = if delivered_tokens == 0 {
        0.0
    } else {
        total_cost_usd / (delivered_tokens as f64 / 1.0e6)
    };
    let report = AutoscaleReport {
        arrivals: total_arrivals,
        completed,
        aborted,
        shed,
        retries,
        storm_drops: guard.storm_drops,
        spills,
        scale_ups,
        warm_promotions,
        cold_starts,
        scale_downs,
        cold_start_s,
        unseal_s: unseal_total_s,
        brownout_activations: brownout.as_ref().map_or(0, |b| b.activations),
        tokens_trimmed: brownout.as_ref().map_or(0, |b| b.tokens_trimmed),
        makespan_s,
        goodput_tps: if completed == 0 {
            0.0
        } else {
            delivered_tokens as f64 / makespan_s.max(1e-9)
        },
        delivered_tokens,
        ttft_p50_s: percentile_or_zero(&ttft, 0.50),
        ttft_p99_s: percentile_or_zero(&ttft, 0.99),
        ttft_p99_burst_s: percentile_or_zero(&burst_ttft, 0.99),
        tiers: tiers_out,
        rental_cost_usd,
        warm_pool_cost_usd,
        base_cost_usd,
        total_cost_usd,
        usd_per_mtok,
        records,
    };
    #[cfg(debug_assertions)]
    {
        let v = crate::invariants::check_autoscale(&report);
        debug_assert!(
            v.is_empty(),
            "autoscale invariants violated: {}",
            crate::invariants::describe(&v)
        );
    }
    (report, stats)
}

fn percentile_or_zero(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        0.0
    } else {
        sorted_percentile(sorted, p)
    }
}

fn empty_report() -> AutoscaleReport {
    AutoscaleReport {
        arrivals: 0,
        completed: 0,
        aborted: 0,
        shed: 0,
        retries: 0,
        storm_drops: 0,
        spills: 0,
        scale_ups: 0,
        warm_promotions: 0,
        cold_starts: 0,
        scale_downs: 0,
        cold_start_s: 0.0,
        unseal_s: 0.0,
        brownout_activations: 0,
        tokens_trimmed: 0,
        makespan_s: 0.0,
        goodput_tps: 0.0,
        delivered_tokens: 0,
        ttft_p50_s: 0.0,
        ttft_p99_s: 0.0,
        ttft_p99_burst_s: 0.0,
        tiers: [TierReport::default(); 3],
        rental_cost_usd: 0.0,
        warm_pool_cost_usd: 0.0,
        base_cost_usd: 0.0,
        total_cost_usd: 0.0,
        usd_per_mtok: 0.0,
        records: Vec::new(),
    }
}

/// A fresh [`NodeState`] on this config's scheduler limits.
fn new_node_state(cfg: &AutoscaleConfig, node: ServingNode, plan: FaultPlan) -> NodeState {
    NodeState {
        kv_budget_bytes: node.kv_residency_budget_bytes(&cfg.serving),
        node,
        scheduler: ContinuousBatcher::configured(cfg.serving.limits, cfg.serving.kv),
        breaker: CircuitBreaker::new(cfg.breaker),
        plan,
        next_event: 0,
        now: 0.0,
        downtime_s: 0.0,
        handshake_seq: 0,
        useful_tokens: 0,
        completed: 0,
        preemptions: 0,
        swap_out_bytes: 0.0,
        swap_in_bytes: 0.0,
        derate_until_s: 0.0,
        stuck_until_s: 0.0,
    }
}

/// One controller evaluation at time `t`: scale up against backlog
/// (warm promotion first, then cold rentals paying the real attested
/// boot), scale down after sustained calm by draining the newest rental.
#[allow(clippy::too_many_arguments, clippy::cast_precision_loss)]
fn run_controller(
    cfg: &AutoscaleConfig,
    nodes: &mut Vec<FleetNode>,
    t: f64,
    horizon_s: f64,
    warm_available: &mut usize,
    scale_ups: &mut u64,
    warm_promotions: &mut u64,
    cold_starts: &mut u64,
    scale_downs: &mut u64,
    cold_start_s: &mut f64,
    unseal_total_s: &mut f64,
    low_ticks: &mut u32,
    sink: &mut TraceSink,
) {
    let _ = sink;
    let serving = nodes.iter().filter(|n| n.eligible(t)).count().max(1);
    let queued: usize = nodes
        .iter()
        .filter(|n| !n.retired)
        .map(|n| n.st.scheduler.queued())
        .sum();
    let backlog_per_node = queued as f64 / serving as f64;
    let rented_active = nodes
        .iter()
        .filter(|n| n.rented && !n.retired && !n.draining)
        .count();

    if backlog_per_node > cfg.controller.up_depth_per_node {
        *low_ticks = 0;
        for step in 0..cfg.controller.scale_up_step {
            if rented_active + step >= cfg.controller.max_rented {
                break;
            }
            let idx = nodes.len();
            let mut plan = FaultPlan::seeded(
                &cfg.rental.rates,
                horizon_s,
                cfg.rental.seed ^ (idx as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let (ready_at_s, rented_at_s) = if *warm_available > 0 {
                *warm_available -= 1;
                *warm_promotions += 1;
                // A promoted standby was attested and unsealed before
                // the horizon started; its carrying cost since t=0 is
                // what bought the instant readiness.
                (t, 0.0)
            } else {
                *cold_starts += 1;
                cold_start_secure_boot(hs_seed(idx, 0) ^ cfg.rental.seed);
                let unseal_s = cfg.rental.node.weight_unseal_time_s(&cfg.serving);
                let ready = t + cfg.rental.attest_s + unseal_s;
                // Horizon clamp: a scale-up in the last seconds cannot
                // charge cold-start time past the end of the run.
                let charged = (ready - t).min((horizon_s - t).max(0.0));
                *cold_start_s += charged;
                *unseal_total_s += unseal_s.min(charged);
                (ready, t)
            };
            plan.events.retain(|e: &FaultEvent| e.at_s >= ready_at_s);
            let mut st = new_node_state(cfg, cfg.rental.node.clone(), plan);
            st.now = ready_at_s.min(horizon_s.max(0.0));
            st.downtime_s = (ready_at_s - rented_at_s).min((horizon_s - rented_at_s).max(0.0));
            nodes.push(FleetNode {
                st,
                ready_at_s,
                rented_at_s,
                rented: true,
                draining: false,
                drain_deadline_s: f64::INFINITY,
                retired: false,
                retired_at_s: 0.0,
            });
            *scale_ups += 1;
        }
        return;
    }

    if backlog_per_node <= cfg.controller.down_depth_per_node && rented_active > 0 {
        *low_ticks += 1;
        if *low_ticks >= cfg.controller.scale_down_ticks {
            *low_ticks = 0;
            *scale_downs += 1;
            // Drain the newest active rental: stop routing to it, move
            // its queued work to the survivors, give the running batch a
            // horizon-clamped grace window.
            let victim = nodes
                .iter()
                .enumerate()
                .rev()
                .find(|(_, n)| n.rented && !n.retired && !n.draining && n.ready_at_s <= t)
                .map(|(i, _)| i);
            if let Some(v) = victim {
                nodes[v].draining = true;
                nodes[v].drain_deadline_s = (t + cfg.controller.drain_window_s).min(horizon_s);
                let moved = nodes[v].st.scheduler.shed(|_| true);
                for r in moved {
                    let all: Vec<(usize, usize)> = nodes
                        .iter()
                        .enumerate()
                        .filter(|(i, n)| *i != v && n.eligible(t))
                        .map(|(i, n)| (i, n.st.depth()))
                        .collect();
                    // infallible: the base fleet never drains, so an eligible node always exists
                    let target = route_least_loaded(&all).expect("base fleet is always eligible");
                    place(&mut nodes[target].st, target, r, t, sink);
                }
                if nodes[v].st.scheduler.idle() {
                    // An idle victim retires on the spot — unless a
                    // gray StuckDrain window is wedging it, in which
                    // case it bills until the window clears or the
                    // force-retire deadline, whichever comes first.
                    nodes[v].retired = true;
                    nodes[v].retired_at_s = drain_retire_time(
                        t.max(nodes[v].st.now),
                        nodes[v].st.stuck_until_s,
                        nodes[v].drain_deadline_s,
                    );
                }
            }
        }
    } else {
        *low_ticks = 0;
    }
}

/// When a draining node goes idle at `now`, the time at which it can
/// actually retire: immediately when no stuck-drain window is active,
/// at the window's end if the window clears before the drain deadline,
/// or force-retired at the deadline when the drain stays wedged past
/// it. Never earlier than `now`, so clocks only move forward.
pub(crate) fn drain_retire_time(now: f64, stuck_until_s: f64, deadline_s: f64) -> f64 {
    if now >= stuck_until_s {
        now
    } else {
        stuck_until_s.min(deadline_s).max(now)
    }
}

/// Apply one fault event at a node's iteration boundary: mirrors the
/// cluster semantics (horizon-clamped outages, real re-handshake on
/// attestation failure) but routes crash victims through the retry
/// budget + storm circuit instead of the bare per-node retry cap.
#[allow(clippy::too_many_arguments)]
fn apply_fault(
    ev: &FaultEvent,
    n: &mut NodeState,
    node_idx: usize,
    horizon_s: f64,
    slab: &mut RequestSlab,
    retry_queue: &mut EventQueue<ClusterRetry>,
    guard: &mut RetryStormGuard,
    retries: &mut u64,
    aborted: &mut usize,
    tiers_out: &mut [TierReport; 3],
    tier_of: &[Tier],
) {
    if ev.kind.is_gray() {
        // Gray failures are invisible to the breaker, charge no
        // downtime, and lose no state: DegradedThroughput derates
        // decode steps inside its window; StuckDrain wedges a
        // scale-down so the drain only ends at the force-retire
        // deadline (see `drain_retire_time`).
        let window_s = ev.outage_s.min((horizon_s - ev.at_s).max(0.0));
        match ev.kind {
            FaultKind::DegradedThroughput => {
                n.derate_until_s = n.derate_until_s.max(ev.at_s + window_s);
            }
            FaultKind::StuckDrain => {
                n.stuck_until_s = n.stuck_until_s.max(ev.at_s + window_s);
            }
            _ => unreachable!("is_gray covers exactly the two gray kinds"),
        }
        return;
    }
    n.breaker.record_error(n.now);
    if ev.kind == FaultKind::AttestationFailure {
        n.handshake_seq += 1;
        attested_rehandshake_phased(hs_seed(node_idx, n.handshake_seq), &mut |_| {})
            // infallible: simulated attestation over an in-process channel cannot fail
            .expect("re-handshake must recover the session");
        let outage_s = n.plan.policy.reattest_s.min((horizon_s - ev.at_s).max(0.0));
        n.now += outage_s;
        n.downtime_s += outage_s;
        return;
    }
    let outage_s = ev.outage_s.min((horizon_s - ev.at_s).max(0.0));
    if ev.kind.loses_state() {
        let origin_gpu = n.is_gpu();
        for victim in n.scheduler.drain_running() {
            let id = victim.request.id;
            let a = slab.bump_attempts(id);
            if guard.admit_retry(n.now, a - 1) {
                *retries += 1;
                retry_queue.push_keyed(
                    ev.at_s + outage_s + n.plan.policy.backoff_s(a),
                    id,
                    ClusterRetry {
                        request: victim.request,
                        origin: node_idx,
                        origin_gpu,
                    },
                );
            } else {
                *aborted += 1;
                tiers_out[tier_of[usize::try_from(id).expect("dense id")].index()].aborted += 1;
            }
        }
    }
    n.now += outage_s;
    n.downtime_s += outage_s;
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_tee::platform::CpuTeeConfig;
    use cllm_workload::trace::LognormalLen;

    fn tdx_serving_node() -> ServingNode {
        ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        }
    }

    /// Flash-crowd traffic with test-sized lengths so runs stay fast.
    /// Production burst cadence is ~30/hr; a 30 s test window needs a
    /// far denser schedule to see any burst at all.
    fn small_traffic(rate: f64, multiplier: f64, seed: u64) -> TrafficModel {
        let mut t = TrafficModel::flash_crowd(rate, multiplier, seed);
        t.bursts.bursts_per_hr = 360.0;
        t.bursts.window_s = 10.0;
        t.prompt = LognormalLen {
            mu_ln: 3.5,
            sigma_ln: 0.5,
            min_tokens: 16,
            max_tokens: 128,
        };
        t.output = LognormalLen {
            mu_ln: 2.5,
            sigma_ln: 0.4,
            min_tokens: 4,
            max_tokens: 32,
        };
        t
    }

    fn quiet_base(seed: u64) -> NodeSpec {
        NodeSpec::new(tdx_serving_node(), false, FaultRates::none(), seed)
    }

    fn base_cfg(traffic: TrafficModel) -> AutoscaleConfig {
        AutoscaleConfig {
            serving: ServingConfig::small_test(),
            traffic,
            base_fleet: vec![quiet_base(1)],
            base_price_per_hr: 3.0,
            rental: RentalSpec {
                node: tdx_serving_node(),
                rates: FaultRates::none(),
                price_per_hr: 4.0,
                attest_s: 0.5,
                seed: 77,
            },
            warm_pool: 0,
            controller: ControllerConfig {
                control_interval_s: 1.0,
                ..ControllerConfig::default()
            },
            tiers: TieredAdmission::default(),
            retry: RetryBudget::default(),
            brownout: None,
            breaker: BreakerConfig::default(),
            spill: SpillPenalty::cross_platform(),
        }
    }

    #[test]
    fn flash_crowd_scales_up_and_conserves() {
        let cfg = base_cfg(small_traffic(4.0, 10.0, 3));
        let r = simulate_autoscale(&cfg);
        assert!(r.arrivals > 0);
        assert_eq!(r.completed + r.aborted + r.shed, r.arrivals);
        assert!(r.scale_ups >= 1, "a 10x burst on one node must scale up");
        assert_eq!(r.cold_starts, r.scale_ups, "no warm pool: all cold");
        assert!(r.cold_start_s > 0.0 && r.unseal_s > 0.0);
        assert!(r.rental_cost_usd > 0.0);
        assert!((r.warm_pool_cost_usd - 0.0).abs() < 1e-12);
        assert!(r.total_cost_usd > r.base_cost_usd);
        let tier_arrivals: usize = r.tiers.iter().map(|t| t.arrivals).sum();
        assert_eq!(tier_arrivals, r.arrivals);
        assert!(r.usd_per_mtok > 0.0);
    }

    #[test]
    fn autoscale_runs_are_deterministic() {
        let cfg = base_cfg(small_traffic(4.0, 10.0, 9));
        let a = simulate_autoscale(&cfg);
        let b = simulate_autoscale(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn warm_pool_skips_the_cold_start_toll() {
        let cold = simulate_autoscale(&base_cfg(small_traffic(4.0, 10.0, 3)));
        let mut warm_cfg = base_cfg(small_traffic(4.0, 10.0, 3));
        warm_cfg.warm_pool = warm_cfg.controller.max_rented;
        let warm = simulate_autoscale(&warm_cfg);
        assert!(warm.warm_promotions >= 1, "the burst must promote standbys");
        assert_eq!(warm.cold_starts, 0, "pool covers max_rented: never cold");
        assert!((warm.cold_start_s - 0.0).abs() < 1e-12);
        assert!(warm.warm_pool_cost_usd > 0.0, "standbys carry a cost");
        assert!(cold.cold_starts >= 1 && cold.cold_start_s > 0.0);
    }

    #[test]
    fn calm_traffic_on_base_fleet_never_rents() {
        let mut t = small_traffic(0.4, 1.0, 5);
        t.bursts = cllm_workload::trace::BurstModel::none();
        let r = simulate_autoscale(&base_cfg(t));
        assert!(r.arrivals > 0);
        assert_eq!(r.completed, r.arrivals, "a calm trace completes fully");
        assert_eq!(r.scale_ups + r.cold_starts + r.scale_downs, 0);
        assert!((r.rental_cost_usd + r.warm_pool_cost_usd).abs() < 1e-12);
        assert!(r.base_cost_usd > 0.0);
    }

    #[test]
    fn premium_outlives_free_under_shedding() {
        // Heavy overload on a fixed fleet (no rentals): the tier table
        // must shed free traffic before premium.
        let mut cfg = base_cfg(small_traffic(12.0, 6.0, 7));
        cfg.controller.max_rented = 0;
        cfg.tiers.policy_mut(Tier::Free).queue_cap = 8;
        let r = simulate_autoscale(&cfg);
        assert_eq!(r.completed + r.aborted + r.shed, r.arrivals);
        assert!(r.shed > 0, "overload on one node must shed");
        let frac = |t: &TierReport| {
            if t.arrivals == 0 {
                1.0
            } else {
                t.completed as f64 / t.arrivals as f64
            }
        };
        let free = &r.tiers[Tier::Free.index()];
        let premium = &r.tiers[Tier::Premium.index()];
        assert!(free.shed > 0, "free is the first tier to shed");
        assert!(
            frac(premium) >= frac(free),
            "premium completion fraction ({}) must not fall below free ({})",
            frac(premium),
            frac(free)
        );
    }

    #[test]
    fn brownout_trims_output_before_shedding() {
        let mut cfg = base_cfg(small_traffic(10.0, 8.0, 11));
        cfg.controller.max_rented = 0;
        cfg.brownout = Some(BrownoutConfig {
            enter_depth: 8,
            exit_depth: 2,
            output_cap_tokens: 8,
        });
        let r = simulate_autoscale(&cfg);
        assert!(r.brownout_activations >= 1, "overload must trip brownout");
        assert!(r.tokens_trimmed > 0, "brownout must trim output budgets");
        assert_eq!(r.completed + r.aborted + r.shed, r.arrivals);
    }

    #[test]
    fn cold_start_charge_clamps_to_horizon() {
        // Direct controller regression: a scale-up in the run's final
        // second cannot charge the full attest+unseal time, and the
        // rented node's clock parks at the horizon, not at its phantom
        // ready time.
        let cfg = base_cfg(small_traffic(4.0, 10.0, 3));
        let horizon_s = cfg.serving.duration_s;
        let boot_s = cfg.rental.attest_s + cfg.rental.node.weight_unseal_time_s(&cfg.serving);
        assert!(boot_s > 0.3, "fixture needs a boot longer than the window");
        let mut nodes = vec![FleetNode {
            st: new_node_state(
                &cfg,
                tdx_serving_node(),
                FaultPlan::seeded(&FaultRates::none(), horizon_s, 1),
            ),
            ready_at_s: 0.0,
            rented_at_s: 0.0,
            rented: false,
            draining: false,
            drain_deadline_s: f64::INFINITY,
            retired: false,
            retired_at_s: 0.0,
        }];
        let t = horizon_s - 0.5;
        for id in 0..32 {
            nodes[0].st.scheduler.enqueue_at(
                Request {
                    id,
                    arrival_s: t,
                    prompt_tokens: 32,
                    output_tokens: 8,
                },
                t,
            );
        }
        let (mut warm, mut ups, mut promos, mut colds, mut downs) =
            (0usize, 0u64, 0u64, 0u64, 0u64);
        let (mut cold_s, mut unseal_s, mut low) = (0.0f64, 0.0f64, 0u32);
        let mut sink = TraceSink::disabled();
        run_controller(
            &cfg,
            &mut nodes,
            t,
            horizon_s,
            &mut warm,
            &mut ups,
            &mut promos,
            &mut colds,
            &mut downs,
            &mut cold_s,
            &mut unseal_s,
            &mut low,
            &mut sink,
        );
        assert_eq!(colds, 1);
        assert!(
            cold_s <= 0.5 + 1e-12,
            "cold-start charge {cold_s} must clamp to the {} s left",
            0.5
        );
        assert!(
            cold_s < boot_s,
            "regression: unclamped charge leaked through"
        );
        let rented = &nodes[1];
        assert!(
            rented.ready_at_s > horizon_s,
            "this boot cannot finish in time"
        );
        assert!(
            rented.st.now <= horizon_s + 1e-12,
            "a never-ready node's clock must park at the horizon"
        );
        assert!(rented.st.downtime_s <= 0.5 + 1e-12);
    }

    #[test]
    fn drain_deadline_clamps_to_horizon() {
        // Direct controller regression: an absurd drain window cannot
        // push the force-drain deadline past the end of the run.
        let mut cfg = base_cfg(small_traffic(4.0, 10.0, 3));
        cfg.controller.scale_down_ticks = 1;
        cfg.controller.drain_window_s = 1.0e9;
        let horizon_s = cfg.serving.duration_s;
        let mk = |rented: bool| FleetNode {
            st: new_node_state(
                &cfg,
                tdx_serving_node(),
                FaultPlan::seeded(&FaultRates::none(), horizon_s, 1),
            ),
            ready_at_s: 0.0,
            rented_at_s: 0.0,
            rented,
            draining: false,
            drain_deadline_s: f64::INFINITY,
            retired: false,
            retired_at_s: 0.0,
        };
        let mut nodes = vec![mk(false), mk(true)];
        // Keep the rental busy so it drains instead of retiring on the
        // spot (the deadline only exists for in-flight work).
        nodes[1].st.scheduler.enqueue_at(
            Request {
                id: 0,
                arrival_s: 0.0,
                prompt_tokens: 32,
                output_tokens: 8,
            },
            0.0,
        );
        let _ = nodes[1]
            .st
            .scheduler
            .admit_any(&cfg.serving.model, cfg.serving.dtype, 0.0);
        let t = horizon_s - 2.0;
        let (mut warm, mut ups, mut promos, mut colds, mut downs) =
            (0usize, 0u64, 0u64, 0u64, 0u64);
        let (mut cold_s, mut unseal_s, mut low) = (0.0f64, 0.0f64, 0u32);
        let mut sink = TraceSink::disabled();
        run_controller(
            &cfg,
            &mut nodes,
            t,
            horizon_s,
            &mut warm,
            &mut ups,
            &mut promos,
            &mut colds,
            &mut downs,
            &mut cold_s,
            &mut unseal_s,
            &mut low,
            &mut sink,
        );
        assert_eq!(downs, 1, "one calm tick at scale_down_ticks=1 must drain");
        assert!(nodes[1].draining);
        assert!(
            nodes[1].drain_deadline_s <= horizon_s + 1e-12,
            "regression: drain deadline {} leaked past the horizon {}",
            nodes[1].drain_deadline_s,
            horizon_s
        );
    }

    #[test]
    fn stuck_drain_defers_retirement_to_the_deadline() {
        // No active window: retire on the spot.
        assert!((drain_retire_time(10.0, 5.0, 20.0) - 10.0).abs() < 1e-12);
        // Window clears before the deadline: retire when it clears.
        assert!((drain_retire_time(10.0, 15.0, 20.0) - 15.0).abs() < 1e-12);
        // Window outlives the deadline: force-retire at the deadline.
        assert!((drain_retire_time(10.0, 1.0e9, 20.0) - 20.0).abs() < 1e-12);
        // Clocks never move backward, even past a stale deadline.
        assert!((drain_retire_time(25.0, 1.0e9, 20.0) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn degraded_base_fleet_slows_but_conserves() {
        let mk = |rates: FaultRates| {
            let mut t = small_traffic(0.6, 1.0, 5);
            t.bursts = cllm_workload::trace::BurstModel::none();
            let mut cfg = base_cfg(t);
            cfg.base_fleet = vec![NodeSpec::new(tdx_serving_node(), false, rates, 1)];
            cfg
        };
        let clean = simulate_autoscale(&mk(FaultRates::none()));
        let gray = simulate_autoscale(&mk(FaultRates {
            degraded_windows_per_hr: 1200.0,
            ..FaultRates::none()
        }));
        assert_eq!(gray.arrivals, clean.arrivals, "traffic is fault-blind");
        assert_eq!(gray.completed + gray.aborted + gray.shed, gray.arrivals);
        assert!(
            gray.makespan_s > clean.makespan_s,
            "dense derate windows must slow the fleet: {} vs {}",
            gray.makespan_s,
            clean.makespan_s
        );
    }

    #[test]
    fn stuck_drain_rentals_bill_through_the_wedged_drain() {
        let mk = |stuck_per_hr: f64| {
            let mut cfg = base_cfg(small_traffic(4.0, 10.0, 3));
            cfg.controller.scale_down_ticks = 1;
            cfg.rental.rates = FaultRates {
                stuck_drains_per_hr: stuck_per_hr,
                ..FaultRates::none()
            };
            cfg
        };
        let clean = simulate_autoscale(&mk(0.0));
        let stuck = simulate_autoscale(&mk(3600.0));
        assert!(
            clean.scale_downs >= 1,
            "this trace must scale down for the wedge to bite"
        );
        assert_eq!(stuck.arrivals, clean.arrivals);
        assert_eq!(stuck.completed + stuck.aborted + stuck.shed, stuck.arrivals);
        assert!(
            stuck.rental_cost_usd > clean.rental_cost_usd,
            "a wedged drain keeps renting until its deadline: {} vs {}",
            stuck.rental_cost_usd,
            clean.rental_cost_usd
        );
    }

    fn storm_cfg(retry: RetryBudget) -> AutoscaleConfig {
        let mut cfg = base_cfg(small_traffic(3.0, 1.0, 5));
        // Long decodes keep requests in flight across several crash
        // intervals, so attempts actually accumulate past the budget;
        // long prompts make every requeue pay a real prefill, which is
        // the capacity the storm burns.
        cfg.traffic.prompt = LognormalLen {
            mu_ln: 6.5,
            sigma_ln: 0.3,
            min_tokens: 512,
            max_tokens: 2048,
        };
        cfg.traffic.output = LognormalLen {
            mu_ln: 4.2,
            sigma_ln: 0.3,
            min_tokens: 48,
            max_tokens: 192,
        };
        // Patient tiers: without deadlines shedding stale victims, the
        // retry policy is the only thing standing between a crash-heavy
        // fleet and a metastable requeue storm.
        for tier in Tier::ALL {
            cfg.tiers.policy_mut(tier).deadline_s = 15.0;
            cfg.tiers.policy_mut(tier).queue_cap = usize::MAX;
        }
        // A crash-heavy fixed fleet: no rentals, so the retry policy is
        // the only lever under test.
        cfg.controller.max_rented = 0;
        // Pure state-destroying crashes: every fault drains the running
        // batch into the retry path, which is exactly the storm the
        // budget exists to bound.
        let rates = FaultRates {
            enclave_crashes_per_hr: 900.0,
            ..FaultRates::none()
        };
        cfg.base_fleet = vec![
            NodeSpec::new(tdx_serving_node(), true, rates, 21),
            NodeSpec::new(tdx_serving_node(), true, rates, 22),
        ];
        cfg.retry = retry;
        cfg
    }

    #[test]
    fn retry_budget_bounds_the_storm() {
        let budget = RetryBudget {
            per_request: 2,
            storm_window_s: 10.0,
            storm_max_retries: 16,
        };
        let budgeted = simulate_autoscale(&storm_cfg(budget));
        let unbudgeted = simulate_autoscale(&storm_cfg(RetryBudget::unbudgeted()));
        for r in [&budgeted, &unbudgeted] {
            assert_eq!(r.completed + r.aborted + r.shed, r.arrivals);
        }
        assert!(
            budgeted
                .records
                .iter()
                .all(|r| r.retries <= budget.per_request),
            "no completed request may exceed the per-request budget"
        );
        assert!(budgeted.aborted > 0, "the budget must bind in this storm");
        assert!(
            budgeted.storm_drops > 0,
            "the global circuit must trip in this storm"
        );
        assert!(
            budgeted.retries < unbudgeted.retries,
            "the budget must cut retry volume ({} vs {})",
            budgeted.retries,
            unbudgeted.retries
        );
        // Service availability: the fraction of arrivals the fleet
        // accepted and worked on (sheds are refusals). Unbounded retries
        // churn reattest + long prefills through the queues, starving
        // fresh arrivals into deadline sheds — the budget converts that
        // amplification into a few bounded aborts and keeps the front
        // door open.
        let availability = |r: &AutoscaleReport| 1.0 - r.shed as f64 / r.arrivals as f64;
        assert!(
            availability(&budgeted) > availability(&unbudgeted),
            "bounded retries must keep availability above the storm ({} vs {})",
            availability(&budgeted),
            availability(&unbudgeted)
        );
    }

    #[test]
    fn tier_caps_shed_at_the_front_door() {
        let mut cfg = base_cfg(small_traffic(12.0, 6.0, 13));
        cfg.controller.max_rented = 0;
        cfg.tiers.policy_mut(Tier::Free).queue_cap = 1;
        let r = simulate_autoscale(&cfg);
        assert!(r.tiers[Tier::Free.index()].shed > 0, "cap of 1 must shed");
        assert_eq!(r.completed + r.aborted + r.shed, r.arrivals);
    }
}
