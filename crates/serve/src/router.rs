//! Cluster front door: bounded admission and per-node circuit breakers.
//!
//! A single faulted node degrades; a *fleet* behind a router survives —
//! but only if the router refuses work it cannot serve (bounded
//! admission with a `Rejected` terminal state) and stops feeding nodes
//! that are failing (circuit breakers). Both mechanisms are plain
//! deterministic state machines here, driven entirely by simulation
//! time, so cluster runs stay byte-reproducible.
//!
//! # Breaker state machine
//!
//! ```text
//!             error rate over window
//!   Closed ───────────────────────────▶ Open
//!     ▲                                  │ cooloff elapses
//!     │ probe completes                  ▼
//!     └─────────────────────────────  HalfOpen
//!              (re-attestation toll)     │ error during probe
//!                                        └──────▶ Open again
//! ```
//!
//! Closing the breaker is not free: the node re-attests through the
//! real `cllm_tee::session` handshake (see
//! [`attested_rehandshake`](crate::faults::attested_rehandshake)), and
//! the cluster charges
//! [`RecoveryPolicy::reattest_s`](crate::faults::RecoveryPolicy) — the
//! recovery toll both H100-CC measurement studies flag as the dominant
//! rejoin cost.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Bounded admission: how much waiting work the router may park on a
/// node, and how stale a request may get before it is shed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Maximum queued (not yet running) requests per node; a fresh
    /// arrival finding every queue at the cap is `Rejected`.
    pub queue_cap: usize,
    /// Per-request deadline, seconds from original arrival: a request
    /// still waiting in a queue past its deadline is shed as `Rejected`
    /// (it would miss any interactive SLO anyway).
    pub deadline_s: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            queue_cap: 32,
            deadline_s: 30.0,
        }
    }
}

impl AdmissionPolicy {
    /// No bounds: every arrival is queued, nothing is ever shed. Makes a
    /// cluster run conservative-compatible with the single-node
    /// simulator (`rejected == 0`).
    #[must_use]
    pub fn unbounded() -> Self {
        AdmissionPolicy {
            queue_cap: usize::MAX,
            deadline_s: f64::INFINITY,
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Sliding window of recent outcomes (fault events and request
    /// completions) the error rate is judged over.
    pub window: usize,
    /// Errors within the window that trip the breaker open.
    pub trip_errors: usize,
    /// How long an open breaker refuses traffic before letting one probe
    /// through, seconds.
    pub cooloff_s: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            trip_errors: 3,
            cooloff_s: 5.0,
        }
    }
}

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: traffic flows.
    Closed,
    /// Tripped: no new work until the cooloff elapses.
    Open,
    /// Cooloff elapsed: one probe admitted; its outcome decides.
    HalfOpen,
}

/// Per-node circuit breaker: error-rate window → open → half-open probe
/// → close, with the close paying a fresh attested handshake.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    open_until_s: f64,
    recent: VecDeque<bool>, // true = error
    /// Times the breaker tripped open.
    pub trips: u64,
    /// Times a half-open probe closed the breaker.
    pub closes: u64,
}

impl CircuitBreaker {
    /// A closed breaker with an empty window.
    #[must_use]
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            open_until_s: 0.0,
            recent: VecDeque::new(),
            trips: 0,
            closes: 0,
        }
    }

    /// Current position.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    fn push(&mut self, error: bool) {
        self.recent.push_back(error);
        while self.recent.len() > self.cfg.window {
            self.recent.pop_front();
        }
    }

    /// Record a fault on the node at `now_s`. Trips the breaker when the
    /// window's error count reaches the threshold; any error during a
    /// half-open probe re-opens immediately.
    pub fn record_error(&mut self, now_s: f64) {
        self.push(true);
        let errors = self.recent.iter().filter(|&&e| e).count();
        let trip = match self.state {
            BreakerState::HalfOpen => true, // failed probe
            BreakerState::Closed => errors >= self.cfg.trip_errors,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.open_until_s = now_s + self.cfg.cooloff_s;
            self.recent.clear();
            self.trips += 1;
        }
    }

    /// Record a successful completion on the node. In half-open state
    /// the probe succeeded: the breaker closes and the caller must
    /// charge the re-attestation toll. Returns `true` exactly when this
    /// call closed the breaker.
    pub fn record_success(&mut self) -> bool {
        self.push(false);
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.closes += 1;
            true
        } else {
            false
        }
    }

    /// Whether the router may send new work to the node at `now_s`.
    /// An open breaker whose cooloff has elapsed transitions to
    /// half-open here (and admits the probe).
    pub fn accepts(&mut self, now_s: f64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_s >= self.open_until_s {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Pick the routing target among candidate nodes: the accepting node
/// with the shallowest queue, ties to the lowest id. `depths` pairs each
/// candidate node id with its current queue depth (queued + running);
/// `accepts` must already reflect breaker + capacity checks. Returns
/// `None` when no candidate accepts — the caller sheds or falls back.
#[must_use]
pub fn route_least_loaded(candidates: &[(usize, usize)]) -> Option<usize> {
    candidates
        .iter()
        .min_by_key(|&&(id, depth)| (depth, id))
        .map(|&(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_on_error_rate_and_reprobes() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            trip_errors: 2,
            cooloff_s: 10.0,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_error(1.0);
        assert_eq!(b.state(), BreakerState::Closed, "one error is tolerated");
        b.record_error(2.0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 1);
        assert!(!b.accepts(5.0), "cooloff still running");
        assert!(b.accepts(12.0), "cooloff elapsed admits the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.record_success(), "probe success closes the breaker");
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes, 1);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            trip_errors: 2,
            cooloff_s: 10.0,
        });
        b.record_error(0.0);
        b.record_error(0.0);
        assert!(b.accepts(11.0));
        b.record_error(11.5); // the probe's node faulted again
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 2);
        assert!(!b.accepts(12.0));
        assert!(b.accepts(25.0));
        assert!(b.record_success());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn successes_age_errors_out_of_the_window() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 3,
            trip_errors: 2,
            cooloff_s: 1.0,
        });
        b.record_error(0.0);
        assert!(!b.record_success());
        assert!(!b.record_success());
        assert!(!b.record_success()); // the error has left the window
        b.record_error(1.0);
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "a lone error in a healthy window must not trip"
        );
    }

    #[test]
    fn routing_prefers_shallow_queue_then_low_id() {
        assert_eq!(route_least_loaded(&[(0, 5), (1, 2), (2, 2)]), Some(1));
        assert_eq!(route_least_loaded(&[(3, 0)]), Some(3));
        assert_eq!(route_least_loaded(&[]), None);
    }

    #[test]
    fn unbounded_admission_never_sheds() {
        let p = AdmissionPolicy::unbounded();
        assert_eq!(p.queue_cap, usize::MAX);
        assert!(p.deadline_s.is_infinite());
        let d = AdmissionPolicy::default();
        assert!(d.queue_cap < usize::MAX && d.deadline_s.is_finite());
    }
}
