//! Cluster front door: bounded admission and per-node circuit breakers.
//!
//! A single faulted node degrades; a *fleet* behind a router survives —
//! but only if the router refuses work it cannot serve (bounded
//! admission with a `Rejected` terminal state) and stops feeding nodes
//! that are failing (circuit breakers). Both mechanisms are plain
//! deterministic state machines here, driven entirely by simulation
//! time, so cluster runs stay byte-reproducible.
//!
//! # Breaker state machine
//!
//! ```text
//!             error rate over window
//!   Closed ───────────────────────────▶ Open
//!     ▲                                  │ cooloff elapses
//!     │ probe completes                  ▼
//!     └─────────────────────────────  HalfOpen
//!              (re-attestation toll)     │ error during probe
//!                                        └──────▶ Open again
//! ```
//!
//! Closing the breaker is not free: the node re-attests through the
//! real `cllm_tee::session` handshake (see
//! [`attested_rehandshake`](crate::faults::attested_rehandshake)), and
//! the cluster charges
//! [`RecoveryPolicy::reattest_s`](crate::faults::RecoveryPolicy) — the
//! recovery toll both H100-CC measurement studies flag as the dominant
//! rejoin cost.

use crate::slo::Slo;
use cllm_workload::trace::Tier;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Bounded admission: how much waiting work the router may park on a
/// node, and how stale a request may get before it is shed.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdmissionPolicy {
    /// Maximum queued (not yet running) requests per node; a fresh
    /// arrival finding every queue at the cap is `Rejected`.
    pub queue_cap: usize,
    /// Per-request deadline, seconds from original arrival: a request
    /// still waiting in a queue past its deadline is shed as `Rejected`
    /// (it would miss any interactive SLO anyway).
    pub deadline_s: f64,
}

impl Default for AdmissionPolicy {
    fn default() -> Self {
        AdmissionPolicy {
            queue_cap: 32,
            deadline_s: 30.0,
        }
    }
}

impl AdmissionPolicy {
    /// No bounds: every arrival is queued, nothing is ever shed. Makes a
    /// cluster run conservative-compatible with the single-node
    /// simulator (`rejected == 0`).
    #[must_use]
    pub fn unbounded() -> Self {
        AdmissionPolicy {
            queue_cap: usize::MAX,
            deadline_s: f64::INFINITY,
        }
    }
}

/// Circuit-breaker tuning.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BreakerConfig {
    /// Sliding window of recent outcomes (fault events and request
    /// completions) the error rate is judged over.
    pub window: usize,
    /// Errors within the window that trip the breaker open.
    pub trip_errors: usize,
    /// How long an open breaker refuses traffic before letting one probe
    /// through, seconds.
    pub cooloff_s: f64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            window: 8,
            trip_errors: 3,
            cooloff_s: 5.0,
        }
    }
}

/// Breaker position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BreakerState {
    /// Healthy: traffic flows.
    Closed,
    /// Tripped: no new work until the cooloff elapses.
    Open,
    /// Cooloff elapsed: one probe admitted; its outcome decides.
    HalfOpen,
}

/// Per-node circuit breaker: error-rate window → open → half-open probe
/// → close, with the close paying a fresh attested handshake.
#[derive(Debug, Clone)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: BreakerState,
    open_until_s: f64,
    recent: VecDeque<bool>, // true = error
    /// Times the breaker tripped open.
    pub trips: u64,
    /// Times a half-open probe closed the breaker.
    pub closes: u64,
}

impl CircuitBreaker {
    /// A closed breaker with an empty window.
    #[must_use]
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: BreakerState::Closed,
            open_until_s: 0.0,
            recent: VecDeque::new(),
            trips: 0,
            closes: 0,
        }
    }

    /// Current position.
    #[must_use]
    pub fn state(&self) -> BreakerState {
        self.state
    }

    fn push(&mut self, error: bool) {
        self.recent.push_back(error);
        while self.recent.len() > self.cfg.window {
            self.recent.pop_front();
        }
    }

    /// Record a fault on the node at `now_s`. Trips the breaker when the
    /// window's error count reaches the threshold; any error during a
    /// half-open probe re-opens immediately.
    pub fn record_error(&mut self, now_s: f64) {
        self.push(true);
        let errors = self.recent.iter().filter(|&&e| e).count();
        let trip = match self.state {
            BreakerState::HalfOpen => true, // failed probe
            BreakerState::Closed => errors >= self.cfg.trip_errors,
            BreakerState::Open => false,
        };
        if trip {
            self.state = BreakerState::Open;
            self.open_until_s = now_s + self.cfg.cooloff_s;
            self.recent.clear();
            self.trips += 1;
        }
    }

    /// Record a successful completion on the node. In half-open state
    /// the probe succeeded: the breaker closes and the caller must
    /// charge the re-attestation toll. Returns `true` exactly when this
    /// call closed the breaker.
    pub fn record_success(&mut self) -> bool {
        self.push(false);
        if self.state == BreakerState::HalfOpen {
            self.state = BreakerState::Closed;
            self.closes += 1;
            true
        } else {
            false
        }
    }

    /// Whether the router may send new work to the node at `now_s`.
    /// An open breaker whose cooloff has elapsed transitions to
    /// half-open here (and admits the probe).
    pub fn accepts(&mut self, now_s: f64) -> bool {
        match self.state {
            BreakerState::Closed | BreakerState::HalfOpen => true,
            BreakerState::Open => {
                if now_s >= self.open_until_s {
                    self.state = BreakerState::HalfOpen;
                    true
                } else {
                    false
                }
            }
        }
    }
}

/// Per-tier admission bounds and SLO. The shedding order is fixed by
/// [`Tier::ALL`] — free first, premium last — and the per-tier bounds
/// here encode *how much* patience each tier buys: free riders get a
/// short queue and a tight staleness deadline, premium gets a deep queue
/// and the longest deadline, so under overload the free tier absorbs the
/// shedding long before premium feels it.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierPolicy {
    /// Maximum queued (not yet running) requests of this tier across the
    /// fleet; an arrival finding its tier at the cap is shed.
    pub queue_cap: usize,
    /// Staleness deadline, seconds from arrival: a request of this tier
    /// still queued past it is shed.
    pub deadline_s: f64,
    /// The latency SLO this tier is judged against in reports.
    pub slo: Slo,
}

/// The fleet's tiered admission table, indexed by [`Tier`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TieredAdmission {
    tiers: [TierPolicy; 3],
}

impl Default for TieredAdmission {
    /// Free: shallow queue (64), 6 s deadline, relaxed SLO (5 s TTFT).
    /// Standard: 192-deep, 20 s deadline, interactive SLO.
    /// Premium: 512-deep, 45 s deadline, interactive SLO.
    fn default() -> Self {
        TieredAdmission {
            tiers: [
                TierPolicy {
                    queue_cap: 64,
                    deadline_s: 6.0,
                    slo: Slo {
                        ttft_s: 5.0,
                        tpot_s: 0.5,
                    },
                },
                TierPolicy {
                    queue_cap: 192,
                    deadline_s: 20.0,
                    slo: Slo::interactive(),
                },
                TierPolicy {
                    queue_cap: 512,
                    deadline_s: 45.0,
                    slo: Slo::interactive(),
                },
            ],
        }
    }
}

impl TieredAdmission {
    /// The policy for one tier.
    #[must_use]
    pub fn policy(&self, tier: Tier) -> &TierPolicy {
        &self.tiers[tier.index()]
    }

    /// Mutable access, for experiment arms that tighten one tier.
    pub fn policy_mut(&mut self, tier: Tier) -> &mut TierPolicy {
        &mut self.tiers[tier.index()]
    }
}

/// Retry budgeting: the per-request cap plus a global retry-rate circuit
/// that kills metastable retry storms. Without the circuit, a burst of
/// crash-class faults re-queues enough work that retries beget timeouts
/// beget retries — the classic metastable failure. The guard bounds the
/// *fleet-wide* retry rate over a sliding window; a retry arriving with
/// the window full is converted into an abort (counted, conserved)
/// instead of re-entering the queue.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryBudget {
    /// Maximum re-queues a single request may consume before it is
    /// aborted (tighter than or equal to the node-level
    /// [`RecoveryPolicy::max_retries`](crate::faults::RecoveryPolicy)).
    pub per_request: u32,
    /// Sliding window the global retry rate is judged over, seconds.
    pub storm_window_s: f64,
    /// Maximum retries admitted fleet-wide within any window.
    pub storm_max_retries: usize,
}

impl Default for RetryBudget {
    fn default() -> Self {
        RetryBudget {
            per_request: 3,
            storm_window_s: 10.0,
            storm_max_retries: 64,
        }
    }
}

impl RetryBudget {
    /// No budget: per-request retries bounded only by the recovery
    /// policy, no global circuit. The baseline the storm test beats.
    #[must_use]
    pub fn unbudgeted() -> Self {
        RetryBudget {
            per_request: u32::MAX,
            storm_window_s: 1.0,
            storm_max_retries: usize::MAX,
        }
    }
}

/// The global retry-rate circuit. Deterministic: driven entirely by
/// simulated retry timestamps.
#[derive(Debug, Clone)]
pub struct RetryStormGuard {
    cfg: RetryBudget,
    recent_s: VecDeque<f64>,
    /// Retries refused by the circuit (the caller aborts the request).
    pub storm_drops: u64,
}

impl RetryStormGuard {
    /// A fresh guard with an empty window.
    #[must_use]
    pub fn new(cfg: RetryBudget) -> Self {
        RetryStormGuard {
            cfg,
            recent_s: VecDeque::new(),
            storm_drops: 0,
        }
    }

    /// The budget this guard enforces.
    #[must_use]
    pub fn budget(&self) -> &RetryBudget {
        &self.cfg
    }

    /// May a request that has already been re-queued `attempts` times
    /// retry again at `now_s`? `false` means the caller must abort it —
    /// either its per-request budget is spent or the fleet-wide retry
    /// rate is already at the circuit's cap (a storm; the drop is
    /// counted in `storm_drops`).
    ///
    /// `now_s` may legitimately exceed the run horizon: a
    /// horizon-clamped outage plus backoff can land a retry past the
    /// end of the run while in-flight work drains. The sliding window
    /// is purely relative (`now_s - storm_window_s`), so no horizon
    /// clamp is needed here — admissions are translation-invariant in
    /// time.
    pub fn admit_retry(&mut self, now_s: f64, attempts: u32) -> bool {
        if attempts >= self.cfg.per_request {
            return false;
        }
        while self
            .recent_s
            .front()
            .is_some_and(|&t| t < now_s - self.cfg.storm_window_s)
        {
            self.recent_s.pop_front();
        }
        if self.recent_s.len() >= self.cfg.storm_max_retries {
            self.storm_drops += 1;
            return false;
        }
        self.recent_s.push_back(now_s);
        true
    }
}

/// Brownout: before shedding *requests*, shed *tokens*. When aggregate
/// queue depth crosses `enter_depth` the controller caps every arriving
/// request's output budget at `output_cap_tokens`; it releases the cap
/// only once depth falls back under `exit_depth` (hysteresis, so the
/// mode doesn't flap at the boundary). Degrading answer length first
/// keeps availability up — a short answer beats a shed request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BrownoutConfig {
    /// Aggregate queued-request depth that activates the brownout.
    pub enter_depth: usize,
    /// Depth below which the brownout deactivates (must be `<=
    /// enter_depth` for the hysteresis to make sense).
    pub exit_depth: usize,
    /// Output-token cap applied to arrivals while active.
    pub output_cap_tokens: u64,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            enter_depth: 256,
            exit_depth: 64,
            output_cap_tokens: 32,
        }
    }
}

/// Brownout state machine (see [`BrownoutConfig`]).
#[derive(Debug, Clone)]
pub struct Brownout {
    cfg: BrownoutConfig,
    active: bool,
    /// Times the brownout activated.
    pub activations: u64,
    /// Output tokens trimmed from arrivals while active.
    pub tokens_trimmed: u64,
}

impl Brownout {
    /// An inactive brownout controller.
    #[must_use]
    pub fn new(cfg: BrownoutConfig) -> Self {
        Brownout {
            cfg,
            active: false,
            activations: 0,
            tokens_trimmed: 0,
        }
    }

    /// Feed the current aggregate queue depth; returns whether the
    /// brownout is active after the observation.
    pub fn observe_depth(&mut self, depth: usize) -> bool {
        if self.active {
            if depth < self.cfg.exit_depth {
                self.active = false;
            }
        } else if depth >= self.cfg.enter_depth {
            self.active = true;
            self.activations += 1;
        }
        self.active
    }

    /// Apply the cap to an arriving request's output budget. A no-op
    /// while inactive; while active, trims to the cap and accounts the
    /// trimmed tokens.
    #[must_use]
    pub fn cap_output(&mut self, output_tokens: u64) -> u64 {
        if self.active && output_tokens > self.cfg.output_cap_tokens {
            self.tokens_trimmed += output_tokens - self.cfg.output_cap_tokens;
            self.cfg.output_cap_tokens
        } else {
            output_tokens
        }
    }

    /// Whether the brownout is currently active.
    #[must_use]
    pub fn active(&self) -> bool {
        self.active
    }
}

/// Pick the routing target among candidate nodes: the accepting node
/// with the shallowest queue, ties to the lowest id. `depths` pairs each
/// candidate node id with its current queue depth (queued + running);
/// `accepts` must already reflect breaker + capacity checks. Returns
/// `None` when no candidate accepts — the caller sheds or falls back.
#[must_use]
pub fn route_least_loaded(candidates: &[(usize, usize)]) -> Option<usize> {
    candidates
        .iter()
        .min_by_key(|&&(id, depth)| (depth, id))
        .map(|&(id, _)| id)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storm_window_is_translation_invariant_past_the_horizon() {
        // The guard has no horizon term: shifting every retry timestamp
        // by a constant — including one that pushes the whole sequence
        // past the end of a run — must produce the same admit/drop
        // pattern and drop count.
        let times = [0.0, 1.0, 2.5, 9.9, 10.05, 11.0, 25.0, 25.0];
        let run = |offset: f64| {
            let mut g = RetryStormGuard::new(RetryBudget {
                per_request: 10,
                storm_window_s: 10.0,
                storm_max_retries: 3,
            });
            let admits: Vec<bool> = times
                .iter()
                .map(|&t| g.admit_retry(t + offset, 0))
                .collect();
            (admits, g.storm_drops)
        };
        let base = run(0.0);
        assert!(base.1 > 0, "the sequence must exercise the circuit");
        assert_eq!(base, run(30.0), "a horizon-sized shift changes nothing");
        assert_eq!(base, run(1.0e6));
    }

    #[test]
    fn breaker_trips_on_error_rate_and_reprobes() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            trip_errors: 2,
            cooloff_s: 10.0,
        });
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_error(1.0);
        assert_eq!(b.state(), BreakerState::Closed, "one error is tolerated");
        b.record_error(2.0);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 1);
        assert!(!b.accepts(5.0), "cooloff still running");
        assert!(b.accepts(12.0), "cooloff elapsed admits the probe");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(b.record_success(), "probe success closes the breaker");
        assert_eq!(b.state(), BreakerState::Closed);
        assert_eq!(b.closes, 1);
    }

    #[test]
    fn failed_probe_reopens() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 4,
            trip_errors: 2,
            cooloff_s: 10.0,
        });
        b.record_error(0.0);
        b.record_error(0.0);
        assert!(b.accepts(11.0));
        b.record_error(11.5); // the probe's node faulted again
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips, 2);
        assert!(!b.accepts(12.0));
        assert!(b.accepts(25.0));
        assert!(b.record_success());
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn successes_age_errors_out_of_the_window() {
        let mut b = CircuitBreaker::new(BreakerConfig {
            window: 3,
            trip_errors: 2,
            cooloff_s: 1.0,
        });
        b.record_error(0.0);
        assert!(!b.record_success());
        assert!(!b.record_success());
        assert!(!b.record_success()); // the error has left the window
        b.record_error(1.0);
        assert_eq!(
            b.state(),
            BreakerState::Closed,
            "a lone error in a healthy window must not trip"
        );
    }

    #[test]
    fn routing_prefers_shallow_queue_then_low_id() {
        assert_eq!(route_least_loaded(&[(0, 5), (1, 2), (2, 2)]), Some(1));
        assert_eq!(route_least_loaded(&[(3, 0)]), Some(3));
        assert_eq!(route_least_loaded(&[]), None);
    }

    #[test]
    fn unbounded_admission_never_sheds() {
        let p = AdmissionPolicy::unbounded();
        assert_eq!(p.queue_cap, usize::MAX);
        assert!(p.deadline_s.is_infinite());
        let d = AdmissionPolicy::default();
        assert!(d.queue_cap < usize::MAX && d.deadline_s.is_finite());
    }

    #[test]
    fn tier_table_orders_patience_by_tier() {
        let t = TieredAdmission::default();
        let free = t.policy(Tier::Free);
        let std_ = t.policy(Tier::Standard);
        let prem = t.policy(Tier::Premium);
        assert!(free.queue_cap < std_.queue_cap && std_.queue_cap < prem.queue_cap);
        assert!(free.deadline_s < std_.deadline_s && std_.deadline_s < prem.deadline_s);
        assert!(free.slo.ttft_s >= prem.slo.ttft_s, "premium SLO is tighter");
        assert_eq!(Tier::ALL[0], Tier::Free, "free is shed first");
    }

    #[test]
    fn storm_guard_enforces_both_budgets() {
        let mut g = RetryStormGuard::new(RetryBudget {
            per_request: 2,
            storm_window_s: 10.0,
            storm_max_retries: 3,
        });
        // Per-request cap: attempts at the budget are refused outright
        // (not counted as storm drops — the request is simply spent).
        assert!(!g.admit_retry(0.0, 2));
        assert_eq!(g.storm_drops, 0);
        // Global circuit: the 4th retry in the window is a storm drop.
        assert!(g.admit_retry(1.0, 0));
        assert!(g.admit_retry(1.5, 0));
        assert!(g.admit_retry(2.0, 1));
        assert!(!g.admit_retry(2.5, 0));
        assert_eq!(g.storm_drops, 1);
        // The window slides: 12.0 is > 10 s past the 1.0/1.5 entries.
        assert!(g.admit_retry(12.0, 0));
        assert_eq!(g.storm_drops, 1);
    }

    #[test]
    fn unbudgeted_guard_never_drops() {
        let mut g = RetryStormGuard::new(RetryBudget::unbudgeted());
        for i in 0..1000 {
            assert!(g.admit_retry(f64::from(i) * 1e-3, i as u32));
        }
        assert_eq!(g.storm_drops, 0);
    }

    #[test]
    fn brownout_hysteresis_and_token_trim() {
        let mut b = Brownout::new(BrownoutConfig {
            enter_depth: 10,
            exit_depth: 4,
            output_cap_tokens: 16,
        });
        assert!(!b.observe_depth(9), "below enter stays off");
        assert_eq!(b.cap_output(100), 100, "inactive is a no-op");
        assert!(b.observe_depth(10), "enter threshold activates");
        assert_eq!(b.cap_output(100), 16);
        assert_eq!(b.cap_output(8), 8, "under-cap arrivals untouched");
        assert_eq!(b.tokens_trimmed, 84);
        assert!(b.observe_depth(7), "hysteresis: 7 >= exit keeps it on");
        assert!(!b.observe_depth(3), "below exit releases");
        assert_eq!(b.cap_output(100), 100);
        assert_eq!(b.activations, 1);
        assert!(b.observe_depth(11));
        assert_eq!(b.activations, 2);
    }
}
