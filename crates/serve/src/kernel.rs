//! The discrete-event simulation kernel shared by both serving loops.
//!
//! [`sim`](crate::sim) (single node) and [`cluster`](crate::cluster)
//! (fleet) used to be two hand-rolled event loops, each with its own
//! ad-hoc retry bookkeeping. They now drive the same three primitives:
//!
//! * [`EventQueue`] — a binary-heap future-event list with a
//!   deterministic `(time, key, seq)` total order. Dynamically scheduled
//!   events (retry eligibility) go through the heap; statically known
//!   streams (arrivals, fault schedules) stay sorted vectors consumed by
//!   cursor, which is the degenerate sorted-array event queue. Popping
//!   is `O(log n)` where the old `min_by` rescans were `O(n)` per
//!   delivery — `O(n²)` across a crash storm.
//! * [`RequestSlab`] — arena-style per-request state indexed by the
//!   dense request id (the arrival generator numbers requests `0..n` in
//!   arrival order), replacing `HashMap<u64, _>`/`HashSet<u64>` lookups
//!   on the hot path. Absent span cursors are a NaN sentinel, so the
//!   slab costs three flat arrays and no hashing.
//! * [`KernelStats`] — event counters (arrivals, retries, faults,
//!   admissions, decode steps, completions, rejections, preemptions,
//!   swaps) whose sum is the kernel event count `serve_scale`
//!   benchmarks as events/sec.
//!
//! Determinism contract: the queue's order is a *total* order — ties on
//! time break by caller-chosen key (retries use the request id, so
//! delivery is `(eligibility, id)`-ordered exactly like the legacy
//! loops), then by insertion sequence. Event times must be finite;
//! pushing a non-finite time panics rather than silently reordering.

use serde::Serialize;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One scheduled entry. Ordering is reversed so the max-heap
/// [`BinaryHeap`] pops the *smallest* `(time, key, seq)` first.
struct Entry<T> {
    time: f64,
    key: u64,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}

impl<T> Eq for Entry<T> {}

impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed on every field: the heap's max is the queue's min.
        other
            .time
            .partial_cmp(&self.time)
            // infallible: event times are sums of finite sim quantities; a NaN here is a kernel bug, not load-dependent state
            .expect("finite event time")
            .then_with(|| other.key.cmp(&self.key))
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A binary-heap future-event list with deterministic
/// `(time, key, seq)` tie-breaking.
///
/// `key` is caller-chosen (the serving loops use the request id so
/// same-instant retries deliver in id order); `seq` is the insertion
/// sequence number, making the order total even for identical
/// `(time, key)` pairs — and therefore independent of heap internals,
/// thread counts, and platform `sort` details.
pub struct EventQueue<T> {
    heap: BinaryHeap<Entry<T>>,
    seq: u64,
}

impl<T> EventQueue<T> {
    /// An empty queue.
    #[must_use]
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedule `payload` at `time` with tie-break key 0.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite (NaN would poison the heap order).
    pub fn push(&mut self, time: f64, payload: T) {
        self.push_keyed(time, 0, payload);
    }

    /// Schedule `payload` at `time`; ties on `time` break by `key`, then
    /// by insertion order.
    ///
    /// # Panics
    ///
    /// Panics if `time` is not finite (NaN would poison the heap order).
    pub fn push_keyed(&mut self, time: f64, key: u64, payload: T) {
        assert!(time.is_finite(), "event time must be finite, got {time}");
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Entry {
            time,
            key,
            seq,
            payload,
        });
    }

    /// Earliest scheduled time, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<f64> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pop the earliest entry as `(time, payload)`.
    pub fn pop(&mut self) -> Option<(f64, T)> {
        self.heap.pop().map(|e| (e.time, e.payload))
    }

    /// Pop the earliest entry iff it is due at or before `now`.
    pub fn pop_due(&mut self, now: f64) -> Option<T> {
        if self.peek_time().is_some_and(|t| t <= now) {
            self.heap.pop().map(|e| e.payload)
        } else {
            None
        }
    }

    /// Number of scheduled entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether nothing is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        EventQueue::new()
    }
}

/// Arena-style per-request state, indexed by the dense request id.
///
/// The workload generator numbers requests `0..n` in arrival order, so
/// per-request state lives in flat arrays instead of hash maps: retry
/// attempt counts, the span-emission cursor (NaN when absent — latencies
/// are never NaN by construction, so the sentinel is unambiguous), and
/// the cluster's pending-spill flag. Out-of-range ids grow the slab, so
/// hand-built test fixtures with sparse ids stay correct, merely slower.
pub struct RequestSlab {
    attempts: Vec<u32>,
    cursor: Vec<f64>,
    spilled: Vec<bool>,
}

impl RequestSlab {
    /// A slab sized for requests `0..n`.
    #[must_use]
    pub fn new(n: usize) -> Self {
        RequestSlab {
            attempts: vec![0; n],
            cursor: vec![f64::NAN; n],
            spilled: vec![false; n],
        }
    }

    /// Index for `id`, growing the slab if a sparse id exceeds it.
    #[allow(clippy::cast_possible_truncation)]
    fn slot(&mut self, id: u64) -> usize {
        let i = id as usize;
        if i >= self.attempts.len() {
            self.attempts.resize(i + 1, 0);
            self.cursor.resize(i + 1, f64::NAN);
            self.spilled.resize(i + 1, false);
        }
        i
    }

    /// Retry attempts recorded for `id` (0 if never seen).
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn attempts(&self, id: u64) -> u32 {
        self.attempts.get(id as usize).copied().unwrap_or(0)
    }

    /// Increment and return `id`'s attempt count.
    pub fn bump_attempts(&mut self, id: u64) -> u32 {
        let i = self.slot(id);
        self.attempts[i] += 1;
        self.attempts[i]
    }

    /// The span cursor for `id`, if one is set.
    #[must_use]
    #[allow(clippy::cast_possible_truncation)]
    pub fn cursor(&self, id: u64) -> Option<f64> {
        let c = self.cursor.get(id as usize).copied()?;
        if c.is_nan() {
            None
        } else {
            Some(c)
        }
    }

    /// Set the span cursor for `id`.
    pub fn set_cursor(&mut self, id: u64, at_s: f64) {
        let i = self.slot(id);
        self.cursor[i] = at_s;
    }

    /// Take (and clear) the span cursor for `id`.
    pub fn take_cursor(&mut self, id: u64) -> Option<f64> {
        let i = self.slot(id);
        let c = self.cursor[i];
        self.cursor[i] = f64::NAN;
        if c.is_nan() {
            None
        } else {
            Some(c)
        }
    }

    /// Flag `id` as having crossed platform classes on failover.
    pub fn mark_spilled(&mut self, id: u64) {
        let i = self.slot(id);
        self.spilled[i] = true;
    }

    /// Take (and clear) `id`'s pending-spill flag.
    pub fn take_spilled(&mut self, id: u64) -> bool {
        let i = self.slot(id);
        std::mem::take(&mut self.spilled[i])
    }
}

/// Kernel event counters. Every counter is exact and deterministic (a
/// pure function of the simulation inputs), so experiment tables may pin
/// them in goldens; only the *wall-clock* events/sec derived from them
/// belongs in `BENCH_serve.json`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize)]
pub struct KernelStats {
    /// Arrivals delivered to a scheduler (or router).
    pub arrivals: u64,
    /// Retry entries popped from the event queue and re-enqueued.
    pub retries_delivered: u64,
    /// Fault events applied at iteration boundaries.
    pub faults_applied: u64,
    /// Requests admitted into a running batch (prefills charged).
    pub admissions: u64,
    /// Whole-batch decode iterations stepped.
    pub decode_steps: u64,
    /// Requests that produced a completion record.
    pub completions: u64,
    /// Requests rejected: front-door shed plus deadline shed.
    pub rejections: u64,
    /// Sequences evicted from a running batch on KV-pool pressure
    /// (either policy). Zero under conservative reservation.
    pub preemptions: u64,
    /// Swap-policy evictions that paged their KV out through the priced
    /// bounce-buffer / EPC-paging path.
    pub swap_outs: u64,
    /// Swapped sequences paged back in on readmission.
    pub swap_ins: u64,
}

impl KernelStats {
    /// Total kernel events processed — the numerator of events/sec.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.arrivals
            + self.retries_delivered
            + self.faults_applied
            + self.admissions
            + self.decode_steps
            + self.completions
            + self.rejections
            + self.preemptions
            + self.swap_outs
            + self.swap_ins
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(3.0, "c");
        q.push(1.0, "a");
        q.push(2.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((2.0, "b")));
        assert_eq!(q.pop(), Some((3.0, "c")));
        assert!(q.is_empty());
    }

    #[test]
    fn equal_times_break_by_key_then_seq() {
        let mut q = EventQueue::new();
        q.push_keyed(5.0, 7, "k7");
        q.push_keyed(5.0, 3, "k3-first");
        q.push_keyed(5.0, 3, "k3-second");
        q.push_keyed(4.0, 99, "earlier");
        assert_eq!(q.pop(), Some((4.0, "earlier")));
        assert_eq!(q.pop(), Some((5.0, "k3-first")));
        assert_eq!(q.pop(), Some((5.0, "k3-second")));
        assert_eq!(q.pop(), Some((5.0, "k7")));
    }

    #[test]
    fn pop_due_respects_now() {
        let mut q = EventQueue::new();
        q.push(1.0, 1u32);
        q.push(2.0, 2u32);
        assert_eq!(q.pop_due(1.5), Some(1));
        assert_eq!(q.pop_due(1.5), None, "2.0 is not due at 1.5");
        assert_eq!(q.peek_time(), Some(2.0));
        assert_eq!(q.pop_due(2.0), Some(2));
        assert_eq!(q.pop_due(f64::INFINITY), None);
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn non_finite_time_is_rejected() {
        EventQueue::new().push(f64::NAN, ());
    }

    #[test]
    fn retry_delivery_order_is_eligibility_then_id() {
        // The contract the serving loops rely on: among same-instant
        // retries, the smaller request id delivers first regardless of
        // the order crash victims were drained and re-queued.
        let mut q = EventQueue::new();
        for id in [7u64, 3, 9] {
            q.push_keyed(5.0, id, id);
        }
        q.push_keyed(4.0, 12, 12u64);
        let mut order = Vec::new();
        while let Some(id) = q.pop_due(5.0) {
            order.push(id);
        }
        assert_eq!(order, [12, 3, 7, 9]);
    }

    #[test]
    fn slab_tracks_attempts_cursor_and_spill() {
        let mut s = RequestSlab::new(2);
        assert_eq!(s.attempts(0), 0);
        assert_eq!(s.bump_attempts(0), 1);
        assert_eq!(s.bump_attempts(0), 2);
        assert_eq!(s.attempts(0), 2);
        assert_eq!(s.attempts(1), 0);

        assert_eq!(s.cursor(1), None);
        s.set_cursor(1, 3.5);
        assert_eq!(s.cursor(1), Some(3.5));
        assert_eq!(s.take_cursor(1), Some(3.5));
        assert_eq!(s.cursor(1), None);
        assert_eq!(s.take_cursor(1), None);

        assert!(!s.take_spilled(0));
        s.mark_spilled(0);
        assert!(s.take_spilled(0));
        assert!(!s.take_spilled(0), "take clears the flag");
    }

    #[test]
    fn slab_grows_for_sparse_ids() {
        let mut s = RequestSlab::new(0);
        assert_eq!(s.attempts(1000), 0);
        assert_eq!(s.bump_attempts(1000), 1);
        s.set_cursor(500, 1.0);
        assert_eq!(s.cursor(500), Some(1.0));
        assert_eq!(s.cursor(499), None);
    }

    #[test]
    fn stats_sum_to_events() {
        let s = KernelStats {
            arrivals: 1,
            retries_delivered: 2,
            faults_applied: 3,
            admissions: 4,
            decode_steps: 5,
            completions: 6,
            rejections: 7,
            preemptions: 8,
            swap_outs: 9,
            swap_ins: 10,
        };
        assert_eq!(s.events(), 55);
        assert_eq!(KernelStats::default().events(), 0);
    }
}
