//! Deterministic, seeded injection of TEE-specific failure events.
//!
//! The paper's cost story is built on *spot* prices, and its TEE
//! mechanisms — attestation, enclave exits, EPC paging, cGPU bounce
//! buffers — are exactly the components that fail in production. This
//! module models those failures as a pre-generated, seeded event stream
//! the serving event loop consumes:
//!
//! * **Crash-class** events ([`FaultKind::EnclaveCrash`],
//!   [`FaultKind::SpotPreemption`]) destroy the node's state: every
//!   resident request loses its KV cache and is re-queued under the
//!   bounded retry/backoff [`RecoveryPolicy`] (or aborted once the
//!   retry budget is spent).
//! * **Stall-class** events ([`FaultKind::AexStorm`],
//!   [`FaultKind::TdExitStorm`], [`FaultKind::EpcPagingStall`],
//!   [`FaultKind::BounceBufferStall`]) freeze the node for the event's
//!   outage window; state survives but every latency tail inflates.
//! * [`FaultKind::AttestationFailure`] models a quote-verification
//!   failure at session setup: the verifier rejects, and the enclave
//!   re-handshakes through the real `cllm_tee::session` state machine
//!   (see [`attested_rehandshake`]) while the node is unavailable.
//! * **Gray-failure** events ([`FaultKind::DegradedThroughput`],
//!   [`FaultKind::StuckDrain`]) never take the node down and never
//!   destroy state — the node keeps serving, just *worse*. A degraded
//!   window derates every decode step by
//!   [`DEGRADED_THROUGHPUT_FACTOR`]; a stuck drain wedges an in-flight
//!   scale-down so it cannot complete on its own and must be
//!   force-retired at its (horizon-clamped) drain deadline. These are
//!   the partial failures breakers and autoscalers handle worst,
//!   because no hard error ever fires.
//!
//! Rates are per-platform ([`FaultRates::for_platform`]): SGX pays
//! AEX/EPC events, TDX and SEV-SNP pay TD-exit storms, cGPUs pay bounce
//! buffer stalls, and everything rented on spot capacity pays
//! preemptions at the `cllm-cost` [`SpotParams`] rate. Schedules are
//! deterministic in their seed — two generations (on any thread count)
//! are byte-identical — and an **empty schedule is exactly the
//! zero-failure world**: the simulator takes no fault-related branch.

use cllm_cost::SpotParams;
use cllm_tee::attestation::Measurement;
use cllm_tee::platform::TeeKind;
use cllm_tee::session::{enclave_respond, HandshakePhase, SessionError, Verifier};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};

/// The TEE-specific failure modes the injector can schedule.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultKind {
    /// Quote verification fails at session setup; the session is
    /// re-established via a fresh attested handshake.
    AttestationFailure,
    /// The enclave process dies (SGX: EPC corruption, host kill, AEX
    /// cascade). All resident KV state is lost.
    EnclaveCrash,
    /// A storm of asynchronous enclave exits (SGX interrupt pressure):
    /// the node stalls, state survives.
    AexStorm,
    /// A storm of TD exits / SEAMCALL round trips (TDX, SEV-SNP VMEXIT
    /// pressure): the node stalls, state survives.
    TdExitStorm,
    /// The SGX working set spills out of the EPC and pages synchronously.
    EpcPagingStall,
    /// The cGPU encrypted PCIe bounce buffer saturates and back-pressures
    /// every host↔device transfer.
    BounceBufferStall,
    /// The cloud provider reclaims the spot instance; the replacement
    /// node must re-provision and re-attest. All resident state is lost.
    SpotPreemption,
    /// Gray failure: a slow-node window (thermal throttle, noisy
    /// neighbour, degraded NIC). For `outage_s` seconds the node keeps
    /// serving but every decode step is derated by
    /// [`DEGRADED_THROUGHPUT_FACTOR`]; no downtime is charged and no
    /// state is lost.
    DegradedThroughput,
    /// Gray failure: a scale-down drain wedges (stuck teardown hook,
    /// un-acknowledged deregistration). A node whose drain falls inside
    /// the `outage_s`-second window cannot confirm completion on its
    /// own and is force-retired at its horizon-clamped drain deadline.
    /// Paths without drains (single node, fixed cluster) record the
    /// event and carry on — exactly a gray failure's signature.
    StuckDrain,
}

/// Decode-step slowdown inside a [`FaultKind::DegradedThroughput`]
/// window: a derated node generates tokens at `1/4` its healthy rate —
/// slow enough to wreck tails, fast enough that nothing hard-fails.
pub const DEGRADED_THROUGHPUT_FACTOR: f64 = 4.0;

impl FaultKind {
    /// Every kind, in the deterministic order schedules are generated
    /// and ties at equal timestamps are broken.
    pub const ALL: [FaultKind; 9] = [
        FaultKind::AttestationFailure,
        FaultKind::EnclaveCrash,
        FaultKind::AexStorm,
        FaultKind::TdExitStorm,
        FaultKind::EpcPagingStall,
        FaultKind::BounceBufferStall,
        FaultKind::SpotPreemption,
        // Gray-failure kinds are appended last so the generation and
        // tie-break positions of the original seven never move — a
        // schedule with zero gray rates is byte-identical to one
        // generated before these kinds existed.
        FaultKind::DegradedThroughput,
        FaultKind::StuckDrain,
    ];

    /// Whether the event is a gray failure: the node stays up and keeps
    /// its state, only quality degrades. Gray events charge no
    /// downtime, so they are invisible to availability — which is
    /// exactly what makes them dangerous.
    #[must_use]
    pub fn is_gray(self) -> bool {
        matches!(self, FaultKind::DegradedThroughput | FaultKind::StuckDrain)
    }

    /// Whether the event destroys resident KV state (crash-class) as
    /// opposed to merely stalling the node.
    #[must_use]
    pub fn loses_state(self) -> bool {
        matches!(self, FaultKind::EnclaveCrash | FaultKind::SpotPreemption)
    }

    /// Short label used in reports and logs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            FaultKind::AttestationFailure => "attest-fail",
            FaultKind::EnclaveCrash => "enclave-crash",
            FaultKind::AexStorm => "aex-storm",
            FaultKind::TdExitStorm => "td-exit-storm",
            FaultKind::EpcPagingStall => "epc-paging",
            FaultKind::BounceBufferStall => "bounce-stall",
            FaultKind::SpotPreemption => "preemption",
            FaultKind::DegradedThroughput => "degraded-tput",
            FaultKind::StuckDrain => "stuck-drain",
        }
    }

    /// Outage-duration band (seconds) the generator samples log-uniformly
    /// from: how long the node is unavailable when this fault fires.
    #[must_use]
    pub fn outage_band_s(self) -> (f64, f64) {
        match self {
            // Re-handshake cost is charged from the policy instead.
            FaultKind::AttestationFailure => (0.0, 0.0),
            FaultKind::EnclaveCrash => (1.0, 5.0),
            FaultKind::AexStorm | FaultKind::TdExitStorm => (0.05, 0.5),
            FaultKind::EpcPagingStall | FaultKind::BounceBufferStall => (0.02, 0.2),
            // Re-provision a replacement instance and re-attest it.
            FaultKind::SpotPreemption => (10.0, 30.0),
            // Gray windows: `outage_s` is how long the degradation
            // *lasts*, not downtime — the node never goes unavailable.
            FaultKind::DegradedThroughput => (2.0, 20.0),
            FaultKind::StuckDrain => (5.0, 60.0),
        }
    }

    fn seed_salt(self) -> u64 {
        match self {
            FaultKind::AttestationFailure => 0xA77E,
            FaultKind::EnclaveCrash => 0xC4A5,
            FaultKind::AexStorm => 0xAE05,
            FaultKind::TdExitStorm => 0x7DE1,
            FaultKind::EpcPagingStall => 0xE9C0,
            FaultKind::BounceBufferStall => 0xB0B0,
            FaultKind::SpotPreemption => 0x5907,
            FaultKind::DegradedThroughput => 0xD264,
            FaultKind::StuckDrain => 0x57CD,
        }
    }
}

/// One scheduled failure.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation time the fault fires, seconds.
    pub at_s: f64,
    /// What fails.
    pub kind: FaultKind,
    /// How long the node is unavailable, seconds (zero for attestation
    /// failures, whose cost is the policy's re-handshake time).
    pub outage_s: f64,
}

/// Mean event rates per hour of operation, per fault kind.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FaultRates {
    /// Quote-verification failures at session setup.
    pub attestation_failures_per_hr: f64,
    /// Enclave crashes (state-destroying).
    pub enclave_crashes_per_hr: f64,
    /// Asynchronous-exit storms (SGX).
    pub aex_storms_per_hr: f64,
    /// TD-exit storms (TDX / SEV-SNP).
    pub td_exit_storms_per_hr: f64,
    /// EPC paging stalls (SGX).
    pub epc_paging_stalls_per_hr: f64,
    /// Encrypted bounce-buffer stalls (cGPU).
    pub bounce_stalls_per_hr: f64,
    /// Spot-instance preemptions (state-destroying), from the
    /// `cllm-cost` spot assumptions.
    pub preemptions_per_hr: f64,
    /// Gray slow-node windows (no downtime, decode steps derated).
    /// Zero by default and in every platform preset — gray failures
    /// are opt-in so existing seeded schedules stay byte-identical.
    pub degraded_windows_per_hr: f64,
    /// Gray stuck-drain windows (scale-downs wedge until force-retire).
    /// Zero by default and in every platform preset.
    pub stuck_drains_per_hr: f64,
}

impl FaultRates {
    /// The zero-failure world: generates an empty schedule.
    #[must_use]
    pub fn none() -> Self {
        FaultRates {
            attestation_failures_per_hr: 0.0,
            enclave_crashes_per_hr: 0.0,
            aex_storms_per_hr: 0.0,
            td_exit_storms_per_hr: 0.0,
            epc_paging_stalls_per_hr: 0.0,
            bounce_stalls_per_hr: 0.0,
            preemptions_per_hr: 0.0,
            degraded_windows_per_hr: 0.0,
            stuck_drains_per_hr: 0.0,
        }
    }

    /// Rates for one platform on spot capacity: each mechanism only
    /// fails on the platforms that have it, and every spot-rented node
    /// pays preemptions at the [`SpotParams`] rate.
    #[must_use]
    pub fn for_platform(kind: TeeKind, spot: &SpotParams) -> Self {
        let mut r = FaultRates {
            preemptions_per_hr: spot.preemptions_per_hr,
            ..Self::none()
        };
        if kind.is_confidential() {
            r.attestation_failures_per_hr = 0.2;
        }
        match kind {
            TeeKind::Sgx => {
                r.enclave_crashes_per_hr = 0.1;
                r.aex_storms_per_hr = 2.0;
                r.epc_paging_stalls_per_hr = 1.0;
            }
            TeeKind::Tdx | TeeKind::SevSnp => {
                r.td_exit_storms_per_hr = 2.0;
            }
            TeeKind::GpuCc => {
                r.bounce_stalls_per_hr = 2.0;
            }
            TeeKind::BareMetal | TeeKind::Vm | TeeKind::GpuNative => {}
        }
        r
    }

    /// Uniformly scale every rate — short simulated horizons use this to
    /// surface events that at production rates would be hours apart.
    #[must_use]
    pub fn scaled(mut self, factor: f64) -> Self {
        assert!(
            factor.is_finite() && factor >= 0.0,
            "scale factor must be finite and non-negative"
        );
        self.attestation_failures_per_hr *= factor;
        self.enclave_crashes_per_hr *= factor;
        self.aex_storms_per_hr *= factor;
        self.td_exit_storms_per_hr *= factor;
        self.epc_paging_stalls_per_hr *= factor;
        self.bounce_stalls_per_hr *= factor;
        self.preemptions_per_hr *= factor;
        self.degraded_windows_per_hr *= factor;
        self.stuck_drains_per_hr *= factor;
        self
    }

    fn rate_per_hr(&self, kind: FaultKind) -> f64 {
        match kind {
            FaultKind::AttestationFailure => self.attestation_failures_per_hr,
            FaultKind::EnclaveCrash => self.enclave_crashes_per_hr,
            FaultKind::AexStorm => self.aex_storms_per_hr,
            FaultKind::TdExitStorm => self.td_exit_storms_per_hr,
            FaultKind::EpcPagingStall => self.epc_paging_stalls_per_hr,
            FaultKind::BounceBufferStall => self.bounce_stalls_per_hr,
            FaultKind::SpotPreemption => self.preemptions_per_hr,
            FaultKind::DegradedThroughput => self.degraded_windows_per_hr,
            FaultKind::StuckDrain => self.stuck_drains_per_hr,
        }
    }
}

/// Bounded retry with exponential backoff plus the re-attestation toll.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Re-queue attempts granted to a request whose node died; the
    /// request is aborted once they are spent.
    pub max_retries: u32,
    /// Backoff before the first re-queue becomes eligible, seconds.
    pub backoff_base_s: f64,
    /// Multiplier applied per additional attempt.
    pub backoff_factor: f64,
    /// Cost of one attested re-handshake (nonce + DH + quote + HKDF),
    /// charged whenever a retried request is re-admitted and whenever a
    /// session-setup attestation fails.
    pub reattest_s: f64,
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            max_retries: 3,
            backoff_base_s: 0.25,
            backoff_factor: 2.0,
            reattest_s: 0.35,
        }
    }
}

impl RecoveryPolicy {
    /// Largest exponent the backoff doubling may reach: caps the
    /// `factor^(attempt-1)` growth *before* the multiply so huge attempt
    /// counts (or huge factors) can never overflow to infinity.
    pub const MAX_BACKOFF_EXPONENT: u32 = 30;

    /// Ceiling on any single backoff delay, seconds. One hour: past
    /// that, waiting longer carries no information — the node is gone.
    pub const MAX_BACKOFF_S: f64 = 3600.0;

    /// Backoff delay before re-queue attempt `attempt` (1-based) becomes
    /// eligible: `base * factor^(attempt-1)`, with the exponent capped at
    /// [`Self::MAX_BACKOFF_EXPONENT`] and the product clamped to
    /// [`Self::MAX_BACKOFF_S`] — finite for every `attempt` up to
    /// `u32::MAX` and every finite factor.
    #[must_use]
    pub fn backoff_s(&self, attempt: u32) -> f64 {
        let exponent = attempt.saturating_sub(1).min(Self::MAX_BACKOFF_EXPONENT);
        #[allow(clippy::cast_possible_wrap)] // exponent <= 30
        let delay = self.backoff_base_s * self.backoff_factor.powi(exponent as i32);
        delay.min(Self::MAX_BACKOFF_S)
    }
}

/// A complete fault plan: the pre-generated schedule plus the recovery
/// policy the event loop applies.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Events in strictly non-decreasing time order.
    pub events: Vec<FaultEvent>,
    /// How the serving loop recovers.
    pub policy: RecoveryPolicy,
}

impl FaultPlan {
    /// The empty plan: simulation behaviour is byte-identical to the
    /// fault-free simulator.
    #[must_use]
    pub fn none() -> Self {
        FaultPlan {
            events: Vec::new(),
            policy: RecoveryPolicy::default(),
        }
    }

    /// Generate the deterministic schedule for `rates` over a horizon of
    /// `duration_s` seconds. Each kind is an independent Poisson process
    /// (exponential interarrivals) on its own seed stream derived from
    /// `seed`, so adding one kind never perturbs another's arrival
    /// times; the merged stream is sorted by time with ties broken in
    /// [`FaultKind::ALL`] order.
    #[must_use]
    pub fn seeded(rates: &FaultRates, duration_s: f64, seed: u64) -> Self {
        let mut events: Vec<FaultEvent> = Vec::new();
        for kind in FaultKind::ALL {
            let rate_per_s = rates.rate_per_hr(kind) / 3600.0;
            if rate_per_s <= 0.0 || duration_s <= 0.0 {
                continue;
            }
            let mut rng = StdRng::seed_from_u64(seed ^ kind.seed_salt().wrapping_mul(0x9E37_79B9));
            let mut t = 0.0f64;
            loop {
                let u: f64 = rng.random::<f64>().max(1e-12);
                t += -u.ln() / rate_per_s;
                if t >= duration_s {
                    break;
                }
                let (lo, hi) = kind.outage_band_s();
                let outage_s = if hi <= lo {
                    lo
                } else {
                    // Log-uniform in the band: occasional long outages,
                    // mostly short ones, like real incident data.
                    (lo.ln() + rng.random::<f64>() * (hi.ln() - lo.ln())).exp()
                };
                events.push(FaultEvent {
                    at_s: t,
                    kind,
                    outage_s,
                });
            }
        }
        events.sort_by(|a, b| {
            a.at_s
                .partial_cmp(&b.at_s)
                // infallible: event times are finite exponential gaps
                .expect("finite event times")
                .then_with(|| {
                    // infallible: every generated kind is a member of ALL
                    let pos = |k| FaultKind::ALL.iter().position(|&x| x == k).expect("known");
                    pos(a.kind).cmp(&pos(b.kind))
                })
        });
        FaultPlan {
            events,
            policy: RecoveryPolicy::default(),
        }
    }

    /// Same plan with a different recovery policy.
    #[must_use]
    pub fn with_policy(mut self, policy: RecoveryPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Stable two-way merge: interleave `other`'s events into this plan
    /// by event time, preserving the *relative order* of each input
    /// stream exactly (ties go to `self`'s event). The cluster layer
    /// merges correlated-wave preemptions into a node's independent base
    /// schedule this way, so layering a wave never reorders the node's
    /// own Poisson streams. The merged plan keeps `self`'s policy.
    #[must_use]
    pub fn merge(self, other: FaultPlan) -> FaultPlan {
        let mut events = Vec::with_capacity(self.events.len() + other.events.len());
        let (mut a, mut b) = (
            self.events.into_iter().peekable(),
            other.events.into_iter().peekable(),
        );
        loop {
            match (a.peek(), b.peek()) {
                (Some(x), Some(y)) => {
                    if x.at_s <= y.at_s {
                        events.push(a.next().expect("peeked"));
                    } else {
                        events.push(b.next().expect("peeked"));
                    }
                }
                (Some(_), None) => events.push(a.next().expect("peeked")),
                (None, Some(_)) => events.push(b.next().expect("peeked")),
                (None, None) => break,
            }
        }
        FaultPlan {
            events,
            policy: self.policy,
        }
    }

    /// Whether the plan injects anything at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// Drive one failed-then-recovered attested session setup through the
/// real `cllm_tee::session` state machine: the first response carries a
/// rogue measurement and is rejected by the verifier, the re-handshake
/// presents the golden measurement and must yield a working channel.
///
/// The serving simulator calls this on every
/// [`FaultKind::AttestationFailure`] event, so recovery is exercised
/// against the actual handshake logic rather than assumed; the time
/// cost is [`RecoveryPolicy::reattest_s`].
///
/// # Errors
///
/// Returns the [`SessionError`] if the *re*-handshake fails — which
/// would be a bug in the session layer, not an injected fault.
pub fn attested_rehandshake(seed: u64) -> Result<(), SessionError> {
    attested_rehandshake_phased(seed, &mut |_| {})
}

/// [`attested_rehandshake`] with phase observation: every
/// [`HandshakePhase`] of both attempts
/// (fail, then recover) is reported to `observe` as it happens. The
/// traced serving simulators forward these into their span sink at the
/// current simulated time; the untraced path passes a no-op observer.
///
/// # Errors
///
/// Returns the [`SessionError`] if the *re*-handshake fails — which
/// would be a bug in the session layer, not an injected fault.
pub fn attested_rehandshake_phased(
    seed: u64,
    observe: &mut dyn FnMut(HandshakePhase),
) -> Result<(), SessionError> {
    let golden = Measurement([0x5E; 32]);
    let rogue = Measurement([0xBE; 32]);
    let vseed = seed.to_be_bytes();
    let eseed = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).to_be_bytes();

    // First attempt: the platform presents the wrong measurement — the
    // injected quote-verification failure.
    observe(HandshakePhase::Challenge);
    let (verifier, challenge) = Verifier::start(golden, b"hw-root", &vseed);
    observe(HandshakePhase::Respond);
    let (bad, _) = enclave_respond(b"hw-root", rogue, 7, &challenge, &eseed)?;
    match verifier.finish(&bad) {
        Err(SessionError::WrongEnclave) => observe(HandshakePhase::Reject),
        Ok(_) => unreachable!("rogue measurement must not verify"),
        Err(e) => return Err(e),
    }

    // Re-handshake with a fresh challenge must succeed and carry records.
    observe(HandshakePhase::Challenge);
    let (verifier, challenge) = Verifier::start(golden, b"hw-root", &eseed);
    observe(HandshakePhase::Respond);
    let (good, mut enclave_chan) = enclave_respond(b"hw-root", golden, 7, &challenge, &vseed)?;
    let mut verifier_chan = verifier.finish(&good)?;
    observe(HandshakePhase::Verify);
    let record = verifier_chan.send(b"re-release the model key");
    let opened = enclave_chan.recv(&record)?;
    debug_assert_eq!(opened, b"re-release the model key");
    observe(HandshakePhase::Channel);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tdx_rates() -> FaultRates {
        FaultRates::for_platform(TeeKind::Tdx, &SpotParams::gcp_spot()).scaled(600.0)
    }

    #[test]
    fn schedules_are_deterministic_in_seed() {
        let a = FaultPlan::seeded(&tdx_rates(), 120.0, 7);
        let b = FaultPlan::seeded(&tdx_rates(), 120.0, 7);
        assert_eq!(a, b);
        let c = FaultPlan::seeded(&tdx_rates(), 120.0, 8);
        assert_ne!(a, c, "different seeds must shuffle the schedule");
    }

    #[test]
    fn schedule_is_time_ordered_and_in_horizon() {
        let plan = FaultPlan::seeded(&tdx_rates(), 90.0, 3);
        assert!(!plan.is_empty(), "600x-scaled TDX rates must fire in 90s");
        for w in plan.events.windows(2) {
            assert!(w[0].at_s <= w[1].at_s);
        }
        for e in &plan.events {
            assert!(e.at_s >= 0.0 && e.at_s < 90.0);
            let (lo, hi) = e.kind.outage_band_s();
            assert!(e.outage_s >= lo && e.outage_s <= hi.max(lo), "{e:?}");
        }
    }

    #[test]
    fn zero_rates_generate_nothing() {
        assert!(FaultPlan::seeded(&FaultRates::none(), 1e6, 1).is_empty());
        assert!(FaultPlan::seeded(&tdx_rates(), 0.0, 1).is_empty());
        assert!(FaultPlan::none().is_empty());
    }

    #[test]
    fn rates_follow_platform_mechanisms() {
        let spot = SpotParams::gcp_spot();
        let bare = FaultRates::for_platform(TeeKind::BareMetal, &spot);
        assert_eq!(bare.attestation_failures_per_hr, 0.0);
        assert_eq!(bare.aex_storms_per_hr, 0.0);
        assert_eq!(bare.preemptions_per_hr, spot.preemptions_per_hr);

        let sgx = FaultRates::for_platform(TeeKind::Sgx, &spot);
        assert!(sgx.enclave_crashes_per_hr > 0.0);
        assert!(sgx.aex_storms_per_hr > 0.0);
        assert!(sgx.epc_paging_stalls_per_hr > 0.0);
        assert_eq!(sgx.td_exit_storms_per_hr, 0.0);

        let tdx = FaultRates::for_platform(TeeKind::Tdx, &spot);
        assert!(tdx.td_exit_storms_per_hr > 0.0);
        assert_eq!(tdx.aex_storms_per_hr, 0.0);

        let cgpu = FaultRates::for_platform(TeeKind::GpuCc, &spot);
        assert!(cgpu.bounce_stalls_per_hr > 0.0);
        assert!(cgpu.attestation_failures_per_hr > 0.0);
    }

    #[test]
    fn scaling_is_uniform() {
        let base = FaultRates::for_platform(TeeKind::Sgx, &SpotParams::gcp_spot());
        let scaled = base.scaled(10.0);
        for kind in FaultKind::ALL {
            assert!((scaled.rate_per_hr(kind) - 10.0 * base.rate_per_hr(kind)).abs() < 1e-12);
        }
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RecoveryPolicy::default();
        assert!((p.backoff_s(1) - p.backoff_base_s).abs() < 1e-12);
        assert!((p.backoff_s(3) - p.backoff_base_s * 4.0).abs() < 1e-12);
        assert!(p.backoff_s(100).is_finite(), "backoff exponent is capped");
    }

    #[test]
    fn backoff_is_finite_past_the_exponent_boundary() {
        // attempt = 63 is past the exponent cap: the doubling must stop
        // at MAX_BACKOFF_EXPONENT, never overflow, and clamp to the
        // delay ceiling. Same for the absolute u32 boundary.
        let p = RecoveryPolicy::default();
        for attempt in [63, 64, u32::MAX] {
            let d = p.backoff_s(attempt);
            assert!(d.is_finite(), "attempt {attempt} gave {d}");
            assert!(
                d <= RecoveryPolicy::MAX_BACKOFF_S,
                "attempt {attempt} gave {d}"
            );
            assert_eq!(
                d,
                p.backoff_s(RecoveryPolicy::MAX_BACKOFF_EXPONENT + 1),
                "capped attempts must all share the ceiling delay"
            );
        }
        // A pathological factor cannot smuggle an infinity past the cap.
        let hot = RecoveryPolicy {
            backoff_factor: 1e300,
            ..RecoveryPolicy::default()
        };
        assert!(hot.backoff_s(63).is_finite());
        assert!(hot.backoff_s(63) <= RecoveryPolicy::MAX_BACKOFF_S);
    }

    #[test]
    fn merge_interleaves_by_time_and_keeps_left_policy() {
        let a = FaultPlan::seeded(&tdx_rates(), 60.0, 1).with_policy(RecoveryPolicy {
            max_retries: 7,
            ..RecoveryPolicy::default()
        });
        let b = FaultPlan::seeded(&tdx_rates(), 60.0, 2);
        let merged = a.clone().merge(b.clone());
        assert_eq!(merged.events.len(), a.events.len() + b.events.len());
        assert_eq!(merged.policy.max_retries, 7);
        for w in merged.events.windows(2) {
            assert!(w[0].at_s <= w[1].at_s, "merge must stay time-ordered");
        }
        // Merging the empty plan is the identity on events.
        let same = a.clone().merge(FaultPlan::none());
        assert_eq!(same.events, a.events);
    }

    #[test]
    fn rehandshake_recovers_through_the_session_layer() {
        for seed in 0..8 {
            attested_rehandshake(seed).expect("re-handshake must succeed");
        }
    }

    #[test]
    fn crash_class_is_exactly_crash_and_preemption() {
        for kind in FaultKind::ALL {
            assert_eq!(
                kind.loses_state(),
                matches!(kind, FaultKind::EnclaveCrash | FaultKind::SpotPreemption),
                "{kind:?}"
            );
            assert!(!kind.label().is_empty());
        }
    }

    #[test]
    fn gray_class_is_exactly_the_two_gray_kinds() {
        for kind in FaultKind::ALL {
            assert_eq!(
                kind.is_gray(),
                matches!(kind, FaultKind::DegradedThroughput | FaultKind::StuckDrain),
                "{kind:?}"
            );
            // Gray failures never destroy state — that is the point.
            assert!(!(kind.is_gray() && kind.loses_state()), "{kind:?}");
        }
    }

    #[test]
    fn platform_presets_stay_gray_free() {
        // Gray failures are opt-in: no platform preset schedules them,
        // so every pre-existing seeded schedule (and golden snapshot)
        // is byte-identical to before the kinds existed.
        for kind in [
            TeeKind::BareMetal,
            TeeKind::Vm,
            TeeKind::Tdx,
            TeeKind::SevSnp,
            TeeKind::Sgx,
            TeeKind::GpuNative,
            TeeKind::GpuCc,
        ] {
            let r = FaultRates::for_platform(kind, &SpotParams::gcp_spot());
            assert_eq!(r.degraded_windows_per_hr, 0.0, "{kind:?}");
            assert_eq!(r.stuck_drains_per_hr, 0.0, "{kind:?}");
        }
    }

    #[test]
    fn adding_gray_rates_never_perturbs_the_original_streams() {
        // Per-kind independent seed streams: turning gray rates on must
        // only *add* gray events — every original event keeps its exact
        // time and outage.
        let base = FaultPlan::seeded(&tdx_rates(), 120.0, 7);
        let with_gray = FaultPlan::seeded(
            &FaultRates {
                degraded_windows_per_hr: 240.0,
                stuck_drains_per_hr: 120.0,
                ..tdx_rates()
            },
            120.0,
            7,
        );
        let originals: Vec<&FaultEvent> = with_gray
            .events
            .iter()
            .filter(|e| !e.kind.is_gray())
            .collect();
        assert_eq!(originals.len(), base.events.len());
        for (a, b) in originals.iter().zip(&base.events) {
            assert_eq!(**a, *b);
        }
        assert!(
            with_gray.events.iter().any(|e| e.kind.is_gray()),
            "gray rates this high must fire in 120s"
        );
    }
}
