//! Multi-node TEE serving cluster: failover router, admission control,
//! and correlated-fault survival.
//!
//! The single-node simulator ([`crate::sim`]) answers "what does one
//! faulted box look like"; this module answers the deployment question
//! the paper's cost story raises: **is a fleet of cheap spot cGPU nodes
//! with failover better than reserved CPU TEEs?** N heterogeneous
//! [`ServingNode`]s — each with its own seeded [`FaultPlan`] — sit
//! behind a router that:
//!
//! * **bounds admission** ([`AdmissionPolicy`]): per-node queue caps and
//!   per-request deadlines introduce a third terminal state, `Rejected`,
//!   and conservation becomes
//!   `completed + aborted + rejected == arrivals`;
//! * **trips per-node circuit breakers**
//!   ([`CircuitBreaker`]): every fault event is an error sample, every
//!   completion a success; a tripped node takes no new work until a
//!   half-open probe completes, and closing pays a real attested
//!   re-handshake through `cllm_tee::session`;
//! * **fails requests over**: crash-class victims re-queue onto
//!   surviving nodes (bounded retry + backoff); a victim landing on the
//!   other platform class (cGPU → CPU TEE or back) is a **spill** and
//!   pays the [`SpillPenalty`] — a one-time re-quantisation plus a
//!   prefill slowdown for the dtype/layout conversion;
//! * **injects correlated faults** ([`WaveModel`]): preemption waves
//!   hit a configurable fraction of the *spot* nodes simultaneously,
//!   layered onto each node's independent Poisson streams via the
//!   order-preserving [`FaultPlan::merge`].
//!
//! Everything is deterministic in its seeds: two runs of the same
//! [`ClusterConfig`] are byte-identical on any thread count.

use crate::faults::{attested_rehandshake_phased, FaultEvent, FaultKind, FaultPlan, FaultRates};
use crate::kernel::{EventQueue, KernelStats, RequestSlab};
use crate::router::{AdmissionPolicy, BreakerConfig, BreakerState, CircuitBreaker};
use crate::scheduler::{Admission, ContinuousBatcher};
use crate::sim::{RequestRecord, ServingConfig, ServingNode};
use crate::slo::sorted_percentile;
use crate::workload::Request;
use cllm_cost::SpillPenalty;
use cllm_obs::{Scope, SpanKind, Trace, TraceSink};
use cllm_workload::kv;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Trace scope for the fleet's `i`-th node.
fn node_scope(i: usize) -> Scope {
    Scope::Node(u32::try_from(i).unwrap_or(u32::MAX))
}

/// Stable event name for an observed breaker transition.
fn breaker_event_name(s: BreakerState) -> &'static str {
    match s {
        BreakerState::Closed => "breaker-close",
        BreakerState::Open => "breaker-open",
        BreakerState::HalfOpen => "breaker-halfopen",
    }
}

/// Emit a breaker-transition event iff the observed state changed since
/// the last observation (`seen` is the per-node last-known state).
fn note_breaker(sink: &mut TraceSink, seen: &mut BreakerState, i: usize, s: BreakerState, t: f64) {
    if *seen != s {
        *seen = s;
        sink.event(node_scope(i), breaker_event_name(s), t, String::new());
    }
}

/// One node in the fleet: its hardware/TEE identity, how it is rented,
/// and its private fault environment.
#[derive(Debug, Clone)]
pub struct NodeSpec {
    /// The hardware + TEE the node serves on.
    pub node: ServingNode,
    /// Whether the node is rented on spot capacity — only spot nodes are
    /// eligible victims of correlated preemption waves.
    pub spot: bool,
    /// Mean per-kind fault rates for this node's independent streams.
    pub rates: FaultRates,
    /// Seed for the node's private fault schedule.
    pub seed: u64,
    /// Hand-scheduled events (time-ordered) merged into the seeded
    /// stream — deterministic what-if injections and test fixtures.
    pub extra_events: Vec<FaultEvent>,
}

impl NodeSpec {
    /// A node with no hand-scheduled extra events.
    #[must_use]
    pub fn new(node: ServingNode, spot: bool, rates: FaultRates, seed: u64) -> Self {
        NodeSpec {
            node,
            spot,
            rates,
            seed,
            extra_events: Vec::new(),
        }
    }
}

/// Correlated preemption waves: the provider reclaims a slice of the
/// spot pool at once (capacity crunches hit zones, not single VMs).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WaveModel {
    /// Mean wave arrivals per hour (Poisson).
    pub waves_per_hr: f64,
    /// Fraction of the fleet's spot nodes each wave preempts, rounded
    /// up; clamped to `[0, 1]`.
    pub frac: f64,
    /// Seed for wave times and victim selection.
    pub seed: u64,
}

impl WaveModel {
    /// No correlated waves; only the nodes' independent streams fire.
    #[must_use]
    pub fn none() -> Self {
        WaveModel {
            waves_per_hr: 0.0,
            frac: 0.0,
            seed: 0,
        }
    }

    /// Generate each spot node's share of the wave schedule: element `i`
    /// holds the [`FaultKind::SpotPreemption`] events for the fleet's
    /// `i`-th spot node (in fleet order). Wave times are Poisson; each
    /// wave picks `ceil(frac * n_spot)` distinct victims by seeded
    /// partial shuffle and samples each victim's outage log-uniformly
    /// from the preemption band.
    #[must_use]
    pub fn events_per_spot_node(&self, n_spot: usize, duration_s: f64) -> Vec<Vec<FaultEvent>> {
        let mut per_node: Vec<Vec<FaultEvent>> = vec![Vec::new(); n_spot];
        let rate_per_s = self.waves_per_hr / 3600.0;
        if rate_per_s <= 0.0 || duration_s <= 0.0 || n_spot == 0 || self.frac <= 0.0 {
            return per_node;
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_sign_loss)]
        #[allow(clippy::cast_possible_truncation)]
        let victims_per_wave = ((self.frac.min(1.0) * n_spot as f64).ceil() as usize).min(n_spot);
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x57A6_E5EE_D000_0001);
        let (lo, hi) = FaultKind::SpotPreemption.outage_band_s();
        let mut t = 0.0f64;
        loop {
            let u: f64 = rng.random::<f64>().max(1e-12);
            t += -u.ln() / rate_per_s;
            if t >= duration_s {
                break;
            }
            // Seeded partial Fisher–Yates: the first `victims_per_wave`
            // entries are this wave's distinct victims.
            let mut ids: Vec<usize> = (0..n_spot).collect();
            for i in 0..victims_per_wave {
                let j = i + rng.random_range(0..n_spot - i);
                ids.swap(i, j);
            }
            for &v in &ids[..victims_per_wave] {
                let outage_s = (lo.ln() + rng.random::<f64>() * (hi.ln() - lo.ln())).exp();
                per_node[v].push(FaultEvent {
                    at_s: t,
                    kind: FaultKind::SpotPreemption,
                    outage_s,
                });
            }
        }
        per_node
    }
}

/// A complete cluster simulation configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Shared workload, model, scheduler limits and horizon; each node
    /// gets its own [`ContinuousBatcher`] with these limits.
    pub serving: ServingConfig,
    /// The fleet.
    pub nodes: Vec<NodeSpec>,
    /// Router admission bounds.
    pub admission: AdmissionPolicy,
    /// Circuit-breaker tuning (one breaker per node).
    pub breaker: BreakerConfig,
    /// Correlated preemption waves over the spot subset.
    pub wave: WaveModel,
    /// Whether crash-class victims may re-queue onto *other* nodes. With
    /// failover off they retry only on their origin node, like N
    /// independent single-node deployments behind one arrival stream.
    pub failover: bool,
    /// Cost of failing a request over across platform classes
    /// (cGPU ↔ CPU TEE).
    pub spill: SpillPenalty,
}

/// Per-node slice of a [`ClusterReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NodeReport {
    /// Requests this node completed.
    pub completed: usize,
    /// Seconds the node was unavailable (outages + re-attestation).
    pub downtime_s: f64,
    /// `1 - downtime / cluster makespan`, clamped to `[0, 1]`.
    pub availability: f64,
    /// Times the node's breaker tripped open.
    pub breaker_trips: u64,
    /// Times a half-open probe closed the breaker (each paid a
    /// re-attestation toll).
    pub breaker_closes: u64,
    /// Breaker position when the simulation drained.
    pub breaker_final: BreakerState,
    /// Deepest this node's admission queue got.
    pub queue_depth_peak: usize,
}

/// The outcome of one cluster simulation. Conservation holds by
/// construction: `completed + aborted + rejected == arrivals`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterReport {
    /// Requests that arrived at the router.
    pub arrivals: usize,
    /// Requests that completed on some node.
    pub completed: usize,
    /// Requests abandoned after exhausting the retry budget.
    pub aborted: usize,
    /// Requests the router shed: no accepting node at arrival, or a
    /// queued request passed its deadline.
    pub rejected: usize,
    /// Re-queue events across the fleet.
    pub retries: u64,
    /// Failovers that crossed platform classes and paid the
    /// [`SpillPenalty`].
    pub spills: u64,
    /// Sequences evicted on KV page-pool pressure across the fleet
    /// (zero under the conservative reservation policy).
    pub preemptions: u64,
    /// KV bytes paged out of protected memory by swap-policy evictions.
    pub swap_out_bytes: f64,
    /// KV bytes paged back into protected memory on readmission.
    pub swap_in_bytes: f64,
    /// Mean per-node availability over the cluster makespan.
    pub availability: f64,
    /// Wall time to drain the trace, seconds (max over node clocks).
    pub makespan_s: f64,
    /// Generated tokens per second over the makespan.
    pub goodput_tps: f64,
    /// Median time to first token, seconds (from original arrival, so
    /// failed-over requests carry their full story).
    pub ttft_p50_s: f64,
    /// 99th-percentile time to first token, seconds — the tail the
    /// admission controller and breakers exist to protect.
    pub ttft_p99_s: f64,
    /// Per-node reports, in fleet order.
    pub nodes: Vec<NodeReport>,
    /// Per-request records (sorted by id).
    pub records: Vec<RequestRecord>,
}

/// A crash victim waiting out its backoff before re-routing. Its
/// eligibility instant lives in the kernel event queue (the entry's
/// `time`), not in the payload.
#[derive(Debug, Clone, Copy)]
pub(crate) struct ClusterRetry {
    pub(crate) request: Request,
    pub(crate) origin: usize,
    pub(crate) origin_gpu: bool,
}

/// Live state of one node during the simulation.
pub(crate) struct NodeState {
    pub(crate) node: ServingNode,
    pub(crate) scheduler: ContinuousBatcher,
    pub(crate) breaker: CircuitBreaker,
    pub(crate) plan: FaultPlan,
    pub(crate) next_event: usize,
    pub(crate) now: f64,
    pub(crate) downtime_s: f64,
    pub(crate) handshake_seq: u64,
    pub(crate) useful_tokens: u64,
    pub(crate) completed: usize,
    /// This node's protected KV residency budget (weights already
    /// subtracted); resident pages past it price the per-step stall.
    pub(crate) kv_budget_bytes: f64,
    /// Sequences this node evicted on page-pool pressure.
    pub(crate) preemptions: u64,
    /// KV bytes this node paged out (swap policy).
    pub(crate) swap_out_bytes: f64,
    /// KV bytes this node paged back in on readmission.
    pub(crate) swap_in_bytes: f64,
    /// End of the latest gray [`FaultKind::DegradedThroughput`] window
    /// (horizon-clamped): decode steps starting before it are derated.
    pub(crate) derate_until_s: f64,
    /// End of the latest gray [`FaultKind::StuckDrain`] window
    /// (horizon-clamped). Only the autoscaler has drains to wedge; the
    /// fixed cluster records the window and carries on.
    pub(crate) stuck_until_s: f64,
}

impl NodeState {
    pub(crate) fn depth(&self) -> usize {
        self.scheduler.queued() + self.scheduler.running().len()
    }

    pub(crate) fn is_gpu(&self) -> bool {
        matches!(self.node, ServingNode::Gpu { .. })
    }
}

/// Handshake seed unique per (node, sequence) so every re-attestation
/// drives a distinct, deterministic session transcript.
pub(crate) fn hs_seed(node_idx: usize, seq: u64) -> u64 {
    ((node_idx as u64) << 32) ^ seq
}

/// Build the fleet's live node states: every node's seeded base stream is
/// merged with its hand-scheduled extras, and spot nodes additionally
/// take their slice of the correlated wave schedule (in fleet order).
pub(crate) fn build_nodes(cfg: &ClusterConfig, horizon_s: f64) -> Vec<NodeState> {
    let n_spot = cfg.nodes.iter().filter(|s| s.spot).count();
    let wave_events = cfg.wave.events_per_spot_node(n_spot, horizon_s);
    let mut spot_ord = 0usize;
    cfg.nodes
        .iter()
        .map(|spec| {
            let base = FaultPlan::seeded(&spec.rates, horizon_s, spec.seed);
            let policy = base.policy;
            let mut plan = base.merge(FaultPlan {
                events: spec.extra_events.clone(),
                policy,
            });
            if spec.spot {
                plan = plan.merge(FaultPlan {
                    events: wave_events[spot_ord].clone(),
                    policy,
                });
                spot_ord += 1;
            }
            NodeState {
                kv_budget_bytes: spec.node.kv_residency_budget_bytes(&cfg.serving),
                node: spec.node.clone(),
                scheduler: ContinuousBatcher::configured(cfg.serving.limits, cfg.serving.kv),
                breaker: CircuitBreaker::new(cfg.breaker),
                plan,
                next_event: 0,
                now: 0.0,
                downtime_s: 0.0,
                handshake_seq: 0,
                useful_tokens: 0,
                completed: 0,
                preemptions: 0,
                swap_out_bytes: 0.0,
                swap_in_bytes: 0.0,
                derate_until_s: 0.0,
                stuck_until_s: 0.0,
            }
        })
        .collect()
}

/// Run the deterministic multi-node serving simulation.
///
/// Time advances node-locally: each node has its own clock, and the loop
/// repeatedly either (a) dispatches the globally next arrival/retry to a
/// node chosen by the router, or (b) advances the runnable node with the
/// smallest clock by one batching iteration (ties broken by node id) —
/// whichever is earlier. Fault events apply lazily at iteration
/// boundaries with outages clamped at the horizon, exactly like the
/// single-node simulator, so a one-node cluster with unbounded admission
/// reproduces single-node behaviour.
///
/// Fresh arrivals that no node accepts (breaker open or queue at cap)
/// are `rejected`; queued requests past the admission deadline are shed
/// as `rejected` at the next boundary. Retries are always placeable —
/// with failover they fall back to the least-loaded node even past
/// breakers and caps (shedding, not starving, bounds the system), and
/// without failover they return to their origin node.
///
/// # Panics
///
/// Panics if the fleet is empty.
#[must_use]
pub fn simulate_cluster(cfg: &ClusterConfig) -> ClusterReport {
    simulate_cluster_stats(cfg).0
}

/// [`simulate_cluster`] plus the kernel's event counters — arrivals
/// routed, retries delivered, faults applied, admissions, decode steps,
/// completions and rejections — for throughput benchmarking
/// (`serve_scale` divides `KernelStats::events` by wall time).
///
/// # Panics
///
/// Panics if the fleet is empty.
#[must_use]
pub fn simulate_cluster_stats(cfg: &ClusterConfig) -> (ClusterReport, KernelStats) {
    run_cluster(cfg, &mut TraceSink::disabled())
}

/// Traced twin of [`simulate_cluster`]: byte-identical report (emission
/// only reads node clocks), plus the recorded single-lane [`Trace`] —
/// per-node busy/idle/outage spans tiling each node's timeline out to
/// the cluster makespan, per-request chains across failovers, and
/// events for routing decisions, breaker transitions, failover
/// re-queues, spills, and handshake phases.
///
/// # Panics
///
/// Panics if the fleet is empty.
#[must_use]
pub fn simulate_cluster_traced(cfg: &ClusterConfig) -> (ClusterReport, Trace) {
    let mut sink = TraceSink::new();
    let (report, _) = run_cluster(cfg, &mut sink);
    (report, sink.finish())
}

#[allow(clippy::too_many_lines)]
fn run_cluster(cfg: &ClusterConfig, sink: &mut TraceSink) -> (ClusterReport, KernelStats) {
    assert!(!cfg.nodes.is_empty(), "cluster needs at least one node");
    let horizon_s = cfg.serving.duration_s;
    let mut stats = KernelStats::default();
    let mut nodes = build_nodes(cfg, horizon_s);

    if cfg.serving.arrivals.rate_per_s <= 0.0 || horizon_s <= 0.0 {
        return (drain_report(nodes, 0, 0, 0, 0, 0, Vec::new()), stats);
    }
    let trace = cfg.serving.arrivals.trace(horizon_s);
    if trace.is_empty() {
        return (drain_report(nodes, 0, 0, 0, 0, 0, Vec::new()), stats);
    }

    let mut pending: VecDeque<Request> = trace.iter().copied().collect();
    let total_arrivals = pending.len();
    // Dynamic events (crash victims waiting out backoff) go through the
    // kernel's heap, keyed by request id so same-eligibility pops match
    // the (eligibility, id) order the old full-scan selection defined.
    let mut retry_queue: EventQueue<ClusterRetry> = EventQueue::new();
    // Per-request state — retry attempts, trace cursor, pending-spill
    // flag — lives in a dense slab indexed by id, not hash maps.
    let mut slab = RequestSlab::new(total_arrivals);
    // Pressure pricing inputs shared by every node; the per-node budget
    // lives in NodeState. Unread under the conservative policy.
    let per_token_bytes = kv::kv_bytes_per_sequence(&cfg.serving.model, 1, cfg.serving.dtype);
    #[allow(clippy::cast_precision_loss)]
    let block_bytes = per_token_bytes * cfg.serving.kv.block_tokens as f64;
    let mut records: Vec<RequestRecord> = Vec::with_capacity(total_arrivals);
    let mut rejected = 0usize;
    let mut aborted = 0usize;
    let mut retries = 0u64;
    let mut spills = 0u64;
    // Each breaker's last observed state (trace bookkeeping only).
    let mut breaker_seen: Vec<BreakerState> = vec![BreakerState::Closed; nodes.len()];

    loop {
        // The globally next dispatchable item: arrivals win ties over
        // retries; retries order by (eligibility, id).
        let t_arrival = pending.front().map(|r| r.arrival_s);
        let next_retry = retry_queue.peek_time();
        let t_dispatch = match (t_arrival, next_retry) {
            (Some(a), Some(r)) => Some(a.min(r)),
            (Some(a), None) => Some(a),
            (None, Some(r)) => Some(r),
            (None, None) => None,
        };

        // The runnable node with the smallest clock (id breaks ties).
        let runnable = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.scheduler.idle())
            .min_by(|(i, a), (j, b)| {
                a.now
                    .partial_cmp(&b.now)
                    // infallible: sim clocks are sums of finite step times; the non-finite invariant would trip first
                    .expect("finite clocks")
                    .then(i.cmp(j))
            })
            .map(|(i, n)| (i, n.now));

        let do_dispatch = match (t_dispatch, runnable) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(t), Some((_, node_now))) => t <= node_now,
        };

        if do_dispatch {
            let arrival_first = match (t_arrival, next_retry) {
                (Some(a), Some(r)) => a <= r,
                (Some(_), None) => true,
                _ => false,
            };
            if arrival_first {
                let r = pending.pop_front().expect("arrival checked");
                stats.arrivals += 1;
                let t = r.arrival_s;
                let mut candidates = Vec::with_capacity(nodes.len());
                for (i, n) in nodes.iter_mut().enumerate() {
                    if n.scheduler.queued() < cfg.admission.queue_cap && n.breaker.accepts(t) {
                        candidates.push((i, n.depth()));
                    }
                    note_breaker(sink, &mut breaker_seen[i], i, n.breaker.state(), t);
                }
                match crate::router::route_least_loaded(&candidates) {
                    Some(i) => {
                        if sink.is_enabled() {
                            slab.set_cursor(r.id, t);
                            sink.event(node_scope(i), "route", t, format!("req {}", r.id));
                        }
                        place(&mut nodes[i], i, r, t, sink);
                    }
                    None => {
                        rejected += 1; // load shed at the front door
                        stats.rejections += 1;
                        sink.event(Scope::Request(r.id), "reject", t, String::new());
                    }
                }
            } else {
                let (t, e) = retry_queue.pop().expect("retry checked");
                stats.retries_delivered += 1;
                let target = if cfg.failover {
                    let mut candidates = Vec::with_capacity(nodes.len());
                    for (i, n) in nodes.iter_mut().enumerate() {
                        if n.scheduler.queued() < cfg.admission.queue_cap && n.breaker.accepts(t) {
                            candidates.push((i, n.depth()));
                        }
                        note_breaker(sink, &mut breaker_seen[i], i, n.breaker.state(), t);
                    }
                    // Retries are always placeable: if every breaker is
                    // open / every queue full, fall back to the least
                    // loaded node anyway — the deadline shed, not the
                    // router, is what bounds a hopeless request.
                    crate::router::route_least_loaded(&candidates).unwrap_or_else(|| {
                        let all: Vec<(usize, usize)> =
                            nodes.iter().map(|n| n.depth()).enumerate().collect();
                        // infallible: the fleet is non-empty by construction, so least-loaded always resolves
                        crate::router::route_least_loaded(&all).expect("fleet is non-empty")
                    })
                } else {
                    e.origin
                };
                if nodes[target].is_gpu() != e.origin_gpu {
                    spills += 1;
                    slab.mark_spilled(e.request.id);
                    if sink.is_enabled() {
                        let dir = if e.origin_gpu {
                            "cgpu->cpu"
                        } else {
                            "cpu->cgpu"
                        };
                        sink.event(
                            node_scope(target),
                            "spill",
                            t,
                            format!("req {} {dir}", e.request.id),
                        );
                    }
                }
                if sink.is_enabled() {
                    if let Some(c) = slab.cursor(e.request.id) {
                        sink.span(Scope::Request(e.request.id), SpanKind::Backoff, c, t);
                        slab.set_cursor(e.request.id, t);
                    }
                    sink.event(
                        node_scope(target),
                        "failover",
                        t,
                        format!("req {} from node {}", e.request.id, e.origin),
                    );
                }
                place(&mut nodes[target], target, e.request, t, sink);
            }
            continue;
        }

        // Advance the chosen node by one batching iteration.
        // infallible: the advance branch is only taken when `runnable` is Some
        let (i, _) = runnable.expect("advance branch requires a runnable node");
        let n = &mut nodes[i];

        // Faults due by the node clock, oldest first.
        while n
            .plan
            .events
            .get(n.next_event)
            .is_some_and(|e| e.at_s <= n.now)
        {
            let ev = n.plan.events[n.next_event];
            n.next_event += 1;
            stats.faults_applied += 1;
            apply_node_fault(
                &ev,
                n,
                i,
                horizon_s,
                &mut slab,
                &mut retry_queue,
                &mut retries,
                &mut aborted,
                sink,
                &mut breaker_seen[i],
            );
        }

        // Admission control: shed queued requests past their deadline.
        if cfg.admission.deadline_s.is_finite() {
            let now = n.now;
            let deadline_s = cfg.admission.deadline_s;
            let shed = n.scheduler.shed(|r| now - r.arrival_s > deadline_s);
            rejected += shed.len();
            stats.rejections += shed.len() as u64;
            if sink.is_enabled() {
                for r in &shed {
                    if let Some(c) = slab.take_cursor(r.id) {
                        sink.span(Scope::Request(r.id), SpanKind::QueueWait, c, now);
                    }
                    sink.event(Scope::Request(r.id), "shed", now, String::new());
                }
            }
        }

        // Admit + prefill. A retried victim re-attests first; a spilled
        // victim additionally pays re-quantisation and a slower prefill
        // on the foreign platform class; a swapped-out sequence resumes
        // with its progress after a swap-in stall instead of a prefill.
        let admitted = n
            .scheduler
            .admit_any(&cfg.serving.model, cfg.serving.dtype, n.now);
        for adm in admitted {
            match adm {
                Admission::Fresh(r) => {
                    stats.admissions += 1;
                    if sink.is_enabled() {
                        if let Some(c) = slab.cursor(r.id) {
                            sink.span(Scope::Request(r.id), SpanKind::QueueWait, c, n.now);
                        }
                    }
                    if slab.attempts(r.id) > 0 {
                        let t0 = n.now;
                        n.now += n.plan.policy.reattest_s;
                        sink.span(node_scope(i), SpanKind::Reattest, t0, n.now);
                        sink.span(Scope::Request(r.id), SpanKind::Reattest, t0, n.now);
                    }
                    let mut t_prefill = n.node.prefill_time_s(&cfg.serving, r.prompt_tokens);
                    if slab.take_spilled(r.id) {
                        let t0 = n.now;
                        n.now += cfg.spill.requant_s;
                        sink.span(node_scope(i), SpanKind::Requant, t0, n.now);
                        sink.span(Scope::Request(r.id), SpanKind::Requant, t0, n.now);
                        t_prefill *= cfg.spill.prefill_factor;
                    }
                    let t0 = n.now;
                    n.now += t_prefill;
                    sink.span(node_scope(i), SpanKind::Prefill, t0, n.now);
                    sink.span(Scope::Request(r.id), SpanKind::Prefill, t0, n.now);
                    if sink.is_enabled() {
                        slab.set_cursor(r.id, n.now);
                    }
                    n.scheduler.start(r, n.now);
                }
                Admission::Resumed {
                    request,
                    swap_in_tokens,
                } => {
                    stats.swap_ins += 1;
                    #[allow(clippy::cast_precision_loss)]
                    let bytes = swap_in_tokens as f64 * per_token_bytes;
                    n.swap_in_bytes += bytes;
                    let t0 = n.now;
                    if sink.is_enabled() {
                        if let Some(c) = slab.cursor(request.id) {
                            sink.span(Scope::Request(request.id), SpanKind::Preempted, c, t0);
                        }
                    }
                    n.now += n.node.kv_swap_time_s(bytes);
                    sink.span(node_scope(i), SpanKind::SwapIn, t0, n.now);
                    sink.span(Scope::Request(request.id), SpanKind::SwapIn, t0, n.now);
                    if sink.is_enabled() {
                        slab.set_cursor(request.id, n.now);
                    }
                }
            }
        }

        if n.scheduler.running().is_empty() {
            continue;
        }

        // Make the coming step fit this node's page pool: evictions come
        // off the batch tail (recompute re-queues locally; swap victims
        // page out through the node's priced path).
        let prep = n.scheduler.prepare_step(n.now);
        for victim in &prep.preempted_recompute {
            stats.preemptions += 1;
            n.preemptions += 1;
            if sink.is_enabled() {
                if let Some(c) = slab.cursor(victim.id) {
                    sink.span(Scope::Request(victim.id), SpanKind::DecodeLost, c, n.now);
                    slab.set_cursor(victim.id, n.now);
                }
            }
        }
        for victim in &prep.preempted_swap {
            stats.preemptions += 1;
            stats.swap_outs += 1;
            n.preemptions += 1;
            #[allow(clippy::cast_precision_loss)]
            let bytes = victim.context() as f64 * per_token_bytes;
            n.swap_out_bytes += bytes;
            let t0 = n.now;
            if sink.is_enabled() {
                if let Some(c) = slab.cursor(victim.request.id) {
                    sink.span(Scope::Request(victim.request.id), SpanKind::Decode, c, t0);
                }
            }
            n.now += n.node.kv_swap_time_s(bytes);
            sink.span(node_scope(i), SpanKind::SwapOut, t0, n.now);
            sink.span(
                Scope::Request(victim.request.id),
                SpanKind::SwapOut,
                t0,
                n.now,
            );
            if sink.is_enabled() {
                slab.set_cursor(victim.request.id, n.now);
            }
        }

        let batch = n.scheduler.running().len() as u64;
        #[allow(clippy::cast_precision_loss)]
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let mean_context = (n
            .scheduler
            .running()
            .iter()
            .map(|a| a.context())
            .sum::<u64>() as f64
            / batch as f64)
            .round() as u64;
        let t0 = n.now;
        let mut t_step = n.node.decode_step_time_s(&cfg.serving, batch, mean_context);
        if prep.resident_pages > 0 {
            #[allow(clippy::cast_precision_loss)]
            let excess = prep.resident_pages as f64 * block_bytes - n.kv_budget_bytes;
            if excess > 0.0 {
                t_step += n.node.kv_pressure_stall_s(excess);
            }
        }
        // Steps beginning inside a gray DegradedThroughput window run
        // derated: the node is up and routable (no breaker error, no
        // downtime), just slow.
        if n.now < n.derate_until_s {
            t_step *= crate::faults::DEGRADED_THROUGHPUT_FACTOR;
        }
        n.now += t_step;
        stats.decode_steps += 1;
        sink.span(node_scope(i), SpanKind::Decode, t0, n.now);

        for fin in n.scheduler.step() {
            let ttft = fin.first_token_s - fin.request.arrival_s;
            let decode_span = n.now - fin.first_token_s;
            #[allow(clippy::cast_precision_loss)]
            let tpot = decode_span / (fin.request.output_tokens.saturating_sub(1).max(1)) as f64;
            n.useful_tokens += fin.request.output_tokens;
            n.completed += 1;
            stats.completions += 1;
            if sink.is_enabled() {
                if let Some(c) = slab.take_cursor(fin.request.id) {
                    sink.span(Scope::Request(fin.request.id), SpanKind::Decode, c, n.now);
                }
            }
            records.push(RequestRecord {
                id: fin.request.id,
                ttft_s: ttft,
                tpot_s: tpot,
                e2e_s: n.now - fin.request.arrival_s,
                retries: slab.attempts(fin.request.id),
            });
            if n.breaker.record_success() {
                // The half-open probe completed: close the breaker and
                // pay the attested re-handshake through the real
                // session layer before taking full traffic again.
                n.handshake_seq += 1;
                let t0 = n.now;
                attested_rehandshake_phased(hs_seed(i, n.handshake_seq), &mut |phase| {
                    sink.event_fmt(node_scope(i), "handshake", t0, || phase.label().to_string());
                })
                // infallible: simulated attestation over an in-process channel cannot fail; crashes charge recovery time, not handshake errors
                .expect("re-handshake must recover the session");
                n.now += n.plan.policy.reattest_s;
                n.downtime_s += n.plan.policy.reattest_s;
                sink.span_labeled(
                    node_scope(i),
                    SpanKind::Outage,
                    t0,
                    n.now,
                    Some("breaker-close"),
                );
                note_breaker(sink, &mut breaker_seen[i], i, n.breaker.state(), n.now);
            }
        }
    }

    // Pad every node's timeline with trailing idle out to the cluster
    // makespan, so per-node accounting sums to the same makespan the
    // report publishes (a drained node really is idle at the end).
    if sink.is_enabled() {
        let makespan_s = nodes.iter().map(|n| n.now).fold(0.0f64, f64::max);
        for (i, n) in nodes.iter().enumerate() {
            sink.span(node_scope(i), SpanKind::Idle, n.now, makespan_s);
        }
    }

    (
        drain_report(
            nodes,
            total_arrivals,
            rejected,
            aborted,
            retries,
            spills,
            records,
        ),
        stats,
    )
}

/// Route one request onto a node, waking an idle node's clock forward to
/// the dispatch time (clocks never run backward).
pub(crate) fn place(n: &mut NodeState, idx: usize, request: Request, t: f64, sink: &mut TraceSink) {
    if n.scheduler.idle() && t > n.now {
        sink.span(node_scope(idx), SpanKind::Idle, n.now, t);
        n.now = t;
    }
    n.scheduler.enqueue_at(request, t);
}

/// Apply one fault event at a node's iteration boundary. Mirrors the
/// single-node semantics (horizon-clamped outages, bounded retry with
/// backoff, real re-handshake on attestation failure) and additionally
/// feeds every event into the node's breaker as an error sample. The
/// attestation re-handshake toll takes the identical horizon clamp every
/// other outage gets — a failure in the last fraction of a second cannot
/// charge downtime past the horizon.
#[allow(clippy::too_many_arguments)]
fn apply_node_fault(
    ev: &FaultEvent,
    n: &mut NodeState,
    node_idx: usize,
    horizon_s: f64,
    slab: &mut RequestSlab,
    retry_queue: &mut EventQueue<ClusterRetry>,
    retries: &mut u64,
    aborted: &mut usize,
    sink: &mut TraceSink,
    breaker_seen: &mut BreakerState,
) {
    if ev.kind.is_gray() {
        // Gray failures are invisible to the breaker (no hard error
        // fires — that is what makes them gray), charge no downtime,
        // and emit no outage span. They only extend the matching
        // horizon-clamped window on the node.
        let window_s = ev.outage_s.min((horizon_s - ev.at_s).max(0.0));
        match ev.kind {
            FaultKind::DegradedThroughput => {
                n.derate_until_s = n.derate_until_s.max(ev.at_s + window_s);
            }
            FaultKind::StuckDrain => {
                // The fixed cluster never drains; the autoscaler reads
                // this window when it retires draining rentals.
                n.stuck_until_s = n.stuck_until_s.max(ev.at_s + window_s);
            }
            _ => unreachable!("is_gray covers exactly the two gray kinds"),
        }
        sink.event_fmt(node_scope(node_idx), "gray", n.now, || {
            ev.kind.label().to_string()
        });
        return;
    }
    n.breaker.record_error(n.now);
    note_breaker(sink, breaker_seen, node_idx, n.breaker.state(), n.now);
    if ev.kind == FaultKind::AttestationFailure {
        n.handshake_seq += 1;
        let t0 = n.now;
        attested_rehandshake_phased(hs_seed(node_idx, n.handshake_seq), &mut |phase| {
            sink.event_fmt(node_scope(node_idx), "handshake", t0, || {
                phase.label().to_string()
            });
        })
        // infallible: simulated attestation over an in-process channel cannot fail
        .expect("re-handshake must recover the session");
        let outage_s = n.plan.policy.reattest_s.min((horizon_s - ev.at_s).max(0.0));
        n.now += outage_s;
        n.downtime_s += outage_s;
        sink.span_labeled(
            node_scope(node_idx),
            SpanKind::Outage,
            t0,
            n.now,
            Some(ev.kind.label()),
        );
        return;
    }
    let outage_s = ev.outage_s.min((horizon_s - ev.at_s).max(0.0));
    if ev.kind.loses_state() {
        let origin_gpu = n.is_gpu();
        for victim in n.scheduler.drain_running() {
            let id = victim.request.id;
            let a = slab.bump_attempts(id);
            if a > n.plan.policy.max_retries {
                *aborted += 1;
                if sink.is_enabled() {
                    if let Some(c) = slab.take_cursor(id) {
                        sink.span(Scope::Request(id), SpanKind::DecodeLost, c, n.now);
                    }
                    sink.event(Scope::Request(id), "abort", n.now, String::new());
                }
            } else {
                *retries += 1;
                if sink.is_enabled() {
                    if let Some(c) = slab.cursor(id) {
                        sink.span(Scope::Request(id), SpanKind::DecodeLost, c, n.now);
                        slab.set_cursor(id, n.now);
                    }
                    sink.event(Scope::Request(id), "requeue", n.now, format!("attempt {a}"));
                }
                retry_queue.push_keyed(
                    ev.at_s + outage_s + n.plan.policy.backoff_s(a),
                    id,
                    ClusterRetry {
                        request: victim.request,
                        origin: node_idx,
                        origin_gpu,
                    },
                );
            }
        }
    }
    let t0 = n.now;
    n.now += outage_s;
    n.downtime_s += outage_s;
    sink.span_labeled(
        node_scope(node_idx),
        SpanKind::Outage,
        t0,
        n.now,
        Some(ev.kind.label()),
    );
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn drain_report(
    nodes: Vec<NodeState>,
    arrivals: usize,
    rejected: usize,
    aborted: usize,
    retries: u64,
    spills: u64,
    mut records: Vec<RequestRecord>,
) -> ClusterReport {
    records.sort_by_key(|r| r.id);
    let makespan_s = nodes.iter().map(|n| n.now).fold(0.0f64, f64::max);
    let useful_tokens: u64 = nodes.iter().map(|n| n.useful_tokens).sum();
    let preemptions: u64 = nodes.iter().map(|n| n.preemptions).sum();
    let swap_out_bytes: f64 = nodes.iter().map(|n| n.swap_out_bytes).sum();
    let swap_in_bytes: f64 = nodes.iter().map(|n| n.swap_in_bytes).sum();
    let node_reports: Vec<NodeReport> = nodes
        .iter()
        .map(|n| {
            let availability = if makespan_s > 0.0 {
                (1.0 - n.downtime_s / makespan_s).clamp(0.0, 1.0)
            } else {
                1.0
            };
            NodeReport {
                completed: n.completed,
                downtime_s: n.downtime_s,
                availability,
                breaker_trips: n.breaker.trips,
                breaker_closes: n.breaker.closes,
                breaker_final: n.breaker.state(),
                queue_depth_peak: n.scheduler.queue_stats().depth_peak,
            }
        })
        .collect();
    #[allow(clippy::cast_precision_loss)]
    let availability = if node_reports.is_empty() {
        1.0
    } else {
        node_reports.iter().map(|n| n.availability).sum::<f64>() / node_reports.len() as f64
    };
    // Sort the TTFT samples once; both percentiles read the same slice.
    let mut ttft: Vec<f64> = records.iter().map(|r| r.ttft_s).collect();
    // infallible: latencies are differences of finite sim clocks
    ttft.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let completed = records.len();
    #[allow(clippy::cast_precision_loss)]
    let report = ClusterReport {
        arrivals,
        completed,
        aborted,
        rejected,
        retries,
        spills,
        preemptions,
        swap_out_bytes,
        swap_in_bytes,
        availability,
        makespan_s,
        goodput_tps: if completed == 0 {
            0.0
        } else {
            useful_tokens as f64 / makespan_s.max(1e-9)
        },
        ttft_p50_s: if ttft.is_empty() {
            0.0
        } else {
            sorted_percentile(&ttft, 0.50)
        },
        ttft_p99_s: if ttft.is_empty() {
            0.0
        } else {
            sorted_percentile(&ttft, 0.99)
        },
        nodes: node_reports,
        records,
    };
    #[cfg(debug_assertions)]
    {
        let v = crate::invariants::check_cluster(&report);
        debug_assert!(
            v.is_empty(),
            "cluster invariants violated: {}",
            crate::invariants::describe(&v)
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_cost::SpotParams;
    use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig, TeeKind};
    use std::collections::HashMap;

    fn tdx_node(seed: u64, spot: bool) -> NodeSpec {
        let spot_params = if spot {
            SpotParams::gcp_spot()
        } else {
            SpotParams::reserved()
        };
        NodeSpec::new(
            ServingNode::Cpu {
                tee: CpuTeeConfig::tdx(),
            },
            spot,
            FaultRates::for_platform(TeeKind::Tdx, &spot_params).scaled(600.0),
            seed,
        )
    }

    fn cgpu_node(seed: u64) -> NodeSpec {
        NodeSpec::new(
            ServingNode::Gpu {
                gpu: cllm_hw::presets::h100_nvl(),
                tee: GpuTeeConfig::confidential(),
            },
            true,
            FaultRates::for_platform(TeeKind::GpuCc, &SpotParams::azure_spot_gpu()).scaled(600.0),
            seed,
        )
    }

    fn small_cluster(nodes: Vec<NodeSpec>, wave: WaveModel, failover: bool) -> ClusterConfig {
        ClusterConfig {
            serving: ServingConfig::small_test(),
            nodes,
            admission: AdmissionPolicy::default(),
            breaker: BreakerConfig::default(),
            wave,
            failover,
            spill: SpillPenalty::cross_platform(),
        }
    }

    fn quiet_node(seed: u64) -> NodeSpec {
        NodeSpec {
            rates: FaultRates::none(),
            ..tdx_node(seed, false)
        }
    }

    #[test]
    fn fault_free_cluster_completes_everything() {
        let cfg = small_cluster(vec![quiet_node(1), quiet_node(2)], WaveModel::none(), true);
        let report = simulate_cluster(&cfg);
        assert!(report.arrivals > 0);
        assert_eq!(report.completed, report.arrivals);
        assert_eq!(report.rejected + report.aborted, 0);
        assert_eq!(report.retries + report.spills, 0);
        assert!((report.availability - 1.0).abs() < 1e-12);
        assert!(report.goodput_tps > 0.0);
        // Both nodes took work: least-loaded routing spreads the trace.
        assert!(report.nodes.iter().all(|n| n.completed > 0));
    }

    #[test]
    fn cluster_conserves_requests_under_faults_and_waves() {
        let wave = WaveModel {
            waves_per_hr: 120.0,
            frac: 0.75,
            seed: 5,
        };
        for failover in [false, true] {
            let cfg = small_cluster(
                vec![cgpu_node(1), cgpu_node(2), tdx_node(3, true), quiet_node(4)],
                wave,
                failover,
            );
            let r = simulate_cluster(&cfg);
            assert_eq!(
                r.completed + r.aborted + r.rejected,
                r.arrivals,
                "conservation violated (failover={failover})"
            );
            assert!(r.makespan_s.is_finite() && r.makespan_s > 0.0);
        }
    }

    #[test]
    fn cluster_runs_are_deterministic() {
        let wave = WaveModel {
            waves_per_hr: 90.0,
            frac: 0.5,
            seed: 9,
        };
        let cfg = small_cluster(vec![cgpu_node(1), tdx_node(2, false)], wave, true);
        let a = simulate_cluster(&cfg);
        let b = simulate_cluster(&cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn single_quiet_node_matches_single_node_simulator() {
        // One node, unbounded admission, no faults: the cluster loop is
        // the single-node loop with a router in front.
        let mut cfg = small_cluster(vec![quiet_node(1)], WaveModel::none(), true);
        cfg.admission = AdmissionPolicy::unbounded();
        let cluster = simulate_cluster(&cfg);
        let single = crate::sim::simulate_serving(&cfg.serving, &CpuTeeConfig::tdx());
        assert_eq!(cluster.records, single.records);
        assert_eq!(cluster.completed, single.completed);
    }

    #[test]
    fn overload_with_tight_admission_sheds_load() {
        let mut cfg = small_cluster(vec![quiet_node(1)], WaveModel::none(), true);
        cfg.serving.arrivals.rate_per_s = 12.0;
        cfg.admission = AdmissionPolicy {
            queue_cap: 2,
            deadline_s: 5.0,
        };
        let r = simulate_cluster(&cfg);
        assert!(r.rejected > 0, "overload past a cap of 2 must shed");
        assert_eq!(r.completed + r.aborted + r.rejected, r.arrivals);
        assert!(
            r.ttft_p99_s <= 5.0 + 30.0,
            "deadline shedding bounds the wait tail"
        );
    }

    #[test]
    fn waves_hit_only_spot_nodes() {
        // Quiet base rates + crash-only waves: every trip and all
        // downtime must land on the spot subset.
        let wave = WaveModel {
            waves_per_hr: 240.0,
            frac: 1.0,
            seed: 3,
        };
        let spot = NodeSpec {
            rates: FaultRates::none(),
            ..tdx_node(1, true)
        };
        let cfg = small_cluster(vec![spot, quiet_node(2)], wave, true);
        let r = simulate_cluster(&cfg);
        assert!(
            r.nodes[0].downtime_s > 0.0,
            "full-fraction waves must preempt the spot node"
        );
        assert_eq!(r.nodes[1].downtime_s, 0.0, "reserved node rides it out");
        assert!(r.nodes[1].breaker_trips == 0);
        assert_eq!(r.completed + r.aborted + r.rejected, r.arrivals);
    }

    #[test]
    fn failover_spills_cross_platform_and_pays_for_it() {
        // Two cGPU nodes under a dense, hand-scheduled preemption burst
        // plus one healthy CPU node. Long outputs keep requests resident
        // across crash times, so victims must exist; with the cGPU
        // breakers tripped, retries land on the CPU node — a spill.
        let crashes: Vec<FaultEvent> = (0..40)
            .map(|k| FaultEvent {
                at_s: 0.5 + 0.5 * f64::from(k),
                kind: FaultKind::SpotPreemption,
                outage_s: 0.5,
            })
            .collect();
        let mut cgpu_a = cgpu_node(1);
        cgpu_a.rates = FaultRates::none();
        cgpu_a.extra_events = crashes.clone();
        let mut cgpu_b = cgpu_node(2);
        cgpu_b.rates = FaultRates::none();
        cgpu_b.extra_events = crashes;
        let mut cfg = small_cluster(vec![cgpu_a, cgpu_b, quiet_node(3)], WaveModel::none(), true);
        cfg.serving.arrivals.rate_per_s = 4.0;
        cfg.serving.arrivals.prompt_range = (256, 512);
        cfg.serving.arrivals.output_range = (256, 512);
        let with = simulate_cluster(&cfg);
        assert!(with.retries > 0, "crashes must displace running requests");
        assert!(
            with.spills > 0,
            "cGPU victims must spill to the CPU node under failover"
        );
        cfg.failover = false;
        let without = simulate_cluster(&cfg);
        assert_eq!(without.spills, 0, "no failover, no cross-platform spill");
    }

    #[test]
    fn wave_schedule_is_deterministic_and_spot_scoped() {
        let wave = WaveModel {
            waves_per_hr: 60.0,
            frac: 0.5,
            seed: 11,
        };
        let a = wave.events_per_spot_node(4, 600.0);
        let b = wave.events_per_spot_node(4, 600.0);
        assert_eq!(a, b);
        assert_eq!(a.len(), 4);
        // frac 0.5 of 4 -> 2 victims per wave.
        let total: usize = a.iter().map(Vec::len).sum();
        let waves = total / 2;
        assert!(waves > 0, "60/hr over 600s must produce waves");
        assert_eq!(total, waves * 2);
        for events in &a {
            for w in events.windows(2) {
                assert!(w[0].at_s <= w[1].at_s);
            }
            for e in events {
                assert_eq!(e.kind, FaultKind::SpotPreemption);
                let (lo, hi) = FaultKind::SpotPreemption.outage_band_s();
                assert!(e.outage_s >= lo && e.outage_s <= hi);
            }
        }
        assert!(WaveModel::none().events_per_spot_node(4, 600.0) == vec![Vec::new(); 4]);
    }

    #[test]
    fn breaker_recloses_after_early_fault_burst() {
        // All faults land in the first three seconds; the rest of the
        // trace is clean, so the tripped breaker must end Closed
        // (liveness: an open breaker cannot absorb the healthy tail).
        let mut burst = quiet_node(1);
        burst.extra_events = (0..4)
            .map(|k| FaultEvent {
                at_s: 1.0 + 0.5 * f64::from(k),
                kind: FaultKind::EnclaveCrash,
                outage_s: 1.0,
            })
            .collect();
        let mut cfg = small_cluster(vec![burst, quiet_node(2)], WaveModel::none(), true);
        cfg.serving.arrivals.rate_per_s = 2.0; // healthy tail of traffic
        let r = simulate_cluster(&cfg);
        assert!(
            r.nodes[0].breaker_trips > 0,
            "four crashes in the window must trip"
        );
        for (i, n) in r.nodes.iter().enumerate() {
            assert_eq!(
                n.breaker_final,
                BreakerState::Closed,
                "node {i} breaker stuck ({} trips, {} closes)",
                n.breaker_trips,
                n.breaker_closes
            );
            // A burst event landing mid-probe re-opens the breaker, so
            // trips may exceed closes; ending Closed still requires the
            // final probe to have closed.
            assert!(n.breaker_trips >= n.breaker_closes);
        }
        assert!(r.nodes[0].breaker_closes >= 1);
        assert_eq!(r.completed + r.aborted + r.rejected, r.arrivals);
    }

    fn faulty_cluster() -> ClusterConfig {
        small_cluster(
            vec![tdx_node(11, true), cgpu_node(12), quiet_node(13)],
            WaveModel::none(),
            true,
        )
    }

    #[test]
    fn near_horizon_attestation_failure_is_clamped() {
        // Regression: the node-level attestation branch charged the full
        // re-handshake toll even when the failure fired just before the
        // horizon. A single hand-scheduled failure 0.05 s before the end
        // must charge at most 0.05 s of downtime.
        let horizon = ServingConfig::small_test().duration_s;
        let mut node = quiet_node(1);
        node.extra_events = vec![FaultEvent {
            at_s: horizon - 0.05,
            kind: FaultKind::AttestationFailure,
            outage_s: 0.0,
        }];
        let cfg = small_cluster(vec![node], WaveModel::none(), true);
        let r = simulate_cluster(&cfg);
        assert!(
            r.nodes[0].downtime_s <= 0.05 + 1e-9,
            "near-horizon attestation failure charged {} s, clamp allows 0.05 s",
            r.nodes[0].downtime_s
        );
        assert_eq!(r.completed + r.aborted + r.rejected, r.arrivals);

        // Baseline: the same failure mid-trace charges the whole toll.
        let mut mid = quiet_node(1);
        mid.extra_events = vec![FaultEvent {
            at_s: 5.0,
            kind: FaultKind::AttestationFailure,
            outage_s: 0.0,
        }];
        let cfg = small_cluster(vec![mid], WaveModel::none(), true);
        let toll = FaultPlan::none().policy.reattest_s;
        let r = simulate_cluster(&cfg);
        assert!(
            (r.nodes[0].downtime_s - toll).abs() < 1e-9,
            "mid-trace failure charges the whole toll, got {}",
            r.nodes[0].downtime_s
        );
    }

    #[test]
    fn traced_cluster_matches_untraced_report() {
        let cfg = faulty_cluster();
        let baseline = simulate_cluster(&cfg);
        let (traced, trace) = simulate_cluster_traced(&cfg);
        assert_eq!(baseline, traced, "tracing must be a pure observer");
        assert!(!trace.is_empty());
    }

    #[test]
    fn cluster_trace_conserves_time() {
        let cfg = faulty_cluster();
        let (report, trace) = simulate_cluster_traced(&cfg);
        let check = cllm_obs::check(&trace, 1e-6);
        assert!(check.ok(), "conservation failed: {:?}", check.errors);

        let totals = cllm_obs::node_totals(&trace);
        assert_eq!(totals.len(), cfg.nodes.len());
        for (i, t) in totals.iter().enumerate() {
            assert!(
                (t.makespan_s - report.makespan_s).abs() < 1e-9,
                "node {i} extent {} != cluster makespan {}",
                t.makespan_s,
                report.makespan_s
            );
            assert!(
                (t.outage_s - report.nodes[i].downtime_s).abs() < 1e-6,
                "node {i} outage {} != downtime {}",
                t.outage_s,
                report.nodes[i].downtime_s
            );
        }

        let chains = cllm_obs::request_chains(&trace);
        let by_id: HashMap<u64, f64> = chains.iter().map(|c| (c.id, c.total_s)).collect();
        for rec in &report.records {
            let total = by_id.get(&rec.id).copied().unwrap_or(0.0);
            assert!(
                (total - rec.e2e_s).abs() < 1e-6,
                "request {} chain {} != e2e {}",
                rec.id,
                total,
                rec.e2e_s
            );
        }
    }

    #[test]
    fn cluster_trace_records_routing_decisions() {
        let cfg = faulty_cluster();
        let (report, trace) = simulate_cluster_traced(&cfg);
        let routes = trace.events.iter().filter(|e| e.name == "route").count();
        assert!(routes > 0, "router must emit route events");
        if report.retries > 0 {
            let failovers = trace.events.iter().filter(|e| e.name == "failover").count();
            assert_eq!(failovers as u64, report.retries);
        }
        if report.spills > 0 {
            let spills = trace.events.iter().filter(|e| e.name == "spill").count();
            assert_eq!(spills as u64, report.spills);
        }
        if report.nodes.iter().any(|n| n.breaker_trips > 0) {
            assert!(trace.events.iter().any(|e| e.name == "breaker-open"));
        }
    }
}
