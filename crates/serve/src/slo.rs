//! Service-level reporting: TTFT/TPOT percentiles and SLO attainment.

use crate::sim::RequestRecord;
use serde::{Deserialize, Serialize};

/// The outcome of one serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests that arrived.
    pub arrivals: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Re-queue events: times any request was put back in the queue
    /// after a crash-class fault destroyed its node's KV state.
    pub retries: u64,
    /// Requests abandoned after exhausting the retry budget. The
    /// simulator maintains `completed + aborted == arrivals`.
    pub aborted: usize,
    /// Fraction of the makespan the node was serving rather than down
    /// (1.0 in fault-free runs).
    pub availability: f64,
    /// Wall time to drain the trace, seconds.
    pub makespan_s: f64,
    /// Generated tokens per second over the makespan.
    pub goodput_tps: f64,
    /// Deepest the admission queue ever got, in requests — the signal an
    /// admission controller sheds on.
    pub queue_depth_peak: usize,
    /// Mean queue wait (enqueue → admission) across admissions, seconds.
    pub queue_wait_mean_s: f64,
    /// 99th-percentile queue wait across admissions, seconds.
    pub queue_wait_p99_s: f64,
    /// Median time to first token, seconds.
    pub ttft_p50_s: f64,
    /// 95th-percentile time to first token, seconds.
    pub ttft_p95_s: f64,
    /// Median time per output token, seconds.
    pub tpot_p50_s: f64,
    /// 95th-percentile time per output token, seconds.
    pub tpot_p95_s: f64,
    /// Sequences evicted from the running batch on KV-pool pressure
    /// (both paged policies; zero under conservative reservation).
    pub preemptions: u64,
    /// KV bytes paged out of protected memory by swap-policy evictions.
    pub swap_out_bytes: f64,
    /// KV bytes paged back into protected memory on readmission.
    pub swap_in_bytes: f64,
    /// Per-request records (sorted by id).
    pub records: Vec<RequestRecord>,
}

/// An SLO: bounds on first-token and per-token latency.
///
/// The paper's reading-speed standard (200 ms/word, Section III-D) is the
/// natural TPOT bound for interactive use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// Maximum acceptable time to first token, seconds.
    pub ttft_s: f64,
    /// Maximum acceptable time per output token, seconds.
    pub tpot_s: f64,
}

impl Slo {
    /// Interactive chat: 2 s to first token, reading speed per token.
    #[must_use]
    pub fn interactive() -> Self {
        Slo {
            ttft_s: 2.0,
            tpot_s: 0.2,
        }
    }
}

impl ServingReport {
    /// Fraction of *completed* requests meeting the SLO.
    ///
    /// Edge cases are explicit: an empty record set attains `0.0` (there
    /// is nothing to credit), a single record attains exactly `0.0` or
    /// `1.0`, and the result is always finite.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn slo_attainment(&self, slo: Slo) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        self.slo_ok_count(slo) as f64 / self.records.len() as f64
    }

    /// Degraded-mode SLO attainment: fraction of *arrivals* (not just
    /// completions) that met the SLO. Aborted requests count as misses,
    /// so a platform cannot improve its score by shedding load. Zero
    /// arrivals attain `0.0`.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn degraded_slo_attainment(&self, slo: Slo) -> f64 {
        if self.arrivals == 0 {
            return 0.0;
        }
        self.slo_ok_count(slo) as f64 / self.arrivals as f64
    }

    fn slo_ok_count(&self, slo: Slo) -> usize {
        self.records
            .iter()
            .filter(|r| r.ttft_s <= slo.ttft_s && r.tpot_s <= slo.tpot_s)
            .count()
    }
}

/// Percentile by linear interpolation over an unsorted sample.
///
/// Edge cases are explicit: an empty sample returns `NaN` (callers that
/// need a finite placeholder must substitute it themselves — the serving
/// simulator reports `0.0` for empty reports), a single-element sample
/// returns that element for every `q`, and finite inputs always produce
/// a finite interpolated value.
///
/// # Panics
///
/// Panics if any sample is `NaN` (latencies are never NaN by
/// construction).
#[must_use]
pub fn percentile_of(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    // infallible: latencies are differences of finite sim clocks
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    sorted_percentile(&sorted, q)
}

/// Percentile over an **already ascending-sorted** sample.
///
/// Report builders that take several percentiles of the same vector sort
/// once and call this per quantile, instead of paying [`percentile_of`]'s
/// clone-and-sort on every call. Same contract: `NaN` on empty, the sole
/// element for singletons, linear interpolation otherwise — so for any
/// sorted `v`, `sorted_percentile(&v, q) == percentile_of(&v, q)` bit for
/// bit.
#[must_use]
pub fn sorted_percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    cllm_perf::stats::percentile(sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, ttft: f64, tpot: f64) -> RequestRecord {
        RequestRecord {
            id,
            ttft_s: ttft,
            tpot_s: tpot,
            e2e_s: ttft + tpot * 10.0,
            retries: 0,
        }
    }

    fn report(records: Vec<RequestRecord>) -> ServingReport {
        ServingReport {
            arrivals: records.len(),
            completed: records.len(),
            retries: 0,
            aborted: 0,
            availability: 1.0,
            makespan_s: 10.0,
            goodput_tps: 100.0,
            queue_depth_peak: 0,
            queue_wait_mean_s: 0.0,
            queue_wait_p99_s: 0.0,
            ttft_p50_s: 0.0,
            ttft_p95_s: 0.0,
            tpot_p50_s: 0.0,
            tpot_p95_s: 0.0,
            preemptions: 0,
            swap_out_bytes: 0.0,
            swap_in_bytes: 0.0,
            records,
        }
    }

    #[test]
    fn attainment_counts_both_bounds() {
        let r = report(vec![
            record(0, 1.0, 0.05),  // ok
            record(1, 3.0, 0.05),  // ttft violated
            record(2, 1.0, 0.50),  // tpot violated
            record(3, 0.5, 0.199), // ok
        ]);
        let a = r.slo_attainment(Slo::interactive());
        assert!((a - 0.5).abs() < 1e-12, "attainment {a}");
    }

    #[test]
    fn empty_report_attains_nothing() {
        assert_eq!(report(vec![]).slo_attainment(Slo::interactive()), 0.0);
    }

    #[test]
    fn percentile_helper_sorts() {
        let p = percentile_of(&[3.0, 1.0, 2.0], 0.5);
        assert!((p - 2.0).abs() < 1e-12);
        assert!(percentile_of(&[], 0.5).is_nan());
    }

    #[test]
    fn sorted_percentile_matches_percentile_of_bit_for_bit() {
        let unsorted = [3.0, 1.0, 7.5, 2.0, 2.0, 9.0, 0.25];
        let mut sorted = unsorted.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        for q in [0.0, 0.05, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let a = percentile_of(&unsorted, q);
            let b = sorted_percentile(&sorted, q);
            assert_eq!(a.to_bits(), b.to_bits(), "q={q}: {a} vs {b}");
        }
        assert!(sorted_percentile(&[], 0.5).is_nan());
    }

    #[test]
    fn percentile_single_sample_is_that_sample() {
        for q in [0.0, 0.5, 0.95, 1.0] {
            assert!((percentile_of(&[4.2], q) - 4.2).abs() < 1e-12, "q={q}");
        }
    }

    #[test]
    fn percentile_finite_inputs_stay_finite() {
        let samples = [0.1, 5.0, 2.5, 0.0, 9.9];
        for q in [0.0, 0.25, 0.5, 0.9, 0.95, 0.99, 1.0] {
            let p = percentile_of(&samples, q);
            assert!(p.is_finite(), "q={q} gave {p}");
            assert!((0.0..=9.9).contains(&p), "q={q} gave {p}");
        }
    }

    #[test]
    fn single_record_attainment_is_all_or_nothing() {
        let ok = report(vec![record(0, 0.5, 0.05)]);
        let bad = report(vec![record(0, 5.0, 0.05)]);
        assert_eq!(ok.slo_attainment(Slo::interactive()), 1.0);
        assert_eq!(bad.slo_attainment(Slo::interactive()), 0.0);
    }

    #[test]
    fn degraded_attainment_charges_aborts() {
        // 2 completed (1 in SLO), 2 aborted, 4 arrivals.
        let mut r = report(vec![record(0, 0.5, 0.05), record(1, 9.0, 0.05)]);
        r.arrivals = 4;
        r.aborted = 2;
        let slo = Slo::interactive();
        assert!((r.slo_attainment(slo) - 0.5).abs() < 1e-12);
        assert!((r.degraded_slo_attainment(slo) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn degraded_attainment_empty_is_zero() {
        let mut r = report(vec![]);
        assert_eq!(r.degraded_slo_attainment(Slo::interactive()), 0.0);
        r.arrivals = 0;
        assert_eq!(r.slo_attainment(Slo::interactive()), 0.0);
    }
}
