//! Service-level reporting: TTFT/TPOT percentiles and SLO attainment.

use crate::sim::RequestRecord;
use serde::{Deserialize, Serialize};

/// The outcome of one serving simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServingReport {
    /// Requests that arrived.
    pub arrivals: usize,
    /// Requests that completed.
    pub completed: usize,
    /// Wall time to drain the trace, seconds.
    pub makespan_s: f64,
    /// Generated tokens per second over the makespan.
    pub goodput_tps: f64,
    /// Median time to first token, seconds.
    pub ttft_p50_s: f64,
    /// 95th-percentile time to first token, seconds.
    pub ttft_p95_s: f64,
    /// Median time per output token, seconds.
    pub tpot_p50_s: f64,
    /// 95th-percentile time per output token, seconds.
    pub tpot_p95_s: f64,
    /// Per-request records (sorted by id).
    pub records: Vec<RequestRecord>,
}

/// An SLO: bounds on first-token and per-token latency.
///
/// The paper's reading-speed standard (200 ms/word, Section III-D) is the
/// natural TPOT bound for interactive use.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Slo {
    /// Maximum acceptable time to first token, seconds.
    pub ttft_s: f64,
    /// Maximum acceptable time per output token, seconds.
    pub tpot_s: f64,
}

impl Slo {
    /// Interactive chat: 2 s to first token, reading speed per token.
    #[must_use]
    pub fn interactive() -> Self {
        Slo {
            ttft_s: 2.0,
            tpot_s: 0.2,
        }
    }
}

impl ServingReport {
    /// Fraction of completed requests meeting the SLO.
    #[must_use]
    #[allow(clippy::cast_precision_loss)]
    pub fn slo_attainment(&self, slo: Slo) -> f64 {
        if self.records.is_empty() {
            return 0.0;
        }
        let ok = self
            .records
            .iter()
            .filter(|r| r.ttft_s <= slo.ttft_s && r.tpot_s <= slo.tpot_s)
            .count();
        ok as f64 / self.records.len() as f64
    }
}

/// Percentile by linear interpolation over an unsorted sample.
#[must_use]
pub fn percentile_of(samples: &[f64], q: f64) -> f64 {
    if samples.is_empty() {
        return f64::NAN;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    cllm_perf::stats::percentile(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: u64, ttft: f64, tpot: f64) -> RequestRecord {
        RequestRecord {
            id,
            ttft_s: ttft,
            tpot_s: tpot,
            e2e_s: ttft + tpot * 10.0,
        }
    }

    fn report(records: Vec<RequestRecord>) -> ServingReport {
        ServingReport {
            arrivals: records.len(),
            completed: records.len(),
            makespan_s: 10.0,
            goodput_tps: 100.0,
            ttft_p50_s: 0.0,
            ttft_p95_s: 0.0,
            tpot_p50_s: 0.0,
            tpot_p95_s: 0.0,
            records,
        }
    }

    #[test]
    fn attainment_counts_both_bounds() {
        let r = report(vec![
            record(0, 1.0, 0.05),  // ok
            record(1, 3.0, 0.05),  // ttft violated
            record(2, 1.0, 0.50),  // tpot violated
            record(3, 0.5, 0.199), // ok
        ]);
        let a = r.slo_attainment(Slo::interactive());
        assert!((a - 0.5).abs() < 1e-12, "attainment {a}");
    }

    #[test]
    fn empty_report_attains_nothing() {
        assert_eq!(report(vec![]).slo_attainment(Slo::interactive()), 0.0);
    }

    #[test]
    fn percentile_helper_sorts() {
        let p = percentile_of(&[3.0, 1.0, 2.0], 0.5);
        assert!((p - 2.0).abs() < 1e-12);
        assert!(percentile_of(&[], 0.5).is_nan());
    }
}
