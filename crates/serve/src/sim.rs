//! The serving event loop.
//!
//! Time advances iteration by iteration: at each boundary the scheduler
//! admits waiting requests (charging their prefill), then the whole batch
//! performs one decode step priced by the calibrated `cllm-perf` roofline
//! under the chosen TEE. Per-request records capture time to first token
//! (TTFT) and time per output token (TPOT).
//!
//! # Faults and recovery
//!
//! [`simulate_serving_faulted`] additionally consumes a
//! [`FaultPlan`]: stall-class events freeze the
//! node for their outage window, crash-class events destroy the running
//! batch's KV caches (victims re-queue under bounded retry with
//! exponential backoff, paying a fresh attested handshake on
//! re-admission, and are aborted once the retry budget is spent), and
//! attestation failures drive a real fail-then-recover handshake through
//! `cllm_tee::session`. An **empty plan takes no fault branch**:
//! [`simulate_serving`] delegates to the faulted simulator with
//! [`FaultPlan::none`] and is
//! byte-identical to the historic fault-free loop.

use crate::faults::{attested_rehandshake_phased, FaultEvent, FaultPlan};
use crate::kernel::{EventQueue, KernelStats, RequestSlab};
use crate::scheduler::{Admission, ContinuousBatcher, KvConfig, QueueStats, SchedulerLimits};
use crate::slo::{sorted_percentile, ServingReport};
use crate::workload::{ArrivalProcess, Request};
use cllm_hw::{DType, GpuModel};
use cllm_obs::{Scope, SpanKind, Trace, TraceSink};
use cllm_perf::CpuTarget;
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig};
use cllm_workload::{kv, zoo, ModelConfig};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// Single-node simulations always trace as node 0.
const NODE0: Scope = Scope::Node(0);

/// One completed request's timing record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id.
    pub id: u64,
    /// Time to first token (queueing + prefill), seconds. For retried
    /// requests this spans every failed attempt: the clock starts at the
    /// original arrival.
    pub ttft_s: f64,
    /// Mean time per output token after the first, seconds.
    pub tpot_s: f64,
    /// End-to-end completion time, seconds.
    pub e2e_s: f64,
    /// Times this request was re-queued after losing its node.
    pub retries: u32,
}

/// Serving-simulation configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Workload model whose costs are simulated.
    pub model: ModelConfig,
    /// Data type.
    pub dtype: DType,
    /// Execution target (used by CPU nodes; GPU nodes carry their own
    /// hardware model).
    pub target: CpuTarget,
    /// Scheduler limits.
    pub limits: SchedulerLimits,
    /// KV-memory policy (conservative reservation, paged-recompute or
    /// paged-swap) and page size.
    pub kv: KvConfig,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Trace horizon, seconds of arrivals.
    pub duration_s: f64,
}

impl ServingConfig {
    /// A small, fast configuration for tests: Llama2-7B shapes at a light
    /// load on one EMR2 socket.
    #[must_use]
    pub fn small_test() -> Self {
        ServingConfig {
            model: zoo::llama2_7b(),
            dtype: DType::Bf16,
            target: CpuTarget::emr2_single_socket(),
            limits: SchedulerLimits {
                max_batch: 16,
                kv_budget_bytes: 64.0 * cllm_hw::GIB,
            },
            kv: KvConfig::default(),
            arrivals: ArrivalProcess {
                rate_per_s: 1.0,
                prompt_range: (32, 256),
                output_range: (8, 64),
                seed: 11,
            },
            duration_s: 30.0,
        }
    }

    /// A production-like configuration (heavier load, chat shapes).
    #[must_use]
    pub fn chat_production(rate_per_s: f64) -> Self {
        ServingConfig {
            arrivals: ArrivalProcess::chat(rate_per_s, 42),
            duration_s: 120.0,
            ..Self::small_test()
        }
    }
}

/// The hardware a serving simulation runs on: per-step prefill and
/// decode prices come from the matching `cllm-perf` roofline, so every
/// TEE mechanism shapes the tail on CPUs and cGPUs alike.
#[derive(Debug, Clone)]
pub enum ServingNode {
    /// A CPU deployment; steps are priced on the config's
    /// [`ServingConfig::target`].
    Cpu {
        /// CPU TEE platform (bare metal, VM, TDX, SEV-SNP, SGX).
        tee: CpuTeeConfig,
    },
    /// A GPU deployment; the config's CPU target is ignored.
    Gpu {
        /// GPU hardware model.
        gpu: GpuModel,
        /// GPU TEE mode (native or confidential).
        tee: GpuTeeConfig,
    },
}

impl ServingNode {
    /// Prefill time for one request of `prompt_tokens` on this node.
    #[must_use]
    pub fn prefill_time_s(&self, cfg: &ServingConfig, prompt_tokens: u64) -> f64 {
        match self {
            ServingNode::Cpu { tee } => {
                cllm_perf::prefill_time_s(&cfg.model, cfg.dtype, &cfg.target, tee, 1, prompt_tokens)
            }
            ServingNode::Gpu { gpu, tee } => {
                cllm_perf::gpu_prefill_time_s(&cfg.model, cfg.dtype, gpu, tee, 1, prompt_tokens)
            }
        }
    }

    /// One decode iteration for `batch` sequences at `context` tokens.
    #[must_use]
    pub fn decode_step_time_s(&self, cfg: &ServingConfig, batch: u64, context: u64) -> f64 {
        match self {
            ServingNode::Cpu { tee } => cllm_perf::decode_step_time_s(
                &cfg.model,
                cfg.dtype,
                &cfg.target,
                tee,
                batch,
                context,
            ),
            ServingNode::Gpu { gpu, tee } => {
                cllm_perf::gpu_decode_step_time_s(&cfg.model, cfg.dtype, gpu, tee, batch, context)
            }
        }
    }

    /// Bytes of KV that can stay resident in protected memory without
    /// per-step paging stalls. SGX nodes get the EPC minus the streamed
    /// weights; other CPU TEEs encrypt all of DRAM (no residency cliff),
    /// so their budget is unbounded. GPU nodes get the HBM left after
    /// the weights.
    #[must_use]
    pub fn kv_residency_budget_bytes(&self, cfg: &ServingConfig) -> f64 {
        match self {
            ServingNode::Cpu { tee } => tee.sgx.map_or(f64::INFINITY, |sgx| {
                (sgx.epc_bytes - cfg.model.weight_bytes(cfg.dtype)).max(0.0)
            }),
            ServingNode::Gpu { gpu, .. } => {
                cllm_perf::gpu_kv_budget_bytes(&cfg.model, cfg.dtype, gpu)
            }
        }
    }

    /// Time to swap `bytes` of KV in or out of protected memory on this
    /// node (EPC paging on SGX, MEE-derated copy on other CPUs, the
    /// bounce-buffered host link on GPUs).
    #[must_use]
    pub fn kv_swap_time_s(&self, bytes: f64) -> f64 {
        match self {
            ServingNode::Cpu { tee } => cllm_perf::kv_swap_time_s(tee, bytes),
            ServingNode::Gpu { gpu, tee } => cllm_perf::gpu_kv_swap_time_s(gpu, tee, bytes),
        }
    }

    /// Time for a cold-started node to unseal and load the model weights
    /// into protected memory before it can serve a single token: the
    /// full weight footprint moved through the platform's protected-copy
    /// path (EPC paging on SGX — the mechanism that makes SGX cold
    /// starts brutal — an MEE-derated DRAM copy on other CPU TEEs, the
    /// encrypted PCIe bounce buffer on cGPUs). Paid once per scale-up
    /// after the attested handshake, before the node joins routing.
    #[must_use]
    pub fn weight_unseal_time_s(&self, cfg: &ServingConfig) -> f64 {
        self.kv_swap_time_s(cfg.model.weight_bytes(cfg.dtype))
    }

    /// Per-decode-step stall when `excess_bytes` of resident KV overflow
    /// [`ServingNode::kv_residency_budget_bytes`].
    #[must_use]
    pub fn kv_pressure_stall_s(&self, excess_bytes: f64) -> f64 {
        match self {
            ServingNode::Cpu { tee } => cllm_perf::kv_pressure_stall_s(tee, excess_bytes),
            ServingNode::Gpu { gpu, tee } => {
                cllm_perf::gpu_kv_pressure_stall_s(gpu, tee, excess_bytes)
            }
        }
    }
}

/// Run the discrete-event serving simulation under `tee` with no faults.
///
/// Degenerate configurations (non-positive arrival rate or horizon, or a
/// trace that happens to contain no arrivals) return an empty, NaN-free
/// [`ServingReport`] instead of panicking.
#[must_use]
pub fn simulate_serving(cfg: &ServingConfig, tee: &CpuTeeConfig) -> ServingReport {
    simulate_serving_faulted(
        cfg,
        &ServingNode::Cpu { tee: tee.clone() },
        &FaultPlan::none(),
    )
}

/// Run the discrete-event serving simulation on `node` under `plan`.
///
/// The loop applies every scheduled [`FaultEvent`]
/// at the first iteration boundary at or after its timestamp (outages
/// serialize with compute, which is how a single-node deployment
/// experiences them):
///
/// * **stall-class** — the clock and downtime advance by the outage;
/// * **crash-class** — the running batch is drained; each victim either
///   re-queues (attempt count below
///   [`RecoveryPolicy::max_retries`](crate::faults::RecoveryPolicy),
///   eligible after the outage plus exponential backoff) or is aborted;
/// * **attestation failure** — a fail-then-recover handshake runs through
///   the real `cllm_tee::session` machinery and the node pays
///   [`RecoveryPolicy::reattest_s`](crate::faults::RecoveryPolicy).
///
/// Re-admitted victims pay a fresh attested handshake before their
/// (repeated) prefill. The report satisfies the conservation invariant
/// `completed + aborted == arrivals`.
#[must_use]
pub fn simulate_serving_faulted(
    cfg: &ServingConfig,
    node: &ServingNode,
    plan: &FaultPlan,
) -> ServingReport {
    simulate_serving_faulted_stats(cfg, node, plan).0
}

/// [`simulate_serving_faulted`] plus the kernel's event counters: the
/// report is byte-identical, and the [`KernelStats`] sum is the exact
/// number of discrete events the kernel processed (the numerator of the
/// events/sec throughput `serve_scale` benchmarks).
#[must_use]
pub fn simulate_serving_faulted_stats(
    cfg: &ServingConfig,
    node: &ServingNode,
    plan: &FaultPlan,
) -> (ServingReport, KernelStats) {
    run_faulted(cfg, node, plan, &mut TraceSink::disabled())
}

/// Traced twin of [`simulate_serving_faulted`]: byte-identical report
/// (span emission only *reads* the simulated clock; it never changes the
/// float arithmetic or branch structure), plus the recorded single-lane
/// [`Trace`].
///
/// The trace tiles the node's timeline — every clock advance emits
/// exactly one node-scoped span, so `busy + idle + outage == makespan`
/// holds by construction — and chains each request's spans gaplessly
/// from arrival to final token (or abort), so the per-request span sum
/// equals its end-to-end latency.
#[must_use]
pub fn simulate_serving_traced(
    cfg: &ServingConfig,
    node: &ServingNode,
    plan: &FaultPlan,
) -> (ServingReport, Trace) {
    let mut sink = TraceSink::new();
    let (report, _) = run_faulted(cfg, node, plan, &mut sink);
    (report, sink.finish())
}

fn run_faulted(
    cfg: &ServingConfig,
    node: &ServingNode,
    plan: &FaultPlan,
    sink: &mut TraceSink,
) -> (ServingReport, KernelStats) {
    let mut stats = KernelStats::default();
    if cfg.arrivals.rate_per_s <= 0.0 || cfg.duration_s <= 0.0 {
        return (
            build_report(
                0,
                0,
                0.0,
                Vec::new(),
                0,
                0,
                0.0,
                &QueueStats::default(),
                0,
                0.0,
                0.0,
            ),
            stats,
        );
    }
    let trace = cfg.arrivals.trace(cfg.duration_s);
    if trace.is_empty() {
        return (
            build_report(
                0,
                0,
                0.0,
                Vec::new(),
                0,
                0,
                0.0,
                &QueueStats::default(),
                0,
                0.0,
                0.0,
            ),
            stats,
        );
    }
    let mut pending: VecDeque<Request> = trace.iter().copied().collect();
    let total_arrivals = pending.len();
    let mut scheduler = ContinuousBatcher::configured(cfg.limits, cfg.kv);
    // Pressure pricing inputs: bytes per KV token, bytes per page, and
    // the node's protected-residency budget. All irrelevant (and unread)
    // under the conservative policy, whose StepPrep is always empty.
    let per_token_bytes = kv::kv_bytes_per_sequence(&cfg.model, 1, cfg.dtype);
    #[allow(clippy::cast_precision_loss)]
    let block_bytes = per_token_bytes * cfg.kv.block_tokens as f64;
    let residency_budget = node.kv_residency_budget_bytes(cfg);
    let mut swap_out_bytes = 0.0f64;
    let mut swap_in_bytes = 0.0f64;
    // Dynamically scheduled retry deliveries live in the kernel's heap,
    // keyed by request id: pops come out in (eligibility, id) order —
    // the same order the old per-delivery `min_by` rescan produced, at
    // O(log n) instead of O(n) per delivered retry.
    let mut retry_queue: EventQueue<Request> = EventQueue::new();
    // Per-request attempt counts and span cursors, slab-indexed by the
    // dense request id (cursors untouched when the sink is disabled).
    let mut slab = RequestSlab::new(total_arrivals);
    let mut now = 0.0f64;
    let mut records: Vec<RequestRecord> = Vec::with_capacity(total_arrivals);
    let mut useful_tokens = 0u64;
    let mut retries = 0u64;
    let mut aborted = 0usize;
    let mut downtime_s = 0.0f64;
    let mut next_event = 0usize;
    let mut handshake_seq = 0u64;
    // End of the latest DegradedThroughput window (horizon-clamped):
    // while `now` is inside it, every decode step is derated.
    let mut derate_until_s = 0.0f64;

    loop {
        // Apply faults that have fired by `now`, oldest first.
        while plan.events.get(next_event).is_some_and(|e| e.at_s <= now) {
            let ev = plan.events[next_event];
            next_event += 1;
            handshake_seq += 1;
            stats.faults_applied += 1;
            apply_fault(
                &ev,
                plan,
                cfg.duration_s,
                handshake_seq,
                &mut scheduler,
                &mut retry_queue,
                &mut slab,
                &mut now,
                &mut downtime_s,
                &mut derate_until_s,
                &mut retries,
                &mut aborted,
                sink,
            );
        }

        // Deliver arrivals that have happened by `now`.
        while pending.front().is_some_and(|r| r.arrival_s <= now) {
            let r = pending.pop_front().expect("front checked");
            stats.arrivals += 1;
            if sink.is_enabled() {
                slab.set_cursor(r.id, r.arrival_s);
            }
            scheduler.enqueue(r);
        }
        // Deliver retried requests whose backoff has elapsed; the heap
        // pops them in deterministic (eligibility, id) order. A retry's
        // queue-wait clock starts at re-delivery, not at its original
        // arrival — the spent time is already in its TTFT.
        while let Some(request) = retry_queue.pop_due(now) {
            stats.retries_delivered += 1;
            if sink.is_enabled() {
                if let Some(c) = slab.cursor(request.id) {
                    sink.span(Scope::Request(request.id), SpanKind::Backoff, c, now);
                    slab.set_cursor(request.id, now);
                }
            }
            scheduler.enqueue_at(request, now);
        }

        // If nothing is runnable, jump to the next thing that can happen:
        // an arrival, a retry becoming eligible, or a fault firing first.
        if scheduler.idle() {
            let mut target = f64::INFINITY;
            if let Some(next) = pending.front() {
                target = target.min(next.arrival_s);
            }
            if let Some(t) = retry_queue.peek_time() {
                target = target.min(t);
            }
            if !target.is_finite() {
                break; // no work left anywhere
            }
            let idle_from = now;
            match plan.events.get(next_event) {
                Some(e) if e.at_s < target => now = e.at_s,
                _ => now = target,
            }
            sink.span(NODE0, SpanKind::Idle, idle_from, now);
            continue;
        }

        // Admission + prefill at the iteration boundary. A re-queued
        // victim must re-attest its session before its repeated prefill;
        // a swapped-out sequence resumes with its progress after paying
        // the swap-in stall instead of a prefill.
        let admitted = scheduler.admit_any(&cfg.model, cfg.dtype, now);
        for adm in admitted {
            match adm {
                Admission::Fresh(r) => {
                    stats.admissions += 1;
                    if sink.is_enabled() {
                        if let Some(c) = slab.cursor(r.id) {
                            sink.span(Scope::Request(r.id), SpanKind::QueueWait, c, now);
                        }
                    }
                    if slab.attempts(r.id) > 0 {
                        let t0 = now;
                        now += plan.policy.reattest_s;
                        sink.span(NODE0, SpanKind::Reattest, t0, now);
                        sink.span(Scope::Request(r.id), SpanKind::Reattest, t0, now);
                    }
                    let t_prefill = node.prefill_time_s(cfg, r.prompt_tokens);
                    let t0 = now;
                    now += t_prefill;
                    sink.span(NODE0, SpanKind::Prefill, t0, now);
                    sink.span(Scope::Request(r.id), SpanKind::Prefill, t0, now);
                    if sink.is_enabled() {
                        slab.set_cursor(r.id, now);
                    }
                    scheduler.start(r, now);
                }
                Admission::Resumed {
                    request,
                    swap_in_tokens,
                } => {
                    stats.swap_ins += 1;
                    #[allow(clippy::cast_precision_loss)]
                    let bytes = swap_in_tokens as f64 * per_token_bytes;
                    swap_in_bytes += bytes;
                    let t0 = now;
                    if sink.is_enabled() {
                        if let Some(c) = slab.cursor(request.id) {
                            sink.span(Scope::Request(request.id), SpanKind::Preempted, c, t0);
                        }
                    }
                    now += node.kv_swap_time_s(bytes);
                    sink.span(NODE0, SpanKind::SwapIn, t0, now);
                    sink.span(Scope::Request(request.id), SpanKind::SwapIn, t0, now);
                    if sink.is_enabled() {
                        slab.set_cursor(request.id, now);
                    }
                }
            }
        }

        if scheduler.running().is_empty() {
            continue;
        }

        // Make the coming step fit in the page pool: on pressure the
        // batcher evicts from the tail (recompute re-queues at the queue
        // front; swap victims page out through the priced path).
        let prep = scheduler.prepare_step(now);
        for victim in &prep.preempted_recompute {
            stats.preemptions += 1;
            if sink.is_enabled() {
                if let Some(c) = slab.cursor(victim.id) {
                    sink.span(Scope::Request(victim.id), SpanKind::DecodeLost, c, now);
                    slab.set_cursor(victim.id, now);
                }
            }
        }
        for victim in &prep.preempted_swap {
            stats.preemptions += 1;
            stats.swap_outs += 1;
            #[allow(clippy::cast_precision_loss)]
            let bytes = victim.context() as f64 * per_token_bytes;
            swap_out_bytes += bytes;
            let t0 = now;
            if sink.is_enabled() {
                if let Some(c) = slab.cursor(victim.request.id) {
                    sink.span(Scope::Request(victim.request.id), SpanKind::Decode, c, t0);
                }
            }
            now += node.kv_swap_time_s(bytes);
            sink.span(NODE0, SpanKind::SwapOut, t0, now);
            sink.span(
                Scope::Request(victim.request.id),
                SpanKind::SwapOut,
                t0,
                now,
            );
            if sink.is_enabled() {
                slab.set_cursor(victim.request.id, now);
            }
        }

        // One decode iteration for the whole running batch at its mean
        // context length. Resident KV past the platform's protected
        // budget pays the per-step paging/bounce stall instead of a flat
        // admission cliff.
        let batch = scheduler.running().len() as u64;
        #[allow(clippy::cast_precision_loss)]
        let mean_context = (scheduler.running().iter().map(|a| a.context()).sum::<u64>() as f64
            / batch as f64)
            .round() as u64;
        let t0 = now;
        let mut t_step = node.decode_step_time_s(cfg, batch, mean_context);
        if prep.resident_pages > 0 {
            #[allow(clippy::cast_precision_loss)]
            let excess = prep.resident_pages as f64 * block_bytes - residency_budget;
            if excess > 0.0 {
                t_step += node.kv_pressure_stall_s(excess);
            }
        }
        // A step that begins inside a gray DegradedThroughput window
        // runs at the derated rate — the node is up (no downtime, no
        // outage span), just slow.
        if now < derate_until_s {
            t_step *= crate::faults::DEGRADED_THROUGHPUT_FACTOR;
        }
        now += t_step;
        stats.decode_steps += 1;
        sink.span(NODE0, SpanKind::Decode, t0, now);

        for fin in scheduler.step() {
            let ttft = fin.first_token_s - fin.request.arrival_s;
            let decode_span = now - fin.first_token_s;
            #[allow(clippy::cast_precision_loss)]
            let tpot = decode_span / (fin.request.output_tokens.saturating_sub(1).max(1)) as f64;
            useful_tokens += fin.request.output_tokens;
            stats.completions += 1;
            if sink.is_enabled() {
                if let Some(c) = slab.take_cursor(fin.request.id) {
                    sink.span(Scope::Request(fin.request.id), SpanKind::Decode, c, now);
                }
            }
            records.push(RequestRecord {
                id: fin.request.id,
                ttft_s: ttft,
                tpot_s: tpot,
                e2e_s: now - fin.request.arrival_s,
                retries: slab.attempts(fin.request.id),
            });
        }
    }

    (
        build_report(
            total_arrivals,
            useful_tokens,
            now,
            records,
            retries,
            aborted,
            downtime_s,
            scheduler.queue_stats(),
            stats.preemptions,
            swap_out_bytes,
            swap_in_bytes,
        ),
        stats,
    )
}

/// Apply one fault event at an iteration boundary. An outage whose tail
/// extends past the arrival horizon `horizon_s` is clamped at the
/// horizon: the simulation stops charging unavailable time beyond the
/// last instant the trace could still demand service, so a late long
/// preemption cannot inflate the makespan (and depress availability)
/// with downtime no request ever observed. The attestation-failure
/// re-handshake toll takes the identical clamp — it is an outage like
/// any other, just priced by the policy instead of the event.
#[allow(clippy::too_many_arguments)]
fn apply_fault(
    ev: &FaultEvent,
    plan: &FaultPlan,
    horizon_s: f64,
    handshake_seq: u64,
    scheduler: &mut ContinuousBatcher,
    retry_queue: &mut EventQueue<Request>,
    slab: &mut RequestSlab,
    now: &mut f64,
    downtime_s: &mut f64,
    derate_until_s: &mut f64,
    retries: &mut u64,
    aborted: &mut usize,
    sink: &mut TraceSink,
) {
    use crate::faults::FaultKind;
    if ev.kind.is_gray() {
        // Gray failures charge no downtime and emit no outage span —
        // the node stays up. A degraded window extends the derate
        // horizon (clamped like any outage tail, so a near-horizon
        // window cannot derate steps the trace never demanded); a
        // stuck drain has no scale-down to wedge on a single fixed
        // node and is recorded as a no-op.
        if ev.kind == FaultKind::DegradedThroughput {
            let window_s = ev.outage_s.min((horizon_s - ev.at_s).max(0.0));
            *derate_until_s = derate_until_s.max(ev.at_s + window_s);
        }
        sink.event_fmt(NODE0, "gray", *now, || ev.kind.label().to_string());
        return;
    }
    if ev.kind == FaultKind::AttestationFailure {
        // The quote was rejected; re-handshake through the real session
        // state machine while the node is unavailable.
        let t0 = *now;
        attested_rehandshake_phased(handshake_seq, &mut |phase| {
            sink.event_fmt(NODE0, "handshake", t0, || phase.label().to_string());
        })
        // infallible: simulated attestation over an in-process channel cannot fail; crashes charge recovery time, not handshake errors
        .expect("re-handshake must recover the session");
        let outage_s = plan.policy.reattest_s.min((horizon_s - ev.at_s).max(0.0));
        *now += outage_s;
        *downtime_s += outage_s;
        sink.span_labeled(NODE0, SpanKind::Outage, t0, *now, Some(ev.kind.label()));
        return;
    }
    let outage_s = ev.outage_s.min((horizon_s - ev.at_s).max(0.0));
    if ev.kind.loses_state() {
        for victim in scheduler.drain_running() {
            let id = victim.request.id;
            let n = slab.bump_attempts(id);
            if n > plan.policy.max_retries {
                *aborted += 1;
                if sink.is_enabled() {
                    if let Some(c) = slab.take_cursor(id) {
                        sink.span(Scope::Request(id), SpanKind::DecodeLost, c, *now);
                    }
                    sink.event(Scope::Request(id), "abort", *now, String::new());
                }
            } else {
                *retries += 1;
                if sink.is_enabled() {
                    if let Some(c) = slab.cursor(id) {
                        sink.span(Scope::Request(id), SpanKind::DecodeLost, c, *now);
                        slab.set_cursor(id, *now);
                    }
                    sink.event(Scope::Request(id), "requeue", *now, format!("attempt {n}"));
                }
                retry_queue.push_keyed(
                    ev.at_s + outage_s + plan.policy.backoff_s(n),
                    id,
                    victim.request,
                );
            }
        }
    }
    // Both crash- and stall-class events hold the node for the outage.
    let t0 = *now;
    *now += outage_s;
    *downtime_s += outage_s;
    sink.span_labeled(NODE0, SpanKind::Outage, t0, *now, Some(ev.kind.label()));
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn build_report(
    arrivals: usize,
    useful_tokens: u64,
    makespan_s: f64,
    mut records: Vec<RequestRecord>,
    retries: u64,
    aborted: usize,
    downtime_s: f64,
    queue: &QueueStats,
    preemptions: u64,
    swap_out_bytes: f64,
    swap_in_bytes: f64,
) -> ServingReport {
    records.sort_by_key(|a| a.id);
    // The queue-wait mean uses the batcher's running sum, accumulated in
    // admission order — bit-identical to summing an unsorted full vector,
    // and immune to the sample cap bounding the percentile buffer below.
    #[allow(clippy::cast_precision_loss)]
    let queue_wait_mean_s = if queue.wait_count() == 0 {
        0.0
    } else {
        queue.wait_sum_s() / queue.wait_count() as f64
    };
    // Sort each latency vector exactly once; every percentile then reads
    // the sorted slice (the old helper cloned and re-sorted per call —
    // five sorts over three vectors per report).
    // infallible: latencies are differences of finite sim clocks
    let sort = |v: &mut Vec<f64>| v.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
    let mut waits = queue.wait_samples().to_vec();
    sort(&mut waits);
    let mut ttft: Vec<f64> = records.iter().map(|r| r.ttft_s).collect();
    sort(&mut ttft);
    let mut tpot: Vec<f64> = records.iter().map(|r| r.tpot_s).collect();
    sort(&mut tpot);
    let availability = if makespan_s > 0.0 {
        (1.0 - downtime_s / makespan_s).clamp(0.0, 1.0)
    } else {
        1.0
    };
    #[allow(clippy::cast_precision_loss)]
    let report = ServingReport {
        arrivals,
        completed: records.len(),
        retries,
        aborted,
        availability,
        makespan_s,
        goodput_tps: if records.is_empty() {
            0.0
        } else {
            useful_tokens as f64 / makespan_s.max(1e-9)
        },
        queue_depth_peak: queue.depth_peak,
        queue_wait_mean_s,
        queue_wait_p99_s: if waits.is_empty() {
            0.0
        } else {
            sorted_percentile(&waits, 0.99)
        },
        ttft_p50_s: if ttft.is_empty() {
            0.0
        } else {
            sorted_percentile(&ttft, 0.50)
        },
        ttft_p95_s: if ttft.is_empty() {
            0.0
        } else {
            sorted_percentile(&ttft, 0.95)
        },
        tpot_p50_s: if tpot.is_empty() {
            0.0
        } else {
            sorted_percentile(&tpot, 0.50)
        },
        tpot_p95_s: if tpot.is_empty() {
            0.0
        } else {
            sorted_percentile(&tpot, 0.95)
        },
        preemptions,
        swap_out_bytes,
        swap_in_bytes,
        records,
    };
    #[cfg(debug_assertions)]
    {
        let v = crate::invariants::check_serving(&report);
        debug_assert!(
            v.is_empty(),
            "serving invariants violated: {}",
            crate::invariants::describe(&v)
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultRates, RecoveryPolicy};
    use cllm_cost::SpotParams;
    use cllm_tee::platform::TeeKind;

    #[test]
    fn completes_all_requests() {
        let cfg = ServingConfig::small_test();
        let report = simulate_serving(&cfg, &CpuTeeConfig::bare_metal());
        assert_eq!(report.completed, report.arrivals);
        assert!(report.goodput_tps > 0.0);
        assert_eq!(report.retries, 0);
        assert_eq!(report.aborted, 0);
        assert!((report.availability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let cfg = ServingConfig::small_test();
        let a = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        let b = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn tee_raises_tail_latencies() {
        let cfg = ServingConfig::small_test();
        let bare = simulate_serving(&cfg, &CpuTeeConfig::bare_metal());
        let tdx = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        assert!(tdx.tpot_p50_s > bare.tpot_p50_s);
        assert!(tdx.ttft_p95_s >= bare.ttft_p95_s * 0.99);
        // The online overhead stays in the same regime as offline.
        let overhead = tdx.tpot_p50_s / bare.tpot_p50_s - 1.0;
        assert!(overhead < 0.30, "online TDX overhead {overhead}");
    }

    #[test]
    fn overload_grows_queueing_delay() {
        let light = simulate_serving(
            &ServingConfig {
                arrivals: ArrivalProcess {
                    rate_per_s: 0.3,
                    ..ServingConfig::small_test().arrivals
                },
                ..ServingConfig::small_test()
            },
            &CpuTeeConfig::tdx(),
        );
        let heavy = simulate_serving(
            &ServingConfig {
                arrivals: ArrivalProcess {
                    rate_per_s: 12.0,
                    ..ServingConfig::small_test().arrivals
                },
                ..ServingConfig::small_test()
            },
            &CpuTeeConfig::tdx(),
        );
        assert!(
            heavy.ttft_p95_s > 2.0 * light.ttft_p95_s,
            "heavy {} vs light {}",
            heavy.ttft_p95_s,
            light.ttft_p95_s
        );
    }

    #[test]
    fn ttft_exceeds_prefill_floor() {
        let cfg = ServingConfig::small_test();
        let report = simulate_serving(&cfg, &CpuTeeConfig::bare_metal());
        // TTFT includes at least the request's own prefill time.
        assert!(report.ttft_p50_s > 0.0);
        assert!(report.records.iter().all(|r| r.ttft_s > 0.0));
        assert!(report.records.iter().all(|r| r.e2e_s >= r.ttft_s));
    }

    #[test]
    fn batching_improves_goodput() {
        let mut solo = ServingConfig::small_test();
        solo.limits.max_batch = 1;
        let batched = ServingConfig::small_test();
        let s = simulate_serving(&solo, &CpuTeeConfig::tdx());
        let b = simulate_serving(&batched, &CpuTeeConfig::tdx());
        assert!(
            b.goodput_tps > s.goodput_tps,
            "batched {} !> solo {}",
            b.goodput_tps,
            s.goodput_tps
        );
    }

    #[test]
    fn zero_rate_returns_empty_report() {
        let cfg = ServingConfig {
            arrivals: ArrivalProcess {
                rate_per_s: 0.0,
                ..ServingConfig::small_test().arrivals
            },
            ..ServingConfig::small_test()
        };
        let report = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        assert_eq!(report.arrivals, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.aborted, 0);
        assert!(report.records.is_empty());
        // Every field is finite — no NaN leaks into downstream tables.
        for v in [
            report.makespan_s,
            report.goodput_tps,
            report.ttft_p50_s,
            report.ttft_p95_s,
            report.tpot_p50_s,
            report.tpot_p95_s,
            report.availability,
        ] {
            assert!(v.is_finite(), "non-finite field {v}");
        }
    }

    #[test]
    fn zero_duration_returns_empty_report() {
        let cfg = ServingConfig {
            duration_s: 0.0,
            ..ServingConfig::small_test()
        };
        let report = simulate_serving(&cfg, &CpuTeeConfig::bare_metal());
        assert_eq!(report.arrivals, 0);
        assert_eq!(report.completed, 0);
        assert!(report.goodput_tps.is_finite());
    }

    fn faulted_small(kind: TeeKind, seed: u64) -> ServingReport {
        let cfg = ServingConfig::small_test();
        let rates = FaultRates::for_platform(kind, &SpotParams::gcp_spot()).scaled(600.0);
        let plan = FaultPlan::seeded(&rates, cfg.duration_s, seed);
        simulate_serving_faulted(
            &cfg,
            &ServingNode::Cpu {
                tee: CpuTeeConfig::tdx(),
            },
            &plan,
        )
    }

    #[test]
    fn empty_plan_matches_fault_free_simulator() {
        let cfg = ServingConfig::small_test();
        let direct = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        let via_node = simulate_serving_faulted(
            &cfg,
            &ServingNode::Cpu {
                tee: CpuTeeConfig::tdx(),
            },
            &FaultPlan::none(),
        );
        assert_eq!(direct, via_node);
    }

    #[test]
    fn faults_conserve_requests() {
        for seed in [1, 7, 23] {
            let report = faulted_small(TeeKind::Tdx, seed);
            assert_eq!(
                report.completed + report.aborted,
                report.arrivals,
                "conservation violated at seed {seed}"
            );
        }
    }

    #[test]
    fn faults_degrade_availability_and_tails() {
        let clean = faulted_small(TeeKind::BareMetal, 5); // preemptions only
        let faulted = faulted_small(TeeKind::Sgx, 5);
        assert!(faulted.availability < 1.0, "faults must cost downtime");
        assert!(
            faulted.retries > 0 || faulted.downtime_like() > 0.0,
            "600x SGX rates must fire"
        );
        assert!(faulted.makespan_s >= clean.makespan_s * 0.5);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let a = faulted_small(TeeKind::Sgx, 9);
        let b = faulted_small(TeeKind::Sgx, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn retry_budget_bounds_attempts() {
        // With a zero retry budget, any request resident at a crash is
        // aborted. Scan seeds so a crash is guaranteed to land mid-flight
        // at least once; conservation must hold at every seed.
        let cfg = ServingConfig::small_test();
        let rates =
            FaultRates::for_platform(TeeKind::Sgx, &SpotParams::azure_spot_gpu()).scaled(2_000.0);
        let mut saw_abort = false;
        for seed in 0..16 {
            let plan =
                FaultPlan::seeded(&rates, cfg.duration_s, seed).with_policy(RecoveryPolicy {
                    max_retries: 0,
                    ..RecoveryPolicy::default()
                });
            let report = simulate_serving_faulted(
                &cfg,
                &ServingNode::Cpu {
                    tee: CpuTeeConfig::sgx(),
                },
                &plan,
            );
            assert_eq!(report.completed + report.aborted, report.arrivals);
            assert!(report.records.iter().all(|r| r.retries == 0));
            saw_abort |= report.aborted > 0;
        }
        assert!(saw_abort, "no seed produced a mid-flight crash abort");
    }

    impl ServingReport {
        /// Test helper: downtime implied by availability.
        fn downtime_like(&self) -> f64 {
            (1.0 - self.availability) * self.makespan_s
        }
    }

    #[test]
    fn traced_run_matches_untraced_report() {
        let cfg = ServingConfig::small_test();
        let rates = FaultRates::for_platform(TeeKind::Sgx, &SpotParams::gcp_spot()).scaled(600.0);
        let plan = FaultPlan::seeded(&rates, cfg.duration_s, 13);
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::sgx(),
        };
        let untraced = simulate_serving_faulted(&cfg, &node, &plan);
        let (traced, trace) = simulate_serving_traced(&cfg, &node, &plan);
        assert_eq!(untraced, traced, "tracing must not perturb the simulation");
        assert!(!trace.is_empty());
    }

    #[test]
    fn trace_conserves_time_and_latency() {
        let cfg = ServingConfig::small_test();
        let rates = FaultRates::for_platform(TeeKind::Sgx, &SpotParams::gcp_spot()).scaled(600.0);
        let plan = FaultPlan::seeded(&rates, cfg.duration_s, 13);
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::sgx(),
        };
        let (report, trace) = simulate_serving_traced(&cfg, &node, &plan);
        let check = cllm_obs::check(&trace, 1e-6);
        assert!(check.ok(), "conservation violated: {:?}", check.errors);

        // Node accounting matches the report exactly: one node, whose
        // makespan and outage time are what the report computed.
        let totals = cllm_obs::node_totals(&trace);
        assert_eq!(totals.len(), 1);
        assert!((totals[0].makespan_s - report.makespan_s).abs() < 1e-9);
        let downtime = (1.0 - report.availability) * report.makespan_s;
        assert!(
            (totals[0].outage_s - downtime).abs() < 1e-6,
            "outage {} vs downtime {}",
            totals[0].outage_s,
            downtime
        );

        // Every completed request's span chain sums to its recorded
        // end-to-end latency.
        let chains = cllm_obs::request_chains(&trace);
        for r in &report.records {
            let chain = chains
                .iter()
                .find(|c| c.id == r.id)
                .expect("completed request must be traced");
            assert!(
                (chain.total_s - r.e2e_s).abs() < 1e-6,
                "request {}: chain {} vs e2e {}",
                r.id,
                chain.total_s,
                r.e2e_s
            );
        }
    }

    #[test]
    fn attestation_faults_emit_handshake_phases() {
        use crate::faults::{FaultEvent, FaultKind, RecoveryPolicy};
        let cfg = ServingConfig::small_test();
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: 5.0,
                kind: FaultKind::AttestationFailure,
                outage_s: 0.0,
            }],
            policy: RecoveryPolicy::default(),
        };
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        };
        let (_, trace) = simulate_serving_traced(&cfg, &node, &plan);
        let phases: Vec<&str> = trace
            .events
            .iter()
            .filter(|e| e.name == "handshake")
            .map(|e| e.detail.as_str())
            .collect();
        assert_eq!(
            phases,
            [
                "challenge",
                "respond",
                "reject",
                "challenge",
                "respond",
                "verify",
                "channel"
            ],
            "fail-then-recover handshake must surface both attempts"
        );
    }

    #[test]
    fn degraded_throughput_slows_decode_without_downtime() {
        use crate::faults::{FaultEvent, FaultKind, RecoveryPolicy};
        let cfg = ServingConfig::small_test();
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        };
        let clean = simulate_serving_faulted(&cfg, &node, &FaultPlan::none());
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: 1.0,
                kind: FaultKind::DegradedThroughput,
                outage_s: 25.0,
            }],
            policy: RecoveryPolicy::default(),
        };
        let gray = simulate_serving_faulted(&cfg, &node, &plan);
        assert_eq!(gray.arrivals, clean.arrivals, "traffic is fault-blind");
        assert_eq!(gray.completed + gray.aborted, gray.arrivals);
        assert!(
            (gray.availability - 1.0).abs() < 1e-12,
            "a gray window charges no downtime (availability {})",
            gray.availability
        );
        // Light load lets idle jumps absorb wall-clock delay, so the
        // derate shows up in per-token decode latency, not makespan.
        assert!(
            gray.tpot_p95_s > clean.tpot_p95_s,
            "a 25 s derate window must slow decode: tpot p95 {} vs {}",
            gray.tpot_p95_s,
            clean.tpot_p95_s
        );
    }

    #[test]
    fn degraded_window_clamps_to_horizon() {
        // Mirror of the reattest_s clamp regression: an absurd window
        // length firing just before the end of the run must behave
        // exactly like one that ends at the horizon — the derate tail
        // cannot leak into the post-horizon drain.
        use crate::faults::{FaultEvent, FaultKind, RecoveryPolicy};
        let cfg = ServingConfig::small_test();
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        };
        let mk = |outage_s: f64| FaultPlan {
            events: vec![FaultEvent {
                at_s: cfg.duration_s - 0.5,
                kind: FaultKind::DegradedThroughput,
                outage_s,
            }],
            policy: RecoveryPolicy::default(),
        };
        let absurd = simulate_serving_faulted(&cfg, &node, &mk(1.0e9));
        let exact = simulate_serving_faulted(&cfg, &node, &mk(0.5));
        assert_eq!(
            absurd, exact,
            "a 1e9 s window at t=29.5 must clamp to the horizon"
        );
    }

    #[test]
    fn stuck_drain_is_inert_for_a_single_node() {
        // A fixed single node has no scale-down to wedge: StuckDrain
        // events are recorded for the trace but must not perturb the
        // report in any field.
        use crate::faults::{FaultEvent, FaultKind, RecoveryPolicy};
        let cfg = ServingConfig::small_test();
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        };
        let plan = FaultPlan {
            events: vec![
                FaultEvent {
                    at_s: 2.0,
                    kind: FaultKind::StuckDrain,
                    outage_s: 40.0,
                },
                FaultEvent {
                    at_s: cfg.duration_s - 0.1,
                    kind: FaultKind::StuckDrain,
                    outage_s: 1.0e9,
                },
            ],
            policy: RecoveryPolicy::default(),
        };
        let clean = simulate_serving_faulted(&cfg, &node, &FaultPlan::none());
        let stuck = simulate_serving_faulted(&cfg, &node, &plan);
        assert_eq!(stuck, clean);
    }

    #[test]
    fn queue_stats_surface_without_faults() {
        // Heavy load queues requests even in a fault-free run; the report
        // must expose depth and wait statistics for shedding decisions.
        let cfg = ServingConfig {
            arrivals: ArrivalProcess {
                rate_per_s: 12.0,
                ..ServingConfig::small_test().arrivals
            },
            ..ServingConfig::small_test()
        };
        let report = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        assert!(report.queue_depth_peak > 1, "overload must queue");
        assert!(report.queue_wait_mean_s > 0.0);
        assert!(report.queue_wait_p99_s >= report.queue_wait_mean_s);
        // Light load keeps the fields finite and small but present.
        let light = simulate_serving(&ServingConfig::small_test(), &CpuTeeConfig::tdx());
        assert!(light.queue_wait_mean_s.is_finite());
        assert!(light.queue_depth_peak >= 1);
    }

    #[test]
    fn outage_past_horizon_is_clamped() {
        // A preemption at 29 s whose raw outage runs 1000 s past the 30 s
        // horizon must charge only one second of downtime: availability
        // stays pinned at <= 1.0 by construction and the makespan is not
        // inflated by unavailable time no request could observe.
        use crate::faults::{FaultEvent, FaultKind, RecoveryPolicy};
        let cfg = ServingConfig::small_test();
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: 29.0,
                kind: FaultKind::SpotPreemption,
                outage_s: 1000.0,
            }],
            policy: RecoveryPolicy::default(),
        };
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        };
        let report = simulate_serving_faulted(&cfg, &node, &plan);
        assert_eq!(report.completed + report.aborted, report.arrivals);
        assert!(
            report.makespan_s < 100.0,
            "makespan {} carries over-horizon downtime",
            report.makespan_s
        );
        assert!(report.availability <= 1.0);
        assert!(
            report.availability > 0.9,
            "availability {} charged beyond the horizon",
            report.availability
        );
    }

    #[test]
    fn attestation_outage_past_horizon_is_clamped() {
        // Regression: an attestation failure charged the full 0.35 s
        // re-handshake toll even when it fired within the last fraction
        // of a second of the horizon — the one fault kind exempted from
        // the clamp every other kind gets. A failure 0.1 s before the
        // 30 s horizon must charge at most 0.1 s of downtime.
        use crate::faults::{FaultEvent, FaultKind, RecoveryPolicy};
        let cfg = ServingConfig::small_test();
        let policy = RecoveryPolicy::default();
        assert!(policy.reattest_s > 0.1, "toll must overhang for the test");
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        };
        let event_at = |at_s: f64| FaultPlan {
            events: vec![FaultEvent {
                at_s,
                kind: FaultKind::AttestationFailure,
                outage_s: 0.0,
            }],
            policy,
        };
        // Baseline: the same failure mid-trace charges the full toll.
        let mid = simulate_serving_faulted(&cfg, &node, &event_at(5.0));
        let mid_downtime = (1.0 - mid.availability) * mid.makespan_s;
        assert!(
            (mid_downtime - policy.reattest_s).abs() < 1e-9,
            "mid-trace failure charges the whole toll, got {mid_downtime}"
        );
        let late = simulate_serving_faulted(&cfg, &node, &event_at(cfg.duration_s - 0.1));
        let late_downtime = (1.0 - late.availability) * late.makespan_s;
        assert!(
            late_downtime <= 0.1 + 1e-9,
            "near-horizon failure charged {late_downtime} s, clamp allows 0.1 s"
        );
        assert_eq!(late.completed + late.aborted, late.arrivals);
    }

    #[test]
    fn retry_delivery_order_is_eligibility_then_id() {
        // One crash displaces the whole running batch at once: every
        // victim shares the same outage and (first-attempt) backoff, so
        // all become eligible at the same instant and must re-enter the
        // queue in request-id order. FIFO admission then prefils them
        // sequentially, so among the retried victims first tokens (and
        // TTFTs measured from a shared history) rank by id.
        use crate::faults::{FaultEvent, FaultKind, RecoveryPolicy};
        let cfg = ServingConfig {
            arrivals: ArrivalProcess {
                rate_per_s: 3.0,
                ..ServingConfig::small_test().arrivals
            },
            ..ServingConfig::small_test()
        };
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: 10.0,
                kind: FaultKind::EnclaveCrash,
                outage_s: 1.0,
            }],
            policy: RecoveryPolicy::default(),
        };
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        };
        let report = simulate_serving_faulted(&cfg, &node, &plan);
        assert!(report.retries >= 2, "crash must displace a real batch");
        let victims: Vec<&RequestRecord> =
            report.records.iter().filter(|r| r.retries == 1).collect();
        assert!(victims.len() >= 2);
        // Records are id-sorted. Same-eligibility victims re-enter the
        // FIFO queue in id order, so their first tokens after the crash
        // arrive in id order too: TTFT must be non-decreasing across the
        // retried cohort.
        for w in victims.windows(2) {
            assert!(
                w[0].ttft_s <= w[1].ttft_s + 1e-12,
                "victim {} got its first token after victim {}: delivery order broke id ordering",
                w[0].id,
                w[1].id
            );
        }
    }
}
