//! The serving event loop.
//!
//! Time advances iteration by iteration: at each boundary the scheduler
//! admits waiting requests (charging their prefill), then the whole batch
//! performs one decode step priced by the calibrated `cllm-perf` roofline
//! under the chosen TEE. Per-request records capture time to first token
//! (TTFT) and time per output token (TPOT).
//!
//! # Faults and recovery
//!
//! [`simulate_serving_faulted`] additionally consumes a
//! [`FaultPlan`]: stall-class events freeze the
//! node for their outage window, crash-class events destroy the running
//! batch's KV caches (victims re-queue under bounded retry with
//! exponential backoff, paying a fresh attested handshake on
//! re-admission, and are aborted once the retry budget is spent), and
//! attestation failures drive a real fail-then-recover handshake through
//! `cllm_tee::session`. An **empty plan takes no fault branch**:
//! [`simulate_serving`] delegates to the faulted simulator with
//! [`FaultPlan::none`] and is
//! byte-identical to the historic fault-free loop.

use crate::faults::{attested_rehandshake_phased, FaultEvent, FaultPlan};
use crate::scheduler::{ContinuousBatcher, QueueStats, SchedulerLimits};
use crate::slo::{percentile_of, ServingReport};
use crate::workload::{ArrivalProcess, Request};
use cllm_hw::{DType, GpuModel};
use cllm_obs::{Scope, SpanKind, Trace, TraceSink};
use cllm_perf::CpuTarget;
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig};
use cllm_workload::{zoo, ModelConfig};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// Single-node simulations always trace as node 0.
const NODE0: Scope = Scope::Node(0);

/// One completed request's timing record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id.
    pub id: u64,
    /// Time to first token (queueing + prefill), seconds. For retried
    /// requests this spans every failed attempt: the clock starts at the
    /// original arrival.
    pub ttft_s: f64,
    /// Mean time per output token after the first, seconds.
    pub tpot_s: f64,
    /// End-to-end completion time, seconds.
    pub e2e_s: f64,
    /// Times this request was re-queued after losing its node.
    pub retries: u32,
}

/// Serving-simulation configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Workload model whose costs are simulated.
    pub model: ModelConfig,
    /// Data type.
    pub dtype: DType,
    /// Execution target (used by CPU nodes; GPU nodes carry their own
    /// hardware model).
    pub target: CpuTarget,
    /// Scheduler limits.
    pub limits: SchedulerLimits,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Trace horizon, seconds of arrivals.
    pub duration_s: f64,
}

impl ServingConfig {
    /// A small, fast configuration for tests: Llama2-7B shapes at a light
    /// load on one EMR2 socket.
    #[must_use]
    pub fn small_test() -> Self {
        ServingConfig {
            model: zoo::llama2_7b(),
            dtype: DType::Bf16,
            target: CpuTarget::emr2_single_socket(),
            limits: SchedulerLimits {
                max_batch: 16,
                kv_budget_bytes: 64.0 * cllm_hw::GIB,
            },
            arrivals: ArrivalProcess {
                rate_per_s: 1.0,
                prompt_range: (32, 256),
                output_range: (8, 64),
                seed: 11,
            },
            duration_s: 30.0,
        }
    }

    /// A production-like configuration (heavier load, chat shapes).
    #[must_use]
    pub fn chat_production(rate_per_s: f64) -> Self {
        ServingConfig {
            arrivals: ArrivalProcess::chat(rate_per_s, 42),
            duration_s: 120.0,
            ..Self::small_test()
        }
    }
}

/// The hardware a serving simulation runs on: per-step prefill and
/// decode prices come from the matching `cllm-perf` roofline, so every
/// TEE mechanism shapes the tail on CPUs and cGPUs alike.
#[derive(Debug, Clone)]
pub enum ServingNode {
    /// A CPU deployment; steps are priced on the config's
    /// [`ServingConfig::target`].
    Cpu {
        /// CPU TEE platform (bare metal, VM, TDX, SEV-SNP, SGX).
        tee: CpuTeeConfig,
    },
    /// A GPU deployment; the config's CPU target is ignored.
    Gpu {
        /// GPU hardware model.
        gpu: GpuModel,
        /// GPU TEE mode (native or confidential).
        tee: GpuTeeConfig,
    },
}

impl ServingNode {
    /// Prefill time for one request of `prompt_tokens` on this node.
    #[must_use]
    pub fn prefill_time_s(&self, cfg: &ServingConfig, prompt_tokens: u64) -> f64 {
        match self {
            ServingNode::Cpu { tee } => {
                cllm_perf::prefill_time_s(&cfg.model, cfg.dtype, &cfg.target, tee, 1, prompt_tokens)
            }
            ServingNode::Gpu { gpu, tee } => {
                cllm_perf::gpu_prefill_time_s(&cfg.model, cfg.dtype, gpu, tee, 1, prompt_tokens)
            }
        }
    }

    /// One decode iteration for `batch` sequences at `context` tokens.
    #[must_use]
    pub fn decode_step_time_s(&self, cfg: &ServingConfig, batch: u64, context: u64) -> f64 {
        match self {
            ServingNode::Cpu { tee } => cllm_perf::decode_step_time_s(
                &cfg.model,
                cfg.dtype,
                &cfg.target,
                tee,
                batch,
                context,
            ),
            ServingNode::Gpu { gpu, tee } => {
                cllm_perf::gpu_decode_step_time_s(&cfg.model, cfg.dtype, gpu, tee, batch, context)
            }
        }
    }
}

/// A request waiting out its backoff after losing its node.
#[derive(Debug, Clone, Copy)]
struct RetryEntry {
    request: Request,
    eligible_s: f64,
}

/// Run the discrete-event serving simulation under `tee` with no faults.
///
/// Degenerate configurations (non-positive arrival rate or horizon, or a
/// trace that happens to contain no arrivals) return an empty, NaN-free
/// [`ServingReport`] instead of panicking.
#[must_use]
pub fn simulate_serving(cfg: &ServingConfig, tee: &CpuTeeConfig) -> ServingReport {
    simulate_serving_faulted(
        cfg,
        &ServingNode::Cpu { tee: tee.clone() },
        &FaultPlan::none(),
    )
}

/// Run the discrete-event serving simulation on `node` under `plan`.
///
/// The loop applies every scheduled [`FaultEvent`]
/// at the first iteration boundary at or after its timestamp (outages
/// serialize with compute, which is how a single-node deployment
/// experiences them):
///
/// * **stall-class** — the clock and downtime advance by the outage;
/// * **crash-class** — the running batch is drained; each victim either
///   re-queues (attempt count below
///   [`RecoveryPolicy::max_retries`](crate::faults::RecoveryPolicy),
///   eligible after the outage plus exponential backoff) or is aborted;
/// * **attestation failure** — a fail-then-recover handshake runs through
///   the real `cllm_tee::session` machinery and the node pays
///   [`RecoveryPolicy::reattest_s`](crate::faults::RecoveryPolicy).
///
/// Re-admitted victims pay a fresh attested handshake before their
/// (repeated) prefill. The report satisfies the conservation invariant
/// `completed + aborted == arrivals`.
#[must_use]
pub fn simulate_serving_faulted(
    cfg: &ServingConfig,
    node: &ServingNode,
    plan: &FaultPlan,
) -> ServingReport {
    run_faulted(cfg, node, plan, &mut TraceSink::disabled())
}

/// Traced twin of [`simulate_serving_faulted`]: byte-identical report
/// (span emission only *reads* the simulated clock; it never changes the
/// float arithmetic or branch structure), plus the recorded single-lane
/// [`Trace`].
///
/// The trace tiles the node's timeline — every clock advance emits
/// exactly one node-scoped span, so `busy + idle + outage == makespan`
/// holds by construction — and chains each request's spans gaplessly
/// from arrival to final token (or abort), so the per-request span sum
/// equals its end-to-end latency.
#[must_use]
pub fn simulate_serving_traced(
    cfg: &ServingConfig,
    node: &ServingNode,
    plan: &FaultPlan,
) -> (ServingReport, Trace) {
    let mut sink = TraceSink::new();
    let report = run_faulted(cfg, node, plan, &mut sink);
    (report, sink.finish())
}

fn run_faulted(
    cfg: &ServingConfig,
    node: &ServingNode,
    plan: &FaultPlan,
    sink: &mut TraceSink,
) -> ServingReport {
    if cfg.arrivals.rate_per_s <= 0.0 || cfg.duration_s <= 0.0 {
        return build_report(0, 0, 0.0, Vec::new(), 0, 0, 0.0, &QueueStats::default());
    }
    let trace = cfg.arrivals.trace(cfg.duration_s);
    if trace.is_empty() {
        return build_report(0, 0, 0.0, Vec::new(), 0, 0, 0.0, &QueueStats::default());
    }
    let mut pending: VecDeque<Request> = trace.iter().copied().collect();
    let total_arrivals = pending.len();
    let mut scheduler = ContinuousBatcher::new(cfg.limits);
    let mut retry_queue: Vec<RetryEntry> = Vec::new();
    let mut attempts_of: HashMap<u64, u32> = HashMap::new();
    let mut now = 0.0f64;
    let mut records: Vec<RequestRecord> = Vec::with_capacity(total_arrivals);
    let mut useful_tokens = 0u64;
    let mut retries = 0u64;
    let mut aborted = 0usize;
    let mut downtime_s = 0.0f64;
    let mut next_event = 0usize;
    let mut handshake_seq = 0u64;
    // Trace bookkeeping: where each request's next span starts (see
    // `simulate_serving_traced`). Untouched when the sink is disabled.
    let mut req_cursor: HashMap<u64, f64> = HashMap::new();

    loop {
        // Apply faults that have fired by `now`, oldest first.
        while plan.events.get(next_event).is_some_and(|e| e.at_s <= now) {
            let ev = plan.events[next_event];
            next_event += 1;
            handshake_seq += 1;
            apply_fault(
                &ev,
                plan,
                cfg.duration_s,
                handshake_seq,
                &mut scheduler,
                &mut retry_queue,
                &mut attempts_of,
                &mut now,
                &mut downtime_s,
                &mut retries,
                &mut aborted,
                sink,
                &mut req_cursor,
            );
        }

        // Deliver arrivals that have happened by `now`.
        while pending.front().is_some_and(|r| r.arrival_s <= now) {
            let r = pending.pop_front().expect("front checked");
            if sink.is_enabled() {
                req_cursor.insert(r.id, r.arrival_s);
            }
            scheduler.enqueue(r);
        }
        // Deliver retried requests whose backoff has elapsed, in
        // deterministic (eligibility, id) order.
        loop {
            let next = retry_queue
                .iter()
                .enumerate()
                .filter(|(_, e)| e.eligible_s <= now)
                .min_by(|(_, a), (_, b)| {
                    a.eligible_s
                        .partial_cmp(&b.eligible_s)
                        .expect("finite eligibility")
                        .then(a.request.id.cmp(&b.request.id))
                })
                .map(|(i, _)| i);
            match next {
                // The retry's queue-wait clock starts at re-delivery, not
                // at its original arrival — the spent time is already in
                // its TTFT.
                Some(i) => {
                    let entry = retry_queue.swap_remove(i);
                    if sink.is_enabled() {
                        if let Some(c) = req_cursor.get_mut(&entry.request.id) {
                            sink.span(Scope::Request(entry.request.id), SpanKind::Backoff, *c, now);
                            *c = now;
                        }
                    }
                    scheduler.enqueue_at(entry.request, now);
                }
                None => break,
            }
        }

        // If nothing is runnable, jump to the next thing that can happen:
        // an arrival, a retry becoming eligible, or a fault firing first.
        if scheduler.idle() {
            let mut target = f64::INFINITY;
            if let Some(next) = pending.front() {
                target = target.min(next.arrival_s);
            }
            for e in &retry_queue {
                target = target.min(e.eligible_s);
            }
            if !target.is_finite() {
                break; // no work left anywhere
            }
            let idle_from = now;
            match plan.events.get(next_event) {
                Some(e) if e.at_s < target => now = e.at_s,
                _ => now = target,
            }
            sink.span(NODE0, SpanKind::Idle, idle_from, now);
            continue;
        }

        // Admission + prefill at the iteration boundary. A re-queued
        // victim must re-attest its session before its repeated prefill.
        let admitted = scheduler.admit(&cfg.model, cfg.dtype, now);
        for r in admitted {
            if sink.is_enabled() {
                if let Some(c) = req_cursor.get(&r.id).copied() {
                    sink.span(Scope::Request(r.id), SpanKind::QueueWait, c, now);
                }
            }
            if attempts_of.get(&r.id).copied().unwrap_or(0) > 0 {
                let t0 = now;
                now += plan.policy.reattest_s;
                sink.span(NODE0, SpanKind::Reattest, t0, now);
                sink.span(Scope::Request(r.id), SpanKind::Reattest, t0, now);
            }
            let t_prefill = node.prefill_time_s(cfg, r.prompt_tokens);
            let t0 = now;
            now += t_prefill;
            sink.span(NODE0, SpanKind::Prefill, t0, now);
            sink.span(Scope::Request(r.id), SpanKind::Prefill, t0, now);
            if sink.is_enabled() {
                req_cursor.insert(r.id, now);
            }
            scheduler.start(r, now);
        }

        if scheduler.running().is_empty() {
            continue;
        }

        // One decode iteration for the whole running batch at its mean
        // context length.
        let batch = scheduler.running().len() as u64;
        #[allow(clippy::cast_precision_loss)]
        let mean_context = (scheduler.running().iter().map(|a| a.context()).sum::<u64>() as f64
            / batch as f64)
            .round() as u64;
        let t0 = now;
        now += node.decode_step_time_s(cfg, batch, mean_context);
        sink.span(NODE0, SpanKind::Decode, t0, now);

        for fin in scheduler.step() {
            let ttft = fin.first_token_s - fin.request.arrival_s;
            let decode_span = now - fin.first_token_s;
            #[allow(clippy::cast_precision_loss)]
            let tpot = decode_span / (fin.request.output_tokens.saturating_sub(1).max(1)) as f64;
            useful_tokens += fin.request.output_tokens;
            if sink.is_enabled() {
                if let Some(c) = req_cursor.remove(&fin.request.id) {
                    sink.span(Scope::Request(fin.request.id), SpanKind::Decode, c, now);
                }
            }
            records.push(RequestRecord {
                id: fin.request.id,
                ttft_s: ttft,
                tpot_s: tpot,
                e2e_s: now - fin.request.arrival_s,
                retries: attempts_of.get(&fin.request.id).copied().unwrap_or(0),
            });
        }
    }

    build_report(
        total_arrivals,
        useful_tokens,
        now,
        records,
        retries,
        aborted,
        downtime_s,
        scheduler.queue_stats(),
    )
}

/// Apply one fault event at an iteration boundary. An outage whose tail
/// extends past the arrival horizon `horizon_s` is clamped at the
/// horizon: the simulation stops charging unavailable time beyond the
/// last instant the trace could still demand service, so a late long
/// preemption cannot inflate the makespan (and depress availability)
/// with downtime no request ever observed.
#[allow(clippy::too_many_arguments)]
fn apply_fault(
    ev: &FaultEvent,
    plan: &FaultPlan,
    horizon_s: f64,
    handshake_seq: u64,
    scheduler: &mut ContinuousBatcher,
    retry_queue: &mut Vec<RetryEntry>,
    attempts_of: &mut HashMap<u64, u32>,
    now: &mut f64,
    downtime_s: &mut f64,
    retries: &mut u64,
    aborted: &mut usize,
    sink: &mut TraceSink,
    req_cursor: &mut HashMap<u64, f64>,
) {
    use crate::faults::FaultKind;
    if ev.kind == FaultKind::AttestationFailure {
        // The quote was rejected; re-handshake through the real session
        // state machine while the node is unavailable.
        let t0 = *now;
        attested_rehandshake_phased(handshake_seq, &mut |phase| {
            sink.event(NODE0, "handshake", t0, phase.label().to_string());
        })
        .expect("re-handshake must recover the session");
        *now += plan.policy.reattest_s;
        *downtime_s += plan.policy.reattest_s;
        sink.span_labeled(NODE0, SpanKind::Outage, t0, *now, Some(ev.kind.label()));
        return;
    }
    let outage_s = ev.outage_s.min((horizon_s - ev.at_s).max(0.0));
    if ev.kind.loses_state() {
        for victim in scheduler.drain_running() {
            let id = victim.request.id;
            let n = attempts_of.entry(id).or_insert(0);
            *n += 1;
            if *n > plan.policy.max_retries {
                *aborted += 1;
                if sink.is_enabled() {
                    if let Some(c) = req_cursor.remove(&id) {
                        sink.span(Scope::Request(id), SpanKind::DecodeLost, c, *now);
                    }
                    sink.event(Scope::Request(id), "abort", *now, String::new());
                }
            } else {
                *retries += 1;
                if sink.is_enabled() {
                    if let Some(c) = req_cursor.get_mut(&id) {
                        sink.span(Scope::Request(id), SpanKind::DecodeLost, *c, *now);
                        *c = *now;
                    }
                    sink.event(Scope::Request(id), "requeue", *now, format!("attempt {n}"));
                }
                retry_queue.push(RetryEntry {
                    request: victim.request,
                    eligible_s: ev.at_s + outage_s + plan.policy.backoff_s(*n),
                });
            }
        }
    }
    // Both crash- and stall-class events hold the node for the outage.
    let t0 = *now;
    *now += outage_s;
    *downtime_s += outage_s;
    sink.span_labeled(NODE0, SpanKind::Outage, t0, *now, Some(ev.kind.label()));
}

#[allow(clippy::too_many_arguments)]
fn build_report(
    arrivals: usize,
    useful_tokens: u64,
    makespan_s: f64,
    mut records: Vec<RequestRecord>,
    retries: u64,
    aborted: usize,
    downtime_s: f64,
    queue: &QueueStats,
) -> ServingReport {
    records.sort_by_key(|a| a.id);
    let ttft: Vec<f64> = records.iter().map(|r| r.ttft_s).collect();
    let tpot: Vec<f64> = records.iter().map(|r| r.tpot_s).collect();
    let availability = if makespan_s > 0.0 {
        (1.0 - downtime_s / makespan_s).clamp(0.0, 1.0)
    } else {
        1.0
    };
    #[allow(clippy::cast_precision_loss)]
    ServingReport {
        arrivals,
        completed: records.len(),
        retries,
        aborted,
        availability,
        makespan_s,
        goodput_tps: if records.is_empty() {
            0.0
        } else {
            useful_tokens as f64 / makespan_s.max(1e-9)
        },
        queue_depth_peak: queue.depth_peak,
        queue_wait_mean_s: if queue.waits_s.is_empty() {
            0.0
        } else {
            queue.waits_s.iter().sum::<f64>() / queue.waits_s.len() as f64
        },
        queue_wait_p99_s: if queue.waits_s.is_empty() {
            0.0
        } else {
            percentile_of(&queue.waits_s, 0.99)
        },
        ttft_p50_s: if ttft.is_empty() {
            0.0
        } else {
            percentile_of(&ttft, 0.50)
        },
        ttft_p95_s: if ttft.is_empty() {
            0.0
        } else {
            percentile_of(&ttft, 0.95)
        },
        tpot_p50_s: if tpot.is_empty() {
            0.0
        } else {
            percentile_of(&tpot, 0.50)
        },
        tpot_p95_s: if tpot.is_empty() {
            0.0
        } else {
            percentile_of(&tpot, 0.95)
        },
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::{FaultPlan, FaultRates, RecoveryPolicy};
    use cllm_cost::SpotParams;
    use cllm_tee::platform::TeeKind;

    #[test]
    fn completes_all_requests() {
        let cfg = ServingConfig::small_test();
        let report = simulate_serving(&cfg, &CpuTeeConfig::bare_metal());
        assert_eq!(report.completed, report.arrivals);
        assert!(report.goodput_tps > 0.0);
        assert_eq!(report.retries, 0);
        assert_eq!(report.aborted, 0);
        assert!((report.availability - 1.0).abs() < 1e-12);
    }

    #[test]
    fn deterministic() {
        let cfg = ServingConfig::small_test();
        let a = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        let b = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn tee_raises_tail_latencies() {
        let cfg = ServingConfig::small_test();
        let bare = simulate_serving(&cfg, &CpuTeeConfig::bare_metal());
        let tdx = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        assert!(tdx.tpot_p50_s > bare.tpot_p50_s);
        assert!(tdx.ttft_p95_s >= bare.ttft_p95_s * 0.99);
        // The online overhead stays in the same regime as offline.
        let overhead = tdx.tpot_p50_s / bare.tpot_p50_s - 1.0;
        assert!(overhead < 0.30, "online TDX overhead {overhead}");
    }

    #[test]
    fn overload_grows_queueing_delay() {
        let light = simulate_serving(
            &ServingConfig {
                arrivals: ArrivalProcess {
                    rate_per_s: 0.3,
                    ..ServingConfig::small_test().arrivals
                },
                ..ServingConfig::small_test()
            },
            &CpuTeeConfig::tdx(),
        );
        let heavy = simulate_serving(
            &ServingConfig {
                arrivals: ArrivalProcess {
                    rate_per_s: 12.0,
                    ..ServingConfig::small_test().arrivals
                },
                ..ServingConfig::small_test()
            },
            &CpuTeeConfig::tdx(),
        );
        assert!(
            heavy.ttft_p95_s > 2.0 * light.ttft_p95_s,
            "heavy {} vs light {}",
            heavy.ttft_p95_s,
            light.ttft_p95_s
        );
    }

    #[test]
    fn ttft_exceeds_prefill_floor() {
        let cfg = ServingConfig::small_test();
        let report = simulate_serving(&cfg, &CpuTeeConfig::bare_metal());
        // TTFT includes at least the request's own prefill time.
        assert!(report.ttft_p50_s > 0.0);
        assert!(report.records.iter().all(|r| r.ttft_s > 0.0));
        assert!(report.records.iter().all(|r| r.e2e_s >= r.ttft_s));
    }

    #[test]
    fn batching_improves_goodput() {
        let mut solo = ServingConfig::small_test();
        solo.limits.max_batch = 1;
        let batched = ServingConfig::small_test();
        let s = simulate_serving(&solo, &CpuTeeConfig::tdx());
        let b = simulate_serving(&batched, &CpuTeeConfig::tdx());
        assert!(
            b.goodput_tps > s.goodput_tps,
            "batched {} !> solo {}",
            b.goodput_tps,
            s.goodput_tps
        );
    }

    #[test]
    fn zero_rate_returns_empty_report() {
        let cfg = ServingConfig {
            arrivals: ArrivalProcess {
                rate_per_s: 0.0,
                ..ServingConfig::small_test().arrivals
            },
            ..ServingConfig::small_test()
        };
        let report = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        assert_eq!(report.arrivals, 0);
        assert_eq!(report.completed, 0);
        assert_eq!(report.aborted, 0);
        assert!(report.records.is_empty());
        // Every field is finite — no NaN leaks into downstream tables.
        for v in [
            report.makespan_s,
            report.goodput_tps,
            report.ttft_p50_s,
            report.ttft_p95_s,
            report.tpot_p50_s,
            report.tpot_p95_s,
            report.availability,
        ] {
            assert!(v.is_finite(), "non-finite field {v}");
        }
    }

    #[test]
    fn zero_duration_returns_empty_report() {
        let cfg = ServingConfig {
            duration_s: 0.0,
            ..ServingConfig::small_test()
        };
        let report = simulate_serving(&cfg, &CpuTeeConfig::bare_metal());
        assert_eq!(report.arrivals, 0);
        assert_eq!(report.completed, 0);
        assert!(report.goodput_tps.is_finite());
    }

    fn faulted_small(kind: TeeKind, seed: u64) -> ServingReport {
        let cfg = ServingConfig::small_test();
        let rates = FaultRates::for_platform(kind, &SpotParams::gcp_spot()).scaled(600.0);
        let plan = FaultPlan::seeded(&rates, cfg.duration_s, seed);
        simulate_serving_faulted(
            &cfg,
            &ServingNode::Cpu {
                tee: CpuTeeConfig::tdx(),
            },
            &plan,
        )
    }

    #[test]
    fn empty_plan_matches_fault_free_simulator() {
        let cfg = ServingConfig::small_test();
        let direct = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        let via_node = simulate_serving_faulted(
            &cfg,
            &ServingNode::Cpu {
                tee: CpuTeeConfig::tdx(),
            },
            &FaultPlan::none(),
        );
        assert_eq!(direct, via_node);
    }

    #[test]
    fn faults_conserve_requests() {
        for seed in [1, 7, 23] {
            let report = faulted_small(TeeKind::Tdx, seed);
            assert_eq!(
                report.completed + report.aborted,
                report.arrivals,
                "conservation violated at seed {seed}"
            );
        }
    }

    #[test]
    fn faults_degrade_availability_and_tails() {
        let clean = faulted_small(TeeKind::BareMetal, 5); // preemptions only
        let faulted = faulted_small(TeeKind::Sgx, 5);
        assert!(faulted.availability < 1.0, "faults must cost downtime");
        assert!(
            faulted.retries > 0 || faulted.downtime_like() > 0.0,
            "600x SGX rates must fire"
        );
        assert!(faulted.makespan_s >= clean.makespan_s * 0.5);
    }

    #[test]
    fn faulted_runs_are_deterministic() {
        let a = faulted_small(TeeKind::Sgx, 9);
        let b = faulted_small(TeeKind::Sgx, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn retry_budget_bounds_attempts() {
        // With a zero retry budget, any request resident at a crash is
        // aborted. Scan seeds so a crash is guaranteed to land mid-flight
        // at least once; conservation must hold at every seed.
        let cfg = ServingConfig::small_test();
        let rates =
            FaultRates::for_platform(TeeKind::Sgx, &SpotParams::azure_spot_gpu()).scaled(2_000.0);
        let mut saw_abort = false;
        for seed in 0..16 {
            let plan =
                FaultPlan::seeded(&rates, cfg.duration_s, seed).with_policy(RecoveryPolicy {
                    max_retries: 0,
                    ..RecoveryPolicy::default()
                });
            let report = simulate_serving_faulted(
                &cfg,
                &ServingNode::Cpu {
                    tee: CpuTeeConfig::sgx(),
                },
                &plan,
            );
            assert_eq!(report.completed + report.aborted, report.arrivals);
            assert!(report.records.iter().all(|r| r.retries == 0));
            saw_abort |= report.aborted > 0;
        }
        assert!(saw_abort, "no seed produced a mid-flight crash abort");
    }

    impl ServingReport {
        /// Test helper: downtime implied by availability.
        fn downtime_like(&self) -> f64 {
            (1.0 - self.availability) * self.makespan_s
        }
    }

    #[test]
    fn traced_run_matches_untraced_report() {
        let cfg = ServingConfig::small_test();
        let rates = FaultRates::for_platform(TeeKind::Sgx, &SpotParams::gcp_spot()).scaled(600.0);
        let plan = FaultPlan::seeded(&rates, cfg.duration_s, 13);
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::sgx(),
        };
        let untraced = simulate_serving_faulted(&cfg, &node, &plan);
        let (traced, trace) = simulate_serving_traced(&cfg, &node, &plan);
        assert_eq!(untraced, traced, "tracing must not perturb the simulation");
        assert!(!trace.is_empty());
    }

    #[test]
    fn trace_conserves_time_and_latency() {
        let cfg = ServingConfig::small_test();
        let rates = FaultRates::for_platform(TeeKind::Sgx, &SpotParams::gcp_spot()).scaled(600.0);
        let plan = FaultPlan::seeded(&rates, cfg.duration_s, 13);
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::sgx(),
        };
        let (report, trace) = simulate_serving_traced(&cfg, &node, &plan);
        let check = cllm_obs::check(&trace, 1e-6);
        assert!(check.ok(), "conservation violated: {:?}", check.errors);

        // Node accounting matches the report exactly: one node, whose
        // makespan and outage time are what the report computed.
        let totals = cllm_obs::node_totals(&trace);
        assert_eq!(totals.len(), 1);
        assert!((totals[0].makespan_s - report.makespan_s).abs() < 1e-9);
        let downtime = (1.0 - report.availability) * report.makespan_s;
        assert!(
            (totals[0].outage_s - downtime).abs() < 1e-6,
            "outage {} vs downtime {}",
            totals[0].outage_s,
            downtime
        );

        // Every completed request's span chain sums to its recorded
        // end-to-end latency.
        let chains = cllm_obs::request_chains(&trace);
        for r in &report.records {
            let chain = chains
                .iter()
                .find(|c| c.id == r.id)
                .expect("completed request must be traced");
            assert!(
                (chain.total_s - r.e2e_s).abs() < 1e-6,
                "request {}: chain {} vs e2e {}",
                r.id,
                chain.total_s,
                r.e2e_s
            );
        }
    }

    #[test]
    fn attestation_faults_emit_handshake_phases() {
        use crate::faults::{FaultEvent, FaultKind, RecoveryPolicy};
        let cfg = ServingConfig::small_test();
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: 5.0,
                kind: FaultKind::AttestationFailure,
                outage_s: 0.0,
            }],
            policy: RecoveryPolicy::default(),
        };
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        };
        let (_, trace) = simulate_serving_traced(&cfg, &node, &plan);
        let phases: Vec<&str> = trace
            .events
            .iter()
            .filter(|e| e.name == "handshake")
            .map(|e| e.detail.as_str())
            .collect();
        assert_eq!(
            phases,
            [
                "challenge",
                "respond",
                "reject",
                "challenge",
                "respond",
                "verify",
                "channel"
            ],
            "fail-then-recover handshake must surface both attempts"
        );
    }

    #[test]
    fn queue_stats_surface_without_faults() {
        // Heavy load queues requests even in a fault-free run; the report
        // must expose depth and wait statistics for shedding decisions.
        let cfg = ServingConfig {
            arrivals: ArrivalProcess {
                rate_per_s: 12.0,
                ..ServingConfig::small_test().arrivals
            },
            ..ServingConfig::small_test()
        };
        let report = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        assert!(report.queue_depth_peak > 1, "overload must queue");
        assert!(report.queue_wait_mean_s > 0.0);
        assert!(report.queue_wait_p99_s >= report.queue_wait_mean_s);
        // Light load keeps the fields finite and small but present.
        let light = simulate_serving(&ServingConfig::small_test(), &CpuTeeConfig::tdx());
        assert!(light.queue_wait_mean_s.is_finite());
        assert!(light.queue_depth_peak >= 1);
    }

    #[test]
    fn outage_past_horizon_is_clamped() {
        // A preemption at 29 s whose raw outage runs 1000 s past the 30 s
        // horizon must charge only one second of downtime: availability
        // stays pinned at <= 1.0 by construction and the makespan is not
        // inflated by unavailable time no request could observe.
        use crate::faults::{FaultEvent, FaultKind, RecoveryPolicy};
        let cfg = ServingConfig::small_test();
        let plan = FaultPlan {
            events: vec![FaultEvent {
                at_s: 29.0,
                kind: FaultKind::SpotPreemption,
                outage_s: 1000.0,
            }],
            policy: RecoveryPolicy::default(),
        };
        let node = ServingNode::Cpu {
            tee: CpuTeeConfig::tdx(),
        };
        let report = simulate_serving_faulted(&cfg, &node, &plan);
        assert_eq!(report.completed + report.aborted, report.arrivals);
        assert!(
            report.makespan_s < 100.0,
            "makespan {} carries over-horizon downtime",
            report.makespan_s
        );
        assert!(report.availability <= 1.0);
        assert!(
            report.availability > 0.9,
            "availability {} charged beyond the horizon",
            report.availability
        );
    }
}
