//! The serving event loop.
//!
//! Time advances iteration by iteration: at each boundary the scheduler
//! admits waiting requests (charging their prefill), then the whole batch
//! performs one decode step priced by the calibrated `cllm-perf` roofline
//! under the chosen TEE. Per-request records capture time to first token
//! (TTFT) and time per output token (TPOT).

use crate::scheduler::{ContinuousBatcher, SchedulerLimits};
use crate::slo::{percentile_of, ServingReport};
use crate::workload::{ArrivalProcess, Request};
use cllm_hw::DType;
use cllm_perf::{decode_step_time_s, prefill_time_s, CpuTarget};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::{zoo, ModelConfig};
use serde::{Deserialize, Serialize};

/// One completed request's timing record.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RequestRecord {
    /// Request id.
    pub id: u64,
    /// Time to first token (queueing + prefill), seconds.
    pub ttft_s: f64,
    /// Mean time per output token after the first, seconds.
    pub tpot_s: f64,
    /// End-to-end completion time, seconds.
    pub e2e_s: f64,
}

/// Serving-simulation configuration.
#[derive(Debug, Clone)]
pub struct ServingConfig {
    /// Workload model whose costs are simulated.
    pub model: ModelConfig,
    /// Data type.
    pub dtype: DType,
    /// Execution target.
    pub target: CpuTarget,
    /// Scheduler limits.
    pub limits: SchedulerLimits,
    /// Arrival process.
    pub arrivals: ArrivalProcess,
    /// Trace horizon, seconds of arrivals.
    pub duration_s: f64,
}

impl ServingConfig {
    /// A small, fast configuration for tests: Llama2-7B shapes at a light
    /// load on one EMR2 socket.
    #[must_use]
    pub fn small_test() -> Self {
        ServingConfig {
            model: zoo::llama2_7b(),
            dtype: DType::Bf16,
            target: CpuTarget::emr2_single_socket(),
            limits: SchedulerLimits {
                max_batch: 16,
                kv_budget_bytes: 64.0 * cllm_hw::GIB,
            },
            arrivals: ArrivalProcess {
                rate_per_s: 1.0,
                prompt_range: (32, 256),
                output_range: (8, 64),
                seed: 11,
            },
            duration_s: 30.0,
        }
    }

    /// A production-like configuration (heavier load, chat shapes).
    #[must_use]
    pub fn chat_production(rate_per_s: f64) -> Self {
        ServingConfig {
            arrivals: ArrivalProcess::chat(rate_per_s, 42),
            duration_s: 120.0,
            ..Self::small_test()
        }
    }
}

/// Run the discrete-event serving simulation under `tee`.
///
/// # Panics
///
/// Panics if the arrival trace is empty.
#[must_use]
pub fn simulate_serving(cfg: &ServingConfig, tee: &CpuTeeConfig) -> ServingReport {
    let trace = cfg.arrivals.trace(cfg.duration_s);
    assert!(!trace.is_empty(), "empty arrival trace");
    let mut pending: std::collections::VecDeque<Request> = trace.iter().copied().collect();
    let total_arrivals = pending.len();
    let mut scheduler = ContinuousBatcher::new(cfg.limits);
    let mut now = 0.0f64;
    let mut records: Vec<RequestRecord> = Vec::with_capacity(total_arrivals);
    let mut generated_tokens = 0u64;

    while !(pending.is_empty() && scheduler.idle()) {
        // Deliver arrivals that have happened by `now`.
        while pending.front().is_some_and(|r| r.arrival_s <= now) {
            scheduler.enqueue(pending.pop_front().expect("front checked"));
        }
        // If nothing is runnable, jump to the next arrival.
        if scheduler.idle() {
            if let Some(next) = pending.front() {
                now = next.arrival_s;
                continue;
            }
            break;
        }

        // Admission + prefill at the iteration boundary.
        let admitted = scheduler.admit(&cfg.model, cfg.dtype, now);
        for r in admitted {
            let t_prefill =
                prefill_time_s(&cfg.model, cfg.dtype, &cfg.target, tee, 1, r.prompt_tokens);
            now += t_prefill;
            scheduler.start(r, now);
            generated_tokens += 1; // the prefill emits the first token
        }

        if scheduler.running().is_empty() {
            continue;
        }

        // One decode iteration for the whole running batch at its mean
        // context length.
        let batch = scheduler.running().len() as u64;
        #[allow(clippy::cast_precision_loss)]
        let mean_context = (scheduler.running().iter().map(|a| a.context()).sum::<u64>() as f64
            / batch as f64)
            .round() as u64;
        now += decode_step_time_s(&cfg.model, cfg.dtype, &cfg.target, tee, batch, mean_context);
        generated_tokens += batch;

        for fin in scheduler.step() {
            let ttft = fin.first_token_s - fin.request.arrival_s;
            let decode_span = now - fin.first_token_s;
            #[allow(clippy::cast_precision_loss)]
            let tpot = decode_span / (fin.request.output_tokens.saturating_sub(1).max(1)) as f64;
            records.push(RequestRecord {
                id: fin.request.id,
                ttft_s: ttft,
                tpot_s: tpot,
                e2e_s: now - fin.request.arrival_s,
            });
        }
    }

    build_report(total_arrivals, generated_tokens, now, records)
}

fn build_report(
    arrivals: usize,
    generated_tokens: u64,
    makespan_s: f64,
    mut records: Vec<RequestRecord>,
) -> ServingReport {
    records.sort_by_key(|a| a.id);
    let ttft: Vec<f64> = records.iter().map(|r| r.ttft_s).collect();
    let tpot: Vec<f64> = records.iter().map(|r| r.tpot_s).collect();
    #[allow(clippy::cast_precision_loss)]
    ServingReport {
        arrivals,
        completed: records.len(),
        makespan_s,
        goodput_tps: generated_tokens as f64 / makespan_s.max(1e-9),
        ttft_p50_s: percentile_of(&ttft, 0.50),
        ttft_p95_s: percentile_of(&ttft, 0.95),
        tpot_p50_s: percentile_of(&tpot, 0.50),
        tpot_p95_s: percentile_of(&tpot, 0.95),
        records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completes_all_requests() {
        let cfg = ServingConfig::small_test();
        let report = simulate_serving(&cfg, &CpuTeeConfig::bare_metal());
        assert_eq!(report.completed, report.arrivals);
        assert!(report.goodput_tps > 0.0);
    }

    #[test]
    fn deterministic() {
        let cfg = ServingConfig::small_test();
        let a = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        let b = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        assert_eq!(a.records, b.records);
    }

    #[test]
    fn tee_raises_tail_latencies() {
        let cfg = ServingConfig::small_test();
        let bare = simulate_serving(&cfg, &CpuTeeConfig::bare_metal());
        let tdx = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        assert!(tdx.tpot_p50_s > bare.tpot_p50_s);
        assert!(tdx.ttft_p95_s >= bare.ttft_p95_s * 0.99);
        // The online overhead stays in the same regime as offline.
        let overhead = tdx.tpot_p50_s / bare.tpot_p50_s - 1.0;
        assert!(overhead < 0.30, "online TDX overhead {overhead}");
    }

    #[test]
    fn overload_grows_queueing_delay() {
        let light = simulate_serving(
            &ServingConfig {
                arrivals: ArrivalProcess {
                    rate_per_s: 0.3,
                    ..ServingConfig::small_test().arrivals
                },
                ..ServingConfig::small_test()
            },
            &CpuTeeConfig::tdx(),
        );
        let heavy = simulate_serving(
            &ServingConfig {
                arrivals: ArrivalProcess {
                    rate_per_s: 12.0,
                    ..ServingConfig::small_test().arrivals
                },
                ..ServingConfig::small_test()
            },
            &CpuTeeConfig::tdx(),
        );
        assert!(
            heavy.ttft_p95_s > 2.0 * light.ttft_p95_s,
            "heavy {} vs light {}",
            heavy.ttft_p95_s,
            light.ttft_p95_s
        );
    }

    #[test]
    fn ttft_exceeds_prefill_floor() {
        let cfg = ServingConfig::small_test();
        let report = simulate_serving(&cfg, &CpuTeeConfig::bare_metal());
        // TTFT includes at least the request's own prefill time.
        assert!(report.ttft_p50_s > 0.0);
        assert!(report.records.iter().all(|r| r.ttft_s > 0.0));
        assert!(report.records.iter().all(|r| r.e2e_s >= r.ttft_s));
    }

    #[test]
    fn batching_improves_goodput() {
        let mut solo = ServingConfig::small_test();
        solo.limits.max_batch = 1;
        let batched = ServingConfig::small_test();
        let s = simulate_serving(&solo, &CpuTeeConfig::tdx());
        let b = simulate_serving(&batched, &CpuTeeConfig::tdx());
        assert!(
            b.goodput_tps > s.goodput_tps,
            "batched {} !> solo {}",
            b.goodput_tps,
            s.goodput_tps
        );
    }
}
