//! Pre-kernel reference event loops, kept as oracles.
//!
//! These are the hand-rolled loops `sim` and `cluster` ran before the
//! [`crate::kernel`] refactor, preserved verbatim apart from two
//! deliberate deltas:
//!
//! * the attestation-failure horizon clamp bugfix is applied here too,
//!   so property tests compare kernel-backed runs against the *intended*
//!   legacy semantics rather than the bug;
//! * trace emission is stripped (the untraced twins never recorded
//!   anything, so the float arithmetic is unchanged).
//!
//! Per-request state lives in `HashMap`s/`HashSet`s and pending retries
//! in a flat `Vec` re-scanned with `min_by` per delivery — the exact
//! O(n²) shapes the kernel replaced. Property tests
//! (`prop_faults.rs`/`prop_cluster.rs`) assert the kernel-backed
//! simulators produce **equal reports** across random fault plans,
//! fleets and seeds; these loops exist only for that proof and must not
//! grow features.

use crate::cluster::{build_nodes, drain_report, hs_seed, place, ClusterConfig, ClusterReport};
use crate::faults::{attested_rehandshake_phased, FaultEvent, FaultKind, FaultPlan};
use crate::scheduler::{ContinuousBatcher, QueueStats};
use crate::sim::{build_report, RequestRecord, ServingConfig, ServingNode};
use crate::slo::ServingReport;
use crate::workload::Request;
use cllm_obs::TraceSink;
use std::collections::{HashMap, HashSet, VecDeque};

/// A crash victim waiting out its backoff (single-node loop).
#[derive(Debug, Clone, Copy)]
struct RetryEntry {
    request: Request,
    eligible_s: f64,
}

/// The pre-kernel single-node serving loop (clamp fix applied).
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn simulate_serving_faulted(
    cfg: &ServingConfig,
    node: &ServingNode,
    plan: &FaultPlan,
) -> ServingReport {
    if cfg.arrivals.rate_per_s <= 0.0 || cfg.duration_s <= 0.0 {
        return build_report(
            0,
            0,
            0.0,
            Vec::new(),
            0,
            0,
            0.0,
            &QueueStats::default(),
            0,
            0.0,
            0.0,
        );
    }
    let trace = cfg.arrivals.trace(cfg.duration_s);
    if trace.is_empty() {
        return build_report(
            0,
            0,
            0.0,
            Vec::new(),
            0,
            0,
            0.0,
            &QueueStats::default(),
            0,
            0.0,
            0.0,
        );
    }
    let mut pending: VecDeque<Request> = trace.iter().copied().collect();
    let total_arrivals = pending.len();
    let mut scheduler = ContinuousBatcher::new(cfg.limits);
    let mut retry_queue: Vec<RetryEntry> = Vec::new();
    let mut attempts_of: HashMap<u64, u32> = HashMap::new();
    let mut now = 0.0f64;
    let mut records: Vec<RequestRecord> = Vec::with_capacity(total_arrivals);
    let mut useful_tokens = 0u64;
    let mut retries = 0u64;
    let mut aborted = 0usize;
    let mut downtime_s = 0.0f64;
    let mut next_event = 0usize;
    let mut handshake_seq = 0u64;
    let mut derate_until_s = 0.0f64;

    loop {
        // Apply faults that have fired by `now`, oldest first.
        while plan.events.get(next_event).is_some_and(|e| e.at_s <= now) {
            let ev = plan.events[next_event];
            next_event += 1;
            handshake_seq += 1;
            apply_fault(
                &ev,
                plan,
                cfg.duration_s,
                handshake_seq,
                &mut scheduler,
                &mut retry_queue,
                &mut attempts_of,
                &mut now,
                &mut downtime_s,
                &mut derate_until_s,
                &mut retries,
                &mut aborted,
            );
        }

        // Deliver arrivals that have happened by `now`.
        while pending.front().is_some_and(|r| r.arrival_s <= now) {
            let r = pending.pop_front().expect("front checked");
            scheduler.enqueue(r);
        }
        // Deliver retried requests whose backoff has elapsed, re-scanning
        // the whole queue per delivery for the (eligibility, id) minimum.
        loop {
            let due = retry_queue
                .iter()
                .enumerate()
                .filter(|(_, e)| e.eligible_s <= now)
                .min_by(|(_, a), (_, b)| {
                    a.eligible_s
                        .partial_cmp(&b.eligible_s)
                        // infallible: eligibility times are finite backoff sums
                        .expect("finite eligibility")
                        .then(a.request.id.cmp(&b.request.id))
                })
                .map(|(i, _)| i);
            let Some(i) = due else { break };
            let e = retry_queue.swap_remove(i);
            scheduler.enqueue_at(e.request, now);
        }

        // If nothing is runnable, jump to the next thing that can happen.
        if scheduler.idle() {
            let mut target = f64::INFINITY;
            if let Some(next) = pending.front() {
                target = target.min(next.arrival_s);
            }
            for e in &retry_queue {
                target = target.min(e.eligible_s);
            }
            if !target.is_finite() {
                break; // no work left anywhere
            }
            match plan.events.get(next_event) {
                Some(e) if e.at_s < target => now = e.at_s,
                _ => now = target,
            }
            continue;
        }

        // Admission + prefill at the iteration boundary.
        let admitted = scheduler.admit(&cfg.model, cfg.dtype, now);
        for r in admitted {
            if attempts_of.get(&r.id).copied().unwrap_or(0) > 0 {
                now += plan.policy.reattest_s;
            }
            let t_prefill = node.prefill_time_s(cfg, r.prompt_tokens);
            now += t_prefill;
            scheduler.start(r, now);
        }

        if scheduler.running().is_empty() {
            continue;
        }

        // One decode iteration for the whole running batch.
        let batch = scheduler.running().len() as u64;
        #[allow(clippy::cast_precision_loss)]
        let mean_context = (scheduler.running().iter().map(|a| a.context()).sum::<u64>() as f64
            / batch as f64)
            .round() as u64;
        let mut t_step = node.decode_step_time_s(cfg, batch, mean_context);
        if now < derate_until_s {
            t_step *= crate::faults::DEGRADED_THROUGHPUT_FACTOR;
        }
        now += t_step;

        for fin in scheduler.step() {
            let ttft = fin.first_token_s - fin.request.arrival_s;
            let decode_span = now - fin.first_token_s;
            #[allow(clippy::cast_precision_loss)]
            let tpot = decode_span / (fin.request.output_tokens.saturating_sub(1).max(1)) as f64;
            useful_tokens += fin.request.output_tokens;
            records.push(RequestRecord {
                id: fin.request.id,
                ttft_s: ttft,
                tpot_s: tpot,
                e2e_s: now - fin.request.arrival_s,
                retries: attempts_of.get(&fin.request.id).copied().unwrap_or(0),
            });
        }
    }

    build_report(
        total_arrivals,
        useful_tokens,
        now,
        records,
        retries,
        aborted,
        downtime_s,
        scheduler.queue_stats(),
        0,
        0.0,
        0.0,
    )
}

#[allow(clippy::too_many_arguments)]
fn apply_fault(
    ev: &FaultEvent,
    plan: &FaultPlan,
    horizon_s: f64,
    handshake_seq: u64,
    scheduler: &mut ContinuousBatcher,
    retry_queue: &mut Vec<RetryEntry>,
    attempts_of: &mut HashMap<u64, u32>,
    now: &mut f64,
    downtime_s: &mut f64,
    derate_until_s: &mut f64,
    retries: &mut u64,
    aborted: &mut usize,
) {
    if ev.kind.is_gray() {
        // Gray semantics mirrored from the kernel loop: no downtime,
        // no state loss, only the horizon-clamped derate window.
        if ev.kind == FaultKind::DegradedThroughput {
            let window_s = ev.outage_s.min((horizon_s - ev.at_s).max(0.0));
            *derate_until_s = derate_until_s.max(ev.at_s + window_s);
        }
        return;
    }
    if ev.kind == FaultKind::AttestationFailure {
        attested_rehandshake_phased(handshake_seq, &mut |_| {})
            // infallible: simulated attestation over an in-process channel cannot fail; crashes charge recovery time, not handshake errors
            .expect("re-handshake must recover the session");
        // Clamp fix applied: identical to every other outage.
        let outage_s = plan.policy.reattest_s.min((horizon_s - ev.at_s).max(0.0));
        *now += outage_s;
        *downtime_s += outage_s;
        return;
    }
    let outage_s = ev.outage_s.min((horizon_s - ev.at_s).max(0.0));
    if ev.kind.loses_state() {
        for victim in scheduler.drain_running() {
            let id = victim.request.id;
            let a = attempts_of.entry(id).or_insert(0);
            *a += 1;
            if *a > plan.policy.max_retries {
                *aborted += 1;
            } else {
                *retries += 1;
                retry_queue.push(RetryEntry {
                    request: victim.request,
                    eligible_s: ev.at_s + outage_s + plan.policy.backoff_s(*a),
                });
            }
        }
    }
    *now += outage_s;
    *downtime_s += outage_s;
}

/// A crash victim waiting out its backoff (cluster loop).
#[derive(Debug, Clone, Copy)]
struct ClusterRetryEntry {
    request: Request,
    eligible_s: f64,
    origin: usize,
    origin_gpu: bool,
}

/// The pre-kernel cluster loop (clamp fix applied).
///
/// # Panics
///
/// Panics if the fleet is empty.
#[must_use]
#[allow(clippy::too_many_lines)]
pub fn simulate_cluster(cfg: &ClusterConfig) -> ClusterReport {
    assert!(!cfg.nodes.is_empty(), "cluster needs at least one node");
    let horizon_s = cfg.serving.duration_s;
    let mut sink = TraceSink::disabled();
    let mut nodes = build_nodes(cfg, horizon_s);

    if cfg.serving.arrivals.rate_per_s <= 0.0 || horizon_s <= 0.0 {
        return drain_report(nodes, 0, 0, 0, 0, 0, Vec::new());
    }
    let trace = cfg.serving.arrivals.trace(horizon_s);
    if trace.is_empty() {
        return drain_report(nodes, 0, 0, 0, 0, 0, Vec::new());
    }

    let mut pending: VecDeque<Request> = trace.iter().copied().collect();
    let total_arrivals = pending.len();
    let mut retry_queue: Vec<ClusterRetryEntry> = Vec::new();
    let mut attempts_of: HashMap<u64, u32> = HashMap::new();
    let mut spilled: HashSet<u64> = HashSet::new();
    let mut records: Vec<RequestRecord> = Vec::with_capacity(total_arrivals);
    let mut rejected = 0usize;
    let mut aborted = 0usize;
    let mut retries = 0u64;
    let mut spills = 0u64;

    loop {
        let t_arrival = pending.front().map(|r| r.arrival_s);
        let next_retry = retry_queue
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                a.eligible_s
                    .partial_cmp(&b.eligible_s)
                    // infallible: eligibility times are finite backoff sums
                    .expect("finite eligibility")
                    .then(a.request.id.cmp(&b.request.id))
            })
            .map(|(i, e)| (i, e.eligible_s));
        let t_dispatch = match (t_arrival, next_retry) {
            (Some(a), Some((_, r))) => Some(a.min(r)),
            (Some(a), None) => Some(a),
            (None, Some((_, r))) => Some(r),
            (None, None) => None,
        };

        let runnable = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| !n.scheduler.idle())
            .min_by(|(i, a), (j, b)| {
                a.now
                    .partial_cmp(&b.now)
                    // infallible: sim clocks are sums of finite step times
                    .expect("finite clocks")
                    .then(i.cmp(j))
            })
            .map(|(i, n)| (i, n.now));

        let do_dispatch = match (t_dispatch, runnable) {
            (None, None) => break,
            (Some(_), None) => true,
            (None, Some(_)) => false,
            (Some(t), Some((_, node_now))) => t <= node_now,
        };

        if do_dispatch {
            let arrival_first = match (t_arrival, next_retry) {
                (Some(a), Some((_, r))) => a <= r,
                (Some(_), None) => true,
                _ => false,
            };
            if arrival_first {
                let r = pending.pop_front().expect("arrival checked");
                let t = r.arrival_s;
                let mut candidates = Vec::with_capacity(nodes.len());
                for (i, n) in nodes.iter_mut().enumerate() {
                    if n.scheduler.queued() < cfg.admission.queue_cap && n.breaker.accepts(t) {
                        candidates.push((i, n.depth()));
                    }
                }
                match crate::router::route_least_loaded(&candidates) {
                    Some(i) => place(&mut nodes[i], i, r, t, &mut sink),
                    None => rejected += 1,
                }
            } else {
                let (idx, t) = next_retry.expect("retry checked");
                let e = retry_queue.swap_remove(idx);
                let target = if cfg.failover {
                    let mut candidates = Vec::with_capacity(nodes.len());
                    for (i, n) in nodes.iter_mut().enumerate() {
                        if n.scheduler.queued() < cfg.admission.queue_cap && n.breaker.accepts(t) {
                            candidates.push((i, n.depth()));
                        }
                    }
                    crate::router::route_least_loaded(&candidates).unwrap_or_else(|| {
                        let all: Vec<(usize, usize)> = nodes
                            .iter()
                            .map(crate::cluster::NodeState::depth)
                            .enumerate()
                            .collect();
                        // infallible: the fleet is non-empty by construction, so least-loaded always resolves
                        crate::router::route_least_loaded(&all).expect("fleet is non-empty")
                    })
                } else {
                    e.origin
                };
                if nodes[target].is_gpu() != e.origin_gpu {
                    spills += 1;
                    spilled.insert(e.request.id);
                }
                place(&mut nodes[target], target, e.request, t, &mut sink);
            }
            continue;
        }

        // infallible: the advance branch is only taken when `runnable` is Some
        let (i, _) = runnable.expect("advance branch requires a runnable node");
        let n = &mut nodes[i];

        while n
            .plan
            .events
            .get(n.next_event)
            .is_some_and(|e| e.at_s <= n.now)
        {
            let ev = n.plan.events[n.next_event];
            n.next_event += 1;
            if ev.kind.is_gray() {
                // Gray semantics mirrored from the kernel loop: no
                // breaker error, no downtime; only the window state.
                let window_s = ev.outage_s.min((horizon_s - ev.at_s).max(0.0));
                match ev.kind {
                    FaultKind::DegradedThroughput => {
                        n.derate_until_s = n.derate_until_s.max(ev.at_s + window_s);
                    }
                    FaultKind::StuckDrain => {
                        n.stuck_until_s = n.stuck_until_s.max(ev.at_s + window_s);
                    }
                    _ => unreachable!("is_gray covers exactly the two gray kinds"),
                }
                continue;
            }
            n.breaker.record_error(n.now);
            if ev.kind == FaultKind::AttestationFailure {
                n.handshake_seq += 1;
                attested_rehandshake_phased(hs_seed(i, n.handshake_seq), &mut |_| {})
                    // infallible: simulated attestation over an in-process channel cannot fail
                    .expect("re-handshake must recover the session");
                // Clamp fix applied: identical to every other outage.
                let outage_s = n.plan.policy.reattest_s.min((horizon_s - ev.at_s).max(0.0));
                n.now += outage_s;
                n.downtime_s += outage_s;
                continue;
            }
            let outage_s = ev.outage_s.min((horizon_s - ev.at_s).max(0.0));
            if ev.kind.loses_state() {
                let origin_gpu = n.is_gpu();
                for victim in n.scheduler.drain_running() {
                    let id = victim.request.id;
                    let a = attempts_of.entry(id).or_insert(0);
                    *a += 1;
                    if *a > n.plan.policy.max_retries {
                        aborted += 1;
                    } else {
                        retries += 1;
                        retry_queue.push(ClusterRetryEntry {
                            request: victim.request,
                            eligible_s: ev.at_s + outage_s + n.plan.policy.backoff_s(*a),
                            origin: i,
                            origin_gpu,
                        });
                    }
                }
            }
            n.now += outage_s;
            n.downtime_s += outage_s;
        }

        if cfg.admission.deadline_s.is_finite() {
            let now = n.now;
            let deadline_s = cfg.admission.deadline_s;
            let shed = n.scheduler.shed(|r| now - r.arrival_s > deadline_s);
            rejected += shed.len();
        }

        let admitted = n
            .scheduler
            .admit(&cfg.serving.model, cfg.serving.dtype, n.now);
        for r in admitted {
            if attempts_of.get(&r.id).copied().unwrap_or(0) > 0 {
                n.now += n.plan.policy.reattest_s;
            }
            let mut t_prefill = n.node.prefill_time_s(&cfg.serving, r.prompt_tokens);
            if spilled.remove(&r.id) {
                n.now += cfg.spill.requant_s;
                t_prefill *= cfg.spill.prefill_factor;
            }
            n.now += t_prefill;
            n.scheduler.start(r, n.now);
        }

        if n.scheduler.running().is_empty() {
            continue;
        }

        let batch = n.scheduler.running().len() as u64;
        #[allow(clippy::cast_precision_loss)]
        #[allow(clippy::cast_sign_loss, clippy::cast_possible_truncation)]
        let mean_context = (n
            .scheduler
            .running()
            .iter()
            .map(|a| a.context())
            .sum::<u64>() as f64
            / batch as f64)
            .round() as u64;
        let mut t_step = n.node.decode_step_time_s(&cfg.serving, batch, mean_context);
        if n.now < n.derate_until_s {
            t_step *= crate::faults::DEGRADED_THROUGHPUT_FACTOR;
        }
        n.now += t_step;

        for fin in n.scheduler.step() {
            let ttft = fin.first_token_s - fin.request.arrival_s;
            let decode_span = n.now - fin.first_token_s;
            #[allow(clippy::cast_precision_loss)]
            let tpot = decode_span / (fin.request.output_tokens.saturating_sub(1).max(1)) as f64;
            n.useful_tokens += fin.request.output_tokens;
            n.completed += 1;
            records.push(RequestRecord {
                id: fin.request.id,
                ttft_s: ttft,
                tpot_s: tpot,
                e2e_s: n.now - fin.request.arrival_s,
                retries: attempts_of.get(&fin.request.id).copied().unwrap_or(0),
            });
            if n.breaker.record_success() {
                n.handshake_seq += 1;
                attested_rehandshake_phased(hs_seed(i, n.handshake_seq), &mut |_| {})
                    // infallible: simulated attestation over an in-process channel cannot fail
                    .expect("re-handshake must recover the session");
                n.now += n.plan.policy.reattest_s;
                n.downtime_s += n.plan.policy.reattest_s;
            }
        }
    }

    drain_report(
        nodes,
        total_arrivals,
        rejected,
        aborted,
        retries,
        spills,
        records,
    )
}
