//! Iteration-level (continuous) batching.
//!
//! Like vLLM's scheduler: between decode iterations, waiting requests are
//! admitted into the running batch if the batch cap and the KV-memory
//! budget allow. Requests that finish free their slots immediately.

use crate::workload::Request;
use cllm_hw::DType;
use cllm_workload::{kv, ModelConfig};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A request resident in the running batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveRequest {
    /// The underlying request.
    pub request: Request,
    /// Decode steps completed so far.
    pub generated: u64,
    /// Time the prefill finished (first token), seconds.
    pub first_token_s: f64,
}

impl ActiveRequest {
    /// Current context length (prompt + generated).
    #[must_use]
    pub fn context(&self) -> u64 {
        self.request.prompt_tokens + self.generated
    }

    /// Whether the output budget is exhausted.
    #[must_use]
    pub fn done(&self) -> bool {
        self.generated >= self.request.output_tokens
    }
}

/// Scheduler limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerLimits {
    /// Maximum concurrent sequences in the batch.
    pub max_batch: usize,
    /// KV-cache memory budget in bytes.
    pub kv_budget_bytes: f64,
}

/// Queue-pressure statistics the batcher accumulates so shedding
/// decisions are observable even in fault-free runs: the deepest the
/// admission queue ever got, and the waits (enqueue → admission) of
/// every admitted request.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueueStats {
    /// Deepest the admission queue got, in requests.
    pub depth_peak: usize,
    /// Per-admission queue waits, seconds, in admission order.
    pub waits_s: Vec<f64>,
}

/// The continuous batcher: a FIFO admission queue plus the running batch.
#[derive(Debug)]
pub struct ContinuousBatcher {
    limits: SchedulerLimits,
    queue: VecDeque<(Request, f64)>, // (request, enqueue time)
    running: Vec<ActiveRequest>,
    stats: QueueStats,
}

impl ContinuousBatcher {
    /// An empty scheduler.
    #[must_use]
    pub fn new(limits: SchedulerLimits) -> Self {
        ContinuousBatcher {
            limits,
            queue: VecDeque::new(),
            running: Vec::new(),
            stats: QueueStats::default(),
        }
    }

    /// Enqueue an arriving request; its queue wait is measured from its
    /// own arrival time.
    pub fn enqueue(&mut self, request: Request) {
        let at_s = request.arrival_s;
        self.enqueue_at(request, at_s);
    }

    /// Enqueue a request whose wait clock starts at `at_s` — retried
    /// victims re-enter the queue long after their original arrival.
    pub fn enqueue_at(&mut self, request: Request, at_s: f64) {
        self.queue.push_back((request, at_s));
        self.stats.depth_peak = self.stats.depth_peak.max(self.queue.len());
    }

    /// Requests waiting for admission.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Queue-pressure statistics accumulated so far.
    #[must_use]
    pub fn queue_stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Remove and return every queued request matching `pred` (admission
    /// control: deadline shedding). Running requests are untouched.
    pub fn shed(&mut self, pred: impl Fn(&Request) -> bool) -> Vec<Request> {
        let mut kept = VecDeque::with_capacity(self.queue.len());
        let mut shed = Vec::new();
        for (request, at_s) in self.queue.drain(..) {
            if pred(&request) {
                shed.push(request);
            } else {
                kept.push_back((request, at_s));
            }
        }
        self.queue = kept;
        shed
    }

    /// The running batch.
    #[must_use]
    pub fn running(&self) -> &[ActiveRequest] {
        &self.running
    }

    /// KV bytes the running batch holds for `model` at `dtype`.
    #[must_use]
    pub fn kv_in_use(&self, model: &ModelConfig, dtype: DType) -> f64 {
        self.running
            .iter()
            .map(|a| kv::kv_bytes_per_sequence(model, a.context(), dtype))
            .sum()
    }

    /// Admit queued requests (FIFO) while the batch cap and KV budget
    /// allow, reserving each request's *full* KV extent (prompt + output)
    /// so admitted requests never have to be evicted. Returns the newly
    /// admitted requests (their prefills must be charged by the caller).
    pub fn admit(&mut self, model: &ModelConfig, dtype: DType, now_s: f64) -> Vec<Request> {
        let mut admitted = Vec::new();
        let mut kv_reserved: f64 = self
            .running
            .iter()
            .map(|a| {
                kv::kv_bytes_per_sequence(
                    model,
                    a.request.prompt_tokens + a.request.output_tokens,
                    dtype,
                )
            })
            .sum();
        while self.running.len() + admitted.len() < self.limits.max_batch {
            let Some((front, _)) = self.queue.front() else {
                break;
            };
            let need =
                kv::kv_bytes_per_sequence(model, front.prompt_tokens + front.output_tokens, dtype);
            if kv_reserved + need > self.limits.kv_budget_bytes {
                break; // FIFO head-of-line blocking, like vLLM's default
            }
            kv_reserved += need;
            let (request, enqueued_s) = self.queue.pop_front().expect("front checked");
            self.stats.waits_s.push((now_s - enqueued_s).max(0.0));
            admitted.push(request);
        }
        admitted
    }

    /// Insert an admitted request whose prefill completed at
    /// `first_token_s`.
    pub fn start(&mut self, request: Request, first_token_s: f64) {
        self.running.push(ActiveRequest {
            request,
            generated: 1, // the prefill produced the first token
            first_token_s,
        });
    }

    /// Advance every running request by one decode step; remove and
    /// return the ones that finished.
    pub fn step(&mut self) -> Vec<ActiveRequest> {
        for a in &mut self.running {
            a.generated += 1;
        }
        let mut finished = Vec::new();
        self.running.retain(|a| {
            if a.done() {
                finished.push(*a);
                false
            } else {
                true
            }
        });
        finished
    }

    /// Whether any work remains (queued or running).
    #[must_use]
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty()
    }

    /// Remove and return the entire running batch: the node crashed and
    /// every resident request lost its KV cache. Queued (not yet
    /// admitted) requests are unaffected — they hold no enclave state.
    pub fn drain_running(&mut self) -> Vec<ActiveRequest> {
        std::mem::take(&mut self.running)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_workload::zoo;

    fn req(id: u64, prompt: u64, output: u64) -> Request {
        Request {
            id,
            arrival_s: 0.0,
            prompt_tokens: prompt,
            output_tokens: output,
        }
    }

    fn limits(max_batch: usize, kv_gib: f64) -> SchedulerLimits {
        SchedulerLimits {
            max_batch,
            kv_budget_bytes: kv_gib * cllm_hw::GIB,
        }
    }

    #[test]
    fn batch_cap_enforced() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(2, 100.0));
        for i in 0..5 {
            s.enqueue(req(i, 64, 16));
        }
        let admitted = s.admit(&model, DType::Bf16, 0.0);
        assert_eq!(admitted.len(), 2);
        assert_eq!(s.queued(), 3);
    }

    #[test]
    fn kv_budget_enforced() {
        let model = zoo::llama2_7b();
        // One 2048-token sequence holds ~1 GiB of KV at bf16; a 1.5 GiB
        // budget admits exactly one.
        let mut s = ContinuousBatcher::new(limits(16, 1.5));
        s.enqueue(req(0, 2000, 48));
        s.enqueue(req(1, 2000, 48));
        let admitted = s.admit(&model, DType::Bf16, 0.0);
        assert_eq!(admitted.len(), 1);
    }

    #[test]
    fn fifo_order_preserved() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(3, 100.0));
        for i in 0..3 {
            s.enqueue(req(i, 32, 8));
        }
        let admitted = s.admit(&model, DType::Bf16, 0.0);
        let ids: Vec<u64> = admitted.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn requests_finish_after_output_budget() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(4, 100.0));
        s.enqueue(req(0, 16, 3));
        for r in s.admit(&model, DType::Bf16, 0.0) {
            s.start(r, 0.1);
        }
        // first token came from prefill; two more decode steps finish it.
        assert!(s.step().is_empty());
        let finished = s.step();
        assert_eq!(finished.len(), 1);
        assert!(s.idle());
    }

    #[test]
    fn continuous_admission_between_steps() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(2, 100.0));
        s.enqueue(req(0, 16, 2));
        s.enqueue(req(1, 16, 8));
        s.enqueue(req(2, 16, 8));
        for r in s.admit(&model, DType::Bf16, 0.0) {
            s.start(r, 0.1);
        }
        assert_eq!(s.running().len(), 2);
        let _ = s.step(); // request 0 finishes (budget 2: prefill + 1 step)
        assert_eq!(s.running().len(), 1);
        // The freed slot admits request 2 at the next boundary.
        let admitted = s.admit(&model, DType::Bf16, 0.2);
        assert_eq!(admitted.len(), 1);
        assert_eq!(admitted[0].id, 2);
    }

    #[test]
    fn queue_stats_track_depth_and_waits() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(2, 100.0));
        for i in 0..4 {
            s.enqueue(req(i, 16, 4)); // arrival_s = 0.0
        }
        assert_eq!(s.queue_stats().depth_peak, 4);
        let admitted = s.admit(&model, DType::Bf16, 0.5);
        assert_eq!(admitted.len(), 2);
        // Both admissions waited 0.5 s from their arrival at t=0.
        assert_eq!(s.queue_stats().waits_s, vec![0.5, 0.5]);
        // A retry enqueued late measures its wait from the re-enqueue.
        s.enqueue_at(req(9, 16, 4), 10.0);
        let _ = s.step(); // nothing running; no-op
        assert_eq!(s.queue_stats().depth_peak, 4, "peak is a high-water mark");
    }

    #[test]
    fn shed_removes_only_matching_queued_requests() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(1, 100.0));
        for i in 0..3 {
            s.enqueue(req(i, 16, 4));
        }
        for r in s.admit(&model, DType::Bf16, 0.0) {
            s.start(r, 0.1);
        }
        let shed = s.shed(|r| r.id == 2);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].id, 2);
        assert_eq!(s.queued(), 1);
        assert_eq!(s.running().len(), 1, "running batch untouched by shed");
    }

    #[test]
    fn kv_in_use_tracks_context() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(2, 100.0));
        s.enqueue(req(0, 100, 10));
        for r in s.admit(&model, DType::Bf16, 0.0) {
            s.start(r, 0.0);
        }
        let before = s.kv_in_use(&model, DType::Bf16);
        let _ = s.step();
        let after = s.kv_in_use(&model, DType::Bf16);
        assert!(after > before);
    }
}
