//! Iteration-level (continuous) batching over a paged KV cache.
//!
//! Like vLLM's scheduler: between decode iterations, waiting requests are
//! admitted into the running batch if the batch cap and the KV-memory
//! budget allow. Requests that finish free their slots immediately.
//!
//! Two KV-memory models coexist behind [`KvPolicy`]:
//!
//! * **Conservative** (default) — the original model: admission reserves
//!   each request's *full* prompt + output extent up front, so admitted
//!   requests never have to be evicted. The reservation is tracked
//!   incrementally in whole tokens (KV bytes are linear in tokens, and
//!   every per-sequence byte value is an exact dyadic float, so the
//!   token-sum converts to bit-identical byte totals); a debug assertion
//!   re-derives the sum from the running batch on every admission.
//! * **Paged** ([`KvPolicy::PagedRecompute`] / [`KvPolicy::PagedSwap`]) —
//!   a [`PagePool`] block allocator carves the same byte budget into
//!   fixed `block_tokens` pages. Admission reserves *prompt* pages only;
//!   sequences grow page-by-page during decode, and when the pool runs
//!   dry the newest sequences are preempted: **recompute** drops their
//!   pages and re-prefills on readmission, **swap** pages them out (the
//!   driver prices the traffic through the platform's EPC-paging or
//!   bounce-buffer path) and restores them with a swap-in stall.
//!
//! The preemption order (always from the tail, never the oldest running
//! sequence) plus front-of-queue readmission makes both policies
//! starvation-free: the head sequence monotonically progresses to
//! completion, freeing pages for everyone behind it.

use crate::workload::Request;
use cllm_hw::DType;
use cllm_workload::kv::{self, PagePool};
use cllm_workload::ModelConfig;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;

/// A request resident in the running batch.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActiveRequest {
    /// The underlying request.
    pub request: Request,
    /// Decode steps completed so far.
    pub generated: u64,
    /// Time the prefill finished (first token), seconds.
    pub first_token_s: f64,
}

impl ActiveRequest {
    /// Current context length (prompt + generated).
    #[must_use]
    pub fn context(&self) -> u64 {
        self.request.prompt_tokens + self.generated
    }

    /// Whether the output budget is exhausted.
    #[must_use]
    pub fn done(&self) -> bool {
        self.generated >= self.request.output_tokens
    }
}

/// Scheduler limits.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SchedulerLimits {
    /// Maximum concurrent sequences in the batch.
    pub max_batch: usize,
    /// KV-cache memory budget in bytes. Under a paged policy this is the
    /// page-pool arena the blocks are carved from.
    pub kv_budget_bytes: f64,
}

/// How the batcher manages KV memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum KvPolicy {
    /// Reserve the full prompt + output extent at admission; never evict.
    Conservative,
    /// Paged allocation; on pressure, drop the victim's pages and
    /// re-prefill it from scratch when readmitted.
    PagedRecompute,
    /// Paged allocation; on pressure, page the victim's KV out through
    /// the priced swap path and stall on swap-in at readmission.
    PagedSwap,
}

impl KvPolicy {
    /// Whether this policy allocates through the page pool.
    #[must_use]
    pub fn is_paged(self) -> bool {
        !matches!(self, KvPolicy::Conservative)
    }

    /// Stable identifier used in tables and CLI flags.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            KvPolicy::Conservative => "conservative",
            KvPolicy::PagedRecompute => "recompute",
            KvPolicy::PagedSwap => "swap",
        }
    }

    /// Parse a `--kv-policy` flag value.
    #[must_use]
    pub fn from_flag(s: &str) -> Option<Self> {
        match s {
            "conservative" => Some(KvPolicy::Conservative),
            "recompute" => Some(KvPolicy::PagedRecompute),
            "swap" => Some(KvPolicy::PagedSwap),
            _ => None,
        }
    }
}

/// KV-memory configuration of a serving run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KvConfig {
    /// Eviction / reservation policy.
    pub policy: KvPolicy,
    /// Tokens per KV page under a paged policy.
    pub block_tokens: u64,
    /// Static batching: admit only into an empty batch, so each batch
    /// runs to completion before the next forms (the paper's offline
    /// batching regime, as opposed to continuous admission).
    pub static_batching: bool,
}

impl Default for KvConfig {
    fn default() -> Self {
        KvConfig {
            policy: KvPolicy::Conservative,
            block_tokens: 16,
            static_batching: false,
        }
    }
}

/// Cap on retained queue-wait samples (see [`QueueStats::record_wait`]).
pub const WAIT_SAMPLE_CAP: usize = 1 << 18;

/// Queue-pressure statistics the batcher accumulates so shedding
/// decisions are observable even in fault-free runs: the deepest the
/// admission queue ever got, and the waits (enqueue → admission) of
/// admitted requests.
#[derive(Debug, Clone, PartialEq)]
pub struct QueueStats {
    /// Deepest the admission queue got, in requests.
    pub depth_peak: usize,
    wait_count: u64,
    wait_sum_s: f64,
    wait_samples: Vec<f64>,
    stride: u64,
}

impl Default for QueueStats {
    fn default() -> Self {
        QueueStats {
            depth_peak: 0,
            wait_count: 0,
            wait_sum_s: 0.0,
            wait_samples: Vec::new(),
            stride: 1,
        }
    }
}

impl QueueStats {
    /// Record one admission wait. The mean is accumulated exactly (same
    /// addition order as summing a full vector in admission order), while
    /// percentile samples are bounded by deterministic stride decimation:
    /// every `stride`-th wait is retained, and when the retained set hits
    /// [`WAIT_SAMPLE_CAP`] the even-position half is kept and the stride
    /// doubles. Unlike keep-first-N, the retained set always spans the
    /// whole run uniformly, so late-run congestion moves the sampled
    /// percentiles instead of being silently dropped. Below the cap the
    /// behaviour is identical to keeping every wait (stride stays 1).
    /// The policy is deterministic — two runs of the same schedule retain
    /// identical samples — and at the million-request bench scale it
    /// bounds memory at a few MiB instead of growing one `f64` per
    /// admission forever.
    pub fn record_wait(&mut self, wait_s: f64) {
        let index = self.wait_count;
        self.wait_count += 1;
        self.wait_sum_s += wait_s;
        if !index.is_multiple_of(self.stride) {
            return;
        }
        if self.wait_samples.len() == WAIT_SAMPLE_CAP {
            // Decimate: keep even positions (global indices that remain
            // multiples of the doubled stride). The cap is even, so the
            // current index — a multiple of the old stride landing right
            // after the last kept even position — stays aligned.
            let mut keep = 0usize;
            for i in (0..self.wait_samples.len()).step_by(2) {
                self.wait_samples[keep] = self.wait_samples[i];
                keep += 1;
            }
            self.wait_samples.truncate(keep);
            self.stride *= 2;
            if !index.is_multiple_of(self.stride) {
                return;
            }
        }
        self.wait_samples.push(wait_s);
    }

    /// Number of admission waits recorded.
    #[must_use]
    pub fn wait_count(&self) -> u64 {
        self.wait_count
    }

    /// Sum of all admission waits, seconds (exact admission-order sum).
    #[must_use]
    pub fn wait_sum_s(&self) -> f64 {
        self.wait_sum_s
    }

    /// Retained wait samples, admission order: every `stride`-th wait,
    /// where the stride doubles whenever the retained set would exceed
    /// [`WAIT_SAMPLE_CAP`] — a uniform decimation over the whole run,
    /// never just its prefix.
    #[must_use]
    pub fn wait_samples(&self) -> &[f64] {
        &self.wait_samples
    }

    /// Current decimation stride (1 until the sample cap is first hit).
    #[must_use]
    pub fn wait_sample_stride(&self) -> u64 {
        self.stride
    }
}

/// One admission decision returned by [`ContinuousBatcher::admit_any`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// A fresh (or recompute-readmitted) request: the caller must charge
    /// its prefill and then [`ContinuousBatcher::start`] it.
    Fresh(Request),
    /// A swapped-out sequence re-entering the batch with its decode
    /// progress intact. The batcher has already re-inserted it into the
    /// running batch; the caller owes the swap-in stall for
    /// `swap_in_tokens` tokens of KV.
    Resumed {
        /// The readmitted request (identifies the sequence for spans).
        request: Request,
        /// Tokens of KV paged back in.
        swap_in_tokens: u64,
    },
}

/// Outcome of [`ContinuousBatcher::prepare_step`]: the pressure actions
/// taken to make the next decode step fit in the page pool.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StepPrep {
    /// Victims whose pages were dropped; they re-enter the queue front
    /// and re-prefill on readmission (tail-first pop order).
    pub preempted_recompute: Vec<Request>,
    /// Victims paged out with progress intact; the caller owes the
    /// swap-out traffic for each victim's `context()` tokens.
    pub preempted_swap: Vec<ActiveRequest>,
    /// KV pages resident during the coming step (0 under the
    /// conservative policy, which prices no page-level pressure).
    pub resident_pages: u64,
}

/// The continuous batcher: a FIFO admission queue plus the running batch,
/// with KV memory managed per [`KvConfig`].
#[derive(Debug)]
pub struct ContinuousBatcher {
    limits: SchedulerLimits,
    kv: KvConfig,
    queue: VecDeque<(Request, f64)>, // (request, enqueue time)
    /// Swapped-out sequences awaiting readmission, oldest first.
    swapped: VecDeque<ActiveRequest>,
    running: Vec<ActiveRequest>,
    stats: QueueStats,
    /// Conservative policy: total reserved tokens (prompt + output) of
    /// the running batch, maintained incrementally so admission is O(1)
    /// in the batch size instead of re-summing every running sequence.
    reserved_tokens: u64,
    /// Paged policies: the block allocator (lazily sized on first
    /// admission, when model and dtype are known).
    pool: Option<PagePool>,
}

impl ContinuousBatcher {
    /// An empty scheduler with the default (conservative) KV policy.
    #[must_use]
    pub fn new(limits: SchedulerLimits) -> Self {
        Self::configured(limits, KvConfig::default())
    }

    /// An empty scheduler with an explicit KV configuration.
    #[must_use]
    pub fn configured(limits: SchedulerLimits, kv: KvConfig) -> Self {
        ContinuousBatcher {
            limits,
            kv,
            queue: VecDeque::new(),
            swapped: VecDeque::new(),
            running: Vec::new(),
            stats: QueueStats::default(),
            reserved_tokens: 0,
            pool: None,
        }
    }

    /// The KV configuration this batcher runs under.
    #[must_use]
    pub fn kv_config(&self) -> KvConfig {
        self.kv
    }

    /// The page pool, once a paged policy has sized it.
    #[must_use]
    pub fn pool(&self) -> Option<&PagePool> {
        self.pool.as_ref()
    }

    /// Enqueue an arriving request; its queue wait is measured from its
    /// own arrival time.
    pub fn enqueue(&mut self, request: Request) {
        let at_s = request.arrival_s;
        self.enqueue_at(request, at_s);
    }

    /// Enqueue a request whose wait clock starts at `at_s` — retried
    /// victims re-enter the queue long after their original arrival.
    pub fn enqueue_at(&mut self, request: Request, at_s: f64) {
        self.queue.push_back((request, at_s));
        self.stats.depth_peak = self.stats.depth_peak.max(self.queue.len());
    }

    /// Requests waiting for admission.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// The queued (not yet admitted) requests, FIFO order — read-only,
    /// for admission controllers that need per-class queue occupancy
    /// (e.g. tiered caps) without shedding anything.
    pub fn queued_requests(&self) -> impl Iterator<Item = &Request> + '_ {
        self.queue.iter().map(|(r, _)| r)
    }

    /// Swapped-out sequences waiting to be paged back in.
    #[must_use]
    pub fn swapped_out(&self) -> usize {
        self.swapped.len()
    }

    /// Queue-pressure statistics accumulated so far.
    #[must_use]
    pub fn queue_stats(&self) -> &QueueStats {
        &self.stats
    }

    /// Remove and return every queued request matching `pred` (admission
    /// control: deadline shedding). Running requests are untouched.
    pub fn shed(&mut self, pred: impl Fn(&Request) -> bool) -> Vec<Request> {
        let mut kept = VecDeque::with_capacity(self.queue.len());
        let mut shed = Vec::new();
        for (request, at_s) in self.queue.drain(..) {
            if pred(&request) {
                shed.push(request);
            } else {
                kept.push_back((request, at_s));
            }
        }
        self.queue = kept;
        shed
    }

    /// The running batch.
    #[must_use]
    pub fn running(&self) -> &[ActiveRequest] {
        &self.running
    }

    /// KV bytes the running batch holds for `model` at `dtype`.
    #[must_use]
    pub fn kv_in_use(&self, model: &ModelConfig, dtype: DType) -> f64 {
        self.running
            .iter()
            .map(|a| kv::kv_bytes_per_sequence(model, a.context(), dtype))
            .sum()
    }

    /// Admit queued requests (FIFO) while the batch cap and KV budget
    /// allow, reserving each request's *full* KV extent (prompt + output)
    /// so admitted requests never have to be evicted. Returns the newly
    /// admitted requests (their prefills must be charged by the caller).
    ///
    /// This is the conservative-reservation path; paged drivers call
    /// [`ContinuousBatcher::admit_any`] instead.
    pub fn admit(&mut self, model: &ModelConfig, dtype: DType, now_s: f64) -> Vec<Request> {
        // The incremental token counter must agree with a fresh re-sum of
        // the running batch (callers start every admitted request before
        // the next admission boundary). KV bytes are linear in tokens, so
        // comparing in tokens is exact.
        debug_assert_eq!(
            self.reserved_tokens,
            self.running
                .iter()
                .map(|a| a.request.prompt_tokens + a.request.output_tokens)
                .sum::<u64>(),
            "incremental KV reservation drifted from the running batch"
        );
        let mut admitted = Vec::new();
        let mut kv_reserved: f64 = kv::kv_bytes_per_sequence(model, self.reserved_tokens, dtype);
        while self.running.len() + admitted.len() < self.limits.max_batch {
            let Some((front, _)) = self.queue.front() else {
                break;
            };
            let need =
                kv::kv_bytes_per_sequence(model, front.prompt_tokens + front.output_tokens, dtype);
            if kv_reserved + need > self.limits.kv_budget_bytes {
                // Liveness clamp: a request whose extent alone exceeds the
                // budget would block an empty batch forever — admit it solo
                // and let it run oversubscribed (mirrors the paged path's
                // reserve_clamped). Otherwise FIFO head-of-line blocking,
                // like vLLM's default.
                let alone = self.running.is_empty() && admitted.is_empty();
                if !(alone && need > self.limits.kv_budget_bytes) {
                    break;
                }
            }
            kv_reserved += need;
            let (request, enqueued_s) = self.queue.pop_front().expect("front checked");
            self.reserved_tokens += request.prompt_tokens + request.output_tokens;
            self.stats.record_wait((now_s - enqueued_s).max(0.0));
            admitted.push(request);
        }
        admitted
    }

    /// Size (once) the page pool from the byte budget: `kv_budget_bytes`
    /// divided into `block_tokens`-sized pages for `model` at `dtype`.
    fn ensure_pool(&mut self, model: &ModelConfig, dtype: DType) {
        if self.pool.is_some() {
            return;
        }
        let page_bytes = kv::kv_bytes_per_sequence(model, self.kv.block_tokens, dtype);
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let pages = if page_bytes > 0.0 {
            (self.limits.kv_budget_bytes / page_bytes).floor().max(1.0) as u64
        } else {
            1
        };
        self.pool = Some(PagePool::new(pages, self.kv.block_tokens));
    }

    /// Policy-dispatching admission. Conservative configs take exactly
    /// the [`ContinuousBatcher::admit`] path; paged configs admit on
    /// prompt pages only (readmitting swapped-out sequences first, FIFO
    /// with head-of-line blocking) and leave output growth to
    /// [`ContinuousBatcher::prepare_step`].
    pub fn admit_any(&mut self, model: &ModelConfig, dtype: DType, now_s: f64) -> Vec<Admission> {
        if self.kv.static_batching && !self.running.is_empty() {
            return Vec::new();
        }
        if !self.kv.policy.is_paged() {
            return self
                .admit(model, dtype, now_s)
                .into_iter()
                .map(Admission::Fresh)
                .collect();
        }
        self.ensure_pool(model, dtype);
        let pool = self.pool.as_mut().expect("pool just ensured");
        let mut out = Vec::new();
        // 1) Swapped-out sequences first: they were admitted before
        //    anything still queued, and hold users mid-generation.
        while self.running.len() < self.limits.max_batch {
            let Some(front) = self.swapped.front() else {
                break;
            };
            let tokens = front.context();
            if !pool.try_reserve(front.request.id, tokens) {
                if self.running.is_empty() {
                    // Liveness clamp: an oversized sequence alone still
                    // runs (partially resident, priced by pressure).
                    pool.reserve_clamped(front.request.id, tokens);
                } else {
                    break; // head-of-line: preserve readmission order
                }
            }
            let seq = self.swapped.pop_front().expect("front checked");
            out.push(Admission::Resumed {
                request: seq.request,
                swap_in_tokens: tokens,
            });
            self.running.push(seq);
        }
        // 2) Fresh requests on prompt pages only (+1 for the token the
        //    prefill itself emits).
        let mut fresh = 0usize;
        while self.running.len() + fresh < self.limits.max_batch {
            let Some((front, _)) = self.queue.front() else {
                break;
            };
            let tokens = front.prompt_tokens + 1;
            if !pool.try_reserve(front.id, tokens) {
                if self.running.is_empty() && fresh == 0 {
                    pool.reserve_clamped(front.id, tokens);
                } else {
                    break;
                }
            }
            let (request, enqueued_s) = self.queue.pop_front().expect("front checked");
            self.stats.record_wait((now_s - enqueued_s).max(0.0));
            out.push(Admission::Fresh(request));
            fresh += 1;
        }
        out
    }

    /// Insert an admitted request whose prefill completed at
    /// `first_token_s`.
    pub fn start(&mut self, request: Request, first_token_s: f64) {
        self.running.push(ActiveRequest {
            request,
            generated: 1, // the prefill produced the first token
            first_token_s,
        });
    }

    /// Make room for the next decode step under a paged policy: grow
    /// every running sequence by the token it is about to emit, preempting
    /// from the batch tail (newest first — never the head, so the oldest
    /// sequence always progresses and no one starves) until the pool
    /// fits. Conservative configs return an empty prep unchanged.
    pub fn prepare_step(&mut self, now_s: f64) -> StepPrep {
        let mut prep = StepPrep::default();
        if !self.kv.policy.is_paged() {
            return prep;
        }
        let Some(pool) = self.pool.as_mut() else {
            return prep;
        };
        loop {
            let needed: u64 = self
                .running
                .iter()
                .map(|a| pool.pages_for(a.context() + 1))
                .sum();
            if needed <= pool.total_pages() || self.running.len() <= 1 {
                break;
            }
            let victim = self.running.pop().expect("len > 1 checked");
            pool.release(victim.request.id);
            match self.kv.policy {
                KvPolicy::PagedRecompute => {
                    // Pages dropped; progress lost. Front-of-queue entry
                    // readmits the victim before anything younger.
                    self.queue.push_front((victim.request, now_s));
                    self.stats.depth_peak = self.stats.depth_peak.max(self.queue.len());
                    prep.preempted_recompute.push(victim.request);
                }
                KvPolicy::PagedSwap => prep.preempted_swap.push(victim),
                KvPolicy::Conservative => unreachable!("conservative returned above"),
            }
        }
        // Tail-first popping yields newest-first victims; append oldest
        // first so swap readmission stays FIFO by original admission.
        for v in prep.preempted_swap.iter().rev() {
            self.swapped.push_back(*v);
        }
        for a in &self.running {
            let target = a.context() + 1;
            if !pool.try_reserve(a.request.id, target) {
                // Only a sole survivor larger than the pool lands here.
                pool.reserve_clamped(a.request.id, target);
            }
        }
        prep.resident_pages = pool.pages_in_use();
        prep
    }

    /// Advance every running request by one decode step; remove and
    /// return the ones that finished (their KV is released).
    pub fn step(&mut self) -> Vec<ActiveRequest> {
        for a in &mut self.running {
            a.generated += 1;
        }
        let mut finished = Vec::new();
        self.running.retain(|a| {
            if a.done() {
                finished.push(*a);
                false
            } else {
                true
            }
        });
        for f in &finished {
            if let Some(pool) = self.pool.as_mut() {
                pool.release(f.request.id);
            } else {
                self.reserved_tokens = self
                    .reserved_tokens
                    .saturating_sub(f.request.prompt_tokens + f.request.output_tokens);
            }
        }
        finished
    }

    /// Whether any work remains (queued, running, or swapped out).
    #[must_use]
    pub fn idle(&self) -> bool {
        self.queue.is_empty() && self.running.is_empty() && self.swapped.is_empty()
    }

    /// Remove and return the entire running batch: the node crashed and
    /// every resident request lost its KV cache. Swapped-out sequences
    /// are lost with the node too (their swap image is useless without
    /// the enclave that owns it). Queued (not yet admitted) requests are
    /// unaffected — they hold no enclave state.
    pub fn drain_running(&mut self) -> Vec<ActiveRequest> {
        self.reserved_tokens = 0;
        let mut out = std::mem::take(&mut self.running);
        if let Some(pool) = self.pool.as_mut() {
            for a in &out {
                pool.release(a.request.id);
            }
        }
        out.extend(self.swapped.drain(..));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_workload::zoo;

    fn req(id: u64, prompt: u64, output: u64) -> Request {
        Request {
            id,
            arrival_s: 0.0,
            prompt_tokens: prompt,
            output_tokens: output,
        }
    }

    fn limits(max_batch: usize, kv_gib: f64) -> SchedulerLimits {
        SchedulerLimits {
            max_batch,
            kv_budget_bytes: kv_gib * cllm_hw::GIB,
        }
    }

    fn paged(policy: KvPolicy, max_batch: usize, kv_gib: f64) -> ContinuousBatcher {
        ContinuousBatcher::configured(
            limits(max_batch, kv_gib),
            KvConfig {
                policy,
                ..KvConfig::default()
            },
        )
    }

    #[test]
    fn batch_cap_enforced() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(2, 100.0));
        for i in 0..5 {
            s.enqueue(req(i, 64, 16));
        }
        let admitted = s.admit(&model, DType::Bf16, 0.0);
        assert_eq!(admitted.len(), 2);
        assert_eq!(s.queued(), 3);
    }

    #[test]
    fn kv_budget_enforced() {
        let model = zoo::llama2_7b();
        // One 2048-token sequence holds ~1 GiB of KV at bf16; a 1.5 GiB
        // budget admits exactly one.
        let mut s = ContinuousBatcher::new(limits(16, 1.5));
        s.enqueue(req(0, 2000, 48));
        s.enqueue(req(1, 2000, 48));
        let admitted = s.admit(&model, DType::Bf16, 0.0);
        assert_eq!(admitted.len(), 1);
    }

    #[test]
    fn fifo_order_preserved() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(3, 100.0));
        for i in 0..3 {
            s.enqueue(req(i, 32, 8));
        }
        let admitted = s.admit(&model, DType::Bf16, 0.0);
        let ids: Vec<u64> = admitted.iter().map(|r| r.id).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn requests_finish_after_output_budget() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(4, 100.0));
        s.enqueue(req(0, 16, 3));
        for r in s.admit(&model, DType::Bf16, 0.0) {
            s.start(r, 0.1);
        }
        // first token came from prefill; two more decode steps finish it.
        assert!(s.step().is_empty());
        let finished = s.step();
        assert_eq!(finished.len(), 1);
        assert!(s.idle());
    }

    #[test]
    fn continuous_admission_between_steps() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(2, 100.0));
        s.enqueue(req(0, 16, 2));
        s.enqueue(req(1, 16, 8));
        s.enqueue(req(2, 16, 8));
        for r in s.admit(&model, DType::Bf16, 0.0) {
            s.start(r, 0.1);
        }
        assert_eq!(s.running().len(), 2);
        let _ = s.step(); // request 0 finishes (budget 2: prefill + 1 step)
        assert_eq!(s.running().len(), 1);
        // The freed slot admits request 2 at the next boundary.
        let admitted = s.admit(&model, DType::Bf16, 0.2);
        assert_eq!(admitted.len(), 1);
        assert_eq!(admitted[0].id, 2);
    }

    #[test]
    fn queue_stats_track_depth_and_waits() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(2, 100.0));
        for i in 0..4 {
            s.enqueue(req(i, 16, 4)); // arrival_s = 0.0
        }
        assert_eq!(s.queue_stats().depth_peak, 4);
        let admitted = s.admit(&model, DType::Bf16, 0.5);
        assert_eq!(admitted.len(), 2);
        // Both admissions waited 0.5 s from their arrival at t=0.
        assert_eq!(s.queue_stats().wait_samples(), [0.5, 0.5]);
        assert_eq!(s.queue_stats().wait_count(), 2);
        assert!((s.queue_stats().wait_sum_s() - 1.0).abs() < 1e-12);
        // A retry enqueued late measures its wait from the re-enqueue.
        s.enqueue_at(req(9, 16, 4), 10.0);
        let _ = s.step(); // nothing running; no-op
        assert_eq!(s.queue_stats().depth_peak, 4, "peak is a high-water mark");
    }

    #[test]
    fn wait_sampler_sees_late_congestion() {
        // Regression for the keep-first-N percentile bias: a schedule
        // that is quiet for the first WAIT_SAMPLE_CAP admissions and
        // congested afterwards must surface the late waits in the
        // retained samples, not only in the mean.
        let mut q = QueueStats::default();
        for _ in 0..WAIT_SAMPLE_CAP {
            q.record_wait(0.01);
        }
        for _ in 0..WAIT_SAMPLE_CAP {
            q.record_wait(5.0);
        }
        let samples = q.wait_samples();
        assert!(samples.len() <= WAIT_SAMPLE_CAP, "cap must hold");
        assert!(q.wait_sample_stride() > 1, "cap overflow must decimate");
        let late = samples.iter().filter(|&&w| w > 1.0).count();
        // Half the run was congested, so roughly half the retained
        // samples must come from it (keep-first-N retained zero).
        assert!(
            (late as f64) > 0.4 * samples.len() as f64,
            "late congestion underrepresented: {late}/{}",
            samples.len()
        );
        // Sampled p99 must reflect the congested half.
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(sorted[(sorted.len() * 99) / 100] > 1.0);
        assert_eq!(q.wait_count(), 2 * WAIT_SAMPLE_CAP as u64);
    }

    #[test]
    fn wait_sampler_is_exact_below_cap() {
        let mut q = QueueStats::default();
        for i in 0..1000 {
            q.record_wait(f64::from(i) * 0.001);
        }
        assert_eq!(q.wait_samples().len(), 1000, "below cap keeps all");
        assert_eq!(q.wait_sample_stride(), 1);
        assert!((q.wait_samples()[999] - 0.999).abs() < 1e-12);
    }

    #[test]
    fn wait_sampler_retains_uniform_stride_indices() {
        // After decimation the retained set is exactly the global
        // indices that are multiples of the final stride.
        let mut q = QueueStats::default();
        let n = WAIT_SAMPLE_CAP as u64 * 3;
        for i in 0..n {
            #[allow(clippy::cast_precision_loss)]
            q.record_wait(i as f64);
        }
        let stride = q.wait_sample_stride();
        assert!(stride >= 2);
        for (j, &w) in q.wait_samples().iter().enumerate() {
            #[allow(clippy::cast_precision_loss)]
            let expect = (j as u64 * stride) as f64;
            assert!((w - expect).abs() < 1e-9, "sample {j}: {w} != {expect}");
        }
    }

    #[test]
    fn shed_removes_only_matching_queued_requests() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(1, 100.0));
        for i in 0..3 {
            s.enqueue(req(i, 16, 4));
        }
        for r in s.admit(&model, DType::Bf16, 0.0) {
            s.start(r, 0.1);
        }
        let shed = s.shed(|r| r.id == 2);
        assert_eq!(shed.len(), 1);
        assert_eq!(shed[0].id, 2);
        assert_eq!(s.queued(), 1);
        assert_eq!(s.running().len(), 1, "running batch untouched by shed");
    }

    #[test]
    fn kv_in_use_tracks_context() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(2, 100.0));
        s.enqueue(req(0, 100, 10));
        for r in s.admit(&model, DType::Bf16, 0.0) {
            s.start(r, 0.0);
        }
        let before = s.kv_in_use(&model, DType::Bf16);
        let _ = s.step();
        let after = s.kv_in_use(&model, DType::Bf16);
        assert!(after > before);
    }

    fn start_all(s: &mut ContinuousBatcher, model: &ModelConfig, now: f64) -> usize {
        let admitted = s.admit_any(model, DType::Bf16, now);
        let n = admitted.len();
        for a in admitted {
            if let Admission::Fresh(r) = a {
                s.start(r, now);
            }
        }
        n
    }

    #[test]
    fn paged_admission_needs_only_prompt_pages() {
        let model = zoo::llama2_7b();
        // Conservative reserves 2048+512 tokens (= 1.25 GiB) per request
        // and admits one into 2.1 GiB; paged admission reserves prompt
        // pages only (~1 GiB each) and fits both.
        let mut cons = ContinuousBatcher::new(limits(16, 2.1));
        let mut page = paged(KvPolicy::PagedRecompute, 16, 2.1);
        for s in [&mut cons, &mut page] {
            s.enqueue(req(0, 2048, 512));
            s.enqueue(req(1, 2048, 512));
        }
        assert_eq!(cons.admit(&model, DType::Bf16, 0.0).len(), 1);
        assert_eq!(start_all(&mut page, &model, 0.0), 2);
    }

    #[test]
    fn paged_sequences_grow_page_by_page() {
        let model = zoo::llama2_7b();
        let mut s = paged(KvPolicy::PagedRecompute, 4, 100.0);
        s.enqueue(req(0, 20, 40));
        start_all(&mut s, &model, 0.0);
        let pages_at = |s: &ContinuousBatcher| s.pool().unwrap().pages_in_use();
        // 21 tokens at block 16 = 2 pages after admission.
        assert_eq!(pages_at(&s), 2);
        for _ in 0..11 {
            let _ = s.prepare_step(0.0);
            let _ = s.step();
        }
        // context 32 -> next step needs 33 tokens = 3 pages.
        let _ = s.prepare_step(0.0);
        assert_eq!(pages_at(&s), 3);
    }

    #[test]
    fn recompute_preemption_evicts_tail_and_requeues_front() {
        let model = zoo::llama2_7b();
        // Pool of 3 pages at block 16: two 17-token (2-page) sequences
        // cannot both grow.
        let bytes_per_tok = kv::kv_bytes_per_sequence(&model, 1, DType::Bf16);
        let mut s = ContinuousBatcher::configured(
            SchedulerLimits {
                max_batch: 4,
                kv_budget_bytes: 3.0 * 16.0 * bytes_per_tok,
            },
            KvConfig {
                policy: KvPolicy::PagedRecompute,
                ..KvConfig::default()
            },
        );
        s.enqueue(req(0, 14, 8));
        s.enqueue(req(1, 14, 8));
        assert_eq!(start_all(&mut s, &model, 0.0), 2); // 1 page each
                                                       // Grow both to 16 tokens: still 1 page each.
        let p = s.prepare_step(0.1);
        assert!(p.preempted_recompute.is_empty());
        let _ = s.step();
        // Next step needs 17 tokens = 2 pages each = 4 > 3: evict the
        // newest (id 1), which re-enters the queue front.
        let p = s.prepare_step(0.2);
        assert_eq!(p.preempted_recompute.len(), 1);
        assert_eq!(p.preempted_recompute[0].id, 1);
        assert_eq!(s.running().len(), 1);
        assert_eq!(s.running()[0].request.id, 0);
        assert_eq!(s.queued(), 1);
        assert!(!s.idle(), "victim must remain schedulable");
    }

    #[test]
    fn swap_preemption_keeps_progress_and_resumes() {
        let model = zoo::llama2_7b();
        let bytes_per_tok = kv::kv_bytes_per_sequence(&model, 1, DType::Bf16);
        let mut s = ContinuousBatcher::configured(
            SchedulerLimits {
                max_batch: 4,
                kv_budget_bytes: 3.0 * 16.0 * bytes_per_tok,
            },
            KvConfig {
                policy: KvPolicy::PagedSwap,
                ..KvConfig::default()
            },
        );
        s.enqueue(req(0, 14, 4));
        s.enqueue(req(1, 14, 40));
        assert_eq!(start_all(&mut s, &model, 0.0), 2);
        let _ = s.prepare_step(0.1);
        let _ = s.step(); // both at 16 tokens
        let p = s.prepare_step(0.2);
        assert_eq!(p.preempted_swap.len(), 1);
        let victim = p.preempted_swap[0];
        assert_eq!(victim.request.id, 1);
        assert_eq!(victim.generated, 2, "progress travels with the swap");
        assert_eq!(s.swapped_out(), 1);
        // Finish request 0 (output 4: prefill + 3 steps), freeing pages.
        let _ = s.step();
        let finished = s.step();
        assert_eq!(finished.len(), 1);
        // Readmission resumes the swapped sequence with progress intact.
        let adm = s.admit_any(&model, DType::Bf16, 0.5);
        assert_eq!(adm.len(), 1);
        match adm[0] {
            Admission::Resumed {
                request,
                swap_in_tokens,
            } => {
                assert_eq!(request.id, 1);
                assert_eq!(swap_in_tokens, 16);
            }
            Admission::Fresh(_) => panic!("swap victims resume, not re-prefill"),
        }
        assert_eq!(s.running()[0].generated, 2);
    }

    #[test]
    fn static_batching_admits_only_into_empty_batch() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::configured(
            limits(2, 100.0),
            KvConfig {
                static_batching: true,
                ..KvConfig::default()
            },
        );
        for i in 0..3 {
            s.enqueue(req(i, 16, 3));
        }
        assert_eq!(start_all(&mut s, &model, 0.0), 2);
        let _ = s.step(); // one step remains for both
                          // Continuous batching would refill the free slot here; static
                          // admission waits for the whole batch to drain.
        assert_eq!(s.admit_any(&model, DType::Bf16, 0.1).len(), 0);
        let _ = s.step();
        assert!(s.running().is_empty());
        assert_eq!(start_all(&mut s, &model, 0.2), 1);
    }

    #[test]
    fn oversized_request_is_clamped_not_starved() {
        let model = zoo::llama2_7b();
        let bytes_per_tok = kv::kv_bytes_per_sequence(&model, 1, DType::Bf16);
        // Pool of 2 pages; the prompt alone needs 5.
        let mut s = ContinuousBatcher::configured(
            SchedulerLimits {
                max_batch: 4,
                kv_budget_bytes: 2.0 * 16.0 * bytes_per_tok,
            },
            KvConfig {
                policy: KvPolicy::PagedRecompute,
                ..KvConfig::default()
            },
        );
        s.enqueue(req(0, 70, 3));
        assert_eq!(start_all(&mut s, &model, 0.0), 1);
        let prep = s.prepare_step(0.1);
        assert_eq!(prep.resident_pages, 2, "fully occupied, partially resident");
        let _ = s.step();
        let _ = s.prepare_step(0.2);
        let finished = s.step();
        assert_eq!(finished.len(), 1);
        assert!(s.idle());
        assert_eq!(s.pool().unwrap().pages_in_use(), 0);
    }

    #[test]
    fn conservative_prepare_step_is_a_no_op() {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(limits(4, 100.0));
        s.enqueue(req(0, 64, 8));
        for r in s.admit(&model, DType::Bf16, 0.0) {
            s.start(r, 0.0);
        }
        let prep = s.prepare_step(0.1);
        assert_eq!(prep, StepPrep::default());
        assert!(s.pool().is_none());
    }

    #[test]
    fn drain_running_reclaims_pages_and_swapped() {
        let model = zoo::llama2_7b();
        let bytes_per_tok = kv::kv_bytes_per_sequence(&model, 1, DType::Bf16);
        let mut s = ContinuousBatcher::configured(
            SchedulerLimits {
                max_batch: 4,
                kv_budget_bytes: 3.0 * 16.0 * bytes_per_tok,
            },
            KvConfig {
                policy: KvPolicy::PagedSwap,
                ..KvConfig::default()
            },
        );
        s.enqueue(req(0, 14, 40));
        s.enqueue(req(1, 14, 40));
        start_all(&mut s, &model, 0.0);
        let _ = s.prepare_step(0.1);
        let _ = s.step();
        let _ = s.prepare_step(0.2); // swaps out id 1
        assert_eq!(s.swapped_out(), 1);
        let drained = s.drain_running();
        assert_eq!(drained.len(), 2, "crash loses running and swapped state");
        assert!(s.idle());
        assert_eq!(s.pool().unwrap().pages_in_use(), 0);
    }
}
