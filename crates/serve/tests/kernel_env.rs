//! The kernel's event order is a pure function of the pushed
//! `(time, key, seq)` triples — never of runtime parallelism knobs. The
//! experiment runner's `CLLM_RUNNER_THREADS` variable steers how many
//! worker threads evaluate experiment grids, so this test pins that
//! same-timestamp events pop in the identical deterministic sequence
//! under every thread-count setting.
//!
//! Lives in its own single-test integration binary because it mutates
//! the process-global environment; sharing a binary with other tests
//! would race on it.

use cllm_serve::kernel::EventQueue;

fn pop_order_under(threads: &str) -> Vec<u64> {
    std::env::set_var("CLLM_RUNNER_THREADS", threads);
    let mut q = EventQueue::new();
    // Same-timestamp entries with colliding and distinct keys, pushed in
    // a scrambled order.
    for (t, id) in [
        (2.0, 11u64),
        (1.0, 5),
        (2.0, 4),
        (1.0, 5), // same (time, key): seq must break the tie
        (2.0, 4),
        (1.0, 9),
        (3.0, 0),
    ] {
        q.push_keyed(t, id, id);
    }
    let mut order = Vec::new();
    while let Some((_, id)) = q.pop() {
        order.push(id);
    }
    order
}

#[test]
fn same_timestamp_pop_order_is_stable_across_runner_threads() {
    let baseline = pop_order_under("1");
    assert_eq!(
        baseline,
        [5, 5, 9, 4, 4, 11, 0],
        "(time, key, seq) order: time first, then key, then insertion seq"
    );
    for threads in ["2", "4", "8", "13"] {
        assert_eq!(
            pop_order_under(threads),
            baseline,
            "pop order diverged under CLLM_RUNNER_THREADS={threads}"
        );
    }
    std::env::remove_var("CLLM_RUNNER_THREADS");
}
