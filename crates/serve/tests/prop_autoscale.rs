//! Property tests on the attestation-aware autoscaler: conservation of
//! every arrival into exactly one terminal state, retry-budget
//! liveness, billing identities, and byte-determinism of the whole
//! report across runner-thread settings.

use cllm_cost::SpillPenalty;
use cllm_serve::autoscale::{simulate_autoscale, AutoscaleConfig, ControllerConfig, RentalSpec};
use cllm_serve::cluster::NodeSpec;
use cllm_serve::faults::FaultRates;
use cllm_serve::router::{BreakerConfig, BrownoutConfig, RetryBudget, TieredAdmission};
use cllm_serve::sim::{ServingConfig, ServingNode};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::trace::{LognormalLen, Tier, TierMix, TrafficModel};
use proptest::prelude::*;

fn tdx() -> ServingNode {
    ServingNode::Cpu {
        tee: CpuTeeConfig::tdx(),
    }
}

#[allow(clippy::too_many_arguments)]
fn build_cfg(
    rate: f64,
    multiplier: f64,
    bursts_per_hr: f64,
    amplitude: f64,
    mix: (f64, f64, f64),
    traffic_seed: u64,
    crashes_per_hr: f64,
    warm_pool: usize,
    max_rented: usize,
    brownout: bool,
    retry: RetryBudget,
) -> AutoscaleConfig {
    let mut traffic = TrafficModel::flash_crowd(rate, multiplier, traffic_seed);
    traffic.bursts.bursts_per_hr = bursts_per_hr;
    traffic.bursts.window_s = 8.0;
    traffic.diurnal_amplitude = amplitude;
    traffic.mix = TierMix {
        free: mix.0,
        standard: mix.1,
        premium: mix.2,
    };
    traffic.prompt = LognormalLen {
        mu_ln: 3.5,
        sigma_ln: 0.5,
        min_tokens: 16,
        max_tokens: 128,
    };
    traffic.output = LognormalLen {
        mu_ln: 2.5,
        sigma_ln: 0.4,
        min_tokens: 4,
        max_tokens: 32,
    };
    let rates = FaultRates {
        enclave_crashes_per_hr: crashes_per_hr,
        ..FaultRates::none()
    };
    AutoscaleConfig {
        serving: ServingConfig {
            duration_s: 15.0,
            ..ServingConfig::small_test()
        },
        traffic,
        base_fleet: vec![NodeSpec::new(tdx(), false, rates, 1)],
        base_price_per_hr: 3.0,
        rental: RentalSpec {
            node: tdx(),
            rates,
            price_per_hr: 4.0,
            attest_s: 0.5,
            seed: 77,
        },
        warm_pool,
        controller: ControllerConfig {
            control_interval_s: 1.0,
            max_rented,
            ..ControllerConfig::default()
        },
        tiers: TieredAdmission::default(),
        retry,
        brownout: brownout.then_some(BrownoutConfig {
            enter_depth: 12,
            exit_depth: 4,
            output_cap_tokens: 8,
        }),
        breaker: BreakerConfig::default(),
        spill: SpillPenalty::cross_platform(),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Across random traffic shapes, tier mixes, fault intensities and
    /// controller bounds: every arrival ends in exactly one terminal
    /// state, per-tier slices tile the totals, the scale-up ledger
    /// balances, and billing identities hold.
    #[test]
    fn autoscale_conservation_under_random_crowds(
        rate in 0.5f64..4.0,
        multiplier in 1.0f64..12.0,
        bursts_per_hr in 0.0f64..400.0,
        amplitude in 0.0f64..0.5,
        free_w in 0.1f64..1.0,
        standard_w in 0.1f64..1.0,
        premium_w in 0.05f64..0.5,
        traffic_seed in 0u64..40,
        crashes_per_hr in 0.0f64..600.0,
        warm_pool in 0usize..3,
        max_rented in 0usize..4,
        brownout_bit in 0u32..2,
    ) {
        let cfg = build_cfg(
            rate, multiplier, bursts_per_hr, amplitude,
            (free_w, standard_w, premium_w), traffic_seed,
            crashes_per_hr, warm_pool, max_rented, brownout_bit == 1,
            RetryBudget::default(),
        );
        let r = simulate_autoscale(&cfg);
        prop_assert_eq!(
            r.completed + r.aborted + r.shed,
            r.arrivals,
            "lost requests: {} + {} + {} != {}",
            r.completed, r.aborted, r.shed, r.arrivals
        );
        prop_assert_eq!(r.completed, r.records.len());
        for (label, total, per_tier) in [
            ("arrivals", r.arrivals, r.tiers.map(|t| t.arrivals)),
            ("completed", r.completed, r.tiers.map(|t| t.completed)),
            ("shed", r.shed, r.tiers.map(|t| t.shed)),
            ("aborted", r.aborted, r.tiers.map(|t| t.aborted)),
        ] {
            prop_assert_eq!(total, per_tier.iter().sum::<usize>(), "tier slices of {} must tile", label);
        }
        for t in Tier::ALL {
            let tr = &r.tiers[t.index()];
            prop_assert!(tr.slo_met <= tr.completed);
            let a = tr.slo_attainment();
            prop_assert!((0.0..=1.0).contains(&a));
        }
        // Scale-up ledger: every decision is a promotion or a cold
        // start, promotions never exceed the pool, and the horizon
        // clamp bounds the cold-start bill.
        prop_assert_eq!(r.scale_ups, r.warm_promotions + r.cold_starts);
        prop_assert!(r.warm_promotions as usize <= warm_pool);
        let boot_s = cfg.rental.attest_s + cfg.rental.node.weight_unseal_time_s(&cfg.serving);
        prop_assert!(r.cold_start_s <= r.cold_starts as f64 * boot_s + 1e-9);
        prop_assert!(r.unseal_s <= r.cold_start_s + 1e-9);
        // Billing identities.
        prop_assert!(r.rental_cost_usd >= 0.0 && r.warm_pool_cost_usd >= 0.0);
        let total = r.rental_cost_usd + r.warm_pool_cost_usd + r.base_cost_usd;
        prop_assert!((r.total_cost_usd - total).abs() < 1e-9);
        prop_assert!(r.usd_per_mtok.is_finite() && r.usd_per_mtok >= 0.0);
        prop_assert!(r.makespan_s.is_finite());
        for rec in &r.records {
            prop_assert!(rec.ttft_s > 0.0 && rec.e2e_s >= rec.ttft_s, "id {}", rec.id);
        }
    }

    /// Retry-budget liveness: whatever the budget, the run terminates
    /// with conservation intact, no surviving record exceeds the
    /// per-request cap, and a zero budget means zero retries.
    #[test]
    fn retry_budget_is_always_respected(
        per_request in 0u32..4,
        storm_max in 1usize..64,
        crashes_per_hr in 100.0f64..900.0,
        traffic_seed in 0u64..40,
    ) {
        let retry = RetryBudget {
            per_request,
            storm_window_s: 10.0,
            storm_max_retries: storm_max,
        };
        let cfg = build_cfg(
            2.0, 1.0, 0.0, 0.2, (0.7, 0.25, 0.05), traffic_seed,
            crashes_per_hr, 0, 0, false, retry,
        );
        let r = simulate_autoscale(&cfg);
        prop_assert_eq!(r.completed + r.aborted + r.shed, r.arrivals);
        for rec in &r.records {
            prop_assert!(
                rec.retries <= per_request,
                "record {} retried {} times past a budget of {}",
                rec.id, rec.retries, per_request
            );
        }
        if per_request == 0 {
            prop_assert_eq!(r.retries, 0, "a zero budget must suppress every retry");
        }
    }
}

/// The autoscaler is single-threaded and seed-driven: its report must
/// serialize to identical bytes run-to-run and regardless of the
/// process-global `CLLM_RUNNER_THREADS` the experiment harness sets.
#[test]
fn autoscale_report_bytes_are_thread_invariant() {
    let cfg = build_cfg(
        3.0,
        8.0,
        360.0,
        0.25,
        (0.7, 0.25, 0.05),
        9,
        300.0,
        1,
        4,
        true,
        RetryBudget::default(),
    );
    let run_with = |threads: &str| {
        std::env::set_var("CLLM_RUNNER_THREADS", threads);
        serde_json::to_string_pretty(simulate_autoscale(&cfg)).expect("serializes")
    };
    let json_1 = run_with("1");
    let json_4 = run_with("4");
    let json_7 = run_with("7");
    std::env::remove_var("CLLM_RUNNER_THREADS");
    assert_eq!(json_1, json_4, "diverges between 1 and 4 runner threads");
    assert_eq!(json_1, json_7, "diverges between 1 and 7 runner threads");
}
