//! Property tests on the paged KV path: page-pool conservation under
//! arbitrary reserve/release schedules, readmission liveness for both
//! preemption policies, and kernel-vs-legacy equality when the pool is
//! sized so pressure never fires.

use cllm_serve::faults::FaultPlan;
use cllm_serve::scheduler::{KvConfig, KvPolicy, SchedulerLimits};
use cllm_serve::sim::{simulate_serving_faulted, ServingConfig, ServingNode};
use cllm_serve::workload::ArrivalProcess;
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::kv::PagePool;
use proptest::prelude::*;

/// A single step of a random pool schedule, encoded as
/// `(kind, id, tokens)`: kind 0 = best-effort reserve, 1 = clamped
/// grow, 2 = release.
type Op = (u8, u64, u64);

fn apply(pool: &mut PagePool, (kind, id, tokens): Op) {
    match kind {
        0 => {
            let _ = pool.try_reserve(id, tokens);
        }
        1 => pool.reserve_clamped(id, tokens),
        _ => {
            let _ = pool.release(id);
        }
    }
}

fn paged_cfg(policy: KvPolicy, rate: f64, seed: u64, pool_bytes: f64) -> ServingConfig {
    ServingConfig {
        limits: SchedulerLimits {
            max_batch: 8,
            kv_budget_bytes: pool_bytes,
        },
        kv: KvConfig {
            policy,
            ..KvConfig::default()
        },
        arrivals: ArrivalProcess {
            rate_per_s: rate,
            prompt_range: (16, 96),
            output_range: (32, 128),
            seed,
        },
        duration_s: 15.0,
        ..ServingConfig::small_test()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Pages are conserved across any schedule of reservations, clamped
    /// growths and releases: `free + in_use == total` after every op,
    /// and every resident page table stays within the pool.
    #[test]
    fn pool_conserves_pages_under_any_schedule(
        total in 1u64..64,
        block in 1u64..64,
        ops in proptest::collection::vec((0u8..3, 0u64..12, 1u64..600), 1..80),
    ) {
        let mut pool = PagePool::new(total, block);
        for op in ops {
            apply(&mut pool, op);
            prop_assert!(pool.conserved(), "pool lost pages after {op:?}");
            prop_assert_eq!(pool.free_pages() + pool.pages_in_use(), pool.total_pages());
            prop_assert!(pool.pages_in_use() <= pool.total_pages());
        }
    }

    /// Fault-free paged runs terminate every arrival, under either
    /// preemption policy and pools small enough to evict constantly:
    /// preempted sequences always readmit and finish (no starvation).
    #[test]
    fn paged_runs_complete_every_arrival(
        rate in 0.5f64..4.0,
        seed in 0u64..40,
        pool_mib in 24.0f64..512.0,
        swap in 0u8..2,
    ) {
        let policy = if swap == 1 { KvPolicy::PagedSwap } else { KvPolicy::PagedRecompute };
        let cfg = paged_cfg(policy, rate, seed, pool_mib * 1024.0 * 1024.0);
        let node = ServingNode::Cpu { tee: CpuTeeConfig::tdx() };
        let report = simulate_serving_faulted(&cfg, &node, &FaultPlan::none());
        prop_assert_eq!(report.completed, report.arrivals, "paged {policy:?} starved");
        prop_assert_eq!(report.aborted, 0);
        for r in &report.records {
            prop_assert!(r.ttft_s > 0.0, "id {}", r.id);
            prop_assert!(r.e2e_s >= r.ttft_s);
        }
    }

    /// With the pool sized far above the trace's peak working set no
    /// preemption can fire, and the paged kernel run reproduces the
    /// legacy conservative loop byte for byte once serialized — paging
    /// is pay-for-what-you-use.
    #[test]
    fn unpressured_paged_run_matches_legacy(
        rate in 0.5f64..3.0,
        seed in 0u64..40,
        swap in 0u8..2,
    ) {
        let policy = if swap == 1 { KvPolicy::PagedSwap } else { KvPolicy::PagedRecompute };
        let cfg = paged_cfg(policy, rate, seed, 64.0 * cllm_hw::GIB);
        let node = ServingNode::Cpu { tee: CpuTeeConfig::tdx() };
        let kernel = simulate_serving_faulted(&cfg, &node, &FaultPlan::none());
        prop_assert_eq!(kernel.preemptions, 0, "64 GiB pool must never pressure");
        prop_assert_eq!(kernel.swap_out_bytes, 0.0);
        // The legacy loop predates paging and always reserves full
        // extents; an unpressured paged run must be indistinguishable.
        let legacy = cllm_serve::legacy::simulate_serving_faulted(&cfg, &node, &FaultPlan::none());
        prop_assert_eq!(&kernel, &legacy, "unpressured paged diverged from legacy");
        let jk = serde_json::to_string(&kernel).expect("report serializes");
        let jl = serde_json::to_string(&legacy).expect("report serializes");
        prop_assert_eq!(jk, jl, "serialized reports must be byte-identical");
    }
}
