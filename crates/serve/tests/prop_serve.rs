//! Property tests on the serving simulator.

use cllm_serve::scheduler::{ContinuousBatcher, SchedulerLimits};
use cllm_serve::sim::{simulate_serving, ServingConfig};
use cllm_serve::workload::{ArrivalProcess, Request};
use cllm_tee::platform::CpuTeeConfig;
use cllm_workload::zoo;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Every arrival eventually completes, with sane per-request records.
    #[test]
    fn conservation_of_requests(rate in 0.2f64..4.0, seed in 0u64..50) {
        let cfg = ServingConfig {
            arrivals: ArrivalProcess { rate_per_s: rate, prompt_range: (16, 128),
                                       output_range: (4, 32), seed },
            duration_s: 20.0,
            ..ServingConfig::small_test()
        };
        let report = simulate_serving(&cfg, &CpuTeeConfig::tdx());
        prop_assert_eq!(report.completed, report.arrivals);
        for r in &report.records {
            prop_assert!(r.ttft_s > 0.0, "id {}", r.id);
            prop_assert!(r.tpot_s > 0.0);
            prop_assert!(r.e2e_s >= r.ttft_s);
        }
    }

    /// The scheduler never exceeds its batch cap, for any request mix.
    #[test]
    fn batch_cap_invariant(cap in 1usize..8,
                           prompts in proptest::collection::vec((1u64..512, 1u64..64), 1..24)) {
        let model = zoo::llama2_7b();
        let mut s = ContinuousBatcher::new(SchedulerLimits {
            max_batch: cap,
            kv_budget_bytes: 256.0 * cllm_hw::GIB,
        });
        for (i, (p, o)) in prompts.iter().enumerate() {
            s.enqueue(Request { id: i as u64, arrival_s: 0.0, prompt_tokens: *p, output_tokens: *o });
        }
        let mut guard = 0;
        while !s.idle() {
            for r in s.admit(&model, cllm_hw::DType::Bf16, 0.0) {
                s.start(r, 0.0);
            }
            prop_assert!(s.running().len() <= cap, "cap {cap} exceeded");
            let _ = s.step();
            guard += 1;
            prop_assert!(guard < 10_000, "scheduler did not drain");
        }
    }

    /// Higher arrival rates never reduce total goodput (work conserving).
    #[test]
    fn goodput_monotone_in_rate(seed in 0u64..20) {
        let run = |rate: f64| {
            simulate_serving(&ServingConfig {
                arrivals: ArrivalProcess { rate_per_s: rate, prompt_range: (16, 64),
                                           output_range: (4, 16), seed },
                duration_s: 20.0,
                ..ServingConfig::small_test()
            }, &CpuTeeConfig::bare_metal())
        };
        let slow = run(0.5);
        let fast = run(4.0);
        prop_assert!(fast.goodput_tps >= slow.goodput_tps * 0.9,
            "fast {} vs slow {}", fast.goodput_tps, slow.goodput_tps);
    }
}
