//! Property tests on the multi-node cluster simulation: cluster-wide
//! conservation, determinism, and breaker liveness.

use cllm_cost::{SpillPenalty, SpotParams};
use cllm_serve::cluster::{simulate_cluster, ClusterConfig, NodeSpec, WaveModel};
use cllm_serve::faults::{FaultEvent, FaultKind, FaultRates};
use cllm_serve::router::{AdmissionPolicy, BreakerConfig, BreakerState};
use cllm_serve::sim::{ServingConfig, ServingNode};
use cllm_serve::workload::ArrivalProcess;
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig, TeeKind};
use proptest::prelude::*;

fn serving(rate: f64, seed: u64) -> ServingConfig {
    ServingConfig {
        arrivals: ArrivalProcess {
            rate_per_s: rate,
            prompt_range: (16, 128),
            output_range: (4, 32),
            seed,
        },
        duration_s: 20.0,
        ..ServingConfig::small_test()
    }
}

/// Build a random heterogeneous fleet: bit `i` of `gpu_mask` picks the
/// platform class of node `i`, bit `i` of `spot_mask` its rental.
fn fleet(n_nodes: usize, gpu_mask: u32, spot_mask: u32, node_seed: u64) -> Vec<NodeSpec> {
    (0..n_nodes)
        .map(|i| {
            let gpu = gpu_mask & (1 << i) != 0;
            let spot = spot_mask & (1 << i) != 0;
            let spot_params = if spot {
                SpotParams::gcp_spot()
            } else {
                SpotParams::reserved()
            };
            let (node, kind) = if gpu {
                (
                    ServingNode::Gpu {
                        gpu: cllm_hw::presets::h100_nvl(),
                        tee: GpuTeeConfig::confidential(),
                    },
                    TeeKind::GpuCc,
                )
            } else {
                (
                    ServingNode::Cpu {
                        tee: CpuTeeConfig::tdx(),
                    },
                    TeeKind::Tdx,
                )
            };
            NodeSpec::new(
                node,
                spot,
                FaultRates::for_platform(kind, &spot_params).scaled(600.0),
                node_seed.wrapping_add(i as u64),
            )
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Cluster-wide conservation: across random fleet shapes, wave
    /// intensities/fractions, admission bounds and failover settings,
    /// every arrival ends in exactly one terminal state —
    /// `completed + aborted + rejected == arrivals`.
    #[test]
    fn cluster_conservation_under_random_fleets(
        n_nodes in 1usize..5,
        gpu_mask in 0u32..16,
        spot_mask in 0u32..16,
        node_seed in 0u64..40,
        waves_per_hr in 0.0f64..400.0,
        frac in 0.0f64..1.0,
        wave_seed in 0u64..40,
        rate in 0.5f64..4.0,
        arrival_seed in 0u64..30,
        failover_bit in 0u32..2,
        queue_cap in 1usize..40,
    ) {
        let cfg = ClusterConfig {
            serving: serving(rate, arrival_seed),
            nodes: fleet(n_nodes, gpu_mask, spot_mask, node_seed),
            admission: AdmissionPolicy { queue_cap, deadline_s: 15.0 },
            breaker: BreakerConfig::default(),
            wave: WaveModel { waves_per_hr, frac, seed: wave_seed },
            failover: failover_bit == 1,
            spill: SpillPenalty::cross_platform(),
        };
        let r = simulate_cluster(&cfg);
        prop_assert_eq!(
            r.completed + r.aborted + r.rejected,
            r.arrivals,
            "lost requests: {} + {} + {} != {}",
            r.completed,
            r.aborted,
            r.rejected,
            r.arrivals
        );
        prop_assert!(r.availability >= 0.0 && r.availability <= 1.0);
        prop_assert!(r.makespan_s.is_finite());
        prop_assert_eq!(r.nodes.len(), n_nodes);
        prop_assert_eq!(r.completed, r.nodes.iter().map(|n| n.completed).sum::<usize>());
        for n in &r.nodes {
            prop_assert!(n.availability >= 0.0 && n.availability <= 1.0);
        }
        for rec in &r.records {
            prop_assert!(rec.ttft_s > 0.0 && rec.e2e_s >= rec.ttft_s, "id {}", rec.id);
        }
    }

    /// The kernel-backed cluster loop reproduces the legacy full-scan
    /// loop (clamp fix applied on both sides) across random fleet
    /// shapes, wave models, admission bounds and failover settings.
    #[test]
    fn kernel_cluster_matches_legacy_cluster(
        n_nodes in 1usize..5,
        gpu_mask in 0u32..16,
        spot_mask in 0u32..16,
        node_seed in 0u64..40,
        waves_per_hr in 0.0f64..400.0,
        frac in 0.0f64..1.0,
        wave_seed in 0u64..40,
        rate in 0.5f64..4.0,
        arrival_seed in 0u64..30,
        failover_bit in 0u32..2,
        queue_cap in 1usize..40,
    ) {
        let cfg = ClusterConfig {
            serving: serving(rate, arrival_seed),
            nodes: fleet(n_nodes, gpu_mask, spot_mask, node_seed),
            admission: AdmissionPolicy { queue_cap, deadline_s: 15.0 },
            breaker: BreakerConfig::default(),
            wave: WaveModel { waves_per_hr, frac, seed: wave_seed },
            failover: failover_bit == 1,
            spill: SpillPenalty::cross_platform(),
        };
        let kernel = simulate_cluster(&cfg);
        let legacy = cllm_serve::legacy::simulate_cluster(&cfg);
        prop_assert_eq!(&kernel, &legacy, "kernel and legacy cluster loops diverged");
        let jk = serde_json::to_string(&kernel).expect("report serializes");
        let jl = serde_json::to_string(&legacy).expect("report serializes");
        prop_assert_eq!(jk, jl, "serialized reports must be byte-identical");
    }

    /// The whole cluster simulation is deterministic in its seeds: two
    /// runs agree field by field and byte by byte once serialized.
    #[test]
    fn cluster_runs_are_deterministic(
        n_nodes in 1usize..4,
        gpu_mask in 0u32..8,
        node_seed in 0u64..20,
        waves_per_hr in 0.0f64..300.0,
        frac in 0.0f64..1.0,
        arrival_seed in 0u64..20,
    ) {
        let cfg = ClusterConfig {
            serving: serving(1.5, arrival_seed),
            nodes: fleet(n_nodes, gpu_mask, 0b1111, node_seed),
            admission: AdmissionPolicy::default(),
            breaker: BreakerConfig::default(),
            wave: WaveModel { waves_per_hr, frac, seed: node_seed },
            failover: true,
            spill: SpillPenalty::cross_platform(),
        };
        let a = simulate_cluster(&cfg);
        let b = simulate_cluster(&cfg);
        prop_assert_eq!(&a, &b);
        let ja = serde_json::to_string(&a.records).expect("records serialize");
        let jb = serde_json::to_string(&b.records).expect("records serialize");
        prop_assert_eq!(ja, jb, "serialized records must be byte-identical");
    }

    /// Breaker liveness: when every fault lands in the first seconds of
    /// the trace and the tail is clean, the breaker cannot stay stuck —
    /// it must probe, close (paying its re-attestation), and end Closed,
    /// with every trip matched by a close.
    #[test]
    fn breaker_closes_after_an_early_only_burst(
        burst_len in 3u32..12,
        gap_ms in 50u64..400,
        arrival_seed in 0u64..30,
        gpu_bit in 0u32..2,
    ) {
        let mut node = fleet(1, gpu_bit, 0, 7).pop().expect("one node");
        node.rates = FaultRates::none();
        #[allow(clippy::cast_precision_loss)]
        let burst: Vec<FaultEvent> = (0..burst_len)
            .map(|k| FaultEvent {
                at_s: 0.2 + f64::from(k) * (gap_ms as f64 / 1000.0),
                kind: FaultKind::EnclaveCrash,
                outage_s: 0.2,
            })
            .collect();
        node.extra_events = burst;
        let cfg = ClusterConfig {
            serving: serving(2.0, arrival_seed),
            nodes: vec![node],
            admission: AdmissionPolicy::default(),
            breaker: BreakerConfig::default(),
            wave: WaveModel::none(),
            failover: true,
            spill: SpillPenalty::none(),
        };
        let r = simulate_cluster(&cfg);
        prop_assert_eq!(r.completed + r.aborted + r.rejected, r.arrivals);
        let n = &r.nodes[0];
        prop_assert!(n.breaker_trips > 0, "a dense crash burst must trip");
        prop_assert_eq!(n.breaker_final, BreakerState::Closed,
            "breaker stuck after {} trips / {} closes", n.breaker_trips, n.breaker_closes);
        // A failed probe re-opens (trip without a close), so trips can
        // exceed closes — but ending Closed requires the last probe to
        // have closed, and every close paid a re-attestation.
        prop_assert!(n.breaker_closes >= 1);
        prop_assert!(n.breaker_trips >= n.breaker_closes);
    }
}
