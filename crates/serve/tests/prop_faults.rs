//! Property tests on the fault-injection and recovery layer.

use cllm_cost::SpotParams;
use cllm_serve::faults::{FaultPlan, FaultRates, RecoveryPolicy};
use cllm_serve::sim::{simulate_serving_faulted, ServingConfig, ServingNode};
use cllm_serve::workload::ArrivalProcess;
use cllm_tee::platform::{CpuTeeConfig, TeeKind};
use proptest::prelude::*;

fn cfg(rate: f64, seed: u64) -> ServingConfig {
    ServingConfig {
        arrivals: ArrivalProcess {
            rate_per_s: rate,
            prompt_range: (16, 128),
            output_range: (4, 32),
            seed,
        },
        duration_s: 20.0,
        ..ServingConfig::small_test()
    }
}

fn plan(kind: TeeKind, scale: f64, seed: u64, max_retries: u32) -> FaultPlan {
    let rates = FaultRates::for_platform(kind, &SpotParams::gcp_spot()).scaled(scale);
    FaultPlan::seeded(&rates, 20.0, seed).with_policy(RecoveryPolicy {
        max_retries,
        ..RecoveryPolicy::default()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Conservation invariant under random fault schedules: every arrival
    /// is either completed or aborted, never lost, for any platform,
    /// intensity and retry budget.
    #[test]
    fn conservation_under_random_fault_schedules(
        rate in 0.2f64..3.0,
        arrival_seed in 0u64..30,
        fault_seed in 0u64..30,
        scale in 0.0f64..3000.0,
        max_retries in 0u32..5,
        kind_idx in 0usize..4,
    ) {
        let kind = [TeeKind::BareMetal, TeeKind::Tdx, TeeKind::Sgx, TeeKind::SevSnp][kind_idx];
        let report = simulate_serving_faulted(
            &cfg(rate, arrival_seed),
            &ServingNode::Cpu { tee: CpuTeeConfig::tdx() },
            &plan(kind, scale, fault_seed, max_retries),
        );
        prop_assert_eq!(
            report.completed + report.aborted,
            report.arrivals,
            "lost requests: completed {} + aborted {} != arrivals {}",
            report.completed,
            report.aborted,
            report.arrivals
        );
        prop_assert!(report.availability >= 0.0 && report.availability <= 1.0);
        prop_assert!(report.makespan_s.is_finite());
        for r in &report.records {
            prop_assert!(r.ttft_s > 0.0, "id {}", r.id);
            prop_assert!(r.e2e_s >= r.ttft_s);
            prop_assert!(r.retries <= max_retries, "retry budget exceeded on {}", r.id);
        }
    }

    /// The kernel-backed simulator is a refactor, not a re-model: across
    /// random arrival rates, fault platforms, intensities, seeds and
    /// retry budgets it reproduces the legacy hand-rolled loop (with the
    /// enumerated attestation-clamp fix applied on both sides) field by
    /// field and byte for byte once serialized.
    #[test]
    fn kernel_loop_matches_legacy_loop(
        rate in 0.2f64..3.0,
        arrival_seed in 0u64..30,
        fault_seed in 0u64..30,
        scale in 0.0f64..3000.0,
        max_retries in 0u32..5,
        kind_idx in 0usize..4,
    ) {
        let kind = [TeeKind::BareMetal, TeeKind::Tdx, TeeKind::Sgx, TeeKind::SevSnp][kind_idx];
        let c = cfg(rate, arrival_seed);
        let p = plan(kind, scale, fault_seed, max_retries);
        let node = ServingNode::Cpu { tee: CpuTeeConfig::tdx() };
        let kernel = simulate_serving_faulted(&c, &node, &p);
        let legacy = cllm_serve::legacy::simulate_serving_faulted(&c, &node, &p);
        prop_assert_eq!(&kernel, &legacy, "kernel and legacy loops diverged");
        let jk = serde_json::to_string(&kernel).expect("report serializes");
        let jl = serde_json::to_string(&legacy).expect("report serializes");
        prop_assert_eq!(jk, jl, "serialized reports must be byte-identical");
    }

    /// A fixed seed pins the entire simulation: two runs are equal field
    /// by field (byte-determinism of the serialized report follows).
    #[test]
    fn fault_injected_runs_are_deterministic(
        arrival_seed in 0u64..20,
        fault_seed in 0u64..20,
        scale in 0.0f64..2000.0,
    ) {
        let run = || simulate_serving_faulted(
            &cfg(1.5, arrival_seed),
            &ServingNode::Cpu { tee: CpuTeeConfig::sgx() },
            &plan(TeeKind::Sgx, scale, fault_seed, 3),
        );
        let a = run();
        let b = run();
        prop_assert_eq!(&a, &b);
        let ja = serde_json::to_string(&a).expect("report serializes");
        let jb = serde_json::to_string(&b).expect("report serializes");
        prop_assert_eq!(ja, jb, "serialized reports must be byte-identical");
    }

    /// Faults never mint throughput: the faulted run's goodput cannot
    /// beat the fault-free run on the same trace by more than rounding.
    #[test]
    fn faults_never_increase_goodput(
        arrival_seed in 0u64..20,
        fault_seed in 0u64..20,
        scale in 100.0f64..3000.0,
    ) {
        let node = ServingNode::Cpu { tee: CpuTeeConfig::tdx() };
        let clean = simulate_serving_faulted(&cfg(1.5, arrival_seed), &node, &FaultPlan::none());
        let faulted = simulate_serving_faulted(
            &cfg(1.5, arrival_seed),
            &node,
            &plan(TeeKind::Sgx, scale, fault_seed, 3),
        );
        prop_assert!(
            faulted.goodput_tps <= clean.goodput_tps * 1.0000001,
            "faulted {} beat clean {}",
            faulted.goodput_tps,
            clean.goodput_tps
        );
    }

    /// Schedule generation is deterministic in (rates, horizon, seed) and
    /// independent per kind: doubling one platform's rates never moves
    /// another kind's event times.
    #[test]
    fn schedules_are_seed_deterministic(seed in 0u64..100, scale in 1.0f64..5000.0) {
        let rates = FaultRates::for_platform(TeeKind::Sgx, &SpotParams::gcp_spot()).scaled(scale);
        let a = FaultPlan::seeded(&rates, 30.0, seed);
        let b = FaultPlan::seeded(&rates, 30.0, seed);
        prop_assert_eq!(a, b);
    }

    /// Merging two seeded plans — e.g. two disjoint nodes' independent
    /// streams, or a node's base stream with its share of a correlated
    /// wave — never reorders either side: each input's events appear in
    /// the merged plan as a subsequence, in their original order, with
    /// nothing dropped and the merged stream still time-sorted.
    #[test]
    fn merge_preserves_each_plans_event_order(
        seed_a in 0u64..50,
        seed_b in 0u64..50,
        scale_a in 1.0f64..2000.0,
        scale_b in 1.0f64..2000.0,
        kind_a in 0usize..4,
        kind_b in 0usize..4,
    ) {
        let kinds = [TeeKind::Tdx, TeeKind::Sgx, TeeKind::SevSnp, TeeKind::GpuCc];
        let a = FaultPlan::seeded(
            &FaultRates::for_platform(kinds[kind_a], &SpotParams::gcp_spot()).scaled(scale_a),
            30.0,
            seed_a,
        );
        let b = FaultPlan::seeded(
            &FaultRates::for_platform(kinds[kind_b], &SpotParams::azure_spot_gpu()).scaled(scale_b),
            30.0,
            seed_b,
        );
        let merged = a.clone().merge(b.clone());
        prop_assert_eq!(merged.events.len(), a.events.len() + b.events.len());
        for w in merged.events.windows(2) {
            prop_assert!(w[0].at_s <= w[1].at_s, "merge broke time order");
        }
        for side in [&a, &b] {
            // Greedy subsequence match: if any event were reordered or
            // dropped, the scan would run out of merged events.
            let mut it = merged.events.iter();
            for e in &side.events {
                prop_assert!(it.any(|m| m == e), "event {e:?} lost or reordered");
            }
        }
    }
}
