//! Cloud pricing model and cost-per-token analysis.
//!
//! Section V-D2 evaluates the cost of confidential inference using GCP
//! spot prices (US-East-1) for CPU machines — where vCPU count and memory
//! are priced separately — against Azure's confidential H100 instances.
//! The paper's findings this crate reproduces:
//!
//! * Memory dominates rental cost at low core counts; the $/Mtoken curve
//!   is U-shaped in the number of vCPUs (Figure 12).
//! * cGPUs are up to ~100% more expensive per token at small batches; the
//!   advantage fades and equalizes around batch 128 (Figure 12).
//! * CPU TEEs are much more sensitive to input size than cGPUs: doubling
//!   the input can flip an 86% cost advantage to -10% (Figure 13).
//!
//! # Example
//!
//! ```
//! use cllm_cost::{CpuPricing, cost_per_mtok};
//!
//! let gcp = CpuPricing::gcp_spot_us_east1();
//! let hourly = gcp.instance_cost_per_hr(32, 128.0);
//! let price = cost_per_mtok(hourly, 700.0); // $ per 1M tokens at 700 tok/s
//! assert!(price > 0.0 && price < 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// Per-resource CPU machine pricing (vCPU and memory priced separately,
/// as GCP custom machine types allow).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CpuPricing {
    /// Dollars per vCPU-hour.
    pub per_vcpu_hr: f64,
    /// Dollars per GiB-hour of memory.
    pub per_gib_hr: f64,
}

impl CpuPricing {
    /// GCP spot prices for Emerald-Rapids-class machines in US-East-1
    /// (the paper's setting).
    #[must_use]
    pub fn gcp_spot_us_east1() -> Self {
        CpuPricing {
            per_vcpu_hr: 0.0105,
            per_gib_hr: 0.0013,
        }
    }

    /// A Sapphire-Rapids-class alternative: "an almost 2x cheaper Sapphire
    /// Rapid performing up to 40% worse" (Section V-D2).
    #[must_use]
    pub fn gcp_spot_spr() -> Self {
        CpuPricing {
            per_vcpu_hr: 0.0057,
            per_gib_hr: 0.0013,
        }
    }

    /// Hourly cost of an instance with `vcpus` vCPUs and `mem_gib` GiB.
    #[must_use]
    pub fn instance_cost_per_hr(&self, vcpus: u32, mem_gib: f64) -> f64 {
        f64::from(vcpus) * self.per_vcpu_hr + mem_gib * self.per_gib_hr
    }
}

/// Fixed-shape GPU instance pricing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuPricing {
    /// Dollars per hour for the whole instance.
    pub per_hr: f64,
}

impl GpuPricing {
    /// Azure `NCCads_H100_v5` (confidential H100 NVL + 40 vCPU host).
    #[must_use]
    pub fn azure_ncc_h100() -> Self {
        GpuPricing { per_hr: 6.98 }
    }

    /// Azure `NCads_H100_v5` (non-confidential twin).
    #[must_use]
    pub fn azure_nc_h100() -> Self {
        GpuPricing { per_hr: 6.73 }
    }
}

/// Dollars to generate one million tokens at a sustained throughput.
///
/// Returns `f64::INFINITY` when throughput is not positive.
#[must_use]
pub fn cost_per_mtok(cost_per_hr: f64, tokens_per_s: f64) -> f64 {
    if tokens_per_s <= 0.0 {
        return f64::INFINITY;
    }
    cost_per_hr / (tokens_per_s * 3600.0) * 1.0e6
}

/// Relative cost advantage of `ours` versus `theirs`, in percent:
/// `+100` means `theirs` costs twice as much per token.
#[must_use]
pub fn cost_advantage_pct(ours: f64, theirs: f64) -> f64 {
    (theirs / ours - 1.0) * 100.0
}

/// On-premises total-cost-of-ownership model: the paper lists hardware
/// list prices (Xeon 6530 $2,130, Platinum 8580 $10,710, H100 NVL
/// ~$30,000), which invite the classic rent-vs-buy comparison for
/// sustained confidential workloads.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct OnPremCost {
    /// Hardware purchase price, USD (CPUs/GPUs + host share).
    pub capex_usd: f64,
    /// Amortization horizon in years.
    pub years: f64,
    /// Average power draw under load, watts.
    pub power_w: f64,
    /// Datacenter power-usage effectiveness multiplier.
    pub pue: f64,
    /// Electricity price, USD per kWh.
    pub usd_per_kwh: f64,
    /// Yearly operations overhead as a fraction of capex (space,
    /// maintenance, staff share).
    pub opex_fraction: f64,
}

impl OnPremCost {
    /// A dual-socket EMR2 server (2x Platinum 8580 + chassis/DRAM).
    #[must_use]
    pub fn emr2_server() -> Self {
        OnPremCost {
            capex_usd: 2.0 * 10_710.0 + 12_000.0,
            years: 4.0,
            power_w: 900.0,
            pue: 1.3,
            usd_per_kwh: 0.11,
            opex_fraction: 0.08,
        }
    }

    /// An H100 NVL server share (card + 1/4 of an 8-way host).
    #[must_use]
    pub fn h100_server_share() -> Self {
        OnPremCost {
            capex_usd: 30_000.0 + 10_000.0,
            years: 4.0,
            power_w: 700.0,
            pue: 1.3,
            usd_per_kwh: 0.11,
            opex_fraction: 0.08,
        }
    }

    /// Effective cost per hour of continuous operation.
    #[must_use]
    pub fn cost_per_hr(&self) -> f64 {
        let hours = self.years * 365.25 * 24.0;
        let amortized = self.capex_usd * (1.0 + self.opex_fraction * self.years) / hours;
        let energy = self.power_w / 1000.0 * self.pue * self.usd_per_kwh;
        amortized + energy
    }

    /// Utilization (0..=1] below which renting at `cloud_per_hr` beats
    /// owning: own-cost is fixed; rent scales with use.
    ///
    /// Returns 1.0 if owning never wins (cloud cheaper even at 100%).
    #[must_use]
    pub fn break_even_utilization(&self, cloud_per_hr: f64) -> f64 {
        if cloud_per_hr <= 0.0 {
            return 1.0;
        }
        (self.cost_per_hr() / cloud_per_hr).min(1.0)
    }
}

/// Spot-instance interruption assumptions behind the paper's prices.
///
/// The Table 1 / Insight 12 cost story is built on *spot* prices, and
/// spot capacity is reclaimable: GCP preempts Spot VMs with a 30-second
/// notice, Azure evicts Spot instances on capacity pressure. A serving
/// deployment on those instances therefore pays a reliability tax —
/// lost KV caches, re-attestation, re-queued requests — that the
/// steady-state $/Mtoken numbers hide. These parameters feed the
/// `cllm-serve` fault injector so the tax can be simulated rather than
/// assumed away.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpotParams {
    /// Mean preemptions per instance-hour (exponential interarrivals).
    pub preemptions_per_hr: f64,
    /// Advance warning the provider gives before reclaiming, seconds
    /// (GCP: 30 s; too short to drain a long decode batch).
    pub notice_s: f64,
}

impl SpotParams {
    /// GCP Spot VM assumptions matching [`CpuPricing::gcp_spot_us_east1`]:
    /// a few-percent hourly reclaim probability in a busy region.
    #[must_use]
    pub fn gcp_spot() -> Self {
        SpotParams {
            preemptions_per_hr: 0.05,
            notice_s: 30.0,
        }
    }

    /// Azure Spot assumptions for the confidential H100 instances
    /// ([`GpuPricing::azure_ncc_h100`]); scarce cGPU capacity is
    /// reclaimed more aggressively than commodity CPU machines.
    #[must_use]
    pub fn azure_spot_gpu() -> Self {
        SpotParams {
            preemptions_per_hr: 0.08,
            notice_s: 30.0,
        }
    }

    /// Reserved/on-demand capacity: never preempted.
    #[must_use]
    pub fn reserved() -> Self {
        SpotParams {
            preemptions_per_hr: 0.0,
            notice_s: 0.0,
        }
    }

    /// Mean preemptions per second — the rate the fault injector's
    /// exponential interarrival sampler consumes.
    #[must_use]
    pub fn preemptions_per_s(&self) -> f64 {
        self.preemptions_per_hr / 3600.0
    }
}

/// The toll a request pays when failover re-plans it on a *different
/// platform class* than the one that lost it (cGPU → CPU TEE or back).
///
/// The paper's CPU-vs-GPU comparison runs the same model at different
/// dtypes and kernel paths per platform, so a spilled request cannot
/// reuse anything: its prompt must be re-processed under the target's
/// dtype (weights there are laid out for AMX/int8 tiles, not cuBLAS
/// bf16), and the KV cache it lost was in the wrong layout anyway. The
/// cluster simulator charges `requant_s` once at re-admission and
/// stretches the repeated prefill by `prefill_factor`; the resulting
/// goodput loss is then priced through [`cost_per_mtok`] like any other
/// downtime, which is how the spill shows up in effective $/Mtoken.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpillPenalty {
    /// One-time dtype/layout conversion charged at re-admission on the
    /// foreign platform, seconds.
    pub requant_s: f64,
    /// Multiplier on the repeated prefill: the foreign platform runs the
    /// prompt under its own dtype path, without the warm caches the
    /// origin had.
    pub prefill_factor: f64,
}

impl SpillPenalty {
    /// No penalty: spilling is free (same-platform failover).
    #[must_use]
    pub fn none() -> Self {
        SpillPenalty {
            requant_s: 0.0,
            prefill_factor: 1.0,
        }
    }

    /// Default cross-platform toll for cGPU ↔ CPU-TEE spills: ~half a
    /// second of weight/KV-layout conversion plus a 25% slower repeated
    /// prefill on the foreign dtype path.
    #[must_use]
    pub fn cross_platform() -> Self {
        SpillPenalty {
            requant_s: 0.5,
            prefill_factor: 1.25,
        }
    }

    /// Whether the penalty is exactly free.
    #[must_use]
    pub fn is_free(&self) -> bool {
        self.requant_s == 0.0 && self.prefill_factor == 1.0
    }
}

/// Dollars per million tokens when the instance is only `availability`
/// (0..=1] of the time able to generate: rent accrues over wall-clock
/// time, tokens only over uptime.
///
/// Returns `f64::INFINITY` when throughput or availability is not
/// positive. With `availability == 1.0` this is exactly
/// [`cost_per_mtok`].
#[must_use]
pub fn availability_adjusted_cost_per_mtok(
    cost_per_hr: f64,
    tokens_per_s: f64,
    availability: f64,
) -> f64 {
    if availability <= 0.0 {
        return f64::INFINITY;
    }
    cost_per_mtok(cost_per_hr, tokens_per_s * availability.min(1.0))
}

/// Billing for fleet nodes rented by an autoscaler: on-demand nodes
/// accrue from rent start to retirement (cold start, drain and all —
/// the attestation + unseal window is billed even though it serves
/// nothing), warm-standby nodes accrue carrying cost for their entire
/// standby life whether or not they are ever promoted.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RentalBill {
    /// Instance price, dollars/hour.
    pub price_per_hr: f64,
}

impl RentalBill {
    /// Rent for one node alive `lifetime_s` seconds (clamped at 0).
    #[must_use]
    pub fn node_cost_usd(&self, lifetime_s: f64) -> f64 {
        self.price_per_hr * lifetime_s.max(0.0) / 3600.0
    }

    /// Carrying cost of `standby` pre-attested warm nodes held for
    /// `horizon_s` seconds. Warm pools trade this steady burn for
    /// skipping the attestation + unseal toll at promotion time.
    #[must_use]
    pub fn warm_pool_cost_usd(&self, standby: usize, horizon_s: f64) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        let n = standby as f64;
        n * self.node_cost_usd(horizon_s)
    }
}

/// One point of a cost sweep (Figures 12/13).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CostPoint {
    /// Sweep coordinate (vCPUs for Figure 12, input tokens for Figure 13).
    pub x: u64,
    /// Throughput at this point, tokens/second.
    pub tokens_per_s: f64,
    /// Instance cost, dollars/hour.
    pub cost_per_hr: f64,
    /// Dollars per million tokens.
    pub usd_per_mtok: f64,
}

impl CostPoint {
    /// Build a point from throughput and hourly price.
    #[must_use]
    pub fn new(x: u64, tokens_per_s: f64, cost_per_hr: f64) -> Self {
        CostPoint {
            x,
            tokens_per_s,
            cost_per_hr,
            usd_per_mtok: cost_per_mtok(cost_per_hr, tokens_per_s),
        }
    }
}

/// Find the sweep coordinate with the lowest $/Mtoken.
#[must_use]
pub fn cheapest_point(points: &[CostPoint]) -> Option<&CostPoint> {
    points
        .iter()
        .min_by(|a, b| a.usd_per_mtok.partial_cmp(&b.usd_per_mtok).expect("no NaN"))
}

/// Find the first sweep coordinate at which `a` stops being cheaper than
/// `b` (the Figure 12 "equalization" batch size). Points must share x
/// coordinates in order.
#[must_use]
pub fn crossover_x(a: &[CostPoint], b: &[CostPoint]) -> Option<u64> {
    a.iter()
        .zip(b)
        .find(|(pa, pb)| pa.usd_per_mtok >= pb.usd_per_mtok)
        .map(|(pa, _)| pa.x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instance_cost_linear() {
        let p = CpuPricing::gcp_spot_us_east1();
        let base = p.instance_cost_per_hr(16, 128.0);
        let double_cpu = p.instance_cost_per_hr(32, 128.0);
        assert!(double_cpu > base);
        assert!((double_cpu - base - 16.0 * p.per_vcpu_hr).abs() < 1e-12);
    }

    #[test]
    fn memory_dominates_at_low_core_counts() {
        // Figure 12: "Memory initially dominates the cost of renting".
        let p = CpuPricing::gcp_spot_us_east1();
        let mem_cost = 128.0 * p.per_gib_hr;
        let cpu_cost = 4.0 * p.per_vcpu_hr;
        assert!(mem_cost > cpu_cost * 2.0);
    }

    #[test]
    fn cost_per_mtok_scales() {
        let c = cost_per_mtok(3.6, 1000.0);
        assert!((c - 1.0).abs() < 1e-9);
        assert!(cost_per_mtok(3.6, 0.0).is_infinite());
    }

    #[test]
    fn advantage_signs() {
        assert!((cost_advantage_pct(1.0, 2.0) - 100.0).abs() < 1e-9);
        assert!(cost_advantage_pct(2.0, 1.0) < 0.0);
    }

    #[test]
    fn spr_is_roughly_half_price() {
        let emr = CpuPricing::gcp_spot_us_east1().per_vcpu_hr;
        let spr = CpuPricing::gcp_spot_spr().per_vcpu_hr;
        let ratio = emr / spr;
        assert!((1.6..2.2).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn gpu_pricing_cc_premium() {
        assert!(GpuPricing::azure_ncc_h100().per_hr > GpuPricing::azure_nc_h100().per_hr);
    }

    #[test]
    fn u_shape_detection() {
        // Synthetic U: costs fall then rise; cheapest must be the valley.
        let pts: Vec<CostPoint> = [
            (4u64, 100.0),
            (8, 260.0),
            (16, 420.0),
            (32, 470.0),
            (60, 480.0),
        ]
        .iter()
        .map(|&(c, tps)| {
            CostPoint::new(
                c,
                tps,
                CpuPricing::gcp_spot_us_east1().instance_cost_per_hr(c as u32 * 2, 128.0),
            )
        })
        .collect();
        let best = cheapest_point(&pts).unwrap();
        assert!(best.x > 4 && best.x < 60, "valley at {}", best.x);
    }

    #[test]
    fn onprem_cost_components() {
        let c = OnPremCost::emr2_server();
        let hr = c.cost_per_hr();
        // Dual-socket EMR2 server: roughly $1-2/hr amortized + energy.
        assert!((0.5..3.0).contains(&hr), "got ${hr}/hr");
        // Energy alone is ~13 cents/hr at 900 W and PUE 1.3.
        let energy = 0.9 * 1.3 * 0.11;
        assert!(hr > energy);
    }

    #[test]
    fn break_even_logic() {
        let c = OnPremCost::emr2_server();
        // Against an expensive cloud rate, owning wins early.
        let u = c.break_even_utilization(10.0);
        assert!(u < 0.3, "break-even at {u}");
        // Against a dirt-cheap spot rate, owning may never win.
        assert_eq!(c.break_even_utilization(0.0), 1.0);
        assert!(c.break_even_utilization(0.05) >= 1.0);
    }

    #[test]
    fn gpu_server_costs_more_than_cpu_server() {
        assert!(
            OnPremCost::h100_server_share().cost_per_hr()
                > OnPremCost::emr2_server().cost_per_hr() * 0.8
        );
    }

    #[test]
    fn spot_params_rates_and_adjustment() {
        let gcp = SpotParams::gcp_spot();
        assert!(gcp.preemptions_per_hr > 0.0);
        assert!((gcp.preemptions_per_s() - gcp.preemptions_per_hr / 3600.0).abs() < 1e-15);
        // Scarce cGPU capacity is reclaimed more often than CPU spot.
        assert!(SpotParams::azure_spot_gpu().preemptions_per_hr > gcp.preemptions_per_hr);
        assert_eq!(SpotParams::reserved().preemptions_per_s(), 0.0);
    }

    #[test]
    fn availability_adjustment_edges() {
        // Full availability degenerates to the plain cost.
        let full = availability_adjusted_cost_per_mtok(3.6, 1000.0, 1.0);
        assert!((full - cost_per_mtok(3.6, 1000.0)).abs() < 1e-12);
        // Half availability doubles the effective price.
        let half = availability_adjusted_cost_per_mtok(3.6, 1000.0, 0.5);
        assert!((half - 2.0 * full).abs() < 1e-9);
        // Degenerate inputs stay NaN-free.
        assert!(availability_adjusted_cost_per_mtok(3.6, 1000.0, 0.0).is_infinite());
        assert!(availability_adjusted_cost_per_mtok(3.6, 0.0, 1.0).is_infinite());
        // Availability above 1 is clamped, never a discount.
        let clamped = availability_adjusted_cost_per_mtok(3.6, 1000.0, 1.5);
        assert!((clamped - full).abs() < 1e-12);
    }

    #[test]
    fn spill_penalty_shapes() {
        assert!(SpillPenalty::none().is_free());
        let x = SpillPenalty::cross_platform();
        assert!(!x.is_free());
        assert!(x.requant_s > 0.0);
        assert!(
            x.prefill_factor > 1.0,
            "spill must slow the redo, never speed it"
        );
    }

    #[test]
    fn rental_bill_accrues_over_lifetime() {
        let bill = RentalBill { price_per_hr: 7.2 };
        assert!((bill.node_cost_usd(3600.0) - 7.2).abs() < 1e-12);
        assert!((bill.node_cost_usd(900.0) - 1.8).abs() < 1e-12);
        assert_eq!(bill.node_cost_usd(-5.0), 0.0, "negative lifetimes clamp");
        // Two warm standbys for half an hour burn one node-hour.
        assert!((bill.warm_pool_cost_usd(2, 1800.0) - 7.2).abs() < 1e-12);
        assert_eq!(bill.warm_pool_cost_usd(0, 3600.0), 0.0);
    }

    #[test]
    fn crossover_found() {
        let a: Vec<CostPoint> = (0..5)
            .map(|i| CostPoint::new(i, 100.0 + 0.0 * i as f64, 1.0))
            .collect();
        let b: Vec<CostPoint> = (0..5)
            .map(|i| CostPoint::new(i, 50.0 * (i + 1) as f64, 1.0))
            .collect();
        // a is cheaper until b's throughput passes 100 tok/s at x=1.
        assert_eq!(crossover_x(&a, &b), Some(1));
    }
}
