//! Remote attestation: measurements, reports and quotes.
//!
//! Shaped after SGX DCAP / TDX quote flows: the "hardware" (simulated by a
//! per-machine root secret) signs a report containing the enclave
//! measurement and user-supplied report data. A relying party verifies the
//! quote against the root secret (standing in for the Intel PCS
//! certificate chain) and checks that the measurement matches an expected
//! golden value before releasing weight-decryption keys.

use cllm_crypto::hmac::{hmac_sha256, verify_hmac};
use cllm_crypto::sha256::{to_hex, Sha256};

/// A 32-byte enclave/TD measurement (`MRENCLAVE` / `MRTD` analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct Measurement(pub [u8; 32]);

impl Measurement {
    /// Measure an ordered list of (name, content-hash) pairs — the shape
    /// of Gramine's manifest measurement: the enclave binary plus every
    /// trusted file extends the measurement in order.
    #[must_use]
    pub fn from_components(components: &[(String, [u8; 32])]) -> Self {
        let mut h = Sha256::new();
        h.update(b"cllm-measurement-v1");
        for (name, digest) in components {
            h.update(&(name.len() as u64).to_be_bytes());
            h.update(name.as_bytes());
            h.update(digest);
        }
        Measurement(h.finalize())
    }

    /// Lowercase hex rendering (what users pin in verification policy).
    #[must_use]
    pub fn hex(&self) -> String {
        to_hex(&self.0)
    }
}

/// The body of an attestation report.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Report {
    /// Measurement of the attesting enclave.
    pub measurement: Measurement,
    /// Security version number of the "hardware" (microcode/TCB level).
    pub svn: u16,
    /// 32 bytes of user data — conventionally a hash of the channel key
    /// and a verifier-chosen nonce, binding the quote to a session.
    pub report_data: [u8; 32],
}

impl Report {
    fn signing_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32 + 2 + 64);
        out.extend_from_slice(&self.measurement.0);
        out.extend_from_slice(&self.svn.to_be_bytes());
        out.extend_from_slice(&self.report_data);
        out
    }
}

/// A quote: a report signed by the platform's attestation key.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Quote {
    /// The signed report.
    pub report: Report,
    /// MAC over the report by the hardware attestation key (stands in for
    /// the ECDSA quote signature + PCK certificate chain).
    pub signature: [u8; 32],
}

/// Errors a verifier can encounter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestError {
    /// The quote's signature does not verify against the trusted root.
    BadSignature,
    /// The quote is authentic but the measurement differs from the
    /// verifier's golden value (wrong or tampered enclave).
    MeasurementMismatch,
    /// The report data does not commit to the verifier's nonce
    /// (replayed quote).
    StaleNonce,
    /// The platform TCB is below the verifier's minimum SVN.
    TcbOutOfDate,
}

impl std::fmt::Display for AttestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            AttestError::BadSignature => "quote signature does not verify",
            AttestError::MeasurementMismatch => "enclave measurement mismatch",
            AttestError::StaleNonce => "report data does not commit to the nonce",
            AttestError::TcbOutOfDate => "platform TCB below minimum SVN",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for AttestError {}

/// Derive the platform attestation key from the hardware root secret.
fn attestation_key(root_secret: &[u8]) -> [u8; 32] {
    hmac_sha256(b"cllm-attestation-key-v1", root_secret)
}

/// Build report data committing to a verifier nonce (and optionally a
/// channel public key) — `SHA256("rd" || nonce)` in the first 32 bytes.
#[must_use]
pub fn report_data_for_nonce(nonce: &[u8]) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"cllm-report-data-v1");
    h.update(nonce);
    h.finalize()
}

/// Sign a report with the platform key, producing a quote.
#[must_use]
pub fn generate_quote(
    root_secret: &[u8],
    measurement: Measurement,
    svn: u16,
    nonce: &[u8],
) -> Quote {
    let report = Report {
        measurement,
        svn,
        report_data: report_data_for_nonce(nonce),
    };
    let key = attestation_key(root_secret);
    let signature = hmac_sha256(&key, &report.signing_bytes());
    Quote { report, signature }
}

/// Verify a quote's authenticity and freshness (signature + nonce), without
/// pinning a measurement. Returns the attested measurement on success.
pub fn verify_quote(
    quote: &Quote,
    root_secret: &[u8],
    nonce: &[u8],
) -> Result<Measurement, AttestError> {
    let key = attestation_key(root_secret);
    if !verify_hmac(&key, &quote.report.signing_bytes(), &quote.signature) {
        return Err(AttestError::BadSignature);
    }
    if quote.report.report_data != report_data_for_nonce(nonce) {
        return Err(AttestError::StaleNonce);
    }
    Ok(quote.report.measurement)
}

/// Full verification policy: authenticity, freshness, golden measurement
/// and minimum TCB level — what a model owner runs before releasing the
/// weight-decryption key.
pub fn verify_policy(
    quote: &Quote,
    root_secret: &[u8],
    nonce: &[u8],
    golden: &Measurement,
    min_svn: u16,
) -> Result<(), AttestError> {
    let measured = verify_quote(quote, root_secret, nonce)?;
    if &measured != golden {
        return Err(AttestError::MeasurementMismatch);
    }
    if quote.report.svn < min_svn {
        return Err(AttestError::TcbOutOfDate);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement() -> Measurement {
        Measurement::from_components(&[
            ("entry".to_owned(), [1u8; 32]),
            ("model.bin".to_owned(), [2u8; 32]),
        ])
    }

    #[test]
    fn quote_roundtrip() {
        let m = measurement();
        let q = generate_quote(b"root", m, 5, b"nonce-1");
        assert_eq!(verify_quote(&q, b"root", b"nonce-1").unwrap(), m);
    }

    #[test]
    fn wrong_root_rejected() {
        let q = generate_quote(b"root", measurement(), 5, b"n");
        assert_eq!(
            verify_quote(&q, b"other-root", b"n"),
            Err(AttestError::BadSignature)
        );
    }

    #[test]
    fn replayed_quote_rejected() {
        let q = generate_quote(b"root", measurement(), 5, b"old-nonce");
        assert_eq!(
            verify_quote(&q, b"root", b"fresh-nonce"),
            Err(AttestError::StaleNonce)
        );
    }

    #[test]
    fn tampered_measurement_rejected() {
        let mut q = generate_quote(b"root", measurement(), 5, b"n");
        q.report.measurement.0[0] ^= 1;
        assert_eq!(
            verify_quote(&q, b"root", b"n"),
            Err(AttestError::BadSignature)
        );
    }

    #[test]
    fn policy_pins_measurement_and_svn() {
        let m = measurement();
        let q = generate_quote(b"root", m, 5, b"n");
        assert!(verify_policy(&q, b"root", b"n", &m, 5).is_ok());
        assert_eq!(
            verify_policy(&q, b"root", b"n", &m, 6),
            Err(AttestError::TcbOutOfDate)
        );
        let other = Measurement([9u8; 32]);
        assert_eq!(
            verify_policy(&q, b"root", b"n", &other, 5),
            Err(AttestError::MeasurementMismatch)
        );
    }

    #[test]
    fn measurement_is_order_sensitive() {
        let a = Measurement::from_components(&[
            ("a".to_owned(), [1u8; 32]),
            ("b".to_owned(), [2u8; 32]),
        ]);
        let b = Measurement::from_components(&[
            ("b".to_owned(), [2u8; 32]),
            ("a".to_owned(), [1u8; 32]),
        ]);
        assert_ne!(a, b);
    }

    #[test]
    fn measurement_hex_is_64_chars() {
        assert_eq!(measurement().hex().len(), 64);
    }
}
