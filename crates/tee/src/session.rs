//! Attested secure sessions: how secrets actually reach an enclave.
//!
//! Releasing the model key "after attestation" requires a channel that is
//! cryptographically *bound* to the quote — otherwise a
//! machine-in-the-middle could relay a genuine quote while substituting
//! its own channel keys. This module implements the standard
//! attested-TLS-style construction:
//!
//! 1. The verifier sends a challenge: a fresh nonce plus its ephemeral DH
//!    public value.
//! 2. The enclave replies with its own DH public value and a quote whose
//!    report data commits to `H(nonce || verifier_pub || enclave_pub)` —
//!    binding *both* channel halves to the attested identity.
//! 3. Both sides derive the session key with HKDF over the DH shared
//!    secret and the transcript.
//! 4. [`SecureChannel`] carries AES-GCM records with strictly increasing
//!    sequence numbers (replay and reordering rejected).

use crate::attestation::{generate_quote, verify_quote, AttestError, Measurement, Quote};
use cllm_crypto::dh::DhKeyPair;
use cllm_crypto::drbg::HashDrbg;
use cllm_crypto::kdf::hkdf;
use cllm_crypto::sha256::Sha256;
use cllm_crypto::{aead_open, aead_seal};

/// Errors during session establishment or record exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SessionError {
    /// The quote failed verification.
    Attestation(AttestError),
    /// The attested measurement is not the expected one.
    WrongEnclave,
    /// The peer offered a degenerate DH public value.
    BadKeyShare,
    /// A record failed authentication.
    BadRecord,
    /// A record arrived out of order or was replayed.
    Replay,
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Attestation(e) => write!(f, "attestation: {e}"),
            SessionError::WrongEnclave => f.write_str("attested measurement mismatch"),
            SessionError::BadKeyShare => f.write_str("degenerate DH key share"),
            SessionError::BadRecord => f.write_str("record authentication failed"),
            SessionError::Replay => f.write_str("record replayed or out of order"),
        }
    }
}

impl std::error::Error for SessionError {}

/// Named phases of an attested session establishment, in protocol order.
///
/// The handshake functions themselves stay observer-free; callers that
/// time or trace a handshake (e.g. the serving simulator's
/// re-attestation path) report these phases to their own sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HandshakePhase {
    /// Verifier emits nonce + ephemeral DH share ([`Verifier::start`]).
    Challenge,
    /// Enclave quotes the transcript and answers ([`enclave_respond`]).
    Respond,
    /// The verifier rejected the response (a failed attempt).
    Reject,
    /// Verifier checked the quote and derived keys ([`Verifier::finish`]).
    Verify,
    /// Both sides hold a working [`SecureChannel`].
    Channel,
}

impl HandshakePhase {
    /// Stable lower-case label for traces and logs.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HandshakePhase::Challenge => "challenge",
            HandshakePhase::Respond => "respond",
            HandshakePhase::Reject => "reject",
            HandshakePhase::Verify => "verify",
            HandshakePhase::Channel => "channel",
        }
    }
}

/// The verifier's first flight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Challenge {
    /// Fresh anti-replay nonce.
    pub nonce: [u8; 16],
    /// Verifier's ephemeral DH public value.
    pub verifier_public: u128,
}

/// The enclave's reply.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// Enclave's ephemeral DH public value.
    pub enclave_public: u128,
    /// Quote binding the transcript (nonce + both public values).
    pub quote: Quote,
}

/// Transcript hash the quote commits to: `H(nonce || v_pub || e_pub)`.
fn transcript(nonce: &[u8; 16], verifier_public: u128, enclave_public: u128) -> [u8; 32] {
    let mut h = Sha256::new();
    h.update(b"cllm-session-v1");
    h.update(nonce);
    h.update(&verifier_public.to_be_bytes());
    h.update(&enclave_public.to_be_bytes());
    h.finalize()
}

fn session_key(shared: &[u8; 16], transcript: &[u8; 32]) -> [u8; 16] {
    hkdf(b"cllm-session-key", shared, transcript, 16)
        .try_into()
        .expect("requested 16 bytes")
}

/// Verifier side of the handshake.
#[derive(Debug)]
pub struct Verifier {
    keys: DhKeyPair,
    nonce: [u8; 16],
    golden: Measurement,
    hw_root: Vec<u8>,
}

impl Verifier {
    /// Start a handshake, pinning the expected measurement.
    #[must_use]
    pub fn start(golden: Measurement, hw_root: &[u8], seed: &[u8]) -> (Self, Challenge) {
        let mut drbg = HashDrbg::new(seed);
        let keys = DhKeyPair::generate(&mut drbg);
        let mut nonce = [0u8; 16];
        drbg.fill(&mut nonce);
        let challenge = Challenge {
            nonce,
            verifier_public: keys.public,
        };
        (
            Verifier {
                keys,
                nonce,
                golden,
                hw_root: hw_root.to_vec(),
            },
            challenge,
        )
    }

    /// Verify the enclave's response and derive the channel.
    pub fn finish(&self, response: &Response) -> Result<SecureChannel, SessionError> {
        let t = transcript(&self.nonce, self.keys.public, response.enclave_public);
        let measured =
            verify_quote(&response.quote, &self.hw_root, &t).map_err(SessionError::Attestation)?;
        if measured != self.golden {
            return Err(SessionError::WrongEnclave);
        }
        let shared = self
            .keys
            .shared_secret(response.enclave_public)
            .ok_or(SessionError::BadKeyShare)?;
        Ok(SecureChannel::new(session_key(&shared, &t)))
    }
}

/// Enclave side of the handshake.
///
/// `root_secret` is the platform attestation secret (held by hardware in
/// reality); `measurement` is the enclave's own identity.
pub fn enclave_respond(
    root_secret: &[u8],
    measurement: Measurement,
    svn: u16,
    challenge: &Challenge,
    seed: &[u8],
) -> Result<(Response, SecureChannel), SessionError> {
    let mut drbg = HashDrbg::new(seed);
    let keys = DhKeyPair::generate(&mut drbg);
    let shared = keys
        .shared_secret(challenge.verifier_public)
        .ok_or(SessionError::BadKeyShare)?;
    let t = transcript(&challenge.nonce, challenge.verifier_public, keys.public);
    let quote = generate_quote(root_secret, measurement, svn, &t);
    let channel = SecureChannel::new(session_key(&shared, &t));
    Ok((
        Response {
            enclave_public: keys.public,
            quote,
        },
        channel,
    ))
}

/// An established record channel: AES-GCM with strictly increasing
/// sequence numbers on both directions.
#[derive(Debug)]
pub struct SecureChannel {
    key: [u8; 16],
    send_seq: u64,
    recv_seq: u64,
}

/// One protected record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Sequence number (authenticated).
    pub seq: u64,
    /// Ciphertext + tag.
    pub body: Vec<u8>,
}

impl SecureChannel {
    fn new(key: [u8; 16]) -> Self {
        SecureChannel {
            key,
            send_seq: 0,
            recv_seq: 0,
        }
    }

    /// Encrypt and frame a message.
    pub fn send(&mut self, plaintext: &[u8]) -> Record {
        let seq = self.send_seq;
        self.send_seq += 1;
        let mut nonce = Vec::with_capacity(24);
        nonce.extend_from_slice(b"rec");
        nonce.extend_from_slice(&seq.to_be_bytes());
        let body = aead_seal(&self.key, &nonce, plaintext, &seq.to_be_bytes());
        Record { seq, body }
    }

    /// Verify, decrypt and de-frame a message; enforces in-order
    /// delivery (sequence must equal the expected next value).
    pub fn recv(&mut self, record: &Record) -> Result<Vec<u8>, SessionError> {
        if record.seq != self.recv_seq {
            return Err(SessionError::Replay);
        }
        let mut nonce = Vec::with_capacity(24);
        nonce.extend_from_slice(b"rec");
        nonce.extend_from_slice(&record.seq.to_be_bytes());
        let plaintext = aead_open(&self.key, &nonce, &record.body, &record.seq.to_be_bytes())
            .map_err(|_| SessionError::BadRecord)?;
        self.recv_seq += 1;
        Ok(plaintext)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn golden() -> Measurement {
        Measurement([0xCD; 32])
    }

    fn handshake() -> (SecureChannel, SecureChannel) {
        let (verifier, challenge) = Verifier::start(golden(), b"hw-root", b"verifier-seed");
        let (response, enclave_chan) =
            enclave_respond(b"hw-root", golden(), 7, &challenge, b"enclave-seed").unwrap();
        let verifier_chan = verifier.finish(&response).unwrap();
        (verifier_chan, enclave_chan)
    }

    #[test]
    fn handshake_and_bidirectional_records() {
        let (mut v, mut e) = handshake();
        let r1 = v.send(b"release the model key");
        assert_eq!(e.recv(&r1).unwrap(), b"release the model key");
        let r2 = e.send(b"key: 0123456789abcdef");
        assert_eq!(v.recv(&r2).unwrap(), b"key: 0123456789abcdef");
    }

    #[test]
    fn wrong_enclave_rejected() {
        let (verifier, challenge) = Verifier::start(golden(), b"hw-root", b"s1");
        let evil = Measurement([0xEE; 32]);
        let (response, _) = enclave_respond(b"hw-root", evil, 7, &challenge, b"s2").unwrap();
        assert!(matches!(
            verifier.finish(&response),
            Err(SessionError::WrongEnclave)
        ));
    }

    #[test]
    fn mitm_key_substitution_detected() {
        // A MITM relays the genuine quote but swaps in its own DH share.
        let (verifier, challenge) = Verifier::start(golden(), b"hw-root", b"s1");
        let (mut response, _) =
            enclave_respond(b"hw-root", golden(), 7, &challenge, b"s2").unwrap();
        let mut mitm_drbg = HashDrbg::new(b"mitm");
        let mitm = DhKeyPair::generate(&mut mitm_drbg);
        response.enclave_public = mitm.public;
        // The quote's transcript binding no longer matches.
        assert!(matches!(
            verifier.finish(&response),
            Err(SessionError::Attestation(_))
        ));
    }

    #[test]
    fn replayed_record_rejected() {
        let (mut v, mut e) = handshake();
        let r = v.send(b"one");
        assert!(e.recv(&r).is_ok());
        assert_eq!(e.recv(&r), Err(SessionError::Replay));
    }

    #[test]
    fn out_of_order_rejected() {
        let (mut v, mut e) = handshake();
        let _r0 = v.send(b"zero");
        let r1 = v.send(b"one");
        assert_eq!(e.recv(&r1), Err(SessionError::Replay));
    }

    #[test]
    fn tampered_record_rejected() {
        let (mut v, mut e) = handshake();
        let mut r = v.send(b"secret payload");
        r.body[3] ^= 1;
        assert_eq!(e.recv(&r), Err(SessionError::BadRecord));
        // Failed receive does not advance the window; the original still
        // decrypts.
    }

    #[test]
    fn stale_challenge_quote_rejected() {
        // A quote produced for an older challenge cannot satisfy a new one.
        let (_, old_challenge) = Verifier::start(golden(), b"hw-root", b"old");
        let (old_response, _) =
            enclave_respond(b"hw-root", golden(), 7, &old_challenge, b"e").unwrap();
        let (fresh_verifier, _) = Verifier::start(golden(), b"hw-root", b"fresh");
        assert!(matches!(
            fresh_verifier.finish(&old_response),
            Err(SessionError::Attestation(_))
        ));
    }

    #[test]
    fn channels_derive_identical_keys() {
        let (mut v, mut e) = handshake();
        // Symmetric key: a record sealed by either side opens on the other.
        let r = e.send(b"ping");
        assert_eq!(v.recv(&r).unwrap(), b"ping");
    }
}
