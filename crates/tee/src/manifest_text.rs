//! Parser for the Gramine-style manifest *text* format.
//!
//! Figure 2 of the paper shows an excerpt of the actual manifest template
//! used for the SGX deployments — a TOML-like format with dotted keys:
//!
//! ```text
//! libos.entrypoint = "/usr/bin/python3"
//! sgx.enclave_size = "64G"
//! sgx.max_threads = 32
//! sgx.remote_attestation = "dcap"
//! sgx.trusted_files = [
//!   { uri = "file:/usr/lib/libtorch.so", sha256 = "9f86d08..." },
//! ]
//! fs.mounts = [
//!   { type = "encrypted", path = "/model", key_name = "weights-key" },
//! ]
//! ```
//!
//! This module parses that subset into a validated [`Manifest`], with
//! precise error reporting (line numbers) — the configuration surface a
//! real deployment starts from.

use crate::manifest::{EncryptedFile, Manifest, TrustedFile};
use cllm_crypto::sha256::from_hex;

/// A parse failure with its 1-based line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Line the error was detected on.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "manifest line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

/// Parse a size literal like `"64G"`, `"512M"` or a plain byte count.
fn parse_size(line: usize, raw: &str) -> Result<u64, ParseError> {
    let s = raw.trim();
    let (digits, mult) = match s.chars().last() {
        Some('G') => (&s[..s.len() - 1], 1u64 << 30),
        Some('M') => (&s[..s.len() - 1], 1u64 << 20),
        Some('K') => (&s[..s.len() - 1], 1u64 << 10),
        Some(c) if c.is_ascii_digit() => (s, 1),
        _ => return Err(err(line, format!("bad size literal: {raw:?}"))),
    };
    digits
        .parse::<u64>()
        .map(|v| v * mult)
        .map_err(|_| err(line, format!("bad size literal: {raw:?}")))
}

/// Strip surrounding quotes from a string literal.
fn unquote(line: usize, raw: &str) -> Result<String, ParseError> {
    let s = raw.trim();
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        Ok(s[1..s.len() - 1].to_owned())
    } else {
        Err(err(line, format!("expected quoted string, got {raw:?}")))
    }
}

/// Parse one inline table `{ k = v, k = v }` into key/value pairs.
fn parse_inline_table(line: usize, raw: &str) -> Result<Vec<(String, String)>, ParseError> {
    let s = raw.trim();
    let inner = s
        .strip_prefix('{')
        .and_then(|x| x.strip_suffix('}'))
        .ok_or_else(|| err(line, "expected { ... } table"))?;
    let mut out = Vec::new();
    for part in split_top_level(inner, ',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| err(line, format!("expected key = value, got {part:?}")))?;
        out.push((k.trim().to_owned(), v.trim().to_owned()));
    }
    Ok(out)
}

/// Split on `sep` but not inside quotes or braces.
fn split_top_level(s: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '"' => {
                in_str = !in_str;
                cur.push(c);
            }
            '{' | '[' if !in_str => {
                depth += 1;
                cur.push(c);
            }
            '}' | ']' if !in_str => {
                depth -= 1;
                cur.push(c);
            }
            c if c == sep && depth == 0 && !in_str => {
                out.push(std::mem::take(&mut cur));
            }
            c => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur);
    }
    out
}

/// Parse manifest text into a (validated) [`Manifest`].
pub fn parse_manifest(text: &str) -> Result<Manifest, ParseError> {
    let mut entrypoint = None;
    let mut enclave_size = 64u64 << 30;
    let mut max_threads = 64u32;
    let mut remote_attestation = true;
    let mut trusted_files: Vec<TrustedFile> = Vec::new();
    let mut encrypted_files: Vec<EncryptedFile> = Vec::new();

    // Join multi-line arrays: collect logical statements first.
    let mut statements: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (i, raw_line) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw_line.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        match pending.take() {
            Some((start, mut acc)) => {
                acc.push(' ');
                acc.push_str(line);
                if balanced(&acc) {
                    statements.push((start, acc));
                } else {
                    pending = Some((start, acc));
                }
            }
            None => {
                if balanced(line) {
                    statements.push((line_no, line.to_owned()));
                } else {
                    pending = Some((line_no, line.to_owned()));
                }
            }
        }
    }
    if let Some((start, _)) = pending {
        return Err(err(start, "unterminated array or table"));
    }

    for (line_no, stmt) in statements {
        let (key, value) = stmt
            .split_once('=')
            .ok_or_else(|| err(line_no, format!("expected key = value, got {stmt:?}")))?;
        let key = key.trim();
        let value = value.trim();
        match key {
            "libos.entrypoint" => entrypoint = Some(unquote(line_no, value)?),
            "sgx.enclave_size" => {
                enclave_size = parse_size(line_no, &unquote(line_no, value)?)?;
            }
            "sgx.max_threads" => {
                max_threads = value
                    .parse()
                    .map_err(|_| err(line_no, format!("bad thread count {value:?}")))?;
            }
            "sgx.remote_attestation" => {
                let v = unquote(line_no, value)?;
                remote_attestation = v != "none";
            }
            "sgx.trusted_files" => {
                for item in parse_array_items(line_no, value)? {
                    let pairs = parse_inline_table(line_no, &item)?;
                    let uri = lookup(line_no, &pairs, "uri")?;
                    let sha_hex = lookup(line_no, &pairs, "sha256")?;
                    let digest = from_hex(&unquote(line_no, &sha_hex)?)
                        .filter(|d| d.len() == 32)
                        .ok_or_else(|| err(line_no, "sha256 must be 64 hex chars"))?;
                    trusted_files.push(TrustedFile {
                        path: strip_uri(&unquote(line_no, &uri)?),
                        sha256: digest.try_into().expect("length checked"),
                    });
                }
            }
            "fs.mounts" => {
                for item in parse_array_items(line_no, value)? {
                    let pairs = parse_inline_table(line_no, &item)?;
                    let kind = unquote(line_no, &lookup(line_no, &pairs, "type")?)?;
                    if kind != "encrypted" {
                        continue; // plain mounts carry no security state
                    }
                    encrypted_files.push(EncryptedFile {
                        path: unquote(line_no, &lookup(line_no, &pairs, "path")?)?,
                        key_name: unquote(line_no, &lookup(line_no, &pairs, "key_name")?)?,
                    });
                }
            }
            other => return Err(err(line_no, format!("unknown key {other:?}"))),
        }
    }

    let manifest = Manifest {
        entrypoint: entrypoint.ok_or_else(|| err(1, "missing libos.entrypoint"))?,
        enclave_size_bytes: enclave_size,
        max_threads,
        trusted_files,
        encrypted_files,
        remote_attestation,
    };
    manifest
        .validate()
        .map_err(|e| err(1, format!("semantic error: {e}")))?;
    Ok(manifest)
}

fn balanced(s: &str) -> bool {
    let mut depth = 0i32;
    let mut in_str = false;
    for c in s.chars() {
        match c {
            '"' => in_str = !in_str,
            '[' | '{' if !in_str => depth += 1,
            ']' | '}' if !in_str => depth -= 1,
            _ => {}
        }
    }
    depth == 0 && !in_str
}

fn parse_array_items(line: usize, raw: &str) -> Result<Vec<String>, ParseError> {
    let inner = raw
        .trim()
        .strip_prefix('[')
        .and_then(|x| x.strip_suffix(']'))
        .ok_or_else(|| err(line, "expected [ ... ] array"))?;
    Ok(split_top_level(inner, ',')
        .into_iter()
        .map(|s| s.trim().to_owned())
        .filter(|s| !s.is_empty())
        .collect())
}

fn lookup(line: usize, pairs: &[(String, String)], key: &str) -> Result<String, ParseError> {
    pairs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v.clone())
        .ok_or_else(|| err(line, format!("missing field {key:?}")))
}

fn strip_uri(uri: &str) -> String {
    uri.strip_prefix("file:").unwrap_or(uri).to_owned()
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_crypto::sha256::{sha256, to_hex};

    fn sample_text() -> String {
        let lib_hash = to_hex(&sha256(b"library-bytes"));
        format!(
            r#"
# Gramine manifest for the confidential inference server (cf. Figure 2)
libos.entrypoint = "/usr/bin/python3"
sgx.enclave_size = "64G"
sgx.max_threads = 32
sgx.remote_attestation = "dcap"
sgx.trusted_files = [
  {{ uri = "file:/usr/lib/libtorch.so", sha256 = "{lib_hash}" }},
]
fs.mounts = [
  {{ type = "encrypted", path = "/model/model.bin", key_name = "weights-key" }},
  {{ type = "tmpfs", path = "/tmp" }},
]
"#
        )
    }

    #[test]
    fn parses_figure2_style_manifest() {
        let m = parse_manifest(&sample_text()).unwrap();
        assert_eq!(m.entrypoint, "/usr/bin/python3");
        assert_eq!(m.enclave_size_bytes, 64 << 30);
        assert_eq!(m.max_threads, 32);
        assert!(m.remote_attestation);
        assert_eq!(m.trusted_files.len(), 1);
        assert_eq!(m.trusted_files[0].path, "/usr/lib/libtorch.so");
        assert_eq!(m.encrypted_files.len(), 1);
        assert_eq!(m.encrypted_files[0].key_name, "weights-key");
    }

    #[test]
    fn parsed_manifest_verifies_trusted_files() {
        let m = parse_manifest(&sample_text()).unwrap();
        assert!(m
            .verify_trusted("/usr/lib/libtorch.so", b"library-bytes")
            .is_ok());
        assert!(m.verify_trusted("/usr/lib/libtorch.so", b"evil").is_err());
    }

    #[test]
    fn size_literals() {
        assert_eq!(parse_size(1, "64G").unwrap(), 64 << 30);
        assert_eq!(parse_size(1, "512M").unwrap(), 512 << 20);
        assert_eq!(parse_size(1, "8K").unwrap(), 8 << 10);
        assert_eq!(parse_size(1, "4096").unwrap(), 4096);
        assert!(parse_size(1, "lots").is_err());
    }

    #[test]
    fn errors_carry_line_numbers() {
        let text = "libos.entrypoint = \"x\"\nsgx.max_threads = banana\n";
        let e = parse_manifest(text).unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.message.contains("thread count"));
    }

    #[test]
    fn unknown_keys_rejected() {
        let e = parse_manifest("evil.backdoor = \"on\"\n").unwrap_err();
        assert!(e.message.contains("unknown key"));
    }

    #[test]
    fn bad_sha_rejected() {
        let text = r#"
libos.entrypoint = "e"
sgx.trusted_files = [ { uri = "file:/x", sha256 = "abcd" } ]
"#;
        let e = parse_manifest(text).unwrap_err();
        assert!(e.message.contains("64 hex"));
    }

    #[test]
    fn unterminated_array_rejected() {
        let text = "libos.entrypoint = \"e\"\nsgx.trusted_files = [\n";
        let e = parse_manifest(text).unwrap_err();
        assert!(e.message.contains("unterminated"));
    }

    #[test]
    fn semantic_validation_applied() {
        // Power-of-two enclave size is enforced through Manifest::validate.
        let text = "libos.entrypoint = \"e\"\nsgx.enclave_size = \"3G\"\n";
        let e = parse_manifest(text).unwrap_err();
        assert!(e.message.contains("semantic"));
    }

    #[test]
    fn comments_and_blanks_ignored() {
        let text = "\n# comment only\nlibos.entrypoint = \"run\" # trailing\n";
        let m = parse_manifest(text).unwrap();
        assert_eq!(m.entrypoint, "run");
    }

    #[test]
    fn plain_mounts_skipped() {
        let m = parse_manifest(&sample_text()).unwrap();
        // tmpfs mount does not become an encrypted file.
        assert_eq!(m.encrypted_files.len(), 1);
    }
}
