//! Gramine-like deployment manifests.
//!
//! Figure 2 of the paper shows an excerpt of the Gramine manifest template
//! used for SGX: entrypoint, enclave size, thread count, trusted files
//! (integrity-protected by hash) and encrypted files (confidentiality-
//! protected, key released after attestation). This module reproduces that
//! configuration surface, including validation and the measurement rules.

use crate::attestation::Measurement;
use cllm_crypto::sha256::sha256;
use serde::{Deserialize, Serialize};

/// A file whose integrity is pinned by hash in the manifest
/// (`sgx.trusted_files` in Gramine).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrustedFile {
    /// Path inside the enclave filesystem view.
    pub path: String,
    /// SHA-256 of the expected content.
    pub sha256: [u8; 32],
}

/// A file stored encrypted at rest (`fs.mounts type="encrypted"`); the
/// decryption key is named and provisioned after attestation.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct EncryptedFile {
    /// Path inside the enclave filesystem view.
    pub path: String,
    /// Name of the provisioned key (`fs.insecure__keys` analogue).
    pub key_name: String,
}

/// A Gramine-manifest-shaped deployment descriptor.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Manifest {
    /// Entrypoint binary (`libos.entrypoint`).
    pub entrypoint: String,
    /// Enclave size in bytes (`sgx.enclave_size`). Must be a power of two
    /// in real Gramine; we enforce that too.
    pub enclave_size_bytes: u64,
    /// Maximum enclave threads (`sgx.max_threads`).
    pub max_threads: u32,
    /// Integrity-pinned files.
    pub trusted_files: Vec<TrustedFile>,
    /// Encrypted-at-rest files.
    pub encrypted_files: Vec<EncryptedFile>,
    /// Whether remote attestation is enabled (`sgx.remote_attestation`).
    pub remote_attestation: bool,
}

/// Validation failures for a manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ManifestError {
    /// Entrypoint is empty.
    MissingEntrypoint,
    /// Enclave size is zero or not a power of two.
    BadEnclaveSize(u64),
    /// Thread count is zero.
    NoThreads,
    /// Two trusted files share a path.
    DuplicateTrustedFile(String),
    /// A file is listed both trusted and encrypted.
    ConflictingProtection(String),
    /// Content verification failed for a trusted file.
    TrustedFileMismatch(String),
    /// A file was accessed that no manifest entry covers.
    UnknownFile(String),
}

impl std::fmt::Display for ManifestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ManifestError::MissingEntrypoint => f.write_str("manifest has no entrypoint"),
            ManifestError::BadEnclaveSize(s) => {
                write!(f, "enclave size {s} is not a nonzero power of two")
            }
            ManifestError::NoThreads => f.write_str("manifest allows zero threads"),
            ManifestError::DuplicateTrustedFile(p) => write!(f, "duplicate trusted file: {p}"),
            ManifestError::ConflictingProtection(p) => {
                write!(f, "file both trusted and encrypted: {p}")
            }
            ManifestError::TrustedFileMismatch(p) => {
                write!(f, "trusted file hash mismatch: {p}")
            }
            ManifestError::UnknownFile(p) => write!(f, "file not covered by manifest: {p}"),
        }
    }
}

impl std::error::Error for ManifestError {}

impl Manifest {
    /// Start building a manifest for the given entrypoint.
    #[must_use]
    pub fn builder(entrypoint: &str) -> ManifestBuilder {
        ManifestBuilder {
            manifest: Manifest {
                entrypoint: entrypoint.to_owned(),
                enclave_size_bytes: 64 * 1024 * 1024 * 1024,
                max_threads: 64,
                trusted_files: Vec::new(),
                encrypted_files: Vec::new(),
                remote_attestation: true,
            },
        }
    }

    /// Validate structural invariants.
    pub fn validate(&self) -> Result<(), ManifestError> {
        if self.entrypoint.is_empty() {
            return Err(ManifestError::MissingEntrypoint);
        }
        if self.enclave_size_bytes == 0 || !self.enclave_size_bytes.is_power_of_two() {
            return Err(ManifestError::BadEnclaveSize(self.enclave_size_bytes));
        }
        if self.max_threads == 0 {
            return Err(ManifestError::NoThreads);
        }
        let mut seen = std::collections::HashSet::new();
        for tf in &self.trusted_files {
            if !seen.insert(tf.path.as_str()) {
                return Err(ManifestError::DuplicateTrustedFile(tf.path.clone()));
            }
        }
        for ef in &self.encrypted_files {
            if seen.contains(ef.path.as_str()) {
                return Err(ManifestError::ConflictingProtection(ef.path.clone()));
            }
        }
        Ok(())
    }

    /// Verify a file's content against its pinned hash, as Gramine does on
    /// every open of a trusted file.
    pub fn verify_trusted(&self, path: &str, content: &[u8]) -> Result<(), ManifestError> {
        let entry = self
            .trusted_files
            .iter()
            .find(|tf| tf.path == path)
            .ok_or_else(|| ManifestError::UnknownFile(path.to_owned()))?;
        if sha256(content) == entry.sha256 {
            Ok(())
        } else {
            Err(ManifestError::TrustedFileMismatch(path.to_owned()))
        }
    }

    /// Compute the enclave measurement this manifest produces: entrypoint
    /// plus every trusted file, in listed order.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        let mut components = Vec::with_capacity(1 + self.trusted_files.len());
        components.push(("entrypoint".to_owned(), sha256(self.entrypoint.as_bytes())));
        for tf in &self.trusted_files {
            components.push((tf.path.clone(), tf.sha256));
        }
        Measurement::from_components(&components)
    }
}

/// Builder for [`Manifest`].
#[derive(Debug, Clone)]
pub struct ManifestBuilder {
    manifest: Manifest,
}

impl ManifestBuilder {
    /// Set the enclave size in GiB (rounded to a power of two by caller).
    #[must_use]
    pub fn enclave_size_gib(mut self, gib: u64) -> Self {
        self.manifest.enclave_size_bytes = gib * 1024 * 1024 * 1024;
        self
    }

    /// Set the maximum number of enclave threads.
    #[must_use]
    pub fn threads(mut self, n: u32) -> Self {
        self.manifest.max_threads = n;
        self
    }

    /// Pin a trusted file by hashing `content` now.
    #[must_use]
    pub fn trusted_file(mut self, path: &str, content: &[u8]) -> Self {
        self.manifest.trusted_files.push(TrustedFile {
            path: path.to_owned(),
            sha256: sha256(content),
        });
        self
    }

    /// Pin a trusted file by an already-known hash.
    #[must_use]
    pub fn trusted_file_hash(mut self, path: &str, sha256: [u8; 32]) -> Self {
        self.manifest.trusted_files.push(TrustedFile {
            path: path.to_owned(),
            sha256,
        });
        self
    }

    /// Declare an encrypted file with a named key.
    #[must_use]
    pub fn encrypted_file(mut self, path: &str, key_name: &str) -> Self {
        self.manifest.encrypted_files.push(EncryptedFile {
            path: path.to_owned(),
            key_name: key_name.to_owned(),
        });
        self
    }

    /// Enable/disable remote attestation.
    #[must_use]
    pub fn remote_attestation(mut self, on: bool) -> Self {
        self.manifest.remote_attestation = on;
        self
    }

    /// Finish building. The result is not yet validated; call
    /// [`Manifest::validate`] (done automatically by `Enclave::launch`).
    #[must_use]
    pub fn build(self) -> Manifest {
        self.manifest
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        Manifest::builder("python3 infer.py")
            .enclave_size_gib(64)
            .threads(32)
            .trusted_file("libtorch.so", b"torch-bytes")
            .encrypted_file("model.bin", "weights-key")
            .build()
    }

    #[test]
    fn valid_manifest_passes() {
        assert!(sample().validate().is_ok());
    }

    #[test]
    fn enclave_size_must_be_power_of_two() {
        let mut m = sample();
        m.enclave_size_bytes = 3 * 1024 * 1024;
        assert!(matches!(
            m.validate(),
            Err(ManifestError::BadEnclaveSize(_))
        ));
    }

    #[test]
    fn duplicate_trusted_files_rejected() {
        let m = Manifest::builder("e")
            .trusted_file("a", b"1")
            .trusted_file("a", b"2")
            .build();
        assert_eq!(
            m.validate(),
            Err(ManifestError::DuplicateTrustedFile("a".to_owned()))
        );
    }

    #[test]
    fn trusted_and_encrypted_conflict_rejected() {
        let m = Manifest::builder("e")
            .trusted_file("model.bin", b"w")
            .encrypted_file("model.bin", "k")
            .build();
        assert_eq!(
            m.validate(),
            Err(ManifestError::ConflictingProtection("model.bin".to_owned()))
        );
    }

    #[test]
    fn trusted_file_verification() {
        let m = sample();
        assert!(m.verify_trusted("libtorch.so", b"torch-bytes").is_ok());
        assert_eq!(
            m.verify_trusted("libtorch.so", b"evil-bytes"),
            Err(ManifestError::TrustedFileMismatch("libtorch.so".to_owned()))
        );
        assert_eq!(
            m.verify_trusted("nope", b""),
            Err(ManifestError::UnknownFile("nope".to_owned()))
        );
    }

    #[test]
    fn measurement_changes_with_trusted_content() {
        let a = Manifest::builder("e").trusted_file("f", b"1").build();
        let b = Manifest::builder("e").trusted_file("f", b"2").build();
        assert_ne!(a.measurement(), b.measurement());
    }

    #[test]
    fn measurement_ignores_encrypted_files() {
        // Encrypted file *contents* are not measured (they are sealed data,
        // not code); only trusted files extend the measurement.
        let a = sample();
        let mut b = sample();
        b.encrypted_files[0].key_name = "other-key".to_owned();
        assert_eq!(a.measurement(), b.measurement());
    }

    #[test]
    fn serde_roundtrip() {
        let m = sample();
        let json = serde_json::to_string(&m).unwrap();
        let back: Manifest = serde_json::from_str(&json).unwrap();
        assert_eq!(m, back);
    }
}
