//! Trusted-execution-environment substrate.
//!
//! This crate models the *security machinery* of the paper's three TEE
//! families and implements, for real, the software services that surround
//! them:
//!
//! * [`platform`] — parameterized mechanism models for bare metal, raw VMs,
//!   Intel TDX, Intel SGX (Gramine), and NVIDIA confidential GPUs. These
//!   carry the calibrated constants (memory-encryption derate, EPC size,
//!   virtualization tax, bounce-buffer cost, …) that the `cllm-perf`
//!   roofline consumes.
//! * [`attestation`] — measurement, report and quote generation plus
//!   verification, shaped after SGX DCAP / TDX quotes, using the real
//!   SHA-256/HMAC from `cllm-crypto`.
//! * [`sealed`] — sealed blobs (Gramine protected files) and a LUKS-like
//!   encrypted block device for TDX full-disk encryption; both genuinely
//!   encrypt with AES-GCM / AES-CTR.
//! * [`manifest`] — Gramine-manifest-shaped deployment descriptors with
//!   trusted-file hash verification.
//! * [`enclave`] — a functional enclave lifecycle: build a measurement from
//!   a manifest, attest, derive sealing keys, count enclave exits.
//! * [`threat`] — the attack taxonomy of Figure 1 and the per-platform
//!   protection matrix of Table I.
//!
//! # Example
//!
//! ```
//! use cllm_tee::enclave::Enclave;
//! use cllm_tee::manifest::Manifest;
//!
//! let manifest = Manifest::builder("llama-infer")
//!     .enclave_size_gib(64)
//!     .threads(32)
//!     .trusted_file("model.bin", b"fake weights")
//!     .build();
//! let enclave = Enclave::launch(&manifest, b"hw-root-secret").unwrap();
//! let quote = enclave.quote(b"user nonce");
//! assert!(cllm_tee::attestation::verify_quote(&quote, b"hw-root-secret", b"user nonce").is_ok());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod attestation;
pub mod enclave;
pub mod manifest;
pub mod manifest_text;
pub mod platform;
pub mod sealed;
pub mod session;
pub mod threat;

pub use platform::{CpuTeeConfig, GpuTeeConfig, Platform, TeeKind};
