//! A functional enclave lifecycle tying manifests, attestation and sealing
//! together.
//!
//! This is the software path a real Gramine/TDX deployment walks: validate
//! the manifest, measure the enclave contents, attest to a relying party,
//! receive/derive data keys, and count the enclave exits that the SGX
//! performance model charges for.

use std::cell::Cell;

use crate::attestation::{generate_quote, Measurement, Quote};
use crate::manifest::{Manifest, ManifestError};
use crate::sealed::SealedBlob;
use cllm_crypto::AuthError;

/// A launched enclave instance.
#[derive(Debug)]
pub struct Enclave {
    manifest: Manifest,
    measurement: Measurement,
    root_secret: Vec<u8>,
    svn: u16,
    exits: Cell<u64>,
}

impl Enclave {
    /// Validate the manifest, measure it, and "launch".
    pub fn launch(manifest: &Manifest, root_secret: &[u8]) -> Result<Self, ManifestError> {
        manifest.validate()?;
        Ok(Enclave {
            manifest: manifest.clone(),
            measurement: manifest.measurement(),
            root_secret: root_secret.to_vec(),
            svn: 7,
            exits: Cell::new(0),
        })
    }

    /// The enclave's measurement.
    #[must_use]
    pub fn measurement(&self) -> Measurement {
        self.measurement
    }

    /// The manifest this enclave was launched from.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// Produce an attestation quote bound to a verifier `nonce`.
    #[must_use]
    pub fn quote(&self, nonce: &[u8]) -> Quote {
        self.exits.set(self.exits.get() + 1); // quote generation exits the enclave
        generate_quote(&self.root_secret, self.measurement, self.svn, nonce)
    }

    /// Seal data under this enclave's identity.
    #[must_use]
    pub fn seal(&self, name: &str, plaintext: &[u8], rng_seed: &[u8]) -> SealedBlob {
        SealedBlob::seal(
            &self.root_secret,
            &self.measurement,
            name,
            plaintext,
            rng_seed,
        )
    }

    /// Unseal data previously sealed by this enclave identity.
    pub fn unseal(&self, blob: &SealedBlob) -> Result<Vec<u8>, AuthError> {
        blob.unseal(&self.root_secret, &self.measurement)
    }

    /// Record `n` enclave exits (syscalls that Gramine cannot emulate
    /// in-enclave). The performance model charges these per token.
    pub fn record_exits(&self, n: u64) {
        self.exits.set(self.exits.get() + n);
    }

    /// Total enclave exits so far.
    #[must_use]
    pub fn exit_count(&self) -> u64 {
        self.exits.get()
    }

    /// Open a trusted file: verifies content against the manifest hash
    /// (Gramine does this transparently on open).
    pub fn open_trusted<'a>(
        &self,
        path: &str,
        content: &'a [u8],
    ) -> Result<&'a [u8], ManifestError> {
        self.record_exits(1); // file IO exits the enclave
        self.manifest.verify_trusted(path, content)?;
        Ok(content)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attestation::{verify_policy, verify_quote};

    fn manifest() -> Manifest {
        Manifest::builder("infer")
            .enclave_size_gib(64)
            .threads(32)
            .trusted_file("lib.so", b"library-bytes")
            .encrypted_file("model.bin", "weights-key")
            .build()
    }

    #[test]
    fn launch_validates_manifest() {
        let mut bad = manifest();
        bad.enclave_size_bytes = 12345;
        assert!(Enclave::launch(&bad, b"root").is_err());
        assert!(Enclave::launch(&manifest(), b"root").is_ok());
    }

    #[test]
    fn end_to_end_attest_then_seal() {
        let enclave = Enclave::launch(&manifest(), b"hw-secret").unwrap();
        // Verifier attests with a fresh nonce and pins the measurement.
        let quote = enclave.quote(b"nonce-42");
        let golden = manifest().measurement();
        assert!(verify_policy(&quote, b"hw-secret", b"nonce-42", &golden, 1).is_ok());
        // After attestation the enclave seals its working state.
        let sealed = enclave.seal("kv-cache", b"cache bytes", b"seed");
        assert_eq!(enclave.unseal(&sealed).unwrap(), b"cache bytes");
    }

    #[test]
    fn different_manifest_cannot_unseal() {
        let e1 = Enclave::launch(&manifest(), b"hw").unwrap();
        let sealed = e1.seal("state", b"secret", b"seed");
        let other_manifest = Manifest::builder("infer")
            .trusted_file("lib.so", b"EVIL-library")
            .build();
        let e2 = Enclave::launch(&other_manifest, b"hw").unwrap();
        assert!(e2.unseal(&sealed).is_err());
    }

    #[test]
    fn trusted_file_open_verifies_and_counts_exit() {
        let enclave = Enclave::launch(&manifest(), b"hw").unwrap();
        assert_eq!(enclave.exit_count(), 0);
        assert!(enclave.open_trusted("lib.so", b"library-bytes").is_ok());
        assert_eq!(enclave.exit_count(), 1);
        assert!(enclave.open_trusted("lib.so", b"tampered").is_err());
    }

    #[test]
    fn quote_verifies_only_with_matching_nonce() {
        let enclave = Enclave::launch(&manifest(), b"hw").unwrap();
        let q = enclave.quote(b"n1");
        assert!(verify_quote(&q, b"hw", b"n1").is_ok());
        assert!(verify_quote(&q, b"hw", b"n2").is_err());
    }
}
