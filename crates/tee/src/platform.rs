//! Mechanism-level models of the evaluated execution platforms.
//!
//! Each platform is described by the *mechanisms* that cost performance,
//! mirroring Section III/IV/V of the paper:
//!
//! | Platform   | Mechanisms |
//! |------------|------------|
//! | Bare metal | none (baseline) |
//! | raw VM     | virtualization tax, two-dimensional page walks |
//! | TDX        | VM mechanisms + memory encryption, broken 1 GiB hugepage and NUMA-binding support, TD transitions |
//! | SGX        | memory encryption + integrity, EPC paging, enclave exits, no NUMA awareness |
//! | GPU (CC)   | encrypted PCIe bounce buffer, extra kernel-launch latency; HBM *not* encrypted |
//!
//! The constants here are calibrated against the paper's reported bands
//! (each field's doc comment names the figure/insight it reproduces) and
//! are consumed by the `cllm-perf` roofline simulator.

use cllm_hw::{HugePagePolicy, NumaBinding};
use serde::{Deserialize, Serialize};

/// Which TEE (or baseline) a deployment runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TeeKind {
    /// Unprotected bare-metal host (the paper's `baseline`).
    BareMetal,
    /// Unprotected virtual machine (`VM`): quantifies the virtualization
    /// tax that TDX inherits.
    Vm,
    /// Intel Trust Domain Extensions (`TDX`): VM-based TEE.
    Tdx,
    /// AMD Secure Encrypted Virtualization with Secure Nested Paging
    /// (`SEV-SNP`): the other mainstream VM TEE; the paper notes its
    /// overheads are close to TDX's (Misono et al. \[55\]).
    SevSnp,
    /// Intel SGX via Gramine (`SGX`): process-based TEE on bare metal.
    Sgx,
    /// GPU without confidential compute (`GPU`).
    GpuNative,
    /// NVIDIA confidential GPU (`cGPU`).
    GpuCc,
}

impl TeeKind {
    /// Figure-legend label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            TeeKind::BareMetal => "bare",
            TeeKind::Vm => "VM",
            TeeKind::Tdx => "TDX",
            TeeKind::SevSnp => "SEV-SNP",
            TeeKind::Sgx => "SGX",
            TeeKind::GpuNative => "GPU",
            TeeKind::GpuCc => "cGPU",
        }
    }

    /// Whether this platform provides TEE protections.
    #[must_use]
    pub fn is_confidential(self) -> bool {
        matches!(
            self,
            TeeKind::Tdx | TeeKind::SevSnp | TeeKind::Sgx | TeeKind::GpuCc
        )
    }
}

/// Memory-encryption-engine (MEE) parameters.
///
/// Intel's MEE (SGX) and multi-key total-memory-encryption (TDX) sit on the
/// DRAM path: every cache-line fill/writeback is AES-XTS'd and (for SGX)
/// integrity-checked. The paper identifies memory encryption as the major
/// overhead contributor for data-movement-heavy layers (Section IV-B) and
/// as the source of per-token outliers filtered with a Z-score > 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MeeParams {
    /// Multiplicative derate on sustained DRAM bandwidth (0..1].
    pub bandwidth_derate: f64,
    /// Extra nanoseconds added to every DRAM access latency (AES pipeline
    /// plus MAC fetch). Exposed when the workload is latency-bound (small
    /// batch), which is why latency overheads (up to ~20%) exceed
    /// throughput overheads (~10%) in Figure 4.
    pub latency_adder_ns: f64,
    /// Log-normal sigma of per-token multiplicative noise caused by
    /// variability in memory encryption (Section III-D: "considerable
    /// noise due to variability in memory encryption").
    pub noise_sigma: f64,
    /// Probability that a token hits an encryption stall outlier
    /// (~0.64% of samples were Z>3 outliers in the paper).
    pub outlier_prob: f64,
    /// Multiplicative latency factor of an outlier token.
    pub outlier_factor: f64,
}

impl MeeParams {
    /// TDX multi-key TME calibration.
    #[must_use]
    pub fn tdx() -> Self {
        MeeParams {
            bandwidth_derate: 0.972,
            latency_adder_ns: 8.0,
            noise_sigma: 0.020,
            outlier_prob: 0.0064,
            outlier_factor: 1.8,
        }
    }

    /// SEV-SNP memory encryption (AES-128 XEX in the memory controller
    /// plus the RMP walk for nested-paging integrity). Calibrated close
    /// to TDX per the Misono et al. measurements the paper cites.
    #[must_use]
    pub fn sev_snp() -> Self {
        MeeParams {
            bandwidth_derate: 0.968,
            latency_adder_ns: 9.5,
            noise_sigma: 0.022,
            outlier_prob: 0.0064,
            outlier_factor: 1.8,
        }
    }

    /// SGX MEE calibration: slightly stronger derate (integrity tree) but
    /// no virtualization underneath.
    #[must_use]
    pub fn sgx() -> Self {
        MeeParams {
            bandwidth_derate: 0.968,
            latency_adder_ns: 9.0,
            noise_sigma: 0.022,
            outlier_prob: 0.0064,
            outlier_factor: 1.8,
        }
    }
}

/// Virtualization parameters shared by raw VMs and TDX.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirtParams {
    /// Fixed fractional compute slowdown from vmexits, virtual APIC/timer
    /// handling and hypervisor scheduling (the paper's "virtualization
    /// tax" of 1.82–5.38%, Insight 5). The page-walk component is modelled
    /// separately via [`two_dimensional_walks`].
    ///
    /// [`two_dimensional_walks`]: VirtParams::two_dimensional_walks
    pub cpu_tax: f64,
    /// Guest-physical → host-physical (EPT) page walks: TLB misses walk
    /// two page tables, ~3-4x the native walk cost.
    pub two_dimensional_walks: bool,
    /// Whether explicitly reserved 1 GiB hugepages reach the guest.
    /// `false` for TDX (Insight 7: "TDX uses self-allocated transparent
    /// hugepages and ignores manually reserved hugepages").
    pub honours_hugepage_reservations: bool,
    /// Whether QEMU/libvirt NUMA bindings are respected. `false` for TDX
    /// (Insight 6: "TDX's KVM driver does not adhere to the bindings").
    pub honours_numa_bindings: bool,
    /// Extra per-token cost of TD enter/exit transitions in microseconds
    /// (zero for a raw VM; TDX pays SEAMCALL round trips on interrupts).
    pub td_transition_us_per_token: f64,
}

impl VirtParams {
    /// Raw (non-TDX) KVM guest.
    #[must_use]
    pub fn raw_vm() -> Self {
        VirtParams {
            cpu_tax: 0.022,
            two_dimensional_walks: true,
            honours_hugepage_reservations: true,
            honours_numa_bindings: true,
            td_transition_us_per_token: 0.0,
        }
    }

    /// TDX trust domain.
    #[must_use]
    pub fn tdx() -> Self {
        VirtParams {
            cpu_tax: 0.022,
            two_dimensional_walks: true,
            honours_hugepage_reservations: false,
            honours_numa_bindings: false,
            td_transition_us_per_token: 180.0,
        }
    }
}

/// SGX/Gramine-specific parameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SgxParams {
    /// Enclave page cache size in bytes. The paper "used the largest
    /// possible EPC" — Emerald Rapids SKUs offer up to 512 GiB per socket,
    /// so steady-state inference does not page.
    pub epc_bytes: f64,
    /// Cost of paging one byte in/out of the EPC (encrypt + verify),
    /// charged when the working set exceeds [`epc_bytes`].
    ///
    /// [`epc_bytes`]: SgxParams::epc_bytes
    pub paging_ns_per_byte: f64,
    /// Cost of one enclave exit/re-entry (EEXIT/EENTER + cache/TLB
    /// invalidation refill), microseconds.
    pub exit_cost_us: f64,
    /// Enclave exits per generated token. Gramine emulates most syscalls
    /// inside the enclave, leaving a small residual exit rate (timers,
    /// futex wakeups, IO flushes).
    pub exits_per_token: f64,
    /// SGX presents memory as a single unified NUMA node (Insight 6);
    /// multi-socket allocations may land entirely on one socket.
    pub numa_aware: bool,
}

impl SgxParams {
    /// Gramine v1.7 on Emerald Rapids with maximum EPC.
    #[must_use]
    pub fn gramine_emr() -> Self {
        SgxParams {
            epc_bytes: 512.0 * cllm_hw::GIB,
            paging_ns_per_byte: 3.0,
            exit_cost_us: 8.0,
            exits_per_token: 6.0,
            numa_aware: false,
        }
    }
}

/// Complete CPU platform configuration: TEE mechanisms + memory policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuTeeConfig {
    /// Which platform this is.
    pub kind: TeeKind,
    /// Memory-encryption engine, if the platform encrypts DRAM.
    pub mee: Option<MeeParams>,
    /// Virtualization layer, if any.
    pub virt: Option<VirtParams>,
    /// SGX-specific machinery, if the platform is SGX.
    pub sgx: Option<SgxParams>,
    /// Requested hugepage policy (what the operator configured).
    pub hugepage_policy: HugePagePolicy,
    /// Requested NUMA binding (what the operator configured).
    pub numa_binding: NumaBinding,
}

impl CpuTeeConfig {
    /// Bare-metal baseline: 1 GiB hugepages, bound NUMA.
    #[must_use]
    pub fn bare_metal() -> Self {
        CpuTeeConfig {
            kind: TeeKind::BareMetal,
            mee: None,
            virt: None,
            sgx: None,
            hugepage_policy: HugePagePolicy::Explicit1G,
            numa_binding: NumaBinding::Bound,
        }
    }

    /// Raw VM with explicit 1 GiB hugepages and bound NUMA (`VM FH`/`VM B`).
    #[must_use]
    pub fn vm() -> Self {
        CpuTeeConfig {
            kind: TeeKind::Vm,
            mee: None,
            virt: Some(VirtParams::raw_vm()),
            sgx: None,
            hugepage_policy: HugePagePolicy::Explicit1G,
            numa_binding: NumaBinding::Bound,
        }
    }

    /// Raw VM on transparent 2 MiB hugepages (`VM TH` in Figure 6).
    #[must_use]
    pub fn vm_thp() -> Self {
        CpuTeeConfig {
            hugepage_policy: HugePagePolicy::Transparent2M,
            ..Self::vm()
        }
    }

    /// Raw VM without NUMA binding (`VM NB` in Figure 5).
    #[must_use]
    pub fn vm_unbound() -> Self {
        CpuTeeConfig {
            numa_binding: NumaBinding::Unbound,
            hugepage_policy: HugePagePolicy::Transparent2M,
            ..Self::vm()
        }
    }

    /// TDX trust domain (operator requests 1 GiB pages and bindings; the
    /// TDX driver honours neither).
    #[must_use]
    pub fn tdx() -> Self {
        CpuTeeConfig {
            kind: TeeKind::Tdx,
            mee: Some(MeeParams::tdx()),
            virt: Some(VirtParams::tdx()),
            sgx: None,
            hugepage_policy: HugePagePolicy::Explicit1G,
            numa_binding: NumaBinding::Bound,
        }
    }

    /// AMD SEV-SNP guest: VM mechanisms plus memory encryption and the
    /// RMP (reverse-map) integrity walk. SEV-SNP honours hugepage
    /// reservations but shares TDX's broken NUMA-binding behaviour in
    /// current drivers.
    #[must_use]
    pub fn sev_snp() -> Self {
        CpuTeeConfig {
            kind: TeeKind::SevSnp,
            mee: Some(MeeParams::sev_snp()),
            virt: Some(VirtParams {
                honours_hugepage_reservations: true,
                td_transition_us_per_token: 160.0,
                ..VirtParams::tdx()
            }),
            sgx: None,
            hugepage_policy: HugePagePolicy::Explicit1G,
            numa_binding: NumaBinding::Bound,
        }
    }

    /// Gramine-SGX on bare metal.
    #[must_use]
    pub fn sgx() -> Self {
        CpuTeeConfig {
            kind: TeeKind::Sgx,
            mee: Some(MeeParams::sgx()),
            virt: None,
            sgx: Some(SgxParams::gramine_emr()),
            hugepage_policy: HugePagePolicy::Transparent2M,
            numa_binding: NumaBinding::Bound,
        }
    }

    /// The page size the workload actually runs on, accounting for TEE
    /// drivers that ignore explicit reservations (Insight 7).
    #[must_use]
    pub fn effective_page(&self) -> cllm_hw::PageSize {
        let honours = self.virt.is_none_or(|v| v.honours_hugepage_reservations);
        self.hugepage_policy.effective_page(honours)
    }

    /// The NUMA binding that actually takes effect, accounting for TEE
    /// drivers that ignore bindings (Insight 6).
    #[must_use]
    pub fn effective_binding(&self) -> NumaBinding {
        let virt_ignores = self.virt.is_some_and(|v| !v.honours_numa_bindings);
        let sgx_unaware = self.sgx.is_some_and(|s| !s.numa_aware);
        if self.numa_binding == NumaBinding::Bound && (virt_ignores || sgx_unaware) {
            NumaBinding::IgnoredByTee
        } else {
            self.numa_binding
        }
    }

    /// Whether page walks traverse two levels of page tables.
    #[must_use]
    pub fn virtualized_walks(&self) -> bool {
        self.virt.is_some_and(|v| v.two_dimensional_walks)
    }
}

/// GPU platform configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuTeeConfig {
    /// Which platform this is ([`TeeKind::GpuNative`] or [`TeeKind::GpuCc`]).
    pub kind: TeeKind,
    /// Whether confidential compute is enabled (encrypted bounce buffer,
    /// authenticated command buffers, extra launch latency).
    pub confidential: bool,
}

impl GpuTeeConfig {
    /// Raw GPU (`NCads_H100_v5`).
    #[must_use]
    pub fn native() -> Self {
        GpuTeeConfig {
            kind: TeeKind::GpuNative,
            confidential: false,
        }
    }

    /// Confidential GPU (`NCCads_H100_v5`).
    #[must_use]
    pub fn confidential() -> Self {
        GpuTeeConfig {
            kind: TeeKind::GpuCc,
            confidential: true,
        }
    }
}

/// Any evaluated platform.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Platform {
    /// A CPU deployment (bare metal, VM, TDX or SGX).
    Cpu(CpuTeeConfig),
    /// A GPU deployment (native or confidential).
    Gpu(GpuTeeConfig),
}

impl Platform {
    /// The platform's kind tag.
    #[must_use]
    pub fn kind(&self) -> TeeKind {
        match self {
            Platform::Cpu(c) => c.kind,
            Platform::Gpu(g) => g.kind,
        }
    }

    /// Figure-legend label.
    #[must_use]
    pub fn label(&self) -> &'static str {
        self.kind().label()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cllm_hw::PageSize;

    #[test]
    fn tdx_ignores_hugepage_reservation() {
        // Insight 7.
        assert_eq!(CpuTeeConfig::tdx().effective_page(), PageSize::Huge2M);
        assert_eq!(CpuTeeConfig::vm().effective_page(), PageSize::Huge1G);
        assert_eq!(
            CpuTeeConfig::bare_metal().effective_page(),
            PageSize::Huge1G
        );
    }

    #[test]
    fn tdx_and_sgx_break_numa_bindings() {
        // Insight 6.
        assert_eq!(
            CpuTeeConfig::tdx().effective_binding(),
            NumaBinding::IgnoredByTee
        );
        assert_eq!(
            CpuTeeConfig::sgx().effective_binding(),
            NumaBinding::IgnoredByTee
        );
        assert_eq!(CpuTeeConfig::vm().effective_binding(), NumaBinding::Bound);
        assert_eq!(
            CpuTeeConfig::bare_metal().effective_binding(),
            NumaBinding::Bound
        );
    }

    #[test]
    fn only_vm_family_has_2d_walks() {
        assert!(CpuTeeConfig::tdx().virtualized_walks());
        assert!(CpuTeeConfig::vm().virtualized_walks());
        assert!(!CpuTeeConfig::sgx().virtualized_walks());
        assert!(!CpuTeeConfig::bare_metal().virtualized_walks());
    }

    #[test]
    fn confidential_flags() {
        assert!(TeeKind::Tdx.is_confidential());
        assert!(TeeKind::Sgx.is_confidential());
        assert!(TeeKind::GpuCc.is_confidential());
        assert!(!TeeKind::BareMetal.is_confidential());
        assert!(!TeeKind::Vm.is_confidential());
        assert!(!TeeKind::GpuNative.is_confidential());
    }

    #[test]
    fn sgx_mee_stricter_than_tdx() {
        // SGX adds integrity protection on top of confidentiality.
        assert!(MeeParams::sgx().bandwidth_derate < MeeParams::tdx().bandwidth_derate);
        assert!(MeeParams::sgx().latency_adder_ns > MeeParams::tdx().latency_adder_ns);
    }

    #[test]
    fn sev_snp_close_to_tdx() {
        let sev = CpuTeeConfig::sev_snp();
        assert!(sev.kind.is_confidential());
        // SEV-SNP honours 1G hugepage reservations (no TDX-style fallback)
        assert_eq!(sev.effective_page(), cllm_hw::PageSize::Huge1G);
        // ...but still breaks NUMA bindings in current drivers.
        assert_eq!(sev.effective_binding(), NumaBinding::IgnoredByTee);
    }

    #[test]
    fn labels_match_figure_legends() {
        assert_eq!(Platform::Cpu(CpuTeeConfig::tdx()).label(), "TDX");
        assert_eq!(Platform::Gpu(GpuTeeConfig::confidential()).label(), "cGPU");
    }
}
