//! Sealed storage: protected files and an encrypted block device.
//!
//! Two storage protections appear in the paper's deployments:
//!
//! * **Gramine protected files** (SGX): each file is transparently
//!   encrypted and integrity-protected with a key derived from the enclave
//!   identity — modelled by [`SealedBlob`].
//! * **LUKS full-disk encryption** (TDX): the paper notes that in TDX
//!   "users must protect the filesystem, e.g., by using LUKS" — modelled
//!   by [`BlockDevice`], a sector-granular AES-CTR device with per-sector
//!   tweaked IVs.

use cllm_crypto::drbg::HashDrbg;
use cllm_crypto::kdf::derive_sealing_key;
use cllm_crypto::modes::Ctr;
use cllm_crypto::sha256::Sha256;
use cllm_crypto::{aead_open, aead_seal, AuthError};

use crate::attestation::Measurement;

/// A sealed (encrypted + authenticated) blob bound to an enclave identity,
/// like a Gramine protected file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    /// Logical file name; authenticated as AAD so a sealed file cannot be
    /// renamed/swap-attacked.
    pub name: String,
    /// Random nonce chosen at sealing time.
    pub nonce: [u8; 16],
    /// Ciphertext followed by the 16-byte GCM tag.
    pub ciphertext: Vec<u8>,
}

impl SealedBlob {
    /// Seal `plaintext` under the sealing key of (`root_secret`,
    /// `measurement`). `rng_seed` determines the nonce (deterministic for
    /// reproducibility; a real TEE would use hardware randomness).
    #[must_use]
    pub fn seal(
        root_secret: &[u8],
        measurement: &Measurement,
        name: &str,
        plaintext: &[u8],
        rng_seed: &[u8],
    ) -> Self {
        let key = derive_sealing_key(root_secret, &measurement.0, name);
        let mut drbg = HashDrbg::new(rng_seed);
        let mut nonce = [0u8; 16];
        drbg.fill(&mut nonce);
        let ciphertext = aead_seal(&key, &nonce, plaintext, name.as_bytes());
        SealedBlob {
            name: name.to_owned(),
            nonce,
            ciphertext,
        }
    }

    /// Unseal; fails if the enclave identity, the name, or the data differ.
    pub fn unseal(
        &self,
        root_secret: &[u8],
        measurement: &Measurement,
    ) -> Result<Vec<u8>, AuthError> {
        let key = derive_sealing_key(root_secret, &measurement.0, &self.name);
        aead_open(&key, &self.nonce, &self.ciphertext, self.name.as_bytes())
    }

    /// Size overhead of sealing in bytes (GCM tag).
    #[must_use]
    pub fn overhead_bytes() -> usize {
        16
    }
}

/// Sector size of the encrypted block device (LUKS default).
pub const SECTOR_BYTES: usize = 512;

/// A LUKS-like encrypted block device: AES-CTR per sector with an IV
/// derived from the sector index (ESSIV-style tweak).
#[derive(Debug)]
pub struct BlockDevice {
    cipher: Ctr,
    iv_salt: [u8; 32],
    sectors: Vec<[u8; SECTOR_BYTES]>,
}

impl BlockDevice {
    /// Create a device of `num_sectors` sectors keyed by `key`.
    #[must_use]
    pub fn format(key: &[u8; 16], num_sectors: usize) -> Self {
        let mut h = Sha256::new();
        h.update(b"cllm-luks-essiv");
        h.update(key);
        BlockDevice {
            cipher: Ctr::new(key),
            iv_salt: h.finalize(),
            sectors: vec![[0u8; SECTOR_BYTES]; num_sectors],
        }
    }

    /// Number of sectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sectors.len()
    }

    /// Whether the device has zero sectors.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sectors.is_empty()
    }

    fn sector_iv(&self, index: u64) -> [u8; 12] {
        let mut h = Sha256::new();
        h.update(&self.iv_salt);
        h.update(&index.to_be_bytes());
        let d = h.finalize();
        d[..12].try_into().expect("sha256 is 32 bytes")
    }

    /// Write one plaintext sector; stored ciphertext.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    pub fn write_sector(&mut self, index: u64, plaintext: &[u8; SECTOR_BYTES]) {
        let iv = self.sector_iv(index);
        let mut buf = *plaintext;
        self.cipher.apply(&iv, 0, &mut buf);
        self.sectors[usize::try_from(index).expect("index fits usize")] = buf;
    }

    /// Read one sector, decrypting it.
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range.
    #[must_use]
    pub fn read_sector(&self, index: u64) -> [u8; SECTOR_BYTES] {
        let iv = self.sector_iv(index);
        let mut buf = self.sectors[usize::try_from(index).expect("index fits usize")];
        self.cipher.apply(&iv, 0, &mut buf);
        buf
    }

    /// Raw (encrypted) view of a sector — what a hypervisor or disk thief
    /// sees.
    #[must_use]
    pub fn raw_sector(&self, index: u64) -> &[u8; SECTOR_BYTES] {
        &self.sectors[usize::try_from(index).expect("index fits usize")]
    }

    /// Store an arbitrary byte string starting at sector `start`, zero
    /// padding the tail. Returns the number of sectors used.
    pub fn write_bytes(&mut self, start: u64, data: &[u8]) -> u64 {
        let mut used = 0u64;
        for (i, chunk) in data.chunks(SECTOR_BYTES).enumerate() {
            let mut sector = [0u8; SECTOR_BYTES];
            sector[..chunk.len()].copy_from_slice(chunk);
            self.write_sector(start + i as u64, &sector);
            used += 1;
        }
        used
    }

    /// Read back `len` bytes starting at sector `start`.
    #[must_use]
    pub fn read_bytes(&self, start: u64, len: usize) -> Vec<u8> {
        let mut out = Vec::with_capacity(len);
        let mut sector_idx = start;
        while out.len() < len {
            let sector = self.read_sector(sector_idx);
            let take = (len - out.len()).min(SECTOR_BYTES);
            out.extend_from_slice(&sector[..take]);
            sector_idx += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(x: u8) -> Measurement {
        Measurement([x; 32])
    }

    #[test]
    fn seal_unseal_roundtrip() {
        let blob = SealedBlob::seal(b"root", &m(1), "weights.bin", b"llama weights", b"seed");
        assert_eq!(blob.unseal(b"root", &m(1)).unwrap(), b"llama weights");
    }

    #[test]
    fn unseal_fails_for_other_enclave() {
        // The core sealing property: a different measurement cannot unseal.
        let blob = SealedBlob::seal(b"root", &m(1), "weights.bin", b"secret", b"seed");
        assert!(blob.unseal(b"root", &m(2)).is_err());
    }

    #[test]
    fn unseal_fails_on_rename_attack() {
        let mut blob = SealedBlob::seal(b"root", &m(1), "weights.bin", b"secret", b"seed");
        blob.name = "other.bin".to_owned();
        assert!(blob.unseal(b"root", &m(1)).is_err());
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let blob = SealedBlob::seal(b"root", &m(1), "f", b"AAAAAAAAAAAAAAAA", b"seed");
        assert!(!blob.ciphertext.windows(4).any(|w| w == b"AAAA"));
    }

    #[test]
    fn block_device_roundtrip() {
        let mut dev = BlockDevice::format(&[3u8; 16], 16);
        let mut sector = [0u8; SECTOR_BYTES];
        sector[..5].copy_from_slice(b"hello");
        dev.write_sector(7, &sector);
        assert_eq!(dev.read_sector(7), sector);
    }

    #[test]
    fn raw_sectors_are_encrypted_and_distinct() {
        let mut dev = BlockDevice::format(&[3u8; 16], 4);
        let plain = [0x41u8; SECTOR_BYTES];
        dev.write_sector(0, &plain);
        dev.write_sector(1, &plain);
        // Same plaintext, different sectors -> different ciphertext (tweak).
        assert_ne!(dev.raw_sector(0), dev.raw_sector(1));
        assert_ne!(dev.raw_sector(0), &plain);
    }

    #[test]
    fn byte_stream_roundtrip_across_sectors() {
        let mut dev = BlockDevice::format(&[9u8; 16], 32);
        let data: Vec<u8> = (0..2000u32).map(|i| (i % 251) as u8).collect();
        let used = dev.write_bytes(3, &data);
        assert_eq!(used, 4);
        assert_eq!(dev.read_bytes(3, data.len()), data);
    }

    #[test]
    fn different_keys_cannot_read() {
        let mut dev = BlockDevice::format(&[1u8; 16], 4);
        let plain = [7u8; SECTOR_BYTES];
        dev.write_sector(0, &plain);
        // Re-keyed view over the same ciphertext decrypts to garbage.
        let mut thief = BlockDevice::format(&[2u8; 16], 4);
        thief.sectors = dev.sectors.clone();
        assert_ne!(thief.read_sector(0), plain);
    }
}
