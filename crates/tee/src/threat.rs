//! Threat model: the attack taxonomy of Figure 1 and the security matrix
//! of Table I.

use crate::platform::TeeKind;
use serde::{Deserialize, Serialize};

/// Attacks on cloud-hosted LLMs that TEEs are meant to stop (Figure 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Attack {
    /// Stealing model weights (IP theft) by reading guest memory.
    WeightTheft,
    /// Leaking confidential user prompts or outputs from memory.
    PromptLeak,
    /// Tampering with inference results (integrity attack).
    OutputTamper,
    /// Physical or DMA snooping of DRAM / HBM contents.
    MemorySnoop,
    /// A malicious hypervisor or cloud administrator introspecting the VM.
    HypervisorIntrospection,
    /// A co-located tenant reading data over shared interconnects
    /// (unencrypted NVLink / PCIe).
    InterconnectSnoop,
    /// Substituting a tampered model or runtime at load time.
    SupplyChainSwap,
}

impl Attack {
    /// All modelled attacks.
    #[must_use]
    pub fn all() -> [Attack; 7] {
        [
            Attack::WeightTheft,
            Attack::PromptLeak,
            Attack::OutputTamper,
            Attack::MemorySnoop,
            Attack::HypervisorIntrospection,
            Attack::InterconnectSnoop,
            Attack::SupplyChainSwap,
        ]
    }

    /// Short description for reports.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Attack::WeightTheft => "model weight exfiltration from memory",
            Attack::PromptLeak => "confidential prompt/output leakage",
            Attack::OutputTamper => "inference result tampering",
            Attack::MemorySnoop => "physical/DMA memory snooping",
            Attack::HypervisorIntrospection => "hypervisor/admin introspection",
            Attack::InterconnectSnoop => "interconnect (PCIe/NVLink) snooping",
            Attack::SupplyChainSwap => "model/runtime substitution at load",
        }
    }
}

/// Degree of protection a platform offers against an attack
/// (Table I's full/partial/none squares).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Protection {
    /// Fully mitigated by hardware + attestation.
    Full,
    /// Mitigated with caveats (e.g. larger trust boundary, or requires
    /// routing around an unprotected link).
    Partial,
    /// Not mitigated.
    None,
}

impl Protection {
    /// Table-cell glyph matching the paper's notation.
    #[must_use]
    pub fn glyph(self) -> &'static str {
        match self {
            Protection::Full => "■",
            Protection::Partial => "◪",
            Protection::None => "□",
        }
    }
}

/// What protection `platform` offers against `attack` (Table I, Security
/// rows, plus Section V-D3's discussion).
#[must_use]
pub fn protection(platform: TeeKind, attack: Attack) -> Protection {
    use Attack as A;
    use Protection as P;
    use TeeKind as T;
    match (platform, attack) {
        // Baselines protect against nothing relevant.
        (T::BareMetal | T::Vm | T::GpuNative, _) => P::None,

        // SGX: smallest TCB, encrypted + integrity-protected memory.
        (T::Sgx, A::WeightTheft | A::PromptLeak | A::OutputTamper | A::MemorySnoop) => P::Full,
        (T::Sgx, A::HypervisorIntrospection) => P::Full,
        (T::Sgx, A::InterconnectSnoop) => P::Full, // UPI is inline-encrypted
        (T::Sgx, A::SupplyChainSwap) => P::Full,   // trusted-file hashes + attestation

        // TDX / SEV-SNP: full protection but a larger trust boundary
        // (the whole guest OS).
        (T::Tdx | T::SevSnp, A::WeightTheft | A::PromptLeak | A::MemorySnoop) => P::Full,
        (T::Tdx | T::SevSnp, A::OutputTamper) => P::Full,
        (T::Tdx | T::SevSnp, A::HypervisorIntrospection) => P::Full,
        (T::Tdx | T::SevSnp, A::InterconnectSnoop) => P::Full,
        (T::Tdx | T::SevSnp, A::SupplyChainSwap) => P::Partial, // guest OS in TCB

        // H100 cGPU: HBM is NOT encrypted; NVLink unprotected.
        (T::GpuCc, A::WeightTheft | A::PromptLeak) => P::Partial, // plaintext HBM
        (T::GpuCc, A::OutputTamper) => P::Full,                   // authenticated transfers
        (T::GpuCc, A::MemorySnoop) => P::Partial,                 // HBM snooping possible
        (T::GpuCc, A::HypervisorIntrospection) => P::Full,        // bounce buffer encrypted
        (T::GpuCc, A::InterconnectSnoop) => P::Partial,           // PCIe yes, NVLink no
        (T::GpuCc, A::SupplyChainSwap) => P::Full,                // GPU attestation
    }
}

/// A platform's overall security score: fraction of attacks fully
/// mitigated (used to rank platforms in the summary table).
#[must_use]
pub fn security_score(platform: TeeKind) -> f64 {
    let attacks = Attack::all();
    let total = attacks.len() as f64;
    let score: f64 = attacks
        .iter()
        .map(|&a| match protection(platform, a) {
            Protection::Full => 1.0,
            Protection::Partial => 0.5,
            Protection::None => 0.0,
        })
        .sum();
    score / total
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baselines_protect_nothing() {
        for kind in [TeeKind::BareMetal, TeeKind::Vm, TeeKind::GpuNative] {
            for attack in Attack::all() {
                assert_eq!(protection(kind, attack), Protection::None);
            }
        }
    }

    #[test]
    fn cpu_tees_stricter_than_h100() {
        // Section V-D3: "CPU TEEs are more mature, and their security model
        // is stricter than cGPUs".
        assert!(security_score(TeeKind::Sgx) > security_score(TeeKind::GpuCc));
        assert!(security_score(TeeKind::Tdx) > security_score(TeeKind::GpuCc));
    }

    #[test]
    fn sgx_has_smallest_trust_boundary() {
        assert!(security_score(TeeKind::Sgx) >= security_score(TeeKind::Tdx));
    }

    #[test]
    fn h100_hbm_weakness_reflected() {
        // H100 does not encrypt HBM -> memory snooping only partial.
        assert_eq!(
            protection(TeeKind::GpuCc, Attack::MemorySnoop),
            Protection::Partial
        );
        assert_eq!(
            protection(TeeKind::Sgx, Attack::MemorySnoop),
            Protection::Full
        );
    }

    #[test]
    fn all_attacks_have_descriptions_and_glyphs() {
        for a in Attack::all() {
            assert!(!a.description().is_empty());
        }
        assert_eq!(Protection::Full.glyph(), "■");
        assert_eq!(Protection::None.glyph(), "□");
    }

    #[test]
    fn scores_are_probabilities() {
        for kind in [
            TeeKind::BareMetal,
            TeeKind::Vm,
            TeeKind::Tdx,
            TeeKind::Sgx,
            TeeKind::GpuNative,
            TeeKind::GpuCc,
        ] {
            let s = security_score(kind);
            assert!((0.0..=1.0).contains(&s));
        }
    }
}
