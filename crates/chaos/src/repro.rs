//! Minimal-repro files: a shrunken [`ChaosPoint`] plus the digest and
//! violations it must reproduce, serialized as JSON. `cllm chaos
//! --repro <file>` (and the checked-in corpus under
//! `tests/chaos_corpus/`) replays these byte-identically.

use cllm_serve::invariants::InvariantViolation;
use serde::{Deserialize, Serialize};

use crate::point::ChaosPoint;
use crate::run::{run_point, RunOutcome};

/// A self-contained, replayable chaos finding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Repro {
    /// The (shrunken) point.
    pub point: ChaosPoint,
    /// Expected report digest — replays must match it byte-for-byte.
    pub digest: String,
    /// Expected violations, in registry order. Empty for regression
    /// corpus entries that pin a once-broken, now-clean schedule.
    pub violations: Vec<InvariantViolation>,
}

impl Repro {
    /// Capture a repro from a point and its outcome.
    #[must_use]
    pub fn capture(point: ChaosPoint, outcome: &RunOutcome) -> Self {
        Repro {
            point,
            digest: outcome.digest.clone(),
            violations: outcome.violations.clone(),
        }
    }

    /// Serialize as pretty JSON (stable field order — suitable for
    /// checked-in corpus files).
    #[must_use]
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("repro serializes")
    }

    /// Parse a repro file.
    ///
    /// # Errors
    /// Returns the JSON parser's message when the text is not a repro.
    pub fn from_json(text: &str) -> Result<Self, String> {
        serde_json::from_str(text).map_err(|e| format!("invalid repro: {e}"))
    }

    /// Replay the point and demand the recorded digest and violations.
    ///
    /// # Errors
    /// Describes the first divergence: digest mismatch (the simulator's
    /// behaviour drifted) or violation mismatch (the bug's signature
    /// changed or disappeared).
    pub fn replay(&self) -> Result<RunOutcome, String> {
        let outcome = run_point(&self.point);
        if outcome.digest != self.digest {
            return Err(format!(
                "digest drift: expected {}, replay produced {}",
                self.digest, outcome.digest
            ));
        }
        if outcome.violations != self.violations {
            return Err(format!(
                "violation drift: expected {:?}, replay produced {:?}",
                self.violations, outcome.violations
            ));
        }
        Ok(outcome)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::sample_point;

    #[test]
    fn repro_json_round_trips_byte_identically() {
        let p = sample_point(5);
        let out = run_point(&p);
        let repro = Repro::capture(p, &out);
        let json = repro.to_json();
        let back = Repro::from_json(&json).expect("parses");
        assert_eq!(repro, back);
        assert_eq!(json, back.to_json(), "serialization is stable");
    }

    #[test]
    fn replay_detects_digest_drift() {
        let p = sample_point(6);
        let out = run_point(&p);
        let mut repro = Repro::capture(p, &out);
        assert!(repro.replay().is_ok(), "faithful replay passes");
        repro.digest = "0000000000000000".to_string();
        let err = repro.replay().expect_err("forged digest must fail");
        assert!(err.contains("digest drift"), "got: {err}");
    }
}
