//! Delta-debugging shrinker: reduce a violating [`ChaosPoint`] to a
//! minimal repro while the original violation keeps reproducing.
//!
//! The shrinker is deterministic and greedy. Passes, applied to a
//! fixpoint:
//!
//! 1. **Event ddmin** — classic delta debugging over each materialized
//!    fault-event list (complement removal with doubling granularity),
//!    so the repro carries only the events that matter.
//! 2. **Horizon halving** — shorter runs are easier to step through;
//!    events past the new horizon are dropped with it.
//! 3. **Fleet shrinking** — remove nodes one at a time (cluster and
//!    autoscale base fleets keep at least one node).
//! 4. **Subsystem stripping** — preemption waves, rental fault rates,
//!    warm pool and brownout are zeroed out if the violation survives
//!    without them. Infer points shrink along their own axes instead:
//!    the decode budget is halved (floor 1) and the prompt, draft
//!    window, layer count and temperature are reduced one at a time.
//!
//! "Keeps reproducing" means the candidate still raises at least one
//! violation with the same label (`InvariantViolation::label`) as the
//! original first violation — shrinking may not trade a conservation
//! bug for an unrelated finite-field bug.

use cllm_serve::cluster::WaveModel;
use cllm_serve::faults::{FaultEvent, FaultRates};

use crate::point::{ChaosPoint, PathSpec};
use crate::run::{run_point, RunOutcome};

/// Does `candidate` still raise a violation with the target label?
fn still_violates(candidate: &ChaosPoint, label: &str) -> bool {
    run_point(candidate)
        .violations
        .iter()
        .any(|v| v.label() == label)
}

/// Number of independently shrinkable fault-event lists in a point.
fn event_list_count(point: &ChaosPoint) -> usize {
    match &point.path {
        PathSpec::Single(_) => 1,
        PathSpec::Cluster(p) => p.nodes.len(),
        PathSpec::Autoscale(p) => p.base_fleet.len(),
        PathSpec::Infer(_) => 0,
    }
}

fn get_events(point: &ChaosPoint, idx: usize) -> Vec<FaultEvent> {
    match &point.path {
        PathSpec::Single(p) => p.node.events.clone(),
        PathSpec::Cluster(p) => p.nodes[idx].events.clone(),
        PathSpec::Autoscale(p) => p.base_fleet[idx].events.clone(),
        PathSpec::Infer(_) => Vec::new(),
    }
}

fn set_events(point: &mut ChaosPoint, idx: usize, events: Vec<FaultEvent>) {
    match &mut point.path {
        PathSpec::Single(p) => p.node.events = events,
        PathSpec::Cluster(p) => p.nodes[idx].events = events,
        PathSpec::Autoscale(p) => p.base_fleet[idx].events = events,
        PathSpec::Infer(_) => {}
    }
}

/// Classic ddmin over one event list: repeatedly try removing chunks
/// (complements), doubling granularity when stuck.
fn ddmin_events(point: &ChaosPoint, idx: usize, label: &str) -> Vec<FaultEvent> {
    let mut current = get_events(point, idx);
    // Fast path: does the violation even need this list?
    {
        let mut cand = point.clone();
        set_events(&mut cand, idx, Vec::new());
        if still_violates(&cand, label) {
            return Vec::new();
        }
    }
    let mut n = 2usize;
    while current.len() >= 2 {
        let chunk = current.len().div_ceil(n);
        let mut reduced = false;
        let mut start = 0;
        while start < current.len() {
            let end = (start + chunk).min(current.len());
            let mut complement = Vec::with_capacity(current.len() - (end - start));
            complement.extend_from_slice(&current[..start]);
            complement.extend_from_slice(&current[end..]);
            let mut cand = point.clone();
            set_events(&mut cand, idx, complement.clone());
            if still_violates(&cand, label) {
                current = complement;
                n = n.saturating_sub(1).max(2);
                reduced = true;
                break;
            }
            start = end;
        }
        if !reduced {
            if n >= current.len() {
                break;
            }
            n = (n * 2).min(current.len());
        }
    }
    current
}

/// Coarse structural passes; returns `true` if any pass stuck.
fn structural_pass(point: &mut ChaosPoint, label: &str) -> bool {
    let mut changed = false;

    // Halve the horizon (dropping events past it) while it reproduces.
    loop {
        let mut cand = point.clone();
        let halved = match &mut cand.path {
            PathSpec::Single(p) => {
                p.base.duration_s /= 2.0;
                p.base.duration_s
            }
            PathSpec::Cluster(p) => {
                p.base.duration_s /= 2.0;
                p.base.duration_s
            }
            PathSpec::Autoscale(p) => {
                p.base.duration_s /= 2.0;
                p.base.duration_s
            }
            // The infer path has no time horizon; its `max_new` budget
            // is halved in the path-specific pass below.
            PathSpec::Infer(_) => break,
        };
        if halved < 2.0 {
            break;
        }
        for idx in 0..event_list_count(&cand) {
            let kept: Vec<FaultEvent> = get_events(&cand, idx)
                .into_iter()
                .filter(|e| e.at_s < halved)
                .collect();
            set_events(&mut cand, idx, kept);
        }
        if still_violates(&cand, label) {
            *point = cand;
            changed = true;
        } else {
            break;
        }
    }

    // Drop whole nodes (keep at least one).
    loop {
        let n = match &point.path {
            PathSpec::Single(_) | PathSpec::Infer(_) => 1,
            PathSpec::Cluster(p) => p.nodes.len(),
            PathSpec::Autoscale(p) => p.base_fleet.len(),
        };
        if n <= 1 {
            break;
        }
        let mut dropped = false;
        for idx in (0..n).rev() {
            let mut cand = point.clone();
            match &mut cand.path {
                PathSpec::Single(_) | PathSpec::Infer(_) => {}
                PathSpec::Cluster(p) => {
                    p.nodes.remove(idx);
                }
                PathSpec::Autoscale(p) => {
                    p.base_fleet.remove(idx);
                }
            }
            if still_violates(&cand, label) {
                *point = cand;
                changed = true;
                dropped = true;
                break;
            }
        }
        if !dropped {
            break;
        }
    }

    // Strip optional subsystems.
    match &point.path {
        PathSpec::Cluster(p) if p.wave.waves_per_hr > 0.0 => {
            let mut cand = point.clone();
            if let PathSpec::Cluster(c) = &mut cand.path {
                c.wave = WaveModel::none();
            }
            if still_violates(&cand, label) {
                *point = cand;
                changed = true;
            }
        }
        PathSpec::Autoscale(p) => {
            let has_rates = p.rental_rates != FaultRates::none();
            let has_warm = p.warm_pool > 0;
            let has_brownout = p.brownout.is_some();
            for strip in 0..3 {
                if (strip == 0 && !has_rates)
                    || (strip == 1 && !has_warm)
                    || (strip == 2 && !has_brownout)
                {
                    continue;
                }
                let mut cand = point.clone();
                if let PathSpec::Autoscale(a) = &mut cand.path {
                    match strip {
                        0 => a.rental_rates = FaultRates::none(),
                        1 => a.warm_pool = 0,
                        _ => a.brownout = None,
                    }
                }
                if still_violates(&cand, label) {
                    *point = cand;
                    changed = true;
                }
            }
        }
        PathSpec::Infer(_) => {
            // Halve the decode budget while the violation reproduces
            // (the infer analogue of horizon halving; floor of 1).
            loop {
                let cur = match &point.path {
                    PathSpec::Infer(p) => p.max_new,
                    _ => unreachable!("path cannot change mid-pass"),
                };
                if cur <= 1 {
                    break;
                }
                let mut cand = point.clone();
                if let PathSpec::Infer(p) = &mut cand.path {
                    p.max_new = (p.max_new / 2).max(1);
                }
                if still_violates(&cand, label) {
                    *point = cand;
                    changed = true;
                } else {
                    break;
                }
            }
            // Strip the remaining axes one at a time: a one-token
            // prompt, no speculation window, a single layer, greedy
            // decoding.
            for strip in 0..4 {
                let applies = match &point.path {
                    PathSpec::Infer(p) => match strip {
                        0 => p.prompt.len() > 1,
                        1 => p.draft_k > 1,
                        2 => p.layers > 1,
                        _ => p.temperature.is_some(),
                    },
                    _ => unreachable!("path cannot change mid-pass"),
                };
                if !applies {
                    continue;
                }
                let mut cand = point.clone();
                if let PathSpec::Infer(p) = &mut cand.path {
                    match strip {
                        0 => p.prompt.truncate(1),
                        1 => p.draft_k = 1,
                        2 => p.layers = 1,
                        _ => p.temperature = None,
                    }
                }
                if still_violates(&cand, label) {
                    *point = cand;
                    changed = true;
                }
            }
        }
        _ => {}
    }

    changed
}

/// Shrink a violating point to a minimal repro. Returns the shrunken
/// point and its outcome. If `point` does not violate anything, it is
/// returned unchanged.
#[must_use]
pub fn shrink(point: &ChaosPoint) -> (ChaosPoint, RunOutcome) {
    let original = run_point(point);
    let Some(first) = original.violations.first() else {
        return (point.clone(), original);
    };
    let label = first.label();

    let mut current = point.clone();
    loop {
        let mut changed = false;
        for idx in 0..event_list_count(&current) {
            let before = get_events(&current, idx).len();
            let events = ddmin_events(&current, idx, label);
            if events.len() < before {
                set_events(&mut current, idx, events);
                changed = true;
            }
        }
        if structural_pass(&mut current, label) {
            changed = true;
        }
        if !changed {
            break;
        }
    }
    let outcome = run_point(&current);
    debug_assert!(
        outcome.violations.iter().any(|v| v.label() == label),
        "shrinking lost the original violation"
    );
    (current, outcome)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{planted_infer_demo, sample_point};

    #[test]
    fn clean_points_shrink_to_themselves() {
        let p = sample_point(3);
        let (shrunk, out) = shrink(&p);
        assert_eq!(shrunk, p, "no violation, nothing to shrink");
        assert!(out.violations.is_empty());
    }

    #[test]
    fn planted_infer_violation_shrinks_to_one_token() {
        // The planted NaN in the LM head trips forbid-nonfinite-logits
        // on every post-prefill logit vector, so the shrinker can cut
        // everything else: the repro must collapse to a single emitted
        // token from a one-token prompt on a one-layer greedy model.
        let demo = planted_infer_demo();
        let (shrunk, out) = shrink(&demo);
        assert!(
            out.violations
                .iter()
                .any(|v| v.label() == "forbid-nonfinite-logits"),
            "shrunken repro keeps the planted violation"
        );
        let PathSpec::Infer(p) = &shrunk.path else {
            panic!("shrinking must not change the path");
        };
        assert_eq!(p.max_new, 1, "decode budget shrinks to one token");
        assert_eq!(p.prompt.len(), 1, "prompt shrinks to one token");
        assert_eq!(p.draft_k, 1, "draft window shrinks to 1");
        assert_eq!(p.layers, 1, "layer count shrinks to 1");
        assert_eq!(p.temperature, None, "sampling shrinks to greedy");
        assert!(p.plant_nan_lm_head, "the planted fault itself survives");
    }
}
