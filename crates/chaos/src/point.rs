//! The chaos search space: a fully serializable coordinate
//! ([`ChaosPoint`]) in the joint space of serving path, fleet shape,
//! TEE platform, KV policy, traffic, fault schedule and
//! retry/admission tuning — plus the seeded sampler that draws one.
//!
//! The point stores *materialized* fault events (not rates), so the
//! shrinker can drop individual events while everything else stays
//! fixed. The simulator configs themselves are not serializable (they
//! embed model/hardware tables); [`ChaosPoint`] keeps only the
//! searched coordinates and rebuilds the configs on demand, so a
//! repro file replays byte-identically as long as the hardware tables
//! are unchanged.

use cllm_serve::autoscale::{AutoscaleConfig, ControllerConfig, RentalSpec};
use cllm_serve::cluster::{ClusterConfig, NodeSpec, WaveModel};
use cllm_serve::faults::{FaultEvent, FaultPlan, FaultRates, RecoveryPolicy};
use cllm_serve::router::{
    AdmissionPolicy, BreakerConfig, BrownoutConfig, RetryBudget, TieredAdmission,
};
use cllm_serve::scheduler::{KvConfig, KvPolicy};
use cllm_serve::sim::{ServingConfig, ServingNode};
use cllm_serve::workload::ArrivalProcess;
use cllm_tee::platform::{CpuTeeConfig, GpuTeeConfig, TeeKind};
use cllm_workload::trace::{LognormalLen, TrafficModel};
use serde::{Deserialize, Serialize};

use crate::Rng;

/// Serializable stand-in for [`ServingNode`]: the platform axis of the
/// search space.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum NodeKind {
    /// Unprotected bare-metal CPU host.
    BareMetal,
    /// Unprotected virtual machine.
    Vm,
    /// Intel TDX trust domain.
    Tdx,
    /// AMD SEV-SNP VM.
    SevSnp,
    /// Intel SGX enclave (Gramine).
    Sgx,
    /// GPU without confidential compute.
    GpuNative,
    /// NVIDIA confidential GPU.
    GpuCc,
}

impl NodeKind {
    /// Every platform, in sampling order.
    pub const ALL: [NodeKind; 7] = [
        NodeKind::BareMetal,
        NodeKind::Vm,
        NodeKind::Tdx,
        NodeKind::SevSnp,
        NodeKind::Sgx,
        NodeKind::GpuNative,
        NodeKind::GpuCc,
    ];

    /// The simulator node this kind materializes to.
    #[must_use]
    pub fn serving_node(self) -> ServingNode {
        match self {
            NodeKind::BareMetal => ServingNode::Cpu {
                tee: CpuTeeConfig::bare_metal(),
            },
            NodeKind::Vm => ServingNode::Cpu {
                tee: CpuTeeConfig::vm(),
            },
            NodeKind::Tdx => ServingNode::Cpu {
                tee: CpuTeeConfig::tdx(),
            },
            NodeKind::SevSnp => ServingNode::Cpu {
                tee: CpuTeeConfig::sev_snp(),
            },
            NodeKind::Sgx => ServingNode::Cpu {
                tee: CpuTeeConfig::sgx(),
            },
            NodeKind::GpuNative => ServingNode::Gpu {
                gpu: cllm_hw::presets::h100_nvl(),
                tee: GpuTeeConfig::native(),
            },
            NodeKind::GpuCc => ServingNode::Gpu {
                gpu: cllm_hw::presets::h100_nvl(),
                tee: GpuTeeConfig::confidential(),
            },
        }
    }

    /// The platform's fault-rate preset key.
    #[must_use]
    pub fn tee_kind(self) -> TeeKind {
        match self {
            NodeKind::BareMetal => TeeKind::BareMetal,
            NodeKind::Vm => TeeKind::Vm,
            NodeKind::Tdx => TeeKind::Tdx,
            NodeKind::SevSnp => TeeKind::SevSnp,
            NodeKind::Sgx => TeeKind::Sgx,
            NodeKind::GpuNative => TeeKind::GpuNative,
            NodeKind::GpuCc => TeeKind::GpuCc,
        }
    }
}

/// One fleet member: a platform plus its materialized fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosNode {
    /// Platform class.
    pub kind: NodeKind,
    /// Spot rental (subject to correlated preemption waves).
    pub spot: bool,
    /// The node's full fault schedule, pre-materialized so the
    /// shrinker can drop individual events.
    pub events: Vec<FaultEvent>,
}

impl ChaosNode {
    fn node_spec(&self) -> NodeSpec {
        let mut spec = NodeSpec::new(self.kind.serving_node(), self.spot, FaultRates::none(), 0);
        spec.extra_events = self.events.clone();
        spec
    }
}

/// Coordinates shared by every path: workload shape, horizon, KV
/// management and recovery tuning.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BasePoint {
    /// Poisson arrival process (single/cluster paths).
    pub arrivals: ArrivalProcess,
    /// Run horizon, seconds.
    pub duration_s: f64,
    /// Maximum concurrent sequences per batch.
    pub max_batch: usize,
    /// KV budget, GiB (the arena paged policies carve blocks from).
    pub kv_budget_gib: f64,
    /// KV management policy and paging grain.
    pub kv: KvConfig,
    /// Crash recovery: retry cap, backoff, re-attestation cost.
    pub policy: RecoveryPolicy,
}

impl BasePoint {
    /// Materialize into a [`ServingConfig`] (model and hardware tables
    /// come from the repo's pinned `small_test` baseline).
    #[must_use]
    pub fn serving_config(&self) -> ServingConfig {
        let mut cfg = ServingConfig::small_test();
        cfg.arrivals = self.arrivals;
        cfg.duration_s = self.duration_s;
        cfg.limits.max_batch = self.max_batch;
        cfg.limits.kv_budget_bytes = self.kv_budget_gib * cllm_hw::GIB;
        cfg.kv = self.kv;
        cfg
    }
}

/// A single-node run: one platform, one fault schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SinglePoint {
    /// Shared workload/KV/recovery coordinates.
    pub base: BasePoint,
    /// The node under test.
    pub node: ChaosNode,
}

impl SinglePoint {
    /// The fault plan this point drives through the single-node loop.
    #[must_use]
    pub fn plan(&self) -> FaultPlan {
        FaultPlan {
            events: self.node.events.clone(),
            policy: self.base.policy,
        }
    }
}

/// A fixed-fleet cluster run: heterogeneous nodes behind the router.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterPoint {
    /// Shared workload/KV/recovery coordinates.
    pub base: BasePoint,
    /// The fleet; at least one node.
    pub nodes: Vec<ChaosNode>,
    /// Router admission bounds.
    pub admission: AdmissionPolicy,
    /// Correlated preemption waves over the spot subset.
    pub wave: WaveModel,
    /// Whether crash victims may re-queue onto other nodes.
    pub failover: bool,
}

impl ClusterPoint {
    /// Materialize into a [`ClusterConfig`].
    #[must_use]
    pub fn config(&self) -> ClusterConfig {
        // Cluster nodes read their recovery policy from the seeded
        // plan, which is the default policy for zero-rate specs — the
        // sampled `base.policy` axis only drives the single path.
        ClusterConfig {
            serving: self.base.serving_config(),
            nodes: self.nodes.iter().map(ChaosNode::node_spec).collect(),
            admission: self.admission,
            breaker: BreakerConfig::default(),
            wave: self.wave,
            failover: self.failover,
            spill: cllm_cost::SpillPenalty::cross_platform(),
        }
    }
}

/// An autoscaled run: base fleet plus seeded rentals under flash-crowd
/// traffic, tiered admission and a retry-storm circuit.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AutoscalePoint {
    /// Shared workload/KV/recovery coordinates (`arrivals` is unused —
    /// the traffic model below drives the trace).
    pub base: BasePoint,
    /// Modulated multi-tenant traffic.
    pub traffic: TrafficModel,
    /// Always-on fleet; at least one node.
    pub base_fleet: Vec<ChaosNode>,
    /// Rented platform class.
    pub rental_kind: NodeKind,
    /// Per-kind fault rates for rented nodes (kept as rates: rentals
    /// are created dynamically, so their schedules cannot be
    /// materialized up front; the shrinker zeroes these as one pass).
    pub rental_rates: FaultRates,
    /// Pre-attested standbys.
    pub warm_pool: usize,
    /// Reactive controller tuning.
    pub controller: ControllerConfig,
    /// Retry budget + storm circuit.
    pub retry: RetryBudget,
    /// Token-shedding brownout, if enabled.
    pub brownout: Option<BrownoutConfig>,
    /// Planted rule for shrinker tests: treat any aborted request as
    /// an invariant violation (`InvariantViolation::Forbidden`).
    pub forbid_aborts: bool,
}

impl AutoscalePoint {
    /// Materialize into an [`AutoscaleConfig`].
    #[must_use]
    pub fn config(&self) -> AutoscaleConfig {
        AutoscaleConfig {
            serving: self.base.serving_config(),
            traffic: self.traffic,
            base_fleet: self.base_fleet.iter().map(ChaosNode::node_spec).collect(),
            base_price_per_hr: 3.0,
            rental: RentalSpec {
                node: self.rental_kind.serving_node(),
                rates: self.rental_rates,
                price_per_hr: 4.0,
                attest_s: 0.5,
                seed: 77,
            },
            warm_pool: self.warm_pool,
            controller: self.controller,
            tiers: TieredAdmission::default(),
            retry: self.retry,
            brownout: self.brownout,
            breaker: BreakerConfig::default(),
            spill: cllm_cost::SpillPenalty::cross_platform(),
        }
    }
}

/// A real-engine decode run: seeded speculative decoding on a tiny
/// `cllm-infer` model, checked against the infer-loop invariants
/// (`token-conservation`, `forbid-nonfinite-logits`). Unlike the
/// simulator paths this executes actual matmuls, so the chaos search
/// also exercises the kernels, the KV-cache rollback and the
/// draft/verify ledger.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferPoint {
    /// Weight-initialization seed for the target model (the draft is
    /// the int8-quantized target); doubles as the sampling RNG seed.
    pub model_seed: u64,
    /// Decoder blocks in the tiny model (1 or 2).
    pub layers: usize,
    /// Prompt token ids (within the tiny 64-token vocabulary).
    pub prompt: Vec<usize>,
    /// Tokens to generate.
    pub max_new: usize,
    /// Draft window per speculative round.
    pub draft_k: usize,
    /// Softmax temperature; `None` decodes greedily.
    pub temperature: Option<f32>,
    /// Planted rule for shrinker tests: poison one LM-head weight with
    /// NaN so every post-prefill logit vector trips
    /// `forbid-nonfinite-logits`.
    pub plant_nan_lm_head: bool,
}

impl InferPoint {
    /// The tiny model shape this point runs: fixed 32-hidden GQA so
    /// sampled points stay fast, with only the layer count searched.
    #[must_use]
    pub fn config(&self) -> cllm_infer::model::TinyConfig {
        cllm_infer::model::TinyConfig {
            hidden: 32,
            layers: self.layers,
            heads: 4,
            kv_heads: 2,
            intermediate: 96,
            vocab: 64,
            max_seq: 128,
            rope_theta: 10_000.0,
            eps: 1e-5,
        }
    }
}

/// Which serving path a point drives.
// Variant sizes are dominated by the autoscale arm's controller and
// traffic tables; points are sampled and cloned a handful of times per
// run, so boxing would only complicate the repro JSON for no win.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PathSpec {
    /// `simulate_serving_faulted`: one node, one fault plan.
    Single(SinglePoint),
    /// `simulate_cluster`: fixed fleet behind the router.
    Cluster(ClusterPoint),
    /// `simulate_autoscale`: reactive fleet under modulated traffic.
    Autoscale(AutoscalePoint),
    /// `speculative_generate`: a real tiny-model decode loop checked
    /// against the infer-loop invariants.
    Infer(InferPoint),
}

/// One coordinate in the chaos search space. `seed` is provenance
/// only: the point is self-contained and replays without it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChaosPoint {
    /// The seed this point was sampled from (0 for hand-built points).
    pub seed: u64,
    /// The path and its coordinates.
    pub path: PathSpec,
}

/// Materialize a platform-rated fault schedule, gray kinds included.
fn sample_events(rng: &mut Rng, kind: NodeKind, spot: bool, horizon_s: f64) -> Vec<FaultEvent> {
    let spot_params = if spot {
        cllm_cost::SpotParams::gcp_spot()
    } else {
        cllm_cost::SpotParams::reserved()
    };
    let mut rates =
        FaultRates::for_platform(kind.tee_kind(), &spot_params).scaled(rng.range_f64(50.0, 900.0));
    // Gray failures ride the same per-kind salted streams.
    rates.degraded_windows_per_hr = rng.range_f64(0.0, 400.0);
    rates.stuck_drains_per_hr = rng.range_f64(0.0, 200.0);
    FaultPlan::seeded(&rates, horizon_s, rng.next_u64()).events
}

fn sample_base(rng: &mut Rng) -> BasePoint {
    let duration_s = rng.range_f64(10.0, 30.0);
    let policy_choices = [
        KvPolicy::Conservative,
        KvPolicy::PagedRecompute,
        KvPolicy::PagedSwap,
    ];
    BasePoint {
        arrivals: ArrivalProcess {
            rate_per_s: rng.range_f64(0.5, 5.0),
            prompt_range: (16, 16 + rng.range_usize(16, 240) as u64),
            output_range: (4, 4 + rng.range_usize(4, 60) as u64),
            seed: rng.next_u64() % 1000,
        },
        duration_s,
        max_batch: rng.range_usize(2, 24),
        kv_budget_gib: rng.range_f64(0.25, 64.0),
        kv: KvConfig {
            policy: policy_choices[rng.range_usize(0, 3)],
            block_tokens: [8u64, 16, 32][rng.range_usize(0, 3)],
            static_batching: rng.chance(0.15),
        },
        policy: RecoveryPolicy {
            max_retries: rng.range_usize(0, 5) as u32,
            backoff_base_s: rng.range_f64(0.05, 0.5),
            backoff_factor: rng.range_f64(1.0, 3.0),
            reattest_s: rng.range_f64(0.1, 1.0),
        },
    }
}

fn sample_node(rng: &mut Rng, horizon_s: f64) -> ChaosNode {
    let kind = NodeKind::ALL[rng.range_usize(0, NodeKind::ALL.len())];
    let spot = rng.chance(0.4);
    ChaosNode {
        kind,
        spot,
        events: sample_events(rng, kind, spot, horizon_s),
    }
}

/// Small prompt/output shapes so sampled autoscale runs stay fast.
fn sample_traffic(rng: &mut Rng) -> TrafficModel {
    let mut t = TrafficModel::flash_crowd(
        rng.range_f64(1.0, 8.0),
        rng.range_f64(2.0, 10.0),
        rng.next_u64() % 1000,
    );
    t.bursts.bursts_per_hr = rng.range_f64(60.0, 400.0);
    t.bursts.window_s = rng.range_f64(5.0, 15.0);
    t.diurnal_amplitude = rng.range_f64(0.0, 0.5);
    t.prompt = LognormalLen {
        mu_ln: 3.5,
        sigma_ln: 0.5,
        min_tokens: 16,
        max_tokens: 128,
    };
    t.output = LognormalLen {
        mu_ln: 2.5,
        sigma_ln: 0.4,
        min_tokens: 4,
        max_tokens: 32,
    };
    t
}

/// Expand `seed` into a point. Pure: the same seed always yields the
/// same point, and different seeds draw from independent SplitMix64
/// streams.
#[must_use]
pub fn sample_point(seed: u64) -> ChaosPoint {
    let mut rng = Rng::new(seed ^ 0xC4A0_5C11_AB1E_D0D0);
    let base = sample_base(&mut rng);
    let horizon_s = base.duration_s;
    let path = match rng.range_usize(0, 4) {
        0 => PathSpec::Single(SinglePoint {
            base,
            node: sample_node(&mut rng, horizon_s),
        }),
        1 => {
            let n_nodes = rng.range_usize(1, 5);
            PathSpec::Cluster(ClusterPoint {
                base,
                nodes: (0..n_nodes)
                    .map(|_| sample_node(&mut rng, horizon_s))
                    .collect(),
                admission: AdmissionPolicy {
                    queue_cap: rng.range_usize(2, 48),
                    deadline_s: rng.range_f64(4.0, 20.0),
                },
                wave: WaveModel {
                    waves_per_hr: rng.range_f64(0.0, 300.0),
                    frac: rng.range_f64(0.0, 1.0),
                    seed: rng.next_u64() % 1000,
                },
                failover: rng.chance(0.7),
            })
        }
        2 => {
            let n_base = rng.range_usize(1, 3);
            let brownout = rng.chance(0.4).then(|| BrownoutConfig {
                enter_depth: rng.range_usize(8, 64),
                exit_depth: rng.range_usize(2, 8),
                output_cap_tokens: rng.range_usize(4, 24) as u64,
            });
            PathSpec::Autoscale(AutoscalePoint {
                base,
                traffic: sample_traffic(&mut rng),
                base_fleet: (0..n_base)
                    .map(|_| sample_node(&mut rng, horizon_s))
                    .collect(),
                rental_kind: NodeKind::ALL[rng.range_usize(0, NodeKind::ALL.len())],
                rental_rates: {
                    let mut r =
                        FaultRates::for_platform(TeeKind::Tdx, &cllm_cost::SpotParams::gcp_spot())
                            .scaled(rng.range_f64(0.0, 600.0));
                    r.stuck_drains_per_hr = rng.range_f64(0.0, 300.0);
                    r.degraded_windows_per_hr = rng.range_f64(0.0, 300.0);
                    r
                },
                warm_pool: rng.range_usize(0, 4),
                controller: ControllerConfig {
                    control_interval_s: rng.range_f64(0.5, 4.0),
                    up_depth_per_node: rng.range_f64(2.0, 12.0),
                    down_depth_per_node: rng.range_f64(0.5, 2.0),
                    scale_up_step: rng.range_usize(1, 3),
                    max_rented: rng.range_usize(0, 6),
                    scale_down_ticks: rng.range_usize(1, 4) as u32,
                    drain_window_s: rng.range_f64(2.0, 25.0),
                },
                retry: RetryBudget {
                    per_request: rng.range_usize(0, 5) as u32,
                    storm_window_s: rng.range_f64(2.0, 15.0),
                    storm_max_retries: rng.range_usize(8, 128),
                },
                brownout,
                forbid_aborts: false,
            })
        }
        _ => {
            let n_prompt = rng.range_usize(1, 9);
            #[allow(clippy::cast_possible_truncation)]
            let temperature = rng.chance(0.5).then(|| rng.range_f64(0.5, 1.5) as f32);
            PathSpec::Infer(InferPoint {
                model_seed: rng.next_u64() % 1000,
                layers: rng.range_usize(1, 3),
                prompt: (0..n_prompt).map(|_| rng.range_usize(0, 64)).collect(),
                max_new: rng.range_usize(1, 25),
                draft_k: rng.range_usize(1, 5),
                temperature,
                plant_nan_lm_head: false,
            })
        }
    };
    ChaosPoint { seed, path }
}

/// A hand-built point that intentionally violates the planted
/// `forbid-aborts` rule: a zero retry budget, a single TDX node, and a
/// dense crash schedule under steady traffic. Any one crash that
/// catches a running request aborts it, so the shrinker has plenty of
/// slack to cut — the shrinker's end-to-end test demands it reduce the
/// 8 planted crashes to at most 3, and the checked-in regression
/// corpus pins the shrunken repro.
#[must_use]
pub fn planted_demo() -> ChaosPoint {
    let mut traffic = TrafficModel::steady(3.0, 7);
    traffic.prompt = LognormalLen {
        mu_ln: 3.5,
        sigma_ln: 0.5,
        min_tokens: 16,
        max_tokens: 128,
    };
    traffic.output = LognormalLen {
        mu_ln: 2.5,
        sigma_ln: 0.4,
        min_tokens: 4,
        max_tokens: 32,
    };
    let crashes: Vec<FaultEvent> = (0..8)
        .map(|i| FaultEvent {
            at_s: 2.0 + f64::from(i),
            kind: cllm_serve::faults::FaultKind::EnclaveCrash,
            outage_s: 0.5,
        })
        .collect();
    let small = ServingConfig::small_test();
    ChaosPoint {
        seed: 0,
        path: PathSpec::Autoscale(AutoscalePoint {
            base: BasePoint {
                arrivals: ArrivalProcess {
                    rate_per_s: 3.0,
                    prompt_range: (16, 128),
                    output_range: (4, 32),
                    seed: 7,
                },
                duration_s: 12.0,
                max_batch: small.limits.max_batch,
                kv_budget_gib: 64.0,
                kv: KvConfig::default(),
                policy: RecoveryPolicy::default(),
            },
            traffic,
            base_fleet: vec![ChaosNode {
                kind: NodeKind::Tdx,
                spot: false,
                events: crashes,
            }],
            rental_kind: NodeKind::Tdx,
            rental_rates: FaultRates::none(),
            warm_pool: 0,
            controller: ControllerConfig {
                max_rented: 0,
                ..ControllerConfig::default()
            },
            retry: RetryBudget {
                per_request: 0,
                ..RetryBudget::default()
            },
            brownout: None,
            forbid_aborts: true,
        }),
    }
}

/// A hand-built infer point that violates the planted
/// `forbid-nonfinite-logits` rule: one LM-head weight is poisoned with
/// NaN, so every logit vector computed after the prefill carries
/// non-finite entries. The generous prompt/horizon/draft-window give
/// the shrinker slack to cut — its end-to-end test demands the repro
/// collapse to a single emitted token from a one-token prompt.
#[must_use]
pub fn planted_infer_demo() -> ChaosPoint {
    ChaosPoint {
        seed: 0,
        path: PathSpec::Infer(InferPoint {
            model_seed: 7,
            layers: 2,
            prompt: vec![1, 2, 3, 4, 5],
            max_new: 16,
            draft_k: 4,
            temperature: None,
            plant_nan_lm_head: true,
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic() {
        for seed in [0u64, 1, 17, 0xDEAD_BEEF] {
            assert_eq!(sample_point(seed), sample_point(seed));
        }
    }

    #[test]
    fn sampling_covers_all_four_paths() {
        let mut single = 0;
        let mut cluster = 0;
        let mut autoscale = 0;
        let mut infer = 0;
        for seed in 0..60 {
            match sample_point(seed).path {
                PathSpec::Single(_) => single += 1,
                PathSpec::Cluster(_) => cluster += 1,
                PathSpec::Autoscale(_) => autoscale += 1,
                PathSpec::Infer(_) => infer += 1,
            }
        }
        assert!(
            single > 0 && cluster > 0 && autoscale > 0 && infer > 0,
            "60 seeds must hit every path: {single}/{cluster}/{autoscale}/{infer}"
        );
    }

    #[test]
    fn sampled_infer_points_are_well_formed() {
        for seed in 0..200 {
            if let PathSpec::Infer(p) = sample_point(seed).path {
                assert!(p.layers >= 1 && p.layers <= 2, "seed {seed}");
                assert!(!p.prompt.is_empty() && p.prompt.len() <= 8, "seed {seed}");
                assert!(
                    p.prompt.iter().all(|&t| t < p.config().vocab),
                    "seed {seed}"
                );
                assert!(p.max_new >= 1 && p.draft_k >= 1, "seed {seed}");
                assert!(!p.plant_nan_lm_head, "sampled points never plant faults");
            }
        }
    }

    #[test]
    fn points_serialize_round_trip() {
        for seed in 0..12 {
            let p = sample_point(seed);
            let json = serde_json::to_string(&p).expect("point serializes");
            let back: ChaosPoint = serde_json::from_str(&json).expect("point parses");
            assert_eq!(p, back, "seed {seed} round-trips");
        }
    }
}
